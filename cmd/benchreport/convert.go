package main

// The -convert mode measures the schedule-conversion pipeline and its batch
// cache on a steady-state Fig 14 workload: every feasible T(20,3) placement
// runs twice — cache enabled (the default) and disabled — with the NDJSON
// trace of each pair asserted byte-identical before any timing is reported.
// The headline numbers are the amortized conversion cost per dispatched batch
// on each side and the cache hit rate.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

// convertSide aggregates the conversion metrics of all runs on one cache
// setting.
type convertSide struct {
	Batches     int64 `json:"batches"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// HitRatePct is CacheHits over Batches; the steady-state reuse the cache
	// actually achieves on this workload.
	HitRatePct float64 `json:"hit_rate_pct"`
	// PassNs records the wall-clock nanoseconds each pipeline pass spent,
	// summed over all runs. Cache hits skip the passes entirely, so the
	// cached side only pays these on misses.
	PassNs map[string]int64 `json:"pass_ns"`
	// NsPerBatch is total pass time amortized over every dispatched batch —
	// the effective conversion cost the engine pays per batch.
	NsPerBatch float64 `json:"ns_per_batch"`
}

type convertReport struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Runs       int    `json:"runs"`
	Skipped    int    `json:"skipped"`
	Duration   string `json:"duration"`

	Cached   convertSide `json:"cached"`
	Uncached convertSide `json:"uncached"`
	// SpeedupPerBatch is uncached over cached ns/batch: how much cheaper the
	// amortized conversion is with the batch cache on.
	SpeedupPerBatch float64 `json:"speedup_per_batch"`
	// OutputIdentical is the differential gate: every placement's NDJSON
	// trace and aggregate throughput matched byte for byte / digit for digit
	// across the two cache settings. False exits non-zero.
	OutputIdentical bool `json:"output_identical"`
}

// runConvertSide runs one fig14-style DOMINO placement with the given cache
// setting, accumulating conversion metrics into side and returning the NDJSON
// trace and aggregate throughput for the differential gate.
func runConvertSide(side *convertSide, seed int64, duration time.Duration, noCache bool) ([]byte, float64, error) {
	// Rebuild the network from the trace each time: a topo.Network carries
	// per-run queue state and cannot be shared between runs.
	tr := topo.RandomTrace(seed, 110, 800)
	rng := rand.New(rand.NewSource(seed))
	net, err := topo.BuildT(tr, 20, 3, phy.DefaultConfig(), phy.Rate12, rng)
	if err != nil {
		return nil, 0, err
	}
	var buf bytes.Buffer
	nd := obs.NewNDJSON(&buf)
	m := obs.NewMetrics()
	res, err := core.RunScenario(core.Scenario{
		Net: net, Downlink: true, Uplink: true, Scheme: core.DOMINO,
		Seed: seed, Duration: sim.Time(duration.Nanoseconds()),
		Warmup:  300 * sim.Millisecond,
		Traffic: core.UDPCBR, DownMbps: 10, UpMbps: 10,
		Tracer: nd, Metrics: m,
		TuneDomino: func(c *domino.Config) { c.NoConvertCache = noCache },
	})
	if err != nil {
		return nil, 0, err
	}
	if err := nd.Flush(); err != nil {
		return nil, 0, err
	}
	snap := m.Snapshot()
	counter := func(name string) int64 {
		mv, _ := snap.Get(name)
		return int64(mv.Value)
	}
	side.Batches += counter("convert.batches")
	side.CacheHits += counter("convert.cache.hits")
	side.CacheMisses += counter("convert.cache.misses")
	for _, name := range convert.PassNames {
		side.PassNs[name] += counter("convert.pass." + name + ".ns")
	}
	return buf.Bytes(), res.AggregateMbps, nil
}

func (s *convertSide) finish() {
	if s.Batches > 0 {
		s.HitRatePct = 100 * float64(s.CacheHits) / float64(s.Batches)
		total := int64(0)
		for _, ns := range s.PassNs {
			total += ns
		}
		s.NsPerBatch = float64(total) / float64(s.Batches)
	}
}

func convertReportMain(out string, runs int, duration time.Duration, seed int64) {
	rep := convertReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Runs:       runs,
		Duration:   duration.String(),
		Cached:     convertSide{PassNs: map[string]int64{}},
		Uncached:   convertSide{PassNs: map[string]int64{}},
	}

	fmt.Fprintf(os.Stderr, "convert: %d fig14 placements x %v, cache on/off...\n", runs, duration)
	rep.OutputIdentical = true
	for run := 0; run < runs; run++ {
		runSeed := parallel.Seed(seed, run, parallel.DefaultStride)
		cachedTrace, cachedAgg, err := runConvertSide(&rep.Cached, runSeed, duration, false)
		if err != nil {
			// Infeasible placement (BuildT rejects some traces), same as the
			// Fig 14 driver skips it.
			rep.Skipped++
			continue
		}
		uncachedTrace, uncachedAgg, err := runConvertSide(&rep.Uncached, runSeed, duration, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: convert run %d: cache-off run failed after cache-on succeeded: %v\n", run, err)
			os.Exit(1)
		}
		if !bytes.Equal(cachedTrace, uncachedTrace) {
			fmt.Fprintf(os.Stderr, "FAIL: run %d (seed %d): trace differs with cache on (%d bytes) vs off (%d bytes)\n",
				run, runSeed, len(cachedTrace), len(uncachedTrace))
			rep.OutputIdentical = false
		}
		if cachedAgg != uncachedAgg {
			fmt.Fprintf(os.Stderr, "FAIL: run %d (seed %d): aggregate %.9f Mbps cached vs %.9f uncached\n",
				run, runSeed, cachedAgg, uncachedAgg)
			rep.OutputIdentical = false
		}
	}
	if rep.Skipped == runs {
		fmt.Fprintln(os.Stderr, "benchreport: convert: every placement was infeasible")
		os.Exit(1)
	}
	rep.Cached.finish()
	rep.Uncached.finish()
	if rep.Cached.NsPerBatch > 0 {
		rep.SpeedupPerBatch = rep.Uncached.NsPerBatch / rep.Cached.NsPerBatch
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: convert %.0f ns/batch cached (hit rate %.0f%%) vs %.0f uncached (%.1fx), outputs identical=%v\n",
		out, rep.Cached.NsPerBatch, rep.Cached.HitRatePct,
		rep.Uncached.NsPerBatch, rep.SpeedupPerBatch, rep.OutputIdentical)
	if !rep.OutputIdentical {
		os.Exit(1)
	}
}
