package main

// The -convert mode measures the schedule-conversion pipeline, its batch
// cache and its incremental re-conversion layer on a steady-state Fig 14
// workload: every feasible T(20,3) placement runs four times — {cache
// on/off} × {incremental on/off} — with the NDJSON traces of all four modes
// asserted byte-identical before any timing is reported. The headline
// numbers are the amortized conversion cost per dispatched batch in each
// mode (per-pass ns/batch included) and the cache hit rate.
//
// A separate steady-state probe runs the Fig 7 saturated workload at
// duration D and 2D and differences the two counter sets: the second half
// of the 2D run is pure steady state, so (hits₂−hits₁)/(batches₂−batches₁)
// is the cache hit rate with the cold start excluded. The -min-steady-hit
// and -max-convert-ns flags turn the headline numbers into CI gates.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

// convertSide aggregates the conversion metrics of all runs in one mode.
type convertSide struct {
	Batches     int64 `json:"batches"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// HitRatePct is CacheHits over Batches; the steady-state reuse the cache
	// actually achieves on this workload (cold starts included — see the
	// steady probe for the warmed-up rate).
	HitRatePct float64 `json:"hit_rate_pct"`
	// ExactHits vs CanonicalHits split the hits: canonical-only hits are
	// ones the old exact-state key would have missed.
	ExactHits     int64 `json:"cache_hits_exact"`
	CanonicalHits int64 `json:"cache_hits_canonical"`
	Evictions     int64 `json:"cache_evictions"`
	// CoverReuse / PairReuse count the incremental layer's memo replays;
	// IncrementalPairPct is PairReuse over all in-batch slot pairs
	// (slots − batches), the fraction of TriggerAssign work skipped.
	CoverReuse         int64   `json:"inc_cover_reuse"`
	PairReuse          int64   `json:"inc_pair_reuse"`
	IncrementalPairPct float64 `json:"inc_pair_pct"`
	// PassNs records the wall-clock nanoseconds each pipeline pass spent,
	// summed over all runs; PassNsPerBatch normalizes by the batch count so
	// runs of different lengths are comparable. Cache hits skip the passes
	// entirely, so cached modes only pay these on misses.
	PassNs         map[string]int64   `json:"pass_ns"`
	PassNsPerBatch map[string]float64 `json:"pass_ns_per_batch"`
	// NsPerBatch is total pass time amortized over every dispatched batch —
	// the effective conversion cost the engine pays per batch.
	NsPerBatch float64 `json:"ns_per_batch"`

	slots int64
}

// steadyProbe is the warmed-up cache hit rate on the Fig 7 saturated
// workload, cold start excluded by differencing a D and a 2D run.
type steadyProbe struct {
	Workload string  `json:"workload"`
	Batches  int64   `json:"batches_window"`
	Hits     int64   `json:"hits_window"`
	HitPct   float64 `json:"hit_rate_pct"`
}

type convertReport struct {
	// GoMaxProcs / NumCPU identify the machine shape; single-run wall-clock
	// numbers are only comparable between runs that agree on them.
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Runs       int    `json:"runs"`
	Skipped    int    `json:"skipped"`
	Duration   string `json:"duration"`

	// Full is the engine default (cache + incremental); Baseline has both
	// off. The two partial modes isolate each layer's contribution.
	Full      convertSide `json:"full"`
	CacheOnly convertSide `json:"cache_only"`
	IncOnly   convertSide `json:"incremental_only"`
	Baseline  convertSide `json:"baseline"`
	// SpeedupPerBatch is baseline over full ns/batch: how much cheaper the
	// amortized conversion is with both layers on.
	SpeedupPerBatch float64 `json:"speedup_per_batch"`
	// Steady is the warmed-up hit rate probe (Fig 7 saturated).
	Steady steadyProbe `json:"steady"`
	// OutputIdentical is the differential gate: every placement's NDJSON
	// trace and aggregate throughput matched byte for byte / digit for digit
	// across all four modes. False exits non-zero.
	OutputIdentical bool `json:"output_identical"`
}

// runConvertSide runs one fig14-style DOMINO placement in the given mode,
// accumulating conversion metrics into side and returning the NDJSON trace
// and aggregate throughput for the differential gate.
func runConvertSide(side *convertSide, seed int64, duration time.Duration, noCache, noInc bool) ([]byte, float64, error) {
	// Rebuild the network from the trace each time: a topo.Network carries
	// per-run queue state and cannot be shared between runs.
	tr := topo.RandomTrace(seed, 110, 800)
	rng := rand.New(rand.NewSource(seed))
	net, err := topo.BuildT(tr, 20, 3, phy.DefaultConfig(), phy.Rate12, rng)
	if err != nil {
		return nil, 0, err
	}
	var buf bytes.Buffer
	nd := obs.NewNDJSON(&buf)
	m := obs.NewMetrics()
	res, err := core.RunScenario(core.Scenario{
		Net: net, Downlink: true, Uplink: true, Scheme: core.DOMINO,
		Seed: seed, Duration: sim.Time(duration.Nanoseconds()),
		Warmup:  300 * sim.Millisecond,
		Traffic: core.UDPCBR, DownMbps: 10, UpMbps: 10,
		Tracer: nd, Metrics: m,
		TuneDomino: func(c *domino.Config) {
			c.NoConvertCache = noCache
			c.NoIncremental = noInc
		},
	})
	if err != nil {
		return nil, 0, err
	}
	if err := nd.Flush(); err != nil {
		return nil, 0, err
	}
	snap := m.Snapshot()
	counter := func(name string) int64 {
		mv, _ := snap.Get(name)
		return int64(mv.Value)
	}
	side.Batches += counter("convert.batches")
	side.CacheHits += counter("convert.cache.hits")
	side.CacheMisses += counter("convert.cache.misses")
	side.ExactHits += counter("convert.cache.hits.exact")
	side.CanonicalHits += counter("convert.cache.hits.canonical")
	side.Evictions += counter("convert.cache.evictions")
	side.CoverReuse += counter("convert.inc.cover_reuse")
	side.PairReuse += counter("convert.inc.pair_reuse")
	side.slots += counter("convert.slots")
	for _, name := range convert.PassNames {
		side.PassNs[name] += counter("convert.pass." + name + ".ns")
	}
	return buf.Bytes(), res.AggregateMbps, nil
}

func (s *convertSide) finish() {
	if s.Batches == 0 {
		return
	}
	s.HitRatePct = 100 * float64(s.CacheHits) / float64(s.Batches)
	total := int64(0)
	for name, ns := range s.PassNs {
		total += ns
		s.PassNsPerBatch[name] = float64(ns) / float64(s.Batches)
	}
	s.NsPerBatch = float64(total) / float64(s.Batches)
	if pairs := s.slots - s.Batches; pairs > 0 {
		s.IncrementalPairPct = 100 * float64(s.PairReuse) / float64(pairs)
	}
}

// runSteadyCounters runs the Fig 7 saturated workload for the given duration
// with the default conversion settings and returns the cumulative batch and
// cache-hit counters.
func runSteadyCounters(duration time.Duration, seed int64) (batches, hits int64, err error) {
	m := obs.NewMetrics()
	_, err = core.RunScenario(core.Scenario{
		Net: topo.Figure7(), Downlink: true, Uplink: true, Scheme: core.DOMINO,
		Seed: seed, Duration: sim.Time(duration.Nanoseconds()),
		Warmup:  300 * sim.Millisecond,
		Traffic: core.Saturated,
		Metrics: m,
	})
	if err != nil {
		return 0, 0, err
	}
	snap := m.Snapshot()
	counter := func(name string) int64 {
		mv, _ := snap.Get(name)
		return int64(mv.Value)
	}
	return counter("convert.batches"), counter("convert.cache.hits"), nil
}

func newConvertSide() convertSide {
	return convertSide{PassNs: map[string]int64{}, PassNsPerBatch: map[string]float64{}}
}

func convertReportMain(out string, runs int, duration time.Duration, seed int64, minSteadyHit, maxNsPerBatch float64) {
	rep := convertReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Runs:       runs,
		Duration:   duration.String(),
		Full:       newConvertSide(),
		CacheOnly:  newConvertSide(),
		IncOnly:    newConvertSide(),
		Baseline:   newConvertSide(),
	}

	// mode order: full, cache-only, incremental-only, baseline.
	modes := []struct {
		side           *convertSide
		noCache, noInc bool
		name           string
	}{
		{&rep.Full, false, false, "full"},
		{&rep.CacheOnly, false, true, "cache_only"},
		{&rep.IncOnly, true, false, "incremental_only"},
		{&rep.Baseline, true, true, "baseline"},
	}

	fmt.Fprintf(os.Stderr, "convert: %d fig14 placements x %v, {cache,incremental} on/off...\n", runs, duration)
	rep.OutputIdentical = true
	for run := 0; run < runs; run++ {
		runSeed := parallel.Seed(seed, run, parallel.DefaultStride)
		var refTrace []byte
		var refAgg float64
		feasible := true
		for mi, mode := range modes {
			trace, agg, err := runConvertSide(mode.side, runSeed, duration, mode.noCache, mode.noInc)
			if err != nil {
				if mi == 0 {
					// Infeasible placement (BuildT rejects some traces), same
					// as the Fig 14 driver skips it.
					rep.Skipped++
					feasible = false
					break
				}
				fmt.Fprintf(os.Stderr, "benchreport: convert run %d: %s run failed after %s succeeded: %v\n",
					run, mode.name, modes[0].name, err)
				os.Exit(1)
			}
			if mi == 0 {
				refTrace, refAgg = trace, agg
				continue
			}
			if !bytes.Equal(refTrace, trace) {
				fmt.Fprintf(os.Stderr, "FAIL: run %d (seed %d): trace differs between full (%d bytes) and %s (%d bytes)\n",
					run, runSeed, len(refTrace), mode.name, len(trace))
				rep.OutputIdentical = false
			}
			if refAgg != agg {
				fmt.Fprintf(os.Stderr, "FAIL: run %d (seed %d): aggregate %.9f Mbps full vs %.9f %s\n",
					run, runSeed, refAgg, agg, mode.name)
				rep.OutputIdentical = false
			}
		}
		_ = feasible
	}
	if rep.Skipped == runs {
		fmt.Fprintln(os.Stderr, "benchreport: convert: every placement was infeasible")
		os.Exit(1)
	}
	for _, mode := range modes {
		mode.side.finish()
	}
	if rep.Full.NsPerBatch > 0 {
		rep.SpeedupPerBatch = rep.Baseline.NsPerBatch / rep.Full.NsPerBatch
	}

	// Steady-state probe: Fig 7 saturated at D and 2D; the difference is the
	// warmed-up window.
	fmt.Fprintf(os.Stderr, "convert: steady-state probe (fig7 saturated, %v and %v)...\n", duration, 2*duration)
	b1, h1, err := runSteadyCounters(duration, seed)
	if err == nil {
		var b2, h2 int64
		b2, h2, err = runSteadyCounters(2*duration, seed)
		if err == nil {
			rep.Steady = steadyProbe{
				Workload: "fig7_saturated",
				Batches:  b2 - b1,
				Hits:     h2 - h1,
			}
			if rep.Steady.Batches > 0 {
				rep.Steady.HitPct = 100 * float64(rep.Steady.Hits) / float64(rep.Steady.Batches)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: convert steady probe: %v\n", err)
		os.Exit(1)
	}

	fail := !rep.OutputIdentical
	if minSteadyHit > 0 && rep.Steady.HitPct < minSteadyHit {
		fmt.Fprintf(os.Stderr, "FAIL: steady-state hit rate %.1f%% below the %.0f%% gate\n",
			rep.Steady.HitPct, minSteadyHit)
		fail = true
	}
	if maxNsPerBatch > 0 && rep.Full.NsPerBatch > maxNsPerBatch {
		fmt.Fprintf(os.Stderr, "FAIL: %.0f ns/batch over the %.0f ns budget\n",
			rep.Full.NsPerBatch, maxNsPerBatch)
		fail = true
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s [gomaxprocs=%d num_cpu=%d]: %.0f ns/batch full (hit %.0f%%, steady %.0f%%, pair reuse %.0f%%) vs %.0f baseline (%.1fx), outputs identical=%v\n",
		out, rep.GoMaxProcs, rep.NumCPU,
		rep.Full.NsPerBatch, rep.Full.HitRatePct, rep.Steady.HitPct, rep.Full.IncrementalPairPct,
		rep.Baseline.NsPerBatch, rep.SpeedupPerBatch, rep.OutputIdentical)
	if fail {
		os.Exit(1)
	}
}
