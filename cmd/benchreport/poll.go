package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/phy"
	"repro/internal/poll"
	"repro/internal/rop" // also registers the default ROP poller
)

// pollerBench is one registered polling scheme's hot-path numbers.
type pollerBench struct {
	Poller  string `json:"poller"`
	Clients int    `json:"clients"`
	Rounds  int    `json:"rounds"`
	// Assign is the layout recomputation the engine pays on client churn.
	Assign microBench `json:"assign"`
	// Poll is one complete decode cycle (all rounds).
	Poll microBench `json:"poll"`
}

// pollReport is BENCH_poll.json: per-poller assignment and decode costs from
// the internal/poll registry, plus the zero-allocation gate on the default
// ROP decode hot path (rop.DecodeInto with warm scratch).
type pollReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Pollers    []pollerBench `json:"pollers"`
	// ROPDecodeInto is the scratch-reusing decode; its AllocsPerOp must be 0
	// (hard gate — the registry seam must not have put allocations on the
	// paper's per-poll path).
	ROPDecodeInto microBench `json:"rop_decode_into"`
}

// benchRSS and benchQueue are the same deterministic stand-ins the poll
// property tests use: RSS spread over 17 dB, small nonzero backlogs.
func benchRSS(c phy.NodeID) float64 { return -40 - float64(c%17) }
func benchQueue(c phy.NodeID) int   { return int(c%5) + 1 }

func pollReportMain(out string, seed int64) {
	rep := pollReport{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}

	for _, name := range poll.Names() {
		d, ok := poll.Lookup(name)
		if !ok {
			continue
		}
		// Bench every poller at its ceiling, or at 96 clients (4x the ROP
		// subchannel count) for unbounded ones.
		n := 96
		if d.MaxClients > 0 && n > d.MaxClients {
			n = d.MaxClients
		}
		clients := make([]phy.NodeID, n)
		for i := range clients {
			clients[i] = phy.NodeID(i + 2)
		}
		build := func() poll.Poller {
			p, err := poll.Build(name, nil)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: build %s: %v\n", name, err)
				os.Exit(1)
			}
			return p
		}
		fmt.Fprintf(os.Stderr, "poller %s: %d clients, assign + poll...\n", name, n)
		p := build()
		p.Assign(clients, benchRSS)
		pb := pollerBench{Poller: name, Clients: n, Rounds: p.Rounds()}
		r := minRounds(3,
			func() testing.BenchmarkResult {
				return testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						p.Assign(clients, benchRSS)
					}
				})
			},
			func() testing.BenchmarkResult {
				rng := rand.New(rand.NewSource(seed))
				ctx := poll.Context{Queue: benchQueue, RSSAtAP: benchRSS, NoiseDBm: -95, Rng: rng}
				return testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						p.Poll(ctx)
					}
				})
			},
		)
		pb.Assign, pb.Poll = micro(r[0]), micro(r[1])
		rep.Pollers = append(rep.Pollers, pb)
	}

	// The zero-alloc gate: ROP's decode with caller-owned scratch. 24 clients
	// (a full subchannel set), warm Result reused across iterations.
	fmt.Fprintln(os.Stderr, "rop.DecodeInto zero-alloc gate...")
	clients := make([]phy.NodeID, rop.MaxClients)
	for i := range clients {
		clients[i] = phy.NodeID(i + 2)
	}
	a := rop.Assign(clients, benchRSS)
	var res rop.Result
	rop.DecodeInto(&res, a, benchQueue, benchRSS, -95) // warm the scratch
	rep.ROPDecodeInto = micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rop.DecodeInto(&res, a, benchQueue, benchRSS, -95)
		}
	}))

	fail := false
	if rep.ROPDecodeInto.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: rop.DecodeInto allocates %d/op with warm scratch, want 0\n",
			rep.ROPDecodeInto.AllocsPerOp)
		fail = true
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s [gomaxprocs=%d num_cpu=%d]:", out, rep.GoMaxProcs, rep.NumCPU)
	for _, pb := range rep.Pollers {
		fmt.Printf(" %s(n=%d,r=%d) assign %.0f ns poll %.0f ns;",
			pb.Poller, pb.Clients, pb.Rounds, pb.Assign.NsPerOp, pb.Poll.NsPerOp)
	}
	fmt.Printf(" DecodeInto %.0f ns %d allocs\n",
		rep.ROPDecodeInto.NsPerOp, rep.ROPDecodeInto.AllocsPerOp)
	if fail {
		os.Exit(1)
	}
}
