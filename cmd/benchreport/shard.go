package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
)

// shardReport is BENCH_shard.json: the interference-domain sharded runner on
// the grid campus, swept over worker counts. The identity-hash gate is
// unconditional — every point must produce the same merged output — while the
// speedup gate only applies on machines with enough cores to show one.
type shardReport struct {
	GoMaxProcs int                  `json:"gomaxprocs"`
	NumCPU     int                  `json:"num_cpu"`
	Duration   string               `json:"duration"`
	Sweep      exp.ShardSweepResult `json:"sweep"`
	// CoresCurve pins the worker count at the sweep's widest point and sweeps
	// GOMAXPROCS 1/2/4/8 (capped at NumCPU): the cores-vs-throughput curve.
	// On a single-core host it honestly collapses to one point — re-record on
	// a multi-core machine for a real scaling curve.
	CoresCurve []exp.CorePoint `json:"cores_curve"`
	// SpeedupGated reports whether the -min-speedup gate was enforced; it is
	// false on machines with fewer than 4 CPUs, where a multi-worker sweep
	// cannot speed up no matter how good the sharding is.
	SpeedupGated bool `json:"speedup_gated"`
}

func shardReportMain(out string, seed int64, minSpeedup float64, buildings int, dur time.Duration) {
	rep := shardReport{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	o := shardSweepOpts(seed, buildings, dur)
	rep.Duration = dur.String()
	fmt.Fprintf(os.Stderr, "shard sweep: %d buildings x %d APs x %d clients, %s sim time, workers %v...\n",
		o.Buildings, o.APsPerBuilding, o.ClientsPerAP, rep.Duration, o.ShardCounts)
	sweep, err := exp.ShardSweep(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: shard sweep: %v\n", err)
		os.Exit(1)
	}
	rep.Sweep = sweep

	workers := o.ShardCounts[len(o.ShardCounts)-1]
	fmt.Fprintf(os.Stderr, "cores curve: workers=%d, gomaxprocs 1/2/4/8 capped at %d CPU(s)...\n",
		workers, rep.NumCPU)
	curve, err := exp.CoresCurve(o, workers, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: cores curve: %v\n", err)
		os.Exit(1)
	}
	rep.CoresCurve = curve

	fail := false
	// The determinism contract extends across GOMAXPROCS: the merged output
	// must not depend on how many cores executed the windows.
	for _, p := range curve {
		if len(sweep.Points) > 0 && p.Hash != sweep.Points[0].Hash {
			fmt.Fprintf(os.Stderr, "FAIL: cores=%d output hash %s differs from the worker sweep's %s\n",
				p.Cores, p.Hash, sweep.Points[0].Hash)
			fail = true
		}
	}
	// Determinism gate, unconditional: the sharded runner's contract is that
	// the merged output does not depend on the worker count.
	if !sweep.IdenticalOutput {
		fmt.Fprintln(os.Stderr, "FAIL: output hash differs across worker counts — sharded-runner determinism violation:")
		for _, p := range sweep.Points {
			fmt.Fprintf(os.Stderr, "  workers=%d hash=%s\n", p.Workers, p.Hash)
		}
		fail = true
	}

	// Speedup gate, conditional: only meaningful with real cores underneath.
	rep.SpeedupGated = minSpeedup > 0 && rep.NumCPU >= 4
	if minSpeedup > 0 && !rep.SpeedupGated {
		fmt.Fprintf(os.Stderr,
			"WARN: skipping the -min-speedup %.2fx gate: this machine has %d CPU(s); a worker sweep cannot exhibit parallel speedup here. Re-run on a >=4-core host to enforce it.\n",
			minSpeedup, rep.NumCPU)
	}
	if rep.SpeedupGated {
		got := 0.0
		for _, p := range sweep.Points {
			if p.Workers == 4 {
				got = p.Speedup
			}
		}
		if got < minSpeedup {
			fmt.Fprintf(os.Stderr, "FAIL: speedup at 4 workers is %.2fx, below the -min-speedup gate %.2fx\n",
				got, minSpeedup)
			fail = true
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s [gomaxprocs=%d num_cpu=%d]: %d APs, %d domains, identical_output=%v,",
		out, rep.GoMaxProcs, rep.NumCPU, sweep.APs, sweep.Domains, sweep.IdenticalOutput)
	for _, p := range sweep.Points {
		fmt.Printf(" w%d %.2fs (%.2fx)", p.Workers, p.WallSec, p.Speedup)
	}
	fmt.Println()
	fmt.Printf("cores curve [workers=%d]:", workers)
	for _, p := range curve {
		fmt.Printf(" c%d %.3f sim-s/s (%.2fx)", p.Cores, p.SimPerWallSec, p.Speedup)
	}
	fmt.Println()
	if fail {
		os.Exit(1)
	}
}

// shardSweepOpts sizes the sweep. The committed BENCH_shard.json uses the
// paper-scale 1,000-AP campus (50 buildings); the bench-shard CI gate shrinks
// the building count and duration so the four-point sweep stays tractable,
// which exercises the identical gates on a smaller partition.
func shardSweepOpts(seed int64, buildings int, dur time.Duration) exp.ShardOptions {
	return exp.ShardOptions{
		Seed:           seed,
		Buildings:      buildings,
		APsPerBuilding: 20,
		ClientsPerAP:   2,
		Duration:       sim.Time(dur.Nanoseconds()),
		Warmup:         sim.Time(dur.Nanoseconds()) / 10,
		ShardCounts:    []int{1, 2, 4, 8},
	}
}
