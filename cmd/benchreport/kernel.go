package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/ofdm"
	"repro/internal/sim"
)

// kernelReport is BENCH_kernel.json: the event-kernel and ROP-PHY hot-path
// numbers this PR's pooled queue and planned FFT are accountable to.
type kernelReport struct {
	GoMaxProcs    int    `json:"gomaxprocs"`
	NumCPU        int    `json:"num_cpu"`
	Fig14Runs     int    `json:"fig14_runs"`
	Fig14Duration string `json:"fig14_duration"`

	// Pooled-kernel micro-benchmarks. The allocs_per_op fields are the
	// acceptance gate: At/After scheduling and the fire path must allocate
	// nothing once the pool is warm.
	KernelAtCancel  microBench `json:"kernel_at_cancel"`
	KernelAfterFire microBench `json:"kernel_after_fire"`
	KernelRunDrain  microBench `json:"kernel_run_drain_per_event"`
	// The retained container/heap queue on the same churn workload, for the
	// before/after story.
	KernelReferenceAfterFire microBench `json:"kernel_reference_after_fire"`
	KernelSpeedup            float64    `json:"kernel_speedup"`

	// Planned FFT vs the retained naive reference, 256 points (the ROP
	// control-symbol size). fft256_planned must report 0 allocs/op.
	FFT256Planned   microBench `json:"fft256_planned"`
	FFT256Reference microBench `json:"fft256_reference"`
	FFT256Speedup   float64    `json:"fft256_speedup"`
	// One full ROP round (modulate + channel + FFT + demod) on a reused
	// Poller, default 24-subchannel layout, 2 clients.
	PollRound microBench `json:"poll_round"`

	// End-to-end: Fig 14 serial wall clock, compared against the
	// BENCH_parallel.json recording when its config matches.
	Fig14SerialSec         float64 `json:"fig14_serial_sec"`
	BaselineFig14SerialSec float64 `json:"baseline_fig14_serial_sec,omitempty"`
	Fig14ImprovementPct    float64 `json:"fig14_improvement_pct,omitempty"`
}

// benchAtCancel measures schedule + eager cancel on a warm pool.
func benchAtCancel() testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		k := sim.New(1)
		fn := func() {}
		for i := 0; i < 8; i++ {
			k.At(sim.Time(i), fn)
		}
		k.Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.At(k.Now()+sim.Microsecond, fn).Cancel()
		}
	})
}

// benchAfterFire measures the After + fire cycle via a self-rescheduling
// event chain (the kernel's steady-state shape in every engine).
func benchAfterFire() testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		k := sim.New(1)
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < b.N {
				k.After(sim.Microsecond, tick)
			}
		}
		k.After(sim.Microsecond, tick)
		b.ReportAllocs()
		b.ResetTimer()
		k.Run()
	})
}

// benchRunDrain schedules events in batches and drains them with RunUntil,
// reporting the per-event cost of the pop-and-run loop with a deeper heap
// (512 outstanding events) than the chain benchmark's single event.
func benchRunDrain() testing.BenchmarkResult {
	const batch = 512
	return testing.Benchmark(func(b *testing.B) {
		k := sim.New(1)
		fn := func() {}
		rng := rand.New(rand.NewSource(7))
		b.ReportAllocs()
		b.ResetTimer()
		done := 0
		for done < b.N {
			n := batch
			if left := b.N - done; left < n {
				n = left
			}
			base := k.Now()
			for i := 0; i < n; i++ {
				k.At(base+sim.Time(1+rng.Intn(batch)), fn)
			}
			k.RunUntil(base + batch)
			done += n
		}
	})
}

func benchFFT256(planned bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		x := make([]complex128, 256)
		x[1] = 1
		ofdm.PlanFor(256)
		b.ReportAllocs()
		b.ResetTimer()
		if planned {
			for i := 0; i < b.N; i++ {
				ofdm.FFT(x)
			}
			return
		}
		for i := 0; i < b.N; i++ {
			ofdm.ReferenceFFT(x)
		}
	})
}

func benchPollRound() testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		l := ofdm.DefaultLayout()
		p := ofdm.NewPoller(l)
		rng := rand.New(rand.NewSource(3))
		clients := []ofdm.Client{{Subchannel: 0, GainDB: 3}, {Subchannel: 5}}
		values := []int{17, 42}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Poll(clients, values, 0.05, rng)
		}
	})
}

func kernelReportMain(out, baselinePath string, runs int, duration time.Duration, seed int64) {
	rep := kernelReport{
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Fig14Runs:     runs,
		Fig14Duration: duration.String(),
	}

	fmt.Fprintln(os.Stderr, "kernel micro-benchmarks, pooled vs reference queue...")
	kr := minRounds(3,
		benchAtCancel,
		benchAfterFire,
		benchRunDrain,
		func() testing.BenchmarkResult {
			sim.SetReferenceQueue(true)
			defer sim.SetReferenceQueue(false)
			return benchAfterFire()
		},
	)
	rep.KernelAtCancel = micro(kr[0])
	rep.KernelAfterFire = micro(kr[1])
	rep.KernelRunDrain = micro(kr[2])
	rep.KernelReferenceAfterFire = micro(kr[3])
	if rep.KernelAfterFire.NsPerOp > 0 {
		rep.KernelSpeedup = rep.KernelReferenceAfterFire.NsPerOp / rep.KernelAfterFire.NsPerOp
	}

	fmt.Fprintln(os.Stderr, "FFT 256 planned vs reference, poll round...")
	fr := minRounds(3,
		func() testing.BenchmarkResult { return benchFFT256(true) },
		func() testing.BenchmarkResult { return benchFFT256(false) },
		benchPollRound,
	)
	rep.FFT256Planned = micro(fr[0])
	rep.FFT256Reference = micro(fr[1])
	rep.PollRound = micro(fr[2])
	if rep.FFT256Planned.NsPerOp > 0 {
		rep.FFT256Speedup = rep.FFT256Reference.NsPerOp / rep.FFT256Planned.NsPerOp
	}

	fmt.Fprintf(os.Stderr, "fig14: %d runs x %v, workers=1...\n", runs, duration)
	o := exp.Options{
		Seed: seed, Duration: sim.Time(duration.Nanoseconds()),
		Warmup: 300 * sim.Millisecond, Runs: runs, Workers: 1,
	}
	t0 := time.Now()
	if _, err := exp.Fig14(o); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: fig14: %v\n", err)
		os.Exit(1)
	}
	rep.Fig14SerialSec = time.Since(t0).Seconds()

	// Compare against the recorded parallel-harness baseline, but only when
	// that file measured the same workload.
	if data, err := os.ReadFile(baselinePath); err == nil {
		var base struct {
			Fig14Runs     int       `json:"fig14_runs"`
			Fig14Duration string    `json:"fig14_duration"`
			Fig14         wallClock `json:"fig14"`
		}
		if json.Unmarshal(data, &base) == nil && base.Fig14.SerialSec > 0 {
			if base.Fig14Runs == runs && base.Fig14Duration == duration.String() {
				rep.BaselineFig14SerialSec = base.Fig14.SerialSec
				rep.Fig14ImprovementPct = 100 * (base.Fig14.SerialSec - rep.Fig14SerialSec) / base.Fig14.SerialSec
			} else {
				fmt.Fprintf(os.Stderr, "note: %s measured %d runs x %s, not comparable to this config\n",
					baselinePath, base.Fig14Runs, base.Fig14Duration)
			}
		}
	} else {
		fmt.Fprintf(os.Stderr, "note: no baseline at %s, skipping the wall-clock comparison\n", baselinePath)
	}

	// Hard gates: the pooled schedule/fire paths and the planned FFT must be
	// allocation-free in steady state.
	fail := false
	for _, g := range []struct {
		name string
		mb   microBench
	}{
		{"kernel_at_cancel", rep.KernelAtCancel},
		{"kernel_after_fire", rep.KernelAfterFire},
		{"kernel_run_drain_per_event", rep.KernelRunDrain},
		{"fft256_planned", rep.FFT256Planned},
		{"poll_round", rep.PollRound},
	} {
		if g.mb.AllocsPerOp != 0 {
			fmt.Fprintf(os.Stderr, "FAIL: %s allocates %d/op in steady state, want 0\n", g.name, g.mb.AllocsPerOp)
			fail = true
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: After+fire %.1f ns/op (reference %.1f, %.2fx), FFT256 %.0f ns/op (reference %.0f, %.2fx), fig14 serial %.2fs",
		out,
		rep.KernelAfterFire.NsPerOp, rep.KernelReferenceAfterFire.NsPerOp, rep.KernelSpeedup,
		rep.FFT256Planned.NsPerOp, rep.FFT256Reference.NsPerOp, rep.FFT256Speedup,
		rep.Fig14SerialSec)
	if rep.BaselineFig14SerialSec > 0 {
		fmt.Printf(" (%+.1f%% vs %.2fs baseline)", -rep.Fig14ImprovementPct, rep.BaselineFig14SerialSec)
	}
	fmt.Println()
	if fail {
		os.Exit(1)
	}
}
