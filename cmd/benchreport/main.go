// Command benchreport measures the parallel experiment harness against the
// serial baseline and the correlator hot path, and writes the results as
// machine-readable JSON (BENCH_parallel.json at the repo root), so the perf
// trajectory is tracked commit over commit.
//
// Usage:
//
//	go run ./cmd/benchreport                     # defaults, writes BENCH_parallel.json
//	go run ./cmd/benchreport -runs 16 -duration 2s -out /tmp/bench.json
//	go run ./cmd/benchreport -obs                # observability overhead, writes BENCH_obs.json
//	go run ./cmd/benchreport -obs -strict        # fail (exit 1) on >2% disabled-path regression
//	go run ./cmd/benchreport -kernel             # pooled kernel + planned FFT, writes BENCH_kernel.json
//	go run ./cmd/benchreport -convert            # conversion pipeline + batch cache, writes BENCH_convert.json
//	go run ./cmd/benchreport -shard              # sharded campus runner sweep, writes BENCH_shard.json
//	go run ./cmd/benchreport -shard -min-speedup 3   # also gate 4-worker speedup (≥4-CPU hosts only)
//	go run ./cmd/benchreport -poll               # per-poller assign/decode costs, writes BENCH_poll.json
//
// The wall-clock comparisons run each driver twice — workers=1 and
// workers=GOMAXPROCS — on the same seed; the outputs are asserted identical
// (the harness's determinism contract) before the timing is reported.
//
// -obs measures the tracing layer's cost on the two benchmark-pinned hot
// paths (the kernel event loop and the correlator Detect), disabled vs
// enabled. The disabled paths must allocate nothing (hard error) and stay
// within 2% of a same-run plain-Metric control (warning, or exit 1 with
// -strict); the drift against the recorded BENCH_parallel.json baseline is
// reported but never fails, since it includes machine-speed changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/gold"
	"repro/internal/obs"
	"repro/internal/sim"
)

type wallClock struct {
	SerialSec   float64 `json:"serial_sec"`
	ParallelSec float64 `json:"parallel_sec"`
	Speedup     float64 `json:"speedup"`
}

type microBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	GoMaxProcs     int        `json:"gomaxprocs"`
	NumCPU         int        `json:"num_cpu"`
	Fig14Runs      int        `json:"fig14_runs"`
	Fig14Duration  string     `json:"fig14_duration"`
	CurveTrials    int        `json:"curve_trials"`
	Fig14          wallClock  `json:"fig14"`
	DetectionCurve wallClock  `json:"detection_curve"`
	Metric         microBench `json:"correlator_metric"`
	Detect         microBench `json:"correlator_detect"`
	AddShifted     microBench `json:"add_shifted"`
	DetectionTrial microBench `json:"detection_trial_per_trial"`
}

func micro(b testing.BenchmarkResult) microBench {
	return microBench{
		NsPerOp:     float64(b.T.Nanoseconds()) / float64(b.N),
		AllocsPerOp: b.AllocsPerOp(),
		BytesPerOp:  b.AllocedBytesPerOp(),
	}
}

func main() {
	var (
		out         = flag.String("out", "", "output path (default BENCH_parallel.json, or BENCH_obs.json with -obs)")
		runs        = flag.Int("runs", 16, "Fig 14 repetition count")
		duration    = flag.Duration("duration", 2*time.Second, "simulated run length per Fig 14 placement")
		trials      = flag.Int("trials", 1000, "detection-curve trials per point")
		seed        = flag.Int64("seed", 1, "base seed")
		obsMode     = flag.Bool("obs", false, "measure observability overhead instead (kernel + correlator, disabled vs enabled)")
		kernelMode  = flag.Bool("kernel", false, "measure the pooled event kernel and planned FFT instead, writes BENCH_kernel.json")
		convertMode = flag.Bool("convert", false, "measure the schedule-conversion pipeline and batch cache instead, writes BENCH_convert.json")
		shardMode   = flag.Bool("shard", false, "measure the interference-domain sharded runner on the grid campus instead, writes BENCH_shard.json")
		pollMode    = flag.Bool("poll", false, "measure every registered poller's assign/decode hot paths instead, writes BENCH_poll.json")
		strict      = flag.Bool("strict", false, "with -obs: exit 1 when the disabled path regresses >2% vs the baseline")
		baseline    = flag.String("baseline", "BENCH_parallel.json", "with -obs: baseline report for the correlator_detect comparison")

		minSteadyHit  = flag.Float64("min-steady-hit", 0, "with -convert: exit 1 when the steady-state cache hit rate is below this percentage (0 disables)")
		maxNsPerBatch = flag.Float64("max-convert-ns", 0, "with -convert: exit 1 when full-mode ns/batch exceeds this budget (0 disables)")
		maxHistNs     = flag.Float64("max-hist-ns", 0, "with -obs: exit 1 when LogHist.Record exceeds this ns/op budget (0 disables)")
		minSpeedup    = flag.Float64("min-speedup", 0, "with -shard: exit 1 when the 4-worker speedup falls below this factor; skipped with a warning on machines with <4 CPUs (0 disables)")
		shardBldgs    = flag.Int("shard-buildings", 50, "with -shard: grid campus building count (50 x 20 APs = the 1,000-AP curve)")
		shardDur      = flag.Duration("shard-duration", 100*time.Millisecond, "with -shard: simulated time per sweep point")
	)
	flag.Parse()

	if runtime.NumCPU() == 1 {
		fmt.Fprintln(os.Stderr, strings.Repeat("!", 72))
		fmt.Fprintln(os.Stderr, "!! benchreport: this machine exposes ONE CPU. All speedup numbers in")
		fmt.Fprintln(os.Stderr, "!! the recorded report reflect single-core scheduling overhead, not")
		fmt.Fprintln(os.Stderr, "!! parallel capacity. Determinism/identity gates still hold; any")
		fmt.Fprintln(os.Stderr, "!! speedup gate is skipped. Re-record on a multi-core host for real")
		fmt.Fprintln(os.Stderr, "!! scaling curves.")
		fmt.Fprintln(os.Stderr, strings.Repeat("!", 72))
	}

	if *shardMode {
		if *out == "" {
			*out = "BENCH_shard.json"
		}
		shardReportMain(*out, *seed, *minSpeedup, *shardBldgs, *shardDur)
		return
	}
	if *pollMode {
		if *out == "" {
			*out = "BENCH_poll.json"
		}
		pollReportMain(*out, *seed)
		return
	}
	if *obsMode {
		if *out == "" {
			*out = "BENCH_obs.json"
		}
		obsReportMain(*out, *baseline, *strict, *maxHistNs)
		return
	}
	if *kernelMode {
		if *out == "" {
			*out = "BENCH_kernel.json"
		}
		kernelReportMain(*out, *baseline, *runs, *duration, *seed)
		return
	}
	if *convertMode {
		if *out == "" {
			*out = "BENCH_convert.json"
		}
		convertReportMain(*out, *runs, *duration, *seed, *minSteadyHit, *maxNsPerBatch)
		return
	}
	if *out == "" {
		*out = "BENCH_parallel.json"
	}

	rep := report{
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Fig14Runs:     *runs,
		Fig14Duration: duration.String(),
		CurveTrials:   *trials,
	}

	// Fig 14 wall clock, serial vs all cores, asserting identical output.
	o := exp.Options{
		Seed: *seed, Duration: sim.Time(duration.Nanoseconds()),
		Warmup: 300 * sim.Millisecond, Runs: *runs,
	}
	fmt.Fprintf(os.Stderr, "fig14: %d runs x %v, workers=1...\n", *runs, *duration)
	o.Workers = 1
	t0 := time.Now()
	serial, err := exp.Fig14(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: fig14: %v\n", err)
		os.Exit(1)
	}
	rep.Fig14.SerialSec = time.Since(t0).Seconds()
	fmt.Fprintf(os.Stderr, "fig14: workers=%d...\n", rep.GoMaxProcs)
	o.Workers = 0
	t0 = time.Now()
	par, err := exp.Fig14(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: fig14: %v\n", err)
		os.Exit(1)
	}
	rep.Fig14.ParallelSec = time.Since(t0).Seconds()
	rep.Fig14.Speedup = rep.Fig14.SerialSec / rep.Fig14.ParallelSec
	assertSameCDF(serial, par)

	set, err := gold.NewSet(7)
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(os.Stderr, "detection curve: %d trials/point, workers=1 then %d...\n", *trials, rep.GoMaxProcs)
	t0 = time.Now()
	curveSerial := gold.MeasureDetectionCurve(set, 7, *trials, 10, *seed, 1)
	rep.DetectionCurve.SerialSec = time.Since(t0).Seconds()
	t0 = time.Now()
	curvePar := gold.MeasureDetectionCurve(set, 7, *trials, 10, *seed, 0)
	rep.DetectionCurve.ParallelSec = time.Since(t0).Seconds()
	rep.DetectionCurve.Speedup = rep.DetectionCurve.SerialSec / rep.DetectionCurve.ParallelSec
	for c := range curveSerial {
		if curveSerial[c] != curvePar[c] {
			panic(fmt.Sprintf("determinism violation: curve[%d] %v vs %v", c, curveSerial[c], curvePar[c]))
		}
	}

	// Correlator hot-path micro-benchmarks.
	fmt.Fprintln(os.Stderr, "correlator micro-benchmarks...")
	corr := gold.NewCorrelator(set)
	rx := set.Combine(1, 2, 3, 4)
	rep.Metric = micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			corr.Metric(rx, 1)
		}
	}))
	rep.Detect = micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			corr.Detect(rx, 1)
		}
	}))
	buf := make([]float64, set.Len())
	rep.AddShifted = micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set.AddShifted(buf, 1, 63, 1, 2, 3, 4)
		}
	}))
	rep.DetectionTrial = micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gold.DetectionTrialParallel(set, gold.Setup{Senders: 2, Mode: gold.DifferentSignatures},
				4, 64, 10, int64(i+1), 1)
		}
	}))
	// testing.Benchmark reports the whole 64-trial shard; scale to per trial.
	rep.DetectionTrial.NsPerOp /= 64
	rep.DetectionTrial.AllocsPerOp /= 64
	rep.DetectionTrial.BytesPerOp /= 64

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s [gomaxprocs=%d num_cpu=%d]: fig14 speedup %.2fx, curve speedup %.2fx, Metric %.0f ns/op %d allocs/op\n",
		*out, rep.GoMaxProcs, rep.NumCPU,
		rep.Fig14.Speedup, rep.DetectionCurve.Speedup, rep.Metric.NsPerOp, rep.Metric.AllocsPerOp)
}

// obsPair reports one hot path with observability disabled (the default) and
// enabled (a minimal counting consumer).
type obsPair struct {
	Disabled microBench `json:"disabled"`
	Enabled  microBench `json:"enabled"`
	// EnabledOverheadPct is the enabled path's ns/op cost relative to
	// disabled — the price actually paid when -trace/-metrics is on.
	EnabledOverheadPct float64 `json:"enabled_overhead_pct"`
}

func pair(dis, en testing.BenchmarkResult) obsPair {
	p := obsPair{Disabled: micro(dis), Enabled: micro(en)}
	if p.Disabled.NsPerOp > 0 {
		p.EnabledOverheadPct = 100 * (p.Enabled.NsPerOp - p.Disabled.NsPerOp) / p.Disabled.NsPerOp
	}
	return p
}

type obsReport struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Kernel     obsPair `json:"kernel_event_loop"`
	Detect     obsPair `json:"correlator_detect"`
	// MetricControl is plain Metric measured in this same run. Detect is
	// Metric plus one comparison, so disabled Detect vs this control is the
	// ≤2% zero-overhead gate — immune to the machine running at a different
	// speed than when a baseline file was recorded. ControlDeltaPct is that
	// comparison.
	MetricControl   microBench `json:"metric_control"`
	ControlDeltaPct float64    `json:"control_delta_pct"`
	// Hist is LogHist.Record on a cycling sample stream — the per-packet
	// histogram cost paid at every enqueue/dequeue/delivery when -metrics is
	// on. Must stay allocation-free (hard gate) and under -max-hist-ns when a
	// budget is set.
	Hist microBench `json:"loghist_record"`
	// Span is the engines' causal-span hot path — a nil-guarded Spans.Next
	// plus a chain-depth Record, exactly the noteTrigger shape. Disabled is
	// the nil state untraced runs execute: one branch, zero allocations (hard
	// gate).
	Span obsPair `json:"span_path"`
	// BaselineDetectNs is BENCH_parallel.json's correlator_detect ns/op
	// (zero when no baseline file was readable); BaselineDeltaPct compares
	// the disabled Detect path against it. Informational: it conflates code
	// changes with machine-speed drift between recordings.
	BaselineDetectNs float64 `json:"baseline_detect_ns,omitempty"`
	BaselineDeltaPct float64 `json:"baseline_delta_pct,omitempty"`
}

// benchKernel measures the event-loop fire path: a self-rescheduling event
// chain, with or without an OnEvent hook (mirrors internal/sim BenchmarkKernel).
func benchKernel(hook func(sim.EventInfo)) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		k := sim.New(1)
		k.OnEvent(hook)
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < b.N {
				k.After(sim.Microsecond, tick)
			}
		}
		k.After(sim.Microsecond, tick)
		b.ReportAllocs()
		b.ResetTimer()
		k.Run()
	})
}

type countingTracer struct{ n int64 }

func (c *countingTracer) Emit(obs.Record) { c.n++ }

func nsOf(r testing.BenchmarkResult) float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// minRounds interleaves the given benchmarks round-robin for `rounds` rounds
// and keeps each one's fastest result. Back-to-back single-shot benchmarks on
// a shared machine can differ by tens of percent as the host clock scales;
// interleaving means every benchmark sees the same speed mix, and min-of-N
// discards the throttled rounds.
func minRounds(rounds int, fns ...func() testing.BenchmarkResult) []testing.BenchmarkResult {
	out := make([]testing.BenchmarkResult, len(fns))
	for round := 0; round < rounds; round++ {
		for i, fn := range fns {
			if r := fn(); round == 0 || nsOf(r) < nsOf(out[i]) {
				out[i] = r
			}
		}
	}
	return out
}

// spanSink defeats dead-code elimination in benchSpanPath.
var spanSink int64

// benchSpanPath mirrors the engines' trigger hot path (domino.noteTrigger):
// a nil-guarded span allocation plus a chain-depth histogram record. With
// observability off both pointers are nil and the path must cost two branches
// and no allocations.
func benchSpanPath(sp *obs.Spans, h *obs.LogHist) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		var span int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			depth := int64(i)
			if sp != nil {
				span = sp.Next()
			}
			if h != nil {
				h.Record(depth)
			}
		}
		spanSink = span
	})
}

func obsReportMain(out, baselinePath string, strict bool, maxHistNs float64) {
	rep := obsReport{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}

	fmt.Fprintln(os.Stderr, "kernel event loop, hook disabled/enabled...")
	var fired uint64
	kr := minRounds(3,
		func() testing.BenchmarkResult { return benchKernel(nil) },
		func() testing.BenchmarkResult {
			return benchKernel(func(info sim.EventInfo) { fired = info.Fired })
		},
	)
	rep.Kernel = pair(kr[0], kr[1])
	_ = fired

	fmt.Fprintln(os.Stderr, "correlator Detect, tracer disabled/enabled...")
	set, err := gold.NewSet(7)
	if err != nil {
		panic(err)
	}
	rx := set.Combine(1, 2, 3, 4)
	// Disabled measures plain Detect — the entry point untraced runs
	// execute; enabled measures DetectObserved with a live tracer. The two
	// are separate methods precisely so the disabled path keeps its
	// pre-observability machine code (see gold.Correlator.DetectObserved).
	benchDetect := func(tr obs.Tracer) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			corr := gold.NewCorrelator(set)
			corr.Obs = tr
			b.ReportAllocs()
			b.ResetTimer()
			if tr == nil {
				for i := 0; i < b.N; i++ {
					corr.Detect(rx, 1)
				}
				return
			}
			for i := 0; i < b.N; i++ {
				corr.DetectObserved(rx, 1)
			}
		})
	}
	corr := gold.NewCorrelator(set)
	dr := minRounds(3,
		func() testing.BenchmarkResult { return benchDetect(nil) },
		func() testing.BenchmarkResult { return benchDetect(&countingTracer{}) },
		func() testing.BenchmarkResult {
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					corr.Metric(rx, 1)
				}
			})
		},
	)
	rep.Detect = pair(dr[0], dr[1])
	rep.MetricControl = micro(dr[2])

	fmt.Fprintln(os.Stderr, "histogram Record and span path, disabled/enabled...")
	var hist obs.LogHist
	hr := minRounds(3,
		func() testing.BenchmarkResult {
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					// Cycle the sample so every bucket band is exercised.
					hist.Record(int64(i) & 0xfffff)
				}
			})
		},
		func() testing.BenchmarkResult { return benchSpanPath(nil, nil) },
		func() testing.BenchmarkResult {
			var h obs.LogHist
			return benchSpanPath(obs.NewSpans(), &h)
		},
	)
	rep.Hist = micro(hr[0])
	rep.Span = pair(hr[1], hr[2])

	// Hard gates: the disabled paths must add zero allocations.
	fail := false
	if rep.Hist.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: LogHist.Record allocates %d/op, want 0\n", rep.Hist.AllocsPerOp)
		fail = true
	}
	if maxHistNs > 0 && rep.Hist.NsPerOp > maxHistNs {
		fmt.Fprintf(os.Stderr, "FAIL: LogHist.Record %.2f ns/op exceeds the -max-hist-ns budget %.0f\n",
			rep.Hist.NsPerOp, maxHistNs)
		fail = true
	}
	if rep.Span.Disabled.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: disabled span path allocates %d/op, want 0\n",
			rep.Span.Disabled.AllocsPerOp)
		fail = true
	}
	if rep.Span.Enabled.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: enabled span path allocates %d/op, want 0 (Spans.Next and Record are both flat)\n",
			rep.Span.Enabled.AllocsPerOp)
		fail = true
	}
	if rep.Detect.Disabled.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: Detect allocates %d/op with tracing disabled, want 0\n",
			rep.Detect.Disabled.AllocsPerOp)
		fail = true
	}
	if extra := rep.Kernel.Enabled.AllocsPerOp - rep.Kernel.Disabled.AllocsPerOp; extra > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: kernel hook adds %d allocs/op over the disabled path\n", extra)
		fail = true
	}

	// The ≤2% zero-overhead gate: disabled Detect against the same-run
	// Metric control. Soft by default (single-shot timing pairs still jitter
	// a few percent on a loaded machine), hard with -strict.
	if rep.MetricControl.NsPerOp > 0 {
		rep.ControlDeltaPct = 100 * (rep.Detect.Disabled.NsPerOp - rep.MetricControl.NsPerOp) / rep.MetricControl.NsPerOp
		if rep.ControlDeltaPct > 2 {
			fmt.Fprintf(os.Stderr, "%s: disabled Detect %.2f ns/op is %.1f%% over the same-run Metric control %.2f ns/op (gate: 2%%)\n",
				map[bool]string{true: "FAIL", false: "WARN"}[strict],
				rep.Detect.Disabled.NsPerOp, rep.ControlDeltaPct, rep.MetricControl.NsPerOp)
			if strict {
				fail = true
			}
		}
	}

	// Informational: drift against the recorded PR 1 baseline. This number
	// moves when the machine does (thermal/contention), so it never fails
	// the run — the same-run control above is the code-regression gate.
	if data, err := os.ReadFile(baselinePath); err == nil {
		var base struct {
			Detect microBench `json:"correlator_detect"`
		}
		if json.Unmarshal(data, &base) == nil && base.Detect.NsPerOp > 0 {
			rep.BaselineDetectNs = base.Detect.NsPerOp
			rep.BaselineDeltaPct = 100 * (rep.Detect.Disabled.NsPerOp - base.Detect.NsPerOp) / base.Detect.NsPerOp
			if rep.BaselineDeltaPct > 2 {
				fmt.Fprintf(os.Stderr, "note: disabled Detect %.2f ns/op is %.1f%% over the %s recording %.2f ns/op (machine-speed drift included)\n",
					rep.Detect.Disabled.NsPerOp, rep.BaselineDeltaPct, baselinePath, base.Detect.NsPerOp)
			}
		}
	} else {
		fmt.Fprintf(os.Stderr, "note: no baseline at %s, skipping the drift report\n", baselinePath)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s [gomaxprocs=%d num_cpu=%d]: kernel %.1f→%.1f ns/op (%+.1f%%), Detect %.1f→%.1f ns/op (%+.1f%%), control delta %+.1f%%, hist %.1f ns/op, span %.1f→%.1f ns/op\n",
		out, rep.GoMaxProcs, rep.NumCPU,
		rep.Kernel.Disabled.NsPerOp, rep.Kernel.Enabled.NsPerOp, rep.Kernel.EnabledOverheadPct,
		rep.Detect.Disabled.NsPerOp, rep.Detect.Enabled.NsPerOp, rep.Detect.EnabledOverheadPct,
		rep.ControlDeltaPct,
		rep.Hist.NsPerOp, rep.Span.Disabled.NsPerOp, rep.Span.Enabled.NsPerOp)
	if fail {
		os.Exit(1)
	}
}

func assertSameCDF(a, b exp.Fig14Result) {
	if a.Skipped != b.Skipped || a.Gains.N() != b.Gains.N() {
		panic("determinism violation: Fig 14 shape differs between worker counts")
	}
	ax, _ := a.Gains.Points()
	bx, _ := b.Gains.Points()
	for i := range ax {
		if ax[i] != bx[i] {
			panic(fmt.Sprintf("determinism violation: Fig 14 gain %d: %v vs %v", i, ax[i], bx[i]))
		}
	}
}
