// Command benchreport measures the parallel experiment harness against the
// serial baseline and the correlator hot path, and writes the results as
// machine-readable JSON (BENCH_parallel.json at the repo root), so the perf
// trajectory is tracked commit over commit.
//
// Usage:
//
//	go run ./cmd/benchreport                     # defaults, writes BENCH_parallel.json
//	go run ./cmd/benchreport -runs 16 -duration 2s -out /tmp/bench.json
//
// The wall-clock comparisons run each driver twice — workers=1 and
// workers=GOMAXPROCS — on the same seed; the outputs are asserted identical
// (the harness's determinism contract) before the timing is reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/gold"
	"repro/internal/sim"
)

type wallClock struct {
	SerialSec   float64 `json:"serial_sec"`
	ParallelSec float64 `json:"parallel_sec"`
	Speedup     float64 `json:"speedup"`
}

type microBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	GoMaxProcs     int        `json:"gomaxprocs"`
	NumCPU         int        `json:"num_cpu"`
	Fig14Runs      int        `json:"fig14_runs"`
	Fig14Duration  string     `json:"fig14_duration"`
	CurveTrials    int        `json:"curve_trials"`
	Fig14          wallClock  `json:"fig14"`
	DetectionCurve wallClock  `json:"detection_curve"`
	Metric         microBench `json:"correlator_metric"`
	Detect         microBench `json:"correlator_detect"`
	AddShifted     microBench `json:"add_shifted"`
	DetectionTrial microBench `json:"detection_trial_per_trial"`
}

func micro(b testing.BenchmarkResult) microBench {
	return microBench{
		NsPerOp:     float64(b.T.Nanoseconds()) / float64(b.N),
		AllocsPerOp: b.AllocsPerOp(),
		BytesPerOp:  b.AllocedBytesPerOp(),
	}
}

func main() {
	var (
		out      = flag.String("out", "BENCH_parallel.json", "output path")
		runs     = flag.Int("runs", 16, "Fig 14 repetition count")
		duration = flag.Duration("duration", 2*time.Second, "simulated run length per Fig 14 placement")
		trials   = flag.Int("trials", 1000, "detection-curve trials per point")
		seed     = flag.Int64("seed", 1, "base seed")
	)
	flag.Parse()

	rep := report{
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Fig14Runs:     *runs,
		Fig14Duration: duration.String(),
		CurveTrials:   *trials,
	}

	// Fig 14 wall clock, serial vs all cores, asserting identical output.
	o := exp.Options{
		Seed: *seed, Duration: sim.Time(duration.Nanoseconds()),
		Warmup: 300 * sim.Millisecond, Runs: *runs,
	}
	fmt.Fprintf(os.Stderr, "fig14: %d runs x %v, workers=1...\n", *runs, *duration)
	o.Workers = 1
	t0 := time.Now()
	serial := exp.Fig14(o)
	rep.Fig14.SerialSec = time.Since(t0).Seconds()
	fmt.Fprintf(os.Stderr, "fig14: workers=%d...\n", rep.GoMaxProcs)
	o.Workers = 0
	t0 = time.Now()
	par := exp.Fig14(o)
	rep.Fig14.ParallelSec = time.Since(t0).Seconds()
	rep.Fig14.Speedup = rep.Fig14.SerialSec / rep.Fig14.ParallelSec
	assertSameCDF(serial, par)

	set, err := gold.NewSet(7)
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(os.Stderr, "detection curve: %d trials/point, workers=1 then %d...\n", *trials, rep.GoMaxProcs)
	t0 = time.Now()
	curveSerial := gold.MeasureDetectionCurve(set, 7, *trials, 10, *seed, 1)
	rep.DetectionCurve.SerialSec = time.Since(t0).Seconds()
	t0 = time.Now()
	curvePar := gold.MeasureDetectionCurve(set, 7, *trials, 10, *seed, 0)
	rep.DetectionCurve.ParallelSec = time.Since(t0).Seconds()
	rep.DetectionCurve.Speedup = rep.DetectionCurve.SerialSec / rep.DetectionCurve.ParallelSec
	for c := range curveSerial {
		if curveSerial[c] != curvePar[c] {
			panic(fmt.Sprintf("determinism violation: curve[%d] %v vs %v", c, curveSerial[c], curvePar[c]))
		}
	}

	// Correlator hot-path micro-benchmarks.
	fmt.Fprintln(os.Stderr, "correlator micro-benchmarks...")
	corr := gold.NewCorrelator(set)
	rx := set.Combine(1, 2, 3, 4)
	rep.Metric = micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			corr.Metric(rx, 1)
		}
	}))
	rep.Detect = micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			corr.Detect(rx, 1)
		}
	}))
	buf := make([]float64, set.Len())
	rep.AddShifted = micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set.AddShifted(buf, 1, 63, 1, 2, 3, 4)
		}
	}))
	rep.DetectionTrial = micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gold.DetectionTrialParallel(set, gold.Setup{Senders: 2, Mode: gold.DifferentSignatures},
				4, 64, 10, int64(i+1), 1)
		}
	}))
	// testing.Benchmark reports the whole 64-trial shard; scale to per trial.
	rep.DetectionTrial.NsPerOp /= 64
	rep.DetectionTrial.AllocsPerOp /= 64
	rep.DetectionTrial.BytesPerOp /= 64

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: fig14 speedup %.2fx, curve speedup %.2fx, Metric %.0f ns/op %d allocs/op\n",
		*out, rep.Fig14.Speedup, rep.DetectionCurve.Speedup, rep.Metric.NsPerOp, rep.Metric.AllocsPerOp)
}

func assertSameCDF(a, b exp.Fig14Result) {
	if a.Skipped != b.Skipped || a.Gains.N() != b.Gains.N() {
		panic("determinism violation: Fig 14 shape differs between worker counts")
	}
	ax, _ := a.Gains.Points()
	bx, _ := b.Gains.Points()
	for i := range ax {
		if ax[i] != bx[i] {
			panic(fmt.Sprintf("determinism violation: Fig 14 gain %d: %v vs %v", i, ax[i], bx[i]))
		}
	}
}
