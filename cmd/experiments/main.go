// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run all            # everything, quick scale
//	experiments -run fig12udp,fig14 -scale paper
//	experiments -run fig2 -seed 7 -duration 10s
//
// Every experiment prints the same rows/series the paper reports. -scale
// paper uses the evaluation's 50-second runs and full repetition counts;
// -scale quick (default) is sized for a laptop minute.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/sim"
)

type experiment struct {
	name string
	desc string
	// run prints the experiment's human-readable tables; driver errors
	// (infeasible topologies, bad configs) surface here instead of
	// panicking — main prints them and exits non-zero.
	run func(o exp.Options) error
	// csv, when non-nil, writes the experiment's machine-readable series.
	csv func(o exp.Options, w io.Writer) error
}

func experiments() []experiment {
	return []experiment{
		{"table1", "ROP OFDM symbol parameters (Table 1)", func(o exp.Options) error {
			exp.Table1(os.Stdout)
			return nil
		}, nil},
		{"fig2", "Fig 1 network: DCF/CENTAUR/DOMINO/omniscient (Fig 2)", func(o exp.Options) error {
			exp.Fig2(o).Print(os.Stdout)
			return nil
		}, nil},
		{"fig5", "received spectra, adjacent subchannels (Fig 5)", func(o exp.Options) error {
			exp.Fig5(o.Seed).Print(os.Stdout)
			return nil
		}, nil},
		{"fig6", "guard subcarriers vs RSS difference (Fig 6)",
			func(o exp.Options) error { exp.Fig6(o).Print(os.Stdout); return nil },
			func(o exp.Options, w io.Writer) error { return exp.Fig6(o).CSV(w) }},
		{"snrfloor", "ROP decode ratio vs SNR (§3.1)", func(o exp.Options) error {
			exp.SNRFloor(o).Print(os.Stdout)
			return nil
		}, nil},
		{"fig9", "signature detection vs combined count (Fig 9)",
			func(o exp.Options) error { return printErr(exp.Fig9(o)) },
			func(o exp.Options, w io.Writer) error { return csvErr(exp.Fig9(o))(w) }},
		{"fig10", "relative-schedule timeline on the Fig 7 network (Fig 10)", func(o exp.Options) error {
			exp.PrintFig10(os.Stdout, exp.Fig10(o, 60))
			return nil
		}, nil},
		{"table2", "USRP prototype: SC/HT/ET, DOMINO vs DCF (Table 2)", func(o exp.Options) error {
			exp.Table2(o).Print(os.Stdout)
			return nil
		}, nil},
		{"fig11", "TX misalignment convergence vs wired jitter (Fig 11)",
			func(o exp.Options) error { return printErr(exp.Fig11(o)) },
			func(o exp.Options, w io.Writer) error { return csvErr(exp.Fig11(o))(w) }},
		{"fig12udp", "UDP throughput/delay/fairness vs uplink rate (Fig 12a-c)",
			func(o exp.Options) error { return printErr(exp.Fig12(o, core.UDPCBR)) },
			func(o exp.Options, w io.Writer) error { return csvErr(exp.Fig12(o, core.UDPCBR))(w) }},
		{"fig12tcp", "TCP throughput/delay/fairness vs uplink rate (Fig 12d-f)",
			func(o exp.Options) error { return printErr(exp.Fig12(o, core.TCP)) },
			func(o exp.Options, w io.Writer) error { return csvErr(exp.Fig12(o, core.TCP))(w) }},
		{"table3", "exposed-link topologies of Fig 13 (Table 3)", func(o exp.Options) error {
			exp.Table3(o).Print(os.Stdout)
			return nil
		}, nil},
		{"fig14", "CDF of DOMINO/DCF gain on random T(20,3) (Fig 14)",
			func(o exp.Options) error { return printErr(exp.Fig14(o)) },
			func(o exp.Options, w io.Writer) error { return csvErr(exp.Fig14(o))(w) }},
		{"polling", "batch size / polling frequency sweep (§5)", func(o exp.Options) error {
			return printErr(exp.PollingSweep(o))
		}, nil},
		{"lightload", "light-traffic delay, T(6,5) at 6 KBps (§5)", func(o exp.Options) error {
			return printErr(exp.LightLoad(o))
		}, nil},
		{"coexist", "CFP/CoP coexistence with external DCF traffic (§5, Fig 15)",
			func(o exp.Options) error { exp.Coexist(o).Print(os.Stdout); return nil },
			func(o exp.Options, w io.Writer) error { return exp.Coexist(o).CSV(w) }},
		{"schedulers", "DOMINO under each registered strict scheduling policy",
			func(o exp.Options) error { return printErr(exp.SchedulerSweep(o)) },
			func(o exp.Options, w io.Writer) error { return csvErr(exp.SchedulerSweep(o))(w) }},
		{"pollers", "DOMINO under each registered polling scheme vs client count",
			func(o exp.Options) error { return printErr(exp.PollerSweep(o)) },
			func(o exp.Options, w io.Writer) error { return csvErr(exp.PollerSweep(o))(w) }},
	}
}

// printer is any experiment result that renders itself.
type printer interface{ Print(w io.Writer) }

// printErr prints the result unless the driver failed.
func printErr[T printer](r T, err error) error {
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return nil
}

// csvWriter is any experiment result with a CSV series.
type csvWriter interface{ CSV(w io.Writer) error }

// csvErr adapts an error-returning driver to the csv hook.
func csvErr[T csvWriter](r T, err error) func(io.Writer) error {
	return func(w io.Writer) error {
		if err != nil {
			return err
		}
		return r.CSV(w)
	}
}

func main() {
	var (
		runFlag   = flag.String("run", "", "comma-separated experiment names, or 'all'")
		list      = flag.Bool("list", false, "list available experiments")
		scale     = flag.String("scale", "quick", "quick | paper")
		seed      = flag.Int64("seed", 1, "random seed")
		duration  = flag.Duration("duration", 0, "override simulated run length")
		runs      = flag.Int("runs", 0, "override Monte-Carlo repetition count")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for independent runs and sweep points (same numbers at any value)")
		csvDir    = flag.String("csv", "", "also write machine-readable CSV series into this directory")
		traceFile = flag.String("trace", "", "write the NDJSON observability trace of supporting experiments (fig2, fig14) to this file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and runtime metrics on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := obs.ServeDebug(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/  runtime: http://%s/debug/runtime\n", addr, addr)
	}

	all := experiments()
	if *list || *runFlag == "" {
		fmt.Println("available experiments:")
		for _, e := range all {
			fmt.Printf("  %-10s %s\n", e.name, e.desc)
		}
		if *runFlag == "" {
			fmt.Println("\nrun with: experiments -run all | -run fig2,fig12udp [-scale paper]")
		}
		return
	}

	var o exp.Options
	switch *scale {
	case "paper":
		o = exp.Paper()
	case "quick":
		o = exp.Quick()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	o.Seed = *seed
	o.Workers = *workers
	if *duration > 0 {
		o.Duration = sim.Time(duration.Nanoseconds())
	}
	if *runs > 0 {
		o.Runs = *runs
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		o.TraceSink = f
		defer f.Close()
	}

	want := map[string]bool{}
	if *runFlag == "all" {
		for _, e := range all {
			want[e.name] = true
		}
	} else {
		for _, n := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	known := map[string]bool{}
	for _, e := range all {
		known[e.name] = true
	}
	var unknown []string
	for n := range want {
		if !known[n] {
			unknown = append(unknown, n)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "unknown experiments: %s (use -list)\n", strings.Join(unknown, ", "))
		os.Exit(2)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	for _, e := range all {
		if !want[e.name] {
			continue
		}
		start := time.Now()
		fmt.Printf("== %s: %s\n", e.name, e.desc)
		if err := e.run(o); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		if *csvDir != "" && e.csv != nil {
			path := filepath.Join(*csvDir, e.name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := e.csv(o, f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("   csv: %s\n", path)
		}
		fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
	}
}
