// Command speclint validates declarative scenario spec files without running
// them: JSON shape (unknown fields rejected), registered scheme, topology
// reference, link sanity and traffic feasibility. `make specs` lints every
// example; CI runs it so a broken spec fails the build, not a user.
//
// Usage:
//
//	speclint examples/specs/*.json
package main

import (
	"fmt"
	"os"

	"repro/internal/spec"

	// The engines register their scheme descriptors in init; without these
	// imports Validate would reject every scheme name.
	_ "repro/internal/centaur"
	_ "repro/internal/dcf"
	_ "repro/internal/domino"
	_ "repro/internal/strict"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: speclint file.json [file.json ...]")
		os.Exit(2)
	}
	failed := 0
	for _, path := range os.Args[1:] {
		sp, err := spec.Load(path)
		if err == nil {
			err = sp.Validate()
		}
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "speclint: %s: %v\n", path, err)
			continue
		}
		fmt.Printf("%s: ok (scheme %s, topology %s, traffic %s)\n", path, sp.Scheme, sp.Topology.Kind, sp.TrafficKind())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
