package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// rec builds a span-annotated record for the chain tests.
func rec(at sim.Time, k obs.Kind, node int, span, parent int64) obs.Record {
	r := obs.Rec(at, k)
	r.Node = node
	r.Span = span
	r.Parent = parent
	return r
}

// TestChainReportGolden pins the chain-analysis section for a hand-built
// cascade: one root slot (span 1) triggers a client (span 2 = trigger,
// span 3 = its uplink slot), whose boundary broadcast (span 4) triggers a
// second AP (span 5 → slot span 6); a lone slot (span 10) free-runs with no
// children. Poll reports (span 0, parent 6) extend the chain's extent.
func TestChainReportGolden(t *testing.T) {
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }
	ca := newChainAnalyzer()
	recs := []obs.Record{
		rec(us(0), obs.KindSlotStart, 0, 1, 0),
		func() obs.Record {
			r := rec(us(0), obs.KindTxStart, 0, 1, 0)
			r.Dur = us(400)
			return r
		}(),
		func() obs.Record {
			r := rec(us(450), obs.KindTrigger, 4, 2, 1)
			r.Value = 1 // cascade depth
			return r
		}(),
		rec(us(460), obs.KindSlotStart, 4, 3, 2),
		func() obs.Record {
			r := rec(us(460), obs.KindTxStart, 4, 3, 0)
			r.Dur = us(400)
			return r
		}(),
		rec(us(900), obs.KindSlotEnd, 4, 4, 3),
		func() obs.Record {
			r := rec(us(905), obs.KindTrigger, 1, 5, 4)
			r.Value = 2
			return r
		}(),
		rec(us(910), obs.KindSlotStart, 1, 6, 5),
		rec(us(1400), obs.KindROPPoll, 7, 0, 6), // leaf event on span 6
		rec(us(2000), obs.KindSlotStart, 2, 10, 0),
	}
	for _, r := range recs {
		ca.Observe(r)
	}
	var b strings.Builder
	ca.Report().write(&b, 8)
	got := b.String()
	want := "" +
		"trigger chains: 2 chains over 7 spans, deepest tree 6\n" +
		"  trigger cascade depth: 2 triggers, p50 1  p95 2  max 2\n" +
		"  longest chains (top 2 of 2):\n" +
		"    span 1      n0   @0ns             6 spans  depth 6   critical path 1.4ms        airtime 800µs\n" +
		"    span 10     n2   @2ms             1 spans  depth 1   critical path 0ns          airtime 0ns\n"
	if got != want {
		t.Errorf("chain report mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestChainReportTruncated: a child whose parent span never appears (e.g. a
// trace cut mid-run) roots its own chain instead of vanishing.
func TestChainReportTruncated(t *testing.T) {
	ca := newChainAnalyzer()
	ca.Observe(rec(5, obs.KindSlotStart, 3, 8, 7)) // parent 7 never seen
	rep := ca.Report()
	if rep.spans != 1 || len(rep.chains) != 1 {
		t.Fatalf("report = %d spans, %d chains; want 1 and 1", rep.spans, len(rep.chains))
	}
	if rep.chains[0].root.id != 8 {
		t.Fatalf("orphan rooted at span %d, want 8", rep.chains[0].root.id)
	}
}
