// Command tracedump summarizes NDJSON observability traces written by
// domino-sim -tracefile or experiments -trace: per-run record totals, the
// airtime budget replayed from tx_start/tx_end records (the buckets partition
// the run duration exactly), and a slot-chain timeline reconstructed from the
// slot_start/trigger/slot_end records of DOMINO runs.
//
// Usage:
//
//	domino-sim -topo fig7 -scheme domino -tracefile run.ndjson
//	tracedump run.ndjson
//	tracedump -slots 12 run.ndjson       # show the first 12 slots' timeline
//	tracedump < run.ndjson               # reads stdin without an argument
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// run accumulates one run_start..run_end span of the trace.
type run struct {
	scheme string
	seed   int64
	end    sim.Time
	closed bool

	counts [24]int // indexed by obs.Kind; sized past numKinds
	air    obs.Airtime
	lastTx sim.Time

	collisions   int64
	triggerMiss  int
	slotEvents   []obs.Record // slot_start / trigger / slot_end, in order
	queueMax     int64
	kernelDepth  int64 // max pending seen in kernel samples
	kernelEvents int64 // total fired, from the last kernel sample

	// Schedule-conversion counters, from KindConvert records (present when
	// the run had domino's ConvertTrace on).
	convBatches, convCacheHits     int64
	convSlots                      int64
	convReal, convFake             int64
	convTriggers, convBackup       int64
	convBoundary, convUntriggered  int64
	convROPSlots, convPollTriggers int64
	convInbound, convCombined      map[int64]int64
	// Cache LRU state (last seen: the records carry cumulative totals) and
	// incremental-layer reuse.
	convCacheOcc, convCacheEvict  int64
	convCoverReuse, convPairReuse int64

	// chains rebuilds the causal span forest (sp/pa annotations).
	chains *chainAnalyzer
}

func main() {
	slots := flag.Int("slots", 20, "slot-timeline entries to print per DOMINO run (0 disables)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	var runs []*run
	var cur *run
	err := obs.ParseNDJSON(in, func(r obs.Record) error {
		if r.Kind == obs.KindRunStart {
			cur = &run{scheme: r.Aux, seed: r.Value}
			runs = append(runs, cur)
			return nil
		}
		if cur == nil {
			// Headerless stream (e.g. a filtered fragment): collect anyway.
			cur = &run{scheme: "?"}
			runs = append(runs, cur)
		}
		cur.observe(r)
		if r.Kind == obs.KindRunEnd {
			cur.end = r.At
			cur.collisions = r.Value
			cur.closed = true
			cur = nil
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: %s: %v\n", name, err)
		os.Exit(1)
	}
	if len(runs) == 0 {
		fmt.Fprintf(os.Stderr, "tracedump: %s: no records\n", name)
		os.Exit(1)
	}

	for i, r := range runs {
		r.print(os.Stdout, i, *slots)
	}
}

func (r *run) observe(rec obs.Record) {
	if int(rec.Kind) < len(r.counts) {
		r.counts[rec.Kind]++
	}
	if r.chains == nil {
		r.chains = newChainAnalyzer()
	}
	r.chains.Observe(rec)
	switch rec.Kind {
	case obs.KindTxStart:
		r.air.Start(obs.BucketOfName(rec.Aux), rec.At)
		r.lastTx = rec.At
	case obs.KindTxEnd:
		r.air.End(obs.BucketOfName(rec.Aux), rec.At)
		r.lastTx = rec.At
	case obs.KindSlotStart, obs.KindSlotEnd, obs.KindTrigger:
		r.slotEvents = append(r.slotEvents, rec)
	case obs.KindTriggerMiss:
		r.triggerMiss++
	case obs.KindQueue:
		if rec.Value > r.queueMax {
			r.queueMax = rec.Value
		}
	case obs.KindKernel:
		if rec.Value > r.kernelDepth {
			r.kernelDepth = rec.Value
		}
		if rec.Extra > r.kernelEvents {
			r.kernelEvents = rec.Extra
		}
	case obs.KindConvert:
		r.observeConvert(rec)
	}
}

// observeConvert accumulates one per-batch conversion counter (see
// domino.Config.ConvertTrace for the record layout).
func (r *run) observeConvert(rec obs.Record) {
	switch rec.Aux {
	case "fake_link_insert":
		r.convReal += rec.Value
		r.convFake += rec.Extra
	case "trigger_assign":
		r.convTriggers += rec.Value
		r.convBackup += rec.Extra
	case "batch_connect":
		r.convBoundary += rec.Value
		r.convUntriggered += rec.Extra
	case "rop_insert":
		r.convROPSlots += rec.Value
		r.convPollTriggers += rec.Extra
	case "cache":
		r.convBatches++
		r.convCacheHits += rec.Value
		r.convSlots += rec.Extra
	case "cache_lru":
		r.convCacheOcc = rec.Value
		r.convCacheEvict = rec.Extra
	case "incremental":
		r.convCoverReuse += rec.Value
		r.convPairReuse += rec.Extra
	case "inbound":
		if r.convInbound == nil {
			r.convInbound = map[int64]int64{}
		}
		r.convInbound[rec.Value] += rec.Extra
	case "combined":
		if r.convCombined == nil {
			r.convCombined = map[int64]int64{}
		}
		r.convCombined[rec.Value] += rec.Extra
	}
}

func (r *run) print(w io.Writer, idx, slots int) {
	end := r.end
	if !r.closed {
		end = r.lastTx // truncated trace: close the budget at the last activity
	}
	fmt.Fprintf(w, "== run %d: scheme=%s seed=%d duration=%v%s\n",
		idx, r.scheme, r.seed, end, map[bool]string{false: " (truncated)", true: ""}[r.closed])

	total := 0
	type kc struct {
		k obs.Kind
		n int
	}
	var kcs []kc
	for k, n := range r.counts {
		if n > 0 {
			kcs = append(kcs, kc{obs.Kind(k), n})
			total += n
		}
	}
	sort.Slice(kcs, func(a, b int) bool { return kcs[a].n > kcs[b].n })
	fmt.Fprintf(w, "records: %d (", total)
	for i, e := range kcs {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprintf(w, "%s=%d", e.k, e.n)
	}
	fmt.Fprintln(w, ")")

	bd := r.air.Breakdown(end)
	bd.Collisions = r.collisions
	fmt.Fprintln(w, "airtime budget:")
	bd.WriteText(w)
	if r.triggerMiss > 0 {
		fmt.Fprintf(w, "trigger misses: %d\n", r.triggerMiss)
	}
	if r.queueMax > 0 {
		fmt.Fprintf(w, "max queue depth sampled: %d\n", r.queueMax)
	}
	if r.kernelEvents > 0 {
		fmt.Fprintf(w, "kernel: %d events fired, max %d pending at samples\n",
			r.kernelEvents, r.kernelDepth)
	}

	r.printConvert(w)

	if r.chains != nil {
		r.chains.Report().write(w, 8)
	}

	if slots > 0 && len(r.slotEvents) > 0 {
		fmt.Fprintf(w, "slot timeline (first %d slots):\n", slots)
		r.printTimeline(w, slots)
	}
	fmt.Fprintln(w)
}

// printConvert renders the trigger-chain summary built from the per-batch
// conversion records (domino-sim -convert-trace).
func (r *run) printConvert(w io.Writer) {
	if r.convBatches == 0 {
		return
	}
	fmt.Fprintf(w, "schedule conversion: %d batches, %d slots, cache hits %d/%d (%.0f%%)\n",
		r.convBatches, r.convSlots, r.convCacheHits, r.convBatches,
		100*float64(r.convCacheHits)/float64(r.convBatches))
	if r.convCacheOcc > 0 || r.convCacheEvict > 0 {
		fmt.Fprintf(w, "  cache: %d entries resident, %d evicted\n",
			r.convCacheOcc, r.convCacheEvict)
	}
	if r.convCoverReuse > 0 || r.convPairReuse > 0 {
		fmt.Fprintf(w, "  incremental: %d covers and %d trigger pairs replayed from memos\n",
			r.convCoverReuse, r.convPairReuse)
	}
	triggers := r.convTriggers + r.convBoundary
	if r.convSlots > 0 {
		fmt.Fprintf(w, "  triggers: %d (%.2f per slot; %d backup, %d across batch boundaries, %d entries untriggered)\n",
			triggers, float64(triggers)/float64(r.convSlots),
			r.convBackup, r.convBoundary, r.convUntriggered)
	}
	if entries := r.convReal + r.convFake; entries > 0 {
		fmt.Fprintf(w, "  entries: %d (%.0f%% fake-link cover)\n",
			entries, 100*float64(r.convFake)/float64(entries))
	}
	if r.convROPSlots > 0 {
		fmt.Fprintf(w, "  rop: %d polling slots, %d poll triggers planted\n",
			r.convROPSlots, r.convPollTriggers)
	}
	histogram := func(name string, m map[int64]int64, note func(int64) string) {
		if len(m) == 0 {
			return
		}
		keys := make([]int64, 0, len(m))
		total := int64(0)
		for k, n := range m {
			keys = append(keys, k)
			total += n
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		fmt.Fprintf(w, "  %s:", name)
		for _, k := range keys {
			fmt.Fprintf(w, "  %d→%d (%.0f%%)%s", k, m[k], 100*float64(m[k])/float64(total), note(k))
		}
		fmt.Fprintln(w)
	}
	histogram("triggers per entry", r.convInbound, func(int64) string { return "" })
	histogram("combined signatures per broadcast", r.convCombined, func(k int64) string {
		if k > 4 {
			return " OVER LIMIT"
		}
		return ""
	})
}

// printTimeline renders the slot chain: for each slot index in order of first
// appearance, the triggers that referenced it, the transmissions that started
// it and the boundary broadcast that closed it.
func (r *run) printTimeline(w io.Writer, max int) {
	printed := map[int]bool{}
	n := 0
	for _, ev := range r.slotEvents {
		if ev.Slot < 0 || printed[ev.Slot] {
			continue
		}
		printed[ev.Slot] = true
		if n++; n > max {
			break
		}
		fmt.Fprintf(w, "  slot %-4d", ev.Slot)
		col := 0
		for _, e := range r.slotEvents {
			if e.Slot != ev.Slot {
				continue
			}
			if col++; col > 6 {
				fmt.Fprint(w, " …")
				break
			}
			switch e.Kind {
			case obs.KindTrigger:
				fmt.Fprintf(w, "  trig@%v n%d", e.At, e.Node)
			case obs.KindSlotStart:
				fmt.Fprintf(w, "  %s@%v n%d", e.Aux, e.At, e.Node)
			case obs.KindSlotEnd:
				fmt.Fprintf(w, "  bcast@%v n%d", e.At, e.Node)
			}
		}
		fmt.Fprintln(w)
	}
}
