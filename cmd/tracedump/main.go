// Command tracedump summarizes NDJSON observability traces written by
// domino-sim -tracefile or experiments -trace: per-run record totals, the
// airtime budget replayed from tx_start/tx_end records (the buckets partition
// the run duration exactly), and a slot-chain timeline reconstructed from the
// slot_start/trigger/slot_end records of DOMINO runs.
//
// Usage:
//
//	domino-sim -topo fig7 -scheme domino -tracefile run.ndjson
//	tracedump run.ndjson
//	tracedump -slots 12 run.ndjson       # show the first 12 slots' timeline
//	tracedump < run.ndjson               # reads stdin without an argument
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// run accumulates one run_start..run_end span of the trace.
type run struct {
	scheme string
	seed   int64
	end    sim.Time
	closed bool

	counts [16]int // indexed by obs.Kind; sized past numKinds
	air    obs.Airtime
	lastTx sim.Time

	collisions   int64
	triggerMiss  int
	slotEvents   []obs.Record // slot_start / trigger / slot_end, in order
	queueMax     int64
	kernelDepth  int64 // max pending seen in kernel samples
	kernelEvents int64 // total fired, from the last kernel sample
}

func main() {
	slots := flag.Int("slots", 20, "slot-timeline entries to print per DOMINO run (0 disables)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	var runs []*run
	var cur *run
	err := obs.ParseNDJSON(in, func(r obs.Record) error {
		if r.Kind == obs.KindRunStart {
			cur = &run{scheme: r.Aux, seed: r.Value}
			runs = append(runs, cur)
			return nil
		}
		if cur == nil {
			// Headerless stream (e.g. a filtered fragment): collect anyway.
			cur = &run{scheme: "?"}
			runs = append(runs, cur)
		}
		cur.observe(r)
		if r.Kind == obs.KindRunEnd {
			cur.end = r.At
			cur.collisions = r.Value
			cur.closed = true
			cur = nil
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: %s: %v\n", name, err)
		os.Exit(1)
	}
	if len(runs) == 0 {
		fmt.Fprintf(os.Stderr, "tracedump: %s: no records\n", name)
		os.Exit(1)
	}

	for i, r := range runs {
		r.print(os.Stdout, i, *slots)
	}
}

func (r *run) observe(rec obs.Record) {
	if int(rec.Kind) < len(r.counts) {
		r.counts[rec.Kind]++
	}
	switch rec.Kind {
	case obs.KindTxStart:
		r.air.Start(obs.BucketOfName(rec.Aux), rec.At)
		r.lastTx = rec.At
	case obs.KindTxEnd:
		r.air.End(obs.BucketOfName(rec.Aux), rec.At)
		r.lastTx = rec.At
	case obs.KindSlotStart, obs.KindSlotEnd, obs.KindTrigger:
		r.slotEvents = append(r.slotEvents, rec)
	case obs.KindTriggerMiss:
		r.triggerMiss++
	case obs.KindQueue:
		if rec.Value > r.queueMax {
			r.queueMax = rec.Value
		}
	case obs.KindKernel:
		if rec.Value > r.kernelDepth {
			r.kernelDepth = rec.Value
		}
		if rec.Extra > r.kernelEvents {
			r.kernelEvents = rec.Extra
		}
	}
}

func (r *run) print(w io.Writer, idx, slots int) {
	end := r.end
	if !r.closed {
		end = r.lastTx // truncated trace: close the budget at the last activity
	}
	fmt.Fprintf(w, "== run %d: scheme=%s seed=%d duration=%v%s\n",
		idx, r.scheme, r.seed, end, map[bool]string{false: " (truncated)", true: ""}[r.closed])

	total := 0
	type kc struct {
		k obs.Kind
		n int
	}
	var kcs []kc
	for k, n := range r.counts {
		if n > 0 {
			kcs = append(kcs, kc{obs.Kind(k), n})
			total += n
		}
	}
	sort.Slice(kcs, func(a, b int) bool { return kcs[a].n > kcs[b].n })
	fmt.Fprintf(w, "records: %d (", total)
	for i, e := range kcs {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprintf(w, "%s=%d", e.k, e.n)
	}
	fmt.Fprintln(w, ")")

	bd := r.air.Breakdown(end)
	bd.Collisions = r.collisions
	fmt.Fprintln(w, "airtime budget:")
	bd.WriteText(w)
	if r.triggerMiss > 0 {
		fmt.Fprintf(w, "trigger misses: %d\n", r.triggerMiss)
	}
	if r.queueMax > 0 {
		fmt.Fprintf(w, "max queue depth sampled: %d\n", r.queueMax)
	}
	if r.kernelEvents > 0 {
		fmt.Fprintf(w, "kernel: %d events fired, max %d pending at samples\n",
			r.kernelEvents, r.kernelDepth)
	}

	if slots > 0 && len(r.slotEvents) > 0 {
		fmt.Fprintf(w, "slot timeline (first %d slots):\n", slots)
		r.printTimeline(w, slots)
	}
	fmt.Fprintln(w)
}

// printTimeline renders the slot chain: for each slot index in order of first
// appearance, the triggers that referenced it, the transmissions that started
// it and the boundary broadcast that closed it.
func (r *run) printTimeline(w io.Writer, max int) {
	printed := map[int]bool{}
	n := 0
	for _, ev := range r.slotEvents {
		if ev.Slot < 0 || printed[ev.Slot] {
			continue
		}
		printed[ev.Slot] = true
		if n++; n > max {
			break
		}
		fmt.Fprintf(w, "  slot %-4d", ev.Slot)
		col := 0
		for _, e := range r.slotEvents {
			if e.Slot != ev.Slot {
				continue
			}
			if col++; col > 6 {
				fmt.Fprint(w, " …")
				break
			}
			switch e.Kind {
			case obs.KindTrigger:
				fmt.Fprintf(w, "  trig@%v n%d", e.At, e.Node)
			case obs.KindSlotStart:
				fmt.Fprintf(w, "  %s@%v n%d", e.Aux, e.At, e.Node)
			case obs.KindSlotEnd:
				fmt.Fprintf(w, "  bcast@%v n%d", e.At, e.Node)
			}
		}
		fmt.Fprintln(w)
	}
}
