// Causal trigger-chain analysis: records carrying span annotations (sp/pa)
// form a forest — slot transmissions, boundary broadcasts, triggers, packet
// lifecycles and poll reports hang off the span that caused them. The
// analyzer rebuilds the forest and reports chain depth, per-chain critical
// path and per-chain airtime.

package main

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// spanNode is one node of the causal forest.
type spanNode struct {
	id     int64
	parent int64 // 0 = root
	node   int   // simulator node that opened the span
	kind   obs.Kind
	seen   bool // a record with Span == id was observed (not just referenced)

	first, last sim.Time // event-time extent of the span and its leaf events
	air         sim.Time // airtime of transmissions carried on this span

	children []int64
}

// chainAnalyzer accumulates span records of one run. Feed every record to
// Observe in trace order, then Report.
type chainAnalyzer struct {
	spans     map[int64]*spanNode
	depthDist map[int64]int64 // trigger cascade depth → trigger count
}

func newChainAnalyzer() *chainAnalyzer {
	return &chainAnalyzer{spans: map[int64]*spanNode{}, depthDist: map[int64]int64{}}
}

func (c *chainAnalyzer) get(id int64) *spanNode {
	sn, ok := c.spans[id]
	if !ok {
		sn = &spanNode{id: id}
		c.spans[id] = sn
	}
	return sn
}

// Observe feeds one record. Records without span annotations are ignored;
// parent-only records (rop_poll reports, collision outcomes) extend the
// parent span's extent without opening a node.
func (c *chainAnalyzer) Observe(rec obs.Record) {
	if rec.Kind == obs.KindTrigger && rec.Span != 0 {
		c.depthDist[rec.Value]++
	}
	if rec.Span == 0 && rec.Parent == 0 {
		return
	}
	if rec.Span == 0 {
		sn := c.get(rec.Parent)
		if rec.At > sn.last {
			sn.last = rec.At
		}
		return
	}
	sn := c.get(rec.Span)
	if !sn.seen {
		sn.seen = true
		sn.first = rec.At
		sn.node = rec.Node
		sn.kind = rec.Kind
	}
	if rec.At > sn.last {
		sn.last = rec.At
	}
	if rec.Kind == obs.KindTxStart {
		sn.air += rec.Dur
	}
	if rec.Parent != 0 && sn.parent == 0 {
		sn.parent = rec.Parent
		p := c.get(rec.Parent)
		p.children = append(p.children, rec.Span)
	}
}

// chainSummary is one root's subtree rolled up.
type chainSummary struct {
	root     *spanNode
	spans    int
	depth    int      // tree depth (nodes on the longest root→leaf path)
	end      sim.Time // latest event time anywhere in the subtree
	air      sim.Time
	critical sim.Time // end − root start: the chain's critical-path latency
}

// chainReport is the run-level rollup Report returns.
type chainReport struct {
	spans     int
	chains    []chainSummary // sorted: largest span count first, then root id
	depthDist map[int64]int64
}

// Report rebuilds the forest. Spans that were only referenced (a parent id
// that never appeared as a record's own span — possible in truncated traces)
// root their orphaned children.
func (c *chainAnalyzer) Report() chainReport {
	rep := chainReport{depthDist: c.depthDist}
	var roots []*spanNode
	for _, sn := range c.spans {
		if !sn.seen {
			continue
		}
		rep.spans++
		if sn.parent == 0 || !c.spans[sn.parent].seen {
			roots = append(roots, sn)
		}
	}
	for _, root := range roots {
		s := chainSummary{root: root}
		// Iterative DFS with explicit depth; spans form a tree by
		// construction (each node's parent is fixed on first sight).
		type frame struct {
			id    int64
			depth int
		}
		stack := []frame{{root.id, 1}}
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sn := c.spans[f.id]
			s.spans++
			if f.depth > s.depth {
				s.depth = f.depth
			}
			if sn.last > s.end {
				s.end = sn.last
			}
			s.air += sn.air
			for _, ch := range sn.children {
				stack = append(stack, frame{ch, f.depth + 1})
			}
		}
		s.critical = s.end - root.first
		rep.chains = append(rep.chains, s)
	}
	sort.Slice(rep.chains, func(a, b int) bool {
		if rep.chains[a].spans != rep.chains[b].spans {
			return rep.chains[a].spans > rep.chains[b].spans
		}
		return rep.chains[a].root.id < rep.chains[b].root.id
	})
	return rep
}

// write renders the chain-analysis section; max caps the per-chain listing.
func (rep chainReport) write(w io.Writer, max int) {
	if rep.spans == 0 {
		return
	}
	maxDepth := 0
	for _, ch := range rep.chains {
		if ch.depth > maxDepth {
			maxDepth = ch.depth
		}
	}
	fmt.Fprintf(w, "trigger chains: %d chains over %d spans, deepest tree %d\n",
		len(rep.chains), rep.spans, maxDepth)
	if len(rep.depthDist) > 0 {
		// The distribution can span thousands of distinct depths (a healthy
		// chain lives the whole run); summarize by quantiles.
		keys := make([]int64, 0, len(rep.depthDist))
		total := int64(0)
		for k, n := range rep.depthDist {
			keys = append(keys, k)
			total += n
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		quantile := func(q float64) int64 {
			rank := int64(math.Ceil(q * float64(total)))
			if rank < 1 {
				rank = 1
			}
			var seen int64
			for _, k := range keys {
				seen += rep.depthDist[k]
				if seen >= rank {
					return k
				}
			}
			return keys[len(keys)-1]
		}
		fmt.Fprintf(w, "  trigger cascade depth: %d triggers, p50 %d  p95 %d  max %d\n",
			total, quantile(0.5), quantile(0.95), keys[len(keys)-1])
	}
	n := len(rep.chains)
	if n > max {
		n = max
	}
	fmt.Fprintf(w, "  longest chains (top %d of %d):\n", n, len(rep.chains))
	for _, ch := range rep.chains[:n] {
		fmt.Fprintf(w, "    span %-6d n%-3d @%-12v %4d spans  depth %-3d critical path %-12v airtime %v\n",
			ch.root.id, ch.root.node, ch.root.first, ch.spans, ch.depth, ch.critical, ch.air)
	}
}
