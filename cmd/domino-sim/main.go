// Command domino-sim runs one channel-access simulation and reports
// throughput, delay and fairness.
//
// Topologies:
//
//	-topo fig1|fig7|fig13a|fig13b        the paper's drawn networks
//	-topo sc|ht|et                       two AP-client pairs (Table 2 placements)
//	-topo campus -aps 10 -clients 2      T(m,n) from the synthetic campus trace
//	-topo random -aps 20 -clients 3      T(m,n) from a random 800×800 m placement
//
// Examples:
//
//	domino-sim -topo fig1 -scheme domino -traffic saturated -duration 10s
//	domino-sim -topo campus -aps 10 -clients 2 -scheme dcf -down 10 -up 4
//	domino-sim -topo ht -scheme domino -trace | head -50
//	domino-sim -topo random -reps 16 -workers 0    # 16 seeds across all cores
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

func main() {
	var (
		topoFlag = flag.String("topo", "fig1", "fig1|fig7|fig13a|fig13b|sc|ht|et|campus|random")
		aps      = flag.Int("aps", 10, "APs for campus/random topologies")
		clients  = flag.Int("clients", 2, "clients per AP for campus/random topologies")
		scheme   = flag.String("scheme", "domino", "dcf|centaur|domino|omniscient")
		traffic  = flag.String("traffic", "saturated", "saturated|udp|tcp")
		down     = flag.Float64("down", 10, "downlink offered Mbps per link (udp/tcp)")
		up       = flag.Float64("up", 10, "uplink offered Mbps per link (udp/tcp)")
		duration = flag.Duration("duration", 5*time.Second, "simulated time")
		warmup   = flag.Duration("warmup", 500*time.Millisecond, "statistics warm-up")
		seed     = flag.Int64("seed", 1, "random seed")
		reps     = flag.Int("reps", 1, "independent repetitions at derived seeds (seed + i*101)")
		workers  = flag.Int("workers", 0, "worker pool size for -reps (0 = all cores)")
		noDown    = flag.Bool("nodownlink", false, "omit downlink links")
		noUp      = flag.Bool("nouplink", false, "omit uplink links")
		trace     = flag.Bool("trace", false, "print DOMINO engine trace events")
		traceFile = flag.String("tracefile", "", "write the NDJSON observability trace to this file (- for stdout)")
		metrics   = flag.Bool("metrics", false, "collect and print run metrics (counters, airtime breakdown)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and runtime metrics on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := obs.ServeDebug(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/  runtime: http://%s/debug/runtime\n", addr, addr)
	}

	sc := core.Scenario{
		Downlink: !*noDown,
		Uplink:   !*noUp,
		Seed:     *seed,
		Duration: sim.Time(duration.Nanoseconds()),
		Warmup:   sim.Time(warmup.Nanoseconds()),
		DownMbps: *down,
		UpMbps:   *up,
	}
	switch *scheme {
	case "dcf":
		sc.Scheme = core.DCF
	case "centaur":
		sc.Scheme = core.CENTAUR
	case "domino":
		sc.Scheme = core.DOMINO
	case "omniscient":
		sc.Scheme = core.Omniscient
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}
	switch *traffic {
	case "saturated":
		sc.Traffic = core.Saturated
	case "udp":
		sc.Traffic = core.UDPCBR
	case "tcp":
		sc.Traffic = core.TCP
	default:
		fmt.Fprintf(os.Stderr, "unknown traffic %q\n", *traffic)
		os.Exit(2)
	}
	if *reps > 1 {
		if *trace || *traceFile != "" {
			fmt.Fprintln(os.Stderr, "-trace/-tracefile are ignored with -reps > 1 (interleaved output)")
		}
		runReps(sc, *topoFlag, *aps, *clients, *seed, *reps, *workers, *traffic, *duration)
		return
	}

	net, err := buildTopo(*topoFlag, *aps, *clients, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc.Net = net
	if *trace {
		sc.Trace = func(ev domino.TraceEvent) {
			link := ""
			if ev.Link != nil {
				link = ev.Link.String()
			}
			fmt.Printf("%12v slot %-4d %-10s node %-3d %s\n", ev.At, ev.Slot, ev.Kind, ev.Node, link)
		}
	}
	var ndjson *obs.NDJSON
	if *traceFile != "" {
		w := os.Stdout
		if *traceFile != "-" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer f.Close()
			w = f
		}
		ndjson = obs.NewNDJSON(w)
		sc.Tracer = ndjson
	}
	if *metrics {
		sc.Metrics = obs.NewMetrics()
	}

	res := core.Run(sc)

	if ndjson != nil {
		if err := ndjson.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "trace write: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("scheme=%s topo=%s traffic=%s duration=%v seed=%d\n",
		sc.Scheme, *topoFlag, *traffic, *duration, *seed)
	fmt.Printf("aggregate: %.2f Mbps   mean delay: %v   Jain fairness: %.3f\n",
		res.AggregateMbps, res.MeanDelay, res.Fairness)
	fmt.Println("per-link throughput (Mbps):")
	for _, l := range res.Links {
		fmt.Printf("  %-12s %8.3f\n", l, res.PerLinkMbps[l.ID])
	}
	if d := res.Domino; d != nil {
		fmt.Printf("domino: slots=%d data=%d fake=%d polls=%d ackMisses=%d selfStarts=%d drops=%d\n",
			d.Slots(), d.DataSends, d.FakeSends, d.Polls, d.AckMisses, d.SelfStarts, d.Drops)
	}
	if d := res.Dcf; d != nil {
		fmt.Printf("dcf: ackTimeouts=%d drops=%d\n", d.AckTimeouts, d.Drops)
	}
	if c := res.Centaur; c != nil {
		fmt.Printf("centaur: epochs=%d ackTimeouts=%d drops=%d\n", c.Epochs, c.AckTimeouts, c.Drops)
	}
	if o := res.Omni; o != nil {
		fmt.Printf("omniscient: slots=%d failures=%d\n", o.Slots, o.Failures)
	}
	if res.Breakdown != nil {
		fmt.Println("airtime breakdown:")
		res.Breakdown.WriteText(os.Stdout)
	}
	if res.Snapshot != nil {
		fmt.Println("metrics:")
		res.Snapshot.WriteText(os.Stdout)
	}
}

// runReps fans `reps` independent repetitions of the scenario across the
// worker pool. Repetition i rebuilds its topology and runs at seed
// seed + i*101, so the numbers are identical at any -workers value.
func runReps(sc core.Scenario, topoName string, aps, clients int, seed int64, reps, workers int, traffic string, duration time.Duration) {
	type rep struct {
		seed int64
		agg  float64
		err  error
	}
	results := parallel.Map(workers, reps, func(i int) rep {
		repSeed := parallel.Seed(seed, i, parallel.DefaultStride)
		net, err := buildTopo(topoName, aps, clients, repSeed)
		if err != nil {
			return rep{seed: repSeed, err: err}
		}
		r := sc // Scenario is a value; each rep gets its own copy
		r.Net = net
		r.Seed = repSeed
		return rep{seed: repSeed, agg: core.Run(r).AggregateMbps}
	})

	fmt.Printf("scheme=%s topo=%s traffic=%s duration=%v reps=%d workers=%d\n",
		sc.Scheme, topoName, traffic, duration, reps, parallel.Workers(workers))
	agg := &stats.CDF{}
	failed := 0
	for i, r := range results {
		if r.err != nil {
			failed++
			fmt.Printf("  rep %-3d seed %-6d infeasible: %v\n", i, r.seed, r.err)
			continue
		}
		agg.Add(r.agg)
		fmt.Printf("  rep %-3d seed %-6d aggregate %8.2f Mbps\n", i, r.seed, r.agg)
	}
	if agg.N() == 0 {
		fmt.Println("no feasible repetitions")
		os.Exit(1)
	}
	fmt.Printf("aggregate Mbps over %d reps: min %.2f  p50 %.2f  max %.2f\n",
		agg.N(), agg.Quantile(0), agg.Quantile(0.5), agg.Quantile(1))
	if failed > 0 {
		fmt.Printf("(%d infeasible repetitions skipped)\n", failed)
	}
}

func buildTopo(name string, m, n int, seed int64) (*topo.Network, error) {
	switch name {
	case "fig1":
		return topo.Figure1(), nil
	case "fig7":
		return topo.Figure7(), nil
	case "fig13a":
		return topo.Figure13a(), nil
	case "fig13b":
		return topo.Figure13b(), nil
	case "sc":
		return topo.TwoPairs(topo.SameContention), nil
	case "ht":
		return topo.TwoPairs(topo.HiddenTerminals), nil
	case "et":
		return topo.TwoPairs(topo.ExposedTerminals), nil
	case "campus":
		tr := topo.CampusTrace(seed)
		rng := rand.New(rand.NewSource(seed))
		return topo.BuildT(tr, m, n, phy.DefaultConfig(), phy.Rate12, rng)
	case "random":
		tr := topo.RandomTrace(seed, 110, 800)
		rng := rand.New(rand.NewSource(seed))
		return topo.BuildT(tr, m, n, phy.DefaultConfig(), phy.Rate12, rng)
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}
