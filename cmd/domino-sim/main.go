// Command domino-sim runs one channel-access simulation and reports
// throughput, delay and fairness. Scenarios come either from flags or from a
// declarative spec file (see internal/spec and examples/specs).
//
// Topologies:
//
//	-topo fig1|fig7|fig13a|fig13b        the paper's drawn networks
//	-topo sc|ht|et                       two AP-client pairs (Table 2 placements)
//	-topo campus -aps 10 -clients 2      T(m,n) from the synthetic campus trace
//	-topo random -aps 20 -clients 3      T(m,n) from a random 800×800 m placement
//
// Examples:
//
//	domino-sim -topo fig1 -scheme domino -traffic saturated -duration 10s
//	domino-sim -topo campus -aps 10 -clients 2 -scheme dcf -down 10 -up 4
//	domino-sim -topo ht -scheme domino -trace | head -50
//	domino-sim -topo random -reps 16 -workers 0    # 16 seeds across all cores
//	domino-sim -spec examples/specs/fig1-domino.json
//	domino-sim -serve :8080 -data /var/lib/domino-sim    # daemon mode
//
// Daemon mode (-serve) turns the binary into a long-lived HTTP/JSON service:
// POST spec documents to /runs, stream NDJSON traces from /runs/{id}/trace,
// pause/resume/cancel runs, and kill -9 the process at any time — on restart
// every unfinished run restores from its last checkpoint and its completed
// trace is byte-identical to an uninterrupted one. See internal/run.Server.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/run"
	"repro/internal/scheme"
	"repro/internal/shard"
	"repro/internal/spec"
	"repro/internal/stats"
)

func main() {
	var (
		specFile  = flag.String("spec", "", "run the declarative scenario in this JSON spec file (topology/scheme/traffic flags are ignored; -trace/-tracefile/-metrics still apply)")
		topoFlag  = flag.String("topo", "fig1", strings.Join(spec.Kinds(), "|"))
		aps       = flag.Int("aps", 10, "APs for campus/random topologies (per building for grid)")
		clients   = flag.Int("clients", 2, "clients per AP for campus/random/grid topologies")
		buildings = flag.Int("buildings", 0, "building count for the grid topology (0 = default 4)")
		shards    = flag.Int("shards", 0, "run sharded by interference domain on this many workers (0 = single engine; output is identical at any shard count)")
		schemeFl  = flag.String("scheme", "domino", "registered scheme: "+strings.Join(scheme.Names(), "|"))
		traffic   = flag.String("traffic", "saturated", "saturated|udp|tcp")
		downMbps  = flag.Float64("down", 10, "downlink offered Mbps per link (udp/tcp)")
		upMbps    = flag.Float64("up", 10, "uplink offered Mbps per link (udp/tcp)")
		duration  = flag.Duration("duration", 5*time.Second, "simulated time")
		warmup    = flag.Duration("warmup", 500*time.Millisecond, "statistics warm-up")
		seed      = flag.Int64("seed", 1, "random seed")
		reps      = flag.Int("reps", 1, "independent repetitions at derived seeds (seed + i*101)")
		workers   = flag.Int("workers", 0, "worker pool size for -reps (0 = all cores)")
		noDown    = flag.Bool("nodownlink", false, "omit downlink links")
		noUp      = flag.Bool("nouplink", false, "omit uplink links")
		trace     = flag.Bool("trace", false, "print DOMINO engine trace events")
		schedFl   = flag.String("scheduler", "", "DOMINO strict scheduling policy by name (see internal/strict registry; a spec's scheme_config.scheduler wins)")
		pollerFl  = flag.String("poller", "", "DOMINO polling scheme by name (see internal/poll registry: ROP, A2P, UORA; a spec's scheme_config.poller wins)")
		convTrace = flag.Bool("convert-trace", false, "emit per-batch schedule-conversion records into the NDJSON trace (DOMINO)")
		noCache   = flag.Bool("no-convert-cache", false, "disable DOMINO's conversion cache")
		noInc     = flag.Bool("no-incremental", false, "disable DOMINO's incremental re-conversion memos")
		verifyCvt = flag.Bool("verify-convert", false, "run convert.Verify on every DOMINO plan (debug; panics on violation)")
		traceFile = flag.String("tracefile", "", "write the NDJSON observability trace to this file (- for stdout; overrides the spec's obs.trace_file)")
		metrics   = flag.Bool("metrics", false, "collect and print run metrics (counters, airtime breakdown)")
		noSpans   = flag.Bool("no-spans", false, "trace without causal span annotations (drops sp/pa fields)")
		pprofAddr = flag.String("pprof", "", "serve the debug endpoint on this address (e.g. localhost:6060): pprof, runtime metrics, and — with -metrics / a trace — live /debug/metrics and /debug/trace")

		serveAddr = flag.String("serve", "", "daemon mode: serve the run-lifecycle HTTP API on this address (e.g. :8080); scenario flags are ignored")
		dataDir   = flag.String("data", "", "daemon data directory (one subdirectory per run; required with -serve)")
		maxRuns   = flag.Int("max-runs", 0, "daemon worker-fleet bound: concurrently executing runs (0 = one per core)")
		ckptEvery = flag.Duration("checkpoint-every", 30*time.Second, "daemon default wall-clock interval between automatic checkpoints (0 disables; a spec's run.checkpoint_every overrides per run)")
	)
	flag.Parse()

	if *serveAddr != "" {
		serveDaemon(*serveAddr, *dataDir, *maxRuns, *ckptEvery)
		return
	}

	// The debug server is built up-front but only bound after the scenario's
	// live sources (metrics publisher, trace hub) are attached.
	var dbg *obs.DebugServer
	if *pprofAddr != "" {
		dbg = obs.NewDebugServer()
	}
	serveDebug := func() {
		if dbg == nil {
			return
		}
		addr, err := dbg.Serve(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "debug: http://%s/debug/pprof/  /debug/runtime  /debug/metrics  /debug/trace\n", addr)
	}

	var sp spec.Spec
	if *specFile != "" {
		var err error
		sp, err = spec.Load(*specFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "domino-sim: %v\n", err)
			os.Exit(2)
		}
	} else {
		t := spec.Topology{Kind: *topoFlag}
		if t.Kind == "campus" || t.Kind == "random" || t.Kind == "grid" {
			t.APs, t.Clients = *aps, *clients
		}
		if t.Kind == "grid" {
			t.Buildings = *buildings
		}
		downOn, upOn := !*noDown, !*noUp
		sp = spec.Spec{
			Scheme:   *schemeFl,
			Topology: t,
			Downlink: &downOn,
			Uplink:   &upOn,
			Seed:     *seed,
			Duration: spec.Duration(duration.Nanoseconds()),
			Warmup:   spec.Duration(warmup.Nanoseconds()),
			Traffic:  spec.Traffic{Kind: *traffic, DownMbps: *downMbps, UpMbps: *upMbps},
		}
	}
	if err := sp.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "domino-sim: %v\n", err)
		os.Exit(2)
	}
	d, _ := scheme.Lookup(sp.Scheme) // Validate guarantees the lookup

	// The -shards flag overrides the spec's shards knob; either selects the
	// interference-domain sharded runner (internal/shard).
	shardWorkers := sp.ShardWorkers()
	if *shards > 0 {
		shardWorkers = *shards
	}

	if *reps > 1 {
		if *trace || *traceFile != "" {
			fmt.Fprintln(os.Stderr, "-trace/-tracefile are ignored with -reps > 1 (interleaved output)")
		}
		if shardWorkers > 0 {
			fmt.Fprintln(os.Stderr, "-shards is ignored with -reps > 1 (repetitions already fan out across workers)")
		}
		serveDebug()
		runReps(sp, d.Name, *reps, *workers)
		return
	}

	sc, err := core.BuildScenario(sp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "domino-sim: %v\n", err)
		os.Exit(2)
	}
	if *schedFl != "" || *pollerFl != "" || *convTrace || *noCache || *noInc || *verifyCvt {
		// CLI-level DOMINO knobs ride the typed tune hook, which core runs
		// before the spec's scheme_config — so a spec file always wins.
		sched, pollerName, ct, nc, ni, vc := *schedFl, *pollerFl, *convTrace, *noCache, *noInc, *verifyCvt
		prev := sc.TuneDomino
		sc.TuneDomino = func(c *domino.Config) {
			if prev != nil {
				prev(c)
			}
			if sched != "" {
				c.Scheduler = sched
			}
			if pollerName != "" {
				c.Poller = pollerName
			}
			c.ConvertTrace = c.ConvertTrace || ct
			c.NoConvertCache = c.NoConvertCache || nc
			c.NoIncremental = c.NoIncremental || ni
			c.VerifyConvert = c.VerifyConvert || vc
		}
	}
	if *trace {
		sc.Trace = func(ev domino.TraceEvent) {
			link := ""
			if ev.Link != nil {
				link = ev.Link.String()
			}
			fmt.Printf("%12v slot %-4d %-10s node %-3d %s\n", ev.At, ev.Slot, ev.Kind, ev.Node, link)
		}
	}
	tf := sp.Obs.TraceFile
	if *traceFile != "" {
		tf = *traceFile
	}
	var ndjson *obs.NDJSON
	var hub *obs.LiveHub
	if tf != "" {
		w := os.Stdout
		if tf != "-" {
			f, err := os.Create(tf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer f.Close()
			w = f
		}
		sink := obs.Sink(obs.WriterSink{W: w})
		if dbg != nil {
			// Tee every flushed chunk into the live hub so /debug/trace
			// streams the run as it happens.
			hub = obs.NewLiveHub()
			dbg.AttachLive(hub)
			sink = obs.MultiSink{sink, hub}
		}
		ndjson = obs.NewNDJSONTo(sink)
		sc.Tracer = ndjson
	}
	if *metrics && sc.Metrics == nil {
		sc.Metrics = obs.NewMetrics()
	}
	if *noSpans {
		sc.NoSpans = true
	}
	if dbg != nil && sc.Metrics != nil {
		sc.Live = obs.NewMetricsPublisher()
		dbg.AttachMetrics(sc.Live)
	}
	serveDebug()

	var res core.Result
	var shardRep *shard.Report
	if shardWorkers > 0 {
		res, shardRep, err = shard.Run(sc, shard.Options{Workers: shardWorkers})
	} else {
		res, err = core.RunScenario(sc)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "domino-sim: %v\n", err)
		os.Exit(1)
	}

	if ndjson != nil {
		if err := ndjson.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "trace write: %v\n", err)
			os.Exit(1)
		}
	}
	if hub != nil {
		_ = hub.Close() // end-of-stream for live /debug/trace subscribers
	}

	fmt.Printf("scheme=%s topo=%s traffic=%s duration=%v seed=%d\n",
		d.Name, sp.Topology.Kind, sp.TrafficKind(), sc.Duration, sp.Seed)
	if shardRep != nil {
		st := shardRep.Partition.Stats
		fmt.Printf("shard: domains=%d workers=%d windows=%d messages=%d cutEdges=%d crossLinkPairs=%d\n",
			st.Domains, shardRep.Workers, shardRep.Windows, shardRep.Messages, st.CutEdges, st.CrossLinkPairs)
	}
	fmt.Printf("aggregate: %.2f Mbps   mean delay: %v   Jain fairness: %.3f\n",
		res.AggregateMbps, res.MeanDelay, res.Fairness)
	fmt.Println("per-link throughput (Mbps):")
	for _, l := range res.Links {
		fmt.Printf("  %-12s %8.3f\n", l, res.PerLinkMbps[l.ID])
	}
	for _, l := range res.SkippedLinks {
		fmt.Printf("  %-12s (skipped: zero offered rate)\n", l)
	}
	if len(res.UnpolledClients) > 0 {
		fmt.Printf("unpolled clients (over the poller's per-AP limit; never polled): %v\n",
			res.UnpolledClients)
	}
	if d := res.Domino; d != nil {
		fmt.Printf("domino: slots=%d data=%d fake=%d polls=%d ackMisses=%d selfStarts=%d drops=%d\n",
			d.Slots(), d.DataSends, d.FakeSends, d.Polls, d.AckMisses, d.SelfStarts, d.Drops)
		if d.PollRounds > 0 && (d.PollCollisions > 0 || d.PollRounds > d.Polls) {
			fmt.Printf("domino: pollRounds=%d collisions=%d decoded=%d failed=%d\n",
				d.PollRounds, d.PollCollisions, d.PollDecoded, d.PollFailed)
		}
		if hits, misses := d.ConvertCacheStats(); hits+misses > 0 {
			fmt.Printf("domino: convert cache hits=%d misses=%d (%.0f%% hit rate)\n",
				hits, misses, 100*float64(hits)/float64(hits+misses))
		}
	}
	if d := res.Dcf; d != nil {
		fmt.Printf("dcf: ackTimeouts=%d drops=%d\n", d.AckTimeouts, d.Drops)
	}
	if c := res.Centaur; c != nil {
		fmt.Printf("centaur: epochs=%d ackTimeouts=%d drops=%d\n", c.Epochs, c.AckTimeouts, c.Drops)
	}
	if o := res.Omni; o != nil {
		fmt.Printf("omniscient: slots=%d failures=%d\n", o.Slots, o.Failures)
	}
	if res.Breakdown != nil {
		fmt.Println("airtime breakdown:")
		res.Breakdown.WriteText(os.Stdout)
	}
	if res.Snapshot != nil {
		fmt.Println("metrics:")
		res.Snapshot.WriteText(os.Stdout)
	}
}

// serveDaemon runs the domino-simd HTTP service until SIGINT/SIGTERM, then
// drains the fleet. Abrupt exits (kill -9) need no cleanup: the next boot's
// recovery restores every unfinished run from its last checkpoint.
func serveDaemon(addr, dataDir string, maxRuns int, ckptEvery time.Duration) {
	if dataDir == "" {
		fmt.Fprintln(os.Stderr, "domino-sim: -serve requires -data <dir>")
		os.Exit(2)
	}
	srv, err := run.NewServer(run.ServerOptions{
		DataDir:         dataDir,
		MaxRuns:         maxRuns,
		CheckpointEvery: ckptEvery,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "domino-sim: %v\n", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "domino-sim: %v\n", err)
		os.Exit(2)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "domino-simd: listening on http://%s (data: %s, max runs: %d, checkpoint every: %v)\n",
		ln.Addr(), dataDir, parallel.Workers(maxRuns), ckptEvery)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "domino-simd: %v; draining\n", s)
		hs.Close()
		srv.Close()
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "domino-simd: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
	}
}

// runReps fans `reps` independent repetitions of the spec across the worker
// pool. Repetition i rebuilds its topology and runs at seed seed + i*101, so
// the numbers are identical at any -workers value.
func runReps(sp spec.Spec, schemeName string, reps, workers int) {
	type rep struct {
		seed int64
		agg  float64
		err  error
	}
	results := parallel.Map(workers, reps, func(i int) rep {
		repSeed := parallel.Seed(sp.Seed, i, parallel.DefaultStride)
		s := sp // Spec is a value; each rep gets its own copy
		s.Seed = repSeed
		s.Topology.Seed = nil // regenerate the topology at the rep seed
		r, err := core.RunE(s)
		if err != nil {
			return rep{seed: repSeed, err: err}
		}
		return rep{seed: repSeed, agg: r.AggregateMbps}
	})

	fmt.Printf("scheme=%s topo=%s traffic=%s duration=%v reps=%d workers=%d\n",
		schemeName, sp.Topology.Kind, sp.TrafficKind(), sp.Duration.Time(), reps, parallel.Workers(workers))
	agg := &stats.CDF{}
	failed := 0
	for i, r := range results {
		if r.err != nil {
			failed++
			fmt.Printf("  rep %-3d seed %-6d infeasible: %v\n", i, r.seed, r.err)
			continue
		}
		agg.Add(r.agg)
		fmt.Printf("  rep %-3d seed %-6d aggregate %8.2f Mbps\n", i, r.seed, r.agg)
	}
	if agg.N() == 0 {
		fmt.Println("no feasible repetitions")
		os.Exit(1)
	}
	fmt.Printf("aggregate Mbps over %d reps: min %.2f  p50 %.2f  max %.2f\n",
		agg.N(), agg.Quantile(0), agg.Quantile(0.5), agg.Quantile(1))
	if failed > 0 {
		fmt.Printf("(%d infeasible repetitions skipped)\n", failed)
	}
}
