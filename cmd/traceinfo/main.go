// Command traceinfo generates, inspects and exports RSS traces and the
// T(m,n) topologies selected from them, and summarizes NDJSON observability
// traces.
//
//	traceinfo -gen campus -seed 7                 # statistics of a campus trace
//	traceinfo -gen random -nodes 110 -area 800    # random placement
//	traceinfo -gen campus -json > trace.json      # export
//	traceinfo -load trace.json -aps 10 -clients 2 # select a T(m,n) and report
//	traceinfo -trace run.ndjson                   # record-kind census of an obs trace
//
// The JSON format (topo.ReadTraceJSON) lets real measured interference maps
// drive every engine in this repository. The -trace mode understands every
// current record kind — including the causal-span and histogram-summary
// kinds — and counts rather than silently skips unrecognized ones, so
// traces from newer builds degrade loudly.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/topo"
)

func main() {
	var (
		gen     = flag.String("gen", "campus", "campus | random (ignored with -load)")
		load    = flag.String("load", "", "load a trace from a JSON file")
		seed    = flag.Int64("seed", 1, "generator seed")
		nodes   = flag.Int("nodes", 110, "random placement node count")
		area    = flag.Float64("area", 800, "random placement square side (m)")
		asJSON  = flag.Bool("json", false, "dump the trace as JSON to stdout")
		aps     = flag.Int("aps", 0, "select a T(aps, clients) and report it")
		clients = flag.Int("clients", 2, "clients per AP for -aps")
		ndTrace = flag.String("trace", "", "summarize this NDJSON observability trace (- for stdin) instead of an RSS trace")
	)
	flag.Parse()

	if *ndTrace != "" {
		if err := traceCensus(*ndTrace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var tr *topo.Trace
	switch {
	case *load != "":
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err = topo.ReadTraceJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *gen == "campus":
		tr = topo.CampusTrace(*seed)
	case *gen == "random":
		tr = topo.RandomTrace(*seed, *nodes, *area)
	default:
		fmt.Fprintf(os.Stderr, "unknown generator %q\n", *gen)
		os.Exit(2)
	}

	if *asJSON {
		if err := tr.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	n := len(tr.RSS)
	fmt.Printf("trace: %d nodes\n", n)
	var measured int
	min, max := 0.0, -200.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := tr.RSS[i][j]
			if v > topo.UnmeasuredDBm {
				measured++
				if v > max {
					max = v
				}
				if min == 0 || v < min {
					min = v
				}
			}
		}
	}
	fmt.Printf("measured couplings: %d of %d pairs (%.1f%%), %.1f..%.1f dBm\n",
		measured, n*(n-1)/2, 100*float64(measured)/float64(n*(n-1)/2), min, max)
	fmt.Printf("same-receiver pairs differing >38 dB: %.2f%% (paper trace: 0.54%%)\n",
		100*topo.RSSDiffExceedRatio(tr.RSS, 38, -94))

	if *aps > 0 {
		rng := rand.New(rand.NewSource(*seed))
		net, err := topo.BuildT(tr, *aps, *clients, phy.DefaultConfig(), phy.Rate12, rng)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		links := net.BuildLinks(true, true)
		g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
		h, e, total := g.CountHiddenExposed()
		fmt.Printf("\nT(%d,%d): %d nodes, %d links\n", *aps, *clients, net.NumNodes(), len(links))
		fmt.Printf("hidden pairs: %d, exposed pairs: %d of %d\n", h, e, total)
		deg := 0
		for i := range links {
			deg += g.Degree(i)
		}
		fmt.Printf("mean conflict degree: %.1f\n", float64(deg)/float64(len(links)))
	}
}

// traceCensus summarizes an NDJSON observability trace: runs, per-kind
// record counts, causal-span coverage, and histogram-summary (metric)
// records. Unknown kinds — from a newer trace format — are counted and
// reported in one line instead of aborting or vanishing.
func traceCensus(path string) error {
	in := io.Reader(os.Stdin)
	name := "stdin"
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in, name = f, path
	}
	counts := map[obs.Kind]int{}
	var runs, total, spanned int
	var maxSpan int64
	skipped, err := obs.ScanNDJSON(in, func(r obs.Record) error {
		total++
		counts[r.Kind]++
		if r.Kind == obs.KindRunStart {
			runs++
		}
		if r.Span != 0 || r.Parent != 0 {
			spanned++
		}
		if r.Span > maxSpan {
			maxSpan = r.Span
		}
		if r.Kind == obs.KindMetric {
			fmt.Printf("  metric %-24s n=%-8d p99=%d\n", r.Aux, r.Value, r.Extra)
		}
		return nil
	}, func(string) {})
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("%s: %d records, %d runs\n", name, total, runs)
	kinds := make([]obs.Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(a, b int) bool { return counts[kinds[a]] > counts[kinds[b]] })
	for _, k := range kinds {
		fmt.Printf("  %-14s %d\n", k, counts[k])
	}
	if spanned > 0 {
		fmt.Printf("causal spans: %d annotated records, %d spans allocated\n", spanned, maxSpan)
	}
	fmt.Printf("unrecognized records: %d\n", skipped)
	return nil
}
