package mac

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

func TestQueueFIFOAndBounds(t *testing.T) {
	q := NewQueue(3)
	for i := 0; i < 3; i++ {
		if !q.Push(&Packet{Seq: uint64(i)}) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if q.Push(&Packet{Seq: 99}) {
		t.Fatal("push beyond cap accepted")
	}
	for i := 0; i < 3; i++ {
		if got := q.Pop(); got.Seq != uint64(i) {
			t.Fatalf("pop %d returned seq %d", i, got.Seq)
		}
	}
	if q.Pop() != nil || q.Peek() != nil {
		t.Fatal("empty queue returned a packet")
	}
}

func TestQueuePushFront(t *testing.T) {
	q := NewQueue(0)
	q.Push(&Packet{Seq: 1})
	q.PushFront(&Packet{Seq: 0})
	if q.Peek().Seq != 0 {
		t.Fatal("PushFront not at head")
	}
	if q.Cap() != DefaultQueueCap {
		t.Fatalf("default cap = %d", q.Cap())
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
}

type record struct {
	delivered, dropped int
}

func (r *record) Delivered(*Packet, sim.Time) { r.delivered++ }
func (r *record) Dropped(*Packet, sim.Time)   { r.dropped++ }

func TestMuxAndHubFanOut(t *testing.T) {
	a, b := &record{}, &record{}
	p := &Packet{Link: &topo.Link{ID: 0}}

	m := Mux{a, b}
	m.Delivered(p, 0)
	m.Dropped(p, 0)

	h := &Hub{}
	h.Add(a)
	h.Delivered(p, 0)
	h.Add(b)
	h.Dropped(p, 0)

	if a.delivered != 2 || a.dropped != 2 {
		t.Errorf("sink a: %+v", a)
	}
	if b.delivered != 1 || b.dropped != 2 {
		t.Errorf("sink b: %+v", b)
	}
	NopEvents{}.Delivered(p, 0)
	NopEvents{}.Dropped(p, 0)
}
