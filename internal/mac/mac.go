// Package mac holds the pieces every channel-access engine shares: the
// MAC-layer packet, bounded per-link FIFO queues, the engine interface the
// traffic generators push into, and the delivery-event plumbing that feeds
// statistics, saturated-source refill, and the TCP model.
package mac

import (
	"repro/internal/sim"
	"repro/internal/topo"
)

// DefaultQueueCap bounds each link's MAC queue (packets). Arrivals beyond it
// are tail-dropped, as in ns-3's default WiFi MAC queue.
const DefaultQueueCap = 2000

// RetryLimit is the 802.11 long-retry limit: a data frame is dropped after
// this many failed transmission attempts.
const RetryLimit = 7

// Packet is one MAC-layer service data unit queued on a link.
type Packet struct {
	// Link the packet travels on.
	Link *topo.Link
	// Bytes is the MAC payload length.
	Bytes int
	// Enqueued is when the packet entered the MAC queue; delay is measured
	// from here to successful delivery (paper §4.2.4).
	Enqueued sim.Time
	// Seq is a per-link sequence number assigned by the source.
	Seq uint64
	// FlowID identifies the transport flow (TCP model); -1 for plain UDP.
	FlowID int
	// TCPAck marks transport-level acknowledgements, which DOMINO schedules
	// as regular data packets occupying a whole slot (paper §4.2.3).
	TCPAck bool
	// AckSeq is the cumulative TCP acknowledgement number when TCPAck.
	AckSeq uint64
	// Retries counts transmission attempts so far.
	Retries int
	// Dequeued is when the packet first left the MAC queue for service; the
	// observability layer stamps it once (obs.Run.PacketDequeued) so
	// queueing delay and head-of-line latency split cleanly. Zero when the
	// run has no observability wired.
	Dequeued sim.Time
	// Span is the packet's causal span id (obs), 0 when tracing is off.
	Span int64
	// TxSpan is the span of the transmission (DOMINO slot, CENTAUR epoch,
	// DCF attempt) that last carried the packet, 0 if none.
	TxSpan int64
}

// Events receives packet outcomes from an engine. Delivered fires when the
// receiver decodes the packet (at most once per packet); Dropped fires when
// the MAC gives up (retry limit or queue overflow).
type Events interface {
	Delivered(p *Packet, now sim.Time)
	Dropped(p *Packet, now sim.Time)
}

// Mux fans events out to several sinks in order.
type Mux []Events

// Delivered implements Events.
func (m Mux) Delivered(p *Packet, now sim.Time) {
	for _, e := range m {
		e.Delivered(p, now)
	}
}

// Dropped implements Events.
func (m Mux) Dropped(p *Packet, now sim.Time) {
	for _, e := range m {
		e.Dropped(p, now)
	}
}

// Hub is a mutable Events fan-out: engines are constructed with the Hub, and
// sinks that themselves need the engine (saturated sources, TCP flows) are
// added afterwards.
type Hub struct {
	sinks []Events
}

// Add appends a sink.
func (h *Hub) Add(e Events) { h.sinks = append(h.sinks, e) }

// Delivered implements Events.
func (h *Hub) Delivered(p *Packet, now sim.Time) {
	for _, e := range h.sinks {
		e.Delivered(p, now)
	}
}

// Dropped implements Events.
func (h *Hub) Dropped(p *Packet, now sim.Time) {
	for _, e := range h.sinks {
		e.Dropped(p, now)
	}
}

// NopEvents discards all events.
type NopEvents struct{}

// Delivered implements Events.
func (NopEvents) Delivered(*Packet, sim.Time) {}

// Dropped implements Events.
func (NopEvents) Dropped(*Packet, sim.Time) {}

// Engine is a channel-access protocol instance: traffic generators push
// packets in, Start arms the initial events, and queue lengths are visible
// for polling protocols and observers.
type Engine interface {
	// Start schedules the engine's initial events. Call once, before Run.
	Start()
	// Enqueue offers a packet to the MAC queue of p.Link. The engine may
	// tail-drop it (reported via Events.Dropped).
	Enqueue(p *Packet)
	// QueueLen reports the backlog (packets) of the given link ID.
	QueueLen(link int) int
}

// Queue is a bounded FIFO of packets for one link.
type Queue struct {
	pkts []*Packet
	cap  int

	// OnDepth, when non-nil, observes the backlog after every accepted push,
	// pop and re-insert — the observability layer's queue-depth sampler.
	// Nil (the default) costs one branch per queue operation.
	OnDepth func(depth int)
}

// NewQueue returns a queue bounded to capacity packets (0 means
// DefaultQueueCap).
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = DefaultQueueCap
	}
	return &Queue{cap: capacity}
}

// Push appends p and reports whether it was accepted (false: tail drop).
func (q *Queue) Push(p *Packet) bool {
	if len(q.pkts) >= q.cap {
		return false
	}
	q.pkts = append(q.pkts, p)
	if q.OnDepth != nil {
		q.OnDepth(len(q.pkts))
	}
	return true
}

// Pop removes and returns the head, or nil when empty.
func (q *Queue) Pop() *Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	p := q.pkts[0]
	q.pkts[0] = nil
	q.pkts = q.pkts[1:]
	if q.OnDepth != nil {
		q.OnDepth(len(q.pkts))
	}
	return p
}

// Peek returns the head without removing it, or nil when empty.
func (q *Queue) Peek() *Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	return q.pkts[0]
}

// PushFront reinserts a packet at the head (retransmission priority).
func (q *Queue) PushFront(p *Packet) {
	q.pkts = append([]*Packet{p}, q.pkts...)
	if q.OnDepth != nil {
		q.OnDepth(len(q.pkts))
	}
}

// Len returns the backlog in packets.
func (q *Queue) Len() int { return len(q.pkts) }

// Cap returns the queue bound.
func (q *Queue) Cap() int { return q.cap }
