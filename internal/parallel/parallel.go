// Package parallel is the fan-out layer for the repository's
// embarrassingly-parallel workloads: Monte-Carlo repetitions, sweep grids
// and the chip-level detection trials. It provides a bounded worker pool
// with two properties the experiment drivers rely on:
//
//   - Deterministic seeding. Each task derives its own RNG seed from the
//     experiment's base seed and the task index (Seed = base + idx*stride,
//     the scheme exp.Fig14 has always used), so a task's randomness depends
//     only on its index, never on which worker runs it or in what order.
//
//   - Ordered collection. Map writes task i's result into slot i of a
//     pre-sized slice, and reductions (CDF merges, count sums) happen in
//     index order after the pool drains. Together with per-task seeding
//     this makes parallel output byte-identical to serial output at any
//     worker count — the contract the determinism regression tests assert.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values ≤ 0 mean "all cores"
// (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Seed derives the RNG seed for task idx from an experiment's base seed.
// The stride keeps neighbouring tasks' rand.NewSource streams apart (a
// LCG-adjacent seed produces a correlated first draw); 101 is the stride
// the Fig 14 driver has used since the seed commit, kept as the default.
func Seed(base int64, idx int, stride int64) int64 {
	return base + int64(idx)*stride
}

// DefaultStride is the per-task seed spacing used by the drivers.
const DefaultStride int64 = 101

// ForEach runs fn(i) for every i in [0, n) on up to `workers` goroutines
// (≤ 0 → all cores) and blocks until all complete. Tasks must be mutually
// independent: fn may only write state owned by its own index. With one
// worker (or n ≤ 1) it degenerates to a plain loop on the calling
// goroutine, so `workers=1` is exactly the serial code path.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn over [0, n) with ForEach's scheduling and returns the results
// ordered by index — the slot a result lands in depends only on its task
// index, so the returned slice is identical at any worker count.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}
