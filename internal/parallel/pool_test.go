package parallel

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachCtxMatchesForEach pins that an uncancelled ForEachCtx covers
// every index exactly once, like ForEach.
func TestForEachCtxMatchesForEach(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 200
		hits := make([]atomic.Int64, n)
		if err := ForEachCtx(context.Background(), workers, n, func(_ context.Context, i int) {
			hits[i].Add(1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

// TestForEachCtxCancelMidRun cancels while tasks are in flight and asserts
// the dispatch stops, the call returns the context error, and — under
// -race with goroutine leak accounting — no workers outlive the call.
func TestForEachCtxCancelMidRun(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := ForEachCtx(ctx, 4, 10000, func(ctx context.Context, i int) {
		if started.Add(1) == 20 {
			cancel()
		}
		// Simulate a simulation batch that polls its context.
		select {
		case <-ctx.Done():
		case <-time.After(100 * time.Microsecond):
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 10000 {
		t.Fatalf("cancellation did not stop dispatch: %d tasks started", n)
	}
	waitForGoroutines(t, before)
	cancel()
}

// TestPoolCancelMidRun is the daemon-shutdown regression: tasks running in
// a Pool are cancelled mid-run, the pool closes, and every worker goroutine
// exits — no leaks, no deadlock. Run under -race (make race / race-serve).
func TestPoolCancelMidRun(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(3)
	ctx, cancel := context.WithCancel(context.Background())
	var finished atomic.Int64
	running := make(chan struct{}, 16)
	for i := 0; i < 6; i++ {
		err := p.Submit(ctx, func(ctx context.Context) {
			running <- struct{}{}
			// A long "run" that honours per-batch cancellation checks.
			for j := 0; j < 1000; j++ {
				if ctx.Err() != nil {
					break
				}
				time.Sleep(50 * time.Microsecond)
			}
			finished.Add(1)
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// Wait until the pool is saturated, then cancel mid-run.
	for i := 0; i < 3; i++ {
		<-running
	}
	cancel()
	p.Close()
	if p.Active() != 0 {
		t.Fatalf("%d tasks still active after Close", p.Active())
	}
	// Every accepted-and-started task must have finished (cancellation makes
	// them finish early, not vanish); queued tasks with a dead context are
	// skipped, so finished ≤ 6.
	if n := finished.Load(); n < 3 || n > 6 {
		t.Fatalf("finished = %d, want between 3 and 6", n)
	}
	if err := p.Submit(context.Background(), func(context.Context) {}); err == nil {
		t.Fatal("Submit succeeded on a closed pool")
	}
	waitForGoroutines(t, before)
}

// TestPoolBound asserts concurrency never exceeds the worker bound.
func TestPoolBound(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var cur, peak atomic.Int64
	done := make(chan struct{}, 8)
	for i := 0; i < 8; i++ {
		if err := p.Submit(context.Background(), func(context.Context) {
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			done <- struct{}{}
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if peak.Load() > 2 {
		t.Fatalf("peak concurrency %d exceeds bound 2", peak.Load())
	}
}

// waitForGoroutines polls until the goroutine count returns to (or below)
// the baseline, failing after a generous deadline. NumGoroutine is noisy
// (test runner, timers), so allow a small slack.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseline)
}
