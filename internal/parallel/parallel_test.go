package parallel

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestSeed(t *testing.T) {
	if Seed(7, 0, DefaultStride) != 7 {
		t.Error("task 0 must use the base seed unchanged")
	}
	if Seed(7, 3, 101) != 7+3*101 {
		t.Errorf("Seed(7,3,101) = %d", Seed(7, 3, 101))
	}
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 257
		var hits [n]atomic.Int32
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	if ran {
		t.Error("ForEach(_, 0) must not invoke fn")
	}
}

// TestMapDeterministic is the core contract: per-index seeding makes the
// result slice identical at every worker count.
func TestMapDeterministic(t *testing.T) {
	run := func(workers int) []float64 {
		return Map(workers, 64, func(i int) float64 {
			rng := rand.New(rand.NewSource(Seed(42, i, DefaultStride)))
			var s float64
			for k := 0; k < 100; k++ {
				s += rng.NormFloat64()
			}
			return s
		})
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8, 64} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapOrdering(t *testing.T) {
	got := Map(8, 50, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}
