package parallel

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done, no
// new task indices are dispatched, already-running fn calls finish (fn
// receives ctx and may bail early itself), every worker goroutine exits, and
// the context's error is returned. With a Background context it behaves
// exactly like ForEach — same scheduling, same worker degeneration to a
// serial loop — so callers can thread one implementation through both
// cancellable (daemon) and non-cancellable (CLI) paths.
func ForEachCtx(ctx context.Context, workers, n int, fn func(ctx context.Context, i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(ctx, i)
		}
		return ctx.Err()
	}
	done := ctx.Done()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(ctx, i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Pool is a bounded dynamic worker pool for long-lived services: unlike
// ForEach's static fan-out over a known index range, tasks arrive over time
// (daemon run submissions) and each carries its own context. Workers are
// spawned lazily up to the bound and exit on Close, so an idle or closed
// pool holds no goroutines on the floor — the leak-freedom contract
// TestPoolCancelMidRun pins under -race.
type Pool struct {
	tasks   chan poolTask
	quit    chan struct{}
	workers int

	mu      sync.Mutex
	spawned int
	closed  bool
	wg      sync.WaitGroup
	active  atomic.Int64
}

type poolTask struct {
	ctx context.Context
	fn  func(ctx context.Context)
}

// NewPool returns a pool running at most workers tasks concurrently
// (≤ 0: all cores).
func NewPool(workers int) *Pool {
	return &Pool{
		tasks:   make(chan poolTask),
		quit:    make(chan struct{}),
		workers: Workers(workers),
	}
}

// Submit queues fn for execution and returns once a worker has accepted it
// or ctx/pool-close intervened; it never blocks past that. fn runs with the
// submitted ctx and is itself responsible for honouring cancellation — the
// pool guarantees a task whose context is already done when a worker picks
// it up is skipped entirely.
func (p *Pool) Submit(ctx context.Context, fn func(ctx context.Context)) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("parallel: pool is closed")
	}
	// Lazy spawn: one worker per in-flight submission until the bound.
	if p.spawned < p.workers {
		p.spawned++
		p.wg.Add(1)
		go p.worker()
	}
	p.mu.Unlock()

	select {
	case p.tasks <- poolTask{ctx: ctx, fn: fn}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.quit:
		return fmt.Errorf("parallel: pool is closed")
	}
}

// Active returns the number of tasks currently executing.
func (p *Pool) Active() int { return int(p.active.Load()) }

// Close stops accepting submissions, lets running tasks finish, and blocks
// until every worker goroutine has exited. Cancel the submitted contexts
// first for a prompt shutdown. Shutdown is signalled on a dedicated quit
// channel rather than by closing the task channel, so submissions racing a
// Close (the daemon's async submit path) get a clean error instead of a
// send-on-closed-channel panic.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.quit)
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.tasks:
			if t.ctx.Err() != nil {
				continue // cancelled while queued
			}
			p.active.Add(1)
			t.fn(t.ctx)
			p.active.Add(-1)
		case <-p.quit:
			return
		}
	}
}
