package shard

import (
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Message is one cross-shard delivery: a coupling-audit digest a domain
// sends its coupled peer at a window barrier, or (in tests) an injected
// effect. Channels are per directed domain pair and strictly ordered by
// Seq, so delivery order is a pure function of the partition.
type Message struct {
	// From and To are domain indices.
	From, To int
	// Seq is the per-channel sequence number (0, 1, 2, … per direction).
	Seq int
	// At is the window horizon the digest summarizes activity up to.
	At sim.Time
	// Digest is the sender's cumulative boundary activity: delivered-packet
	// count over the sender's links whose AP sits on a severed conflict
	// edge toward the receiver. The receiver audits it (Report.Audits);
	// the residual interference itself stays approximated away, which is
	// exactly what accepting the RSS cut means.
	Digest int64
	// Apply, when non-nil, runs against the receiving domain's instance at
	// delivery time (before the window executes) — the hook tests use to
	// prove cross-shard effects land deterministically.
	Apply func(*core.Instance)
}

// PairAudit summarizes one coupled domain pair's channel after the run.
type PairAudit struct {
	// A and B are the domain indices, A < B.
	A, B int
	// Messages counts digests routed over the pair (both directions).
	Messages int
	// FinalAB and FinalBA are the last digests routed A→B and B→A: each
	// side's cumulative boundary deliveries as of the final barrier.
	FinalAB, FinalBA int64
}

// router owns the cross-shard channels. Worker goroutines touch only their
// own domain's outbox/inbox slices and per-sender sequence counters; all
// shared bookkeeping happens in route(), which runs single-threaded between
// ForEach barriers.
type router struct {
	// peers[d] lists d's coupled peer domains, sorted ascending.
	peers map[int][]int
	// boundary[{from,to}] lists from's local link ids whose AP sits on a
	// severed edge toward to — the digest's summation set.
	boundary map[[2]int][]int
	// seq[{from,to}] is the next sequence number per directed channel.
	// Written only by domain from's goroutine.
	seq map[[2]int]*int
	// outbox[d] holds messages domain d emitted this window; inbox[d]
	// holds messages staged for d's next window, sorted by (From, Seq).
	outbox, inbox [][]Message

	audit    map[[2]int]*PairAudit
	pairList [][2]int
	messages int
}

// newRouter builds the channel topology from the partition's severed edges.
func newRouter(p *topo.Partition) *router {
	r := &router{
		peers:    map[int][]int{},
		boundary: map[[2]int][]int{},
		seq:      map[[2]int]*int{},
		outbox:   make([][]Message, len(p.Domains)),
		inbox:    make([][]Message, len(p.Domains)),
		audit:    map[[2]int]*PairAudit{},
		pairList: p.CrossDomainPairs(),
	}
	for _, pr := range r.pairList {
		r.audit[pr] = &PairAudit{A: pr[0], B: pr[1]}
		for _, dir := range [2][2]int{{pr[0], pr[1]}, {pr[1], pr[0]}} {
			r.peers[dir[0]] = append(r.peers[dir[0]], dir[1])
			r.seq[dir] = new(int)
		}
	}
	for d := range r.peers {
		sort.Ints(r.peers[d])
	}
	// Boundary link sets: for every severed edge, the links of each
	// endpoint AP face the opposite domain.
	local := map[int]map[int]int{} // domain → global link id → local id
	for d := range p.Domains {
		local[d] = map[int]int{}
		for i, g := range p.Domains[d].Links {
			local[d][g] = i
		}
	}
	apLinks := map[int][]int{} // global AP node → global link ids
	for i, l := range p.Graph.Links {
		apLinks[int(l.AP)] = append(apLinks[int(l.AP)], i)
	}
	add := func(ap, from, to int) {
		for _, g := range apLinks[ap] {
			key := [2]int{from, to}
			r.boundary[key] = append(r.boundary[key], local[from][g])
		}
	}
	for _, c := range p.Cuts {
		da, db := p.NodeDomain[c.A], p.NodeDomain[c.B]
		if da == db {
			continue
		}
		add(int(c.A), da, db)
		add(int(c.B), db, da)
	}
	for key := range r.boundary {
		sort.Ints(r.boundary[key])
	}
	return r
}

// pairs returns the number of coupled domain pairs (0: barrier-free run).
func (r *router) pairs() int { return len(r.pairList) }

// emit queues domain d's per-peer digests for the window ending at h.
// Runs on d's worker goroutine; touches only d-owned state.
func (r *router) emit(d int, inst *core.Instance, h sim.Time) {
	coll := inst.Collector()
	for _, peer := range r.peers[d] {
		key := [2]int{d, peer}
		var digest int64
		for _, l := range r.boundary[key] {
			digest += int64(coll.Link(l).DeliveredPkts)
		}
		s := r.seq[key]
		r.outbox[d] = append(r.outbox[d], Message{
			From: d, To: peer, Seq: *s, At: h, Digest: digest,
		})
		*s++
	}
}

// route moves every outbox message into its destination inbox and updates
// the audits. Single-threaded: call only between ForEach barriers.
func (r *router) route() {
	for d := range r.inbox {
		r.inbox[d] = r.inbox[d][:0]
	}
	for from := range r.outbox {
		for _, m := range r.outbox[from] {
			r.inbox[m.To] = append(r.inbox[m.To], m)
			r.messages++
			key := [2]int{m.From, m.To}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			a := r.audit[key]
			if a == nil { // injected message on an uncoupled pair
				a = &PairAudit{A: key[0], B: key[1]}
				r.audit[key] = a
				r.pairList = append(r.pairList, key)
			}
			a.Messages++
			if m.From == a.A {
				a.FinalAB = m.Digest
			} else {
				a.FinalBA = m.Digest
			}
		}
		r.outbox[from] = r.outbox[from][:0]
	}
}

// inject stages a message directly (test hook for the Apply path).
func (r *router) inject(m Message) {
	r.outbox[m.From] = append(r.outbox[m.From], m)
}

// deliver applies domain d's staged messages in (From, Seq) order. Runs on
// d's worker goroutine before the window executes.
func (r *router) deliver(d int, inst *core.Instance) {
	box := r.inbox[d]
	sort.Slice(box, func(i, j int) bool {
		if box[i].From != box[j].From {
			return box[i].From < box[j].From
		}
		return box[i].Seq < box[j].Seq
	})
	for _, m := range box {
		if m.Apply != nil {
			m.Apply(inst)
		}
	}
	r.inbox[d] = box[:0]
}

// audits returns the per-pair audit totals in canonical order.
func (r *router) audits() []PairAudit {
	out := make([]PairAudit, 0, len(r.audit))
	for _, a := range r.audit {
		out = append(out, *a)
	}
	sortAudits(out)
	return out
}
