// Package shard runs one scenario as a set of per-interference-domain
// engine instances executing in parallel — the multi-core path for
// campus-scale topologies whose conflict graphs decompose into weakly
// coupled clusters (internal/topo.PartitionDomains).
//
// Execution model: every domain gets its own sim.Kernel + engine instance
// (core.NewInstance on the extracted subnetwork). Domains with no
// cross-domain coupling run to the global deadline with no synchronization
// at all. When the partition severed conflict edges, the coupled domains
// exchange per-window coupling-audit digests over deterministic per-pair
// ordered channels, and every domain advances in conservative-lookahead
// windows: the lookahead is the wired-backbone latency floor (the central
// server cannot influence a remote AP faster than the backbone's
// N(285 µs, σ 22 µs) jitter distribution can deliver a coordination
// message), so a window never needs input that a peer has not already
// produced.
//
// Determinism contract: domains, per-domain seeds, window boundaries,
// message routing order and every merge step depend only on the topology
// and the scenario — never on the worker count or OS scheduling. The
// merged trace, metrics snapshot and Result are byte-identical at any
// Workers value, pinned by TestShardCountDeterminism.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// LookaheadFloor returns the conservative window width derived from the
// wired-backbone jitter floor: the earliest instant a cross-domain
// coordination effect can land is one backbone traversal at the fast tail
// of the latency distribution, mean − 4σ of DOMINO's wired model
// (285 µs − 4·22 µs = 197 µs). Any window at most this wide is safe.
func LookaheadFloor() sim.Time {
	c := domino.DefaultConfig()
	return c.WiredLatencyMean - 4*c.WiredLatencyStd
}

// spanBaseShift namespaces per-domain span ids: domain d allocates ids
// above d<<40, far beyond any single run's span count.
const spanBaseShift = 40

// Options tunes a sharded run.
type Options struct {
	// Workers is the shard count — worker goroutines domains are scheduled
	// onto (≤ 0: all cores). Output is independent of this value.
	Workers int
	// CutDBm is the partition's RSS-threshold cut (0: topo.DefaultCutDBm;
	// use topo.NoCutDBm to keep every conflict edge).
	CutDBm float64
	// Lookahead overrides the synchronization window width (0:
	// LookaheadFloor()). Ignored when the partition has no cross-domain
	// coupling — uncoupled domains need no windows at all.
	Lookahead sim.Time
	// StepGranule bounds how much simulated time one Steppable.StepWindow
	// call may advance an *uncoupled* partition (0: the whole run in one
	// step, the barrier-free fast path Run uses). The run-lifecycle layer
	// sets it so checkpoint/pause boundaries exist even when no
	// synchronization windows do; kernels step via RunBefore, so any
	// granule produces byte-identical output. Coupled partitions ignore it
	// — their lookahead windows are already fine-grained boundaries.
	StepGranule sim.Time
}

// Report describes how a sharded run executed: the partition, the window
// synchronization work, and the per-domain results.
type Report struct {
	Partition *topo.Partition
	// Workers is the resolved worker count the domains were scheduled on.
	Workers int
	// Windows is the number of lookahead windows the coupled run stepped
	// through (0 for a partition-free run).
	Windows int
	// Messages is the total cross-shard digests exchanged.
	Messages int
	// Audits holds per-channel coupling audit totals, in canonical pair
	// order.
	Audits []PairAudit
	// PerDomain holds each domain's local Result (local link ids).
	PerDomain []core.Result
}

// Run executes the scenario sharded by interference domain and returns the
// merged Result plus the execution Report. The scenario's Links must be nil
// (links are rebuilt per domain from the Downlink/Uplink flags), Trace and
// Live are unsupported in sharded mode. It is the one-shot wrapper around
// the steppable decomposition: New, StepWindow until done, Finish.
func Run(s core.Scenario, opt Options) (core.Result, *Report, error) {
	st, err := New(s, opt)
	if err != nil {
		return core.Result{}, nil, err
	}
	for !st.StepWindow() {
	}
	return st.Finish()
}

// Steppable is a sharded run decomposed into explicit window steps — the
// form the run-lifecycle layer (internal/run) drives so a campus-scale run
// can pause, checkpoint and resume between windows instead of executing in
// one opaque call. Construct with New, call StepWindow until it reports
// done, then Finish exactly once. Run is the loop-it-all wrapper and stays
// byte-identical to the pre-steppable implementation.
type Steppable struct {
	s         core.Scenario
	opt       Options
	lookahead sim.Time
	links     []*topo.Link
	p         *topo.Partition
	insts     []*core.Instance
	tracers   []*remapTracer
	metrics   []*obs.Metrics
	router    *router
	rep       *Report

	// nextH is the horizon the next step advances to; steps counts
	// completed StepWindow calls (the checkpoint replay coordinate).
	nextH sim.Time
	steps int
	done  bool
}

// New builds the per-domain instances, the cross-shard router and the
// report skeleton — everything Run did before its execute loop.
func New(s core.Scenario, opt Options) (*Steppable, error) {
	if s.Net == nil {
		return nil, fmt.Errorf("shard: Scenario.Net is nil")
	}
	if s.Links != nil {
		return nil, fmt.Errorf("shard: custom link sets are not shardable; use Downlink/Uplink flags")
	}
	if s.Trace != nil {
		return nil, fmt.Errorf("shard: Scenario.Trace (domino event microscope) is single-engine only")
	}
	if s.Live != nil {
		return nil, fmt.Errorf("shard: live metrics publishing is single-engine only")
	}
	if err := s.Net.Validate(); err != nil {
		return nil, fmt.Errorf("shard: invalid network: %w", err)
	}
	// Normalize exactly like core.NewInstance so window math and merged
	// rates use the same values the instances will.
	if s.PacketBytes == 0 {
		s.PacketBytes = 512
	}
	if s.Rate == 0 {
		s.Rate = phy.Rate12
	}
	if s.Duration == 0 {
		s.Duration = 10 * sim.Second
	}
	cut := opt.CutDBm
	if cut == 0 {
		cut = topo.DefaultCutDBm
	}
	lookahead := opt.Lookahead
	if lookahead <= 0 {
		lookahead = LookaheadFloor()
	}

	links := s.Net.BuildLinks(s.Downlink, s.Uplink)
	pcfg := phy.DefaultConfig()
	if s.PhyConfig != nil {
		pcfg = *s.PhyConfig
	}
	g := topo.NewConflictGraph(s.Net, links, pcfg, s.Rate)
	p := topo.PartitionDomains(g, cut)

	rep := &Report{Partition: p, Workers: parallel.Workers(opt.Workers)}
	nd := len(p.Domains)

	// Per-domain instances. Seeds derive from the domain index only, so a
	// domain's whole event stream is independent of the worker count.
	insts := make([]*core.Instance, nd)
	tracers := make([]*remapTracer, nd)
	metrics := make([]*obs.Metrics, nd)
	for d := 0; d < nd; d++ {
		sub, nodeMap := p.Subnet(d)
		sd := s
		sd.Net = sub
		sd.Seed = parallel.Seed(s.Seed, d, parallel.DefaultStride)
		if s.Tracer != nil {
			tracers[d] = newRemapTracer(d, nodeMap, p.Domains[d].Links)
			sd.Tracer = tracers[d]
		}
		if s.Metrics != nil {
			metrics[d] = obs.NewMetrics()
			sd.Metrics = metrics[d]
		}
		if sd.Tracer != nil || sd.Metrics != nil {
			nm, di := nodeMap, d
			sd.ObsSetup = func(r *obs.Run) {
				r.SetSpanBase(int64(di+1) << spanBaseShift)
				r.SetNodeMapper(func(local int) int { return int(nm[local]) })
			}
		}
		inst, err := core.NewInstance(sd)
		if err != nil {
			return nil, fmt.Errorf("shard: domain %d: %w", d, err)
		}
		insts[d] = inst
	}

	// Cross-shard channels: one ordered mailbox pair per coupled domain
	// pair, plus each domain's routing fan-out.
	router := newRouter(p)

	st := &Steppable{
		s: s, opt: opt, lookahead: lookahead, links: links, p: p,
		insts: insts, tracers: tracers, metrics: metrics,
		router: router, rep: rep,
	}
	// The first horizon: coupled partitions step conservative-lookahead
	// windows; uncoupled ones leap by the step granule (or the whole run).
	if router.pairs() > 0 {
		st.nextH = lookahead
	} else if opt.StepGranule > 0 {
		st.nextH = opt.StepGranule
	} else {
		st.nextH = s.Duration
	}
	return st, nil
}

// Steps returns the number of completed StepWindow calls — the replay
// coordinate a checkpoint records.
func (st *Steppable) Steps() int { return st.steps }

// Instances exposes the per-domain cores in domain-index order so the
// run-lifecycle layer can audit kernel and engine state at a window
// boundary. Callers must not step them directly.
func (st *Steppable) Instances() []*core.Instance { return st.insts }

// Messages returns the cross-shard messages routed so far.
func (st *Steppable) Messages() int { return st.router.messages }

// Done reports whether the run has reached its deadline.
func (st *Steppable) Done() bool { return st.done }

// Clock returns the horizon the run has advanced to (0 before any step).
func (st *Steppable) Clock() sim.Time {
	if st.done {
		return st.s.Duration
	}
	if st.steps == 0 {
		return 0
	}
	return st.prevH()
}

// prevH is the horizon the last completed step advanced to.
func (st *Steppable) prevH() sim.Time {
	stride := st.granule()
	h := st.nextH - stride
	if h > st.s.Duration {
		h = st.s.Duration
	}
	return h
}

func (st *Steppable) granule() sim.Time {
	if st.router.pairs() > 0 {
		return st.lookahead
	}
	if st.opt.StepGranule > 0 {
		return st.opt.StepGranule
	}
	return st.s.Duration
}

// StepWindow advances every domain one window and reports whether the run
// is done. Uncoupled partitions run barrier-free — the fast path that makes
// sharding pay — advancing by the step granule per call with no router
// work and no Report.Windows accounting (those count synchronization
// barriers, of which there are none). Coupled partitions execute exactly
// the pre-steppable loop body: deliver staged messages, step to the
// horizon, emit boundary digests, route — so Run's output is byte-identical
// to the original single-loop implementation.
func (st *Steppable) StepWindow() bool {
	if st.done {
		return true
	}
	nd := len(st.p.Domains)
	final := st.nextH >= st.s.Duration
	coupled := st.router.pairs() > 0
	h := st.nextH
	if coupled {
		st.rep.Windows++
	}
	parallel.ForEach(st.opt.Workers, nd, func(d int) {
		if coupled {
			st.router.deliver(d, st.insts[d])
		}
		if final {
			st.insts[d].Step(st.s.Duration)
		} else {
			st.insts[d].StepBefore(h)
			if coupled {
				st.router.emit(d, st.insts[d], h)
			}
		}
	})
	if coupled && !final {
		st.router.route() // single-threaded barrier phase
	}
	st.steps++
	st.nextH += st.granule()
	if final {
		st.done = true
	}
	return st.done
}

// Finish merges the per-domain results into the campus-wide Result and
// emits the merged trace. Call exactly once, after StepWindow reports done.
func (st *Steppable) Finish() (core.Result, *Report, error) {
	if !st.done {
		return core.Result{}, nil, fmt.Errorf("shard: Finish before the run reached its deadline (clock %v of %v)", st.Clock(), st.s.Duration)
	}
	s, rep := st.s, st.rep
	rep.Messages = st.router.messages
	rep.Audits = st.router.audits()

	// Merge. Every step below iterates domains in index order, so the
	// merged result is a pure function of the partition.
	for d := 0; d < len(st.p.Domains); d++ {
		rep.PerDomain = append(rep.PerDomain, st.insts[d].Finish())
	}
	res := mergeResults(s, st.links, st.p, rep, st.metrics)
	if s.Tracer != nil {
		emitMerged(s, st.p, rep, st.tracers, res)
	}
	return res, rep, nil
}

// mergeResults folds the per-domain results into one campus-wide Result in
// the global link index space.
func mergeResults(s core.Scenario, links []*topo.Link, p *topo.Partition, rep *Report, metrics []*obs.Metrics) core.Result {
	res := core.Result{Links: links, DataLinkID: map[int]bool{}}
	coll := stats.NewCollector(len(links), s.Warmup)
	for d, dr := range rep.PerDomain {
		linkMap := p.Domains[d].Links
		coll.MergeMapped(dr.Collector, func(local int) int { return linkMap[local] })
		for local := range dr.DataLinkID {
			res.DataLinkID[linkMap[local]] = true
		}
		for _, l := range dr.SkippedLinks {
			res.SkippedLinks = append(res.SkippedLinks, links[linkMap[l.ID]])
		}
	}
	res.Collector = coll
	res.PerLinkMbps = coll.PerLinkMbps(s.Duration)
	res.AggregateMbps = coll.AggregateMbps(s.Duration)
	res.MeanDelay = coll.MeanDelay()
	res.MeanDelayPerLink = coll.MeanDelayPerLink()
	var dataRates []float64
	for id := range res.PerLinkMbps {
		if res.DataLinkID[id] {
			res.DataMbps += res.PerLinkMbps[id]
			dataRates = append(dataRates, res.PerLinkMbps[id])
		}
	}
	res.Fairness = stats.JainIndex(dataRates)

	if s.Metrics != nil {
		for d := range metrics {
			s.Metrics.Merge(metrics[d])
		}
		s.Metrics.Counter("shard.domains").Add(int64(len(p.Domains)))
		s.Metrics.Counter("shard.windows").Add(int64(rep.Windows))
		s.Metrics.Counter("shard.messages").Add(int64(rep.Messages))
		s.Metrics.Counter("shard.cut_edges").Add(int64(p.Stats.CutEdges))
		s.Metrics.Counter("shard.cross_link_pairs").Add(int64(p.Stats.CrossLinkPairs))
		res.Snapshot = s.Metrics.Snapshot()
	}
	return res
}

// emitMerged streams the merged trace: a global run-open record, the
// k-way-merged per-domain streams, the merged-registry histogram summaries
// (mirroring obs.Run.Finish), and the global run-close record. The merge
// key is (timestamp, domain, stream order) — independent of Workers.
func emitMerged(s core.Scenario, p *topo.Partition, rep *Report, tracers []*remapTracer, res core.Result) {
	start := obs.Rec(0, obs.KindRunStart)
	start.Value = s.Seed
	start.Aux = s.SchemeName
	if start.Aux == "" {
		start.Aux = s.Scheme.String()
	}
	s.Tracer.Emit(start)

	mergeStreams(tracers, s.Tracer)

	var collisions int64
	for _, dr := range rep.PerDomain {
		if dr.Breakdown != nil {
			collisions += dr.Breakdown.Collisions
		}
	}
	if s.Metrics != nil {
		for _, mv := range res.Snapshot {
			if mv.Kind != "loghist" {
				continue
			}
			rec := obs.Rec(s.Duration, obs.KindMetric)
			rec.Aux = mv.Name
			rec.Value = int64(mv.Value)
			rec.Extra = int64(mv.P99)
			s.Tracer.Emit(rec)
		}
	}
	end := obs.Rec(s.Duration, obs.KindRunEnd)
	end.Value = collisions
	s.Tracer.Emit(end)
}

// mergeStreams k-way merges the per-domain record streams by
// (At, domain, stream position) into out. Streams are individually
// time-ordered (each comes from one single-threaded event loop), so a heap
// over the stream heads yields a total deterministic order.
func mergeStreams(tracers []*remapTracer, out obs.Tracer) {
	type head struct {
		domain int
		pos    int
	}
	heads := make([]head, 0, len(tracers))
	for d, tr := range tracers {
		if tr != nil && len(tr.recs) > 0 {
			heads = append(heads, head{domain: d})
		}
	}
	less := func(a, b head) bool {
		ra, rb := tracers[a.domain].recs[a.pos], tracers[b.domain].recs[b.pos]
		if ra.At != rb.At {
			return ra.At < rb.At
		}
		return a.domain < b.domain
	}
	for len(heads) > 0 {
		best := 0
		for i := 1; i < len(heads); i++ {
			if less(heads[i], heads[best]) {
				best = i
			}
		}
		h := heads[best]
		out.Emit(tracers[h.domain].recs[h.pos])
		h.pos++
		if h.pos < len(tracers[h.domain].recs) {
			heads[best] = h
		} else {
			heads = append(heads[:best], heads[best+1:]...)
		}
	}
}

// sortAudits is a tiny helper keeping Report.Audits canonical.
func sortAudits(a []PairAudit) {
	sort.Slice(a, func(i, j int) bool {
		if a[i].A != a[j].A {
			return a[i].A < a[j].A
		}
		return a[i].B < a[j].B
	})
}
