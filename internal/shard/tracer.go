package shard

import (
	"repro/internal/obs"
	"repro/internal/phy"
)

// remapTracer buffers one domain's trace records with local ids rewritten
// to the global id space and the shard tag set. Per-domain run framing
// (run_start / run_end / metric summaries) is dropped — the merged stream
// emits one global set of those instead.
type remapTracer struct {
	domain  int          // domain index (Shard tag is domain+1)
	nodeMap []phy.NodeID // local node id → global
	linkMap []int        // local link id → global
	recs    []obs.Record
}

func newRemapTracer(domain int, nodeMap []phy.NodeID, linkMap []int) *remapTracer {
	return &remapTracer{domain: domain, nodeMap: nodeMap, linkMap: linkMap}
}

// Emit implements obs.Tracer. It runs inside the domain's event loop on the
// domain's worker goroutine; the buffer is domain-owned.
func (t *remapTracer) Emit(r obs.Record) {
	switch r.Kind {
	case obs.KindRunStart, obs.KindRunEnd, obs.KindMetric:
		return
	}
	if r.Node >= 0 {
		r.Node = int(t.nodeMap[r.Node])
	}
	if r.Link >= 0 {
		r.Link = t.linkMap[r.Link]
	}
	r.Shard = t.domain + 1
	t.recs = append(t.recs, r)
}
