package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

// cellsNet builds k disjoint AP cells (clientsPerAP clients each) with
// in-cell RSS inCell (AP↔client), inPeer (client↔client) and cross-cell RSS
// cross everywhere. Node ids are domain-contiguous: AP, its clients, next
// AP, …
func cellsNet(k, clientsPerAP int, inCell, inPeer, cross float64) *topo.Network {
	n := k * (1 + clientsPerAP)
	net := &topo.Network{
		RSS:  make([][]float64, n),
		IsAP: make([]bool, n),
		APOf: make([]phy.NodeID, n),
	}
	cellOf := make([]int, n)
	for c := 0; c < k; c++ {
		base := c * (1 + clientsPerAP)
		net.IsAP[base] = true
		net.APs = append(net.APs, phy.NodeID(base))
		net.APOf[base] = phy.NodeID(base)
		cellOf[base] = c
		for i := 1; i <= clientsPerAP; i++ {
			net.APOf[base+i] = phy.NodeID(base)
			cellOf[base+i] = c
		}
	}
	for i := 0; i < n; i++ {
		net.RSS[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				net.RSS[i][j] = 0
			case cellOf[i] != cellOf[j]:
				net.RSS[i][j] = cross
			case net.IsAP[i] || net.IsAP[j]:
				net.RSS[i][j] = inCell
			default:
				net.RSS[i][j] = inPeer
			}
		}
	}
	return net
}

// disjointNet: cells with no cross-cell coupling at all — the partition is
// exact (no severed edges), so sharding approximates nothing.
func disjointNet(k, clientsPerAP int) *topo.Network {
	return cellsNet(k, clientsPerAP, -55, -60, topo.UnmeasuredDBm)
}

// coupledNet: two cells with weak signals (−80 dBm) and −91 dBm cross-cell
// coupling. The coupling degrades cross-cell SINR below Rate12's threshold
// plus margin (conflict edges exist) but sits far under DefaultCutDBm, so
// the partition severs it: 2 domains, ≥1 cut edge, 1 cross-domain pair —
// the windowed synchronization path.
func coupledNet() *topo.Network {
	return cellsNet(2, 2, -80, -85, -91)
}

func baseScenario(net *topo.Network) core.Scenario {
	return core.Scenario{
		Net:      net,
		Downlink: true,
		Uplink:   true,
		Scheme:   core.DOMINO,
		Seed:     7,
		Duration: 20 * sim.Millisecond,
	}
}

// encode renders records as NDJSON lines, optionally clearing the shard tag
// so sharded and single-engine records align byte for byte.
func encode(recs []obs.Record, stripShard bool) []string {
	out := make([]string, 0, len(recs))
	for _, r := range recs {
		if stripShard {
			r.Shard = 0
		}
		out = append(out, string(obs.AppendRecord(nil, r)))
	}
	return out
}

// TestShardTransparencySingleDomain pins the tentpole's byte-identity
// claim: on a partition-free topology (everything lands in one domain, so
// domain 0's derived seed equals the scenario seed) the whole sharding
// apparatus — instance wrapping, tracer remap, framing filter, merged
// emission, metrics merge — is byte-transparent: the full trace, including
// kernel samples, is identical to the single-engine run's after clearing
// the shard tag.
func TestShardTransparencySingleDomain(t *testing.T) {
	net := cellsNet(1, 4, -55, -60, topo.UnmeasuredDBm)

	single := baseScenario(net)
	var singleBuf obs.Buffer
	single.Tracer = &singleBuf
	single.Metrics = obs.NewMetrics()
	single.NoSpans = true
	sres, err := core.RunScenario(single)
	if err != nil {
		t.Fatal(err)
	}

	sharded := baseScenario(net)
	var shardBuf obs.Buffer
	sharded.Tracer = &shardBuf
	sharded.Metrics = obs.NewMetrics()
	sharded.NoSpans = true
	dres, rep, err := Run(sharded, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Partition.Domains); got != 1 {
		t.Fatalf("domains = %d, want 1", got)
	}

	sl := encode(singleBuf.Records(), true)
	dl := encode(shardBuf.Records(), true)
	if len(sl) != len(dl) {
		t.Fatalf("record counts differ: single %d sharded %d", len(sl), len(dl))
	}
	for i := range sl {
		if sl[i] != dl[i] {
			t.Fatalf("trace diverges at record %d:\n  single:  %s\n  sharded: %s", i, sl[i], dl[i])
		}
	}
	for _, r := range shardBuf.Records() {
		if r.Kind != obs.KindRunStart && r.Kind != obs.KindRunEnd && r.Kind != obs.KindMetric && r.Shard != 1 {
			t.Fatalf("record missing shard tag: %+v", r)
		}
	}
	if sres.AggregateMbps != dres.AggregateMbps || sres.MeanDelay != dres.MeanDelay ||
		sres.Fairness != dres.Fairness || sres.DataMbps != dres.DataMbps {
		t.Errorf("results differ: single %+v sharded %+v", sres.AggregateMbps, dres.AggregateMbps)
	}
}

// TestDifferentialMultiDomain checks the multi-domain equivalence level:
// disjoint cells produce the same aggregate capacity, delivery count and
// collision count as the single engine. Per-link schedules legitimately
// differ — the single engine's scheduler shares global tie-breaking state
// across components — so equality is asserted at the aggregate level the
// partition actually preserves.
func TestDifferentialMultiDomain(t *testing.T) {
	net := disjointNet(4, 2)

	single := baseScenario(net)
	singleMetrics := obs.NewMetrics()
	single.Metrics = singleMetrics
	sres, err := core.RunScenario(single)
	if err != nil {
		t.Fatal(err)
	}

	sharded := baseScenario(net)
	shardMetrics := obs.NewMetrics()
	sharded.Metrics = shardMetrics
	dres, rep, err := Run(sharded, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Partition.Domains); got != 4 {
		t.Fatalf("domains = %d, want 4", got)
	}
	if rep.Partition.Stats.CutEdges != 0 || rep.Windows != 0 {
		t.Fatalf("disjoint net must run barrier-free: %+v windows=%d",
			rep.Partition.Stats, rep.Windows)
	}
	if sres.AggregateMbps != dres.AggregateMbps || sres.DataMbps != dres.DataMbps {
		t.Errorf("aggregate: single (%v, %v) sharded (%v, %v)",
			sres.AggregateMbps, sres.DataMbps, dres.AggregateMbps, dres.DataMbps)
	}
	if len(sres.PerLinkMbps) != len(dres.PerLinkMbps) {
		t.Fatalf("link counts differ: %d vs %d", len(sres.PerLinkMbps), len(dres.PerLinkMbps))
	}
	for _, name := range []string{"mac.delivered", "phy.collisions"} {
		sv, _ := singleMetrics.Snapshot().Get(name)
		dv, _ := shardMetrics.Snapshot().Get(name)
		if sv.Value != dv.Value {
			t.Errorf("%s: single %v sharded %v", name, sv.Value, dv.Value)
		}
	}
	if v, ok := shardMetrics.Snapshot().Get("shard.domains"); !ok || v.Value != 4 {
		t.Errorf("shard.domains = %v, want 4", v.Value)
	}
}

// TestShardCountDeterminism pins the worker-count independence contract on
// the coupled (windowed, message-passing) path: the raw merged trace bytes
// and the Result are identical at 1, 2 and 4 workers.
func TestShardCountDeterminism(t *testing.T) {
	type run struct {
		lines []string
		res   core.Result
		rep   *Report
	}
	do := func(workers int) run {
		s := baseScenario(coupledNet())
		var buf obs.Buffer
		s.Tracer = &buf
		s.Metrics = obs.NewMetrics()
		res, rep, err := Run(s, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return run{lines: encode(buf.Records(), false), res: res, rep: rep}
	}
	base := do(1)
	if got := len(base.rep.Partition.Domains); got != 2 {
		t.Fatalf("domains = %d, want 2", got)
	}
	if base.rep.Partition.Stats.CutEdges == 0 {
		t.Fatal("coupled net produced no cut edges; windowed path not exercised")
	}
	if base.rep.Windows == 0 {
		t.Fatal("no synchronization windows ran")
	}
	if base.rep.Messages == 0 {
		t.Fatal("no cross-shard digests routed")
	}
	if len(base.rep.Audits) != 1 || base.rep.Audits[0].A != 0 || base.rep.Audits[0].B != 1 {
		t.Fatalf("audits = %+v, want exactly pair (0,1)", base.rep.Audits)
	}
	for _, workers := range []int{2, 4} {
		r := do(workers)
		if len(r.lines) != len(base.lines) {
			t.Fatalf("workers=%d: record count %d, want %d", workers, len(r.lines), len(base.lines))
		}
		for i := range r.lines {
			if r.lines[i] != base.lines[i] {
				t.Fatalf("workers=%d: trace diverges at record %d:\n  w1: %s\n  w%d: %s",
					workers, i, base.lines[i], workers, r.lines[i])
			}
		}
		if r.res.AggregateMbps != base.res.AggregateMbps || r.res.MeanDelay != base.res.MeanDelay {
			t.Errorf("workers=%d: result differs", workers)
		}
		if r.rep.Messages != base.rep.Messages || r.rep.Windows != base.rep.Windows {
			t.Errorf("workers=%d: windows/messages differ: (%d,%d) vs (%d,%d)", workers,
				r.rep.Windows, r.rep.Messages, base.rep.Windows, base.rep.Messages)
		}
	}
}

// TestCrossShardAudit checks that the windowed run carries monotone
// coupling digests both directions over the severed pair.
func TestCrossShardAudit(t *testing.T) {
	s := baseScenario(coupledNet())
	_, rep, err := Run(s, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Audits) != 1 {
		t.Fatalf("audits = %+v", rep.Audits)
	}
	a := rep.Audits[0]
	// Both directions emit once per routed window.
	if want := 2 * (rep.Windows - 1); a.Messages != want {
		t.Errorf("messages = %d, want %d", a.Messages, want)
	}
	if a.FinalAB <= 0 || a.FinalBA <= 0 {
		t.Errorf("final digests not positive: %+v (saturated links must deliver)", a)
	}
}

// TestMessageInjection exercises the Apply path and the (From, Seq)
// delivery order through the router directly.
func TestMessageInjection(t *testing.T) {
	net := coupledNet()
	links := net.BuildLinks(true, true)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	p := topo.PartitionDomains(g, topo.DefaultCutDBm)
	if len(p.Domains) != 2 {
		t.Fatalf("domains = %d", len(p.Domains))
	}
	r := newRouter(p)

	var order []int
	mk := func(from, seq, tag int) Message {
		return Message{From: from, To: 1, Seq: seq,
			Apply: func(*core.Instance) { order = append(order, tag) }}
	}
	// Inject out of order across one source channel; delivery must sort
	// by (From, Seq).
	r.inject(mk(0, 1, 2))
	r.inject(mk(0, 0, 1))
	r.route()
	// A second round's message queues behind the first delivery.
	r.inject(mk(0, 2, 3))
	r.deliver(1, nil)
	r.route()
	r.deliver(1, nil)
	want := []int{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("applied %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("applied %v, want %v", order, want)
		}
	}
	if r.messages != 3 {
		t.Errorf("messages = %d, want 3", r.messages)
	}
}

// TestRunRejectsUnsupported pins the error contract.
func TestRunRejectsUnsupported(t *testing.T) {
	s := baseScenario(disjointNet(2, 1))
	s.Links = s.Net.BuildLinks(true, false)
	if _, _, err := Run(s, Options{}); err == nil {
		t.Error("custom Links accepted")
	}
	if _, _, err := Run(core.Scenario{}, Options{}); err == nil {
		t.Error("nil Net accepted")
	}
}

// TestSteppableMatchesRun pins that driving a run through the explicit
// New/StepWindow/Finish lifecycle — the form internal/run checkpoints
// between windows — produces byte-identical traces and an identical report
// to the loop-it-all Run wrapper, on both the coupled (windowed) and
// uncoupled (barrier-free) paths.
func TestSteppableMatchesRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		net  *topo.Network
	}{
		{"coupled", coupledNet()},
		{"disjoint", disjointNet(3, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := baseScenario(tc.net)
			var refBuf obs.Buffer
			ref.Tracer = &refBuf
			ref.Metrics = obs.NewMetrics()
			_, refRep, err := Run(ref, Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}

			stepped := baseScenario(tc.net)
			var stepBuf obs.Buffer
			stepped.Tracer = &stepBuf
			stepped.Metrics = obs.NewMetrics()
			st, err := New(stepped, Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			steps := 0
			for !st.StepWindow() {
				steps++
				if c := st.Clock(); c <= 0 || c >= stepped.Duration {
					t.Fatalf("mid-run clock %v outside (0, %v)", c, stepped.Duration)
				}
			}
			if !st.Done() || st.Clock() != stepped.Duration {
				t.Fatalf("done=%v clock=%v after final step", st.Done(), st.Clock())
			}
			_, stepRep, err := st.Finish()
			if err != nil {
				t.Fatal(err)
			}

			if stepRep.Windows != refRep.Windows || stepRep.Messages != refRep.Messages {
				t.Fatalf("report differs: windows %d/%d messages %d/%d",
					stepRep.Windows, refRep.Windows, stepRep.Messages, refRep.Messages)
			}
			rl, sl := encode(refBuf.Records(), false), encode(stepBuf.Records(), false)
			if len(rl) != len(sl) {
				t.Fatalf("record counts differ: run %d steppable %d", len(rl), len(sl))
			}
			for i := range rl {
				if rl[i] != sl[i] {
					t.Fatalf("trace diverges at record %d:\n  run:       %s\n  steppable: %s", i, rl[i], sl[i])
				}
			}
		})
	}
}

// TestStepGranuleIdentity pins that slicing an uncoupled run into bounded
// step granules — the knob that gives checkpoints a finite window length on
// barrier-free topologies — leaves the trace, the result and the report
// (Windows stays 0: granules are not synchronization barriers) exactly as
// the single-leap run produces them.
func TestStepGranuleIdentity(t *testing.T) {
	net := disjointNet(3, 2)

	whole := baseScenario(net)
	var wholeBuf obs.Buffer
	whole.Tracer = &wholeBuf
	whole.Metrics = obs.NewMetrics()
	wres, wrep, err := Run(whole, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	sliced := baseScenario(net)
	var slicedBuf obs.Buffer
	sliced.Tracer = &slicedBuf
	sliced.Metrics = obs.NewMetrics()
	sres, srep, err := Run(sliced, Options{Workers: 2, StepGranule: 3 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	if srep.Windows != 0 {
		t.Fatalf("granule run counted %d windows; granules are not barriers", srep.Windows)
	}
	if wrep.Windows != 0 {
		t.Fatalf("whole run counted %d windows on a disjoint net", wrep.Windows)
	}
	if wres.AggregateMbps != sres.AggregateMbps || wres.MeanDelay != sres.MeanDelay {
		t.Fatalf("results differ: whole %+v sliced %+v", wres, sres)
	}
	wl, sl := encode(wholeBuf.Records(), false), encode(slicedBuf.Records(), false)
	if len(wl) != len(sl) {
		t.Fatalf("record counts differ: whole %d sliced %d", len(wl), len(sl))
	}
	for i := range wl {
		if wl[i] != sl[i] {
			t.Fatalf("trace diverges at record %d:\n  whole:  %s\n  sliced: %s", i, wl[i], sl[i])
		}
	}
}
