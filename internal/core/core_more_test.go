package core

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

func TestRunLinksOverride(t *testing.T) {
	net := topo.Figure1()
	links := topo.Figure1Links(net)
	res := Run(Scenario{
		Net: net, Links: links, Scheme: DCF, Seed: 1,
		Duration: sim.Second, Traffic: Saturated,
	})
	if len(res.Links) != 3 {
		t.Fatalf("links = %d, want the 3 Fig 1 flows", len(res.Links))
	}
}

func TestRunPhyConfigOverride(t *testing.T) {
	// Raising the noise floor to -70 dBm kills the -60 dBm links' margin at
	// 12 Mbps (SNR 10 < 7+... still decodes) — use -58: SNR ( -60 - -58 )
	// negative: nothing decodes and throughput collapses.
	cfg := phy.DefaultConfig()
	cfg.NoiseDBm = -58
	cfg.DeliverFloorDBm = -58
	res := Run(Scenario{
		Net: topo.TwoPairs(topo.ExposedTerminals), Downlink: true,
		Scheme: DCF, Seed: 1, Duration: sim.Second, Traffic: Saturated,
		PhyConfig: &cfg,
	})
	if res.AggregateMbps > 0.1 {
		t.Errorf("deaf PHY still delivered %.2f Mbps", res.AggregateMbps)
	}
}

func TestRunRateOverride(t *testing.T) {
	run := func(rate phy.Rate) float64 {
		return Run(Scenario{
			Net: topo.TwoPairs(topo.ExposedTerminals), Downlink: true,
			Scheme: Omniscient, Seed: 1, Duration: sim.Second,
			Traffic: Saturated, Rate: rate,
		}).AggregateMbps
	}
	if r6, r24 := run(phy.Rate6), run(phy.Rate24); r24 < r6*1.5 {
		t.Errorf("24 Mbps (%f) should far outrun 6 Mbps (%f)", r24, r6)
	}
}

func TestRunDefaultDuration(t *testing.T) {
	res := Run(Scenario{
		Net: topo.TwoPairs(topo.ExposedTerminals), Downlink: true,
		Scheme: Omniscient, Seed: 1, Traffic: Saturated,
	})
	// Default duration is 10 s; a saturated exposed pair delivers plenty.
	if res.AggregateMbps < 15 {
		t.Errorf("default-duration run delivered %.2f Mbps", res.AggregateMbps)
	}
}

func TestRunUnknownSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown scheme did not panic")
		}
	}()
	Run(Scenario{
		Net: topo.TwoPairs(topo.ExposedTerminals), Downlink: true,
		Scheme: Scheme(99), Duration: sim.Millisecond, Traffic: Saturated,
	})
}
