package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
)

// ExampleRun simulates a hidden-terminal pair under DOMINO and reports how
// the channel was shared.
func ExampleRun() {
	res := core.Run(core.Scenario{
		Net:      topo.TwoPairs(topo.HiddenTerminals),
		Downlink: true,
		Scheme:   core.DOMINO,
		Traffic:  core.Saturated,
		Duration: 2 * sim.Second,
		Seed:     7,
	})
	fmt.Printf("links: %d\n", len(res.Links))
	fmt.Printf("fair share: %v\n", res.Fairness > 0.98)
	fmt.Printf("no collisions: %v\n", res.Domino.AckMisses == 0)
	// Output:
	// links: 2
	// fair share: true
	// no collisions: true
}
