package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/domino"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/spec"
)

// BuildScenario validates a declarative spec and resolves it into a
// runnable Scenario: topology built, links resolved, traffic mapped, PHY
// overrides applied, and scheme_config staged as the generic tune hook.
// Callers may still adjust the returned Scenario (attach tracers, override
// the metrics sink) before RunScenario.
func BuildScenario(sp spec.Spec) (Scenario, error) {
	if err := sp.Validate(); err != nil {
		return Scenario{}, err
	}
	net, err := sp.Topology.Build(sp.Seed)
	if err != nil {
		return Scenario{}, fmt.Errorf("spec: topology: %w", err)
	}
	links, err := sp.BuildLinks(net)
	if err != nil {
		return Scenario{}, err
	}
	var kind TrafficKind
	switch sp.TrafficKind() {
	case "saturated":
		kind = Saturated
	case "udp":
		kind = UDPCBR
	case "tcp":
		kind = TCP
	default:
		return Scenario{}, fmt.Errorf("spec: unknown traffic kind %q", sp.Traffic.Kind)
	}
	sc := Scenario{
		Net:           net,
		Links:         links,
		Downlink:      sp.DownlinkEnabled(),
		Uplink:        sp.UplinkEnabled(),
		SchemeName:    sp.Scheme,
		Seed:          sp.Seed,
		Duration:      sp.Duration.Time(),
		Warmup:        sp.Warmup.Time(),
		Traffic:       kind,
		DownMbps:      sp.Traffic.DownMbps,
		UpMbps:        sp.Traffic.UpMbps,
		PacketBytes:   sp.PacketBytes,
		Rate:          phy.Rate(sp.RateMbps),
		MisalignSlots: sp.MisalignSlots,
	}
	if sp.Phy != nil {
		pcfg := phy.DefaultConfig()
		sp.Phy.Apply(&pcfg)
		sc.PhyConfig = &pcfg
	}
	if len(sp.SchemeConfig) > 0 {
		raw := sp.SchemeConfig
		sc.Tune = func(cfg any) error {
			if err := json.Unmarshal(raw, cfg); err != nil {
				return fmt.Errorf("scheme_config does not match %T: %w", cfg, err)
			}
			return nil
		}
	}
	if sp.Obs.Metrics {
		sc.Metrics = obs.NewMetrics()
	}
	sc.NoSpans = sp.Obs.NoSpans
	if sp.Obs.ConvertTrace {
		sc.TuneDomino = func(c *domino.Config) { c.ConvertTrace = true }
	}
	return sc, nil
}

// RunE executes a declarative spec through the scheme registry. It is the
// error-returning entry point the -spec CLI mode and the example spec files
// run through; spec.Obs.TraceFile is the caller's concern (the CLIs open
// the file and attach the tracer before running).
func RunE(sp spec.Spec) (Result, error) {
	sc, err := BuildScenario(sp)
	if err != nil {
		return Result{}, err
	}
	return RunScenario(sc)
}
