package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

func TestSchemeString(t *testing.T) {
	want := map[Scheme]string{
		DCF: "DCF", CENTAUR: "CENTAUR", DOMINO: "DOMINO",
		Omniscient: "Omniscient", Scheme(42): "Scheme(42)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("%d.String() = %q", int(s), got)
		}
	}
}

func TestRunAllSchemesSaturated(t *testing.T) {
	for _, scheme := range []Scheme{DCF, CENTAUR, DOMINO, Omniscient} {
		res := Run(Scenario{
			Net:      topo.TwoPairs(topo.ExposedTerminals),
			Downlink: true,
			Scheme:   scheme,
			Seed:     1,
			Duration: sim.Second,
			Traffic:  Saturated,
		})
		if res.AggregateMbps < 4 {
			t.Errorf("%v: aggregate %.2f Mbps", scheme, res.AggregateMbps)
		}
		if len(res.PerLinkMbps) != 2 || len(res.Links) != 2 {
			t.Errorf("%v: result shape wrong", scheme)
		}
		if res.Fairness <= 0 || res.Fairness > 1 {
			t.Errorf("%v: fairness %v", scheme, res.Fairness)
		}
	}
}

// TestSchemeOrdering pins the headline comparison on the exposed-pair
// topology: DOMINO and the omniscient bound exploit concurrency; DCF and
// CENTAUR-downlink-only differ but both beat nothing. DOMINO must land close
// to omniscient (paper Fig 2).
func TestSchemeOrdering(t *testing.T) {
	run := func(s Scheme) float64 {
		return Run(Scenario{
			Net:      topo.TwoPairs(topo.ExposedTerminals),
			Downlink: true,
			Scheme:   s,
			Seed:     2,
			Duration: 2 * sim.Second,
			Traffic:  Saturated,
		}).AggregateMbps
	}
	d, c, dom, omni := run(DCF), run(CENTAUR), run(DOMINO), run(Omniscient)
	t.Logf("DCF=%.2f CENTAUR=%.2f DOMINO=%.2f OMNI=%.2f", d, c, dom, omni)
	if dom <= d {
		t.Errorf("DOMINO (%.2f) must beat DCF (%.2f) on exposed links", dom, d)
	}
	if c <= d*0.9 {
		t.Errorf("CENTAUR (%.2f) should not collapse below DCF (%.2f) here", c, d)
	}
	if dom < omni*0.85 {
		t.Errorf("DOMINO (%.2f) should track omniscient (%.2f)", dom, omni)
	}
}

func TestRunUDP(t *testing.T) {
	res := Run(Scenario{
		Net:      topo.TwoPairs(topo.ExposedTerminals),
		Downlink: true,
		Uplink:   true,
		Scheme:   DOMINO,
		Seed:     3,
		Duration: 2 * sim.Second,
		Warmup:   200 * sim.Millisecond,
		Traffic:  UDPCBR,
		DownMbps: 2,
		UpMbps:   1,
	})
	// Offered 2×2 + 2×1 = 6 Mbps, easily carried.
	if res.AggregateMbps < 5.4 || res.AggregateMbps > 6.4 {
		t.Errorf("UDP aggregate = %.2f, want ≈6", res.AggregateMbps)
	}
	if res.MeanDelay > 50*sim.Millisecond {
		t.Errorf("mean delay %v too high for light load", res.MeanDelay)
	}
}

func TestRunTCP(t *testing.T) {
	res := Run(Scenario{
		Net:      topo.TwoPairs(topo.ExposedTerminals),
		Downlink: true,
		Uplink:   true,
		Scheme:   DOMINO,
		Seed:     4,
		Duration: 8 * sim.Second,
		Warmup:   500 * sim.Millisecond,
		Traffic:  TCP,
		DownMbps: 4,
	})
	if len(res.TCPFlows) != 2 {
		t.Fatalf("flows = %d, want 2 (one per pair)", len(res.TCPFlows))
	}
	// Data goodput should approach the 2 × 4 Mbps application limit.
	if res.DataMbps < 7 {
		t.Errorf("TCP data goodput = %.2f Mbps, want ≈8", res.DataMbps)
	}
	for i, f := range res.TCPFlows {
		if f.AckedSegments == 0 {
			t.Errorf("flow %d never delivered", i)
		}
	}
}

func TestRunMisalignProbe(t *testing.T) {
	res := Run(Scenario{
		Net:           topo.Figure7(),
		Downlink:      true,
		Uplink:        true,
		Scheme:        DOMINO,
		Seed:          5,
		Duration:      sim.Second,
		Traffic:       Saturated,
		MisalignSlots: 6,
	})
	if res.Misalign == nil {
		t.Fatal("misalignment probe not armed")
	}
	if res.Misalign.Max(0) == 0 {
		t.Error("no initial misalignment recorded")
	}
}

func TestRunPanicsOnBadScenario(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid network did not panic")
		}
	}()
	n := topo.Figure1()
	n.APOf[1] = 1 // corrupt
	Run(Scenario{Net: n, Downlink: true, Traffic: Saturated, Duration: sim.Millisecond})
}
