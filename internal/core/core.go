// Package core assembles complete experiment scenarios: a topology, a
// channel-access scheme looked up in the pluggable registry
// (internal/scheme), a traffic pattern, and a measurement window — and runs
// them to a Result. It is the high-level API the examples, the experiment
// harness and the CLIs build on; the paper's individual mechanisms live in
// the packages it wires together.
//
// Scenarios come in two forms: the programmatic Scenario struct (Run /
// RunScenario) and the declarative spec.Spec (RunE), which is what the
// -spec CLI mode and the example spec files use. Both run through the same
// registry pipeline, so a scheme registered by any package — including a
// fifth one this package has never heard of — runs identically.
package core

import (
	"fmt"
	"strings"

	"repro/internal/centaur"
	"repro/internal/dcf"
	"repro/internal/domino"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/strict"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Scheme selects the channel-access protocol under test.
type Scheme int

const (
	// DCF is the 802.11 distributed baseline.
	DCF Scheme = iota
	// CENTAUR is the hybrid scheduled-downlink / DCF-uplink baseline.
	CENTAUR
	// DOMINO is the paper's relative-scheduling system.
	DOMINO
	// Omniscient is the perfectly synchronized, perfect-knowledge upper
	// bound of Fig 2.
	Omniscient
)

// String names the scheme as in the paper's figures; the name doubles as
// the registry key.
func (s Scheme) String() string {
	switch s {
	case DCF:
		return "DCF"
	case CENTAUR:
		return "CENTAUR"
	case DOMINO:
		return "DOMINO"
	case Omniscient:
		return "Omniscient"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// TrafficKind selects the workload.
type TrafficKind int

const (
	// Saturated keeps every selected link's queue backlogged.
	Saturated TrafficKind = iota
	// UDPCBR offers constant-bit-rate datagrams.
	UDPCBR
	// TCP runs the Reno model per link, ACKs riding the reverse link.
	TCP
)

// Scenario describes one run.
type Scenario struct {
	// Net is the topology. Links are built from it unless Links is set.
	Net *topo.Network
	// Links overrides the link set (nil: build from Downlink/Uplink flags).
	Links []*topo.Link
	// Downlink/Uplink select which directions exist when Links is nil.
	Downlink, Uplink bool

	Scheme Scheme
	// SchemeName, when non-empty, selects the scheme by registry name
	// instead of the Scheme enum — the hook that lets externally registered
	// schemes run through this package unchanged.
	SchemeName string
	Seed       int64
	// Duration is the simulated time (measurement ends here).
	Duration sim.Time
	// Warmup excludes the initial transient from the statistics.
	Warmup sim.Time

	Traffic TrafficKind
	// DownMbps/UpMbps are offered loads per link for UDPCBR and TCP.
	DownMbps, UpMbps float64
	// PacketBytes is the datagram/segment size (default 512).
	PacketBytes int

	// PhyConfig overrides the medium parameters (zero value: defaults).
	PhyConfig *phy.Config
	// Rate is the PHY data rate (default 12 Mbps).
	Rate phy.Rate

	// Tune hooks mutate scheme configs before the engine is built. The
	// typed hooks fire only when their scheme runs; Tune fires for every
	// scheme and receives the pointer Descriptor.DefaultConfig returned.
	TuneDomino  func(*domino.Config)
	TuneDCF     func(*dcf.Config)
	TuneCentaur func(*centaur.Config)
	Tune        func(cfg any) error

	// MisalignSlots arms DOMINO's misalignment probe (Fig 11).
	MisalignSlots int
	// Trace receives DOMINO engine events (Fig 10 microscope).
	Trace func(domino.TraceEvent)

	// Tracer, when non-nil, receives the run's typed observability records
	// (obs package): kernel samples, PHY activity, scheme slot timelines,
	// queue depths. Metrics, when non-nil, accumulates the run's counters
	// and histograms. Leaving both nil installs no hooks at all — the
	// simulation hot paths pay only their own nil checks.
	Tracer  obs.Tracer
	Metrics *obs.Metrics

	// NoSpans turns off causal span allocation (trace records keep their
	// flat pre-span shape); it only matters when Tracer is set.
	NoSpans bool

	// ObsSetup, when non-nil, adjusts the freshly created obs.Run before
	// any engine wiring and before the run-start record — the hook sharded
	// runs use to install per-domain span bases and node-id mappers. Unused
	// (and never called) when neither Tracer nor Metrics is set.
	ObsSetup func(*obs.Run)

	// Live, when non-nil alongside Metrics, receives decimated metric
	// snapshots during the run (and a final one), for the debug server's
	// /debug/metrics endpoint.
	Live *obs.MetricsPublisher
}

// schemeName resolves the registry key the scenario selects.
func (s Scenario) schemeName() string {
	if s.SchemeName != "" {
		return s.SchemeName
	}
	return s.Scheme.String()
}

// Result carries a run's measurements.
type Result struct {
	Links         []*topo.Link
	PerLinkMbps   []float64
	AggregateMbps float64
	// MeanDelay is the packet-weighted mean delivery delay; MeanDelayPerLink
	// weights links equally (the paper's Fig 12 delay metric).
	MeanDelay        sim.Time
	MeanDelayPerLink sim.Time
	Fairness         float64

	// DataMbps sums goodput over non-TCP-ACK... for TCP runs this is the
	// forward-direction data goodput only.
	DataMbps float64

	// SkippedLinks lists links the traffic layer offered no load to (a
	// UDPCBR direction with rate ≤ 0): the run measured fewer flows than
	// the link set suggests, and callers should say so instead of hiding
	// it. spec.Validate rejects such specs up front.
	SkippedLinks []*topo.Link

	// UnpolledClients lists clients DOMINO's poller could not fit into its
	// layout (more clients on one AP than the poller's MaxClients — the
	// paper's ROP caps at 24): they run but are never polled, so the server
	// only learns their backlog by piggyback. Callers should report them
	// like SkippedLinks instead of hiding the truncation.
	UnpolledClients []phy.NodeID

	// Scheme internals for deeper inspection (nil unless that scheme ran).
	Domino    *domino.Engine
	Dcf       *dcf.Engine
	Centaur   *centaur.Engine
	Omni      *strict.Omniscient
	Collector *stats.Collector
	Misalign  *stats.Misalignment
	TCPFlows  []*traffic.TCPFlow
	// DataLinkID flags the link IDs that carried offered load (data
	// directions; TCP ACK links are excluded). DataMbps and Fairness are
	// computed over exactly these links — exported so result mergers
	// (internal/shard) can recompute the aggregates over a combined link
	// set.
	DataLinkID map[int]bool

	// Breakdown partitions the run's airtime (idle/data/ack/…/overlap sums
	// to Duration exactly); Snapshot freezes the metrics registry. Both are
	// nil unless the scenario set Tracer or Metrics.
	Breakdown *obs.Breakdown
	Snapshot  obs.Snapshot
}

// Run executes the scenario and returns its measurements. It is the
// panic-on-bad-input compatibility wrapper around RunScenario, kept for the
// examples and existing tests; new code should prefer RunScenario or the
// declarative RunE.
func Run(s Scenario) Result {
	res, err := RunScenario(s)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return res
}

// Instance is a fully built, ready-to-run scenario: topology validated,
// engine constructed through the scheme registry, traffic sources and the
// engine's start events primed on the kernel, observability wired. It is
// the decomposition RunScenario always performed, now exported so drivers
// other than "run to the end in one call" exist: the shard runner
// (internal/shard) builds one Instance per interference domain and advances
// them in bounded-horizon windows.
//
// Drive the kernel via Step/StepBefore (or Kernel directly), then call
// Finish exactly once after the clock reaches S.Duration.
type Instance struct {
	// S is the normalized scenario (defaults applied).
	S Scenario
	// Kernel is the instance's event kernel; its clock starts at zero with
	// the engine start and traffic arrival events queued.
	Kernel *sim.Kernel
	// Medium is the PHY channel model bound to Kernel.
	Medium *phy.Medium
	// Graph is the conflict graph, nil when the scheme does not need one.
	Graph *topo.ConflictGraph
	// Engine is the scheme engine under test.
	Engine mac.Engine
	// Obs is the observability run, nil unless Tracer or Metrics was set.
	Obs *obs.Run

	hub      *mac.Hub
	coll     *stats.Collector
	res      Result
	finished bool
}

// RunScenario executes the scenario through the scheme registry and returns
// its measurements, or a descriptive error for invalid input.
func RunScenario(s Scenario) (Result, error) {
	inst, err := NewInstance(s)
	if err != nil {
		if inst != nil {
			return inst.res, err
		}
		return Result{}, err
	}
	inst.Step(inst.S.Duration)
	return inst.Finish(), nil
}

// NewInstance builds a scenario into a runnable Instance. On error the
// returned instance is nil unless construction got far enough to resolve the
// link set (the partial Result RunScenario historically returned alongside
// the error).
func NewInstance(s Scenario) (*Instance, error) {
	if s.Net == nil {
		return nil, fmt.Errorf("invalid network: Scenario.Net is nil")
	}
	if err := s.Net.Validate(); err != nil {
		return nil, fmt.Errorf("invalid network: %w", err)
	}
	if s.PacketBytes == 0 {
		s.PacketBytes = 512
	}
	if s.Rate == 0 {
		s.Rate = phy.Rate12
	}
	if s.Duration == 0 {
		s.Duration = 10 * sim.Second
	}
	d, ok := scheme.Lookup(s.schemeName())
	if !ok {
		return nil, fmt.Errorf("unknown scheme %q (registered: %s)",
			s.schemeName(), strings.Join(scheme.Names(), ", "))
	}
	links := s.Links
	if links == nil {
		links = s.Net.BuildLinks(s.Downlink, s.Uplink)
	}
	pcfg := phy.DefaultConfig()
	if s.PhyConfig != nil {
		pcfg = *s.PhyConfig
	}
	var g *topo.ConflictGraph
	if d.NeedsConflictGraph {
		g = topo.NewConflictGraph(s.Net, links, pcfg, s.Rate)
	}
	k := sim.New(s.Seed)
	medium := phy.NewMedium(k, s.Net.RSS, pcfg)
	hub := &mac.Hub{}

	res := Result{Links: links, DataLinkID: map[int]bool{}}
	inst := &Instance{S: s, Kernel: k, Medium: medium, Graph: g, hub: hub}

	// Observability: one obs.Run spans the kernel, the medium and the MAC
	// outcome stream; engines implementing scheme.Observable add their own
	// typed records below.
	var orun *obs.Run
	if s.Tracer != nil || s.Metrics != nil {
		orun = obs.NewRun(s.Tracer, s.Metrics).BindClock(k.Now)
		if s.NoSpans {
			orun.DisableSpans()
		}
		if s.Live != nil {
			orun.SetPublisher(s.Live)
		}
		if s.ObsSetup != nil {
			s.ObsSetup(orun)
		}
		k.OnEvent(orun.KernelHook())
		medium.SetProbe(orun)
		hub.Add(orun)
		orun.Start(d.Name, s.Seed)
	}

	// The uniform build pipeline every scheme goes through: default config
	// with the generic knobs applied, tuning hooks, Build, obs wiring.
	params := scheme.Params{Rate: s.Rate, PacketBytes: s.PacketBytes, MisalignSlots: s.MisalignSlots}
	cfg := d.DefaultConfig(params)
	switch c := cfg.(type) {
	case *dcf.Config:
		if s.TuneDCF != nil {
			s.TuneDCF(c)
		}
	case *centaur.Config:
		if s.TuneCentaur != nil {
			s.TuneCentaur(c)
		}
	case *domino.Config:
		if s.TuneDomino != nil {
			s.TuneDomino(c)
		}
	}
	if s.Tune != nil {
		if err := s.Tune(cfg); err != nil {
			inst.res = res
			return inst, fmt.Errorf("scheme %s: tune: %w", d.Name, err)
		}
	}
	engine, err := d.Build(scheme.BuildContext{
		Kernel: k, Medium: medium, Net: s.Net, Links: links, Graph: g,
		Events: hub, Params: params,
	}, cfg)
	if err != nil {
		inst.res = res
		return inst, fmt.Errorf("scheme %s: %w", d.Name, err)
	}
	if orun != nil {
		if o, ok := engine.(scheme.Observable); ok {
			o.WireObs(orun)
		}
	}
	if s.Metrics != nil {
		if mo, ok := engine.(scheme.MetricsObservable); ok {
			mo.WireMetrics(s.Metrics)
		}
	}

	// Typed result fields and scheme-specific hooks for the built-in
	// engines; externally registered schemes simply skip this.
	switch e := engine.(type) {
	case *dcf.Engine:
		res.Dcf = e
	case *centaur.Engine:
		res.Centaur = e
	case *domino.Engine:
		if s.Trace != nil {
			e.Trace = s.Trace
		}
		res.Domino = e
		res.Misalign = e.Misalign
		res.UnpolledClients = e.UnpolledClients
	case *strict.Omniscient:
		res.Omni = e
	}

	coll := stats.NewCollector(len(links), s.Warmup)
	hub.Add(coll)
	res.Collector = coll

	// Traffic.
	switch s.Traffic {
	case Saturated:
		for _, l := range links {
			res.DataLinkID[l.ID] = true
			src := traffic.NewSaturated(k, engine, l, s.PacketBytes, 8)
			hub.Add(src)
			src.Start()
		}
	case UDPCBR:
		for _, l := range links {
			rate := s.UpMbps
			if l.Downlink {
				rate = s.DownMbps
			}
			if rate <= 0 {
				res.SkippedLinks = append(res.SkippedLinks, l)
				continue
			}
			res.DataLinkID[l.ID] = true
			traffic.NewUDP(k, engine, l, rate, s.PacketBytes).Start()
		}
	case TCP:
		// One flow per direction per AP-client pair, ACKs on the reverse
		// link. Both directions must exist in the link set.
		byPair := map[[2]phy.NodeID]map[bool]*topo.Link{}
		for _, l := range links {
			key := [2]phy.NodeID{l.AP, otherEnd(l)}
			if byPair[key] == nil {
				byPair[key] = map[bool]*topo.Link{}
			}
			byPair[key][l.Downlink] = l
		}
		id := 0
		for _, pair := range orderedPairs(byPair) {
			dirs := byPair[pair]
			down, up := dirs[true], dirs[false]
			if down == nil || up == nil {
				continue
			}
			if s.DownMbps != 0 {
				f := traffic.NewTCPFlow(k, engine, id, down, up, traffic.DefaultTCPConfig(s.DownMbps))
				res.DataLinkID[down.ID] = true
				hub.Add(f)
				res.TCPFlows = append(res.TCPFlows, f)
				f.Start()
				id++
			}
			if s.UpMbps != 0 {
				f := traffic.NewTCPFlow(k, engine, id, up, down, traffic.DefaultTCPConfig(s.UpMbps))
				res.DataLinkID[up.ID] = true
				hub.Add(f)
				res.TCPFlows = append(res.TCPFlows, f)
				f.Start()
				id++
			}
		}
	default:
		inst.res = res
		return inst, fmt.Errorf("unknown traffic kind %d", int(s.Traffic))
	}

	engine.Start()

	inst.Engine = engine
	inst.Obs = orun
	inst.coll = coll
	inst.res = res
	return inst, nil
}

// Collector returns the instance's statistics collector, live during the
// run — window drivers read it at barriers to build progress digests.
func (i *Instance) Collector() *stats.Collector { return i.coll }

// Step executes events up to and including t and returns the clock
// (sim.Kernel.RunUntil).
func (i *Instance) Step(t sim.Time) sim.Time { return i.Kernel.RunUntil(t) }

// StepBefore executes events strictly before horizon and advances the clock
// to it (sim.Kernel.RunBefore) — the conservative-lookahead window step.
func (i *Instance) StepBefore(horizon sim.Time) sim.Time { return i.Kernel.RunBefore(horizon) }

// Finish closes the observability run and computes the scenario's
// measurements. Call exactly once, after the kernel has been driven to
// S.Duration; repeated calls return the cached Result.
func (i *Instance) Finish() Result {
	if i.finished {
		return i.res
	}
	i.finished = true
	s := i.S
	res := i.res
	if i.Obs != nil {
		bd := i.Obs.Finish(s.Duration)
		res.Breakdown = &bd
		if s.Metrics != nil {
			res.Snapshot = s.Metrics.Snapshot()
		}
	}
	coll := i.coll
	res.PerLinkMbps = coll.PerLinkMbps(s.Duration)
	res.AggregateMbps = coll.AggregateMbps(s.Duration)
	res.MeanDelay = coll.MeanDelay()
	res.MeanDelayPerLink = coll.MeanDelayPerLink()
	var dataRates []float64
	for id := range res.PerLinkMbps {
		if res.DataLinkID[id] {
			res.DataMbps += res.PerLinkMbps[id]
			dataRates = append(dataRates, res.PerLinkMbps[id])
		}
	}
	res.Fairness = stats.JainIndex(dataRates)
	i.res = res
	return res
}

func otherEnd(l *topo.Link) phy.NodeID {
	if l.Downlink {
		return l.Receiver
	}
	return l.Sender
}

// orderedPairs returns map keys in deterministic order.
func orderedPairs(m map[[2]phy.NodeID]map[bool]*topo.Link) [][2]phy.NodeID {
	var keys [][2]phy.NodeID
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func less(a, b [2]phy.NodeID) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}
