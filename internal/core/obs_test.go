package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TestRunObservedDomino drives a saturated DOMINO run with the full
// observability stack attached and checks the acceptance contract: the trace
// carries the slot timeline (slot_start records), signature triggers and ROP
// poll records, and the airtime breakdown partitions the run duration
// exactly.
func TestRunObservedDomino(t *testing.T) {
	var buf obs.Buffer
	m := obs.NewMetrics()
	dur := sim.Second
	res := Run(Scenario{
		Net:      topo.Figure7(),
		Downlink: true,
		Uplink:   true,
		Scheme:   DOMINO,
		Seed:     11,
		Duration: dur,
		Traffic:  Saturated,
		Tracer:   &buf,
		Metrics:  m,
	})
	if res.AggregateMbps <= 0 {
		t.Fatalf("no throughput: %.2f Mbps", res.AggregateMbps)
	}

	recs := buf.Records()
	if len(recs) < 3 {
		t.Fatalf("only %d records", len(recs))
	}
	if recs[0].Kind != obs.KindRunStart || recs[0].Aux != "DOMINO" || recs[0].Value != 11 {
		t.Fatalf("first record = %+v, want run_start DOMINO seed 11", recs[0])
	}
	last := recs[len(recs)-1]
	if last.Kind != obs.KindRunEnd || last.At != dur {
		t.Fatalf("last record = %+v, want run_end at %v", last, dur)
	}
	counts := map[obs.Kind]int{}
	for _, r := range recs {
		counts[r.Kind]++
	}
	for _, k := range []obs.Kind{
		obs.KindSlotStart, obs.KindSlotEnd, obs.KindTrigger, obs.KindROPPoll,
		obs.KindTxStart, obs.KindTxEnd, obs.KindKernel, obs.KindQueue,
	} {
		if counts[k] == 0 {
			t.Errorf("no %v records in a saturated DOMINO run", k)
		}
	}

	if res.Breakdown == nil {
		t.Fatal("no airtime breakdown")
	}
	if res.Breakdown.Total != dur {
		t.Fatalf("breakdown total = %v, want %v", res.Breakdown.Total, dur)
	}
	var sum sim.Time
	for b := obs.BucketIdle; b < obs.NumBuckets; b++ {
		sum += res.Breakdown.Of(b)
	}
	if sum != dur {
		t.Fatalf("airtime buckets sum to %v, want the run duration %v", sum, dur)
	}
	if res.Breakdown.Of(obs.BucketData) == 0 {
		t.Error("saturated run recorded zero data airtime")
	}

	if len(res.Snapshot) == 0 {
		t.Fatal("no metrics snapshot")
	}
	if v, ok := res.Snapshot.Get("mac.delivered"); !ok || v.Value <= 0 {
		t.Errorf("mac.delivered = %+v", v)
	}
	if v, ok := res.Snapshot.Get("phy.tx.data"); !ok || v.Value <= 0 {
		t.Errorf("phy.tx.data = %+v", v)
	}
}

// TestRunObservedDCF checks the DCF path: backoff records and queue samples
// flow, and the breakdown still partitions the duration.
func TestRunObservedDCF(t *testing.T) {
	var buf obs.Buffer
	dur := 500 * sim.Millisecond
	res := Run(Scenario{
		Net:      topo.TwoPairs(topo.ExposedTerminals),
		Downlink: true,
		Scheme:   DCF,
		Seed:     12,
		Duration: dur,
		Traffic:  Saturated,
		Tracer:   &buf,
	})
	counts := map[obs.Kind]int{}
	for _, r := range buf.Records() {
		counts[r.Kind]++
	}
	if counts[obs.KindBackoff] == 0 {
		t.Error("no backoff records in a DCF run")
	}
	if counts[obs.KindQueue] == 0 {
		t.Error("no queue-depth samples in a saturated DCF run")
	}
	if res.Breakdown == nil || res.Breakdown.Total != dur {
		t.Fatalf("breakdown = %+v, want total %v", res.Breakdown, dur)
	}
}

// TestRunUnobservedHasNoBreakdown pins that the default scenario installs no
// hooks and reports no observability artifacts.
func TestRunUnobservedHasNoBreakdown(t *testing.T) {
	res := Run(Scenario{
		Net:      topo.TwoPairs(topo.ExposedTerminals),
		Downlink: true,
		Scheme:   DOMINO,
		Seed:     13,
		Duration: 200 * sim.Millisecond,
		Traffic:  Saturated,
	})
	if res.Breakdown != nil || res.Snapshot != nil {
		t.Fatalf("unobserved run produced breakdown=%v snapshot=%v",
			res.Breakdown, res.Snapshot)
	}
}
