package centaur

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// TestEpochBarrier checks the §4.2.3 mechanism directly: the next epoch is
// not scheduled until every AP reports completion, so a slow AP gates fast
// ones.
func TestEpochBarrier(t *testing.T) {
	net := topo.Figure13b()
	links := net.BuildLinks(true, false)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(7)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	engine := New(k, medium, g, hub, DefaultConfig())
	coll := stats.NewCollector(len(links), 0)
	hub.Add(coll)
	for _, l := range links {
		s := traffic.NewSaturated(k, engine, l, 512, 16)
		hub.Add(s)
		s.Start()
	}
	engine.Start()
	k.RunUntil(2 * sim.Second)
	// AP4 (link 3, node 6) senses everyone and always defers; in 13(b) its
	// per-epoch completion gates AP1-AP3, so all four links converge to the
	// SAME throughput: the barrier equalises them at AP4's pace.
	rates := coll.PerLinkMbps(2 * sim.Second)
	f := stats.JainIndex(rates)
	if f < 0.97 {
		t.Errorf("barrier should equalise links: fairness %.3f (%v)", f, rates)
	}
	// And the epoch count stays far below what unconstrained APs would do.
	if engine.Epochs < 10 {
		t.Errorf("epochs = %d; scheduler stalled", engine.Epochs)
	}
}

// TestIdleEngineReschedules: with no traffic the epoch builder must keep
// polling for demand rather than deadlock.
func TestIdleEngineReschedules(t *testing.T) {
	net := topo.TwoPairs(topo.ExposedTerminals)
	links := net.BuildLinks(true, false)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(8)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	engine := New(k, medium, g, nil, DefaultConfig())
	engine.Start()
	k.RunUntil(200 * sim.Millisecond)
	if engine.Epochs < 100 {
		t.Errorf("idle engine built %d epochs; should keep checking", engine.Epochs)
	}
	// Traffic arriving late still gets served.
	engine.Enqueue(&mac.Packet{Link: links[0], Bytes: 512, Enqueued: k.Now()})
	var delivered int
	// Rewire events via a fresh saturated check is overkill; just verify the
	// queue drains.
	k.RunUntil(300 * sim.Millisecond)
	if engine.QueueLen(0) != 0 {
		t.Errorf("late packet still queued")
	}
	_ = delivered
}
