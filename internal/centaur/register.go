package centaur

import (
	"fmt"

	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/scheme"
)

// WireObs implements scheme.Observable: CENTAUR emits typed epoch records,
// stamps packet lifecycles, and ties scheduled downlinks to the epoch that
// planned them via causal spans.
func (e *Engine) WireObs(run *obs.Run) {
	e.Obs = run.Tracer()
	e.life = run
	e.sp = run.Spans()
}

func init() {
	scheme.MustRegister(scheme.Descriptor{
		Name:               "CENTAUR",
		Summary:            "hybrid scheduled-downlink / DCF-uplink baseline",
		NeedsConflictGraph: true,
		DefaultConfig: func(p scheme.Params) any {
			cfg := DefaultConfig()
			cfg.Rate = p.Rate
			return &cfg
		},
		Build: func(ctx scheme.BuildContext, cfg any) (mac.Engine, error) {
			c, ok := cfg.(*Config)
			if !ok {
				return nil, fmt.Errorf("centaur: Build got config %T, want *centaur.Config", cfg)
			}
			return New(ctx.Kernel, ctx.Medium, ctx.Graph, ctx.Events, *c), nil
		},
		Checkpointer: func(e mac.Engine) scheme.EngineState {
			eng, ok := e.(*Engine)
			if !ok {
				return scheme.EngineState{Scheme: "CENTAUR"}
			}
			return scheme.EngineState{Scheme: "CENTAUR", Counters: map[string]int64{
				"epochs":       int64(eng.Epochs),
				"ack_timeouts": int64(eng.AckTimeouts),
				"drops":        int64(eng.Drops),
			}}
		},
	})
}
