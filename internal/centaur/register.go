package centaur

import (
	"fmt"

	"repro/internal/mac"
	"repro/internal/scheme"
)

func init() {
	scheme.MustRegister(scheme.Descriptor{
		Name:               "CENTAUR",
		Summary:            "hybrid scheduled-downlink / DCF-uplink baseline",
		NeedsConflictGraph: true,
		DefaultConfig: func(p scheme.Params) any {
			cfg := DefaultConfig()
			cfg.Rate = p.Rate
			return &cfg
		},
		Build: func(ctx scheme.BuildContext, cfg any) (mac.Engine, error) {
			c, ok := cfg.(*Config)
			if !ok {
				return nil, fmt.Errorf("centaur: Build got config %T, want *centaur.Config", cfg)
			}
			return New(ctx.Kernel, ctx.Medium, ctx.Graph, ctx.Events, *c), nil
		},
	})
}
