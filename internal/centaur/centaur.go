// Package centaur models CENTAUR (Shrivastava et al., MOBICOM'09) as the
// DOMINO paper describes and evaluates it (§1, §4.2.3): a hybrid data path
// where downlink traffic is centrally scheduled in epochs — hidden links
// separated into different rounds, exposed links placed in the same round —
// while uplink traffic contends with plain DCF. Concurrent (exposed)
// transmissions are aligned only by carrier sensing plus a fixed backoff
// after a common idle reference; there is no tight synchronization, which is
// exactly what breaks in the Fig 13(b) topology: APs that cannot sense each
// other never share a reference, the AP that senses everyone keeps deferring,
// and the epoch barrier makes everybody wait for it.
package centaur

import (
	"sort"

	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/strict"
	"repro/internal/topo"
)

// Config parameterises a CENTAUR instance.
type Config struct {
	Rate phy.Rate
	// FixedBackoffSlots is the deterministic backoff every scheduled
	// downlink uses after DIFS; a shared idle reference plus an identical
	// backoff is what aligns exposed transmissions.
	FixedBackoffSlots int
	// RoundGuard pads each round's nominal duration to absorb wired jitter.
	RoundGuard sim.Time
	// EpochQuota caps packets per link per epoch.
	EpochQuota int
	// WiredLatencyMean/Std: backbone latency (same model as DOMINO).
	WiredLatencyMean sim.Time
	WiredLatencyStd  sim.Time
	// Uplink DCF parameters.
	CWMin, CWMax int
	QueueCap     int
}

// DefaultConfig mirrors the evaluation's settings.
func DefaultConfig() Config {
	return Config{
		Rate:              phy.Rate12,
		FixedBackoffSlots: 4,
		RoundGuard:        sim.Micros(100),
		EpochQuota:        8,
		WiredLatencyMean:  sim.Micros(285),
		WiredLatencyStd:   sim.Micros(22),
		CWMin:             15,
		CWMax:             1023,
		QueueCap:          mac.DefaultQueueCap,
	}
}

// roundDuration is one scheduled exchange plus access overhead and guard.
func (c Config) roundDuration() sim.Time {
	return phy.Airtime(512, c.Rate) + phy.SIFS + phy.Airtime(phy.AckBytes, c.Rate) +
		phy.DIFS + sim.Time(c.FixedBackoffSlots)*phy.SlotTime + c.RoundGuard
}

// Engine is a CENTAUR deployment.
type Engine struct {
	k      *sim.Kernel
	medium *phy.Medium
	g      *topo.ConflictGraph
	net    *topo.Network
	events mac.Events
	cfg    Config

	queues []*mac.Queue
	nodes  map[phy.NodeID]*node

	// Scheduling state.
	downlinks []*topo.Link
	sched     *strict.RAND
	epochSeq  int
	awaiting  map[phy.NodeID]bool // APs whose epoch-completion report is due

	// debug receives node-level trace lines when non-nil (tests only).
	debug func(phy.NodeID, string)

	// Observability (nil without WireObs): typed epoch records, packet
	// lifecycle stamps, and causal spans tying scheduled downlinks to the
	// epoch that planned them.
	Obs  obs.Tracer
	life *obs.Run
	sp   *obs.Spans

	// Counters.
	Epochs      int
	AckTimeouts int
	Drops       int
}

// epochItem is one scheduled downlink transmission.
type epochItem struct {
	link *topo.Link
	// span is the causal span of the epoch that scheduled this item (0 when
	// spans are off); its transmissions carry it onto the air.
	span int64
	// releaseOffset is the wall-clock gate relative to epoch arrival. Rounds
	// are paced apart only when they conflict across senders — hidden links
	// share no carrier reference, so only the loose wall clock separates
	// them. Non-conflicting rounds release immediately: carrier sensing and
	// the fixed backoff align them on shared idle edges.
	releaseOffset sim.Time
}

// New builds a CENTAUR engine over the full link set; downlinks are
// scheduled, uplinks contend.
func New(k *sim.Kernel, medium *phy.Medium, g *topo.ConflictGraph, events mac.Events, cfg Config) *Engine {
	if events == nil {
		events = mac.NopEvents{}
	}
	e := &Engine{
		k: k, medium: medium, g: g, net: g.Net, events: events, cfg: cfg,
		nodes:    map[phy.NodeID]*node{},
		awaiting: map[phy.NodeID]bool{},
	}
	e.queues = make([]*mac.Queue, len(g.Links))
	var downIDs []int
	for _, l := range g.Links {
		e.queues[l.ID] = mac.NewQueue(cfg.QueueCap)
		if l.Downlink {
			e.downlinks = append(e.downlinks, l)
			downIDs = append(downIDs, l.ID)
		}
	}
	// Downlink-only conflict graph for the central scheduler: reuse the full
	// graph's adjacency through a RAND restricted to downlink IDs.
	e.sched = strict.NewRAND(g)
	add := func(id phy.NodeID) *node {
		n, ok := e.nodes[id]
		if !ok {
			n = &node{e: e, id: id, cw: cfg.CWMin}
			e.nodes[id] = n
			medium.Register(id, n)
		}
		return n
	}
	for _, l := range g.Links {
		s := add(l.Sender)
		if !l.Downlink {
			s.uplinks = append(s.uplinks, l)
		}
		add(l.Receiver)
	}
	return e
}

// Start implements mac.Engine.
func (e *Engine) Start() { e.k.After(0, e.buildEpoch) }

// Enqueue implements mac.Engine.
func (e *Engine) Enqueue(p *mac.Packet) {
	if !e.queues[p.Link.ID].Push(p) {
		e.events.Dropped(p, e.k.Now())
		return
	}
	if e.life != nil {
		e.life.PacketQueued(p, e.k.Now())
	}
	if !p.Link.Downlink {
		n := e.nodes[p.Link.Sender]
		if n.st == stIdle {
			n.serveUplink()
		}
	}
}

// QueueLen implements mac.Engine.
func (e *Engine) QueueLen(link int) int { return e.queues[link].Len() }

// buildEpoch computes rounds for the backlogged downlinks and dispatches
// per-AP schedules over the wire.
func (e *Engine) buildEpoch() {
	e.Epochs++
	e.epochSeq++
	quota := make([]int, len(e.g.Links))
	anything := false
	for _, l := range e.downlinks {
		q := e.queues[l.ID].Len()
		if q > e.cfg.EpochQuota {
			q = e.cfg.EpochQuota
		}
		quota[l.ID] = q
		if q > 0 {
			anything = true
		}
	}
	if !anything {
		// Idle: check again shortly.
		e.k.After(e.cfg.roundDuration(), e.buildEpoch)
		return
	}
	rounds := e.sched.Batch(quota, len(e.downlinks)*e.cfg.EpochQuota)
	var epochSpan int64
	if e.sp != nil {
		epochSpan = e.sp.Next()
	}
	if e.Obs != nil {
		rec := obs.Rec(e.k.Now(), obs.KindEpoch)
		rec.Value = int64(e.epochSeq)
		rec.Extra = int64(len(rounds))
		rec.Span = epochSpan
		rec.OK = true
		e.Obs.Emit(rec)
	}
	perAP := map[phy.NodeID][]epochItem{}
	offset := sim.Time(0)
	for r, slot := range rounds {
		if r > 0 && e.crossSenderConflict(rounds[r-1], slot) {
			offset += e.cfg.roundDuration()
		}
		for _, id := range slot {
			l := e.g.Links[id]
			perAP[l.Sender] = append(perAP[l.Sender], epochItem{link: l, releaseOffset: offset, span: epochSpan})
		}
	}
	// Dispatch in deterministic AP order; every scheduled AP owes a
	// completion report.
	var apIDs []phy.NodeID
	for apID := range perAP {
		apIDs = append(apIDs, apID)
	}
	sort.Slice(apIDs, func(a, b int) bool { return apIDs[a] < apIDs[b] })
	for _, apID := range apIDs {
		e.awaiting[apID] = true
		n := e.nodes[apID]
		items := perAP[apID]
		lat := e.wireLatency()
		e.k.After(lat, func() { n.receiveEpoch(items) })
	}
}

// crossSenderConflict reports whether any link of round b conflicts with a
// different sender's link in round a — the only case wall-clock pacing must
// separate (same-sender sequencing and carrier sensing handle the rest).
func (e *Engine) crossSenderConflict(a, b strict.Slot) bool {
	for _, x := range a {
		for _, y := range b {
			lx, ly := e.g.Links[x], e.g.Links[y]
			if lx.Sender != ly.Sender && e.g.Conflicts(x, y) {
				return true
			}
		}
	}
	return false
}

func (e *Engine) wireLatency() sim.Time {
	lat := e.cfg.WiredLatencyMean +
		sim.Time(e.k.Rand().NormFloat64()*float64(e.cfg.WiredLatencyStd))
	if lat < 0 {
		return 0
	}
	return lat
}

// epochDone is an AP's completion report (after its wired trip): the barrier
// of §4.2.3 — the next epoch is not scheduled until every AP finished.
func (e *Engine) epochDone(ap phy.NodeID) {
	delete(e.awaiting, ap)
	if len(e.awaiting) == 0 {
		e.buildEpoch()
	}
}
