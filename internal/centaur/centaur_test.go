package centaur

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

type rig struct {
	k      *sim.Kernel
	engine *Engine
	coll   *stats.Collector
	links  []*topo.Link
}

func fullRig(t *testing.T, net *topo.Network, down, up bool, seed int64, saturate []int) *rig {
	t.Helper()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	links := net.BuildLinks(down, up)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(seed)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	engine := New(k, medium, g, hub, DefaultConfig())
	coll := stats.NewCollector(len(links), 0)
	hub.Add(coll)
	for _, id := range saturate {
		s := traffic.NewSaturated(k, engine, links[id], 512, 16)
		hub.Add(s)
		s.Start()
	}
	engine.Start()
	return &rig{k: k, engine: engine, coll: coll, links: links}
}

func allIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestSingleDownlink(t *testing.T) {
	net := topo.TwoPairs(topo.ExposedTerminals)
	r := fullRig(t, net, true, false, 1, []int{0})
	r.k.RunUntil(2 * sim.Second)
	got := r.coll.ThroughputMbps(0, 2*sim.Second)
	// Exchange ≈ 364+10+32 + DIFS 28 + 4 slots 36 = 470 µs -> ≈8.7 Mbps,
	// minus epoch-barrier gaps (two wire trips + scheduling per 8 packets).
	if got < 6.5 || got > 9.0 {
		t.Errorf("single scheduled downlink = %.2f Mbps, want ≈7-8.5", got)
	}
	if r.engine.Epochs < 50 {
		t.Errorf("epochs = %d", r.engine.Epochs)
	}
}

// TestExposedConcurrency: Fig 13(a): four mutually exposed downlinks share a
// common carrier reference and transmit concurrently — CENTAUR's win.
func TestExposedConcurrency(t *testing.T) {
	net := topo.Figure13a()
	r := fullRig(t, net, true, false, 2, allIDs(4))
	r.k.RunUntil(3 * sim.Second)
	total := r.coll.AggregateMbps(3 * sim.Second)
	// The paper reports 28.60 Mbps here (Table 3).
	if total < 20 {
		t.Errorf("Fig13a aggregate = %.2f Mbps, want ≈25-29 (concurrent exposed)", total)
	}
	if f := r.coll.Fairness(3 * sim.Second); f < 0.95 {
		t.Errorf("fairness = %.3f", f)
	}
}

// TestSharedExposedCollapse: Fig 13(b): AP1–AP3 share no carrier reference,
// AP4 defers to all of them, and the epoch barrier stalls everyone on AP4 —
// CENTAUR drops below its own Fig 13(a) result (paper: 18.35 vs 28.60).
func TestSharedExposedCollapse(t *testing.T) {
	netA := topo.Figure13a()
	ra := fullRig(t, netA, true, false, 3, allIDs(4))
	ra.k.RunUntil(3 * sim.Second)
	totalA := ra.coll.AggregateMbps(3 * sim.Second)

	netB := topo.Figure13b()
	rb := fullRig(t, netB, true, false, 3, allIDs(4))
	rb.k.RunUntil(3 * sim.Second)
	totalB := rb.coll.AggregateMbps(3 * sim.Second)

	if totalB >= totalA-4 {
		t.Errorf("13b (%.2f) should collapse well below 13a (%.2f)", totalB, totalA)
	}
	// AP4's link is the bottleneck; the other three still finish early and
	// wait.
	ap4 := rb.coll.ThroughputMbps(3, 3*sim.Second)
	t.Logf("13a=%.2f 13b=%.2f (AP4 link %.2f)", totalA, totalB, ap4)
}

func TestHiddenLinksSeparated(t *testing.T) {
	// Scheduled downlinks on a hidden pair must NOT collide: different
	// rounds, full aggregate ≈ one channel.
	net := topo.TwoPairs(topo.HiddenTerminals)
	r := fullRig(t, net, true, false, 4, allIDs(2))
	r.k.RunUntil(2 * sim.Second)
	total := r.coll.AggregateMbps(2 * sim.Second)
	if total < 6.0 {
		t.Errorf("hidden pair under CENTAUR = %.2f Mbps; rounds should separate them", total)
	}
	if r.engine.AckTimeouts > 60 {
		t.Errorf("ack timeouts = %d; scheduled rounds colliding", r.engine.AckTimeouts)
	}
}

func TestUplinkUsesDCF(t *testing.T) {
	// Uplink-only: pure DCF behaviour (CENTAUR does not schedule it). Use
	// the single-contention-domain topology so the clients actually share
	// the channel.
	net := topo.TwoPairs(topo.SameContention)
	r := fullRig(t, net, false, true, 5, allIDs(2))
	r.k.RunUntil(2 * sim.Second)
	total := r.coll.AggregateMbps(2 * sim.Second)
	// Serialised by carrier sensing like DCF: ≈8, not ≈19.
	if total < 6.0 || total > 10.5 {
		t.Errorf("uplink aggregate = %.2f Mbps, want ≈8 (DCF)", total)
	}
}

// TestUplinkDisturbsDownlink: the §1 observation — uplink DCF traffic
// disturbs the downlink schedule.
func TestUplinkDisturbsDownlink(t *testing.T) {
	net := topo.TwoPairs(topo.SameContention)
	// Downlink of pair 1 scheduled; uplink of pair 2 contends.
	links := net.BuildLinks(true, true)
	var downOnly, mixed float64
	for _, withUplink := range []bool{false, true} {
		g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
		k := sim.New(6)
		medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
		hub := &mac.Hub{}
		engine := New(k, medium, g, hub, DefaultConfig())
		coll := stats.NewCollector(len(links), 0)
		hub.Add(coll)
		sat := []int{0}
		if withUplink {
			for _, l := range links {
				if !l.Downlink && l.AP == 2 {
					sat = append(sat, l.ID)
				}
			}
		}
		for _, id := range sat {
			s := traffic.NewSaturated(k, engine, links[id], 512, 16)
			hub.Add(s)
			s.Start()
		}
		engine.Start()
		k.RunUntil(2 * sim.Second)
		if withUplink {
			mixed = coll.ThroughputMbps(0, 2*sim.Second)
		} else {
			downOnly = coll.ThroughputMbps(0, 2*sim.Second)
		}
	}
	if mixed >= downOnly*0.8 {
		t.Errorf("uplink contention barely disturbed the schedule: %.2f vs %.2f", mixed, downOnly)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) (float64, int) {
		r := fullRig(nil2(t), topo.Figure13b(), true, false, seed, allIDs(4))
		r.k.RunUntil(sim.Second)
		return r.coll.AggregateMbps(sim.Second), r.engine.Epochs
	}
	a1, e1 := run(9)
	a2, e2 := run(9)
	if a1 != a2 || e1 != e2 {
		t.Errorf("same seed diverged: (%v,%d) vs (%v,%d)", a1, e1, a2, e2)
	}
}

func nil2(t *testing.T) *testing.T { return t }
