package centaur

import (
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

type state int

const (
	stIdle state = iota
	stBackoff
	stTx
	stWaitAck
)

// node is one radio. APs run the scheduled-downlink procedure (release time,
// DIFS + fixed backoff after a clear channel); clients run plain DCF on their
// uplinks; everyone ACKs what it decodes.
type node struct {
	e  *Engine
	id phy.NodeID

	// Scheduled downlink state (APs).
	epoch      []epochItem
	epochStart sim.Time
	epochIdx   int

	// Uplink DCF state (clients).
	uplinks []*topo.Link
	rr      int
	cw      int
	counter int

	st       state
	pending  *mac.Packet
	pendLink *topo.Link
	pendSpan int64 // causal span the pending transmission rides on
	fixed    bool  // pending transmission uses the fixed scheduled backoff

	fireEv    sim.Event
	fireBase  sim.Time
	busySince sim.Time // when carrier sensing last turned busy
	nav       sim.Time // virtual carrier sense: medium reserved until here
	releaseEv sim.Event
	timeoutEv sim.Event
}

// setNAV reserves the medium until t (802.11 virtual carrier sensing: a
// decoded data frame protects its upcoming ACK).
func (n *node) setNAV(t sim.Time) {
	if t <= n.nav {
		return
	}
	n.nav = t
	n.e.k.At(t, func() { n.tryScheduleFire() })
}

// receiveEpoch installs a new downlink schedule (wire arrival).
func (n *node) receiveEpoch(items []epochItem) {
	n.epoch = items
	n.epochStart = n.e.k.Now()
	n.epochIdx = 0
	n.serveEpoch()
}

// serveEpoch begins contention for the next scheduled item at its release
// time.
func (n *node) serveEpoch() {
	if n.st != stIdle {
		return // an uplink exchange (or retry) is in flight; resume after it
	}
	if n.epochIdx >= len(n.epoch) {
		if len(n.epoch) > 0 {
			n.epoch = nil
			lat := n.e.wireLatency()
			ap := n.id
			n.e.k.After(lat, func() { n.e.epochDone(ap) })
		}
		return
	}
	item := n.epoch[n.epochIdx]
	release := n.epochStart + item.releaseOffset
	wait := release - n.e.k.Now()
	if wait < 0 {
		wait = 0
	}
	n.releaseEv = n.e.k.After(wait, func() {
		n.releaseEv = sim.Event{}
		if n.st != stIdle {
			return
		}
		p := n.e.queues[item.link.ID].Pop()
		if p == nil {
			// The queue drained (the scheduler over-estimated); skip.
			n.epochIdx++
			n.serveEpoch()
			return
		}
		if n.e.life != nil {
			n.e.life.PacketDequeued(p, n.e.k.Now())
		}
		// Scheduled sends ride the epoch's span: the tree shows which epoch
		// put this packet on the air.
		p.TxSpan = item.span
		n.pendSpan = item.span
		n.pending = p
		n.pendLink = item.link
		n.fixed = true
		n.st = stBackoff
		n.counter = n.e.cfg.FixedBackoffSlots
		n.tryScheduleFire()
	})
}

// serveUplink starts DCF contention for the next queued uplink packet.
func (n *node) serveUplink() {
	if n.st != stIdle || n.pending != nil || len(n.uplinks) == 0 {
		return
	}
	for i := 0; i < len(n.uplinks); i++ {
		l := n.uplinks[(n.rr+i)%len(n.uplinks)]
		if p := n.e.queues[l.ID].Pop(); p != nil {
			n.rr = (n.rr + i + 1) % len(n.uplinks)
			if n.e.life != nil {
				n.e.life.PacketDequeued(p, n.e.k.Now())
			}
			// Contended uplinks have no scheduling cause: the packet's own
			// span is the attempt.
			p.TxSpan = p.Span
			n.pendSpan = p.Span
			n.pending = p
			n.pendLink = l
			n.fixed = false
			n.st = stBackoff
			n.counter = n.e.k.Rand().Intn(n.cw + 1)
			n.tryScheduleFire()
			return
		}
	}
}

// tryScheduleFire arms the transmission if the channel is idle (physically
// and per the NAV).
func (n *node) tryScheduleFire() {
	if n.st != stBackoff || n.fireEv.Scheduled() || n.e.medium.Busy(n.id) ||
		n.e.k.Now() < n.nav {
		return
	}
	n.fireBase = n.e.k.Now()
	if n.e.debug != nil {
		n.e.debug(n.id, "arm")
	}
	wait := phy.DIFS + sim.Time(n.counter)*phy.SlotTime
	n.fireEv = n.e.k.After(wait, n.fire)
}

// CarrierChanged implements phy.Listener.
func (n *node) CarrierChanged(busy bool) {
	if busy {
		n.busySince = n.e.k.Now()
	}
	if n.st != stBackoff {
		return
	}
	if busy {
		// A fire due at this very instant is already committed: a station
		// cannot abort inside its RX/TX turnaround. Letting it proceed is
		// what aligns exposed transmissions on a shared idle reference (and
		// what produces genuine collisions when the links do conflict).
		if n.e.debug != nil {
			n.e.debug(n.id, "busy-cancel?")
		}
		if n.fireEv.Scheduled() && n.fireEv.At() > n.e.k.Now() {
			if !n.fixed {
				// Random DCF backoff freezes and resumes; the fixed
				// scheduled backoff restarts whole (that is what keeps
				// exposed APs aligned on a common idle reference).
				elapsed := n.e.k.Now() - n.fireBase - phy.DIFS
				if elapsed > 0 {
					consumed := int(elapsed / phy.SlotTime)
					if consumed > n.counter {
						consumed = n.counter
					}
					n.counter -= consumed
				}
			}
			n.fireEv.Cancel()
			n.fireEv = sim.Event{}
		}
		return
	}
	n.tryScheduleFire()
}

func (n *node) fire() {
	n.fireEv = sim.Event{}
	if n.e.debug != nil {
		n.e.debug(n.id, "fire")
	}
	if n.st != stBackoff || n.pending == nil {
		return
	}
	if n.e.medium.Busy(n.id) && n.busySince != n.e.k.Now() {
		// Went busy earlier and we somehow still fired: defer to the next
		// idle transition.
		return
	}
	p := n.pending
	n.st = stTx
	dur := phy.Airtime(p.Bytes, n.e.cfg.Rate)
	n.e.medium.Transmit(n.id, &phy.Frame{
		Kind: phy.Data, Dst: n.pendLink.Receiver, Bytes: p.Bytes,
		Rate: n.e.cfg.Rate, Duration: dur, Payload: p, ObsSpan: n.pendSpan,
	})
	n.e.k.After(dur, func() {
		if n.st == stTx {
			n.st = stWaitAck
			timeout := phy.SIFS + phy.Airtime(phy.AckBytes, n.e.cfg.Rate) + 2*phy.SlotTime
			n.timeoutEv = n.e.k.After(timeout, n.ackTimeout)
		}
	})
}

// FrameReceived implements phy.Listener.
func (n *node) FrameReceived(f *phy.Frame, ok bool, _ *phy.SignatureDetection) {
	if !ok {
		return
	}
	if f.Dst != n.id {
		// Overheard data: honour the NAV through the coming ACK, so the
		// exchange's owner re-enters contention on equal footing.
		if f.Kind == phy.Data {
			n.setNAV(n.e.k.Now() + phy.SIFS + phy.Airtime(phy.AckBytes, n.e.cfg.Rate))
			if n.fireEv.Scheduled() && n.fireEv.At() > n.e.k.Now() {
				n.fireEv.Cancel()
				n.fireEv = sim.Event{}
			}
		}
		return
	}
	switch f.Kind {
	case phy.Data:
		p := f.Payload.(*mac.Packet)
		span := f.ObsSpan
		n.e.k.After(phy.SIFS, func() {
			if n.e.medium.Transmitting(n.id) {
				return
			}
			if n.fireEv.Scheduled() {
				n.fireEv.Cancel()
				n.fireEv = sim.Event{}
			}
			dur := phy.Airtime(phy.AckBytes, n.e.cfg.Rate)
			n.e.medium.Transmit(n.id, &phy.Frame{
				Kind: phy.Ack, Dst: f.Src, Bytes: phy.AckBytes,
				Rate: n.e.cfg.Rate, Duration: dur, Payload: p, ObsSpan: span,
			})
			n.e.k.After(dur, func() { n.tryScheduleFire() })
		})
	case phy.Ack:
		if n.st != stWaitAck || n.pending == nil || f.Payload.(*mac.Packet) != n.pending {
			return
		}
		if n.timeoutEv.Scheduled() {
			n.timeoutEv.Cancel()
			n.timeoutEv = sim.Event{}
		}
		p := n.pending
		fixed := n.fixed
		n.pending = nil
		n.st = stIdle
		n.cw = n.e.cfg.CWMin
		n.e.events.Delivered(p, n.e.k.Now())
		if fixed {
			n.epochIdx++
			n.serveEpoch()
		}
		n.serveUplink()
	}
}

func (n *node) ackTimeout() {
	n.timeoutEv = sim.Event{}
	if n.st != stWaitAck || n.pending == nil {
		return
	}
	n.e.AckTimeouts++
	n.pending.Retries++
	if n.pending.Retries > mac.RetryLimit {
		p := n.pending
		fixed := n.fixed
		n.pending = nil
		n.st = stIdle
		n.cw = n.e.cfg.CWMin
		n.e.Drops++
		n.e.events.Dropped(p, n.e.k.Now())
		if fixed {
			n.epochIdx++
			n.serveEpoch()
		}
		n.serveUplink()
		return
	}
	if !n.fixed && n.cw < n.e.cfg.CWMax {
		n.cw = 2*n.cw + 1
		if n.cw > n.e.cfg.CWMax {
			n.cw = n.e.cfg.CWMax
		}
	}
	n.st = stBackoff
	if n.fixed {
		n.counter = n.e.cfg.FixedBackoffSlots
	} else {
		n.counter = n.e.k.Rand().Intn(n.cw + 1)
	}
	n.tryScheduleFire()
}
