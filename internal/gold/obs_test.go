package gold

import (
	"testing"

	"repro/internal/obs"
)

func TestDetectEmitsRecords(t *testing.T) {
	set, err := NewSet(7)
	if err != nil {
		t.Fatal(err)
	}
	corr := NewCorrelator(set)
	var buf obs.Buffer
	corr.Obs = &buf
	rx := set.Combine(1, 2)
	if !corr.DetectObserved(rx, 1) {
		t.Fatal("clean code 1 not detected")
	}
	if corr.DetectObserved(rx, 5) {
		t.Fatal("absent code 5 detected")
	}
	if got, want := corr.Detect(rx, 1), true; got != want {
		t.Fatal("plain Detect disagrees with DetectObserved")
	}
	recs := buf.Records()
	if len(recs) != 2 {
		t.Fatalf("emitted %d records, want 2", len(recs))
	}
	if recs[0].Kind != obs.KindTrigger || !recs[0].OK || recs[0].Node != 1 {
		t.Fatalf("hit record = %+v", recs[0])
	}
	if recs[0].Value < 900_000 {
		t.Fatalf("hit metric = %d millionths, want ~1e6", recs[0].Value)
	}
	if recs[1].Kind != obs.KindTriggerMiss || recs[1].OK || recs[1].Node != 5 {
		t.Fatalf("miss record = %+v", recs[1])
	}
}

// The tracer-disabled paths must not allocate: Detect sits inside the
// Monte-Carlo detection trials and the per-reception judging loop, and
// DetectObserved with a nil tracer must degrade to the same cost class.
func TestDetectDisabledZeroAlloc(t *testing.T) {
	set, err := NewSet(7)
	if err != nil {
		t.Fatal(err)
	}
	corr := NewCorrelator(set)
	rx := set.Combine(1, 2, 3, 4)
	if got := testing.AllocsPerRun(200, func() { corr.Detect(rx, 1) }); got != 0 {
		t.Fatalf("Detect allocates %v/op, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() { corr.DetectObserved(rx, 1) }); got != 0 {
		t.Fatalf("DetectObserved allocates %v/op with nil tracer, want 0", got)
	}
}

// BenchmarkMetric pins the correlator hot path with tracing disabled (the
// acceptance gate vs the PR 1 baseline in BENCH_parallel.json) and enabled
// (a counting tracer, the realistic always-on cost).
func BenchmarkMetric(b *testing.B) {
	set, err := NewSet(7)
	if err != nil {
		b.Fatal(err)
	}
	rx := set.Combine(1, 2, 3, 4)
	b.Run("disabled", func(b *testing.B) {
		corr := NewCorrelator(set)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			corr.Detect(rx, 1)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		corr := NewCorrelator(set)
		var sink countingTracer
		corr.Obs = &sink
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			corr.DetectObserved(rx, 1)
		}
	})
}

type countingTracer struct {
	n int64
}

func (c *countingTracer) Emit(obs.Record) { c.n++ }
