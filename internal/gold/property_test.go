package gold

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestShiftAndAdd: the defining m-sequence property — XOR of a sequence with
// a cyclic shift of itself is another cyclic shift (checked via chip products
// summing to -1 at every offset pair, which the family structure relies on).
func TestShiftAndAdd(t *testing.T) {
	s, _ := NewSet(7)
	f := func(k8, j8 uint8) bool {
		n := s.Len()
		k, j := int(k8)%n, int(j8)%n
		if k == j {
			return true
		}
		// Family codes a⊕T^k b and a⊕T^j b correlate at exactly -1.
		return s.CrossCorr(2+k, 2+j, 0) == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// TestRunProperty: an m-sequence of degree m has 2^(m-2) runs of length 1,
// 2^(m-3) of length 2, ... (the classic run-length property); check the
// counts of the first few lengths.
func TestRunProperty(t *testing.T) {
	s, _ := NewSet(7)
	chips := s.Code(0)
	n := len(chips)
	runs := map[int]int{}
	runLen := 1
	for i := 1; i <= n; i++ {
		if chips[i%n] == chips[(i-1)%n] && i < n {
			runLen++
			continue
		}
		runs[runLen]++
		runLen = 1
	}
	// Degree 7: 32 runs of length 1, 16 of length 2, 8 of length 3.
	if runs[1] != 32 || runs[2] != 16 || runs[3] != 8 {
		t.Errorf("run counts = %v, want 1:32 2:16 3:8", runs)
	}
}
