package gold

import (
	"math"
	"math/rand"
	"testing"
)

func set7(t *testing.T) *Set {
	t.Helper()
	s, err := NewSet(7)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSetSizes(t *testing.T) {
	for _, m := range []int{5, 6, 7, 9} {
		s, err := NewSet(m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if s.Len() != 1<<m-1 {
			t.Errorf("m=%d: len = %d", m, s.Len())
		}
		if s.Count() != 1<<m+1 {
			t.Errorf("m=%d: count = %d, want %d", m, s.Count(), 1<<m+1)
		}
	}
	// DOMINO's parameters: 129 codes of length 127 (paper §3.2).
	s := set7(t)
	if s.Len() != 127 || s.Count() != 129 {
		t.Fatalf("m=7: len=%d count=%d", s.Len(), s.Count())
	}
}

func TestUnsupportedDegrees(t *testing.T) {
	if _, err := NewSet(8); err == nil {
		t.Error("m=8 (≡0 mod 4) must be rejected: no preferred pairs exist")
	}
	if _, err := NewSet(4); err == nil {
		t.Error("m=4 must be rejected")
	}
	if _, err := NewSet(3); err == nil {
		t.Error("m=3 unsupported")
	}
}

// TestMSequenceBalance: an m-sequence has 2^(m-1) ones and 2^(m-1)-1 zeros,
// i.e. chip sum = -1 with our mapping.
func TestMSequenceBalance(t *testing.T) {
	for _, m := range []int{5, 6, 7, 9} {
		s, _ := NewSet(m)
		for _, ci := range []int{0, 1} {
			sum := 0
			for _, c := range s.Code(ci) {
				sum += int(c)
			}
			if sum != 1 { // 2^(m-1)-1 of +1 (zeros)... chips: 0->+1; ones=2^(m-1) -> -1 each
				// ones - zeros = 1, so sum = zeros - ones = -1.
				if sum != -1 {
					t.Errorf("m=%d code %d: chip sum = %d, want -1", m, ci, sum)
				}
			}
		}
	}
}

// TestAutocorrelation: an m-sequence's periodic autocorrelation is n at shift
// 0 and exactly -1 everywhere else.
func TestAutocorrelation(t *testing.T) {
	s := set7(t)
	for _, ci := range []int{0, 1} {
		if got := s.CrossCorr(ci, ci, 0); got != s.Len() {
			t.Fatalf("code %d: R(0) = %d", ci, got)
		}
		for shift := 1; shift < s.Len(); shift++ {
			if got := s.CrossCorr(ci, ci, shift); got != -1 {
				t.Fatalf("code %d: R(%d) = %d, want -1", ci, shift, got)
			}
		}
	}
}

// TestThreeValuedCrossCorrelation is the defining Gold property: the
// preferred pair's cross-correlation takes only {-1, -t, t-2}.
func TestThreeValuedCrossCorrelation(t *testing.T) {
	for _, m := range []int{5, 6, 7, 9} {
		s, _ := NewSet(m)
		tb := s.Bound()
		seen := map[int]bool{}
		for shift := 0; shift < s.Len(); shift++ {
			v := s.CrossCorr(0, 1, shift)
			seen[v] = true
			if v != -1 && v != -tb && v != tb-2 {
				t.Fatalf("m=%d: preferred pair correlation %d at shift %d (t=%d)", m, v, shift, tb)
			}
		}
		if len(seen) != 3 {
			t.Errorf("m=%d: correlation values %v, want all three", m, seen)
		}
	}
}

// TestGoldPairwiseBound: every pair in the set respects |corr| ≤ t at zero
// shift (sampled pairs; the full set is O(n²·n) to check exhaustively).
func TestGoldPairwiseBound(t *testing.T) {
	s := set7(t)
	tb := s.Bound()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		i, j := rng.Intn(s.Count()), rng.Intn(s.Count())
		if i == j {
			continue
		}
		v := s.CrossCorr(i, j, 0)
		if v != -1 && v != -tb && v != tb-2 {
			t.Fatalf("codes %d,%d: corr %d outside Gold values (t=%d)", i, j, v, tb)
		}
	}
}

func TestBoundValue(t *testing.T) {
	// t(7) = 17: the classic 127-chip Gold bound.
	if s := set7(t); s.Bound() != 17 {
		t.Fatalf("t(7) = %d", s.Bound())
	}
	s9, _ := NewSet(9)
	if s9.Bound() != 33 {
		t.Fatalf("t(9) = %d", s9.Bound())
	}
	s6, _ := NewSet(6)
	if s6.Bound() != 17 {
		t.Fatalf("t(6) = %d", s6.Bound())
	}
}

func TestCombine(t *testing.T) {
	s := set7(t)
	rx := s.Combine(3, 4, 5)
	for k := range rx {
		want := float64(s.Code(3)[k]) + float64(s.Code(4)[k]) + float64(s.Code(5)[k])
		if rx[k] != want {
			t.Fatalf("combine mismatch at chip %d", k)
		}
	}
}

func TestCorrelatorCleanDetection(t *testing.T) {
	s := set7(t)
	c := NewCorrelator(s)
	rx := s.Combine(10)
	if !c.Detect(rx, 10) {
		t.Error("clean signature not detected")
	}
	if c.Detect(rx, 11) {
		t.Error("absent signature detected (false positive)")
	}
	if got := c.Metric(rx, 10); math.Abs(got-1) > 1e-12 {
		t.Errorf("clean metric = %v", got)
	}
	// Inverted polarity (carrier phase flip) must still detect.
	for k := range rx {
		rx[k] = -rx[k]
	}
	if !c.Detect(rx, 10) {
		t.Error("polarity-flipped signature not detected")
	}
}

func TestCorrelatorUnderNoise(t *testing.T) {
	s := set7(t)
	c := NewCorrelator(s)
	rng := rand.New(rand.NewSource(2))
	// 0 dB chip SNR: spreading gain 21 dB makes detection near-certain.
	miss := 0
	for trial := 0; trial < 200; trial++ {
		rx := s.Combine(42)
		AddAWGN(rx, NoiseStdForSNR(0), rng)
		if !c.Detect(rx, 42) {
			miss++
		}
	}
	if miss > 2 {
		t.Errorf("missed %d/200 at 0 dB chip SNR", miss)
	}
}

func TestNoiseStdForSNR(t *testing.T) {
	if got := NoiseStdForSNR(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("0 dB -> %v", got)
	}
	if got := NoiseStdForSNR(20); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("20 dB -> %v", got)
	}
}

// TestDetectionCurveShape reproduces the headline of paper Fig 9: detection
// is essentially perfect up to 4 combined signatures (DOMINO's operating
// limit) and the false-positive rate stays under 1%.
func TestDetectionCurveShape(t *testing.T) {
	s := set7(t)
	rng := rand.New(rand.NewSource(3))
	for _, setup := range Fig9Setups() {
		for combined := setup.Senders; combined <= 4; combined++ {
			// Total code instances in the air: same-signature senders repeat
			// the whole combination. DOMINO's converter caps the envelope at
			// inbound ≤ 2 triggers × 4 combined = 8 instances; within it,
			// detection must be near-perfect and false positives below 1%.
			instances := combined
			if setup.Mode == SameSignatures {
				instances = combined * setup.Senders
			}
			r := DetectionTrial(s, setup, combined, 400, 10, rng)
			if instances <= 8 {
				if r.Detected < 0.99 {
					t.Errorf("setup %+v combined=%d: detection %.3f < 0.99",
						setup, combined, r.Detected)
				}
				if r.FalsePositive > 0.01 {
					t.Errorf("setup %+v combined=%d: false positives %.3f",
						setup, combined, r.FalsePositive)
				}
			} else if r.Detected < 0.90 {
				t.Errorf("setup %+v combined=%d (beyond envelope): detection %.3f < 0.90",
					setup, combined, r.Detected)
			}
		}
	}
	// Heavily overloaded combinations degrade: with dozens of asynchronous
	// signatures the interference sum finally overwhelms the 127-chip
	// processing gain.
	over := DetectionTrial(s, Setup{Senders: 3, Mode: DifferentSignatures}, 60, 400, 10, rng)
	if over.Detected > 0.95 {
		t.Errorf("60 combined signatures still detected at %.3f", over.Detected)
	}
}

// TestDetectionCurveMatchesDefault keeps phy.DefaultDetector honest: that
// table encodes the paper's USRP measurement (Fig 9), which our idealised
// chip-level correlator can only upper-bound — real hardware adds CFO, phase
// noise and quantisation the Monte Carlo omits. Assert the bound and the
// ≤4-combined perfection that both agree on.
func TestDetectionCurveMatchesDefault(t *testing.T) {
	s := set7(t)
	curve := MeasureDetectionCurve(s, 7, 150, 10, 4, 1)
	// phy.DefaultDetector's table (kept literal here: gold must not depend
	// on phy).
	defaultTable := []float64{1, 1, 1, 1, 0.998, 0.93, 0.80, 0.65}
	for c := 0; c <= 4; c++ {
		if curve[c] < 0.98 {
			t.Errorf("curve[%d] = %.3f, want ≈1", c, curve[c])
		}
	}
	for c := range defaultTable {
		if curve[c] < defaultTable[c]-0.03 {
			t.Errorf("ideal curve[%d] = %.3f below the hardware table %.3f",
				c, curve[c], defaultTable[c])
		}
	}
}

func TestDetectionTrialPanicsOnBadInput(t *testing.T) {
	s := set7(t)
	defer func() {
		if recover() == nil {
			t.Error("combined=0 must panic")
		}
	}()
	DetectionTrial(s, Setup{Senders: 1}, 0, 1, 10, rand.New(rand.NewSource(1)))
}

func BenchmarkCorrelator127(b *testing.B) {
	s, _ := NewSet(7)
	c := NewCorrelator(s)
	rx := s.Combine(1, 2, 3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Metric(rx, 1)
	}
}

func BenchmarkDetectionTrial(b *testing.B) {
	s, _ := NewSet(7)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectionTrial(s, Setup{Senders: 2, Mode: DifferentSignatures}, 4, 1, 10, rng)
	}
}
