package gold

import (
	"math/rand"
	"testing"
)

// TestDetectionTrialParallelDeterministic asserts the harness contract:
// the sharded Monte Carlo returns bit-identical results at every worker
// count, because the shard structure and per-shard seeds depend only on the
// trial count.
func TestDetectionTrialParallelDeterministic(t *testing.T) {
	s := set7(t)
	setup := Setup{Senders: 2, Mode: DifferentSignatures}
	// 200 trials → 4 shards, the last one partial.
	want := DetectionTrialParallel(s, setup, 4, 200, 10, 11, 1)
	for _, workers := range []int{2, 8} {
		got := DetectionTrialParallel(s, setup, 4, 200, 10, 11, workers)
		if got != want {
			t.Errorf("workers=%d: %+v, want %+v", workers, got, want)
		}
	}
	// And it still measures the same physics: near-perfect detection at 4
	// combined signatures.
	if want.Detected < 0.95 {
		t.Errorf("detection %.3f < 0.95", want.Detected)
	}
}

// TestDetectionCurveDeterministic pins the workers=1 ≡ workers=8 contract
// for the full detection curve.
func TestDetectionCurveDeterministic(t *testing.T) {
	s := set7(t)
	want := MeasureDetectionCurve(s, 7, 150, 10, 4, 1)
	got := MeasureDetectionCurve(s, 7, 150, 10, 4, 8)
	for c := range want {
		if got[c] != want[c] {
			t.Errorf("curve[%d]: workers=8 %.4f, workers=1 %.4f", c, got[c], want[c])
		}
	}
}

// TestDetectionTrialSeedSensitivity guards against per-shard seeds
// collapsing to the same stream: different base seeds must (with these
// trial counts) produce different counts somewhere along the curve.
func TestDetectionTrialSeedSensitivity(t *testing.T) {
	s := set7(t)
	setup := Setup{Senders: 3, Mode: DifferentSignatures}
	a := DetectionTrialParallel(s, setup, 7, 300, 10, 1, 4)
	b := DetectionTrialParallel(s, setup, 7, 300, 10, 2, 4)
	if a == b {
		t.Errorf("seeds 1 and 2 produced identical results %+v", a)
	}
}

func BenchmarkCorrelatorMetric(b *testing.B) {
	s, _ := NewSet(7)
	c := NewCorrelator(s)
	rx := s.Combine(1, 2, 3, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Metric(rx, 1)
	}
}

func BenchmarkCorrelatorDetect(b *testing.B) {
	s, _ := NewSet(7)
	c := NewCorrelator(s)
	rx := s.Combine(1, 2, 3, 4)
	AddAWGN(rx, NoiseStdForSNR(10), rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Detect(rx, 1)
	}
}

func BenchmarkAddShifted(b *testing.B) {
	s, _ := NewSet(7)
	rx := make([]float64, s.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddShifted(rx, 1, 63, 1, 2, 3, 4)
	}
}

func BenchmarkDetectionTrialParallel(b *testing.B) {
	s, _ := NewSet(7)
	setup := Setup{Senders: 2, Mode: DifferentSignatures}
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "allcores"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				DetectionTrialParallel(s, setup, 4, 256, 10, int64(i+1), workers)
			}
		})
	}
}
