// Package gold implements Gold code generation and chip-level signature
// detection, the physical mechanism behind DOMINO's relative-scheduling
// triggers (paper §3.2): each node owns one code from a Gold set; triggers
// are sums of up to four codes; receivers run correlators for their own code
// and detect it even under interference thanks to the set's bounded
// cross-correlation.
//
// Codes are built the classical way (Gold 1967): an m-sequence from a
// primitive polynomial, its decimation by q (a preferred pair), and the XOR
// of the first with every cyclic shift of the second — 2^m + 1 sequences of
// length 2^m − 1 whose periodic cross-correlations take only the three values
// {−1, −t(m), t(m)−2}.
package gold

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/obs"
)

// primitiveTaps lists one primitive polynomial per supported degree, as tap
// positions of a Fibonacci LFSR (x^m + x^t1 + ... + 1).
var primitiveTaps = map[int][]int{
	5:  {5, 2},
	6:  {6, 1},
	7:  {7, 3},
	9:  {9, 4},
	10: {10, 3},
	11: {11, 2},
}

// Set is a family of Gold codes of one length.
type Set struct {
	m     int
	n     int // code length 2^m − 1
	t     int // three-valued correlation bound t(m)
	codes [][]int8
	// fchips mirrors codes as float64, precomputed so the correlator and
	// AddShifted hot loops multiply directly instead of converting each
	// int8 chip on every visit (the conversion dominated Metric's inner
	// loop before this cache existed).
	fchips [][]float64
}

// NewSet builds the Gold set of degree m (length 2^m − 1, 2^m + 1 codes).
// Degrees divisible by 4 have no preferred pairs (no Gold codes exist);
// supported degrees are 5, 6, 7, 9, 10 and 11. DOMINO uses m=7: 129 codes of
// 127 chips, 6.35 µs at 20 Mcps.
func NewSet(m int) (*Set, error) {
	taps, ok := primitiveTaps[m]
	if !ok {
		if m%4 == 0 {
			return nil, fmt.Errorf("gold: no preferred pairs exist for degree %d (m ≡ 0 mod 4)", m)
		}
		return nil, fmt.Errorf("gold: unsupported degree %d", m)
	}
	n := 1<<m - 1
	a := mSequence(m, taps)
	// Decimation by q produces the preferred companion: q = 3 for odd m,
	// q = 5 for m ≡ 2 (mod 4).
	q := 3
	if m%2 == 0 {
		q = 5
	}
	b := decimate(a, q)

	t := threeValueBound(m)
	s := &Set{m: m, n: n, t: t}
	s.codes = append(s.codes, toChips(a), toChips(b))
	for shift := 0; shift < n; shift++ {
		x := make([]uint8, n)
		for i := range x {
			x[i] = a[i] ^ b[(i+shift)%n]
		}
		s.codes = append(s.codes, toChips(x))
	}
	s.fchips = make([][]float64, len(s.codes))
	for i, code := range s.codes {
		f := make([]float64, n)
		for k, c := range code {
			f[k] = float64(c)
		}
		s.fchips[i] = f
	}
	return s, nil
}

// threeValueBound returns t(m) = 2^⌊(m+2)/2⌋ + 1, the magnitude bound of
// Gold-set cross-correlations.
func threeValueBound(m int) int {
	if m%2 == 1 {
		return 1<<((m+1)/2) + 1
	}
	return 1<<((m+2)/2) + 1
}

// mSequence runs the recurrence of the primitive polynomial
// x^m + x^t1 + ... + 1 (taps = [m, t1, ...]) from the all-ones state for one
// full period: s[i+m] = s[i] ⊕ s[i+t1] ⊕ ....
func mSequence(m int, taps []int) []uint8 {
	n := 1<<m - 1
	state := make([]uint8, m) // state[i] = s[t+i]
	for i := range state {
		state[i] = 1
	}
	out := make([]uint8, n)
	for i := 0; i < n; i++ {
		out[i] = state[0]
		fb := state[0] // the +1 term
		for _, t := range taps {
			if t != m {
				fb ^= state[t]
			}
		}
		copy(state, state[1:])
		state[m-1] = fb
	}
	return out
}

// decimate samples every q-th bit of a periodic sequence.
func decimate(a []uint8, q int) []uint8 {
	n := len(a)
	out := make([]uint8, n)
	for i := range out {
		out[i] = a[(q*i)%n]
	}
	return out
}

// toChips maps bits {0,1} to BPSK chips {+1,−1}.
func toChips(bits []uint8) []int8 {
	out := make([]int8, len(bits))
	for i, b := range bits {
		if b == 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// Len returns the chip length of the set's codes.
func (s *Set) Len() int { return s.n }

// Count returns the number of codes in the set (2^m + 1). The paper reserves
// two for the START and ROP signatures, leaving 127 node signatures at m=7.
func (s *Set) Count() int { return len(s.codes) }

// Bound returns t(m), the guaranteed cross-correlation magnitude bound.
func (s *Set) Bound() int { return s.t }

// Code returns the i-th code's chips. The returned slice is shared; callers
// must not modify it.
func (s *Set) Code(i int) []int8 { return s.codes[i] }

// CrossCorr computes the periodic correlation of codes i and j at the given
// cyclic shift of j.
func (s *Set) CrossCorr(i, j, shift int) int {
	a, b := s.codes[i], s.codes[j]
	sum := 0
	for k := 0; k < s.n; k++ {
		sum += int(a[k]) * int(b[(k+shift)%s.n])
	}
	return sum
}

// Combine sums the chip streams of the given codes into one baseband signal,
// as a trigger transmitter does when notifying several next transmitters at
// once (paper §3.2: "AP1 sends the sum of AP2 and AP3's signatures").
func (s *Set) Combine(idx ...int) []float64 {
	out := make([]float64, s.n)
	s.AddShifted(out, 1, 0, idx...)
	return out
}

// AddShifted adds the given codes, cyclically shifted and scaled, into rx —
// one asynchronous transmitter's contribution to the received baseband. rx
// must be at most one code period long (every caller uses exactly Len()).
func (s *Set) AddShifted(rx []float64, amp float64, shift int, idx ...int) {
	for _, i := range idx {
		code := s.fchips[i]
		// rx[k] += amp*code[(k+shift) mod n], with the wrap hoisted out of
		// the loop: chips [shift:n) land in rx[:n-shift), chips [:shift)
		// in rx[n-shift:).
		split := s.n - shift
		if split > len(rx) {
			split = len(rx)
		}
		head, tail := rx[:split], rx[split:]
		shifted := code[shift:]
		for k := range head {
			head[k] += amp * shifted[k]
		}
		for k := range tail {
			tail[k] += amp * code[k]
		}
	}
}

// Correlator detects whether a target code is present in a received baseband
// signal: it normalises the zero-shift correlation by the code energy and
// compares against Threshold (a fraction of the full autocorrelation peak).
type Correlator struct {
	Set *Set
	// Threshold is the detection level as a fraction of the autocorrelation
	// peak; 0.5 balances misses against false positives and keeps the false
	// positive rate below 1% (paper Fig 9).
	Threshold float64
	// Obs, when non-nil, receives one trigger record per DetectObserved
	// call (Node is the code id, Value the correlation metric in
	// millionths). Plain Detect never consults it — see DetectObserved for
	// why the two entry points are separate.
	Obs obs.Tracer
}

// NewCorrelator returns a correlator with the default 0.5 threshold.
func NewCorrelator(s *Set) *Correlator { return &Correlator{Set: s, Threshold: 0.5} }

// Metric returns |corr(rx, code)| / n: 1.0 for a clean unit-amplitude
// occurrence of the code, ~t(m)/n for an absent one.
func (c *Correlator) Metric(rx []float64, code int) float64 {
	chips := c.Set.fchips[code]
	var sum float64
	for k, v := range rx {
		sum += v * chips[k]
	}
	return math.Abs(sum) / float64(c.Set.n)
}

// Detect reports whether the code is judged present in rx. It must stay a
// one-liner: Metric's inlined body (cost 51) plus any extra call pushes this
// function past the compiler's inlining budget (80), and losing inlinability
// costs the Monte-Carlo trial loops a full call frame per judgement (~50%
// on the correlator micro-benchmark). Tracing therefore lives in
// DetectObserved rather than behind a nil check here.
func (c *Correlator) Detect(rx []float64, code int) bool {
	return c.Metric(rx, code) >= c.Threshold
}

// DetectObserved is Detect plus one trigger (hit) or trigger_miss record to
// c.Obs per call when it is set. Untraced callers keep using Detect, whose
// machine code is unchanged from before observability existed; traced
// harnesses opt in by calling this variant.
func (c *Correlator) DetectObserved(rx []float64, code int) bool {
	m := c.Metric(rx, code)
	det := m >= c.Threshold
	if c.Obs != nil {
		c.emitDetect(code, m, det)
	}
	return det
}

func (c *Correlator) emitDetect(code int, m float64, det bool) {
	kind := obs.KindTrigger
	if !det {
		kind = obs.KindTriggerMiss
	}
	rec := obs.Rec(0, kind)
	rec.Node = code
	rec.Value = int64(m * 1e6)
	rec.OK = det
	c.Obs.Emit(rec)
}

// AddAWGN adds white Gaussian noise of the given standard deviation per chip.
func AddAWGN(rx []float64, std float64, rng *rand.Rand) {
	for i := range rx {
		rx[i] += rng.NormFloat64() * std
	}
}

// NoiseStdForSNR returns the per-chip noise standard deviation such that a
// unit-amplitude BPSK signal has the given chip SNR in dB.
func NoiseStdForSNR(snrDB float64) float64 {
	return math.Pow(10, -snrDB/20)
}
