package gold_test

import (
	"fmt"

	"repro/internal/gold"
)

// ExampleNewSet builds DOMINO's signature family and shows the Gold bound.
func ExampleNewSet() {
	set, err := gold.NewSet(7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("codes: %d of length %d\n", set.Count(), set.Len())
	fmt.Printf("cross-correlation bound t(7): %d\n", set.Bound())

	// A receiver detects its own code inside a combined trigger of four.
	rx := set.Combine(3, 40, 77, 101)
	c := gold.NewCorrelator(set)
	fmt.Printf("own code detected: %v\n", c.Detect(rx, 40))
	fmt.Printf("absent code detected: %v\n", c.Detect(rx, 5))
	// Output:
	// codes: 129 of length 127
	// cross-correlation bound t(7): 17
	// own code detected: true
	// absent code detected: false
}
