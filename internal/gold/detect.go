package gold

import (
	"math/rand"

	"repro/internal/parallel"
)

// SenderMode distinguishes the Fig 9 experiment setups: multiple triggering
// transmitters either repeat the same combined signature (the redundancy
// DOMINO uses for robustness) or carry different signatures.
type SenderMode int

const (
	// SameSignatures: every sender transmits the identical combination.
	SameSignatures SenderMode = iota
	// DifferentSignatures: the combined set is partitioned across senders.
	DifferentSignatures
)

// Setup is one curve of paper Fig 9.
type Setup struct {
	Senders int
	Mode    SenderMode
}

// Fig9Setups lists the five experiment configurations of paper Fig 9.
func Fig9Setups() []Setup {
	return []Setup{
		{Senders: 1, Mode: SameSignatures},
		{Senders: 2, Mode: SameSignatures},
		{Senders: 2, Mode: DifferentSignatures},
		{Senders: 3, Mode: SameSignatures},
		{Senders: 3, Mode: DifferentSignatures},
	}
}

// DetectionResult aggregates one Monte-Carlo run.
type DetectionResult struct {
	// Detected is the fraction of trials in which the target signature was
	// found by the correlator.
	Detected float64
	// FalsePositive is the fraction of trials in which a signature that was
	// NOT transmitted crossed the detection threshold.
	FalsePositive float64
}

// trialScratch holds the per-worker buffers runTrials reuses across trials:
// the received-baseband accumulator and the per-sender signature partition.
// Before this scratch existed every trial allocated a fresh rx slice and
// grew partitions with append.
type trialScratch struct {
	rx   []float64
	part []int
	perm []int
}

// permInto fills m with a pseudo-random permutation of [0, n) using exactly
// the algorithm and draw sequence of rand.Perm, but into a reusable buffer:
// one Intn per element instead of one slice allocation per trial.
func permInto(rng *rand.Rand, n int, m []int) []int {
	if cap(m) < n {
		m = make([]int, n)
	}
	m = m[:n]
	if n > 0 {
		m[0] = 0
	}
	for i := 1; i < n; i++ {
		j := rng.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	return m
}

// runTrials is the serial Monte-Carlo core shared by DetectionTrial and the
// sharded parallel drivers: `trials` receptions drawn from rng, counting
// target detections and false positives. The rng draw order per trial
// (permutation, per-sender offsets, noise) is part of the package's
// determinism contract — do not reorder.
func runTrials(s *Set, corr *Correlator, setup Setup, combined, trials int, noise float64, rng *rand.Rand, sc *trialScratch) (det, fp int) {
	if sc.rx == nil {
		sc.rx = make([]float64, s.Len())
	}
	for trial := 0; trial < trials; trial++ {
		idx := permInto(rng, s.Count(), sc.perm)
		sc.perm = idx
		sigs := idx[:combined]
		absent := idx[combined]

		rx := sc.rx
		clear(rx)
		offset := func(sender int) int {
			if sender == 0 {
				return 0 // the correlator is locked to sender 0
			}
			return rng.Intn(s.Len())
		}
		switch setup.Mode {
		case SameSignatures:
			// Every sender carries the full combination.
			for sender := 0; sender < setup.Senders; sender++ {
				s.AddShifted(rx, 1, offset(sender), sigs...)
			}
		case DifferentSignatures:
			// Partition the combination round-robin across senders; each
			// signature is transmitted exactly once. The target (sigs[0])
			// lands on sender 0.
			for sender := 0; sender < setup.Senders; sender++ {
				part := sc.part[:0]
				for i := sender; i < len(sigs); i += setup.Senders {
					part = append(part, sigs[i])
				}
				sc.part = part
				if len(part) == 0 {
					continue
				}
				s.AddShifted(rx, 1, offset(sender), part...)
			}
		}
		AddAWGN(rx, noise, rng)

		if corr.Detect(rx, sigs[0]) {
			det++
		}
		if corr.Detect(rx, absent) {
			fp++
		}
	}
	return det, fp
}

func checkCombined(s *Set, combined int) {
	if combined < 1 || combined >= s.Count()-1 {
		panic("gold: combined signature count out of range")
	}
}

// DetectionTrial runs Monte-Carlo trials of a trigger reception: `combined`
// distinct signatures are in the air, spread over the setup's senders, each
// sender arriving with unit amplitude (the worst case the paper evaluates:
// equal RSS) at the given chip SNR. Triggering transmitters are not
// chip-synchronised, so every sender after the first lands at a random cyclic
// offset; the receiver's correlator is locked to the sender carrying the
// target signature. The detector hunts for the first signature of the
// combination and, for the false-positive count, for a signature known to be
// absent. Codes are drawn fresh each trial.
func DetectionTrial(s *Set, setup Setup, combined, trials int, snrDB float64, rng *rand.Rand) DetectionResult {
	checkCombined(s, combined)
	corr := NewCorrelator(s)
	var sc trialScratch
	det, fp := runTrials(s, corr, setup, combined, trials, NoiseStdForSNR(snrDB), rng, &sc)
	return DetectionResult{
		Detected:      float64(det) / float64(trials),
		FalsePositive: float64(fp) / float64(trials),
	}
}

// shardTrials is the fixed shard granularity of the parallel Monte Carlo.
// The shard structure — how many shards, which trials each covers, and each
// shard's derived seed — depends only on the trial count, never on the
// worker count, which is what makes DetectionTrialParallel's output
// identical at any parallelism.
const shardTrials = 64

// DetectionTrialParallel is DetectionTrial with the trials sharded across a
// worker pool: shard i covers trials [i*64, (i+1)*64) with its own
// rand.Rand seeded parallel.Seed(seed, i, DefaultStride). Detection and
// false-positive counts are summed over shards, so the result is
// bit-identical for every workers value (workers ≤ 0 means all cores).
func DetectionTrialParallel(s *Set, setup Setup, combined, trials int, snrDB float64, seed int64, workers int) DetectionResult {
	checkCombined(s, combined)
	corr := NewCorrelator(s)
	noise := NoiseStdForSNR(snrDB)
	shards := (trials + shardTrials - 1) / shardTrials
	type counts struct{ det, fp int }
	perShard := parallel.Map(workers, shards, func(i int) counts {
		n := shardTrials
		if rest := trials - i*shardTrials; rest < n {
			n = rest
		}
		rng := rand.New(rand.NewSource(parallel.Seed(seed, i, parallel.DefaultStride)))
		var sc trialScratch
		det, fp := runTrials(s, corr, setup, combined, n, noise, rng, &sc)
		return counts{det, fp}
	})
	var det, fp int
	for _, c := range perShard {
		det += c.det
		fp += c.fp
	}
	return DetectionResult{
		Detected:      float64(det) / float64(trials),
		FalsePositive: float64(fp) / float64(trials),
	}
}

// curveStride spaces the per-point base seeds of a detection curve far
// apart so the shard seeds derived inside one point (point seed + shard*101)
// can never collide with another point's.
const curveStride int64 = 1_000_003

// MeasureDetectionCurve runs the worst-case setup the MAC engine cares about
// (multiple senders, different signatures) across combined counts 1..max and
// returns detection probabilities indexed by combined count. Index 0 is 1.0
// (nothing to detect never fails). This is the table phy.DefaultDetector
// encodes. Trials are sharded across `workers` goroutines (≤ 0 → all
// cores); the curve is identical at every worker count for a given seed.
func MeasureDetectionCurve(s *Set, max, trials int, snrDB float64, seed int64, workers int) []float64 {
	curve := make([]float64, max+1)
	curve[0] = 1
	for c := 1; c <= max; c++ {
		setup := Setup{Senders: 2, Mode: DifferentSignatures}
		if c == 1 {
			setup = Setup{Senders: 1, Mode: SameSignatures}
		}
		r := DetectionTrialParallel(s, setup, c, trials, snrDB, parallel.Seed(seed, c, curveStride), workers)
		curve[c] = r.Detected
	}
	return curve
}
