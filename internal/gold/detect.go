package gold

import "math/rand"

// SenderMode distinguishes the Fig 9 experiment setups: multiple triggering
// transmitters either repeat the same combined signature (the redundancy
// DOMINO uses for robustness) or carry different signatures.
type SenderMode int

const (
	// SameSignatures: every sender transmits the identical combination.
	SameSignatures SenderMode = iota
	// DifferentSignatures: the combined set is partitioned across senders.
	DifferentSignatures
)

// Setup is one curve of paper Fig 9.
type Setup struct {
	Senders int
	Mode    SenderMode
}

// Fig9Setups lists the five experiment configurations of paper Fig 9.
func Fig9Setups() []Setup {
	return []Setup{
		{Senders: 1, Mode: SameSignatures},
		{Senders: 2, Mode: SameSignatures},
		{Senders: 2, Mode: DifferentSignatures},
		{Senders: 3, Mode: SameSignatures},
		{Senders: 3, Mode: DifferentSignatures},
	}
}

// DetectionResult aggregates one Monte-Carlo run.
type DetectionResult struct {
	// Detected is the fraction of trials in which the target signature was
	// found by the correlator.
	Detected float64
	// FalsePositive is the fraction of trials in which a signature that was
	// NOT transmitted crossed the detection threshold.
	FalsePositive float64
}

// DetectionTrial runs Monte-Carlo trials of a trigger reception: `combined`
// distinct signatures are in the air, spread over the setup's senders, each
// sender arriving with unit amplitude (the worst case the paper evaluates:
// equal RSS) at the given chip SNR. Triggering transmitters are not
// chip-synchronised, so every sender after the first lands at a random cyclic
// offset; the receiver's correlator is locked to the sender carrying the
// target signature. The detector hunts for the first signature of the
// combination and, for the false-positive count, for a signature known to be
// absent. Codes are drawn fresh each trial.
func DetectionTrial(s *Set, setup Setup, combined, trials int, snrDB float64, rng *rand.Rand) DetectionResult {
	if combined < 1 || combined >= s.Count()-1 {
		panic("gold: combined signature count out of range")
	}
	corr := NewCorrelator(s)
	noise := NoiseStdForSNR(snrDB)
	var det, fp int
	for trial := 0; trial < trials; trial++ {
		idx := rng.Perm(s.Count())
		sigs := idx[:combined]
		absent := idx[combined]

		rx := make([]float64, s.Len())
		offset := func(sender int) int {
			if sender == 0 {
				return 0 // the correlator is locked to sender 0
			}
			return rng.Intn(s.Len())
		}
		switch setup.Mode {
		case SameSignatures:
			// Every sender carries the full combination.
			for sender := 0; sender < setup.Senders; sender++ {
				s.AddShifted(rx, 1, offset(sender), sigs...)
			}
		case DifferentSignatures:
			// Partition the combination round-robin across senders; each
			// signature is transmitted exactly once. The target (sigs[0])
			// lands on sender 0.
			for sender := 0; sender < setup.Senders; sender++ {
				var part []int
				for i := sender; i < len(sigs); i += setup.Senders {
					part = append(part, sigs[i])
				}
				if len(part) == 0 {
					continue
				}
				s.AddShifted(rx, 1, offset(sender), part...)
			}
		}
		AddAWGN(rx, noise, rng)

		if corr.Detect(rx, sigs[0]) {
			det++
		}
		if corr.Detect(rx, absent) {
			fp++
		}
	}
	return DetectionResult{
		Detected:      float64(det) / float64(trials),
		FalsePositive: float64(fp) / float64(trials),
	}
}

// MeasureDetectionCurve runs the worst-case setup the MAC engine cares about
// (multiple senders, different signatures) across combined counts 1..max and
// returns detection probabilities indexed by combined count. Index 0 is 1.0
// (nothing to detect never fails). This is the table phy.DefaultDetector
// encodes.
func MeasureDetectionCurve(s *Set, max, trials int, snrDB float64, rng *rand.Rand) []float64 {
	curve := make([]float64, max+1)
	curve[0] = 1
	for c := 1; c <= max; c++ {
		setup := Setup{Senders: 2, Mode: DifferentSignatures}
		if c == 1 {
			setup = Setup{Senders: 1, Mode: SameSignatures}
		}
		r := DetectionTrial(s, setup, c, trials, snrDB, rng)
		curve[c] = r.Detected
	}
	return curve
}
