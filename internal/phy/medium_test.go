package phy

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// recorder is a Listener that stores everything it observes.
type recorder struct {
	frames  []*Frame
	oks     []bool
	dets    []*SignatureDetection
	carrier []bool
}

func (r *recorder) CarrierChanged(busy bool) { r.carrier = append(r.carrier, busy) }
func (r *recorder) FrameReceived(f *Frame, ok bool, det *SignatureDetection) {
	r.frames = append(r.frames, f)
	r.oks = append(r.oks, ok)
	r.dets = append(r.dets, det)
}

// uniformRSS builds an n-node matrix where every pair hears the other at the
// given dBm.
func uniformRSS(n int, dbm float64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = dbm
			} else {
				m[i][j] = 0
			}
		}
	}
	return m
}

func newTestMedium(t *testing.T, rss [][]float64) (*sim.Kernel, *Medium, []*recorder) {
	t.Helper()
	k := sim.New(1)
	m := NewMedium(k, rss, DefaultConfig())
	recs := make([]*recorder, len(rss))
	for i := range recs {
		recs[i] = &recorder{}
		m.Register(NodeID(i), recs[i])
	}
	return k, m, recs
}

func TestAirtime(t *testing.T) {
	// 512 B at 12 Mbps: 16+6+4096 = 4118 bits, NDBPS 48 -> 86 symbols.
	if got, want := Airtime(512, Rate12), sim.Micros(20+86*4); got != want {
		t.Errorf("Airtime(512,12) = %v, want %v", got, want)
	}
	// ACK: 14 B -> 134 bits -> 3 symbols at 12 Mbps.
	if got, want := Airtime(AckBytes, Rate12), sim.Micros(32); got != want {
		t.Errorf("Airtime(14,12) = %v, want %v", got, want)
	}
	// 1500 B at 54 Mbps: 12022 bits / 216 = 56 symbols.
	if got, want := Airtime(1500, Rate54), sim.Micros(20+56*4); got != want {
		t.Errorf("Airtime(1500,54) = %v, want %v", got, want)
	}
	if Airtime(100, Rate6) <= Airtime(100, Rate54) {
		t.Error("lower rate should take longer")
	}
}

func TestSNRThresholds(t *testing.T) {
	rates := []Rate{Rate6, Rate9, Rate12, Rate18, Rate24, Rate36, Rate48, Rate54}
	prev := 0.0
	for _, r := range rates {
		th := SNRThresholdDB(r)
		if th <= prev {
			t.Errorf("threshold not increasing at rate %v: %v <= %v", r, th, prev)
		}
		prev = th
	}
	if SNRThresholdDB(Rate6) != 4 {
		t.Errorf("6 Mbps threshold = %v, want 4 (paper §3.1)", SNRThresholdDB(Rate6))
	}
	if got := SNRThresholdDB(Rate(0.5)); got != 4 {
		t.Errorf("sub-6Mbps fallback = %v, want 4", got)
	}
}

func TestDBmConversions(t *testing.T) {
	if got := DBmToMw(0); got != 1 {
		t.Errorf("DBmToMw(0) = %v", got)
	}
	if got := DBmToMw(-30); math.Abs(got-1e-3) > 1e-12 {
		t.Errorf("DBmToMw(-30) = %v", got)
	}
	for _, dbm := range []float64{-94, -85, -60, 0, 20} {
		if got := MwToDBm(DBmToMw(dbm)); math.Abs(got-dbm) > 1e-9 {
			t.Errorf("roundtrip %v -> %v", dbm, got)
		}
	}
}

func TestCleanDelivery(t *testing.T) {
	k, m, recs := newTestMedium(t, uniformRSS(2, -60))
	f := &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12}
	k.At(0, func() { m.Transmit(0, f) })
	k.Run()
	if len(recs[1].frames) != 1 || !recs[1].oks[0] {
		t.Fatalf("node 1: frames=%d oks=%v", len(recs[1].frames), recs[1].oks)
	}
	if len(recs[0].frames) != 0 {
		t.Fatal("sender received its own frame")
	}
	if m.Delivered != 1 || m.Corrupted != 0 {
		t.Fatalf("counters: delivered=%d corrupted=%d", m.Delivered, m.Corrupted)
	}
}

func TestDeliveryTiming(t *testing.T) {
	k, m, _ := newTestMedium(t, uniformRSS(2, -60))
	f := &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12}
	var endAt sim.Time
	m2 := m
	k.At(0, func() { m2.Transmit(0, f) })
	k.At(0, func() {}) // noop to keep kernel running
	k.Run()
	endAt = k.Now()
	if endAt != f.AirTime() {
		t.Fatalf("frame ended at %v, want %v", endAt, f.AirTime())
	}
}

func TestCollisionBothFail(t *testing.T) {
	// Three nodes all at -60 dBm of each other; 0 and 2 transmit to 1
	// simultaneously with equal power: SINR ~ 0 dB, both frames fail.
	k, m, recs := newTestMedium(t, uniformRSS(3, -60))
	k.At(0, func() {
		m.Transmit(0, &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12})
		m.Transmit(2, &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12})
	})
	k.Run()
	if len(recs[1].frames) != 2 {
		t.Fatalf("node 1 saw %d frames", len(recs[1].frames))
	}
	for i, ok := range recs[1].oks {
		if ok {
			t.Errorf("frame %d decoded despite equal-power collision", i)
		}
	}
}

func TestCapture(t *testing.T) {
	// Strong frame (-50 dBm) vs weak interferer (-80 dBm): 30 dB SINR, the
	// strong frame survives, the weak one dies.
	rss := uniformRSS(3, -60)
	rss[0][1] = -50
	rss[2][1] = -80
	k, m, recs := newTestMedium(t, rss)
	k.At(0, func() {
		m.Transmit(0, &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12})
		m.Transmit(2, &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12})
	})
	k.Run()
	okByPower := map[float64]bool{}
	for i, f := range recs[1].frames {
		okByPower[rss[f.Src][1]] = recs[1].oks[i]
	}
	if !okByPower[-50] {
		t.Error("strong frame not captured")
	}
	if okByPower[-80] {
		t.Error("weak frame decoded under 30 dB stronger interference")
	}
}

func TestLateInterfererCorruptsInFlightFrame(t *testing.T) {
	k, m, recs := newTestMedium(t, uniformRSS(3, -60))
	f := &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12}
	k.At(0, func() { m.Transmit(0, f) })
	// Interferer starts halfway through the frame.
	k.At(f.AirTime()/2, func() {
		m.Transmit(2, &Frame{Kind: Data, Dst: 1, Bytes: 64, Rate: Rate12})
	})
	k.Run()
	for i, fr := range recs[1].frames {
		if fr.Src == 0 && recs[1].oks[i] {
			t.Error("frame survived a mid-flight equal-power collision")
		}
	}
}

func TestHalfDuplex(t *testing.T) {
	k, m, recs := newTestMedium(t, uniformRSS(2, -50))
	// Node 1 starts transmitting while node 0's frame is in flight toward it.
	f := &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12}
	k.At(0, func() { m.Transmit(0, f) })
	k.At(10*sim.Microsecond, func() {
		m.Transmit(1, &Frame{Kind: Data, Dst: 0, Bytes: 64, Rate: Rate12})
	})
	k.Run()
	for i, fr := range recs[1].frames {
		if fr.Src == 0 && recs[1].oks[i] {
			t.Error("node decoded a frame while transmitting")
		}
	}
	// Node 0's reception of node 1's frame also fails: node 0 was
	// transmitting when it started.
	for i, fr := range recs[0].frames {
		if fr.Src == 1 && recs[0].oks[i] {
			t.Error("transmitter decoded an overlapping inbound frame")
		}
	}
}

func TestTransmitWhileTransmittingPanics(t *testing.T) {
	k, m, _ := newTestMedium(t, uniformRSS(2, -50))
	k.At(0, func() {
		m.Transmit(0, &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12})
		defer func() {
			if recover() == nil {
				t.Error("double transmit did not panic")
			}
		}()
		m.Transmit(0, &Frame{Kind: Data, Dst: 1, Bytes: 64, Rate: Rate12})
	})
	k.Run()
}

func TestCarrierSenseNotifications(t *testing.T) {
	k, m, recs := newTestMedium(t, uniformRSS(2, -60)) // above CS threshold
	f := &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12}
	k.At(0, func() { m.Transmit(0, f) })
	k.Run()
	if len(recs[1].carrier) != 2 || !recs[1].carrier[0] || recs[1].carrier[1] {
		t.Fatalf("carrier transitions at node 1 = %v, want [true false]", recs[1].carrier)
	}
	if len(recs[0].carrier) != 0 {
		t.Fatalf("sender saw its own carrier: %v", recs[0].carrier)
	}
}

func TestCarrierBelowThresholdSilent(t *testing.T) {
	// -90 dBm is below the -85 CS threshold: no carrier events, but the frame
	// is still delivered (its SNR is 4 dB, enough for 6 Mbps but the frame is
	// sent at 12, so it arrives corrupted).
	k, m, recs := newTestMedium(t, uniformRSS(2, -90))
	k.At(0, func() { m.Transmit(0, &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12}) })
	k.Run()
	if len(recs[1].carrier) != 0 {
		t.Fatalf("carrier events for sub-threshold signal: %v", recs[1].carrier)
	}
	if len(recs[1].frames) != 1 || recs[1].oks[0] {
		t.Fatalf("frames=%d oks=%v, want delivered-but-corrupt", len(recs[1].frames), recs[1].oks)
	}
}

func TestBusyAndHears(t *testing.T) {
	rss := uniformRSS(3, -60)
	rss[0][2] = -92 // 2 cannot sense 0
	rss[2][0] = -92
	k, m, _ := newTestMedium(t, rss)
	if m.Hears(0, 2) || !m.Hears(0, 1) {
		t.Fatal("Hears misclassifies")
	}
	k.At(0, func() {
		m.Transmit(0, &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12})
	})
	k.At(sim.Microsecond, func() {
		if !m.Busy(1) {
			t.Error("node 1 should sense busy")
		}
		if m.Busy(2) {
			t.Error("node 2 senses a hidden transmitter")
		}
		if !m.Busy(0) {
			t.Error("a transmitting node must report busy")
		}
		if !m.Transmitting(0) || m.Transmitting(1) {
			t.Error("Transmitting misreports")
		}
	})
	k.Run()
}

func TestWeakInterferenceStillCounts(t *testing.T) {
	// Signal at 7 dB SNR exactly meets the 12 Mbps threshold; an interferer
	// below the delivery floor still raises the noise enough to kill it.
	rss := uniformRSS(3, -95)
	rss[0][1] = -87 // SNR 7 dB
	rss[2][1] = -95 // below deliver floor (-94) but real energy
	k, m, recs := newTestMedium(t, rss)
	k.At(0, func() {
		m.Transmit(0, &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12})
		m.Transmit(2, &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12})
	})
	k.Run()
	var sawStrong bool
	for i, f := range recs[1].frames {
		if f.Src == 0 {
			sawStrong = true
			if recs[1].oks[i] {
				t.Error("borderline frame survived sub-floor interference")
			}
		}
		if f.Src == 2 {
			t.Error("sub-floor frame should not be delivered at all")
		}
	}
	if !sawStrong {
		t.Fatal("strong frame never delivered")
	}
}

func TestInRange(t *testing.T) {
	rss := uniformRSS(2, -87) // SNR 7
	_, m, _ := newTestMedium(t, rss)
	if !m.InRange(0, 1, Rate12) {
		t.Error("SNR 7 should decode 12 Mbps")
	}
	if m.InRange(0, 1, Rate18) {
		t.Error("SNR 7 should not decode 18 Mbps")
	}
	if m.SNRdB(0, 1) != 7 {
		t.Errorf("SNRdB = %v", m.SNRdB(0, 1))
	}
}

func TestSignatureSurvivesSignatureCollision(t *testing.T) {
	// Two triggers carrying ≤4 combined signatures overlap: both detected.
	k, m, recs := newTestMedium(t, uniformRSS(3, -60))
	sig := func(ids ...int) *Frame {
		return &Frame{Kind: Signature, Dst: Broadcast, Duration: SignatureDuration,
			Payload: &SignaturePayload{Sigs: ids}}
	}
	k.At(0, func() {
		m.Transmit(0, sig(1, 2))
		m.Transmit(2, sig(3, 4))
	})
	k.Run()
	if len(recs[1].frames) != 2 {
		t.Fatalf("node 1 saw %d signature frames", len(recs[1].frames))
	}
	for i, ok := range recs[1].oks {
		if !ok {
			t.Errorf("signature frame %d lost in a 4-combined collision (det=%+v)",
				i, recs[1].dets[i])
		}
		if recs[1].dets[i].Combined != 4 {
			t.Errorf("combined = %d, want 4", recs[1].dets[i].Combined)
		}
	}
}

func TestSignatureOverloadDetectionDegrades(t *testing.T) {
	// Detector that refuses anything over 4 combined: with two triggers of 3
	// signatures each (6 in the air), detection must fail.
	cfg := DefaultConfig()
	cfg.Detector = func(n int) float64 {
		if n <= 4 {
			return 1
		}
		return 0
	}
	k := sim.New(1)
	m := NewMedium(k, uniformRSS(3, -60), cfg)
	rec := &recorder{}
	m.Register(1, rec)
	m.Register(0, &recorder{})
	m.Register(2, &recorder{})
	sig := func(ids ...int) *Frame {
		return &Frame{Kind: Signature, Dst: Broadcast, Duration: SignatureDuration,
			Payload: &SignaturePayload{Sigs: ids}}
	}
	k.At(0, func() {
		m.Transmit(0, sig(1, 2, 3))
		m.Transmit(2, sig(4, 5, 6))
	})
	k.Run()
	for i, ok := range rec.oks {
		if ok {
			t.Errorf("frame %d detected with 6 combined signatures", i)
		}
		if rec.dets[i].Combined != 6 {
			t.Errorf("combined = %d, want 6", rec.dets[i].Combined)
		}
	}
}

func TestSignatureKilledByStrongData(t *testing.T) {
	// A data frame 15 dB above the signature exceeds the -10 dB correlator
	// margin… it should NOT: -15 dB SINR < -10 dB threshold -> lost.
	rss := uniformRSS(3, -60)
	rss[0][1] = -75 // signature source, weak
	rss[2][1] = -60 // data interferer, strong
	k, m, recs := newTestMedium(t, rss)
	k.At(0, func() {
		m.Transmit(0, &Frame{Kind: Signature, Dst: Broadcast, Duration: SignatureDuration,
			Payload: &SignaturePayload{Sigs: []int{1}}})
		m.Transmit(2, &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12})
	})
	k.Run()
	for i, f := range recs[1].frames {
		if f.Kind == Signature && recs[1].oks[i] {
			t.Error("signature detected 15 dB under a data frame")
		}
	}
}

func TestSignatureSurvivesModerateData(t *testing.T) {
	// Signature only 5 dB under a data frame: within the correlator margin.
	rss := uniformRSS(3, -60)
	rss[0][1] = -65 // signature source
	rss[2][1] = -60 // data interferer
	k, m, recs := newTestMedium(t, rss)
	k.At(0, func() {
		m.Transmit(0, &Frame{Kind: Signature, Dst: Broadcast, Duration: SignatureDuration,
			Payload: &SignaturePayload{Sigs: []int{1}}})
		m.Transmit(2, &Frame{Kind: Data, Dst: 1, Bytes: 512, Rate: Rate12})
	})
	k.Run()
	found := false
	for i, f := range recs[1].frames {
		if f.Kind == Signature {
			found = true
			if !recs[1].oks[i] {
				t.Error("signature lost at -5 dB SINR, inside correlator margin")
			}
		}
	}
	if !found {
		t.Fatal("signature frame not delivered")
	}
}

func TestFrameKindString(t *testing.T) {
	for k, want := range map[FrameKind]string{
		Data: "DATA", Ack: "ACK", Poll: "POLL", Report: "REPORT",
		Signature: "SIG", FakeHeader: "FAKE", FrameKind(99): "FrameKind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestDefaultDetectorShape(t *testing.T) {
	for n := 0; n <= 4; n++ {
		if p := DefaultDetector(n); p < 0.99 {
			t.Errorf("DefaultDetector(%d) = %v, want ~1 (paper Fig 9)", n, p)
		}
	}
	prev := 1.0
	for n := 4; n <= 10; n++ {
		p := DefaultDetector(n)
		if p > prev {
			t.Errorf("detection curve not monotone at %d", n)
		}
		prev = p
	}
	if DefaultDetector(7) >= DefaultDetector(4) {
		t.Error("7 combined should detect worse than 4")
	}
}

func BenchmarkMediumBroadcastChurn(b *testing.B) {
	k := sim.New(1)
	m := NewMedium(k, uniformRSS(40, -70), DefaultConfig())
	for i := 0; i < 40; i++ {
		m.Register(NodeID(i), &recorder{})
	}
	b.ResetTimer()
	n := 0
	var send func()
	send = func() {
		m.Transmit(NodeID(n%40), &Frame{Kind: Data, Dst: Broadcast, Bytes: 512, Rate: Rate12})
		n++
		if n < b.N {
			k.After(400*sim.Microsecond, send)
		}
	}
	k.At(0, send)
	k.Run()
}
