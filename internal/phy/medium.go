package phy

import (
	"fmt"

	"repro/internal/sim"
)

// Medium is the shared radio channel. All methods must be called from inside
// the simulation event loop (the kernel is single-threaded).
type Medium struct {
	k     *sim.Kernel
	cfg   Config
	rss   [][]float64 // rss[i][j]: dBm received at j when i transmits
	nodes []nodeState

	csMw    float64
	floorMw float64
	noiseMw float64

	// Counters for tests and reporting.
	Transmissions int
	Delivered     int
	Corrupted     int

	probe Probe
}

// Probe observes medium activity for the observability layer. Callbacks run
// inside the event loop after the medium state has settled; implementations
// must not transmit or block. The medium stays obs-agnostic: obs implements
// this interface, nothing here imports it.
type Probe interface {
	// TxStart fires when a frame goes on the air.
	TxStart(f *Frame, now sim.Time)
	// TxEnd fires when the frame leaves the air, before receptions are
	// judged and listeners notified.
	TxEnd(f *Frame, now sim.Time)
	// RxOutcome fires once per judged reception with its decode outcome.
	RxOutcome(f *Frame, at NodeID, ok bool, now sim.Time)
}

// SetProbe installs the activity probe (nil disables, the default). The
// disabled cost is one nil check per transmission start/end.
func (m *Medium) SetProbe(p Probe) { m.probe = p }

type nodeState struct {
	listener Listener
	// totalMw is the summed received power (mW) of all active transmissions
	// heard at this node, excluding its own.
	totalMw float64
	// sigMw is the portion of totalMw contributed by Signature frames.
	sigMw float64
	// activeSigs tracks concurrent signature transmissions audible here,
	// with their received power: the combined-detection load for a
	// correlator counts only signatures comparable in power to its target
	// (weaker ones vanish under the spreading gain).
	activeSigs []sigRec
	tx         *transmission
	busy       bool
	recs       []*reception
}

type sigRec struct {
	tx      *transmission
	powerMw float64
	n       int
}

// combinedSigsNear sums the signature counts of active transmissions whose
// power is within 10 dB of the target's.
func (ns *nodeState) combinedSigsNear(targetMw float64) int {
	total := 0
	for _, r := range ns.activeSigs {
		if r.powerMw >= targetMw/10 {
			total += r.n
		}
	}
	return total
}

type transmission struct {
	frame *Frame
	src   NodeID
	// powerMw[j] is this transmission's received power at node j, cached so
	// start and end adjust node totals by exactly the same amount.
	powerMw []float64
	recs    []*reception
}

type reception struct {
	tx      *transmission
	at      NodeID
	powerMw float64
	// interfMaxMw is the worst instantaneous interference-plus-noise (mW)
	// observed during the frame. For Signature frames, signature-frame power
	// is excluded (orthogonal codes) and maxSigs tracks the combination load.
	interfMaxMw float64
	maxSigs     int
	failed      bool // half-duplex violation
}

// NewMedium builds a medium over the given RSS matrix (dBm, indexed
// [src][dst]; the diagonal is ignored). The matrix is retained, not copied.
func NewMedium(k *sim.Kernel, rssDBm [][]float64, cfg Config) *Medium {
	n := len(rssDBm)
	for i, row := range rssDBm {
		if len(row) != n {
			panic(fmt.Sprintf("phy: rss row %d has %d entries, want %d", i, len(row), n))
		}
	}
	if cfg.Detector == nil {
		cfg.Detector = DefaultDetector
	}
	return &Medium{
		k:       k,
		cfg:     cfg,
		rss:     rssDBm,
		nodes:   make([]nodeState, n),
		csMw:    DBmToMw(cfg.CSThreshDBm),
		floorMw: DBmToMw(cfg.DeliverFloorDBm),
		noiseMw: DBmToMw(cfg.NoiseDBm),
	}
}

// NumNodes returns the number of radios on the medium.
func (m *Medium) NumNodes() int { return len(m.nodes) }

// Kernel returns the simulation kernel driving the medium.
func (m *Medium) Kernel() *sim.Kernel { return m.k }

// Config returns the medium's parameters.
func (m *Medium) Config() Config { return m.cfg }

// Register installs the listener for a node. At most one listener per node.
func (m *Medium) Register(n NodeID, l Listener) {
	if m.nodes[n].listener != nil {
		panic(fmt.Sprintf("phy: node %d already has a listener", n))
	}
	m.nodes[n].listener = l
}

// RSS returns the received signal strength (dBm) at dst when src transmits.
func (m *Medium) RSS(src, dst NodeID) float64 { return m.rss[src][dst] }

// SNRdB returns the interference-free SNR of the src→dst channel.
func (m *Medium) SNRdB(src, dst NodeID) float64 {
	return m.rss[src][dst] - m.cfg.NoiseDBm
}

// InRange reports whether dst can decode a frame from src at the given rate
// with no interference present.
func (m *Medium) InRange(src, dst NodeID, rate Rate) bool {
	return m.rss[src][dst] >= m.cfg.DeliverFloorDBm &&
		m.SNRdB(src, dst) >= SNRThresholdDB(rate)
}

// Hears reports whether dst's carrier sense detects src's transmissions.
func (m *Medium) Hears(src, dst NodeID) bool {
	return m.rss[src][dst] >= m.cfg.CSThreshDBm
}

// Busy reports the carrier-sense state at n: energy from other transmitters
// above the CS threshold, or n itself transmitting.
func (m *Medium) Busy(n NodeID) bool {
	return m.nodes[n].tx != nil || m.nodes[n].totalMw >= m.csMw
}

// Transmitting reports whether n is currently transmitting.
func (m *Medium) Transmitting(n NodeID) bool { return m.nodes[n].tx != nil }

// Transmit puts a frame on the air from src. The frame occupies the medium
// for its AirTime; reception outcomes are delivered to listeners when it
// ends. Transmitting while already transmitting panics (a MAC bug).
func (m *Medium) Transmit(src NodeID, f *Frame) {
	ns := &m.nodes[src]
	if ns.tx != nil {
		panic(fmt.Sprintf("phy: node %d transmit while transmitting (%v over %v)",
			src, f.Kind, ns.tx.frame.Kind))
	}
	f.Src = src
	m.Transmissions++
	tx := &transmission{frame: f, src: src, powerMw: make([]float64, len(m.nodes))}
	ns.tx = tx

	// Half-duplex: starting a transmission destroys anything the node was
	// receiving.
	for _, r := range ns.recs {
		r.failed = true
	}

	sig := f.Kind == Signature
	var sigN int
	if sig {
		if p, ok := f.Payload.(*SignaturePayload); ok {
			sigN = p.Combined()
		} else {
			sigN = 1
		}
	}

	var carrier []NodeID
	for j := range m.nodes {
		if NodeID(j) == src {
			continue
		}
		p := DBmToMw(m.rss[src][j])
		tx.powerMw[j] = p
		dst := &m.nodes[j]
		dst.totalMw += p
		if sig {
			dst.sigMw += p
			dst.activeSigs = append(dst.activeSigs, sigRec{tx: tx, powerMw: p, n: sigN})
		}
		// Raise the observed interference for every in-flight reception.
		for _, r := range dst.recs {
			m.foldInterference(r, dst)
		}
		// Start a reception if the frame is strong enough to matter.
		if dst.listener != nil && p >= m.floorMw {
			r := &reception{tx: tx, at: NodeID(j), powerMw: p, failed: dst.tx != nil}
			m.foldInterference(r, dst)
			dst.recs = append(dst.recs, r)
			tx.recs = append(tx.recs, r)
		}
		if m.carrierFlipped(dst) {
			carrier = append(carrier, NodeID(j))
		}
	}
	if m.probe != nil {
		m.probe.TxStart(f, m.k.Now())
	}
	// Notify only after the medium state has fully settled: a listener may
	// react by transmitting, which re-enters this method.
	m.notifyCarrier(carrier)

	m.k.After(f.AirTime(), func() { m.endTransmission(tx, sig, sigN) }).SetSource(sim.SrcPHY)
}

// foldInterference updates r's worst-case interference from the current state
// at node dst.
func (m *Medium) foldInterference(r *reception, dst *nodeState) {
	var interf float64
	if r.tx.frame.Kind == Signature {
		// Orthogonal spreading: other signatures do not count as noise, but
		// the combination load of comparably strong ones does.
		interf = dst.totalMw - dst.sigMw + m.noiseMw
		if n := dst.combinedSigsNear(r.powerMw); n > r.maxSigs {
			r.maxSigs = n
		}
	} else {
		interf = dst.totalMw - r.powerMw + m.noiseMw
	}
	if interf < m.noiseMw { // guard against FP residue
		interf = m.noiseMw
	}
	if interf > r.interfMaxMw {
		r.interfMaxMw = interf
	}
}

func (m *Medium) endTransmission(tx *transmission, sig bool, sigN int) {
	m.nodes[tx.src].tx = nil
	var carrier []NodeID
	for j := range m.nodes {
		if NodeID(j) == tx.src {
			continue
		}
		dst := &m.nodes[j]
		dst.totalMw -= tx.powerMw[j]
		if dst.totalMw < 0 { // guard against FP residue
			dst.totalMw = 0
		}
		if sig {
			dst.sigMw -= tx.powerMw[j]
			if dst.sigMw < 0 {
				dst.sigMw = 0
			}
			for i, r := range dst.activeSigs {
				if r.tx == tx {
					dst.activeSigs[i] = dst.activeSigs[len(dst.activeSigs)-1]
					dst.activeSigs = dst.activeSigs[:len(dst.activeSigs)-1]
					break
				}
			}
		}
		if m.carrierFlipped(dst) {
			carrier = append(carrier, NodeID(j))
		}
	}
	// Judge receptions while the state is settled, then notify: carrier
	// transitions first (the channel went idle as the frame ended), then the
	// frame outcomes.
	type outcome struct {
		r   *reception
		ok  bool
		det *SignatureDetection
	}
	outcomes := make([]outcome, 0, len(tx.recs))
	if m.probe != nil {
		m.probe.TxEnd(tx.frame, m.k.Now())
	}
	for _, r := range tx.recs {
		dst := &m.nodes[r.at]
		dst.recs = removeReception(dst.recs, r)
		ok, det := m.judge(r)
		if ok {
			m.Delivered++
		} else {
			m.Corrupted++
		}
		if m.probe != nil {
			m.probe.RxOutcome(tx.frame, r.at, ok, m.k.Now())
		}
		outcomes = append(outcomes, outcome{r, ok, det})
	}
	m.notifyCarrier(carrier)
	for _, o := range outcomes {
		m.nodes[o.r.at].listener.FrameReceived(tx.frame, o.ok, o.det)
	}
}

// judge decides a reception's outcome at frame end.
func (m *Medium) judge(r *reception) (bool, *SignatureDetection) {
	sinr := MwToDBm(r.powerMw) - MwToDBm(r.interfMaxMw)
	if r.tx.frame.Kind != Signature {
		return !r.failed && sinr >= SNRThresholdDB(r.tx.frame.Rate), nil
	}
	det := &SignatureDetection{Combined: r.maxSigs, SINRdB: sinr}
	if r.failed || sinr < m.cfg.SigSINRdB {
		return false, det
	}
	p := m.cfg.Detector(r.maxSigs)
	return m.k.Rand().Float64() < p, det
}

func removeReception(recs []*reception, r *reception) []*reception {
	for i, x := range recs {
		if x == r {
			recs[i] = recs[len(recs)-1]
			return recs[:len(recs)-1]
		}
	}
	return recs
}

// carrierFlipped records a carrier-sense transition at the node and reports
// whether a listener notification is due.
func (m *Medium) carrierFlipped(ns *nodeState) bool {
	busy := ns.totalMw >= m.csMw
	if busy == ns.busy {
		return false
	}
	ns.busy = busy
	return ns.listener != nil
}

func (m *Medium) notifyCarrier(ids []NodeID) {
	for _, id := range ids {
		ns := &m.nodes[id]
		ns.listener.CarrierChanged(ns.busy)
	}
}
