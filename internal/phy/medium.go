package phy

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Medium is the shared radio channel. All methods must be called from inside
// the simulation event loop (the kernel is single-threaded).
type Medium struct {
	k     *sim.Kernel
	cfg   Config
	rss   [][]float64 // rss[i][j]: dBm received at j when i transmits
	rssMw [][]float64 // rss converted to mW once; Transmit is pow-free
	nodes []nodeState

	csMw    float64
	floorMw float64
	noiseMw float64

	// Counters for tests and reporting.
	Transmissions int
	Delivered     int
	Corrupted     int

	probe Probe

	// Free lists. Transmissions and receptions churn once per frame; pooling
	// them (with their power vectors and reception lists) keeps the per-frame
	// path allocation-free in steady state. The scratch stacks below are
	// pools too, but stack-shaped: Transmit re-enters itself when a notified
	// listener reacts by transmitting, so each nesting level pops its own
	// buffer and pushes it back when done.
	txFree       []*transmission
	rxFree       []*reception
	carrierFree  [][]NodeID
	outcomesFree [][]outcome
}

type outcome struct {
	r   *reception
	ok  bool
	det *SignatureDetection
}

// Probe observes medium activity for the observability layer. Callbacks run
// inside the event loop after the medium state has settled; implementations
// must not transmit or block. The medium stays obs-agnostic: obs implements
// this interface, nothing here imports it.
type Probe interface {
	// TxStart fires when a frame goes on the air.
	TxStart(f *Frame, now sim.Time)
	// TxEnd fires when the frame leaves the air, before receptions are
	// judged and listeners notified.
	TxEnd(f *Frame, now sim.Time)
	// RxOutcome fires once per judged reception with its decode outcome.
	RxOutcome(f *Frame, at NodeID, ok bool, now sim.Time)
}

// SetProbe installs the activity probe (nil disables, the default). The
// disabled cost is one nil check per transmission start/end.
func (m *Medium) SetProbe(p Probe) { m.probe = p }

type nodeState struct {
	listener Listener
	// totalMw is the summed received power (mW) of all active transmissions
	// heard at this node, excluding its own.
	totalMw float64
	// sigMw is the portion of totalMw contributed by Signature frames.
	sigMw float64
	// activeSigs tracks concurrent signature transmissions audible here,
	// with their received power: the combined-detection load for a
	// correlator counts only signatures comparable in power to its target
	// (weaker ones vanish under the spreading gain).
	activeSigs []sigRec
	tx         *transmission
	busy       bool
	recs       []*reception
}

type sigRec struct {
	tx      *transmission
	powerMw float64
	n       int
}

// combinedSigsNear sums the signature counts of active transmissions whose
// power is within 10 dB of the target's.
func (ns *nodeState) combinedSigsNear(targetMw float64) int {
	total := 0
	for _, r := range ns.activeSigs {
		if r.powerMw >= targetMw/10 {
			total += r.n
		}
	}
	return total
}

type transmission struct {
	frame *Frame
	src   NodeID
	// powerMw[j] is this transmission's received power at node j, cached so
	// start and end adjust node totals by exactly the same amount.
	powerMw []float64
	recs    []*reception
	sig     bool
	sigN    int
	// end is built once per pooled struct and rescheduled on every reuse, so
	// the air-time timer costs no closure allocation per frame.
	end func()
}

type reception struct {
	tx      *transmission
	at      NodeID
	powerMw float64
	// interfMaxMw is the worst instantaneous interference-plus-noise (mW)
	// observed during the frame. For Signature frames, signature-frame power
	// is excluded (orthogonal codes) and maxSigs tracks the combination load.
	interfMaxMw float64
	maxSigs     int
	failed      bool // half-duplex violation
	// det is the signature-detection report handed to the listener, embedded
	// here so judging a signature frame allocates nothing. The pointer is
	// only valid during the FrameReceived callback (the reception recycles
	// right after), and no listener retains it.
	det SignatureDetection
}

// NewMedium builds a medium over the given RSS matrix (dBm, indexed
// [src][dst]; the diagonal is ignored). The matrix is retained, not copied.
func NewMedium(k *sim.Kernel, rssDBm [][]float64, cfg Config) *Medium {
	n := len(rssDBm)
	for i, row := range rssDBm {
		if len(row) != n {
			panic(fmt.Sprintf("phy: rss row %d has %d entries, want %d", i, len(row), n))
		}
	}
	if cfg.Detector == nil {
		cfg.Detector = DefaultDetector
	}
	// The RSS matrix is fixed for the medium's lifetime, so the dBm→mW
	// conversion (a pow per pair) runs once here instead of on every
	// transmission's per-node loop.
	rssMw := make([][]float64, n)
	for i, row := range rssDBm {
		rssMw[i] = make([]float64, n)
		for j, dbm := range row {
			rssMw[i][j] = DBmToMw(dbm)
		}
	}
	return &Medium{
		k:       k,
		cfg:     cfg,
		rss:     rssDBm,
		rssMw:   rssMw,
		nodes:   make([]nodeState, n),
		csMw:    DBmToMw(cfg.CSThreshDBm),
		floorMw: DBmToMw(cfg.DeliverFloorDBm),
		noiseMw: DBmToMw(cfg.NoiseDBm),
	}
}

// allocTx returns a pooled transmission with its power vector and reception
// list ready for reuse.
func (m *Medium) allocTx() *transmission {
	if n := len(m.txFree) - 1; n >= 0 {
		tx := m.txFree[n]
		m.txFree[n] = nil
		m.txFree = m.txFree[:n]
		return tx
	}
	tx := &transmission{powerMw: make([]float64, len(m.nodes))}
	tx.end = func() { m.endTransmission(tx) }
	return tx
}

func (m *Medium) releaseTx(tx *transmission) {
	tx.frame = nil
	tx.recs = tx.recs[:0]
	m.txFree = append(m.txFree, tx)
}

func (m *Medium) allocRx() *reception {
	if n := len(m.rxFree) - 1; n >= 0 {
		r := m.rxFree[n]
		m.rxFree[n] = nil
		m.rxFree = m.rxFree[:n]
		*r = reception{}
		return r
	}
	return new(reception)
}

func (m *Medium) releaseRx(r *reception) {
	r.tx = nil
	m.rxFree = append(m.rxFree, r)
}

// popCarrier/pushCarrier manage the carrier-notification scratch as a stack:
// nested Transmit calls (a listener transmitting in reaction to a carrier
// flip) each get their own buffer.
func (m *Medium) popCarrier() []NodeID {
	if n := len(m.carrierFree) - 1; n >= 0 {
		buf := m.carrierFree[n]
		m.carrierFree = m.carrierFree[:n]
		return buf
	}
	return make([]NodeID, 0, len(m.nodes))
}

func (m *Medium) pushCarrier(buf []NodeID) {
	m.carrierFree = append(m.carrierFree, buf[:0])
}

func (m *Medium) popOutcomes() []outcome {
	if n := len(m.outcomesFree) - 1; n >= 0 {
		buf := m.outcomesFree[n]
		m.outcomesFree = m.outcomesFree[:n]
		return buf
	}
	return make([]outcome, 0, len(m.nodes))
}

func (m *Medium) pushOutcomes(buf []outcome) {
	for i := range buf {
		buf[i] = outcome{}
	}
	m.outcomesFree = append(m.outcomesFree, buf[:0])
}

// NumNodes returns the number of radios on the medium.
func (m *Medium) NumNodes() int { return len(m.nodes) }

// Kernel returns the simulation kernel driving the medium.
func (m *Medium) Kernel() *sim.Kernel { return m.k }

// Config returns the medium's parameters.
func (m *Medium) Config() Config { return m.cfg }

// Register installs the listener for a node. At most one listener per node.
func (m *Medium) Register(n NodeID, l Listener) {
	if m.nodes[n].listener != nil {
		panic(fmt.Sprintf("phy: node %d already has a listener", n))
	}
	m.nodes[n].listener = l
}

// RSS returns the received signal strength (dBm) at dst when src transmits.
func (m *Medium) RSS(src, dst NodeID) float64 { return m.rss[src][dst] }

// SNRdB returns the interference-free SNR of the src→dst channel.
func (m *Medium) SNRdB(src, dst NodeID) float64 {
	return m.rss[src][dst] - m.cfg.NoiseDBm
}

// InRange reports whether dst can decode a frame from src at the given rate
// with no interference present.
func (m *Medium) InRange(src, dst NodeID, rate Rate) bool {
	return m.rss[src][dst] >= m.cfg.DeliverFloorDBm &&
		m.SNRdB(src, dst) >= SNRThresholdDB(rate)
}

// Hears reports whether dst's carrier sense detects src's transmissions.
func (m *Medium) Hears(src, dst NodeID) bool {
	return m.rss[src][dst] >= m.cfg.CSThreshDBm
}

// Busy reports the carrier-sense state at n: energy from other transmitters
// above the CS threshold, or n itself transmitting.
func (m *Medium) Busy(n NodeID) bool {
	return m.nodes[n].tx != nil || m.nodes[n].totalMw >= m.csMw
}

// Transmitting reports whether n is currently transmitting.
func (m *Medium) Transmitting(n NodeID) bool { return m.nodes[n].tx != nil }

// Transmit puts a frame on the air from src. The frame occupies the medium
// for its AirTime; reception outcomes are delivered to listeners when it
// ends. Transmitting while already transmitting panics (a MAC bug).
func (m *Medium) Transmit(src NodeID, f *Frame) {
	ns := &m.nodes[src]
	if ns.tx != nil {
		panic(fmt.Sprintf("phy: node %d transmit while transmitting (%v over %v)",
			src, f.Kind, ns.tx.frame.Kind))
	}
	f.Src = src
	m.Transmissions++
	tx := m.allocTx()
	tx.frame = f
	tx.src = src
	ns.tx = tx

	// Half-duplex: starting a transmission destroys anything the node was
	// receiving.
	for _, r := range ns.recs {
		r.failed = true
	}

	sig := f.Kind == Signature
	var sigN int
	if sig {
		if p, ok := f.Payload.(*SignaturePayload); ok {
			sigN = p.Combined()
		} else {
			sigN = 1
		}
	}
	tx.sig, tx.sigN = sig, sigN

	rowMw := m.rssMw[src]
	carrier := m.popCarrier()
	for j := range m.nodes {
		if NodeID(j) == src {
			continue
		}
		p := rowMw[j]
		tx.powerMw[j] = p
		dst := &m.nodes[j]
		dst.totalMw += p
		if sig {
			dst.sigMw += p
			dst.activeSigs = append(dst.activeSigs, sigRec{tx: tx, powerMw: p, n: sigN})
		}
		// Raise the observed interference for every in-flight reception.
		for _, r := range dst.recs {
			m.foldInterference(r, dst)
		}
		// Start a reception if the frame is strong enough to matter.
		if dst.listener != nil && p >= m.floorMw {
			r := m.allocRx()
			r.tx, r.at, r.powerMw, r.failed = tx, NodeID(j), p, dst.tx != nil
			m.foldInterference(r, dst)
			dst.recs = append(dst.recs, r)
			tx.recs = append(tx.recs, r)
		}
		if m.carrierFlipped(dst) {
			carrier = append(carrier, NodeID(j))
		}
	}
	if m.probe != nil {
		m.probe.TxStart(f, m.k.Now())
	}
	// Notify only after the medium state has fully settled: a listener may
	// react by transmitting, which re-enters this method.
	m.notifyCarrier(carrier)
	m.pushCarrier(carrier)

	m.k.After(f.AirTime(), tx.end).SetSource(sim.SrcPHY)
}

// foldInterference updates r's worst-case interference from the current state
// at node dst.
func (m *Medium) foldInterference(r *reception, dst *nodeState) {
	var interf float64
	if r.tx.frame.Kind == Signature {
		// Orthogonal spreading: other signatures do not count as noise, but
		// the combination load of comparably strong ones does.
		interf = dst.totalMw - dst.sigMw + m.noiseMw
		if n := dst.combinedSigsNear(r.powerMw); n > r.maxSigs {
			r.maxSigs = n
		}
	} else {
		interf = dst.totalMw - r.powerMw + m.noiseMw
	}
	if interf < m.noiseMw { // guard against FP residue
		interf = m.noiseMw
	}
	if interf > r.interfMaxMw {
		r.interfMaxMw = interf
	}
}

func (m *Medium) endTransmission(tx *transmission) {
	sig := tx.sig
	m.nodes[tx.src].tx = nil
	carrier := m.popCarrier()
	for j := range m.nodes {
		if NodeID(j) == tx.src {
			continue
		}
		dst := &m.nodes[j]
		dst.totalMw -= tx.powerMw[j]
		if dst.totalMw < 0 { // guard against FP residue
			dst.totalMw = 0
		}
		if sig {
			dst.sigMw -= tx.powerMw[j]
			if dst.sigMw < 0 {
				dst.sigMw = 0
			}
			for i, r := range dst.activeSigs {
				if r.tx == tx {
					dst.activeSigs[i] = dst.activeSigs[len(dst.activeSigs)-1]
					dst.activeSigs = dst.activeSigs[:len(dst.activeSigs)-1]
					break
				}
			}
		}
		if m.carrierFlipped(dst) {
			carrier = append(carrier, NodeID(j))
		}
	}
	// Judge receptions while the state is settled, then notify: carrier
	// transitions first (the channel went idle as the frame ended), then the
	// frame outcomes.
	outcomes := m.popOutcomes()
	if m.probe != nil {
		m.probe.TxEnd(tx.frame, m.k.Now())
	}
	for _, r := range tx.recs {
		dst := &m.nodes[r.at]
		dst.recs = removeReception(dst.recs, r)
		ok, det := m.judge(r)
		if ok {
			m.Delivered++
		} else {
			m.Corrupted++
		}
		if m.probe != nil {
			m.probe.RxOutcome(tx.frame, r.at, ok, m.k.Now())
		}
		outcomes = append(outcomes, outcome{r, ok, det})
	}
	m.notifyCarrier(carrier)
	m.pushCarrier(carrier)
	frame := tx.frame
	for _, o := range outcomes {
		m.nodes[o.r.at].listener.FrameReceived(frame, o.ok, o.det)
	}
	// Recycle only after every callback ran: listeners must never observe a
	// reused struct mid-notification.
	for _, o := range outcomes {
		m.releaseRx(o.r)
	}
	m.pushOutcomes(outcomes)
	m.releaseTx(tx)
}

// judge decides a reception's outcome at frame end.
func (m *Medium) judge(r *reception) (bool, *SignatureDetection) {
	// One log instead of two: 10·log10(S/I) == S_dBm − I_dBm.
	sinr := 10 * math.Log10(r.powerMw/r.interfMaxMw)
	if r.tx.frame.Kind != Signature {
		return !r.failed && sinr >= SNRThresholdDB(r.tx.frame.Rate), nil
	}
	r.det = SignatureDetection{Combined: r.maxSigs, SINRdB: sinr}
	det := &r.det
	if r.failed || sinr < m.cfg.SigSINRdB {
		return false, det
	}
	p := m.cfg.Detector(r.maxSigs)
	return m.k.Rand().Float64() < p, det
}

func removeReception(recs []*reception, r *reception) []*reception {
	for i, x := range recs {
		if x == r {
			recs[i] = recs[len(recs)-1]
			return recs[:len(recs)-1]
		}
	}
	return recs
}

// carrierFlipped records a carrier-sense transition at the node and reports
// whether a listener notification is due.
func (m *Medium) carrierFlipped(ns *nodeState) bool {
	busy := ns.totalMw >= m.csMw
	if busy == ns.busy {
		return false
	}
	ns.busy = busy
	return ns.listener != nil
}

func (m *Medium) notifyCarrier(ids []NodeID) {
	for _, id := range ids {
		ns := &m.nodes[id]
		ns.listener.CarrierChanged(ns.busy)
	}
}
