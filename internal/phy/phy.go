// Package phy models the shared wireless medium every MAC engine in this
// repository runs on: an RSS matrix between nodes, SINR-based reception with
// interference integrated over each frame's air time, energy-based carrier
// sensing with listener callbacks, and the 802.11g ERP-OFDM frame timing.
//
// The model follows the conventions of packet-level wireless simulators
// (ns-2/ns-3 style): a frame is decodable iff the signal-to-interference-plus-
// noise ratio stays above the rate's threshold for the frame's whole duration,
// with interference tracked as the worst instantaneous sum of all concurrent
// transmissions. Signature frames (Gold-code triggers, paper §3.2) are special:
// orthogonal spreading lets them survive collisions with other signatures, so
// their SINR test counts only non-signature interference and the number of
// concurrently combined signatures is reported to the detector installed by
// the MAC engine.
package phy

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// NodeID identifies a radio attached to a Medium. IDs are dense indices into
// the RSS matrix.
type NodeID int

// Broadcast is the destination for frames addressed to every node in range.
const Broadcast NodeID = -1

// Rate is a PHY data rate in Mbps.
type Rate float64

// 802.11g ERP-OFDM rates.
const (
	Rate6  Rate = 6
	Rate9  Rate = 9
	Rate12 Rate = 12
	Rate18 Rate = 18
	Rate24 Rate = 24
	Rate36 Rate = 36
	Rate48 Rate = 48
	Rate54 Rate = 54
)

// 802.11g MAC/PHY timing constants (20 MHz ERP-OFDM).
var (
	// SlotTime is the 802.11 slot (9 µs), also the gap DOMINO leaves between
	// an ACK and the signature broadcast (paper Fig 8).
	SlotTime = sim.Micros(9)
	// SIFS separates a data frame from its ACK.
	SIFS = sim.Micros(10)
	// DIFS = SIFS + 2 slots, the idle period DCF requires before backoff.
	DIFS = SIFS + 2*SlotTime
	// PreambleDuration covers the PLCP preamble (16 µs) plus SIGNAL (4 µs).
	PreambleDuration = sim.Micros(20)
	// SymbolDuration is one OFDM data symbol.
	SymbolDuration = sim.Micros(4)
	// SignatureDuration is one length-127 Gold code at 20 MHz BPSK
	// (127 chips / 20 Mcps = 6.35 µs, paper §3.2).
	SignatureDuration = sim.Micros(6.35)
	// ROPSlotDuration is the air time of one polling exchange: poll packet,
	// one WiFi slot of turnaround, and the 16 µs control symbol with its CP
	// (paper §3.1, Fig 4), rounded up to cover processing slack.
	ROPSlotDuration = sim.Micros(80)
)

// AckBytes is the length of an 802.11 ACK frame.
const AckBytes = 14

// Airtime returns the duration of a frame of the given MAC-layer length at
// the given rate: PLCP preamble + SIGNAL plus ceil((service+tail+payload
// bits)/NDBPS) OFDM symbols.
func Airtime(bytes int, rate Rate) sim.Time {
	ndbps := float64(rate) * 4 // bits per 4 µs symbol at 20 MHz
	bits := float64(16 + 6 + 8*bytes)
	nsym := math.Ceil(bits / ndbps)
	return PreambleDuration + sim.Time(nsym)*SymbolDuration
}

// SNRThresholdDB returns the minimum SNR (dB) at which a frame of the given
// rate is decodable, from the ns-3 OFDM error-rate validation the paper cites
// ([29]: 6 Mbps is reliable from about 4 dB).
func SNRThresholdDB(rate Rate) float64 {
	switch rate {
	case Rate6:
		return 4
	case Rate9:
		return 5
	case Rate12:
		return 7
	case Rate18:
		return 9
	case Rate24:
		return 12
	case Rate36:
		return 16
	case Rate48:
		return 20
	case Rate54:
		return 21
	default:
		// Non-standard rates (e.g. the low-rate USRP prototype PHY): BPSK-like
		// robustness below 6 Mbps, log-scaled above.
		if rate <= 6 {
			return 4
		}
		return 4 + 6*math.Log2(float64(rate)/6)
	}
}

// DBmToMw converts decibel-milliwatts to milliwatts.
func DBmToMw(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MwToDBm converts milliwatts to decibel-milliwatts.
func MwToDBm(mw float64) float64 { return 10 * math.Log10(mw) }

// FrameKind distinguishes the frame types the MAC engines exchange.
type FrameKind int

const (
	// Data is a MAC data frame (or a TCP ACK riding as data).
	Data FrameKind = iota
	// Ack is a link-layer acknowledgement.
	Ack
	// Poll is an ROP polling request broadcast by an AP (paper §3.1).
	Poll
	// Report is the single OFDM control symbol carrying client queue sizes.
	// All clients of the polling AP send their Report concurrently on
	// orthogonal subchannels, so Reports never interfere with each other.
	Report
	// Signature is a Gold-code trigger broadcast (paper §3.2). Payload is a
	// SignaturePayload.
	Signature
	// FakeHeader is the header-only fake packet the converter schedules to
	// keep trigger chains alive (paper §3.3).
	FakeHeader
)

// String implements fmt.Stringer for trace output.
func (k FrameKind) String() string {
	switch k {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case Poll:
		return "POLL"
	case Report:
		return "REPORT"
	case Signature:
		return "SIG"
	case FakeHeader:
		return "FAKE"
	default:
		return fmt.Sprintf("FrameKind(%d)", int(k))
	}
}

// SignaturePayload is the content of a Signature frame: the signature IDs
// combined (summed) into this trigger broadcast, plus whether the special
// START (S′) or ROP signature terminates the sequence (paper §3.2–3.3).
type SignaturePayload struct {
	// Sigs holds the node-signature IDs summed into this broadcast.
	Sigs []int
	// Start marks the S′ START signature that authorises triggered nodes to
	// begin transmitting.
	Start bool
	// ROP marks the ROP signature variant: triggered nodes must additionally
	// wait one ROP slot before transmitting (paper §3.3).
	ROP bool
	// SlotHint is the global index of the slot this trigger starts. The S′
	// sequence arrives once per slot, so receivers can count slots; carrying
	// the count explicitly models that counter and lets nodes match duties
	// to slots and skip ones whose air time has passed.
	SlotHint int
	// ObsSpan/ObsDepth ride the broadcast for the obs layer only: the span
	// of this signature broadcast and the trigger-cascade depth accumulated
	// so far, so a receiver's trigger record can parent itself to the
	// broadcast that caused it. Zero when tracing is off; no MAC or PHY
	// decision may read them.
	ObsSpan  int64
	ObsDepth int
}

// Combined returns the number of signatures summed into the broadcast; START
// and ROP markers ride along without adding to the combination load.
func (p *SignaturePayload) Combined() int { return len(p.Sigs) }

// Frame is one unit of air time.
type Frame struct {
	Kind FrameKind
	Src  NodeID
	// Dst is the addressed node, or Broadcast. Addressing is advisory: every
	// node in range observes the frame; MAC engines filter.
	Dst   NodeID
	Bytes int
	Rate  Rate
	// Duration overrides the computed air time when non-zero (signatures,
	// OFDM control symbols, and the USRP PHY use explicit durations).
	Duration sim.Time
	// Payload carries protocol state (queue reports, packets, signatures).
	Payload any
	// NAV, when non-zero, is the absolute time until which the sender
	// reserves the medium (802.11 duration field). DOMINO sets it to the end
	// of the contention-free period so coexisting DCF nodes defer (§5,
	// Fig 15); overhearing MACs should honour max(ACK protection, NAV).
	NAV sim.Time
	// ObsSpan is the causal span this frame belongs to (obs layer); the
	// medium probe copies it onto tx_start/tx_end records so airtime hangs
	// off the right slot/epoch/attempt in trace trees. 0 when tracing is
	// off — the PHY itself never reads it.
	ObsSpan int64
}

// AirTime returns the frame's on-air duration.
func (f *Frame) AirTime() sim.Time {
	if f.Duration > 0 {
		return f.Duration
	}
	return Airtime(f.Bytes, f.Rate)
}

// Listener receives medium events for one node. Callbacks run inside the
// simulation event loop; implementations must not block.
type Listener interface {
	// CarrierChanged fires when energy-based carrier sensing at the node
	// transitions between idle and busy. A node's own transmission does not
	// trigger CarrierChanged (engines know when they transmit).
	CarrierChanged(busy bool)
	// FrameReceived fires at the end of every frame whose received power at
	// this node reaches the delivery floor. ok reports whether the frame was
	// decodable: SINR above the rate threshold for data frames, the
	// signature-detection rule for Signature frames. det carries signature
	// detection detail (nil for non-signature frames).
	FrameReceived(f *Frame, ok bool, det *SignatureDetection)
}

// SignatureDetection reports the conditions a Signature frame experienced at
// a receiver, for MAC engines that want detection detail beyond ok.
type SignatureDetection struct {
	// Combined is the peak number of signatures simultaneously in the air
	// (summed over all overlapping signature frames) during this frame.
	Combined int
	// SINRdB is the frame's worst-case SINR against non-signature
	// interference.
	SINRdB float64
}

// Detector decides whether a signature broadcast is detected given the peak
// combined-signature count it collided with. Probability tables come from the
// chip-level Monte Carlo in internal/gold (paper Fig 9).
type Detector func(combined int) float64

// DefaultDetector encodes the paper's USRP-measured detection curve (Fig 9):
// essentially perfect up to 4 combined signatures — the operating limit the
// paper picks — then degrading. internal/gold's idealised chip-level Monte
// Carlo upper-bounds this table (gold.TestDetectionCurveMatchesDefault); the
// shortfall beyond 4 reflects hardware effects (CFO, phase noise,
// quantisation) the Monte Carlo omits.
func DefaultDetector(combined int) float64 {
	table := []float64{1, 1, 1, 1, 0.998, 0.93, 0.80, 0.65}
	if combined < len(table) {
		return table[combined]
	}
	return 0.5
}

// Config collects the medium's tunable parameters. The zero value is not
// valid; use DefaultConfig.
type Config struct {
	// NoiseDBm is the thermal noise floor (-174 dBm/Hz + 10·log10(20 MHz) +
	// 7 dB noise figure ≈ -94 dBm).
	NoiseDBm float64
	// CSThreshDBm is the energy level above which carrier sense reports busy.
	CSThreshDBm float64
	// DeliverFloorDBm is the weakest received power that still produces a
	// FrameReceived callback; weaker transmissions count only as interference.
	DeliverFloorDBm float64
	// SigSINRdB is the SINR (against non-signature interference) a correlator
	// needs to detect a signature; the ~21 dB spreading gain of a 127-chip
	// Gold code puts this far below the data threshold.
	SigSINRdB float64
	// Detector is the combined-signature detection curve.
	Detector Detector
	// FalsePositiveRate is the per-listen probability that a correlator
	// reports a signature that was not sent (paper: below 1%). Zero disables.
	FalsePositiveRate float64
}

// DefaultConfig returns the parameter set used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		NoiseDBm:        -94,
		CSThreshDBm:     -85,
		DeliverFloorDBm: -94,
		SigSINRdB:       -10,
		Detector:        DefaultDetector,
	}
}
