package phy

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// countingListener tallies callbacks without reacting.
type countingListener struct {
	frames  int
	oks     int
	carrier int
}

func (c *countingListener) CarrierChanged(bool) { c.carrier++ }
func (c *countingListener) FrameReceived(_ *Frame, ok bool, _ *SignatureDetection) {
	c.frames++
	if ok {
		c.oks++
	}
}

// TestMediumInvariantsUnderFuzz fires random overlapping transmissions from
// random nodes and checks the medium's invariants afterwards: carrier sensing
// settles to idle everywhere, nobody is left transmitting, and every
// transmission produced exactly one end event (the kernel drains).
func TestMediumInvariantsUnderFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(6)
		rss := make([][]float64, n)
		for i := range rss {
			rss[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := -55 - rng.Float64()*45 // -55..-100 dBm
				rss[i][j] = v
				rss[j][i] = v
			}
		}
		k := sim.New(int64(trial))
		m := NewMedium(k, rss, DefaultConfig())
		listeners := make([]*countingListener, n)
		for i := range listeners {
			listeners[i] = &countingListener{}
			m.Register(NodeID(i), listeners[i])
		}

		// Random staggered transmissions; re-draw the sender if it is busy at
		// fire time (mirrors what a sane MAC does).
		sent := 0
		for i := 0; i < 40; i++ {
			at := sim.Time(rng.Int63n(int64(8 * sim.Millisecond)))
			src := NodeID(rng.Intn(n))
			bytes := 64 + rng.Intn(1400)
			kind := Data
			if rng.Intn(5) == 0 {
				kind = Signature
			}
			k.At(at, func() {
				if m.Transmitting(src) {
					return
				}
				sent++
				f := &Frame{Kind: kind, Dst: Broadcast, Bytes: bytes, Rate: Rate12}
				if kind == Signature {
					f.Duration = SignatureDuration
					f.Payload = &SignaturePayload{Sigs: []int{int(src)}}
				}
				m.Transmit(src, f)
			})
		}
		k.Run()

		if m.Transmissions != sent {
			t.Fatalf("trial %d: %d transmissions recorded, %d sent", trial, m.Transmissions, sent)
		}
		for i := 0; i < n; i++ {
			if m.Transmitting(NodeID(i)) {
				t.Fatalf("trial %d: node %d still transmitting after drain", trial, i)
			}
			if m.Busy(NodeID(i)) {
				t.Fatalf("trial %d: node %d still senses busy after drain", trial, i)
			}
		}
		// Outcome accounting: delivered + corrupted = all receptions.
		var frames int
		for _, l := range listeners {
			frames += l.frames
		}
		if m.Delivered+m.Corrupted != frames {
			t.Fatalf("trial %d: delivered %d + corrupted %d != callbacks %d",
				trial, m.Delivered, m.Corrupted, frames)
		}
		// Carrier callbacks pair up: every busy has a matching idle.
		for i, l := range listeners {
			if l.carrier%2 != 0 {
				t.Fatalf("trial %d: node %d saw %d carrier transitions (odd)", trial, i, l.carrier)
			}
		}
	}
}

// TestSignatureDetectionFields checks that the detection detail is populated
// for signature frames and absent for data frames.
func TestSignatureDetectionFields(t *testing.T) {
	k := sim.New(1)
	m := NewMedium(k, [][]float64{{0, -60}, {-60, 0}}, DefaultConfig())
	// The detail pointer is only valid during the callback (the reception it
	// lives in recycles afterwards), so snapshot the value.
	var sigDet SignatureDetection
	var sawSig, dataHadDet bool
	var got int
	m.Register(1, listenerFunc(func(f *Frame, ok bool, det *SignatureDetection) {
		got++
		if f.Kind == Signature {
			if det != nil {
				sigDet, sawSig = *det, true
			}
		} else if det != nil {
			dataHadDet = true
		}
	}))
	m.Register(0, listenerFunc(func(*Frame, bool, *SignatureDetection) {}))
	k.At(0, func() {
		m.Transmit(0, &Frame{Kind: Signature, Dst: Broadcast, Duration: SignatureDuration,
			Payload: &SignaturePayload{Sigs: []int{1, 2}}})
	})
	k.At(sim.Millisecond, func() {
		m.Transmit(0, &Frame{Kind: Data, Dst: 1, Bytes: 100, Rate: Rate12})
	})
	k.Run()
	if got != 2 {
		t.Fatalf("callbacks = %d", got)
	}
	if !sawSig || sigDet.Combined != 2 {
		t.Errorf("signature detail = %+v (seen %v)", sigDet, sawSig)
	}
	if dataHadDet {
		t.Error("data frame carried signature detail")
	}
}

// listenerFunc adapts a function to the Listener interface.
type listenerFunc func(*Frame, bool, *SignatureDetection)

func (f listenerFunc) CarrierChanged(bool) {}
func (f listenerFunc) FrameReceived(fr *Frame, ok bool, det *SignatureDetection) {
	f(fr, ok, det)
}
