// Package run is the run-lifecycle layer: it owns everything between "here
// is a validated spec" and "here is the result" — building the scenario,
// stepping it in bounded slices, pausing between slices, writing
// checkpoints, and restoring a killed run so it produces a byte-identical
// remainder trace.
//
// The one-shot paths (core.RunScenario, shard.Run) stay thin wrappers that
// drive the same instances to completion in one call; this package adds the
// stop-and-go driver the domino-sim daemon (-serve) schedules runs through.
//
// Checkpoints are replay-based. Kernel events hold closures, which cannot
// serialize, so a checkpoint records the run's replay coordinate (events
// fired for a single-engine run, completed windows for a sharded one) plus
// integrity state — the queue shape, engine counters and metric digests —
// and Restore rebuilds the run from its spec, replays deterministically to
// the coordinate, and verifies the rebuilt state matches before continuing.
// Determinism is what makes this exact: the replayed prefix regenerates the
// checkpoint's trace bytes (discarded against the recorded offset) and the
// remainder comes out byte-identical to an uninterrupted run.
package run

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/spec"
)

// DefaultStepEvents is the single-engine step granularity when the spec's
// run.step_events knob is zero: how many kernel events fire between
// pause/checkpoint opportunities.
const DefaultStepEvents = 65536

// Options carries the host-side concerns a Run does not take from its spec.
type Options struct {
	// Sink receives the run's NDJSON trace chunks (a file, a LiveHub fan-out,
	// or both via MultiSink). Nil disables tracing entirely.
	Sink obs.Sink
}

// Run is one simulation run decomposed into bounded steps. Build with New
// (or Restore), call Step until it reports done, then Finish exactly once.
// Checkpoint may be called between any two steps. Runs are not safe for
// concurrent use; the daemon serializes access per run.
type Run struct {
	sp         spec.Spec
	rc         spec.RunControl
	schemeName string

	inst *core.Instance   // single-engine path (nil when sharded)
	st   *shard.Steppable // sharded path (nil when single-engine)

	duration   sim.Time
	stepEvents uint64

	ndjson  *obs.NDJSON
	counter *countingSink
	metrics *obs.Metrics

	steps    int
	done     bool
	finished bool
	res      core.Result
	rep      *shard.Report
}

// New builds a runnable Run from a validated spec.
func New(sp spec.Spec, opt Options) (*Run, error) {
	return build(sp, opt, 0)
}

// build is the shared constructor: discard > 0 is the restore path, which
// suppresses that many already-emitted trace bytes during replay.
func build(sp spec.Spec, opt Options, discard int64) (*Run, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	rc, err := sp.RunControl()
	if err != nil {
		return nil, err
	}
	sc, err := core.BuildScenario(sp)
	if err != nil {
		return nil, err
	}

	r := &Run{sp: sp, rc: rc, schemeName: sp.Scheme}
	if opt.Sink != nil {
		inner := opt.Sink
		if discard > 0 {
			inner = &skipSink{skip: discard, next: opt.Sink}
		}
		r.counter = &countingSink{next: inner}
		r.ndjson = obs.NewNDJSONTo(r.counter)
		sc.Tracer = r.ndjson
	}
	r.metrics = sc.Metrics

	r.stepEvents = DefaultStepEvents
	if rc.StepEvents > 0 {
		r.stepEvents = uint64(rc.StepEvents)
	}
	r.duration = sc.Duration
	if r.duration == 0 {
		r.duration = 10 * sim.Second // the core/shard normalization default
	}

	if w := sp.ShardWorkers(); w > 0 {
		st, err := shard.New(sc, shard.Options{Workers: w, StepGranule: rc.StepWindow.Time()})
		if err != nil {
			return nil, err
		}
		r.st = st
	} else {
		inst, err := core.NewInstance(sc)
		if err != nil {
			return nil, err
		}
		r.inst = inst
	}
	return r, nil
}

// Step advances the run one bounded slice — step_events kernel events on
// the single-engine path, one window (lookahead or step_window granule) on
// the sharded path — and reports whether the run has reached its deadline.
func (r *Run) Step() bool {
	if r.done {
		return true
	}
	if r.st != nil {
		r.done = r.st.StepWindow()
	} else {
		_, r.done = r.inst.Kernel.RunCount(r.duration, r.stepEvents)
	}
	r.steps++
	return r.done
}

// Done reports whether the run has reached its deadline.
func (r *Run) Done() bool { return r.done }

// Steps returns the number of completed Step calls.
func (r *Run) Steps() int { return r.steps }

// Sharded reports which execution path the run uses.
func (r *Run) Sharded() bool { return r.st != nil }

// Duration returns the run's normalized simulated duration.
func (r *Run) Duration() sim.Time { return r.duration }

// Clock returns how far simulated time has advanced — the progress figure
// the daemon's status endpoint reports.
func (r *Run) Clock() sim.Time {
	if r.st != nil {
		return r.st.Clock()
	}
	return r.inst.Kernel.Now()
}

// EventsFired returns the single-engine replay coordinate (0 when sharded).
func (r *Run) EventsFired() uint64 {
	if r.inst != nil {
		return r.inst.Kernel.Fired()
	}
	return 0
}

// TraceBytes returns the trace bytes handed to the sink so far. Call Flush
// (or Checkpoint, which flushes) first for an exact figure.
func (r *Run) TraceBytes() int64 {
	if r.counter == nil {
		return 0
	}
	return r.counter.n
}

// Flush pushes buffered trace bytes to the sink.
func (r *Run) Flush() error {
	if r.ndjson == nil {
		return nil
	}
	return r.ndjson.Flush()
}

// Finish completes the run: closes out the instances, flushes the trace and
// returns the measurements. Call exactly once, after Step reports done.
func (r *Run) Finish() (core.Result, error) {
	if r.finished {
		return r.res, nil
	}
	if !r.done {
		return core.Result{}, fmt.Errorf("run: Finish before the run reached its deadline (clock %v of %v)", r.Clock(), r.duration)
	}
	if r.st != nil {
		res, rep, err := r.st.Finish()
		if err != nil {
			return core.Result{}, err
		}
		r.res, r.rep = res, rep
	} else {
		r.res = r.inst.Finish()
	}
	if err := r.Flush(); err != nil {
		return core.Result{}, fmt.Errorf("run: trace flush: %w", err)
	}
	r.finished = true
	return r.res, nil
}

// Report returns the sharded run's report (nil for single-engine runs or
// before Finish).
func (r *Run) Report() *shard.Report { return r.rep }

// Control returns the decoded run-control knobs.
func (r *Run) Control() spec.RunControl { return r.rc }

// countingSink counts every byte handed downstream — the trace offset a
// checkpoint records (after a flush).
type countingSink struct {
	n    int64
	next obs.Sink
}

func (c *countingSink) WriteChunk(p []byte) error {
	c.n += int64(len(p))
	return c.next.WriteChunk(p)
}

func (c *countingSink) Close() error { return c.next.Close() }

// skipSink discards the first skip bytes and forwards the rest — how a
// restored run suppresses the trace prefix its replay regenerates. Chunk
// boundaries need not line up with the offset: NDJSON output is a plain
// byte stream, so a chunk straddling it is split.
type skipSink struct {
	skip int64
	next obs.Sink
}

func (s *skipSink) WriteChunk(p []byte) error {
	if s.skip > 0 {
		if int64(len(p)) <= s.skip {
			s.skip -= int64(len(p))
			return nil
		}
		p = p[s.skip:]
		s.skip = 0
	}
	return s.next.WriteChunk(p)
}

func (s *skipSink) Close() error { return s.next.Close() }
