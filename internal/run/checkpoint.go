package run

import (
	"encoding/json"
	"fmt"

	"repro/internal/obs"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/spec"
)

// CheckpointFormat versions the checkpoint document; Restore rejects
// formats it does not understand.
const CheckpointFormat = 1

// Checkpoint is a self-contained, JSON-serializable snapshot of a run at a
// step boundary: the spec to rebuild from, the replay coordinate to advance
// to, and the integrity state Restore verifies the replay against. It holds
// no closures and no engine internals — determinism, not serialization,
// carries the state.
type Checkpoint struct {
	Format int       `json:"format"`
	Spec   spec.Spec `json:"spec"`

	// Steps is the completed Step count; Done marks a run checkpointed
	// after its final step (only Finish remains).
	Steps int  `json:"steps"`
	Done  bool `json:"done,omitempty"`

	// TraceBytes is the exact NDJSON byte offset emitted so far; the
	// replayed prefix is discarded against it and must land on it exactly.
	TraceBytes int64 `json:"trace_bytes"`

	// Single-engine integrity state: the full kernel state (queue shape
	// included — the replay coordinate is Kernel.Fired), the scheme
	// engine's counter snapshot, and the metrics registry when enabled.
	Kernel  *sim.KernelState    `json:"kernel,omitempty"`
	Engine  *scheme.EngineState `json:"engine,omitempty"`
	Metrics *obs.MetricsState   `json:"metrics,omitempty"`

	// Sharded integrity state: one entry per interference domain, plus the
	// cross-shard message count.
	Domains  []DomainState `json:"domains,omitempty"`
	Messages int           `json:"messages,omitempty"`
}

// DomainState is one sharded domain's integrity snapshot.
type DomainState struct {
	Kernel        sim.KernelState    `json:"kernel"`
	Engine        scheme.EngineState `json:"engine"`
	MetricsDigest uint64             `json:"metrics_digest,omitempty"`
}

// Checkpoint snapshots the run between two steps. The trace is flushed
// first so TraceBytes is exact. Checkpointing a finished run is an error
// (there is nothing left to resume); checkpointing after the final step but
// before Finish is fine.
func (r *Run) Checkpoint() (*Checkpoint, error) {
	if r.finished {
		return nil, fmt.Errorf("run: checkpoint after Finish")
	}
	if err := r.Flush(); err != nil {
		return nil, fmt.Errorf("run: checkpoint trace flush: %w", err)
	}
	cp := &Checkpoint{
		Format:     CheckpointFormat,
		Spec:       r.sp,
		Steps:      r.steps,
		Done:       r.done,
		TraceBytes: r.TraceBytes(),
	}
	d, ok := scheme.Lookup(r.schemeName)
	if !ok {
		return nil, fmt.Errorf("run: scheme %q vanished from the registry", r.schemeName)
	}
	if r.st != nil {
		for _, inst := range r.st.Instances() {
			ds := DomainState{Kernel: inst.Kernel.CheckpointState()}
			ds.Engine, _ = scheme.CheckpointEngine(d, inst.Engine)
			if inst.S.Metrics != nil {
				ds.MetricsDigest = inst.S.Metrics.State().Digest()
			}
			cp.Domains = append(cp.Domains, ds)
		}
		cp.Messages = r.st.Messages()
	} else {
		ks := r.inst.Kernel.CheckpointState()
		cp.Kernel = &ks
		es, _ := scheme.CheckpointEngine(d, r.inst.Engine)
		cp.Engine = &es
		if r.metrics != nil {
			ms := r.metrics.State()
			cp.Metrics = &ms
		}
	}
	return cp, nil
}

// Marshal renders the checkpoint as indented JSON.
func (cp *Checkpoint) Marshal() ([]byte, error) {
	return json.MarshalIndent(cp, "", "  ")
}

// UnmarshalCheckpoint parses a checkpoint document.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("run: bad checkpoint document: %w", err)
	}
	if cp.Format != CheckpointFormat {
		return nil, fmt.Errorf("run: checkpoint format %d not supported (want %d)", cp.Format, CheckpointFormat)
	}
	return &cp, nil
}

// Restore rebuilds the run from the checkpoint's spec, replays it to the
// checkpoint's coordinate, verifies the rebuilt kernel/engine/metrics state
// matches the snapshot, and returns a run that continues exactly where the
// checkpointed one stopped — including a byte-identical remainder trace
// (the replayed prefix is discarded against TraceBytes). Any verification
// failure means the environment no longer reproduces the original run (a
// changed binary, registry or spec) and aborts the restore.
func Restore(cp *Checkpoint, opt Options) (*Run, error) {
	if cp.Format != CheckpointFormat {
		return nil, fmt.Errorf("run: checkpoint format %d not supported (want %d)", cp.Format, CheckpointFormat)
	}
	r, err := build(cp.Spec, opt, cp.TraceBytes)
	if err != nil {
		return nil, err
	}
	if r.st != nil {
		if err := r.replayShard(cp); err != nil {
			return nil, err
		}
	} else {
		if err := r.replaySingle(cp); err != nil {
			return nil, err
		}
	}
	r.steps = cp.Steps
	r.done = cp.Done

	// The replayed prefix must regenerate the recorded trace offset
	// exactly; a shortfall or overrun means divergence the state audits
	// somehow missed.
	if err := r.Flush(); err != nil {
		return nil, fmt.Errorf("run: restore trace flush: %w", err)
	}
	if got := r.TraceBytes(); got != cp.TraceBytes {
		return nil, fmt.Errorf("run: restore replayed %d trace bytes, checkpoint recorded %d", got, cp.TraceBytes)
	}
	return r, nil
}

// replaySingle advances the rebuilt kernel to the checkpoint's fired-event
// count and audits kernel, engine and metrics state.
func (r *Run) replaySingle(cp *Checkpoint) error {
	if cp.Kernel == nil {
		return fmt.Errorf("run: single-engine checkpoint lacks kernel state")
	}
	k := r.inst.Kernel
	if need := cp.Kernel.Fired - k.Fired(); need > 0 {
		k.RunCount(r.duration, need)
	}
	if err := k.VerifyState(*cp.Kernel); err != nil {
		return fmt.Errorf("run: restore: %w", err)
	}
	if cp.Engine != nil {
		d, ok := scheme.Lookup(r.schemeName)
		if !ok {
			return fmt.Errorf("run: scheme %q vanished from the registry", r.schemeName)
		}
		es, _ := scheme.CheckpointEngine(d, r.inst.Engine)
		if !es.Equal(*cp.Engine) {
			return fmt.Errorf("run: restore: engine state diverged (replayed digest %#x, checkpoint %#x)", es.Digest(), cp.Engine.Digest())
		}
	}
	if cp.Metrics != nil {
		if r.metrics == nil {
			return fmt.Errorf("run: restore: checkpoint has metrics state but the rebuilt run collects none")
		}
		if got, want := r.metrics.State().Digest(), cp.Metrics.Digest(); got != want {
			return fmt.Errorf("run: restore: metrics diverged (replayed digest %#x, checkpoint %#x)", got, want)
		}
	}
	return nil
}

// replayShard re-executes the checkpointed number of windows and audits
// every domain.
func (r *Run) replayShard(cp *Checkpoint) error {
	if len(cp.Domains) == 0 {
		return fmt.Errorf("run: sharded checkpoint lacks domain state")
	}
	insts := r.st.Instances()
	if len(insts) != len(cp.Domains) {
		return fmt.Errorf("run: restore partitioned into %d domains, checkpoint has %d", len(insts), len(cp.Domains))
	}
	for i := 0; i < cp.Steps; i++ {
		if r.st.StepWindow() && i != cp.Steps-1 {
			return fmt.Errorf("run: restore finished after %d windows, checkpoint recorded %d", i+1, cp.Steps)
		}
	}
	d, ok := scheme.Lookup(r.schemeName)
	if !ok {
		return fmt.Errorf("run: scheme %q vanished from the registry", r.schemeName)
	}
	for i, inst := range insts {
		if err := inst.Kernel.VerifyState(cp.Domains[i].Kernel); err != nil {
			return fmt.Errorf("run: restore domain %d: %w", i, err)
		}
		es, _ := scheme.CheckpointEngine(d, inst.Engine)
		if !es.Equal(cp.Domains[i].Engine) {
			return fmt.Errorf("run: restore domain %d: engine state diverged (replayed digest %#x, checkpoint %#x)", i, es.Digest(), cp.Domains[i].Engine.Digest())
		}
		if want := cp.Domains[i].MetricsDigest; want != 0 {
			if inst.S.Metrics == nil {
				return fmt.Errorf("run: restore domain %d: checkpoint has metrics state but the rebuilt run collects none", i)
			}
			if got := inst.S.Metrics.State().Digest(); got != want {
				return fmt.Errorf("run: restore domain %d: metrics diverged (replayed digest %#x, checkpoint %#x)", i, got, want)
			}
		}
	}
	if got := r.st.Messages(); got != cp.Messages {
		return fmt.Errorf("run: restore routed %d cross-shard messages, checkpoint recorded %d", got, cp.Messages)
	}
	return nil
}
