package run

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/spec"
)

// Server is the domino-sim daemon: an HTTP/JSON service that accepts
// declarative spec documents, executes them on a bounded worker fleet, and
// streams each run's NDJSON trace incrementally. Every run lives in its own
// directory under DataDir (spec.json, trace.ndjson, checkpoint.json,
// result.json), checkpoints on a wall-clock timer, and survives a daemon
// kill: on restart the server restores every unfinished run from its last
// checkpoint and the resumed trace is byte-identical to an uninterrupted
// one.
//
// API:
//
//	POST /runs                  submit a spec document; returns {"id": ...}
//	GET  /runs                  list run statuses
//	GET  /runs/{id}             one run's status (result summary when done)
//	GET  /runs/{id}/trace       NDJSON stream: bytes so far + live tail
//	GET  /runs/{id}/checkpoint  the latest checkpoint document
//	POST /runs/{id}/pause       checkpoint, release the worker, hold
//	POST /runs/{id}/resume      restore a paused/failed run and continue
//	POST /runs/{id}/cancel      stop the run for good
//	POST /runs/{id}/checkpoint  write a checkpoint now, keep running
//	GET  /healthz               liveness + fleet occupancy
type Server struct {
	opt  ServerOptions
	pool *parallel.Pool

	ctx    context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	runs map[string]*managedRun
	next int
	// activeExec counts runs currently past the admission gate (executing on
	// a worker). A spec's run.max_concurrent_runs is enforced against it:
	// the knob only tightens the operator's MaxRuns fleet, never widens it.
	activeExec int
}

// ServerOptions configures the daemon.
type ServerOptions struct {
	// DataDir holds one subdirectory per run. Required.
	DataDir string
	// MaxRuns bounds concurrently executing runs (0: one per core). A
	// spec's run.max_concurrent_runs knob never widens this: the daemon's
	// fleet is operator-controlled.
	MaxRuns int
	// CheckpointEvery is the default wall-clock interval between automatic
	// checkpoints; a spec's run.checkpoint_every overrides it per run.
	// Zero disables timer checkpoints by default.
	CheckpointEvery time.Duration
}

// run states
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StatePaused    = "paused"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

type managedRun struct {
	id  string
	dir string
	sp  spec.Spec

	mu          sync.Mutex
	state       string
	err         string
	summary     *ResultSummary
	progress    Progress
	checkpoints int

	wantPause      bool
	wantCheckpoint bool
	cancelRun      context.CancelFunc

	// sinkMu guards every trace-sink write and the snapshot+subscribe pair
	// the trace endpoint uses, so streams are gap-free and duplicate-free.
	sinkMu sync.Mutex
	hub    *obs.LiveHub
}

// Progress is the live position a worker publishes between steps.
type Progress struct {
	Steps       int    `json:"steps"`
	EventsFired uint64 `json:"events_fired,omitempty"`
	ClockNs     int64  `json:"clock_ns"`
	DurationNs  int64  `json:"duration_ns"`
	TraceBytes  int64  `json:"trace_bytes"`
}

// ResultSummary is the result subset the status endpoint reports.
type ResultSummary struct {
	AggregateMbps float64 `json:"aggregate_mbps"`
	DataMbps      float64 `json:"data_mbps"`
	MeanDelayNs   int64   `json:"mean_delay_ns"`
	Fairness      float64 `json:"fairness"`
	Links         int     `json:"links"`
}

// RunStatus is one run's externally visible state.
type RunStatus struct {
	ID          string         `json:"id"`
	Scheme      string         `json:"scheme"`
	State       string         `json:"state"`
	Sharded     bool           `json:"sharded,omitempty"`
	Progress    Progress       `json:"progress"`
	Checkpoints int            `json:"checkpoints"`
	Error       string         `json:"error,omitempty"`
	Result      *ResultSummary `json:"result,omitempty"`
}

// NewServer builds the daemon, creating DataDir if needed and restoring
// every unfinished run found in it (the kill -9 recovery path).
func NewServer(opt ServerOptions) (*Server, error) {
	if opt.DataDir == "" {
		return nil, fmt.Errorf("run: server needs a data directory")
	}
	if err := os.MkdirAll(opt.DataDir, 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:    opt,
		pool:   parallel.NewPool(opt.MaxRuns),
		ctx:    ctx,
		cancel: cancel,
		runs:   map[string]*managedRun{},
	}
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

// recover scans DataDir and resubmits every run that has a spec but no
// result: restored from its checkpoint when one exists, from scratch
// otherwise.
func (s *Server) recover() error {
	entries, err := os.ReadDir(s.opt.DataDir)
	if err != nil {
		return err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "r") {
			if n, err := strconv.Atoi(e.Name()[1:]); err == nil {
				if n >= s.next {
					s.next = n + 1
				}
				ids = append(ids, e.Name())
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		a, _ := strconv.Atoi(ids[i][1:])
		b, _ := strconv.Atoi(ids[j][1:])
		return a < b
	})
	for _, id := range ids {
		dir := filepath.Join(s.opt.DataDir, id)
		sp, err := spec.Load(filepath.Join(dir, "spec.json"))
		if err != nil {
			continue // not a run directory we understand; leave it alone
		}
		m := &managedRun{id: id, dir: dir, sp: sp, state: StateQueued, hub: obs.NewLiveHub()}
		s.runs[id] = m
		if _, err := os.Stat(filepath.Join(dir, "result.json")); err == nil {
			m.state = StateDone
			m.loadResult()
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, "cancelled")); err == nil {
			m.state = StateCancelled
			continue
		}
		s.submit(m)
	}
	return nil
}

// Submit validates and enqueues a new run, returning its id.
func (s *Server) Submit(sp spec.Spec) (string, error) {
	if err := sp.Validate(); err != nil {
		return "", err
	}
	s.mu.Lock()
	id := fmt.Sprintf("r%d", s.next)
	s.next++
	dir := filepath.Join(s.opt.DataDir, id)
	m := &managedRun{id: id, dir: dir, sp: sp, state: StateQueued, hub: obs.NewLiveHub()}
	s.runs[id] = m
	s.mu.Unlock()

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	doc, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, "spec.json"), doc, 0o644); err != nil {
		return "", err
	}
	s.submit(m)
	return id, nil
}

// submit hands the run to the worker fleet without blocking the caller: when
// the fleet is saturated the hand-off waits in its own goroutine, so POST
// /runs stays responsive and saturation shows up as queued runs, not hung
// requests.
func (s *Server) submit(m *managedRun) {
	ctx, cancel := context.WithCancel(s.ctx)
	m.mu.Lock()
	m.cancelRun = cancel
	m.wantPause = false
	m.state = StateQueued
	m.err = ""
	m.mu.Unlock()
	go func() {
		err := s.pool.Submit(ctx, func(ctx context.Context) { s.execute(ctx, m) })
		switch {
		case err == nil:
		case s.ctx.Err() != nil:
			// Daemon shutting down: leave the run queued on disk so the next
			// boot's recovery resubmits it.
		case ctx.Err() != nil:
			m.markCancelled() // cancelled while waiting for a worker
		default:
			m.setFailed(fmt.Errorf("submit: %w", err))
		}
	}()
}

// execute runs (or resumes) one managed run to completion, pause, or
// cancellation. It owns the run object exclusively; all externally visible
// state flows through m's mutex-guarded fields.
func (s *Server) execute(ctx context.Context, m *managedRun) {
	if ctx.Err() != nil {
		// Cancelled between hand-off and pickup. On daemon shutdown the run
		// stays queued for the next boot's recovery instead.
		if s.ctx.Err() == nil {
			m.markCancelled()
		}
		return
	}
	// Enforce the spec's run.max_concurrent_runs: a run whose spec sets the
	// knob waits here — externally still Queued — until fewer than its limit
	// of runs are executing. Every run passes the gate (so limited runs see
	// unlimited ones as occupancy), and the knob can only tighten the
	// operator's MaxRuns fleet: the waiting run holds its pool worker.
	if !s.acquireExecSlot(ctx, m) {
		if s.ctx.Err() == nil && ctx.Err() != nil {
			m.markCancelled()
		}
		return
	}
	defer s.releaseExecSlot()
	tracePath := filepath.Join(m.dir, "trace.ndjson")
	cpPath := filepath.Join(m.dir, "checkpoint.json")

	var cp *Checkpoint
	if doc, err := os.ReadFile(cpPath); err == nil {
		cp, err = UnmarshalCheckpoint(doc)
		if err != nil {
			m.setFailed(fmt.Errorf("load checkpoint: %w", err))
			return
		}
	}
	var offset int64
	if cp != nil {
		offset = cp.TraceBytes
	}
	f, err := os.OpenFile(tracePath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		m.setFailed(err)
		return
	}
	defer f.Close()
	// Drop any bytes written after the checkpoint (or the whole file on a
	// from-scratch start): the resumed run regenerates them exactly.
	if err := f.Truncate(offset); err != nil {
		m.setFailed(err)
		return
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		m.setFailed(err)
		return
	}

	sink := &lockedSink{mu: &m.sinkMu, next: obs.MultiSink{obs.WriterSink{W: f}, m.hub}}
	var r *Run
	if cp != nil {
		r, err = Restore(cp, Options{Sink: sink})
	} else {
		r, err = New(m.sp, Options{Sink: sink})
	}
	if err != nil {
		m.setFailed(err)
		return
	}

	interval := s.opt.CheckpointEvery
	if ce := r.Control().CheckpointEvery.Time(); ce > 0 {
		interval = time.Duration(ce)
	}
	lastCP := time.Now()

	m.mu.Lock()
	m.state = StateRunning
	m.mu.Unlock()
	m.publish(r)

	for !r.Done() {
		if ctx.Err() != nil {
			if s.ctx.Err() == nil {
				m.markCancelled()
			}
			// Daemon shutdown: stop stepping and leave the run where the
			// last checkpoint (or scratch) will restart it next boot.
			return
		}
		pause, ckpt := m.takeRequests()
		if pause {
			if err := s.writeCheckpoint(m, r, f, cpPath); err != nil {
				m.setFailed(err)
				return
			}
			m.mu.Lock()
			m.state = StatePaused
			m.mu.Unlock()
			return // release the worker; resume restores from the checkpoint
		}
		if ckpt || (interval > 0 && time.Since(lastCP) >= interval) {
			if err := s.writeCheckpoint(m, r, f, cpPath); err != nil {
				m.setFailed(err)
				return
			}
			lastCP = time.Now()
		}
		r.Step()
		if err := r.Flush(); err != nil { // keep trace streams live per step
			m.setFailed(err)
			return
		}
		m.publish(r)
	}

	res, err := r.Finish()
	if err != nil {
		m.setFailed(err)
		return
	}
	m.publish(r)
	if err := m.writeResult(res); err != nil {
		m.setFailed(err)
		return
	}
	os.Remove(cpPath) // the run is complete; nothing left to resume
	m.mu.Lock()
	m.state = StateDone
	m.mu.Unlock()
	m.sinkMu.Lock()
	m.hub.Close() // end-of-stream for trace subscribers
	m.sinkMu.Unlock()
}

// acquireExecSlot admits a run into the executing set, honouring its spec's
// run.max_concurrent_runs (0 = no spec limit, admit immediately). It returns
// false when the run's context dies while waiting.
func (s *Server) acquireExecSlot(ctx context.Context, m *managedRun) bool {
	limit := 0
	if rc, err := m.sp.RunControl(); err == nil {
		limit = rc.MaxConcurrentRuns
	}
	for {
		s.mu.Lock()
		if limit <= 0 || s.activeExec < limit {
			s.activeExec++
			s.mu.Unlock()
			return true
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func (s *Server) releaseExecSlot() {
	s.mu.Lock()
	s.activeExec--
	s.mu.Unlock()
}

// writeCheckpoint flushes and syncs the trace, then atomically replaces the
// checkpoint document — the durability order that keeps every persisted
// checkpoint's trace_bytes backed by on-disk bytes.
func (s *Server) writeCheckpoint(m *managedRun, r *Run, f *os.File, path string) error {
	cp, err := r.Checkpoint()
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	doc, err := cp.Marshal()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, doc, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	m.mu.Lock()
	m.checkpoints++
	m.mu.Unlock()
	return nil
}

func (m *managedRun) writeResult(res core.Result) error {
	sum := &ResultSummary{
		AggregateMbps: res.AggregateMbps,
		DataMbps:      res.DataMbps,
		MeanDelayNs:   int64(res.MeanDelay),
		Fairness:      res.Fairness,
		Links:         len(res.Links),
	}
	doc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(m.dir, "result.json"), doc, 0o644); err != nil {
		return err
	}
	m.mu.Lock()
	m.summary = sum
	m.mu.Unlock()
	return nil
}

func (m *managedRun) loadResult() {
	doc, err := os.ReadFile(filepath.Join(m.dir, "result.json"))
	if err != nil {
		return
	}
	var sum ResultSummary
	if json.Unmarshal(doc, &sum) == nil {
		m.summary = &sum
	}
}

func (m *managedRun) publish(r *Run) {
	p := Progress{
		Steps:       r.Steps(),
		EventsFired: r.EventsFired(),
		ClockNs:     int64(r.Clock()),
		DurationNs:  int64(r.Duration()),
		TraceBytes:  r.TraceBytes(),
	}
	m.mu.Lock()
	m.progress = p
	m.mu.Unlock()
}

func (m *managedRun) takeRequests() (pause, checkpoint bool) {
	m.mu.Lock()
	pause, checkpoint = m.wantPause, m.wantCheckpoint
	m.wantPause, m.wantCheckpoint = false, false
	m.mu.Unlock()
	return pause, checkpoint
}

func (m *managedRun) setFailed(err error) {
	m.mu.Lock()
	m.state = StateFailed
	m.err = err.Error()
	m.mu.Unlock()
}

func (m *managedRun) markCancelled() {
	os.WriteFile(filepath.Join(m.dir, "cancelled"), nil, 0o644)
	m.mu.Lock()
	m.state = StateCancelled
	m.mu.Unlock()
	m.sinkMu.Lock()
	m.hub.Close()
	m.sinkMu.Unlock()
}

func (m *managedRun) status() RunStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return RunStatus{
		ID:          m.id,
		Scheme:      m.sp.Scheme,
		State:       m.state,
		Sharded:     m.sp.ShardWorkers() > 0,
		Progress:    m.progress,
		Checkpoints: m.checkpoints,
		Error:       m.err,
		Result:      m.summary,
	}
}

// snapshotAndSubscribe returns every trace byte written so far plus a live
// subscription that continues exactly where the snapshot ends. Holding
// sinkMu across both makes the pair gap-free: no chunk can land between the
// file read and the subscription.
func (m *managedRun) snapshotAndSubscribe() ([]byte, <-chan []byte, func(), error) {
	m.sinkMu.Lock()
	defer m.sinkMu.Unlock()
	data, err := os.ReadFile(filepath.Join(m.dir, "trace.ndjson"))
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, nil, err
	}
	ch, cancel, _ := m.hub.Subscribe()
	return data, ch, cancel, nil
}

// lockedSink serializes sink writes against snapshotAndSubscribe.
type lockedSink struct {
	mu   *sync.Mutex
	next obs.Sink
}

func (l *lockedSink) WriteChunk(p []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next.WriteChunk(p)
}

func (l *lockedSink) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next.Close()
}

// Close drains the daemon: cancels every run context and waits for the
// fleet's in-flight work to exit (pool.Close blocks until every worker
// goroutine is gone; queued hand-offs abort via the cancelled context).
// Runs checkpoint nothing on the way down — crash recovery restarts them
// from their last checkpoint next boot; operators wanting a clean stop
// pause runs first.
func (s *Server) Close() {
	s.cancel()
	s.pool.Close()
}

// get returns the managed run or nil.
func (s *Server) get(id string) *managedRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id]
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":          true,
			"active_runs": s.pool.Active(),
			"max_runs":    parallel.Workers(s.opt.MaxRuns),
		})
	})
	mux.HandleFunc("POST /runs", func(w http.ResponseWriter, req *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 4<<20))
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		sp, err := spec.Parse(body)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		id, err := s.Submit(sp)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	})
	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, req *http.Request) {
		s.mu.Lock()
		ids := make([]string, 0, len(s.runs))
		for id := range s.runs {
			ids = append(ids, id)
		}
		s.mu.Unlock()
		sort.Slice(ids, func(i, j int) bool {
			a, _ := strconv.Atoi(ids[i][1:])
			b, _ := strconv.Atoi(ids[j][1:])
			return a < b
		})
		out := make([]RunStatus, 0, len(ids))
		for _, id := range ids {
			if m := s.get(id); m != nil {
				out = append(out, m.status())
			}
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /runs/{id}", func(w http.ResponseWriter, req *http.Request) {
		m := s.get(req.PathValue("id"))
		if m == nil {
			httpErr(w, http.StatusNotFound, fmt.Errorf("no such run"))
			return
		}
		writeJSON(w, http.StatusOK, m.status())
	})
	mux.HandleFunc("GET /runs/{id}/checkpoint", func(w http.ResponseWriter, req *http.Request) {
		m := s.get(req.PathValue("id"))
		if m == nil {
			httpErr(w, http.StatusNotFound, fmt.Errorf("no such run"))
			return
		}
		doc, err := os.ReadFile(filepath.Join(m.dir, "checkpoint.json"))
		if err != nil {
			httpErr(w, http.StatusNotFound, fmt.Errorf("run has no checkpoint yet"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(doc)
	})
	mux.HandleFunc("GET /runs/{id}/trace", func(w http.ResponseWriter, req *http.Request) {
		m := s.get(req.PathValue("id"))
		if m == nil {
			httpErr(w, http.StatusNotFound, fmt.Errorf("no such run"))
			return
		}
		snapshot, live, cancel, err := m.snapshotAndSubscribe()
		if err != nil {
			httpErr(w, http.StatusInternalServerError, err)
			return
		}
		defer cancel()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		if _, err := w.Write(snapshot); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		for {
			select {
			case chunk, ok := <-live:
				if !ok {
					return // run finished or was cancelled
				}
				if _, err := w.Write(chunk); err != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
			case <-req.Context().Done():
				return
			}
		}
	})
	mux.HandleFunc("POST /runs/{id}/pause", s.controlHandler(func(m *managedRun) error {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.state != StateRunning && m.state != StateQueued {
			return fmt.Errorf("run is %s; only queued/running runs pause", m.state)
		}
		m.wantPause = true
		return nil
	}))
	mux.HandleFunc("POST /runs/{id}/resume", func(w http.ResponseWriter, req *http.Request) {
		m := s.get(req.PathValue("id"))
		if m == nil {
			httpErr(w, http.StatusNotFound, fmt.Errorf("no such run"))
			return
		}
		m.mu.Lock()
		state := m.state
		m.mu.Unlock()
		if state != StatePaused && state != StateFailed {
			httpErr(w, http.StatusConflict, fmt.Errorf("run is %s; only paused/failed runs resume", state))
			return
		}
		s.submit(m)
		writeJSON(w, http.StatusAccepted, m.status())
	})
	mux.HandleFunc("POST /runs/{id}/cancel", s.controlHandler(func(m *managedRun) error {
		m.mu.Lock()
		cancel := m.cancelRun
		state := m.state
		m.mu.Unlock()
		switch state {
		case StateDone, StateCancelled:
			return fmt.Errorf("run is already %s", state)
		case StatePaused, StateFailed, StateQueued:
			// No worker is stepping the run (a queued task with a dead
			// context is skipped at pickup), so mark it directly.
			if cancel != nil {
				cancel()
			}
			m.markCancelled()
			return nil
		}
		if cancel != nil {
			cancel()
		}
		return nil
	}))
	mux.HandleFunc("POST /runs/{id}/checkpoint", s.controlHandler(func(m *managedRun) error {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.state != StateRunning {
			return fmt.Errorf("run is %s; only running runs checkpoint on demand", m.state)
		}
		m.wantCheckpoint = true
		return nil
	}))
	return mux
}

// controlHandler wraps a per-run mutation endpoint.
func (s *Server) controlHandler(fn func(*managedRun) error) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		m := s.get(req.PathValue("id"))
		if m == nil {
			httpErr(w, http.StatusNotFound, fmt.Errorf("no such run"))
			return
		}
		if err := fn(m); err != nil {
			httpErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusAccepted, m.status())
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// WaitIdle blocks until no run is executing — a test/shutdown helper; the
// poll interval is coarse because callers only use it at barriers.
func (s *Server) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.idle() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return s.idle()
}

func (s *Server) idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.runs {
		m.mu.Lock()
		st := m.state
		m.mu.Unlock()
		if st == StateQueued || st == StateRunning {
			return false
		}
	}
	return true
}
