package run_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/spec"
)

// postSpec submits a spec document and returns the run id.
func postSpec(t *testing.T, ts *httptest.Server, sp spec.Spec) string {
	t.Helper()
	doc, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

// getStatus fetches one run's status.
func getStatus(t *testing.T, ts *httptest.Server, id string) run.RunStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st run.RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the run reaches one of the wanted states.
func waitState(t *testing.T, ts *httptest.Server, id string, want ...string) run.RunStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never reached %v (last: %+v)", id, want, getStatus(t, ts, id))
	return run.RunStatus{}
}

func postCtl(t *testing.T, ts *httptest.Server, id, verb string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/runs/"+id+"/"+verb, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

// TestServerLifecycle is the daemon smoke test: submit a spec over HTTP,
// watch it run to completion, stream its NDJSON trace, and require the
// streamed bytes, the on-disk trace and an uninterrupted in-process run to
// be identical.
func TestServerLifecycle(t *testing.T) {
	sp := singleSpec("DOMINO")
	ref, refRes, _ := stepAll(t, sp)

	dir := t.TempDir()
	srv, err := run.NewServer(run.ServerOptions{DataDir: dir, MaxRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	id := postSpec(t, ts, sp)
	st := waitState(t, ts, id, run.StateDone, run.StateFailed)
	if st.State != run.StateDone {
		t.Fatalf("run failed: %+v", st)
	}
	if st.Result == nil || st.Result.AggregateMbps != refRes.AggregateMbps {
		t.Fatalf("result summary mismatch: %+v (want aggregate %v)", st.Result, refRes.AggregateMbps)
	}

	// The trace endpoint streams the full byte stream (hub already closed,
	// so the response ends at EOF).
	tresp, err := http.Get(ts.URL + "/runs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	streamed, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	onDisk, err := os.ReadFile(filepath.Join(dir, id, "trace.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, onDisk) {
		t.Fatalf("streamed trace (%d bytes) differs from on-disk trace (%d bytes)", len(streamed), len(onDisk))
	}
	if !bytes.Equal(onDisk, ref) {
		t.Fatalf("daemon trace (%d bytes) differs from in-process run (%d bytes)", len(onDisk), len(ref))
	}

	// Bad spec documents are rejected with a descriptive error.
	resp, err = http.Post(ts.URL+"/runs", "application/json", strings.NewReader(`{"scheme": "aloha", "topology": {"kind": "fig1"}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "unknown scheme") {
		t.Fatalf("bad spec: %d %s", resp.StatusCode, body)
	}
}

// TestServerKillRestore is the crash-recovery contract: pause checkpoints a
// mid-flight run and releases its worker; the daemon then dies without
// cleanup (Close is skipped — the in-process stand-in for kill -9), stray
// bytes appear after the checkpointed offset as they would mid-write; a new
// daemon over the same data directory restores the run and the completed
// trace is byte-identical to an uninterrupted one.
func TestServerKillRestore(t *testing.T) {
	sp := singleSpec("DOMINO")
	sp.Duration = spec.Duration(2 * sim.Second) // long enough to pause mid-run
	ref, refRes, _ := stepAll(t, sp)

	dir := t.TempDir()
	srvA, err := run.NewServer(run.ServerOptions{DataDir: dir, MaxRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())

	id := postSpec(t, tsA, sp)
	// Ask for a pause straight away (valid while queued or running — waiting
	// to observe the transient "running" state is a lost race on a loaded or
	// single-core host) and wait for the checkpoint-and-release.
	if resp, body := postCtl(t, tsA, id, "pause"); resp.StatusCode != http.StatusAccepted {
		if resp.StatusCode == http.StatusConflict {
			t.Skipf("run finished before the pause landed: %s", body)
		}
		t.Fatalf("pause: %d %s", resp.StatusCode, body)
	}
	st := waitState(t, tsA, id, run.StatePaused, run.StateDone)
	if st.State != run.StatePaused {
		t.Skip("run finished before the pause landed; nothing mid-flight to recover")
	}
	if st.Checkpoints == 0 {
		t.Fatal("pause released the worker without a checkpoint")
	}
	tsA.Close() // abandon srvA without Close: the kill -9 stand-in

	// Simulate the partial post-checkpoint write a kill interrupts.
	tracePath := filepath.Join(dir, id, "trace.ndjson")
	f, err := os.OpenFile(tracePath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"torn\": \"half-written chu"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srvB, err := run.NewServer(run.ServerOptions{DataDir: dir, MaxRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	st = waitState(t, tsB, id, run.StateDone, run.StateFailed)
	if st.State != run.StateDone {
		t.Fatalf("recovered run failed: %+v", st)
	}
	onDisk, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, ref) {
		i := 0
		for i < len(onDisk) && i < len(ref) && onDisk[i] == ref[i] {
			i++
		}
		t.Fatalf("recovered trace diverges from uninterrupted run at byte %d (%d vs %d bytes)", i, len(onDisk), len(ref))
	}
	if st.Result == nil || st.Result.AggregateMbps != refRes.AggregateMbps {
		t.Fatalf("recovered result mismatch: %+v", st.Result)
	}
}

// TestServerPauseResume exercises the in-daemon resume path (no restart):
// pause releases the worker, resume restores from the checkpoint, and the
// final trace is byte-identical.
func TestServerPauseResume(t *testing.T) {
	sp := singleSpec("DCF")
	sp.Duration = spec.Duration(2 * sim.Second)
	ref, _, _ := stepAll(t, sp)

	dir := t.TempDir()
	srv, err := run.NewServer(run.ServerOptions{DataDir: dir, MaxRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := postSpec(t, ts, sp)
	postCtl(t, ts, id, "pause") // accepted while queued or running; 409 if already done
	st := waitState(t, ts, id, run.StatePaused, run.StateDone)
	if st.State == run.StatePaused {
		if resp, body := postCtl(t, ts, id, "resume"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("resume: %d %s", resp.StatusCode, body)
		}
	}
	st = waitState(t, ts, id, run.StateDone, run.StateFailed)
	if st.State != run.StateDone {
		t.Fatalf("resumed run failed: %+v", st)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, id, "trace.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, ref) {
		t.Fatalf("paused+resumed trace (%d bytes) differs from uninterrupted (%d bytes)", len(onDisk), len(ref))
	}
}

// TestServerCancel pins cancellation: the run stops, reports cancelled, and
// stays cancelled across a daemon restart.
func TestServerCancel(t *testing.T) {
	sp := singleSpec("CENTAUR")
	sp.Duration = spec.Duration(5 * sim.Second)

	dir := t.TempDir()
	srv, err := run.NewServer(run.ServerOptions{DataDir: dir, MaxRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	id := postSpec(t, ts, sp)
	if resp, body := postCtl(t, ts, id, "cancel"); resp.StatusCode != http.StatusAccepted {
		if resp.StatusCode == http.StatusConflict {
			t.Skipf("run finished before the cancel landed: %s", body)
		}
		t.Fatalf("cancel: %d %s", resp.StatusCode, body)
	}
	st := waitState(t, ts, id, run.StateCancelled, run.StateDone)
	ts.Close()
	srv.Close()
	if st.State != run.StateCancelled {
		t.Skipf("run finished before the cancel landed (state %s)", st.State)
	}

	srv2, err := run.NewServer(run.ServerOptions{DataDir: dir, MaxRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if st := getStatus(t, ts2, id); st.State != run.StateCancelled {
		t.Fatalf("restart revived a cancelled run: %+v", st)
	}
}

// TestServerConcurrentRuns pins the acceptance shape: two specs in flight on
// a MaxRuns=2 fleet, each trace streamed over HTTP and byte-identical to its
// own in-process reference run.
func TestServerConcurrentRuns(t *testing.T) {
	specs := []spec.Spec{singleSpec("DCF"), singleSpec("DOMINO")}
	refs := make([][]byte, len(specs))
	for i, sp := range specs {
		refs[i], _, _ = stepAll(t, sp)
	}

	dir := t.TempDir()
	srv, err := run.NewServer(run.ServerOptions{DataDir: dir, MaxRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ids := make([]string, len(specs))
	for i, sp := range specs {
		ids[i] = postSpec(t, ts, sp)
	}
	for i, id := range ids {
		if st := waitState(t, ts, id, run.StateDone, run.StateFailed); st.State != run.StateDone {
			t.Fatalf("run %s (%s): %+v", id, specs[i].Scheme, st)
		}
		resp, err := http.Get(ts.URL + "/runs/" + id + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		streamed, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Equal(streamed, refs[i]) {
			t.Fatalf("run %s (%s): streamed trace %d bytes differs from reference %d bytes",
				id, specs[i].Scheme, len(streamed), len(refs[i]))
		}
	}
}

// TestServerSpecConcurrencyLimit pins the spec-side run.max_concurrent_runs
// knob: on a fleet with room for both (MaxRuns=2), two specs that each set
// max_concurrent_runs: 1 serialize — the second submission stays queued while
// the first executes, and both still complete.
func TestServerSpecConcurrencyLimit(t *testing.T) {
	mkSpec := func(schemeName string) spec.Spec {
		sp := singleSpec(schemeName)
		sp.Duration = spec.Duration(1 * sim.Second)
		sp.Run = []byte(`{"step_events": 211, "max_concurrent_runs": 1}`)
		return sp
	}

	dir := t.TempDir()
	srv, err := run.NewServer(run.ServerOptions{DataDir: dir, MaxRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	a := postSpec(t, ts, mkSpec("DCF"))
	b := postSpec(t, ts, mkSpec("DOMINO"))

	// While either run is short of done, the pair must never execute
	// simultaneously; and at least once we should catch one running while
	// the other is still queued (skip if both finish too fast to observe).
	sawSerialized := false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		stA, stB := getStatus(t, ts, a), getStatus(t, ts, b)
		if stA.State == run.StateRunning && stB.State == run.StateRunning {
			// The two reads are not an atomic snapshot: A may have finished
			// and released its slot between them. States only move forward
			// (no pause in this test), so A still running after B was seen
			// running proves a genuine overlap; otherwise the first read was
			// just stale.
			if stA2 := getStatus(t, ts, a); stA2.State == run.StateRunning {
				t.Fatalf("both runs executing at once despite max_concurrent_runs=1: %+v %+v", stA2, stB)
			}
			continue
		}
		if (stA.State == run.StateRunning && stB.State == run.StateQueued) ||
			(stB.State == run.StateRunning && stA.State == run.StateQueued) {
			sawSerialized = true
		}
		if stA.State == run.StateDone && stB.State == run.StateDone {
			break
		}
		if stA.State == run.StateFailed || stB.State == run.StateFailed {
			t.Fatalf("run failed: %+v %+v", stA, stB)
		}
		time.Sleep(time.Millisecond)
	}
	for _, id := range []string{a, b} {
		if st := waitState(t, ts, id, run.StateDone, run.StateFailed); st.State != run.StateDone {
			t.Fatalf("run %s: %+v", id, st)
		}
	}
	if !sawSerialized {
		t.Log("runs finished before the queued/running overlap was observed (slow-host tolerance; exclusivity still checked)")
	}
}

// TestServerFleetBound pins that MaxRuns=1 serializes runs rather than
// rejecting the second submission.
func TestServerFleetBound(t *testing.T) {
	dir := t.TempDir()
	srv, err := run.NewServer(run.ServerOptions{DataDir: dir, MaxRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	a := postSpec(t, ts, singleSpec("DCF"))
	b := postSpec(t, ts, singleSpec("DOMINO"))
	for _, id := range []string{a, b} {
		if st := waitState(t, ts, id, run.StateDone, run.StateFailed); st.State != run.StateDone {
			t.Fatalf("run %s: %+v", id, st)
		}
	}
	resp, err := http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var all []run.RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(all) != 2 {
		t.Fatalf("GET /runs returned %d entries, want 2", len(all))
	}
}
