package run_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/run"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/spec"
)

func intPtr(n int) *int { return &n }

// singleSpec is a small single-engine scenario with tracing-relevant knobs:
// short duration, metrics on, and a small step granule so runs decompose
// into many checkpointable slices.
func singleSpec(schemeName string) spec.Spec {
	return spec.Spec{
		Scheme:   schemeName,
		Topology: spec.Topology{Kind: "fig1"},
		Seed:     11,
		Duration: spec.Duration(50 * sim.Millisecond),
		Obs:      spec.Obs{Metrics: true},
		Run:      []byte(`{"step_events": 211}`),
	}
}

// shardSpec is a multi-domain scenario: the grid topology partitions into
// several interference domains, exercising the windowed sharded path.
func shardSpec(schemeName string) spec.Spec {
	return spec.Spec{
		Scheme:   schemeName,
		Topology: spec.Topology{Kind: "grid", Buildings: 4, APs: 2, Clients: 2},
		Seed:     3,
		Duration: spec.Duration(20 * sim.Millisecond),
		Shards:   intPtr(3),
		Obs:      spec.Obs{Metrics: true},
		Run:      []byte(`{"step_window": "2ms"}`),
	}
}

// stepAll drives a fresh Run to completion and returns its trace bytes,
// result and step count.
func stepAll(t *testing.T, sp spec.Spec) ([]byte, core.Result, int) {
	t.Helper()
	var buf bytes.Buffer
	r, err := run.New(sp, run.Options{Sink: obs.WriterSink{W: &buf}})
	if err != nil {
		t.Fatal(err)
	}
	for !r.Step() {
	}
	res, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res, r.Steps()
}

// resultsEqual compares the measurement fields a checkpointed run must
// reproduce exactly.
func resultsEqual(a, b core.Result) bool {
	if a.AggregateMbps != b.AggregateMbps || a.MeanDelay != b.MeanDelay ||
		a.Fairness != b.Fairness || a.DataMbps != b.DataMbps {
		return false
	}
	if len(a.PerLinkMbps) != len(b.PerLinkMbps) {
		return false
	}
	for i := range a.PerLinkMbps {
		if a.PerLinkMbps[i] != b.PerLinkMbps[i] {
			return false
		}
	}
	return true
}

// canonicalSchemes returns every registered scheme once (the registry lists
// aliases too; descriptors dedupe them).
func canonicalSchemes() []string {
	seen := map[string]bool{}
	var out []string
	for _, name := range scheme.Names() {
		d, ok := scheme.Lookup(name)
		if !ok || seen[d.Name] {
			continue
		}
		seen[d.Name] = true
		out = append(out, d.Name)
	}
	return out
}

// TestRunMatchesRunScenario pins the thin-wrapper contract: driving a spec
// through the step-by-step lifecycle produces byte-identical traces and
// identical results to the one-shot core.RunScenario path.
func TestRunMatchesRunScenario(t *testing.T) {
	sp := singleSpec("DOMINO")

	sc, err := core.BuildScenario(sp)
	if err != nil {
		t.Fatal(err)
	}
	var refBuf bytes.Buffer
	nd := obs.NewNDJSONTo(obs.WriterSink{W: &refBuf})
	sc.Tracer = nd
	refRes, err := core.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Flush(); err != nil {
		t.Fatal(err)
	}

	gotBytes, gotRes, steps := stepAll(t, sp)
	if steps < 3 {
		t.Fatalf("run took only %d steps; step_events knob not honoured", steps)
	}
	if !bytes.Equal(gotBytes, refBuf.Bytes()) {
		t.Fatalf("stepped trace differs from one-shot trace (%d vs %d bytes)", len(gotBytes), refBuf.Len())
	}
	if !resultsEqual(gotRes, refRes) {
		t.Fatalf("stepped result differs: %+v vs %+v", gotRes, refRes)
	}
}

// TestCheckpointRestoreByteIdentical is the property test: for every
// registered scheme, checkpoint a run at a randomly chosen step, restore
// from the JSON round-tripped document into a fresh sink, and require
// prefix + remainder to be byte-identical to the uninterrupted trace, with
// identical results. Repeated at several random cut points per scheme.
func TestCheckpointRestoreByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, name := range canonicalSchemes() {
		t.Run(name, func(t *testing.T) {
			sp := singleSpec(name)
			full, fullRes, steps := stepAll(t, sp)
			if steps < 2 {
				t.Fatalf("run took only %d steps; cannot checkpoint mid-run", steps)
			}
			for trial := 0; trial < 3; trial++ {
				cut := 1 + rng.Intn(steps-1)
				checkpointAt(t, sp, cut, full, fullRes)
			}
		})
	}
}

// TestCheckpointRestoreSharded runs the same property across a multi-domain
// sharded run: checkpoint at a random window boundary, restore, and require
// the merged trace and result to match the uninterrupted run exactly.
func TestCheckpointRestoreSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, name := range canonicalSchemes() {
		t.Run(name, func(t *testing.T) {
			sp := shardSpec(name)
			full, fullRes, steps := stepAll(t, sp)
			if steps < 2 {
				t.Fatalf("run took only %d windows; cannot checkpoint mid-run", steps)
			}
			cut := 1 + rng.Intn(steps-1)
			checkpointAt(t, sp, cut, full, fullRes)
		})
	}
}

// checkpointAt runs sp for cut steps, checkpoints, JSON round-trips the
// document, restores, finishes, and compares against the uninterrupted
// trace and result.
func checkpointAt(t *testing.T, sp spec.Spec, cut int, full []byte, fullRes core.Result) {
	t.Helper()
	var prefix bytes.Buffer
	r, err := run.New(sp, run.Options{Sink: obs.WriterSink{W: &prefix}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cut; i++ {
		if r.Step() && i != cut-1 {
			t.Fatalf("cut %d: run finished early at step %d", cut, i+1)
		}
	}
	cp, err := r.Checkpoint()
	if err != nil {
		t.Fatalf("cut %d: %v", cut, err)
	}
	if int64(prefix.Len()) != cp.TraceBytes {
		t.Fatalf("cut %d: sink holds %d bytes, checkpoint records %d", cut, prefix.Len(), cp.TraceBytes)
	}
	doc, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := run.UnmarshalCheckpoint(doc)
	if err != nil {
		t.Fatal(err)
	}

	var rest bytes.Buffer
	r2, err := run.Restore(cp2, run.Options{Sink: obs.WriterSink{W: &rest}})
	if err != nil {
		t.Fatalf("cut %d: restore: %v", cut, err)
	}
	if r2.Steps() != cut {
		t.Fatalf("cut %d: restored run reports %d steps", cut, r2.Steps())
	}
	for !r2.Step() {
	}
	res, err := r2.Finish()
	if err != nil {
		t.Fatal(err)
	}

	got := append(append([]byte{}, prefix.Bytes()...), rest.Bytes()...)
	if !bytes.Equal(got, full) {
		i := 0
		for i < len(got) && i < len(full) && got[i] == full[i] {
			i++
		}
		t.Fatalf("cut %d: resumed trace diverges from uninterrupted at byte %d (%d vs %d total)", cut, i, len(got), len(full))
	}
	if !resultsEqual(res, fullRes) {
		t.Fatalf("cut %d: resumed result differs: %+v vs %+v", cut, res, fullRes)
	}
}

// TestRestoreRejectsTamperedCheckpoint pins the verification teeth: a
// checkpoint whose recorded engine state does not match what replay
// produces must abort the restore.
func TestRestoreRejectsTamperedCheckpoint(t *testing.T) {
	sp := singleSpec("DOMINO")
	r, err := run.New(sp, run.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r.Step()
	}
	cp, err := r.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cp.Kernel.Fired += 1 // claim one more event than actually fired
	if _, err := run.Restore(cp, run.Options{}); err == nil {
		t.Fatal("restore accepted a checkpoint with a wrong fired count")
	}

	cp2, err := r.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Engine == nil || cp2.Engine.Counters == nil {
		t.Fatal("DOMINO checkpoint carries no engine counters")
	}
	cp2.Engine.Counters["slots"]++
	if _, err := run.Restore(cp2, run.Options{}); err == nil {
		t.Fatal("restore accepted a checkpoint with tampered engine counters")
	}
}
