package domino

import (
	"fmt"
	"strings"

	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/scheme"
	"repro/internal/strict"
)

// WireObs implements scheme.Observable: the engine pulls its trace sink,
// causal span allocator, packet-lifecycle hooks, and queue-depth sampler
// from the per-run observability state.
func (e *Engine) WireObs(run *obs.Run) {
	e.Obs = run.Tracer()
	e.life = run
	e.sp = run.Spans()
	if qs := run.QueueSampler(); qs != nil {
		e.EnableQueueSampling(qs)
	}
}

func init() {
	scheme.MustRegister(scheme.Descriptor{
		Name:               "DOMINO",
		Summary:            "the paper's relative-scheduling system",
		NeedsConflictGraph: true,
		DefaultConfig: func(p scheme.Params) any {
			cfg := DefaultConfig()
			cfg.Rate = p.Rate
			cfg.VirtualBytes = p.PacketBytes
			cfg.MisalignSlots = p.MisalignSlots
			return &cfg
		},
		Build: func(ctx scheme.BuildContext, cfg any) (mac.Engine, error) {
			c, ok := cfg.(*Config)
			if !ok {
				return nil, fmt.Errorf("domino: Build got config %T, want *domino.Config", cfg)
			}
			// Pre-validate the scheduler name so declarative specs get an
			// error instead of newServer's panic.
			if c.NewScheduler == nil && c.Scheduler != "" {
				if _, ok := strict.LookupScheduler(c.Scheduler); !ok {
					return nil, fmt.Errorf("domino: unknown scheduler %q (registered: %s)",
						c.Scheduler, strings.Join(strict.SchedulerNames(), ", "))
				}
			}
			return New(ctx.Kernel, ctx.Medium, ctx.Graph, ctx.Events, *c), nil
		},
		Checkpointer: func(e mac.Engine) scheme.EngineState {
			eng, ok := e.(*Engine)
			if !ok {
				return scheme.EngineState{Scheme: "DOMINO"}
			}
			hits, misses := eng.ConvertCacheStats()
			return scheme.EngineState{Scheme: "DOMINO", Counters: map[string]int64{
				"slots":        int64(eng.Slots()),
				"data_sends":   int64(eng.DataSends),
				"fake_sends":   int64(eng.FakeSends),
				"polls":        int64(eng.Polls),
				"ack_misses":   int64(eng.AckMisses),
				"self_starts":  int64(eng.SelfStarts),
				"drops":        int64(eng.Drops),
				"cache_hits":   hits,
				"cache_misses": misses,
			}}
		},
	})
}
