package domino

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/poll"
	"repro/internal/scheme"
	"repro/internal/strict"
)

// WireObs implements scheme.Observable: the engine pulls its trace sink,
// causal span allocator, packet-lifecycle hooks, and queue-depth sampler
// from the per-run observability state.
func (e *Engine) WireObs(run *obs.Run) {
	e.Obs = run.Tracer()
	e.life = run
	e.sp = run.Spans()
	if qs := run.QueueSampler(); qs != nil {
		e.EnableQueueSampling(qs)
	}
}

func init() {
	scheme.MustRegister(scheme.Descriptor{
		Name:               "DOMINO",
		Summary:            "the paper's relative-scheduling system",
		NeedsConflictGraph: true,
		DefaultConfig: func(p scheme.Params) any {
			cfg := DefaultConfig()
			cfg.Rate = p.Rate
			cfg.VirtualBytes = p.PacketBytes
			cfg.MisalignSlots = p.MisalignSlots
			return &cfg
		},
		Build: func(ctx scheme.BuildContext, cfg any) (mac.Engine, error) {
			c, ok := cfg.(*Config)
			if !ok {
				return nil, fmt.Errorf("domino: Build got config %T, want *domino.Config", cfg)
			}
			// Pre-validate the scheduler name so declarative specs get an
			// error instead of newServer's panic.
			if c.NewScheduler == nil && c.Scheduler != "" {
				if _, ok := strict.LookupScheduler(c.Scheduler); !ok {
					return nil, fmt.Errorf("domino: unknown scheduler %q (registered: %s)",
						c.Scheduler, strings.Join(strict.SchedulerNames(), ", "))
				}
			}
			// Same for the poller name and knobs: a trial Build catches bad
			// knob values (range errors) before New's panic.
			if c.Poller != "" {
				if _, ok := poll.Lookup(c.Poller); !ok {
					return nil, fmt.Errorf("domino: unknown poller %q (registered: %s)",
						c.Poller, strings.Join(poll.Names(), ", "))
				}
			}
			pollerName := c.Poller
			if pollerName == "" {
				pollerName = "ROP"
			}
			if _, err := poll.Build(pollerName, c.PollerConfig); err != nil {
				return nil, fmt.Errorf("domino: %v", err)
			}
			return New(ctx.Kernel, ctx.Medium, ctx.Graph, ctx.Events, *c), nil
		},
		Checkpointer: func(e mac.Engine) scheme.EngineState {
			eng, ok := e.(*Engine)
			if !ok {
				return scheme.EngineState{Scheme: "DOMINO"}
			}
			hits, misses := eng.ConvertCacheStats()
			counters := map[string]int64{
				"slots":           int64(eng.Slots()),
				"data_sends":      int64(eng.DataSends),
				"fake_sends":      int64(eng.FakeSends),
				"polls":           int64(eng.Polls),
				"ack_misses":      int64(eng.AckMisses),
				"self_starts":     int64(eng.SelfStarts),
				"drops":           int64(eng.Drops),
				"cache_hits":      hits,
				"cache_misses":    misses,
				"poll_rounds":     int64(eng.PollRounds),
				"poll_collisions": int64(eng.PollCollisions),
			}
			// Merge each AP poller's own counters (UORA contention state) in
			// deterministic AP order, so checkpoint/restore digests verify the
			// poller replayed identically.
			apIDs := make([]int, 0, len(eng.aps))
			for id := range eng.aps {
				apIDs = append(apIDs, int(id))
			}
			sort.Ints(apIDs)
			for _, id := range apIDs {
				ap := eng.aps[phy.NodeID(id)]
				if ap.poller == nil {
					continue
				}
				for k, v := range ap.poller.State() {
					counters[k] += v
				}
			}
			return scheme.EngineState{Scheme: "DOMINO", Counters: counters}
		},
	})
}
