package domino

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TestPiggybackStarvation reproduces the §2 motivation for ROP: under
// piggyback-only queue reporting (and without the fake cover's opportunism),
// a client that was silent when its traffic arrives can never announce it —
// the server never schedules the uplink and the burst starves. With ROP the
// next poll discovers the backlog and the burst drains.
func TestPiggybackStarvation(t *testing.T) {
	run := func(piggy bool) (delivered int) {
		net := topo.TwoPairs(topo.ExposedTerminals)
		links := net.BuildLinks(true, true)
		g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
		k := sim.New(13)
		medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
		hub := &mac.Hub{}
		cfg := DefaultConfig()
		cfg.Piggyback = piggy
		cfg.NoFakeCover = true // isolate the reporting channel
		engine := New(k, medium, g, hub, cfg)
		var got int
		hub.Add(counterEvents{&got})
		// Keep the downlinks mildly busy so the chain lives.
		var downSeq uint64
		feedDown := func() {}
		feedDown = func() {
			for _, l := range links {
				if l.Downlink {
					engine.Enqueue(&mac.Packet{Link: l, Bytes: 512, Enqueued: k.Now(), Seq: downSeq})
					downSeq++
				}
			}
			k.After(2*sim.Millisecond, feedDown)
		}
		k.After(0, feedDown)
		// The uplink burst arrives AFTER the flows started: 40 packets on
		// client 1's uplink at t = 300 ms.
		var uplink *topo.Link
		for _, l := range links {
			if !l.Downlink && l.Sender == 1 {
				uplink = l
			}
		}
		k.At(300*sim.Millisecond, func() {
			for i := 0; i < 40; i++ {
				engine.Enqueue(&mac.Packet{Link: uplink, Bytes: 512, Enqueued: k.Now(), Seq: uint64(i)})
			}
		})
		engine.Start()
		k.RunUntil(2 * sim.Second)
		return engine.QueueLen(uplink.ID)
	}
	piggyLeft := run(true)
	ropLeft := run(false)
	if ropLeft > 5 {
		t.Errorf("ROP left %d burst packets queued; polling should discover them", ropLeft)
	}
	if piggyLeft < 30 {
		t.Errorf("piggyback drained the burst (%d left); the starvation argument needs it stuck", piggyLeft)
	}
}

type counterEvents struct{ n *int }

func (c counterEvents) Delivered(*mac.Packet, sim.Time) { *c.n++ }
func (c counterEvents) Dropped(*mac.Packet, sim.Time)   {}
