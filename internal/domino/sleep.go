package domino

import (
	"repro/internal/phy"
	"repro/internal/sim"
)

// Sleep powers a client down for the given duration (§5 "Energy saving": the
// server schedules an energy-constrained device to sleep for a window in
// which it neither sends nor receives). While asleep the client's radio is
// deaf — triggers, polls and downlink data addressed to it are lost — and the
// central server excludes the client's links from scheduling so the air time
// is not wasted. The client resumes on its own at the deadline; the trigger
// chain re-integrates it exactly like a node whose triggers were lost.
//
// Sleeping an AP is not supported (the paper only sleeps client devices).
func (e *Engine) Sleep(client phy.NodeID, d sim.Time) {
	c, ok := e.clients[client]
	if !ok {
		panic("domino: Sleep on a non-client node")
	}
	c.asleep = true
	e.server.sleeping[client] = true
	e.k.After(d, func() {
		c.asleep = false
		delete(e.server.sleeping, client)
	})
}

// Asleep reports whether the client is currently sleeping.
func (e *Engine) Asleep(client phy.NodeID) bool {
	c, ok := e.clients[client]
	return ok && c.asleep
}

// linkSchedulable reports whether a link may be scheduled now (endpoints
// awake).
func (s *server) linkSchedulable(id int) bool {
	l := s.e.g.Links[id]
	return !s.sleeping[l.Sender] && !s.sleeping[l.Receiver]
}
