package domino

import (
	"repro/internal/convert"
	"repro/internal/obs"
	"repro/internal/poll"
)

// convertMetrics caches the registry pointers the conversion pipeline bumps
// once per dispatched batch (get-or-create lookups stay on the setup path).
type convertMetrics struct {
	batches, cacheHits, cacheMisses *obs.Counter
	slots, realEntries, fakeEntries *obs.Counter
	triggers, backupTriggers        *obs.Counter
	boundaryTriggers, untriggered   *obs.Counter
	ropSlots, ropShared, ropForced  *obs.Counter
	pollTriggers                    *obs.Counter
	passNs                          [convert.NumPasses]*obs.Counter

	// Cache accounting beyond hit/miss: LRU occupancy (gauge), cumulative
	// evictions, and the exact vs canonical-only hit split. The converter
	// keeps cumulative totals, so the counters sync by delta per batch.
	cacheOccupancy                  *obs.Gauge
	cacheEvictions                  *obs.Counter
	cacheExactHits                  *obs.Counter
	cacheCanonicalHits              *obs.Counter
	lastEvict, lastExact, lastCanon int64

	// Incremental-layer reuse, per batch (zero on cache hits).
	incCoverReuse, incPairReuse *obs.Counter

	// Poller-cycle outcomes (internal/poll), per decode cycle.
	pollRounds, pollCollisions     *obs.Counter
	pollDecoded, pollFailedReports *obs.Counter
}

// WireMetrics implements scheme.MetricsObservable: the run pipeline hands the
// engine its metrics registry and the converter's per-pass/per-batch counters
// flow into it under the convert.* namespace.
func (e *Engine) WireMetrics(m *obs.Metrics) {
	cm := &convertMetrics{
		batches:          m.Counter("convert.batches"),
		cacheHits:        m.Counter("convert.cache.hits"),
		cacheMisses:      m.Counter("convert.cache.misses"),
		slots:            m.Counter("convert.slots"),
		realEntries:      m.Counter("convert.entries.real"),
		fakeEntries:      m.Counter("convert.entries.fake"),
		triggers:         m.Counter("convert.triggers"),
		backupTriggers:   m.Counter("convert.triggers.backup"),
		boundaryTriggers: m.Counter("convert.triggers.boundary"),
		untriggered:      m.Counter("convert.untriggered"),
		ropSlots:         m.Counter("convert.rop.slots"),
		ropShared:        m.Counter("convert.rop.shared"),
		ropForced:        m.Counter("convert.rop.forced"),
		pollTriggers:     m.Counter("convert.rop.poll_triggers"),

		cacheOccupancy:     m.Gauge("convert.cache.occupancy"),
		cacheEvictions:     m.Counter("convert.cache.evictions"),
		cacheExactHits:     m.Counter("convert.cache.hits.exact"),
		cacheCanonicalHits: m.Counter("convert.cache.hits.canonical"),

		incCoverReuse: m.Counter("convert.inc.cover_reuse"),
		incPairReuse:  m.Counter("convert.inc.pair_reuse"),

		pollRounds:        m.Counter("poll.rounds"),
		pollCollisions:    m.Counter("poll.collisions"),
		pollDecoded:       m.Counter("poll.decoded"),
		pollFailedReports: m.Counter("poll.failed"),
	}
	for i, name := range convert.PassNames {
		full := "convert.pass." + name + ".ns"
		cm.passNs[i] = m.Counter(full)
		// Wall-clock pass timings are host measurements: exclude them from
		// replay-verification digests (checkpoint restore) or no two runs
		// would ever verify.
		m.MarkWallClock(full)
	}
	e.convMetrics = cm
	e.chainDepth = m.LogHist("domino.chain_depth")
}

// notePollCycle accounts one completed polling cycle: engine counters always,
// metrics counters when wired.
func (e *Engine) notePollCycle(res poll.Result) {
	e.PollRounds += res.Rounds
	e.PollCollisions += res.Collisions
	e.PollDecoded += len(res.Values)
	e.PollFailed += len(res.Failed)
	if cm := e.convMetrics; cm != nil {
		cm.pollRounds.Add(int64(res.Rounds))
		cm.pollCollisions.Add(int64(res.Collisions))
		cm.pollDecoded.Add(int64(len(res.Values)))
		cm.pollFailedReports.Add(int64(len(res.Failed)))
	}
}

// noteConvert accounts one dispatched batch: counters into the metrics
// registry (wall-clock pass times included — they never enter traces) and,
// when Config.ConvertTrace is on, deterministic KindConvert records.
func (e *Engine) noteConvert(p *convert.Plan, firstSlot int) {
	st := &p.Stats
	if cm := e.convMetrics; cm != nil {
		cm.batches.Inc()
		if st.CacheHit {
			cm.cacheHits.Inc()
		} else {
			cm.cacheMisses.Inc()
		}
		cm.slots.Add(int64(st.Slots))
		cm.realEntries.Add(int64(st.RealEntries))
		cm.fakeEntries.Add(int64(st.FakeEntries))
		cm.triggers.Add(int64(st.Triggers))
		cm.backupTriggers.Add(int64(st.BackupTriggers))
		cm.boundaryTriggers.Add(int64(st.BoundaryTriggers))
		cm.untriggered.Add(int64(st.Untriggered))
		cm.ropSlots.Add(int64(st.ROPSlots))
		cm.ropShared.Add(int64(st.ROPShared))
		cm.ropForced.Add(int64(st.ROPForced))
		cm.pollTriggers.Add(int64(st.PollTriggers))
		for i, ns := range st.PassNs {
			cm.passNs[i].Add(ns)
		}
		info := e.server.conv.CacheDetails()
		cm.cacheOccupancy.Set(float64(info.Occupancy))
		cm.cacheEvictions.Add(info.Evictions - cm.lastEvict)
		cm.cacheExactHits.Add(info.ExactHits - cm.lastExact)
		cm.cacheCanonicalHits.Add(info.CanonicalHits - cm.lastCanon)
		cm.lastEvict, cm.lastExact, cm.lastCanon = info.Evictions, info.ExactHits, info.CanonicalHits
		cm.incCoverReuse.Add(int64(st.CoverReuse))
		cm.incPairReuse.Add(int64(st.PairReuse))
	}
	if !e.cfg.ConvertTrace || e.Obs == nil {
		return
	}
	// All of a batch's records share one span, so tracedump can group a
	// conversion batch as a single tree node.
	var batchSpan int64
	if e.sp != nil {
		batchSpan = e.sp.Next()
	}
	emit := func(aux string, value, extra int64) {
		rec := obs.Rec(e.k.Now(), obs.KindConvert)
		rec.Slot = firstSlot
		rec.Aux = aux
		rec.Value = value
		rec.Extra = extra
		rec.OK = true
		rec.Span = batchSpan
		e.Obs.Emit(rec)
	}
	// One record per pass, each carrying that pass's two headline counters.
	// Pass wall-clock times deliberately never appear here: traces must stay
	// deterministic.
	emit(convert.PassNames[0], int64(st.RealEntries), int64(st.FakeEntries))
	emit(convert.PassNames[1], int64(st.Triggers), int64(st.BackupTriggers))
	emit(convert.PassNames[2], int64(st.BoundaryTriggers), int64(st.Untriggered))
	emit(convert.PassNames[3], int64(st.ROPSlots), int64(st.PollTriggers))
	hit := int64(0)
	if st.CacheHit {
		hit = 1
	}
	emit("cache", hit, int64(len(p.Slots)))
	info := e.server.conv.CacheDetails()
	emit("cache_lru", int64(info.Occupancy), info.Evictions)
	emit("incremental", int64(st.CoverReuse), int64(st.PairReuse))
	// Inbound-trigger histogram over this batch's entries (final: batch
	// connection already ran) and combined-signature histogram over the slots
	// whose broadcast lists are final — the rewritten retained slot plus every
	// slot but the last (its broadcasts fill in when the next batch connects).
	inbound := map[int]int{}
	for i := range p.Slots {
		for _, en := range p.Slots[i].Entries {
			inbound[len(en.TriggeredBy)]++
		}
	}
	for k := 0; k <= e.server.conv.MaxInbound; k++ {
		if inbound[k] > 0 {
			emit("inbound", int64(k), int64(inbound[k]))
		}
	}
	combined := map[int]int{}
	tally := func(s *convert.RelSlot) {
		for _, b := range s.Broadcasts {
			combined[len(b.Targets)]++
		}
	}
	if p.Prev != nil {
		tally(p.Prev)
	}
	for i := 0; i+1 < len(p.Slots); i++ {
		tally(&p.Slots[i])
	}
	for k := 1; k <= e.server.conv.MaxOutbound; k++ {
		if combined[k] > 0 {
			emit("combined", int64(k), int64(combined[k]))
		}
	}
}
