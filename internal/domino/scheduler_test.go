package domino

import (
	"testing"

	"repro/internal/strict"
	"repro/internal/topo"
)

// TestCustomScheduler runs DOMINO with the LQF scheduler in place of RAND —
// the converter must be scheduler-agnostic (paper contribution 1).
func TestCustomScheduler(t *testing.T) {
	aggLQF, eLQF := runWith(t, 31, func(c *Config) {
		c.NewScheduler = func(g *topo.ConflictGraph) strict.Scheduler { return strict.NewLQF(g) }
	})
	aggRAND, _ := runWith(t, 31, nil)
	if aggLQF < 10 {
		t.Errorf("LQF-driven DOMINO got %.2f Mbps", aggLQF)
	}
	// Same topology, same traffic: the two schedulers should land in the
	// same ballpark (LQF lacks RAND's rotation fairness but picks the same
	// maximal sets under uniform saturation).
	if aggLQF < aggRAND*0.7 {
		t.Errorf("LQF %.2f far below RAND %.2f", aggLQF, aggRAND)
	}
	if eLQF.SelfStarts > 100 {
		t.Errorf("LQF chains unhealthy: %d self-starts", eLQF.SelfStarts)
	}
}
