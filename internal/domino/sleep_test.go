package domino

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func TestSleepExcludesClient(t *testing.T) {
	net := topo.TwoPairs(topo.ExposedTerminals)
	links := net.BuildLinks(true, true)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(11)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	engine := New(k, medium, g, hub, DefaultConfig())
	coll := stats.NewCollector(len(links), 0)
	hub.Add(coll)
	for _, l := range links {
		s := traffic.NewSaturated(k, engine, l, 512, 8)
		hub.Add(s)
		s.Start()
	}
	engine.Start()
	// Sleep client 1 (pair 0) for the middle second of a 3 s run.
	k.At(sim.Second, func() { engine.Sleep(1, sim.Second) })
	k.RunUntil(sim.Second)
	mid := map[int]int{}
	for _, l := range links {
		mid[l.ID] = coll.Link(l.ID).DeliveredPkts
	}
	if !func() bool { k.RunUntil(sim.Second + sim.Millisecond); return engine.Asleep(1) }() {
		t.Fatal("client 1 not asleep")
	}
	k.RunUntil(2 * sim.Second)
	sleepDelta := map[int]int{}
	for _, l := range links {
		sleepDelta[l.ID] = coll.Link(l.ID).DeliveredPkts - mid[l.ID]
	}
	k.RunUntil(3 * sim.Second)
	if engine.Asleep(1) {
		t.Fatal("client 1 never woke")
	}
	// Links touching client 1 (IDs 0: AP0→C1 and 1: C1→AP0) must be ~silent
	// during the sleep window; the other pair keeps working.
	if sleepDelta[0] > 10 || sleepDelta[1] > 10 {
		t.Errorf("sleeping client still served: down=%d up=%d", sleepDelta[0], sleepDelta[1])
	}
	if sleepDelta[2] < 500 || sleepDelta[3] < 500 {
		t.Errorf("awake pair starved during neighbour's sleep: %d/%d", sleepDelta[2], sleepDelta[3])
	}
	// After waking, the pair-0 links resume.
	for _, id := range []int{0, 1} {
		resumed := coll.Link(id).DeliveredPkts - mid[id] - sleepDelta[id]
		if resumed < 300 {
			t.Errorf("link %d did not resume after wake: %d", id, resumed)
		}
	}
}

func TestSleepAPPanics(t *testing.T) {
	net := topo.TwoPairs(topo.ExposedTerminals)
	links := net.BuildLinks(true, false)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(1)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	engine := New(k, medium, g, nil, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("sleeping an AP did not panic")
		}
	}()
	engine.Sleep(0, sim.Second)
}
