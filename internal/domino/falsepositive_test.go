package domino

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// TestFalsePositiveRobustness injects a pessimistic 2% correlator
// false-positive rate: spurious triggers fire, but slot-indexed duty
// matching keeps the damage marginal (the paper measured <1% FP and relies
// on the same robustness).
func TestFalsePositiveRobustness(t *testing.T) {
	run := func(fp float64) (float64, int) {
		net := topo.Figure7()
		links := net.BuildLinks(true, true)
		pcfg := phy.DefaultConfig()
		pcfg.FalsePositiveRate = fp
		g := topo.NewConflictGraph(net, links, pcfg, phy.Rate12)
		k := sim.New(17)
		medium := phy.NewMedium(k, net.RSS, pcfg)
		hub := &mac.Hub{}
		engine := New(k, medium, g, hub, DefaultConfig())
		coll := stats.NewCollector(len(links), 0)
		hub.Add(coll)
		for _, l := range links {
			s := traffic.NewSaturated(k, engine, l, 512, 8)
			hub.Add(s)
			s.Start()
		}
		engine.Start()
		k.RunUntil(2 * sim.Second)
		return coll.AggregateMbps(2 * sim.Second), engine.FalseTriggers
	}
	clean, fp0 := run(0)
	noisy, fpN := run(0.02)
	if fp0 != 0 {
		t.Errorf("false triggers with rate 0: %d", fp0)
	}
	if fpN == 0 {
		t.Error("no false triggers at 2% rate")
	}
	if noisy < clean*0.9 {
		t.Errorf("2%% false positives cost too much: %.2f vs %.2f Mbps", noisy, clean)
	}
}
