// Package domino implements the DOMINO channel-access framework (paper §3):
// a central server computes strict schedules from polled queue state,
// converts them to relative schedules (internal/convert), and distributes
// them to APs over a jittery wired backbone; on the air, every slot's
// transmissions are triggered by Gold-signature broadcasts appended to the
// previous slot's exchange — no clock synchronization anywhere.
package domino

import (
	"encoding/json"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/strict"
	"repro/internal/topo"
)

// Config parameterises a DOMINO instance.
type Config struct {
	// Rate is the PHY data rate for data frames.
	Rate phy.Rate
	// VirtualBytes is the fixed virtual-packet size every slot is sized for
	// (§3.5: packet splitting/aggregation makes all packets take equal air
	// time).
	VirtualBytes int
	// BatchSize is the number of strict slots per scheduling batch — the
	// reciprocal of the polling frequency (§5).
	BatchSize int
	// AdaptiveBatch shrinks batches toward MinBatch when demand is light, so
	// light arrivals are not gated behind a full batch of fake slots — the
	// "better polling scheme" the paper leaves as future work (§5).
	AdaptiveBatch bool
	// MinBatch bounds adaptive shrinking (0 means 4).
	MinBatch int
	// WiredLatencyMean/Std describe backbone latency between server and APs
	// (paper §4.2.1: normal with mean 285 µs, σ 22 µs).
	WiredLatencyMean sim.Time
	WiredLatencyStd  sim.Time
	// WatchdogSlots is how many slot durations of silence an AP tolerates
	// before self-starting its next action — a last resort: the per-AP
	// free-running slot clock (scheduleSelfArm) is the normal fallback when
	// triggers fail, so the watchdog only matters if that chain also broke.
	WatchdogSlots int
	// QueueCap bounds per-link MAC queues.
	QueueCap int
	// MisalignSlots is how many leading slot indices the misalignment probe
	// records (Fig 11); zero disables.
	MisalignSlots int
	// ExtraFrameTime inflates data/ACK air time (USRP prototype modelling).
	ExtraFrameTime sim.Time
	// MaxInbound overrides the converter's trigger redundancy when positive
	// (ablation; the paper picks 2).
	MaxInbound int
	// NoFakeCover disables the converter's fake-link insertion (ablation).
	NoFakeCover bool
	// CoPDuration, when positive, inserts a carrier-sensing contention
	// period of this length after every batch (the CFP/CoP split of §5,
	// Fig 15): DOMINO stays silent and external DCF traffic gets the
	// channel; DOMINO's data frames carry a NAV to the end of each CFP.
	CoPDuration sim.Time
	// Scheduler selects the strict scheduling policy by registered name
	// (internal/strict registry: RAND, LQF, RoundRobin, Weighted and their
	// aliases, case-insensitive). Empty means the paper's RAND. The
	// NewScheduler hook, when set, takes precedence.
	Scheduler string
	// NewScheduler builds the strict scheduler the server runs; nil means
	// the Scheduler name (or the paper's RAND when that is empty too). Any
	// strict.Scheduler works — the converter is scheduler-agnostic (§3,
	// contribution 1).
	NewScheduler func(*topo.ConflictGraph) strict.Scheduler
	// NoConvertCache disables the converter's conversion cache. The cache
	// replays steady-state batch conversions bit-identically (canonical keys
	// cover everything the pass pipeline reads), so it is on by default.
	NoConvertCache bool
	// ConvertCacheCap overrides the conversion cache's LRU capacity when
	// positive (0 means convert.DefaultCacheCap). Ignored with
	// NoConvertCache.
	ConvertCacheCap int
	// NoIncremental disables the converter's incremental re-conversion layer
	// (per-slot cover and per-pair trigger memos). Incremental conversion is
	// bit-identical to full re-conversion, so it is on by default.
	NoIncremental bool
	// VerifyConvert runs convert.Verify on every plan the converter emits
	// and panics on violation — a debug aid (tests always verify; production
	// runs skip the O(slots²) check).
	VerifyConvert bool
	// ConvertTrace, when the engine has a trace sink, emits per-batch
	// KindConvert records: deterministic pass counters, the cache outcome and
	// trigger/signature histograms. Off by default so existing golden traces
	// are byte-identical.
	ConvertTrace bool
	// SignatureChips selects the Gold-code length (127, 255* or 511; §5
	// "Number of signatures"): longer codes support more nodes per collision
	// domain at proportionally longer trigger air time. Zero means 127.
	// (*255 has no true Gold preferred pair — m=8 ≡ 0 mod 4 — so the 511
	// set serves that capacity bracket too.)
	SignatureChips int
	// Poller selects the polling scheme by registered name (internal/poll
	// registry: ROP, A2P, UORA and their aliases, case-insensitive). Empty
	// means the paper's ROP. Multi-round pollers widen every poll boundary to
	// rounds × the ROP slot duration, so the relative schedule stays
	// renegotiation-free.
	Poller string
	// PollerConfig overlays poller-specific knobs (a JSON object of the
	// poller's config-struct fields) on its defaults. Ignored when empty.
	PollerConfig json.RawMessage
	// Piggyback replaces Rapid OFDM Polling with the naive piggyback scheme
	// the paper argues against (§2): clients report their backlog only in
	// the headers of packets they send, so a client that falls silent can
	// never announce new arrivals — the starvation ROP was designed to fix.
	Piggyback bool
}

// DefaultConfig mirrors the evaluation settings.
func DefaultConfig() Config {
	return Config{
		Rate:             phy.Rate12,
		VirtualBytes:     512,
		BatchSize:        24,
		WiredLatencyMean: sim.Micros(285),
		WiredLatencyStd:  sim.Micros(22),
		WatchdogSlots:    12,
		QueueCap:         mac.DefaultQueueCap,
		MisalignSlots:    0,
	}
}

// dataAirtime is the fixed air time of one virtual data packet.
func (c Config) dataAirtime() sim.Time {
	return phy.Airtime(c.VirtualBytes, c.Rate) + c.ExtraFrameTime
}

func (c Config) ackAirtime() sim.Time {
	return phy.Airtime(phy.AckBytes, c.Rate) + c.ExtraFrameTime
}

// fakeHeaderAirtime is the on-air time of a header-only fake packet: PLCP
// preamble plus one OFDM symbol (§3.3: only the header is sent).
func (c Config) fakeHeaderAirtime() sim.Time {
	return phy.PreambleDuration + phy.SymbolDuration + c.ExtraFrameTime
}

// broadcastOffset is when, relative to slot start, the end-of-slot signature
// broadcast begins: data + SIFS + ACK + one WiFi slot (paper Fig 8).
func (c Config) broadcastOffset() sim.Time {
	return c.dataAirtime() + phy.SIFS + c.ackAirtime() + phy.SlotTime
}

// signatureDuration is one code's air time at 20 Mcps BPSK.
func (c Config) signatureDuration() sim.Time {
	chips := c.SignatureChips
	if chips <= 0 {
		chips = 127
	}
	return sim.Micros(float64(chips) / 20)
}

// SignatureCapacity is how many distinct node signatures the configured code
// length provides within one collision domain (2^m + 1 codes minus the two
// reserved for START and ROP; paper §3.2).
func (c Config) SignatureCapacity() int {
	chips := c.SignatureChips
	if chips <= 0 {
		chips = 127
	}
	return chips // 2^m+1 codes − 2 reserved = (2^m −1) = chips
}

// sigFrameDuration is the combined-signature broadcast followed by the START
// (or ROP) signature in sequence.
func (c Config) sigFrameDuration() sim.Time {
	return 2 * c.signatureDuration()
}

// slotDuration is the full relative-slot period.
func (c Config) slotDuration() sim.Time {
	return c.broadcastOffset() + c.sigFrameDuration()
}

// pollAirtime is the poll packet's air time (a short broadcast carrying the
// reference preamble).
func (c Config) pollAirtime() sim.Time {
	return phy.PreambleDuration + phy.SymbolDuration + c.ExtraFrameTime
}

// ropSlotDuration is the gap data senders leave for one polling exchange:
// the poll packet, the WiFi-slot turnaround, the 16 µs control symbol and
// processing slack. With zero ExtraFrameTime this matches the nominal
// 80 µs ROP slot (paper §3.3).
func (c Config) ropSlotDuration() sim.Time {
	d := c.pollAirtime() + phy.SlotTime + sim.Micros(16) + sim.Micros(31)
	if d < phy.ROPSlotDuration {
		d = phy.ROPSlotDuration
	}
	return d
}
