package domino

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// runWith builds a saturated Figure7 run under a mutated config and returns
// aggregate throughput plus the engine.
func runWith(t *testing.T, seed int64, mut func(*Config)) (float64, *Engine) {
	t.Helper()
	net := topo.Figure7()
	links := net.BuildLinks(true, true)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(seed)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	engine := New(k, medium, g, hub, cfg)
	coll := stats.NewCollector(len(links), 0)
	hub.Add(coll)
	for _, l := range links {
		s := traffic.NewSaturated(k, engine, l, 512, 8)
		hub.Add(s)
		s.Start()
	}
	engine.Start()
	k.RunUntil(2 * sim.Second)
	return coll.AggregateMbps(2 * sim.Second), engine
}

func TestMaxInboundOverride(t *testing.T) {
	agg1, e1 := runWith(t, 1, func(c *Config) { c.MaxInbound = 1 })
	agg2, e2 := runWith(t, 1, func(c *Config) { c.MaxInbound = 2 })
	if agg1 < 10 || agg2 < 10 {
		t.Errorf("ablation runs unhealthy: inbound1=%.2f inbound2=%.2f", agg1, agg2)
	}
	// With reliable triggers the difference is small, but inbound=1 must not
	// outperform systematically and both chains must stay alive.
	if e1.SelfStarts > 100 || e2.SelfStarts > 100 {
		t.Errorf("self-starts: inbound1=%d inbound2=%d", e1.SelfStarts, e2.SelfStarts)
	}
}

func TestNoFakeCoverStillWorks(t *testing.T) {
	agg, e := runWith(t, 2, func(c *Config) { c.NoFakeCover = true })
	if agg < 8 {
		t.Errorf("no-fake-cover run collapsed: %.2f Mbps", agg)
	}
	if e.FakeSends > e.DataSends/2 {
		t.Errorf("cover disabled but fake sends = %d vs data %d", e.FakeSends, e.DataSends)
	}
}

// TestUSRPGradeConfig exercises the Table 2 regime: 25 ms of host latency per
// frame. Slots stretch to ~50 ms, the ROP gap scales with them, and the
// chains must survive (this is the configuration that regenerates Table 2).
func TestUSRPGradeConfig(t *testing.T) {
	net := topo.TwoPairs(topo.HiddenTerminals)
	links := net.BuildLinks(true, false)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(3)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	cfg := DefaultConfig()
	cfg.ExtraFrameTime = 25 * sim.Millisecond
	engine := New(k, medium, g, hub, cfg)
	coll := stats.NewCollector(len(links), 0)
	hub.Add(coll)
	for _, l := range links {
		s := traffic.NewSaturated(k, engine, l, 512, 8)
		hub.Add(s)
		s.Start()
	}
	engine.Start()
	k.RunUntil(30 * sim.Second)
	if engine.DataSends < 200 {
		t.Fatalf("USRP-grade chain moved only %d packets in 30 s", engine.DataSends)
	}
	if ratio := float64(engine.AckMisses) / float64(engine.DataSends); ratio > 0.1 {
		t.Errorf("ack miss ratio %.2f under inflated slots", ratio)
	}
	a := coll.ThroughputMbps(0, 30*sim.Second)
	b := coll.ThroughputMbps(1, 30*sim.Second)
	if f := stats.JainIndex([]float64{a, b}); f < 0.95 {
		t.Errorf("hidden pair unfair under USRP config: %.3f (%.4f vs %.4f)", f, a, b)
	}
}

// TestScheduleStatsAccessor keeps the diagnostics accessor honest.
func TestScheduleStatsAccessor(t *testing.T) {
	_, e := runWith(t, 4, nil)
	entries, slots, ropSlots, untriggered := e.DebugScheduleStats()
	if slots == 0 || entries == 0 {
		t.Fatalf("stats empty: %d entries, %d slots", entries, slots)
	}
	if ropSlots == 0 {
		t.Error("no ROP slots despite per-batch polling")
	}
	if untriggered > entries/10 {
		t.Errorf("%d/%d untriggered entries in a well-connected topology", untriggered, entries)
	}
	if float64(entries)/float64(slots) < 1.5 {
		t.Errorf("average cover %.2f too thin for Figure7", float64(entries)/float64(slots))
	}
}
