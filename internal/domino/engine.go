package domino

import (
	"fmt"
	"sort"

	"repro/internal/convert"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/poll"
	_ "repro/internal/rop" // registers the default ROP poller
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/strict"
	"repro/internal/topo"
)

// TraceEvent is an engine activity record for the microscope view (Fig 10).
// Span/Parent/Depth are observability-only causal annotations (zero unless
// the run allocates spans); the microscope printers may ignore them.
type TraceEvent struct {
	At   sim.Time
	Slot int
	Kind string // data, fake, ack, poll, bcast, trigger, selfstart, drop
	Node phy.NodeID
	Link *topo.Link
	OK   bool

	Span   int64 // causal span this event opens, 0 if none
	Parent int64 // span that caused it, 0 if root/none
	Depth  int   // trigger-cascade depth (trigger events only)
}

// Engine is a complete DOMINO deployment: central server, APs, clients.
type Engine struct {
	k      *sim.Kernel
	medium *phy.Medium
	g      *topo.ConflictGraph
	net    *topo.Network
	events mac.Events
	cfg    Config

	queues []*mac.Queue
	slots  []*convert.RelSlot // global slot sequence, appended per batch
	// slotOffset[i] is slot i's nominal start relative to the chain origin
	// (slot durations plus ROP and CoP gaps); APs free-run on it between
	// triggers.
	slotOffset []sim.Time
	// batchEnd[i] is the last slot index of the batch containing slot i,
	// used to stamp the NAV (CFP end) into data frames when CoP is on.
	batchEnd []int
	aps      map[phy.NodeID]*apNode
	clients  map[phy.NodeID]*clientNode
	server   *server
	// maxExec tracks execution progress (highest slot index observed); the
	// server pipelines the next batch when execution nears the end of the
	// known schedule.
	maxExec      int
	buildPending bool

	// Misalign records per-slot transmission spread when configured (Fig 11).
	Misalign *stats.Misalignment
	// refGroup maps each node to its trigger-connectivity component: nodes
	// in different components share no reference chain, so misalignment is
	// only compared within a component.
	refGroup []int
	// Trace receives activity events when non-nil.
	Trace func(TraceEvent)
	// Obs, when non-nil, receives typed slot-timeline records mirroring the
	// Trace stream (slot_start for data/fake sends, slot_end for boundary
	// broadcasts, trigger/trigger_miss for signature outcomes) plus ROP poll
	// records from DecodeObserved. The nil default costs one branch per
	// trace call.
	Obs obs.Tracer
	// life is the per-run packet-lifecycle sink (enqueue/dequeue stamps and
	// span assignment) and sp the causal span allocator; both nil unless
	// WireObs ran, and every use guards with one nil check.
	life *obs.Run
	sp   *obs.Spans
	// chainDepth histograms trigger-cascade depth when metrics are wired.
	chainDepth *obs.LogHist
	// convMetrics holds the conversion-pipeline counters once WireMetrics
	// installed a registry; nil means no metrics accounting at all.
	convMetrics *convertMetrics

	// pollRounds is the engine-wide poll-gap multiplier: the maximum Rounds()
	// over every AP's poller (≥ 1). Every reserved poll boundary spans
	// pollRounds × the ROP slot duration so all APs agree on slot offsets.
	pollRounds int
	// UnpolledClients lists clients left out of polling because their AP had
	// more clients than its poller supports (Descriptor.MaxClients); the
	// strongest clients by RSS were kept. The paper's ROP caps at 24; A2P and
	// UORA are unbounded. Replaces the former hard panic.
	UnpolledClients []phy.NodeID

	// Counters.
	DataSends  int
	FakeSends  int
	Polls      int
	SelfStarts int
	Drops      int
	AckMisses  int
	// TriggerMisses counts signature broadcasts carrying a node's ID that
	// the node failed to detect; TriggerLate counts triggers discarded
	// because a transmission was already armed from an earlier reference;
	// FalseTriggers counts correlator false positives (phy
	// Config.FalsePositiveRate) acted upon.
	TriggerMisses int
	TriggerLate   int
	FalseTriggers int
	// Poller outcome counters: rounds and random-access collisions across all
	// polling cycles, and how many per-client reports decoded vs failed.
	PollRounds     int
	PollCollisions int
	PollDecoded    int
	PollFailed     int
}

// pollGap is the air time every schedule reserves for one complete polling
// cycle: the per-round ROP slot times the engine-wide round count. With the
// default single-round ROP this is exactly the classic ROP slot.
func (e *Engine) pollGap() sim.Time {
	r := e.pollRounds
	if r < 1 {
		r = 1
	}
	return sim.Time(r) * e.cfg.ropSlotDuration()
}

// falseTrigger rolls the correlator's false-positive dice for a signature
// frame that did NOT carry this node's ID.
func (e *Engine) falseTrigger() bool {
	p := e.medium.Config().FalsePositiveRate
	if p <= 0 {
		return false
	}
	if e.k.Rand().Float64() < p {
		e.FalseTriggers++
		return true
	}
	return false
}

// meta rides on data and fake-header frames: the packet itself plus the
// signature-broadcast instructions for the client endpoint (S1 of Fig 8) and
// the slot identity.
type meta struct {
	// pkts is the bundle of MAC packets aggregated into this slot's virtual
	// packet (§3.5: splitting/aggregation makes every transmission take the
	// fixed virtual air time; several small packets — TCP ACKs in
	// particular — share one slot).
	pkts       []*mac.Packet
	slot       int
	clientSigs []phy.NodeID
	rop        bool
	// span/depth carry the slot's causal span and the sender's trigger-chain
	// depth to the receiver, so its follow-on duties parent correctly.
	span  int64
	depth int
	// selfNext tells the receiving client it is the next slot's sender, so
	// the end of this slot's boundary exchange is its transmit reference;
	// nextWait is how long past the boundary it must hold off (ROP or CoP
	// gap).
	selfNext bool
	nextWait sim.Time
	// backlog piggybacks the client's remaining uplink queue length on
	// frames it sends (only meaningful with Config.Piggyback).
	backlog int
}

// ackMeta rides on ACKs: which packet is acknowledged plus the client's
// broadcast instructions when the client was the sender (Fig 8b).
type ackMeta struct {
	pkts       []*mac.Packet
	slot       int
	clientSigs []phy.NodeID
	rop        bool
	selfNext   bool
	nextWait   sim.Time
}

// New assembles a DOMINO engine over a conflict graph. Both endpoints of
// every link register on the medium.
func New(k *sim.Kernel, medium *phy.Medium, g *topo.ConflictGraph, events mac.Events, cfg Config) *Engine {
	if events == nil {
		events = mac.NopEvents{}
	}
	e := &Engine{
		k: k, medium: medium, g: g, net: g.Net, events: events, cfg: cfg,
		aps:     map[phy.NodeID]*apNode{},
		clients: map[phy.NodeID]*clientNode{},
	}
	if cfg.MisalignSlots > 0 {
		e.Misalign = stats.NewMisalignment(cfg.MisalignSlots)
	}
	e.queues = make([]*mac.Queue, len(g.Links))
	for _, l := range g.Links {
		e.queues[l.ID] = mac.NewQueue(cfg.QueueCap)
	}
	for _, l := range g.Links {
		e.ensureNode(l.Sender)
		e.ensureNode(l.Receiver)
	}
	if n := g.Net.NumNodes(); n > cfg.SignatureCapacity() {
		panic(fmt.Sprintf("domino: %d nodes exceed the %d-signature capacity; use longer codes (Config.SignatureChips)",
			n, cfg.SignatureCapacity()))
	}
	// Poller instances per AP (internal/poll registry; default ROP). The AP
	// slice is iterated in network order so UnpolledClients is deterministic.
	pollerName := cfg.Poller
	if pollerName == "" {
		pollerName = "ROP"
	}
	pd, ok := poll.Lookup(pollerName)
	if !ok {
		panic(fmt.Sprintf("domino: unknown poller %q", pollerName))
	}
	e.pollRounds = 1
	for _, apID := range e.net.APs {
		ap, here := e.aps[apID]
		if !here {
			continue
		}
		apID := apID
		rssFn := func(c phy.NodeID) float64 { return e.net.RSS[c][apID] }
		clients := e.net.Clients(apID)
		if pd.MaxClients > 0 && len(clients) > pd.MaxClients {
			// More clients than the poller's layout supports: keep the
			// strongest MaxClients and surface the rest instead of panicking
			// (the former behaviour). Callers report Engine.UnpolledClients
			// alongside SkippedLinks.
			sorted := append([]phy.NodeID(nil), clients...)
			sort.SliceStable(sorted, func(a, b int) bool {
				return rssFn(sorted[a]) > rssFn(sorted[b])
			})
			clients = sorted[:pd.MaxClients]
			e.UnpolledClients = append(e.UnpolledClients, sorted[pd.MaxClients:]...)
		}
		p, err := poll.Build(pollerName, cfg.PollerConfig)
		if err != nil {
			panic(fmt.Sprintf("domino: %v", err))
		}
		p.Assign(clients, rssFn)
		if r := p.Rounds(); r > e.pollRounds {
			e.pollRounds = r
		}
		ap.poller = p
	}
	e.server = newServer(e)
	e.refGroup = triggerComponents(g.Net)
	return e
}

// triggerComponents labels nodes by connected component of the "a signature
// from a reaches b" graph.
func triggerComponents(net *topo.Network) []int {
	n := net.NumNodes()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int
	for start := 0; start < n; start++ {
		if comp[start] != -1 {
			continue
		}
		comp[start] = next
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for u := 0; u < n; u++ {
				if comp[u] == -1 &&
					(net.RSS[v][u] >= topo.TriggerFloorDBm || net.RSS[u][v] >= topo.TriggerFloorDBm) {
					comp[u] = next
					stack = append(stack, u)
				}
			}
		}
		next++
	}
	return comp
}

func (e *Engine) ensureNode(id phy.NodeID) {
	if e.net.IsAP[id] {
		if _, ok := e.aps[id]; !ok {
			ap := &apNode{e: e, id: id}
			e.aps[id] = ap
			e.medium.Register(id, ap)
		}
		return
	}
	if _, ok := e.clients[id]; !ok {
		c := &clientNode{e: e, id: id, ap: e.net.APOf[id]}
		for _, l := range e.g.Links {
			if l.Sender == id {
				c.uplink = l
			}
		}
		e.clients[id] = c
		e.medium.Register(id, c)
	}
}

// Start implements mac.Engine: the server computes and dispatches the first
// batch.
func (e *Engine) Start() {
	e.k.After(0, e.server.buildAndDispatch).SetSource(sim.SrcMAC)
}

// Enqueue implements mac.Engine.
func (e *Engine) Enqueue(p *mac.Packet) {
	if !e.queues[p.Link.ID].Push(p) {
		e.events.Dropped(p, e.k.Now())
		return
	}
	if e.life != nil {
		e.life.PacketQueued(p, e.k.Now())
	}
}

// QueueLen implements mac.Engine.
func (e *Engine) QueueLen(link int) int { return e.queues[link].Len() }

// Slots exposes how many global slots have been scheduled so far.
func (e *Engine) Slots() int { return len(e.slots) }

// ConvertCacheStats reports the conversion cache's hits and misses (zeros
// when Config.NoConvertCache disabled it).
func (e *Engine) ConvertCacheStats() (hits, misses int64) {
	return e.server.conv.CacheStats()
}

// ConvertCacheDetails reports the cache's full accounting (occupancy,
// evictions, exact vs canonical-only hits); zeros when the cache is off.
func (e *Engine) ConvertCacheDetails() convert.CacheInfo {
	return e.server.conv.CacheDetails()
}

// ConvertIncrementalStats reports the incremental re-conversion layer's
// counters; zeros when Config.NoIncremental disabled it.
func (e *Engine) ConvertIncrementalStats() convert.IncStats {
	return e.server.conv.IncrementalStats()
}

// DebugScheduleStats summarises the built schedule: total entries, slots,
// ROP boundaries and entries without triggers (tests and diagnostics).
func (e *Engine) DebugScheduleStats() (entries, slots, ropSlots, untriggered int) {
	slots = len(e.slots)
	for _, sl := range e.slots {
		entries += len(sl.Entries)
		if len(sl.ROPAfter) > 0 {
			ropSlots++
		}
		for _, en := range sl.Entries {
			if len(en.TriggeredBy) == 0 {
				untriggered++
			}
		}
	}
	return
}

// SigMissStats histograms failed own-signature receptions for diagnostics.
type SigMissStats struct {
	WhileTx  int
	LowSINR  int
	Combined int
	Other    int
}

// SigMisses accumulates when non-nil.
var sigMissDiag *SigMissStats

// EnableSigMissDiag installs a shared diagnostic accumulator (tests only).
func EnableSigMissDiag() *SigMissStats {
	sigMissDiag = &SigMissStats{}
	return sigMissDiag
}

func (e *Engine) noteSigMiss(id phy.NodeID, det *phy.SignatureDetection) {
	if sigMissDiag == nil {
		return
	}
	switch {
	case e.medium.Transmitting(id):
		sigMissDiag.WhileTx++
	case det != nil && det.SINRdB < e.medium.Config().SigSINRdB:
		sigMissDiag.LowSINR++
	case det != nil && det.Combined > 4:
		sigMissDiag.Combined++
	default:
		sigMissDiag.Other++
	}
}

func (e *Engine) trace(ev TraceEvent) {
	if e.Trace == nil && e.Obs == nil {
		return
	}
	ev.At = e.k.Now()
	if e.Trace != nil {
		e.Trace(ev)
	}
	if e.Obs == nil {
		return
	}
	// Bridge the string-kinded microscope stream onto typed obs records.
	// ACK/poll/selfstart/drop activity is covered elsewhere (the medium probe
	// sees every ACK frame; rop.DecodeObserved emits per-client poll records;
	// mac.Events sees drops), so only the slot-timeline kinds map here.
	switch ev.Kind {
	case "data", "fake":
		rec := obs.Rec(ev.At, obs.KindSlotStart)
		rec.Node = int(ev.Node)
		if ev.Link != nil {
			rec.Link = ev.Link.ID
		}
		rec.Slot = ev.Slot
		rec.Aux = ev.Kind
		rec.OK = ev.OK
		rec.Span = ev.Span
		rec.Parent = ev.Parent
		e.Obs.Emit(rec)
	case "trigger":
		rec := obs.Rec(ev.At, obs.KindTrigger)
		rec.Node = int(ev.Node)
		rec.Slot = ev.Slot
		rec.OK = true
		rec.Span = ev.Span
		rec.Parent = ev.Parent
		rec.Value = int64(ev.Depth)
		e.Obs.Emit(rec)
	case "bcast":
		// A boundary broadcast's Slot is the NEXT slot hint; the slot it
		// closes is the one before.
		rec := obs.Rec(ev.At, obs.KindSlotEnd)
		rec.Node = int(ev.Node)
		rec.Slot = ev.Slot - 1
		rec.OK = ev.OK
		rec.Span = ev.Span
		rec.Parent = ev.Parent
		e.Obs.Emit(rec)
	}
}

// noteTrigger accounts one detected own-signature trigger: it allocates the
// trigger's span (parented to the broadcast that carried it), histograms the
// cascade depth, and emits the trace event. Returns the new reference span
// and depth for the node to adopt.
func (e *Engine) noteTrigger(node phy.NodeID, pl *phy.SignaturePayload) (span int64, depth int) {
	depth = pl.ObsDepth + 1
	if e.sp != nil {
		span = e.sp.Next()
	}
	if e.chainDepth != nil {
		e.chainDepth.Record(int64(depth))
	}
	e.trace(TraceEvent{Slot: pl.SlotHint, Kind: "trigger", Node: node, OK: true,
		Span: span, Parent: pl.ObsSpan, Depth: depth})
	return span, depth
}

// triggerMiss records a failed own-signature detection: the broadcast carried
// the node's ID but the correlator (SINR model) missed it.
func (e *Engine) triggerMiss(id phy.NodeID, slotHint int) {
	e.TriggerMisses++
	if e.Obs != nil {
		rec := obs.Rec(e.k.Now(), obs.KindTriggerMiss)
		rec.Node = int(id)
		rec.Slot = slotHint
		e.Obs.Emit(rec)
	}
}

// EnableQueueSampling installs a per-link backlog observer on every queue
// (typically obs.Run.QueueSampler()). Call before traffic starts.
func (e *Engine) EnableQueueSampling(fn func(link, depth int)) {
	for id, q := range e.queues {
		id := id
		q.OnDepth = func(depth int) { fn(id, depth) }
	}
}

// ----------------------------------------------------------------------------
// Central server

type server struct {
	e     *Engine
	sched strict.Scheduler
	conv  *convert.Converter
	upEst []int
	// sleeping tracks clients the server has scheduled to sleep; their
	// links are excluded from batches until they wake.
	sleeping map[phy.NodeID]bool
}

func newServer(e *Engine) *server {
	conv := convert.New(e.g)
	if e.cfg.MaxInbound > 0 {
		conv.MaxInbound = e.cfg.MaxInbound
	}
	conv.DisableFakeCover = e.cfg.NoFakeCover
	if !e.cfg.NoConvertCache {
		conv.EnableCache(e.cfg.ConvertCacheCap)
	}
	if !e.cfg.NoIncremental {
		conv.EnableIncremental()
	}
	var sched strict.Scheduler
	switch {
	case e.cfg.NewScheduler != nil:
		sched = e.cfg.NewScheduler(e.g)
	case e.cfg.Scheduler != "":
		s, err := strict.BuildScheduler(e.cfg.Scheduler, e.g)
		if err != nil {
			panic(fmt.Sprintf("domino: %v", err))
		}
		sched = s
	default:
		sched = strict.NewRAND(e.g)
	}
	return &server{
		e:        e,
		sched:    sched,
		conv:     conv,
		upEst:    make([]int, len(e.g.Links)),
		sleeping: map[phy.NodeID]bool{},
	}
}

// buildAndDispatch computes the next batch from current queue knowledge,
// converts it, appends it to the global slot sequence and ships it to every
// AP over the wired backbone.
func (s *server) buildAndDispatch() {
	e := s.e
	est := make([]int, len(e.g.Links))
	for _, l := range e.g.Links {
		if !s.linkSchedulable(l.ID) {
			continue // endpoint asleep: no air time for this link
		}
		if l.Downlink {
			// AP queues are visible over the wire.
			est[l.ID] = e.queues[l.ID].Len()
		} else {
			est[l.ID] = s.upEst[l.ID]
		}
	}
	size := e.cfg.BatchSize
	if e.cfg.AdaptiveBatch {
		total := 0
		for _, v := range est {
			total += v
		}
		size = total + 2
		min := e.cfg.MinBatch
		if min <= 0 {
			min = 4
		}
		if size < min {
			size = min
		}
		if size > e.cfg.BatchSize {
			size = e.cfg.BatchSize
		}
	}
	batch := s.sched.Batch(est, size)
	// Pad to the full batch size with empty strict slots: the converter's
	// fake cover keeps the trigger chain and polling alive even when idle.
	// (Without the cover — ablation — padded slots would be dead air.)
	if !e.cfg.NoFakeCover {
		for len(batch) < size {
			batch = append(batch, strict.Slot{})
		}
	}
	if len(batch) == 0 {
		// Nothing to schedule at all: check again after one slot.
		e.k.After(e.cfg.slotDuration(), s.buildAndDispatch)
		return
	}
	// Scheduled uplink transmissions consume the polled estimates.
	for _, slot := range batch {
		for _, id := range slot {
			if !e.g.Links[id].Downlink && s.upEst[id] > 0 {
				s.upEst[id]--
			}
		}
	}
	if e.cfg.CoPDuration > 0 {
		// The contention period separates batches: no trigger chain crosses
		// it (external traffic owns the gap); the batch's first slot is
		// free-run from the APs' local clocks.
		s.conv.Reset()
	}
	pollAPs := e.net.APs
	if e.cfg.Piggyback {
		pollAPs = nil // no ROP slots: queue state arrives only by piggyback
	}
	plan := s.conv.ConvertPlan(batch, pollAPs)
	if e.cfg.VerifyConvert {
		if err := convert.Verify(plan); err != nil {
			panic(fmt.Sprintf("domino: VerifyConvert: %v", err))
		}
	}

	first := len(e.slots)
	ropSlots := 0
	for i := range plan.Slots {
		e.slots = append(e.slots, &plan.Slots[i])
		var last sim.Time
		if n := len(e.slotOffset); n > 0 {
			last = e.slotOffset[n-1] + e.cfg.slotDuration()
			if prev := e.slots[len(e.slots)-2]; len(prev.ROPAfter) > 0 {
				last += e.pollGap()
			}
			if i == 0 {
				last += e.cfg.CoPDuration
			}
		}
		e.slotOffset = append(e.slotOffset, last)
		if len(plan.Slots[i].ROPAfter) > 0 {
			ropSlots++
		}
	}
	newKnown := len(e.slots)
	for i := first; i < newKnown; i++ {
		e.batchEnd = append(e.batchEnd, newKnown-1)
	}
	e.noteConvert(plan, first)

	// Wired dispatch with jitter.
	for _, apID := range e.net.APs {
		ap := e.aps[apID]
		lat := e.cfg.WiredLatencyMean +
			sim.Time(e.k.Rand().NormFloat64()*float64(e.cfg.WiredLatencyStd))
		if lat < 0 {
			lat = 0
		}
		e.k.After(lat, func() { ap.receiveSchedule(newKnown) })
	}
	e.buildPending = false

	// Liveness fallback: execution normally pipelines the next batch via
	// noteProgress, but if every chain stalls (or the tail of this batch has
	// no executable entries) the server must still move forward.
	snapshot := len(e.slots)
	nominal := sim.Time(len(plan.Slots))*e.cfg.slotDuration() +
		sim.Time(ropSlots)*e.pollGap()
	e.k.After(2*nominal+10*e.cfg.slotDuration(), func() {
		if len(e.slots) == snapshot && !e.buildPending {
			e.buildPending = true
			s.buildAndDispatch()
		}
	})
}

// noteProgress records that execution reached the given slot and pipelines
// the next batch when the known schedule is nearly consumed: the batch must
// be converted (filling the retained slot's broadcasts) before the current
// last slot's end-of-slot triggers fire, but scheduling it any earlier would
// let the schedule run ahead of the air and decouple queue state from what
// actually transmits.
func (e *Engine) noteProgress(idx int) {
	if idx > e.maxExec {
		e.maxExec = idx
	}
	if !e.buildPending && len(e.slots)-e.maxExec <= 3 {
		e.buildPending = true
		e.server.buildAndDispatch()
	}
}

// pollResult integrates a poll outcome after its wired trip to the server.
func (s *server) pollResult(res poll.Result, clientUplink func(phy.NodeID) *topo.Link) {
	for c, v := range res.Values {
		if l := clientUplink(c); l != nil {
			s.upEst[l.ID] = v
		}
	}
}

// popBundle aggregates queued packets into one virtual packet: packets are
// taken FIFO while their summed size fits VirtualBytes (a lone oversized
// packet is sent alone — the splitting case simply counts it as one virtual
// packet). An empty queue yields nil.
func (e *Engine) popBundle(linkID int) []*mac.Packet {
	q := e.queues[linkID]
	var bundle []*mac.Packet
	total := 0
	for {
		head := q.Peek()
		if head == nil {
			break
		}
		if len(bundle) > 0 && total+head.Bytes > e.cfg.VirtualBytes {
			break
		}
		bundle = append(bundle, q.Pop())
		total += head.Bytes
		if total >= e.cfg.VirtualBytes {
			break
		}
	}
	if e.life != nil && bundle != nil {
		now := e.k.Now()
		for _, p := range bundle {
			e.life.PacketDequeued(p, now)
		}
	}
	return bundle
}

// requeueBundle puts a failed bundle back at the head of its queue,
// dropping packets past the retry limit.
func (e *Engine) requeueBundle(linkID int, bundle []*mac.Packet) {
	for i := len(bundle) - 1; i >= 0; i-- {
		p := bundle[i]
		p.Retries++
		if p.Retries > mac.RetryLimit {
			e.Drops++
			e.events.Dropped(p, e.k.Now())
			continue
		}
		e.queues[linkID].PushFront(p)
	}
}

// deliverBundle fires Delivered for every packet of an acknowledged bundle.
func (e *Engine) deliverBundle(bundle []*mac.Packet) {
	for _, p := range bundle {
		e.events.Delivered(p, e.k.Now())
	}
}

// gapAfter returns the scheduled gap between the end of slot idx and the
// start of slot idx+1 (zero normally; the ROP slot when polling follows; the
// CoP at batch boundaries).
func (e *Engine) gapAfter(idx int) sim.Time {
	if idx+1 >= len(e.slotOffset) || idx < 0 {
		if idx >= 0 && idx < len(e.slots) && len(e.slots[idx].ROPAfter) > 0 {
			return e.pollGap()
		}
		return 0
	}
	g := e.slotOffset[idx+1] - e.slotOffset[idx] - e.cfg.slotDuration()
	if g < 0 {
		return 0
	}
	return g
}

// navUntil returns the absolute NAV a data frame sent now in slot idx should
// carry: the end of its batch's contention-free period (zero when CoP is
// off, i.e. no extra reservation beyond the exchange).
func (e *Engine) navUntil(idx int, slotStart sim.Time) sim.Time {
	if e.cfg.CoPDuration <= 0 || idx >= len(e.batchEnd) {
		return 0
	}
	end := e.batchEnd[idx]
	return slotStart + (e.slotOffset[end] - e.slotOffset[idx]) + e.cfg.slotDuration()
}

// clientSenderInSlot reports whether the client sends in the given slot (for
// the selfNext instruction).
func (e *Engine) clientSenderInSlot(client phy.NodeID, idx int) bool {
	if idx < 0 || idx >= len(e.slots) {
		return false
	}
	for _, en := range e.slots[idx].Entries {
		if en.Link.Sender == client {
			return true
		}
	}
	return false
}

// sortedBroadcastTargets returns a deterministic copy of targets.
func sortedBroadcastTargets(ts []phy.NodeID) []phy.NodeID {
	out := append([]phy.NodeID(nil), ts...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
