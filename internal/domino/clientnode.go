// Client-side node logic: clients know nothing of the schedule — they send
// when triggered, broadcast per the AP's S1 instructions, and answer polls.

package domino

import (
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

type clientNode struct {
	e      *Engine
	id     phy.NodeID
	ap     phy.NodeID
	uplink *topo.Link
	asleep bool

	armed    *armedTx
	lastHint int

	inflight []*mac.Packet
	txStart  sim.Time
	ackEv    sim.Event

	// refSpan/depth mirror apNode: the causal span of the client's current
	// time reference and its trigger-cascade depth (zero with spans off).
	refSpan int64
	depth   int
}

// CarrierChanged implements phy.Listener.
func (c *clientNode) CarrierChanged(bool) {}

// FrameReceived implements phy.Listener.
func (c *clientNode) FrameReceived(f *phy.Frame, ok bool, det *phy.SignatureDetection) {
	e := c.e
	if c.asleep {
		return // radio powered down
	}
	if !ok {
		if f.Kind == phy.Signature {
			if pl, good := f.Payload.(*phy.SignaturePayload); good && containsInt(pl.Sigs, int(c.id)) {
				e.triggerMiss(c.id, pl.SlotHint)
				e.noteSigMiss(c.id, det)
			}
		}
		return
	}
	switch f.Kind {
	case phy.Signature:
		pl := f.Payload.(*phy.SignaturePayload)
		if containsInt(pl.Sigs, int(c.id)) || e.falseTrigger() {
			c.onTrigger(pl)
		}
	case phy.Data, phy.FakeHeader:
		if f.Dst != c.id {
			return
		}
		m := f.Payload.(*meta)
		slotStart := e.k.Now() - f.AirTime()
		// The received downlink slot becomes this client's causal reference.
		c.refSpan, c.depth = m.span, m.depth
		if f.Kind == phy.Data {
			src := f.Src
			e.k.After(phy.SIFS, func() {
				if e.medium.Transmitting(c.id) {
					return
				}
				e.trace(TraceEvent{Slot: m.slot, Kind: "ack", Node: c.id, OK: true})
				e.medium.Transmit(c.id, &phy.Frame{
					Kind: phy.Ack, Dst: src, Bytes: phy.AckBytes,
					Rate: e.cfg.Rate, Duration: e.cfg.ackAirtime(),
					Payload: &ackMeta{pkts: m.pkts}, ObsSpan: m.span,
				})
			})
		}
		// The decoded frame carries the S1 instructions and the slot
		// reference: broadcast at the slot's end.
		c.scheduleBroadcast(m.slot, m.clientSigs, m.rop, m.selfNext, m.nextWait, slotStart)
	case phy.Ack:
		if f.Dst != c.id {
			return
		}
		am := f.Payload.(*ackMeta)
		if c.inflight != nil && len(am.pkts) > 0 && len(c.inflight) > 0 && am.pkts[0] == c.inflight[0] {
			if c.ackEv.Scheduled() {
				c.ackEv.Cancel()
				c.ackEv = sim.Event{}
			}
			bundle := c.inflight
			c.inflight = nil
			e.deliverBundle(bundle)
		}
		// The AP's ACK carries this client's broadcast duty (Fig 8b).
		c.scheduleBroadcast(am.slot, am.clientSigs, am.rop, am.selfNext, am.nextWait, c.txStart)
	}
}

func (c *clientNode) scheduleBroadcast(slotIdx int, targets []phy.NodeID, ropFlag, selfNext bool, nextWait sim.Time, slotStart sim.Time) {
	e := c.e
	if len(targets) == 0 && !selfNext {
		return
	}
	at := slotStart + e.cfg.broadcastOffset()
	delay := at - e.k.Now()
	if delay < 0 {
		delay = 0
	}
	e.k.After(delay, func() {
		if len(targets) > 0 && !e.medium.Transmitting(c.id) {
			sigs := sortedBroadcastTargets(targets)
			var bSpan int64
			if e.sp != nil {
				bSpan = e.sp.Next()
			}
			e.trace(TraceEvent{Slot: slotIdx + 1, Kind: "bcast", Node: c.id, OK: true,
				Span: bSpan, Parent: c.refSpan})
			e.medium.Transmit(c.id, &phy.Frame{
				Kind: phy.Signature, Dst: phy.Broadcast, Duration: e.cfg.sigFrameDuration(),
				Payload: &phy.SignaturePayload{Sigs: sigIDs(sigs), Start: true, ROP: ropFlag,
					SlotHint: slotIdx + 1, ObsSpan: bSpan, ObsDepth: c.depth},
				ObsSpan: bSpan,
			})
			c.refSpan = bSpan
		}
		if selfNext {
			// The AP told us we transmit in the next slot: the end of this
			// boundary exchange is our reference (we may be deaf to the
			// broadcast carrying our own signature while sending ours).
			e.k.After(e.cfg.sigFrameDuration(), func() {
				if c.armed != nil {
					return
				}
				c.lastHint = slotIdx + 1
				c.armTx(nextWait)
			})
		}
	})
}

// onTrigger: the client's own signature arrived — transmit on the uplink.
func (c *clientNode) onTrigger(pl *phy.SignaturePayload) {
	e := c.e
	c.refSpan, c.depth = e.noteTrigger(c.id, pl)
	delay := sim.Time(0)
	if pl.ROP {
		delay = e.pollGap()
	}
	c.lastHint = pl.SlotHint
	if c.armed != nil {
		if e.k.Now()-c.armed.at < e.cfg.slotDuration()/2 {
			c.armed.ev.Cancel()
			c.armTx(delay)
		}
		return
	}
	c.armTx(delay)
}

func (c *clientNode) armTx(delay sim.Time) {
	tx := &armedTx{at: c.e.k.Now()}
	tx.ev = c.e.k.After(delay, func() {
		c.armed = nil
		c.sendUplink()
	})
	c.armed = tx
}

func (c *clientNode) sendUplink() {
	e := c.e
	if c.uplink == nil || e.medium.Transmitting(c.id) {
		return
	}
	if c.inflight != nil {
		if c.ackEv.Scheduled() {
			c.ackEv.Cancel()
			c.ackEv = sim.Event{}
		}
		prev := c.inflight
		c.inflight = nil
		e.AckMisses++
		e.requeueBundle(c.uplink.ID, prev)
	}
	now := e.k.Now()
	c.txStart = now
	if e.Misalign != nil {
		e.Misalign.ObserveGroup(c.lastHint, now, e.refGroup[c.id])
	}
	bundle := e.popBundle(c.uplink.ID)
	var slotSpan int64
	if e.sp != nil {
		slotSpan = e.sp.Next()
		for _, p := range bundle {
			p.TxSpan = slotSpan
		}
	}
	if bundle != nil {
		e.DataSends += len(bundle)
		e.trace(TraceEvent{Slot: c.lastHint, Kind: "data", Node: c.id, Link: c.uplink, OK: true,
			Span: slotSpan, Parent: c.refSpan})
		dur := e.cfg.dataAirtime()
		e.medium.Transmit(c.id, &phy.Frame{
			Kind: phy.Data, Dst: c.ap, Bytes: e.cfg.VirtualBytes,
			Rate: e.cfg.Rate, Duration: dur,
			Payload: &meta{pkts: bundle, backlog: e.queues[c.uplink.ID].Len(),
				span: slotSpan, depth: c.depth},
			ObsSpan: slotSpan,
		})
		c.inflight = bundle
		timeout := dur + phy.SIFS + e.cfg.ackAirtime() + 2*phy.SlotTime
		c.ackEv = e.k.After(timeout, c.ackTimeout)
	} else {
		e.FakeSends++
		e.trace(TraceEvent{Slot: c.lastHint, Kind: "fake", Node: c.id, Link: c.uplink, OK: true,
			Span: slotSpan, Parent: c.refSpan})
		e.medium.Transmit(c.id, &phy.Frame{
			Kind: phy.FakeHeader, Dst: c.ap, Bytes: 0,
			Rate: e.cfg.Rate, Duration: e.cfg.fakeHeaderAirtime(),
			Payload: &meta{span: slotSpan, depth: c.depth}, ObsSpan: slotSpan,
		})
	}
	c.refSpan = slotSpan
}

func (c *clientNode) ackTimeout() {
	c.ackEv = sim.Event{}
	if c.inflight == nil {
		return
	}
	bundle := c.inflight
	c.inflight = nil
	c.e.AckMisses++
	c.e.requeueBundle(c.uplink.ID, bundle)
}
