package domino

import (
	"reflect"
	"testing"

	"repro/internal/convert"
)

// TestConvertModesTraceIdentical extends the engine-level cache gate across
// the full {cache, incremental} matrix: all four mode combinations must
// produce the identical trace-event stream, and the incremental-only run
// must actually replay from its memos.
func TestConvertModesTraceIdentical(t *testing.T) {
	evDefault, _ := traceRun(t, 5, nil)
	evCacheOnly, _ := traceRun(t, 5, func(c *Config) { c.NoIncremental = true })
	evIncOnly, eIncOnly := traceRun(t, 5, func(c *Config) { c.NoConvertCache = true })
	evNeither, _ := traceRun(t, 5, func(c *Config) { c.NoConvertCache = true; c.NoIncremental = true })

	for name, ev := range map[string][]TraceEvent{
		"cache-only": evCacheOnly, "incremental-only": evIncOnly, "neither": evNeither,
	} {
		if !reflect.DeepEqual(evDefault, ev) {
			t.Errorf("%s trace stream diverges from the default: %d events vs %d",
				name, len(ev), len(evDefault))
		}
	}

	is := eIncOnly.ConvertIncrementalStats()
	if is.CoverHits == 0 || is.PairHits == 0 {
		t.Errorf("incremental-only steady state never replayed (cover hits %d, pair hits %d)",
			is.CoverHits, is.PairHits)
	}
}

// TestVerifyConvertRuns: the VerifyConvert debug knob verifies every emitted
// plan without disturbing the run (it panics on violation, so completing the
// run is the assertion).
func TestVerifyConvertRuns(t *testing.T) {
	ev, _ := traceRun(t, 5, func(c *Config) { c.VerifyConvert = true })
	if len(ev) == 0 {
		t.Fatal("verified run produced no trace events")
	}
}

// TestConvertCacheDetails: the cache accessor reports occupancy against the
// configured LRU capacity.
func TestConvertCacheDetails(t *testing.T) {
	_, e := traceRun(t, 5, nil)
	info := e.ConvertCacheDetails()
	if info.Capacity != convert.DefaultCacheCap {
		t.Errorf("default capacity %d, want %d", info.Capacity, convert.DefaultCacheCap)
	}
	if info.Occupancy <= 0 || info.Occupancy > info.Capacity {
		t.Errorf("occupancy %d out of range (capacity %d)", info.Occupancy, info.Capacity)
	}
	if info.Hits == 0 {
		t.Error("steady state recorded no cache hits")
	}

	_, e = traceRun(t, 5, func(c *Config) { c.ConvertCacheCap = 8 })
	info = e.ConvertCacheDetails()
	if info.Capacity != 8 {
		t.Errorf("ConvertCacheCap: 8 gave capacity %d", info.Capacity)
	}
	if info.Occupancy > 8 {
		t.Errorf("occupancy %d exceeds capacity 8", info.Occupancy)
	}
}
