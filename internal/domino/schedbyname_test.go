package domino

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/strict"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// TestSchedulerByName pins the registry path to the explicit-hook path: the
// same policy selected by name must reproduce the hook-built run exactly.
func TestSchedulerByName(t *testing.T) {
	aggName, eName := runWith(t, 31, func(c *Config) { c.Scheduler = "lqf" })
	aggHook, eHook := runWith(t, 31, func(c *Config) {
		c.NewScheduler = func(g *topo.ConflictGraph) strict.Scheduler { return strict.NewLQF(g) }
	})
	if aggName != aggHook {
		t.Errorf("Scheduler=\"lqf\" got %.4f Mbps, NewScheduler hook %.4f", aggName, aggHook)
	}
	if eName.DataSends != eHook.DataSends || eName.SelfStarts != eHook.SelfStarts {
		t.Errorf("counters diverge: name %d/%d hook %d/%d",
			eName.DataSends, eName.SelfStarts, eHook.DataSends, eHook.SelfStarts)
	}
}

// TestEachRegisteredSchedulerRuns drives the engine once per registered
// policy: every name must produce a live chain.
func TestEachRegisteredSchedulerRuns(t *testing.T) {
	for _, name := range strict.SchedulerNames() {
		agg, e := runWith(t, 17, func(c *Config) { c.Scheduler = name })
		if agg < 8 {
			t.Errorf("scheduler %s: aggregate %.2f Mbps", name, agg)
		}
		if e.SelfStarts > 150 {
			t.Errorf("scheduler %s: %d self-starts", name, e.SelfStarts)
		}
	}
}

func TestUnknownSchedulerPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New accepted an unknown scheduler name")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "no-such-policy") {
			t.Errorf("panic %v does not name the bad scheduler", r)
		}
	}()
	runWith(t, 1, func(c *Config) { c.Scheduler = "no-such-policy" })
}

// traceRun executes a saturated Figure7 run and returns the complete engine
// trace-event stream plus the engine.
func traceRun(t *testing.T, seed int64, mut func(*Config)) ([]TraceEvent, *Engine) {
	t.Helper()
	net := topo.Figure7()
	links := net.BuildLinks(true, true)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(seed)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	engine := New(k, medium, g, hub, cfg)
	var events []TraceEvent
	engine.Trace = func(ev TraceEvent) { events = append(events, ev) }
	coll := stats.NewCollector(len(links), 0)
	hub.Add(coll)
	for _, l := range links {
		s := traffic.NewSaturated(k, engine, l, 512, 8)
		hub.Add(s)
		s.Start()
	}
	engine.Start()
	k.RunUntil(2 * sim.Second)
	return events, engine
}

// TestConvertCacheTraceIdentical is the engine-level cache gate: the full
// event stream with the conversion cache on must equal the stream with it
// off, and the steady-state run must actually hit the cache.
func TestConvertCacheTraceIdentical(t *testing.T) {
	evCached, eCached := traceRun(t, 5, nil)
	evUncached, eUncached := traceRun(t, 5, func(c *Config) { c.NoConvertCache = true })
	if !reflect.DeepEqual(evCached, evUncached) {
		t.Fatalf("trace streams diverge: %d events cached vs %d uncached",
			len(evCached), len(evUncached))
	}
	hits, misses := eCached.server.conv.CacheStats()
	if hits == 0 {
		t.Errorf("saturated steady state produced no cache hits (misses=%d)", misses)
	}
	if h, m := eUncached.server.conv.CacheStats(); h != 0 || m != 0 {
		t.Errorf("NoConvertCache converter reports cache traffic %d/%d", h, m)
	}
}

// TestConvertObsGatedAndMetrics: KindConvert records appear only behind the
// ConvertTrace gate, and WireMetrics surfaces the conversion counters.
func TestConvertObsGatedAndMetrics(t *testing.T) {
	run := func(convertTrace bool) (*obs.Buffer, obs.Snapshot) {
		net := topo.Figure7()
		links := net.BuildLinks(true, true)
		g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
		k := sim.New(9)
		medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
		hub := &mac.Hub{}
		cfg := DefaultConfig()
		cfg.ConvertTrace = convertTrace
		engine := New(k, medium, g, hub, cfg)
		buf := &obs.Buffer{}
		engine.WireObs(obs.NewRun(buf, nil))
		m := obs.NewMetrics()
		engine.WireMetrics(m)
		for _, l := range links {
			s := traffic.NewSaturated(k, engine, l, 512, 8)
			hub.Add(s)
			s.Start()
		}
		engine.Start()
		k.RunUntil(1 * sim.Second)
		return buf, m.Snapshot()
	}

	buf, snap := run(false)
	if n := buf.Count(obs.KindConvert); n != 0 {
		t.Errorf("ConvertTrace off but %d convert records emitted", n)
	}
	batches, ok := snap.Get("convert.batches")
	if !ok || batches.Value < 1 {
		t.Errorf("convert.batches = %+v, want >= 1", batches)
	}
	hitsMV, _ := snap.Get("convert.cache.hits")
	missesMV, _ := snap.Get("convert.cache.misses")
	if hitsMV.Value == 0 {
		t.Errorf("steady state recorded no cache hits (misses=%.0f)", missesMV.Value)
	}

	buf, _ = run(true)
	if buf.Count(obs.KindConvert) == 0 {
		t.Error("ConvertTrace on but no convert records emitted")
	}
	seen := map[string]bool{}
	for _, r := range buf.Records() {
		if r.Kind == obs.KindConvert {
			seen[r.Aux] = true
		}
	}
	for _, aux := range []string{"fake_link_insert", "trigger_assign", "batch_connect",
		"rop_insert", "cache", "inbound", "combined"} {
		if !seen[aux] {
			t.Errorf("no convert record with Aux=%q", aux)
		}
	}
}
