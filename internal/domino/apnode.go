// AP-side node logic: schedule reception, trigger handling, slot execution,
// polling, broadcasts and the free-running fallback clock.

package domino

import (
	"repro/internal/convert"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/poll"
	"repro/internal/sim"
	"repro/internal/topo"
)

type actKind int

const (
	aSend actKind = iota
	aPoll
)

// action is one scheduled duty of an AP, executed in order as triggers
// arrive.
type action struct {
	slot int
	kind actKind
	link *topo.Link // for aSend
}

// armedTx is a transmission waiting for its slot start; a duplicate trigger
// re-references it ("the transmitter uses the last correctly received trigger
// as time reference", §3.4).
type armedTx struct {
	act action
	ev  sim.Event
	at  sim.Time
}

// ----------------------------------------------------------------------------
// Access point

type apNode struct {
	e  *Engine
	id phy.NodeID
	// poller owns this AP's client → subchannel/round layout and the decode
	// of each polling cycle (internal/poll registry; ROP by default).
	poller poll.Poller

	known   int // exclusive upper bound of slots received from the server
	actions []action
	started bool
	ptr     int // schedule position: the next slot index expected
	// lastSlot/lastSlotStart record the AP's most recent slot reference, so
	// self-arming can resume when new schedule arrives for duties that were
	// beyond the previously known slots.
	lastSlot      int
	lastSlotStart sim.Time

	armed *armedTx

	inflight     []*mac.Packet
	inflightLink *topo.Link
	ackEv        sim.Event

	watchdog sim.Event

	// refSpan/depth track the causal span of this AP's current time
	// reference (last trigger, own slot, or own broadcast) and its
	// trigger-cascade depth; both stay zero when spans are disabled.
	refSpan int64
	depth   int
}

// receiveSchedule integrates newly arrived slots (wired dispatch callback).
func (ap *apNode) receiveSchedule(newKnown int) {
	e := ap.e
	for idx := ap.known; idx < newKnown; idx++ {
		slot := e.slots[idx]
		for _, en := range slot.Entries {
			if en.Link.Sender == ap.id {
				ap.actions = append(ap.actions, action{slot: idx, kind: aSend, link: en.Link})
			}
		}
		for _, p := range slot.ROPAfter {
			if p == ap.id {
				ap.actions = append(ap.actions, action{slot: idx, kind: aPoll})
			}
		}
	}
	ap.known = newKnown
	if !ap.started {
		ap.started = true
		ap.bootstrap()
	} else if ap.armed == nil && len(ap.actions) > 0 {
		if ap.ptr == 0 {
			// An AP that has not managed to act yet anchors on the batch
			// arrival itself.
			ap.scheduleSelfArm(0, ap.e.k.Now())
		} else {
			// Duties beyond the previously known schedule could not be
			// self-armed when the AP last acted; re-arm from that reference.
			ap.scheduleSelfArm(ap.lastSlot, ap.lastSlotStart)
		}
	}
	ap.armWatchdog()
}

// bootstrap starts the very first batch: an AP scheduled in slot 0 begins on
// schedule receipt; an AP whose slot-0 link is an uplink instead triggers the
// client with a signature (paper §3.3, batch connection).
func (ap *apNode) bootstrap() {
	if len(ap.actions) > 0 && ap.actions[0].kind == aSend && ap.actions[0].slot == 0 {
		ap.e.trace(TraceEvent{Slot: 0, Kind: "selfstart", Node: ap.id})
		ap.execNext(0, 0)
		return
	}
	if len(ap.e.slots) == 0 {
		return
	}
	// If the front of the schedule is one of our clients' uplinks, kick the
	// client with a signature (paper §3.3); any pending poll action will be
	// triggered by the slot's end-of-slot broadcast.
	for _, en := range ap.e.slots[0].Entries {
		if !en.Link.Downlink && en.Link.AP == ap.id {
			client := en.Link.Sender
			ap.sendSignature(0, []phy.NodeID{client}, false)
			return
		}
	}
	// No slot-0 duty: free-run toward the first pending action.
	ap.scheduleSelfArm(0, ap.e.k.Now())
}

// armWatchdog (re)arms the silence timer: if the trigger chain dies, the AP
// self-starts its next action, the same way it started the first batch.
func (ap *apNode) armWatchdog() {
	if ap.watchdog.Scheduled() {
		ap.watchdog.Cancel()
		ap.watchdog = sim.Event{}
	}
	if len(ap.actions) == 0 && ap.armed == nil {
		return
	}
	d := sim.Time(ap.e.cfg.WatchdogSlots) * ap.e.cfg.slotDuration()
	ap.watchdog = ap.e.k.After(d, func() {
		ap.watchdog = sim.Event{}
		ap.e.SelfStarts++
		// The chain died: this self-start roots a fresh trigger cascade.
		ap.refSpan, ap.depth = 0, 0
		ap.e.trace(TraceEvent{Slot: -1, Kind: "selfstart", Node: ap.id})
		if ap.armed == nil {
			ap.execNext(0, ap.ptr+1)
		}
		ap.armWatchdog()
	})
}

// execNext pops and executes the next pending action. hint is the slot index
// the caller believes is starting (for instrumentation).
func (ap *apNode) execNext(delay sim.Time, hint int) {
	if len(ap.actions) == 0 {
		return
	}
	act := ap.actions[0]
	ap.actions = ap.actions[1:]
	switch act.kind {
	case aPoll:
		ap.doPoll(act.slot)
		// A poll between slots i and i+1 may be followed immediately by this
		// AP's own transmission in slot i+1, fired by the same trigger.
		if len(ap.actions) > 0 && ap.actions[0].kind == aSend && ap.actions[0].slot == act.slot+1 {
			next := ap.actions[0]
			ap.actions = ap.actions[1:]
			ap.arm(next, ap.e.gapAfter(act.slot))
		}
	case aSend:
		ap.arm(act, delay)
	}
}

// arm schedules a transmission relative to the current time reference.
func (ap *apNode) arm(act action, delay sim.Time) {
	tx := &armedTx{act: act, at: ap.e.k.Now()}
	tx.ev = ap.e.k.After(delay, func() {
		ap.armed = nil
		ap.sendData(act)
	})
	ap.armed = tx
}

// onTrigger handles detection of this AP's own signature. The S′ sequence
// doubles as a slot counter (SlotHint), so duties are matched to the slot
// the trigger starts: duties whose slot already passed are skipped, and a
// trigger for an already-armed slot merely refreshes the time reference.
func (ap *apNode) onTrigger(pl *phy.SignaturePayload) {
	e := ap.e
	ap.armWatchdog()
	ap.refSpan, ap.depth = e.noteTrigger(ap.id, pl)
	hint := pl.SlotHint
	delay := sim.Time(0)
	if pl.ROP {
		delay = e.pollGap()
	}
	if ap.armed != nil {
		// Re-reference an armed transmission for this very slot ("the
		// transmitter uses the last correctly received trigger", §3.4).
		if ap.armed.act.slot == hint && e.k.Now()-ap.armed.at < e.cfg.slotDuration()/2 {
			ap.armed.ev.Cancel()
			ap.arm(ap.armed.act, delay)
		} else {
			e.TriggerLate++
		}
		return
	}
	// Skip duties whose slot has already passed (their air time is gone);
	// a pending poll for the boundary before this slot still runs.
	for len(ap.actions) > 0 {
		a0 := ap.actions[0]
		if a0.kind == aPoll && a0.slot == hint-1 {
			break
		}
		if a0.slot >= hint {
			break
		}
		ap.actions = ap.actions[1:]
	}
	if len(ap.actions) == 0 {
		return
	}
	a0 := ap.actions[0]
	switch {
	case a0.kind == aPoll && a0.slot == hint-1:
		ap.execNext(0, hint)
	case a0.kind == aSend && a0.slot == hint:
		ap.execNext(delay, hint)
	}
	// Duties for later slots wait for their own reference.
}

// sendData transmits the scheduled link's head-of-queue packet, or a fake
// header when there is nothing to send (or the entry is converter-inserted
// and the queue is empty).
func (ap *apNode) sendData(act action) {
	e := ap.e
	if e.medium.Transmitting(ap.id) {
		return
	}
	// A superseded in-flight exchange (its ACK window overlapping this new
	// slot) counts as missed and retries; it must never be silently
	// clobbered.
	if ap.inflight != nil {
		if ap.ackEv.Scheduled() {
			ap.ackEv.Cancel()
			ap.ackEv = sim.Event{}
		}
		prev, prevLink := ap.inflight, ap.inflightLink
		ap.inflight = nil
		e.AckMisses++
		e.requeueBundle(prevLink.ID, prev)
	}
	slot := e.slots[act.slot]
	ap.ptr = max(ap.ptr, act.slot+1)
	ap.lastSlot = act.slot
	ap.lastSlotStart = e.k.Now()
	e.noteProgress(act.slot)
	ropFlag := len(slot.ROPAfter) > 0
	clientSigs := lookupBcast(slot, act.link.Receiver)
	now := e.k.Now()
	if e.Misalign != nil {
		e.Misalign.ObserveGroup(act.slot, now, e.refGroup[ap.id])
	}
	bundle := e.popBundle(act.link.ID)
	var slotSpan int64
	if e.sp != nil {
		slotSpan = e.sp.Next()
		for _, p := range bundle {
			p.TxSpan = slotSpan
		}
	}
	m := &meta{pkts: bundle, slot: act.slot, clientSigs: clientSigs, rop: ropFlag,
		span: slotSpan, depth: ap.depth,
		selfNext: e.clientSenderInSlot(act.link.Receiver, act.slot+1),
		nextWait: e.gapAfter(act.slot)}
	if bundle != nil {
		e.DataSends += len(bundle)
		e.trace(TraceEvent{Slot: act.slot, Kind: "data", Node: ap.id, Link: act.link, OK: true,
			Span: slotSpan, Parent: ap.refSpan})
		dur := e.cfg.dataAirtime()
		e.medium.Transmit(ap.id, &phy.Frame{
			Kind: phy.Data, Dst: act.link.Receiver, Bytes: e.cfg.VirtualBytes,
			Rate: e.cfg.Rate, Duration: dur, Payload: m,
			NAV: e.navUntil(act.slot, now), ObsSpan: slotSpan,
		})
		ap.inflight = bundle
		ap.inflightLink = act.link
		timeout := dur + phy.SIFS + e.cfg.ackAirtime() + 2*phy.SlotTime
		ap.ackEv = e.k.After(timeout, func() { ap.ackTimeout(act.link) })
	} else {
		e.FakeSends++
		e.trace(TraceEvent{Slot: act.slot, Kind: "fake", Node: ap.id, Link: act.link, OK: true,
			Span: slotSpan, Parent: ap.refSpan})
		e.medium.Transmit(ap.id, &phy.Frame{
			Kind: phy.FakeHeader, Dst: act.link.Receiver, Bytes: 0,
			Rate: e.cfg.Rate, Duration: e.cfg.fakeHeaderAirtime(), Payload: m,
			ObsSpan: slotSpan,
		})
	}
	// The slot the AP just opened becomes its causal reference.
	ap.refSpan = slotSpan
	// The sender always has the slot reference: broadcast its combination at
	// the slot's end regardless of the exchange outcome.
	ap.scheduleBroadcast(slot, act.slot, now)
	ap.checkPollSelf(act.slot, now)
	// The AP's own transmission is a time reference: free-run toward its
	// next duty, however many slots away. A trigger that still arrives
	// simply re-references the armed transmission; in trigger-disconnected
	// parts of the network this local clock is the only pacing (paper §3.3:
	// APs start executing the schedule individually).
	ap.scheduleSelfArm(act.slot, now)
}

// scheduleSelfArm arms the AP's next pending action relative to the known
// slot boundary (fromSlot started at slotStart), using the nominal per-slot
// offsets.
func (ap *apNode) scheduleSelfArm(fromSlot int, slotStart sim.Time) {
	e := ap.e
	if len(ap.actions) == 0 {
		return
	}
	next := ap.actions[0]
	if next.slot >= len(e.slotOffset) || fromSlot >= len(e.slotOffset) {
		return
	}
	at := slotStart + (e.slotOffset[next.slot] - e.slotOffset[fromSlot])
	if next.kind == aPoll {
		// The poll runs after its slot's broadcast.
		at += e.cfg.slotDuration()
	}
	// Free-running is a FALLBACK: give the trigger a grace period to arrive
	// first, so trigger references (which heal misalignment) always win when
	// the chain is connected.
	at += e.cfg.slotDuration() / 8
	delay := at - e.k.Now()
	if delay < 0 {
		delay = 0
	}
	e.k.After(delay, func() {
		if ap.armed != nil || len(ap.actions) == 0 {
			return
		}
		if ap.actions[0] != next {
			return // a trigger already consumed it
		}
		switch next.kind {
		case aPoll:
			ap.execNext(0, next.slot)
		case aSend:
			ap.actions = ap.actions[1:]
			ap.arm(next, 0)
		}
	})
}

// checkPollSelf fires a pending poll for a slot the AP itself participated
// in: the AP knows the slot boundary without any trigger (the converter only
// plants explicit poll triggers for non-participating APs).
func (ap *apNode) checkPollSelf(idx int, slotStart sim.Time) {
	if len(ap.actions) == 0 || ap.actions[0].kind != aPoll || ap.actions[0].slot != idx {
		return
	}
	ap.actions = ap.actions[1:]
	boundary := slotStart + ap.e.cfg.slotDuration()
	wait := boundary - ap.e.k.Now()
	if wait < 0 {
		wait = 0
	}
	ap.e.k.After(wait, func() { ap.doPoll(idx) })
	if len(ap.actions) > 0 && ap.actions[0].kind == aSend && ap.actions[0].slot == idx+1 {
		next := ap.actions[0]
		ap.actions = ap.actions[1:]
		gap := ap.e.gapAfter(idx)
		ap.e.k.After(wait, func() { ap.arm(next, gap) })
	}
}

// scheduleBroadcast arms this node's end-of-slot signature broadcast if the
// converter assigned it one.
func (ap *apNode) scheduleBroadcast(slot *convert.RelSlot, idx int, slotStart sim.Time) {
	targets := lookupBcast(slot, ap.id)
	if len(targets) == 0 {
		return
	}
	at := slotStart + ap.e.cfg.broadcastOffset()
	delay := at - ap.e.k.Now()
	if delay < 0 {
		delay = 0
	}
	ropFlag := len(slot.ROPAfter) > 0
	ap.e.k.After(delay, func() { ap.sendSignature(idx+1, targets, ropFlag) })
}

func (ap *apNode) sendSignature(slotHint int, targets []phy.NodeID, ropFlag bool) {
	e := ap.e
	if e.medium.Transmitting(ap.id) {
		return
	}
	sigs := sortedBroadcastTargets(targets)
	var bSpan int64
	if e.sp != nil {
		bSpan = e.sp.Next()
	}
	e.trace(TraceEvent{Slot: slotHint, Kind: "bcast", Node: ap.id, OK: true,
		Span: bSpan, Parent: ap.refSpan})
	e.medium.Transmit(ap.id, &phy.Frame{
		Kind: phy.Signature, Dst: phy.Broadcast, Duration: e.cfg.sigFrameDuration(),
		Payload: &phy.SignaturePayload{Sigs: sigIDs(sigs), Start: true, ROP: ropFlag,
			SlotHint: slotHint, ObsSpan: bSpan, ObsDepth: ap.depth},
		ObsSpan: bSpan,
	})
	// The broadcast closes the slot; subsequent self-referenced duties hang
	// off it.
	ap.refSpan = bSpan
	// Half-duplex makes a broadcasting node deaf to triggers arriving at the
	// same instant, but its own broadcast end IS the slot boundary: if its
	// next duty starts exactly there, self-trigger from that reference.
	e.k.After(e.cfg.sigFrameDuration(), func() { ap.selfTrigger(slotHint, ropFlag) })
}

// selfTrigger consumes the AP's next action when it belongs to the slot this
// node's own broadcast just started.
func (ap *apNode) selfTrigger(slotHint int, ropFlag bool) {
	if ap.armed != nil || len(ap.actions) == 0 {
		return
	}
	act := ap.actions[0]
	switch {
	case act.kind == aPoll && act.slot == slotHint-1:
		ap.execNext(0, slotHint)
	case act.kind == aSend && act.slot == slotHint:
		ap.actions = ap.actions[1:]
		ap.arm(act, ap.e.gapAfter(slotHint-1))
	}
}

// doPoll executes Rapid OFDM Polling: a poll broadcast, the clients' joint
// control symbol one slot later, decode, and the wired report to the server.
func (ap *apNode) doPoll(slotIdx int) {
	e := ap.e
	if e.medium.Transmitting(ap.id) {
		// The AP's own end-of-slot broadcast may share this instant; start
		// the poll right after it clears.
		e.k.After(2*sim.Microsecond, func() {
			if !e.medium.Transmitting(ap.id) {
				ap.doPollNow(slotIdx)
			}
		})
		return
	}
	ap.doPollNow(slotIdx)
}

func (ap *apNode) doPollNow(slotIdx int) {
	e := ap.e
	e.Polls++
	e.trace(TraceEvent{Slot: slotIdx, Kind: "poll", Node: ap.id, OK: true})
	// The poll is part of the current chain node: airtime and rop_poll
	// records accrue to the AP's reference span rather than a fresh one.
	pollSpan := ap.refSpan
	rounds := sim.Time(1)
	if ap.poller != nil {
		rounds = sim.Time(ap.poller.Rounds())
	}
	// A multi-round cycle holds the channel for rounds consecutive poll
	// exchanges; a single frame of rounds × the poll air time models it.
	e.medium.Transmit(ap.id, &phy.Frame{
		Kind: phy.Poll, Dst: phy.Broadcast, Duration: rounds * e.cfg.pollAirtime(),
		Payload: ap.id, ObsSpan: pollSpan,
	})
	ap.lastSlot = slotIdx
	ap.lastSlotStart = e.k.Now() - e.cfg.slotDuration()
	ap.scheduleSelfArm(slotIdx, ap.lastSlotStart)
	// Each round takes one poll air time, the WiFi-slot turnaround and the
	// 16 µs control symbol; the cycle's decode completes after the last.
	decodeAt := rounds * (e.cfg.pollAirtime() + phy.SlotTime + sim.Micros(16))
	e.k.After(decodeAt, func() {
		if ap.poller == nil {
			return
		}
		res := ap.poller.Poll(poll.Context{
			Queue:    func(c phy.NodeID) int { return e.clientBacklog(c) },
			RSSAtAP:  func(c phy.NodeID) float64 { return e.net.RSS[c][ap.id] },
			NoiseDBm: e.medium.Config().NoiseDBm,
			Rng:      e.k.Rand(),
			Tracer:   e.Obs,
			Now:      e.k.Now(),
			Span:     pollSpan,
		})
		e.notePollCycle(res)
		lat := e.cfg.WiredLatencyMean +
			sim.Time(e.k.Rand().NormFloat64()*float64(e.cfg.WiredLatencyStd))
		if lat < 0 {
			lat = 0
		}
		e.k.After(lat, func() {
			e.server.pollResult(res, func(c phy.NodeID) *topo.Link {
				if cn, ok := e.clients[c]; ok {
					return cn.uplink
				}
				return nil
			})
		})
	})
}

// ackTimeout applies the paper's missed-ACK policy (§3.5): keep the bundle
// at the head of its queue; the next scheduled slot for this destination
// retransmits it.
func (ap *apNode) ackTimeout(link *topo.Link) {
	ap.ackEv = sim.Event{}
	if ap.inflight == nil {
		return
	}
	bundle := ap.inflight
	ap.inflight = nil
	ap.e.AckMisses++
	ap.e.requeueBundle(link.ID, bundle)
}

// CarrierChanged implements phy.Listener: channel activity is a liveness
// signal for the watchdog.
func (ap *apNode) CarrierChanged(busy bool) {
	if busy && ap.watchdog.Scheduled() {
		ap.armWatchdog()
	}
}

// FrameReceived implements phy.Listener.
func (ap *apNode) FrameReceived(f *phy.Frame, ok bool, det *phy.SignatureDetection) {
	e := ap.e
	if !ok {
		if f.Kind == phy.Signature {
			if pl, good := f.Payload.(*phy.SignaturePayload); good && containsInt(pl.Sigs, int(ap.id)) {
				e.triggerMiss(ap.id, pl.SlotHint)
				e.noteSigMiss(ap.id, det)
			}
		}
		return
	}
	switch f.Kind {
	case phy.Signature:
		pl := f.Payload.(*phy.SignaturePayload)
		if containsInt(pl.Sigs, int(ap.id)) || e.falseTrigger() {
			ap.onTrigger(pl)
		}
	case phy.Data, phy.FakeHeader:
		if f.Dst != ap.id {
			return
		}
		ap.armWatchdog()
		// Identify the slot from the schedule position. ptr holds the next
		// expected slot: consecutive appearances of the same link resolve to
		// consecutive slots.
		idx := e.findSlotFor(f.Src, ap.id, ap.ptr)
		if idx < 0 {
			return
		}
		ap.ptr = max(ap.ptr, idx+1)
		e.noteProgress(idx)
		slot := e.slots[idx]
		slotStart := e.k.Now() - f.AirTime()
		ap.lastSlot = idx
		ap.lastSlotStart = slotStart
		// The received slot is this AP's new causal reference: the boundary
		// broadcast and any poll it runs hang off the sender's slot span.
		m := f.Payload.(*meta)
		ap.refSpan, ap.depth = m.span, m.depth
		if f.Kind == phy.Data {
			if e.cfg.Piggyback {
				// Relay the piggybacked backlog to the server.
				src := f.Src
				backlog := m.backlog
				lat := e.cfg.WiredLatencyMean +
					sim.Time(e.k.Rand().NormFloat64()*float64(e.cfg.WiredLatencyStd))
				if lat < 0 {
					lat = 0
				}
				e.k.After(lat, func() {
					if cn, okc := e.clients[src]; okc && cn.uplink != nil {
						e.server.upEst[cn.uplink.ID] = backlog
					}
				})
			}
			clientSigs := lookupBcast(slot, f.Src)
			am := &ackMeta{pkts: m.pkts, slot: idx, clientSigs: clientSigs,
				rop: len(slot.ROPAfter) > 0, selfNext: e.clientSenderInSlot(f.Src, idx+1),
				nextWait: e.gapAfter(idx)}
			src := f.Src
			e.k.After(phy.SIFS, func() {
				if e.medium.Transmitting(ap.id) {
					return
				}
				e.trace(TraceEvent{Slot: idx, Kind: "ack", Node: ap.id, OK: true})
				e.medium.Transmit(ap.id, &phy.Frame{
					Kind: phy.Ack, Dst: src, Bytes: phy.AckBytes,
					Rate: e.cfg.Rate, Duration: e.cfg.ackAirtime(), Payload: am,
					ObsSpan: m.span,
				})
			})
		}
		ap.scheduleBroadcast(slot, idx, slotStart)
		ap.checkPollSelf(idx, slotStart)
	case phy.Ack:
		if f.Dst != ap.id {
			return
		}
		am := f.Payload.(*ackMeta)
		if ap.inflight != nil && len(am.pkts) > 0 && len(ap.inflight) > 0 && am.pkts[0] == ap.inflight[0] {
			if ap.ackEv.Scheduled() {
				ap.ackEv.Cancel()
				ap.ackEv = sim.Event{}
			}
			bundle := ap.inflight
			ap.inflight = nil
			e.deliverBundle(bundle)
		}
	}
}

// clientBacklog counts a client's uplink backlog including any packet parked
// awaiting retransmission.
func (e *Engine) clientBacklog(c phy.NodeID) int {
	cn, ok := e.clients[c]
	if !ok || cn.uplink == nil {
		return 0
	}
	n := e.queues[cn.uplink.ID].Len()
	if cn.inflight != nil {
		n++
	}
	return n
}

// findSlotFor locates the first slot at or after from whose entries contain
// the sender→receiver link; -1 if unknown.
func (e *Engine) findSlotFor(sender, receiver phy.NodeID, from int) int {
	for idx := from; idx < len(e.slots); idx++ {
		for _, en := range e.slots[idx].Entries {
			if en.Link.Sender == sender && en.Link.Receiver == receiver {
				return idx
			}
		}
	}
	// The exchange may belong to a slot before our pointer (stale retry);
	// search backwards a little.
	for idx := from - 1; idx >= 0 && idx > from-4; idx-- {
		for _, en := range e.slots[idx].Entries {
			if en.Link.Sender == sender && en.Link.Receiver == receiver {
				return idx
			}
		}
	}
	return -1
}

// lookupBcast returns the broadcast targets assigned to node n at the end of
// the slot, or nil.
func lookupBcast(slot *convert.RelSlot, n phy.NodeID) []phy.NodeID {
	for _, b := range slot.Broadcasts {
		if b.From == n {
			return b.Targets
		}
	}
	return nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// sigIDs converts node IDs to the signature IDs carried in a broadcast
// (every node's signature index is its node ID; the START and ROP signatures
// are implicit in the payload flags).
func sigIDs(ns []phy.NodeID) []int {
	out := make([]int, len(ns))
	for i, n := range ns {
		out[i] = int(n)
	}
	return out
}
