package domino

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

func TestSignatureLengthConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SignatureCapacity() != 127 {
		t.Errorf("default capacity = %d", cfg.SignatureCapacity())
	}
	if cfg.signatureDuration() != sim.Micros(6.35) {
		t.Errorf("default signature duration = %v", cfg.signatureDuration())
	}
	cfg.SignatureChips = 511
	if cfg.SignatureCapacity() != 511 {
		t.Errorf("511-chip capacity = %d", cfg.SignatureCapacity())
	}
	if cfg.signatureDuration() != sim.Micros(25.55) {
		t.Errorf("511-chip duration = %v", cfg.signatureDuration())
	}
	// Longer signatures stretch the slot.
	short := DefaultConfig()
	long := DefaultConfig()
	long.SignatureChips = 511
	if long.slotDuration() <= short.slotDuration() {
		t.Error("longer signatures should lengthen the slot")
	}
}

func TestLongSignaturesStillWork(t *testing.T) {
	agg, e := runWith(t, 21, func(c *Config) { c.SignatureChips = 511 })
	if agg < 10 {
		t.Errorf("511-chip run got %.2f Mbps", agg)
	}
	// The overhead relative to 127 chips should be visible but small
	// (2×19.2 µs extra per ~450 µs slot ≈ 8%).
	agg127, _ := runWith(t, 21, nil)
	if agg >= agg127 {
		t.Errorf("longer signatures should cost throughput: 511=%.2f vs 127=%.2f", agg, agg127)
	}
	if agg < agg127*0.85 {
		t.Errorf("511-chip overhead too large: %.2f vs %.2f", agg, agg127)
	}
	_ = e
}

func TestSignatureCapacityPanic(t *testing.T) {
	// 130 nodes exceed the 127-signature capacity.
	n := 130
	rss := make([][]float64, n)
	for i := range rss {
		rss[i] = make([]float64, n)
		for j := range rss[i] {
			if i != j {
				rss[i][j] = -95
			}
		}
	}
	net := &topo.Network{RSS: rss}
	for i := 0; i < n; i += 2 {
		ap := phy.NodeID(i)
		net.IsAP = append(net.IsAP, true, false)
		net.APOf = append(net.APOf, ap, ap)
		net.APs = append(net.APs, ap)
	}
	links := net.BuildLinks(true, false)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(1)
	medium := phy.NewMedium(k, rss, phy.DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("capacity overflow did not panic")
		}
	}()
	New(k, medium, g, nil, DefaultConfig())
}
