package domino

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

type rig struct {
	k      *sim.Kernel
	medium *phy.Medium
	engine *Engine
	coll   *stats.Collector
	links  []*topo.Link
}

func newRig(t *testing.T, net *topo.Network, down, up bool, seed int64, mut func(*Config)) *rig {
	t.Helper()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	links := net.BuildLinks(down, up)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(seed)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	engine := New(k, medium, g, hub, cfg)
	coll := stats.NewCollector(len(links), 0)
	hub.Add(coll)
	return &rig{k: k, medium: medium, engine: engine, coll: coll, links: links}
}

func (r *rig) saturate(hubAdd func(mac.Events), linkIDs ...int) {
	for _, id := range linkIDs {
		s := traffic.NewSaturated(r.k, r.engine, r.links[id], 512, 8)
		hubAdd(s)
		s.Start()
	}
}

func saturatedRig(t *testing.T, net *topo.Network, down, up bool, seed int64) *rig {
	t.Helper()
	links := net.BuildLinks(down, up)
	_ = links
	r := newRig(t, net, down, up, seed, nil)
	hub := &mac.Hub{}
	// rebuild hub wiring: we need the saturated sources in the SAME hub the
	// engine reports to. newRig already wired coll; recreate properly here.
	_ = hub
	return r
}

// fullRig wires everything: engine, collector and saturated sources on all
// links.
func fullRig(t *testing.T, net *topo.Network, down, up bool, seed int64, mut func(*Config)) *rig {
	t.Helper()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	links := net.BuildLinks(down, up)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(seed)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	engine := New(k, medium, g, hub, cfg)
	coll := stats.NewCollector(len(links), 0)
	hub.Add(coll)
	for _, l := range links {
		s := traffic.NewSaturated(k, engine, l, 512, 8)
		hub.Add(s)
		s.Start()
	}
	engine.Start()
	return &rig{k: k, medium: medium, engine: engine, coll: coll, links: links}
}

func TestSinglePairDownlinkThroughput(t *testing.T) {
	net := topo.TwoPairs(topo.ExposedTerminals)
	// Only pair 1's downlink carries traffic; pair 2 idles (fake chain).
	r := fullRig(t, net, true, false, 1, nil)
	r.k.RunUntil(2 * sim.Second)
	got := r.coll.ThroughputMbps(0, 2*sim.Second)
	// Slot = 364+10+32+9+12.7 = 427.7 µs -> 9.58 Mbps upper bound, minus
	// one ROP slot per 12-slot batch.
	if got < 8.5 || got > 9.7 {
		t.Errorf("DOMINO single-link throughput = %.2f Mbps, want ≈9.2-9.5", got)
	}
	if r.engine.DataSends == 0 || r.engine.Polls == 0 {
		t.Errorf("sends=%d polls=%d", r.engine.DataSends, r.engine.Polls)
	}
}

func TestExposedPairConcurrent(t *testing.T) {
	// DOMINO schedules exposed links in the same slot: aggregate ≈ 2× the
	// single-link rate — the win DCF cannot realise.
	r := fullRig(t, topo.TwoPairs(topo.ExposedTerminals), true, false, 2, nil)
	r.k.RunUntil(2 * sim.Second)
	a := r.coll.ThroughputMbps(0, 2*sim.Second)
	b := r.coll.ThroughputMbps(1, 2*sim.Second)
	if a+b < 17 {
		t.Errorf("exposed pair aggregate = %.2f Mbps, want ≈19 (concurrent slots)", a+b)
	}
	if f := stats.JainIndex([]float64{a, b}); f < 0.99 {
		t.Errorf("fairness = %.3f", f)
	}
}

func TestHiddenPairAlternates(t *testing.T) {
	// Hidden links alternate cleanly: ≈ half rate each, no collisions —
	// where DCF collapses.
	r := fullRig(t, topo.TwoPairs(topo.HiddenTerminals), true, false, 3, nil)
	r.k.RunUntil(2 * sim.Second)
	a := r.coll.ThroughputMbps(0, 2*sim.Second)
	b := r.coll.ThroughputMbps(1, 2*sim.Second)
	if a+b < 8.3 {
		t.Errorf("hidden pair aggregate = %.2f Mbps, want ≈9.3", a+b)
	}
	if f := stats.JainIndex([]float64{a, b}); f < 0.98 {
		t.Errorf("fairness = %.3f (a=%.2f b=%.2f)", f, a, b)
	}
	if r.engine.AckMisses > r.engine.DataSends/20 {
		t.Errorf("ack misses %d out of %d sends: schedule should avoid collisions",
			r.engine.AckMisses, r.engine.DataSends)
	}
}

func TestUplinkViaPolling(t *testing.T) {
	// Saturated uplink only: the server learns backlog through ROP and
	// schedules the clients; triggers reach clients through their APs.
	r := fullRig(t, topo.TwoPairs(topo.ExposedTerminals), false, true, 4, nil)
	r.k.RunUntil(2 * sim.Second)
	a := r.coll.ThroughputMbps(0, 2*sim.Second)
	b := r.coll.ThroughputMbps(1, 2*sim.Second)
	if a+b < 15 {
		t.Errorf("uplink aggregate = %.2f Mbps (a=%.2f b=%.2f); polling failed?", a+b, a, b)
	}
	if r.engine.Polls < 100 {
		t.Errorf("polls = %d, want one per batch per AP", r.engine.Polls)
	}
}

func TestFigure1MatchesOmniscientShape(t *testing.T) {
	// The headline Fig 2 claim: DOMINO performs close to the omniscient
	// scheme — C2→AP2 every slot, AP1/AP3 alternating.
	net := topo.Figure1()
	links := topo.Figure1Links(net)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(5)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	engine := New(k, medium, g, hub, DefaultConfig())
	coll := stats.NewCollector(len(links), 0)
	hub.Add(coll)
	for _, l := range links {
		s := traffic.NewSaturated(k, engine, l, 512, 8)
		hub.Add(s)
		s.Start()
	}
	engine.Start()
	k.RunUntil(4 * sim.Second)
	end := 4 * sim.Second
	ap1 := coll.ThroughputMbps(0, end)
	c2 := coll.ThroughputMbps(1, end)
	ap3 := coll.ThroughputMbps(2, end)
	t.Logf("Fig1 DOMINO: AP1→C1 %.2f, C2→AP2 %.2f, AP3→C3 %.2f Mbps", ap1, c2, ap3)
	if c2 < 7.5 {
		t.Errorf("C2→AP2 = %.2f Mbps, want near-full rate", c2)
	}
	if ap1 < 3.6 || ap3 < 3.6 {
		t.Errorf("alternating links AP1=%.2f AP3=%.2f, want ≈4.5 each", ap1, ap3)
	}
	if total := ap1 + c2 + ap3; total < 15 {
		t.Errorf("aggregate %.2f, want ≥15 (omniscient ≈19)", total)
	}
}

func TestMisalignmentHeals(t *testing.T) {
	// Fig 11: initial wired-jitter misalignment collapses within ~4 slots.
	net := topo.Figure7()
	r := fullRig(t, net, true, true, 6, func(c *Config) {
		c.MisalignSlots = 8
		c.WiredLatencyStd = sim.Micros(40)
	})
	r.k.RunUntil(500 * sim.Millisecond)
	first := r.engine.Misalign.Max(0)
	if first == 0 {
		t.Fatal("no initial misalignment observed; probe broken?")
	}
	settled := r.engine.Misalign.Max(6)
	if settled > first/2 && settled > 3*sim.Microsecond {
		t.Errorf("misalignment did not heal: slot0=%v slot6=%v", first, settled)
	}
	t.Logf("misalignment: slot0=%v slot3=%v slot6=%v",
		r.engine.Misalign.Max(0), r.engine.Misalign.Max(3), r.engine.Misalign.Max(6))
}

func TestFigure7FullDuplexLoad(t *testing.T) {
	// All eight links saturated (the Fig 10 microscope setting): the engine
	// sustains the chains, polls every batch, and spreads throughput across
	// pairs.
	r := fullRig(t, topo.Figure7(), true, true, 7, nil)
	r.k.RunUntil(3 * sim.Second)
	total := r.coll.AggregateMbps(3 * sim.Second)
	if total < 12 {
		t.Errorf("Fig7 aggregate = %.2f Mbps; chains dying?", total)
	}
	// Every link must see service (no starvation).
	for _, l := range r.links {
		if r.coll.ThroughputMbps(l.ID, 3*sim.Second) < 0.4 {
			t.Errorf("link %v starved: %.2f Mbps", l, r.coll.ThroughputMbps(l.ID, 3*sim.Second))
		}
	}
	if f := r.coll.Fairness(3 * sim.Second); f < 0.7 {
		t.Errorf("fairness = %.3f", f)
	}
}

func TestTraceEventsEmitted(t *testing.T) {
	net := topo.TwoPairs(topo.ExposedTerminals)
	links := net.BuildLinks(true, false)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(8)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	engine := New(k, medium, g, nil, DefaultConfig())
	kinds := map[string]int{}
	engine.Trace = func(ev TraceEvent) { kinds[ev.Kind]++ }
	for i := 0; i < 10; i++ {
		engine.Enqueue(&mac.Packet{Link: links[0], Bytes: 512})
	}
	engine.Start()
	k.RunUntil(100 * sim.Millisecond)
	for _, want := range []string{"data", "fake", "bcast", "trigger", "poll", "ack", "selfstart"} {
		if kinds[want] == 0 {
			t.Errorf("no %q trace events (got %v)", want, kinds)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) (float64, int, int) {
		r := fullRig(nilT(t), topo.Figure7(), true, true, seed, nil)
		r.k.RunUntil(sim.Second)
		return r.coll.AggregateMbps(sim.Second), r.engine.DataSends, r.engine.FakeSends
	}
	a1, d1, f1 := run(99)
	a2, d2, f2 := run(99)
	if a1 != a2 || d1 != d2 || f1 != f2 {
		t.Errorf("same seed diverged: (%v,%d,%d) vs (%v,%d,%d)", a1, d1, f1, a2, d2, f2)
	}
}

func nilT(t *testing.T) *testing.T { return t }

func TestIdleNetworkKeepsChainsAlive(t *testing.T) {
	// With zero traffic the fake cover keeps triggers and polls flowing; no
	// deadlock, bounded self-starts.
	r := fullRigIdle(t, topo.TwoPairs(topo.ExposedTerminals), 10)
	r.k.RunUntil(sim.Second)
	if r.engine.FakeSends < 1000 {
		t.Errorf("fake sends = %d; chain appears dead", r.engine.FakeSends)
	}
	if r.engine.Polls < 100 {
		t.Errorf("polls = %d", r.engine.Polls)
	}
	if r.engine.SelfStarts > 50 {
		t.Errorf("self-starts = %d; chain unhealthy", r.engine.SelfStarts)
	}
}

func fullRigIdle(t *testing.T, net *topo.Network, seed int64) *rig {
	t.Helper()
	links := net.BuildLinks(true, true)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(seed)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	engine := New(k, medium, g, nil, DefaultConfig())
	engine.Start()
	return &rig{k: k, medium: medium, engine: engine, links: links}
}

func BenchmarkDominoSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := topo.Figure7()
		links := net.BuildLinks(true, true)
		g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
		k := sim.New(int64(i))
		medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
		hub := &mac.Hub{}
		engine := New(k, medium, g, hub, DefaultConfig())
		for _, l := range links {
			s := traffic.NewSaturated(k, engine, l, 512, 8)
			hub.Add(s)
			s.Start()
		}
		engine.Start()
		k.RunUntil(sim.Second)
	}
}
