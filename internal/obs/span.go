package obs

// Spans allocates causal span ids for one run. Ids are a plain sequence
// starting at 1 (0 is the wire encoding for "no span"), handed out from the
// single-threaded event loop in event order — so spans are deterministic for
// a given seed and restart per run, which keeps merged multi-run traces
// byte-identical at any worker count.
//
// A nil *Spans is the disabled state: engines keep a *Spans field that stays
// nil when tracing is off, and every allocation site guards with one nil
// check, so the disabled path costs nothing (benchmark-pinned by
// benchreport -obs).
type Spans struct {
	last int64
}

// NewSpans returns a fresh allocator whose first Next is 1.
func NewSpans() *Spans { return &Spans{} }

// NewSpansAt returns an allocator whose first Next is base+1. Sharded runs
// give each interference domain a disjoint base (domain index shifted far
// above any per-domain span count), so span ids stay unique — and, because
// the base depends only on the domain, identical — in a merged trace at any
// shard count.
func NewSpansAt(base int64) *Spans { return &Spans{last: base} }

// Next returns a fresh span id. Not safe for concurrent use; spans belong to
// one simulation's event loop.
func (s *Spans) Next() int64 {
	s.last++
	return s.last
}
