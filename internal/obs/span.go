package obs

// Spans allocates causal span ids for one run. Ids are a plain sequence
// starting at 1 (0 is the wire encoding for "no span"), handed out from the
// single-threaded event loop in event order — so spans are deterministic for
// a given seed and restart per run, which keeps merged multi-run traces
// byte-identical at any worker count.
//
// A nil *Spans is the disabled state: engines keep a *Spans field that stays
// nil when tracing is off, and every allocation site guards with one nil
// check, so the disabled path costs nothing (benchmark-pinned by
// benchreport -obs).
type Spans struct {
	last int64
}

// NewSpans returns a fresh allocator whose first Next is 1.
func NewSpans() *Spans { return &Spans{} }

// Next returns a fresh span id. Not safe for concurrent use; spans belong to
// one simulation's event loop.
func (s *Spans) Next() int64 {
	s.last++
	return s.last
}
