package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
	"sort"
	"sync/atomic"
)

// MetricsPublisher hands metric snapshots from the simulation goroutine to
// HTTP readers without locks on the writer side: Publish swaps an atomic
// pointer, Latest loads it. The simulation publishes decimated snapshots
// (obs.Run.KernelHook) plus a final one at Finish, so /debug/metrics always
// serves a consistent, recent view of a live run.
type MetricsPublisher struct {
	cur atomic.Pointer[Snapshot]
}

// NewMetricsPublisher returns an empty publisher.
func NewMetricsPublisher() *MetricsPublisher { return &MetricsPublisher{} }

// Publish makes s the snapshot served to readers.
func (p *MetricsPublisher) Publish(s Snapshot) { p.cur.Store(&s) }

// Latest returns the most recently published snapshot (nil before the
// first Publish).
func (p *MetricsPublisher) Latest() Snapshot {
	if s := p.cur.Load(); s != nil {
		return *s
	}
	return nil
}

// DebugServer is the simulation's debug HTTP endpoint: stdlib pprof plus a
// runtime-metrics dump, and — when the run wires them in — a live metrics
// snapshot (/debug/metrics) and a chunked NDJSON trace stream
// (/debug/trace). Attach the sources before Serve; both endpoints answer
// 404 until their source exists.
type DebugServer struct {
	mux  *http.ServeMux
	hub  *LiveHub
	pub  *MetricsPublisher
	addr string
}

// NewDebugServer returns a server with the pprof and runtime endpoints
// installed.
func NewDebugServer() *DebugServer {
	s := &DebugServer{mux: http.NewServeMux()}
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.HandleFunc("/debug/runtime", serveRuntimeMetrics)
	s.mux.HandleFunc("/debug/metrics", s.serveMetrics)
	s.mux.HandleFunc("/debug/trace", s.serveTrace)
	return s
}

// AttachLive connects the trace hub feeding /debug/trace. Tee the run's
// NDJSON tracer into the hub with a MultiSink.
func (s *DebugServer) AttachLive(hub *LiveHub) { s.hub = hub }

// AttachMetrics connects the snapshot publisher feeding /debug/metrics.
func (s *DebugServer) AttachMetrics(pub *MetricsPublisher) { s.pub = pub }

// Serve binds addr (e.g. "localhost:6060", ":0" for ephemeral) and serves
// in the background until the process exits. It returns the bound address.
func (s *DebugServer) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.addr = ln.Addr().String()
	go func() {
		_ = http.Serve(ln, s.mux) //nolint:errcheck // best-effort debug endpoint
	}()
	return s.addr, nil
}

// serveMetrics renders the latest published snapshot as JSON.
func (s *DebugServer) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.pub == nil {
		http.Error(w, "no metrics publisher attached", http.StatusNotFound)
		return
	}
	snap := s.pub.Latest()
	if snap == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap) //nolint:errcheck // best-effort debug endpoint
}

// serveTrace streams live NDJSON trace chunks over chunked HTTP until the
// run ends or the client disconnects. Chunks a lagging client missed are
// dropped at the hub; the count is reported as a trailing comment line.
func (s *DebugServer) serveTrace(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil {
		http.Error(w, "no live trace hub attached", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	fl.Flush()
	ch, cancel, dropped := s.hub.Subscribe()
	defer cancel()
	for {
		select {
		case chunk, open := <-ch:
			if !open {
				if n := dropped(); n > 0 {
					fmt.Fprintf(w, "{\"k\":\"stream_dropped\",\"v\":%d}\n", n)
				}
				fl.Flush()
				return
			}
			if _, err := w.Write(chunk); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// ServeDebug starts a DebugServer with only the pprof and runtime endpoints
// on addr and returns the bound address; it never blocks. Long simulations
// can then be profiled live:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
func ServeDebug(addr string) (string, error) {
	return NewDebugServer().Serve(addr)
}

// serveRuntimeMetrics dumps every runtime/metrics sample as "name value"
// lines, sorted by name.
func serveRuntimeMetrics(w http.ResponseWriter, _ *http.Request) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			fmt.Fprintf(w, "%s %d\n", s.Name, s.Value.Uint64())
		case metrics.KindFloat64:
			fmt.Fprintf(w, "%s %g\n", s.Name, s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			var n uint64
			for _, c := range h.Counts {
				n += c
			}
			fmt.Fprintf(w, "%s histogram n=%d\n", s.Name, n)
		}
	}
}
