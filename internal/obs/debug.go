package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
	"sort"
)

// ServeDebug starts an HTTP server on addr (e.g. "localhost:6060") exposing
// the stdlib profiler at /debug/pprof/ and a plain-text dump of
// runtime/metrics at /debug/runtime. It returns the bound address (useful
// with ":0") and never blocks; the server lives until the process exits.
// Long simulations can then be profiled live:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
func ServeDebug(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime", serveRuntimeMetrics)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		_ = http.Serve(ln, mux) //nolint:errcheck // best-effort debug endpoint
	}()
	return ln.Addr().String(), nil
}

// serveRuntimeMetrics dumps every runtime/metrics sample as "name value"
// lines, sorted by name.
func serveRuntimeMetrics(w http.ResponseWriter, _ *http.Request) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			fmt.Fprintf(w, "%s %d\n", s.Name, s.Value.Uint64())
		case metrics.KindFloat64:
			fmt.Fprintf(w, "%s %g\n", s.Name, s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			var n uint64
			for _, c := range h.Counts {
				n += c
			}
			fmt.Fprintf(w, "%s histogram n=%d\n", s.Name, n)
		}
	}
}
