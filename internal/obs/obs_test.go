package obs

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := ParseKind(name)
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", name, got, ok, k)
		}
	}
	if _, ok := ParseKind("nonsense"); ok {
		t.Fatal("ParseKind accepted an unknown name")
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	recs := []Record{
		{At: 0, Kind: KindRunStart, Node: -1, Link: -1, Slot: -1, Value: 42, Aux: "domino"},
		{At: 1500, Kind: KindTxStart, Node: 0, Link: -1, Slot: -1, Dur: 224_000, Aux: "DATA"},
		{At: 225_500, Kind: KindSlotStart, Node: 3, Link: 2, Slot: 17, Aux: "fake"},
		{At: 300_000, Kind: KindROPPoll, Node: 5, Link: -1, Slot: -1, Value: 9, Extra: 2, OK: true},
		{At: 400_000, Kind: KindQueue, Node: -1, Link: 0, Slot: -1, Value: 128},
		{At: 500_000, Kind: KindDrop, Node: -1, Link: 1, Slot: -1, Aux: `needs "escaping"\n`},
	}
	var buf bytes.Buffer
	tr := NewNDJSON(&buf)
	for _, r := range recs {
		tr.Emit(r)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := ParseNDJSON(&buf, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("parsed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestNDJSONNodeZeroDistinctFromAbsent(t *testing.T) {
	a := AppendRecord(nil, Record{Kind: KindTxStart, Node: 0, Link: -1, Slot: -1})
	b := AppendRecord(nil, Record{Kind: KindTxStart, Node: -1, Link: -1, Slot: -1})
	if !strings.Contains(string(a), `"node":0`) {
		t.Fatalf("node 0 not encoded: %s", a)
	}
	if strings.Contains(string(b), "node") {
		t.Fatalf("absent node encoded: %s", b)
	}
}

func TestNDJSONBoundedBuffering(t *testing.T) {
	var buf bytes.Buffer
	tr := NewNDJSON(&buf)
	r := Rec(1, KindTxStart)
	r.Node = 1
	r.Aux = "DATA"
	line := len(AppendRecord(nil, r))
	n := ndjsonFlushAt/line + 2
	for i := 0; i < n; i++ {
		tr.Emit(r)
	}
	if buf.Len() == 0 {
		t.Fatal("buffer never flushed despite exceeding the bound")
	}
	if len(tr.buf) >= ndjsonFlushAt {
		t.Fatalf("in-memory buffer holds %d bytes, bound is %d", len(tr.buf), ndjsonFlushAt)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(buf.Bytes(), []byte{'\n'}); got != n {
		t.Fatalf("%d lines written, want %d", got, n)
	}
}

func TestShardedMergeOrder(t *testing.T) {
	s := NewSharded(3)
	// Emit out of shard order: merged output must still be shard 0,1,2.
	for _, i := range []int{2, 0, 1} {
		r := Rec(sim.Time(i), KindRunStart)
		r.Value = int64(i)
		s.Shard(i).Emit(r)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var order []int64
	if err := ParseNDJSON(&buf, func(r Record) error { order = append(order, r.Value); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("merge order = %v, want [0 1 2]", order)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	m.Counter("z.count").Add(5)
	m.Counter("z.count").Inc() // same counter
	m.Gauge("a.gauge").Set(2)
	m.Gauge("a.gauge").SetMax(7)
	m.Gauge("a.gauge").SetMax(3) // no-op, below max
	h := m.Histogram("m.hist")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := m.Snapshot()
	if len(s) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i-1].Name >= s[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", s[i-1].Name, s[i].Name)
		}
	}
	if mv, _ := s.Get("z.count"); mv.Value != 6 {
		t.Fatalf("counter = %v, want 6", mv.Value)
	}
	if mv, _ := s.Get("a.gauge"); mv.Value != 7 {
		t.Fatalf("gauge = %v, want 7 (SetMax)", mv.Value)
	}
	mv, ok := s.Get("m.hist")
	if !ok || mv.Value != 100 || mv.Max != 100 || mv.P50 < 49 || mv.P50 > 52 {
		t.Fatalf("histogram entry = %+v", mv)
	}
	var text strings.Builder
	s.WriteText(&text)
	if !strings.Contains(text.String(), "m.hist") {
		t.Fatalf("WriteText missing histogram:\n%s", text.String())
	}
}

// The segmentation invariant: buckets partition the timeline, so they sum
// exactly to the run duration whatever the overlap structure.
func TestAirtimeSegmentation(t *testing.T) {
	var a Airtime
	us := sim.Microsecond
	// 0-10 idle; 10-30 data alone; 30-40 data+ack overlap; 40-50 ack alone;
	// 50-60 idle; 60-70 signature; 70-100 idle.
	a.Start(BucketData, 10*us)
	a.Start(BucketAck, 30*us)
	a.End(BucketData, 40*us)
	a.End(BucketAck, 50*us)
	a.Start(BucketSig, 60*us)
	a.End(BucketSig, 70*us)
	b := a.Breakdown(100 * us)
	if b.Total != 100*us {
		t.Fatalf("total = %v, want 100µs", b.Total)
	}
	want := map[Bucket]sim.Time{
		BucketIdle:    50 * us,
		BucketData:    20 * us,
		BucketAck:     10 * us,
		BucketSig:     10 * us,
		BucketOverlap: 10 * us,
	}
	for bk, d := range want {
		if b.Of(bk) != d {
			t.Errorf("%v = %v, want %v", bk, b.Of(bk), d)
		}
	}
	var sum sim.Time
	for bk := BucketIdle; bk < NumBuckets; bk++ {
		sum += b.Of(bk)
	}
	if sum != b.Total {
		t.Fatalf("buckets sum to %v, total says %v", sum, b.Total)
	}
}

// Two same-kind frames overlapping classify as overlap, not double-counted.
func TestAirtimeSameKindOverlap(t *testing.T) {
	var a Airtime
	us := sim.Microsecond
	a.Start(BucketData, 0)
	a.Start(BucketData, 5*us)
	a.End(BucketData, 10*us)
	a.End(BucketData, 15*us)
	b := a.Breakdown(20 * us)
	if b.Of(BucketOverlap) != 5*us || b.Of(BucketData) != 10*us || b.Of(BucketIdle) != 5*us {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.Total != 20*us {
		t.Fatalf("total = %v", b.Total)
	}
}

func TestBucketOfCoversAllFrameKinds(t *testing.T) {
	kinds := []phy.FrameKind{phy.Data, phy.Ack, phy.Poll, phy.Report, phy.Signature, phy.FakeHeader}
	for _, k := range kinds {
		b := BucketOf(k)
		if b == BucketIdle || b == BucketOverlap {
			t.Fatalf("BucketOf(%v) = %v", k, b)
		}
		if got := BucketOfName(k.String()); got != b {
			t.Fatalf("BucketOfName(%q) = %v, want %v", k.String(), got, b)
		}
	}
}

func TestRunProbeAndFinish(t *testing.T) {
	var buf Buffer
	m := NewMetrics()
	r := NewRun(&buf, m)
	us := sim.Microsecond
	data := &phy.Frame{Kind: phy.Data, Src: 0, Dst: 1}
	r.TxStart(data, 0)
	r.TxEnd(data, 100*us)
	r.RxOutcome(data, 1, false, 100*us) // addressed failure: a collision
	r.RxOutcome(data, 2, false, 100*us) // bystander failure: not a collision
	sig := &phy.Frame{Kind: phy.Signature, Src: 0, Dst: phy.Broadcast}
	r.RxOutcome(sig, 1, false, 100*us) // signature miss: engine's concern
	b := r.Finish(200 * us)
	if b.Collisions != 1 {
		t.Fatalf("collisions = %d, want 1", b.Collisions)
	}
	if b.Of(BucketData) != 100*us || b.Of(BucketIdle) != 100*us || b.Total != 200*us {
		t.Fatalf("breakdown = %+v", b)
	}
	if buf.Count(KindTxStart) != 1 || buf.Count(KindCollision) != 1 || buf.Count(KindRunEnd) != 1 {
		t.Fatalf("record counts: tx=%d coll=%d end=%d",
			buf.Count(KindTxStart), buf.Count(KindCollision), buf.Count(KindRunEnd))
	}
	snap := m.Snapshot()
	if mv, _ := snap.Get("phy.collisions"); mv.Value != 1 {
		t.Fatalf("phy.collisions = %v", mv.Value)
	}
	if mv, _ := snap.Get("phy.tx.data"); mv.Value != 1 {
		t.Fatalf("phy.tx.data = %v", mv.Value)
	}
	if mv, _ := snap.Get("airtime.idle_frac"); mv.Value != 0.5 {
		t.Fatalf("airtime.idle_frac = %v", mv.Value)
	}
}

func TestRunMacEventsAndQueueSampler(t *testing.T) {
	var buf Buffer
	m := NewMetrics()
	clock := sim.Time(0)
	r := NewRun(&buf, m).BindClock(func() sim.Time { return clock })
	link := &topo.Link{ID: 3}
	p := &mac.Packet{Link: link, Enqueued: 0}
	clock = 500 * sim.Microsecond
	r.Delivered(p, clock)
	r.Dropped(p, clock)
	sampler := r.QueueSampler()
	for d := 1; d <= 70; d++ {
		sampler(3, d)
	}
	snap := m.Snapshot()
	if mv, _ := snap.Get("mac.delivered"); mv.Value != 1 {
		t.Fatalf("mac.delivered = %v", mv.Value)
	}
	if mv, _ := snap.Get("mac.queue_max"); mv.Value != 70 {
		t.Fatalf("mac.queue_max = %v", mv.Value)
	}
	if mv, _ := snap.Get("mac.delay_us"); mv.Value != 1 || mv.Max != 500 {
		t.Fatalf("mac.delay_us = %+v", mv)
	}
	// 70 samples on one link, decimated every 64: samples 0 and 64 emit.
	if got := buf.Count(KindQueue); got != 2 {
		t.Fatalf("queue samples = %d, want 2", got)
	}
	if buf.Count(KindDrop) != 1 {
		t.Fatalf("drop records = %d, want 1", buf.Count(KindDrop))
	}
	for _, rec := range buf.Records() {
		if rec.Kind == KindQueue && rec.At == 0 {
			t.Fatalf("queue sample missing timestamp: %+v", rec)
		}
	}
}

func TestRunKernelHook(t *testing.T) {
	var buf Buffer
	m := NewMetrics()
	r := NewRun(&buf, m)
	hook := r.KernelHook()
	for i := uint64(1); i <= 3*kernelSampleEvery; i++ {
		src := sim.SrcMAC
		if i%2 == 0 {
			src = sim.SrcPHY
		}
		hook(sim.EventInfo{Now: sim.Time(i), Fired: i, Pending: int(i % 7), Source: src})
	}
	r.Finish(sim.Time(3 * kernelSampleEvery))
	if got := buf.Count(KindKernel); got != 3 {
		t.Fatalf("kernel samples = %d, want 3", got)
	}
	snap := m.Snapshot()
	if mv, _ := snap.Get("kernel.fired.mac"); mv.Value != 3*kernelSampleEvery/2 {
		t.Fatalf("kernel.fired.mac = %v", mv.Value)
	}
	if mv, _ := snap.Get("kernel.fired.phy"); mv.Value != 3*kernelSampleEvery/2 {
		t.Fatalf("kernel.fired.phy = %v", mv.Value)
	}
}

// A Run with neither tracer nor metrics must still keep the airtime
// breakdown correct (core uses it when only -trace XOR -metrics is set, and
// the probe is only installed when observability is on at all).
func TestRunNilTracerNilMetrics(t *testing.T) {
	r := NewRun(nil, nil)
	f := &phy.Frame{Kind: phy.Ack, Src: 0, Dst: 1}
	r.TxStart(f, 0)
	r.TxEnd(f, 10*sim.Microsecond)
	r.Delivered(&mac.Packet{Link: &topo.Link{}}, 0)
	r.KernelHook()(sim.EventInfo{Fired: kernelSampleEvery})
	r.QueueSampler()(0, 5)
	b := r.Finish(20 * sim.Microsecond)
	if b.Of(BucketAck) != 10*sim.Microsecond || b.Total != 20*sim.Microsecond {
		t.Fatalf("breakdown = %+v", b)
	}
}

func TestServeDebug(t *testing.T) {
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/debug/runtime")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("status %d, err %v", resp.StatusCode, err)
	}
	if !strings.Contains(string(body), "/gc/") {
		t.Fatalf("runtime metrics dump missing GC stats:\n%.300s", body)
	}
	resp2, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("pprof index status %d", resp2.StatusCode)
	}
}
