package obs

import (
	"sort"
	"strconv"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
)

// kernelSampleEvery decimates KindKernel records: one sample per this many
// fired events keeps traces bounded while still profiling queue growth.
const kernelSampleEvery = 1024

// queueSampleEvery decimates KindQueue records per link.
const queueSampleEvery = 64

// livePublishEvery decimates live metrics snapshots: one snapshot per this
// many fired kernel events when a publisher is attached.
const livePublishEvery = 65536

// Run wires one simulation run's tracer and metrics across the layers: it
// implements phy.Probe (medium activity), mac.Events (delivery outcomes) and
// the kernel's OnEvent hook, and owns the airtime accounting. Either of
// tracer and metrics may be nil; core only installs the hooks at all when
// observability was requested, so disabled runs pay nothing beyond the
// hooks' own nil checks.
type Run struct {
	tracer  Tracer
	metrics *Metrics
	air     Airtime
	spans   *Spans // span-id allocator; nil when spans are off

	firedBySrc [sim.NumSources]int64
	collisions int64

	// metrics shortcuts, resolved once so hot paths skip the map lookups
	delay     *Histogram // delivery delay, microseconds
	delivered *Counter
	dropped   *Counter
	txByKind  [NumBuckets]*Counter
	qdelay    *LogHist // enqueue → first dequeue, microseconds
	hol       *LogHist // first dequeue → delivery (head-of-line), microseconds
	aoiPeak   *LogHist // per-client peak age-of-information at delivery, µs

	// aoiLast is each client's last delivered update's generation (enqueue)
	// time; aoiGauge caches the per-client age gauges so delivery stays off
	// the name-formatting path after a client's first packet.
	aoiLast  map[int]sim.Time
	aoiGauge map[int]*Gauge

	queueSeen  map[int]int // per-link samples observed, for decimation
	queueDepth *Gauge      // high-water MAC backlog across links

	pub *MetricsPublisher // live snapshot publisher, nil unless attached

	now     func() sim.Time // simulation clock, for hooks with no timestamp of their own
	mapNode func(int) int   // node-id mapping for metric names, nil = identity
}

// NewRun returns a Run emitting to tr (may be nil) and m (may be nil).
// Causal spans are on whenever a tracer is installed; DisableSpans opts out.
func NewRun(tr Tracer, m *Metrics) *Run {
	r := &Run{tracer: tr, metrics: m, queueSeen: map[int]int{}}
	if tr != nil {
		r.spans = NewSpans()
	}
	if m != nil {
		r.delay = m.Histogram("mac.delay_us")
		r.delivered = m.Counter("mac.delivered")
		r.dropped = m.Counter("mac.dropped")
		for b := BucketData; b < BucketOverlap; b++ {
			r.txByKind[b] = m.Counter("phy.tx." + b.String())
		}
		r.queueDepth = m.Gauge("mac.queue_max")
		r.qdelay = m.LogHist("mac.qdelay_us")
		r.hol = m.LogHist("mac.hol_us")
		r.aoiPeak = m.LogHist("aoi.peak_us")
		r.aoiLast = map[int]sim.Time{}
		r.aoiGauge = map[int]*Gauge{}
	}
	return r
}

// Tracer returns the run's tracer (nil when tracing is off).
func (r *Run) Tracer() Tracer { return r.tracer }

// Spans returns the run's span allocator, nil when spans are off. Engines
// keep the returned pointer and guard every allocation with one nil check —
// the contract that keeps the disabled path at zero cost.
func (r *Run) Spans() *Spans { return r.spans }

// DisableSpans turns causal span allocation off (trace records keep their
// flat shape). It returns r for chaining and must run before engine wiring.
func (r *Run) DisableSpans() *Run {
	r.spans = nil
	return r
}

// SetPublisher attaches a live metrics publisher: the kernel hook pushes a
// decimated snapshot stream into it, and Finish publishes the final state.
// It returns r for chaining. No-op when the run has no metrics registry.
func (r *Run) SetPublisher(p *MetricsPublisher) *Run {
	if r.metrics != nil {
		r.pub = p
	}
	return r
}

// BindClock attaches the simulation clock, used to timestamp records emitted
// from hooks that do not carry their own time (queue-depth samples). It
// returns r for chaining.
func (r *Run) BindClock(now func() sim.Time) *Run {
	r.now = now
	return r
}

// SetNodeMapper installs an id mapping applied when metric names embed a
// node id (the per-client AoI gauges). Sharded runs pass the domain's
// local→global node map so a merged registry names every client by its
// global id; unsharded runs leave it nil (identity). Returns r for chaining.
func (r *Run) SetNodeMapper(f func(int) int) *Run {
	r.mapNode = f
	return r
}

// SetSpanBase restarts the span allocator at base (first id base+1).
// Sharded runs give each domain a disjoint, domain-indexed base so span ids
// in the merged trace are unique and independent of the shard count. No-op
// when spans are disabled; must run before engine wiring.
func (r *Run) SetSpanBase(base int64) *Run {
	if r.spans != nil {
		r.spans = NewSpansAt(base)
	}
	return r
}

// Start emits the run-open record delimiting this run in merged traces.
func (r *Run) Start(scheme string, seed int64) {
	if r.tracer != nil {
		rec := Rec(0, KindRunStart)
		rec.Value = seed
		rec.Aux = scheme
		r.tracer.Emit(rec)
	}
}

// TxStart implements phy.Probe.
func (r *Run) TxStart(f *phy.Frame, now sim.Time) {
	b := BucketOf(f.Kind)
	r.air.Start(b, now)
	if c := r.txByKind[b]; c != nil {
		c.Inc()
	}
	if r.tracer != nil {
		rec := Rec(now, KindTxStart)
		rec.Node = int(f.Src)
		rec.Dur = f.AirTime()
		rec.Span = f.ObsSpan
		rec.Aux = f.Kind.String()
		r.tracer.Emit(rec)
	}
}

// TxEnd implements phy.Probe.
func (r *Run) TxEnd(f *phy.Frame, now sim.Time) {
	r.air.End(BucketOf(f.Kind), now)
	if r.tracer != nil {
		rec := Rec(now, KindTxEnd)
		rec.Node = int(f.Src)
		rec.Span = f.ObsSpan
		rec.Aux = f.Kind.String()
		r.tracer.Emit(rec)
	}
}

// RxOutcome implements phy.Probe. Only addressed, non-signature failures
// count as collisions: a bystander failing to decode a frame not meant for
// it is normal spatial reuse, and missed signature triggers are reported
// semantically by the DOMINO engines (KindTriggerMiss).
func (r *Run) RxOutcome(f *phy.Frame, at phy.NodeID, ok bool, now sim.Time) {
	if ok || f.Kind == phy.Signature || f.Dst != at {
		return
	}
	r.collisions++
	if r.tracer != nil {
		rec := Rec(now, KindCollision)
		rec.Node = int(at)
		rec.Parent = f.ObsSpan
		rec.Aux = f.Kind.String()
		r.tracer.Emit(rec)
	}
}

// PacketQueued opens a packet's lifecycle: engines call it after a
// successful MAC enqueue. It assigns the packet its causal span (when spans
// are on) and emits the pkt_enqueue record that roots the lifecycle tree.
func (r *Run) PacketQueued(p *mac.Packet, now sim.Time) {
	if r.spans != nil {
		p.Span = r.spans.Next()
	}
	if r.tracer != nil {
		rec := Rec(now, KindPktEnqueue)
		rec.Link = p.Link.ID
		rec.Span = p.Span
		rec.Value = int64(p.Bytes)
		r.tracer.Emit(rec)
	}
}

// PacketDequeued stamps the packet's first exit from its MAC queue (retries
// requeue and re-pop; only the first service counts) and records queueing
// delay. Engines call it right after every queue Pop they intend to serve.
func (r *Run) PacketDequeued(p *mac.Packet, now sim.Time) {
	if p.Dequeued != 0 {
		return
	}
	p.Dequeued = now
	if r.qdelay != nil {
		r.qdelay.Record(int64(now-p.Enqueued) / 1000)
	}
}

// Delivered implements mac.Events: delivery latency, head-of-line latency,
// per-client age-of-information, and the pkt_deliver record closing the
// packet's span (parented to the transmission that carried it).
func (r *Run) Delivered(p *mac.Packet, now sim.Time) {
	if r.delivered != nil {
		r.delivered.Inc()
		r.delay.Observe((now - p.Enqueued).Microseconds())
		if p.Dequeued != 0 {
			r.hol.Record(int64(now-p.Dequeued) / 1000)
		}
		r.noteAoI(p, now)
	}
	if r.tracer != nil {
		rec := Rec(now, KindPktDeliver)
		rec.Link = p.Link.ID
		rec.Span = p.Span
		rec.Parent = p.TxSpan
		rec.Dur = now - p.Enqueued
		if p.Dequeued != 0 {
			rec.Value = int64(p.Dequeued-p.Enqueued) / 1000
			rec.Extra = int64(now-p.Dequeued) / 1000
		}
		r.tracer.Emit(rec)
	}
}

// noteAoI updates the client's age-of-information at a delivery: the peak
// age just before this update (now minus the previous update's generation
// time, the standard sawtooth peak) goes into the aoi.peak_us histogram,
// and the client's gauge holds the post-delivery age (this packet's own
// generation-to-delivery latency).
func (r *Run) noteAoI(p *mac.Packet, now sim.Time) {
	client := int(p.Link.Receiver)
	if !p.Link.Downlink {
		client = int(p.Link.Sender)
	}
	if prev, ok := r.aoiLast[client]; ok {
		r.aoiPeak.Record(int64(now-prev) / 1000)
	}
	r.aoiLast[client] = p.Enqueued
	g := r.aoiGauge[client]
	if g == nil {
		name := client
		if r.mapNode != nil {
			name = r.mapNode(client)
		}
		g = r.metrics.Gauge("aoi.client." + strconv.Itoa(name) + "_us")
		r.aoiGauge[client] = g
	}
	g.Set((now - p.Enqueued).Microseconds())
}

// Dropped implements mac.Events.
func (r *Run) Dropped(p *mac.Packet, now sim.Time) {
	if r.dropped != nil {
		r.dropped.Inc()
	}
	if r.tracer != nil {
		rec := Rec(now, KindDrop)
		rec.Link = p.Link.ID
		rec.Span = p.Span
		rec.Value = int64(p.Retries)
		r.tracer.Emit(rec)
	}
}

// KernelHook returns the closure to install via sim.Kernel.OnEvent: it
// tallies fired events per source, emits a decimated event-loop sample, and
// feeds the live metrics publisher (when attached) a decimated snapshot
// stream.
func (r *Run) KernelHook() func(sim.EventInfo) {
	return func(info sim.EventInfo) {
		r.firedBySrc[info.Source]++
		if r.tracer != nil && info.Fired%kernelSampleEvery == 0 {
			rec := Rec(info.Now, KindKernel)
			rec.Value = int64(info.Pending)
			rec.Extra = int64(info.Fired)
			r.tracer.Emit(rec)
		}
		if r.pub != nil && info.Fired%livePublishEvery == 0 {
			r.pub.Publish(r.metrics.Snapshot())
		}
	}
}

// QueueSampler returns the per-link depth observer engines install on their
// MAC queues (mac.Queue.OnDepth via the engines' queue-sampling hooks).
// Samples are decimated per link; the high-water mark feeds mac.queue_max.
func (r *Run) QueueSampler() func(link, depth int) {
	return func(link, depth int) {
		if r.queueDepth != nil {
			r.queueDepth.SetMax(float64(depth))
		}
		if r.tracer == nil {
			return
		}
		n := r.queueSeen[link]
		r.queueSeen[link] = n + 1
		if n%queueSampleEvery != 0 {
			return
		}
		at := sim.Time(0)
		if r.now != nil {
			at = r.now()
		}
		rec := Rec(at, KindQueue)
		rec.Link = link
		rec.Value = int64(depth)
		r.tracer.Emit(rec)
	}
}

// Finish closes the airtime timeline at end, folds the run totals into the
// metrics registry, emits the run-close record, and returns the breakdown.
func (r *Run) Finish(end sim.Time) Breakdown {
	b := r.air.Breakdown(end)
	b.Collisions = r.collisions
	if r.metrics != nil {
		for bk := BucketIdle; bk < NumBuckets; bk++ {
			r.metrics.Gauge("airtime." + bk.String() + "_frac").Set(b.Frac(bk))
		}
		r.metrics.Counter("phy.collisions").Add(r.collisions)
		for s := sim.Source(0); s < sim.NumSources; s++ {
			if r.firedBySrc[s] > 0 {
				r.metrics.Counter("kernel.fired." + s.String()).Add(r.firedBySrc[s])
			}
		}
	}
	if r.tracer != nil {
		// One summary record per log-scale histogram (sorted so traces stay
		// deterministic), then the run-close record.
		if r.metrics != nil && len(r.metrics.lhists) > 0 {
			names := make([]string, 0, len(r.metrics.lhists))
			for name := range r.metrics.lhists {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				h := r.metrics.lhists[name]
				rec := Rec(end, KindMetric)
				rec.Aux = name
				rec.Value = h.N()
				rec.Extra = int64(h.Quantile(0.99))
				r.tracer.Emit(rec)
			}
		}
		rec := Rec(end, KindRunEnd)
		rec.Value = r.collisions
		r.tracer.Emit(rec)
	}
	if r.pub != nil {
		r.pub.Publish(r.metrics.Snapshot())
	}
	return b
}
