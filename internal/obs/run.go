package obs

import (
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
)

// kernelSampleEvery decimates KindKernel records: one sample per this many
// fired events keeps traces bounded while still profiling queue growth.
const kernelSampleEvery = 1024

// queueSampleEvery decimates KindQueue records per link.
const queueSampleEvery = 64

// Run wires one simulation run's tracer and metrics across the layers: it
// implements phy.Probe (medium activity), mac.Events (delivery outcomes) and
// the kernel's OnEvent hook, and owns the airtime accounting. Either of
// tracer and metrics may be nil; core only installs the hooks at all when
// observability was requested, so disabled runs pay nothing beyond the
// hooks' own nil checks.
type Run struct {
	tracer  Tracer
	metrics *Metrics
	air     Airtime

	firedBySrc [sim.NumSources]int64
	collisions int64

	// metrics shortcuts, resolved once so hot paths skip the map lookups
	delay     *Histogram // delivery delay, microseconds
	delivered *Counter
	dropped   *Counter
	txByKind  [NumBuckets]*Counter

	queueSeen  map[int]int // per-link samples observed, for decimation
	queueDepth *Gauge      // high-water MAC backlog across links

	now func() sim.Time // simulation clock, for hooks with no timestamp of their own
}

// NewRun returns a Run emitting to tr (may be nil) and m (may be nil).
func NewRun(tr Tracer, m *Metrics) *Run {
	r := &Run{tracer: tr, metrics: m, queueSeen: map[int]int{}}
	if m != nil {
		r.delay = m.Histogram("mac.delay_us")
		r.delivered = m.Counter("mac.delivered")
		r.dropped = m.Counter("mac.dropped")
		for b := BucketData; b < BucketOverlap; b++ {
			r.txByKind[b] = m.Counter("phy.tx." + b.String())
		}
		r.queueDepth = m.Gauge("mac.queue_max")
	}
	return r
}

// Tracer returns the run's tracer (nil when tracing is off).
func (r *Run) Tracer() Tracer { return r.tracer }

// BindClock attaches the simulation clock, used to timestamp records emitted
// from hooks that do not carry their own time (queue-depth samples). It
// returns r for chaining.
func (r *Run) BindClock(now func() sim.Time) *Run {
	r.now = now
	return r
}

// Start emits the run-open record delimiting this run in merged traces.
func (r *Run) Start(scheme string, seed int64) {
	if r.tracer != nil {
		rec := Rec(0, KindRunStart)
		rec.Value = seed
		rec.Aux = scheme
		r.tracer.Emit(rec)
	}
}

// TxStart implements phy.Probe.
func (r *Run) TxStart(f *phy.Frame, now sim.Time) {
	b := BucketOf(f.Kind)
	r.air.Start(b, now)
	if c := r.txByKind[b]; c != nil {
		c.Inc()
	}
	if r.tracer != nil {
		rec := Rec(now, KindTxStart)
		rec.Node = int(f.Src)
		rec.Dur = f.AirTime()
		rec.Aux = f.Kind.String()
		r.tracer.Emit(rec)
	}
}

// TxEnd implements phy.Probe.
func (r *Run) TxEnd(f *phy.Frame, now sim.Time) {
	r.air.End(BucketOf(f.Kind), now)
	if r.tracer != nil {
		rec := Rec(now, KindTxEnd)
		rec.Node = int(f.Src)
		rec.Aux = f.Kind.String()
		r.tracer.Emit(rec)
	}
}

// RxOutcome implements phy.Probe. Only addressed, non-signature failures
// count as collisions: a bystander failing to decode a frame not meant for
// it is normal spatial reuse, and missed signature triggers are reported
// semantically by the DOMINO engines (KindTriggerMiss).
func (r *Run) RxOutcome(f *phy.Frame, at phy.NodeID, ok bool, now sim.Time) {
	if ok || f.Kind == phy.Signature || f.Dst != at {
		return
	}
	r.collisions++
	if r.tracer != nil {
		rec := Rec(now, KindCollision)
		rec.Node = int(at)
		rec.Aux = f.Kind.String()
		r.tracer.Emit(rec)
	}
}

// Delivered implements mac.Events.
func (r *Run) Delivered(p *mac.Packet, now sim.Time) {
	if r.delivered != nil {
		r.delivered.Inc()
		r.delay.Observe((now - p.Enqueued).Microseconds())
	}
}

// Dropped implements mac.Events.
func (r *Run) Dropped(p *mac.Packet, now sim.Time) {
	if r.dropped != nil {
		r.dropped.Inc()
	}
	if r.tracer != nil {
		rec := Rec(now, KindDrop)
		rec.Link = p.Link.ID
		rec.Value = int64(p.Retries)
		r.tracer.Emit(rec)
	}
}

// KernelHook returns the closure to install via sim.Kernel.OnEvent: it
// tallies fired events per source and emits a decimated event-loop sample.
func (r *Run) KernelHook() func(sim.EventInfo) {
	return func(info sim.EventInfo) {
		r.firedBySrc[info.Source]++
		if r.tracer != nil && info.Fired%kernelSampleEvery == 0 {
			rec := Rec(info.Now, KindKernel)
			rec.Value = int64(info.Pending)
			rec.Extra = int64(info.Fired)
			r.tracer.Emit(rec)
		}
	}
}

// QueueSampler returns the per-link depth observer engines install on their
// MAC queues (mac.Queue.OnDepth via the engines' queue-sampling hooks).
// Samples are decimated per link; the high-water mark feeds mac.queue_max.
func (r *Run) QueueSampler() func(link, depth int) {
	return func(link, depth int) {
		if r.queueDepth != nil {
			r.queueDepth.SetMax(float64(depth))
		}
		if r.tracer == nil {
			return
		}
		n := r.queueSeen[link]
		r.queueSeen[link] = n + 1
		if n%queueSampleEvery != 0 {
			return
		}
		at := sim.Time(0)
		if r.now != nil {
			at = r.now()
		}
		rec := Rec(at, KindQueue)
		rec.Link = link
		rec.Value = int64(depth)
		r.tracer.Emit(rec)
	}
}

// Finish closes the airtime timeline at end, folds the run totals into the
// metrics registry, emits the run-close record, and returns the breakdown.
func (r *Run) Finish(end sim.Time) Breakdown {
	b := r.air.Breakdown(end)
	b.Collisions = r.collisions
	if r.metrics != nil {
		for bk := BucketIdle; bk < NumBuckets; bk++ {
			r.metrics.Gauge("airtime." + bk.String() + "_frac").Set(b.Frac(bk))
		}
		r.metrics.Counter("phy.collisions").Add(r.collisions)
		for s := sim.Source(0); s < sim.NumSources; s++ {
			if r.firedBySrc[s] > 0 {
				r.metrics.Counter("kernel.fired." + s.String()).Add(r.firedBySrc[s])
			}
		}
	}
	if r.tracer != nil {
		rec := Rec(end, KindRunEnd)
		rec.Value = r.collisions
		r.tracer.Emit(rec)
	}
	return b
}
