package obs

import (
	"strings"
	"testing"
)

func TestShardFieldRoundTrip(t *testing.T) {
	r := Rec(42, KindTxStart)
	r.Node = 3
	r.Shard = 5
	line := string(AppendRecord(nil, r))
	if !strings.Contains(line, `"sh":5`) {
		t.Fatalf("shard id not encoded: %s", line)
	}
	var got Record
	if err := ParseNDJSON(strings.NewReader(line), func(rec Record) error {
		got = rec
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip: got %+v, want %+v", got, r)
	}
	// Unsharded records must not grow a field (golden-trace compatibility).
	r.Shard = 0
	if line := string(AppendRecord(nil, r)); strings.Contains(line, `"sh"`) {
		t.Fatalf("sh emitted for unsharded record: %s", line)
	}
}

func TestSpansAtBase(t *testing.T) {
	s := NewSpansAt(1 << 40)
	if got := s.Next(); got != 1<<40+1 {
		t.Fatalf("first id = %d", got)
	}
	if got := s.Next(); got != 1<<40+2 {
		t.Fatalf("second id = %d", got)
	}
}

func TestMetricsMerge(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Counter("c").Add(3)
	b.Counter("c").Add(4)
	b.Counter("only_b").Inc()
	a.Gauge("g").Set(2)
	b.Gauge("g").Set(5)
	a.Histogram("h").Observe(1)
	b.Histogram("h").Observe(9)
	a.LogHist("lh").Record(100)
	b.LogHist("lh").Record(300)

	a.Merge(b)
	if got := a.Counter("c").Value(); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	if got := a.Counter("only_b").Value(); got != 1 {
		t.Errorf("only_b = %d, want 1", got)
	}
	if got := a.Gauge("g").Value(); got != 5 {
		t.Errorf("gauge = %v, want max 5", got)
	}
	if got := a.Histogram("h").CDF().N(); got != 2 {
		t.Errorf("hist n = %d, want 2", got)
	}
	if got := a.LogHist("lh").N(); got != 2 {
		t.Errorf("loghist n = %d, want 2", got)
	}
	a.Merge(nil) // no-op
}
