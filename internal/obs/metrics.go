package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// Counter is a monotonically increasing int64. Not safe for concurrent use;
// one simulation run owns one Metrics registry.
type Counter struct {
	n int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d int64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Gauge is a last-value (or high-water) float64.
type Gauge struct {
	v float64
}

// Set overwrites the value.
func (g *Gauge) Set(v float64) { g.v = v }

// SetMax keeps the maximum of the current and given values.
func (g *Gauge) SetMax(v float64) {
	if v > g.v {
		g.v = v
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram accumulates an empirical distribution on top of stats.CDF, the
// same structure the paper figures are built from, so snapshots can report
// quantiles without a second binning scheme.
type Histogram struct {
	cdf stats.CDF
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) { h.cdf.Add(v) }

// CDF exposes the underlying distribution (for merging into figure CDFs).
func (h *Histogram) CDF() *stats.CDF { return &h.cdf }

// Metrics is a per-run registry of named counters, gauges and histograms
// (both the CDF-backed Histogram and the fixed-bucket LogHist). Get-or-create
// lookups are intended for setup paths; hot paths should hold the returned
// pointer.
type Metrics struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	lhists   map[string]*LogHist
	wall     map[string]bool
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		lhists:   map[string]*LogHist{},
		wall:     map[string]bool{},
	}
}

// MarkWallClock marks metrics as host-time-derived (profiling timers and
// the like): their values depend on the machine, not the simulation, so
// deterministic replay does not reproduce them and replay-verification
// digests (MetricsState.Digest) skip them. They still appear in snapshots
// and text reports.
func (m *Metrics) MarkWallClock(names ...string) {
	for _, n := range names {
		m.wall[n] = true
	}
}

// WallClock reports whether the named metric is marked host-time-derived.
func (m *Metrics) WallClock(name string) bool { return m.wall[name] }

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram {
	h := m.hists[name]
	if h == nil {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// LogHist returns the named log-scale histogram, creating it on first use.
func (m *Metrics) LogHist(name string) *LogHist {
	h := m.lhists[name]
	if h == nil {
		h = &LogHist{}
		m.lhists[name] = h
	}
	return h
}

// Merge folds registry o into m: counters add, histograms (both kinds)
// merge exactly, and gauges keep the maximum of the two values. The gauge
// rule is a deliberate choice for cross-shard aggregation — every gauge the
// runtime registers is a high-water or last-peak quantity (queue peaks,
// per-client AoI peaks, airtime totals are counters), so max is the only
// order-independent combination that stays meaningful. Merging is
// commutative and associative, so folding shard registries in any order
// yields the same aggregate.
func (m *Metrics) Merge(o *Metrics) {
	if o == nil {
		return
	}
	for name, c := range o.counters {
		m.Counter(name).Add(c.Value())
	}
	for name, g := range o.gauges {
		m.Gauge(name).SetMax(g.Value())
	}
	for name, h := range o.hists {
		m.Histogram(name).cdf.Merge(&h.cdf)
	}
	for name, h := range o.lhists {
		m.LogHist(name).Merge(h)
	}
}

// MetricValue is one entry of a Snapshot.
type MetricValue struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`  // "counter", "gauge", "histogram" or "loghist"
	Value float64 `json:"value"` // counter/gauge value; histogram sample count
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
	Max   float64 `json:"max,omitempty"`
}

// Snapshot is a point-in-time view of a registry, sorted by name so its
// rendering (and any diff of two snapshots) is deterministic.
type Snapshot []MetricValue

// Snapshot captures every registered metric, sorted by name.
func (m *Metrics) Snapshot() Snapshot {
	s := make(Snapshot, 0, len(m.counters)+len(m.gauges)+len(m.hists)+len(m.lhists))
	for name, c := range m.counters {
		s = append(s, MetricValue{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range m.gauges {
		s = append(s, MetricValue{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range m.hists {
		mv := MetricValue{Name: name, Kind: "histogram", Value: float64(h.cdf.N())}
		if h.cdf.N() > 0 {
			mv.P50 = h.cdf.Quantile(0.5)
			mv.P90 = h.cdf.Quantile(0.9)
			mv.P95 = h.cdf.Quantile(0.95)
			mv.P99 = h.cdf.Quantile(0.99)
			mv.Max = h.cdf.Quantile(1)
		}
		s = append(s, mv)
	}
	for name, h := range m.lhists {
		mv := MetricValue{Name: name, Kind: "loghist", Value: float64(h.N())}
		if h.N() > 0 {
			mv.P50 = h.Quantile(0.5)
			mv.P90 = h.Quantile(0.9)
			mv.P95 = h.Quantile(0.95)
			mv.P99 = h.Quantile(0.99)
			mv.Max = float64(h.Max())
		}
		s = append(s, mv)
	}
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return s
}

// Get returns the named entry.
func (s Snapshot) Get(name string) (MetricValue, bool) {
	for _, mv := range s {
		if mv.Name == name {
			return mv, true
		}
	}
	return MetricValue{}, false
}

// WriteText renders the snapshot as an aligned table.
func (s Snapshot) WriteText(w io.Writer) {
	width := 0
	for _, mv := range s {
		if len(mv.Name) > width {
			width = len(mv.Name)
		}
	}
	for _, mv := range s {
		switch mv.Kind {
		case "histogram":
			fmt.Fprintf(w, "  %-*s  n=%-8.0f p50=%-10.4g p90=%-10.4g p99=%-10.4g max=%.4g\n",
				width, mv.Name, mv.Value, mv.P50, mv.P90, mv.P99, mv.Max)
		case "loghist":
			fmt.Fprintf(w, "  %-*s  n=%-8.0f p50=%-10.4g p95=%-10.4g p99=%-10.4g max=%.4g\n",
				width, mv.Name, mv.Value, mv.P50, mv.P95, mv.P99, mv.Max)
		default:
			fmt.Fprintf(w, "  %-*s  %.6g\n", width, mv.Name, mv.Value)
		}
	}
}
