package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// AppendRecord appends r to buf as one JSON object followed by '\n'. The
// encoding is hand-rolled with a fixed field order and integer timestamps so
// identical record streams are byte-identical — the determinism contract the
// parallel drivers and the workers=1-vs-N regression test rely on.
// Node/Link/Slot are omitted when negative, numeric payloads when zero, Aux
// when empty; Kind and At are always present.
func AppendRecord(buf []byte, r Record) []byte {
	buf = append(buf, `{"t":`...)
	buf = strconv.AppendInt(buf, int64(r.At), 10)
	buf = append(buf, `,"k":"`...)
	buf = append(buf, r.Kind.String()...)
	buf = append(buf, '"')
	if r.Node >= 0 {
		buf = append(buf, `,"node":`...)
		buf = strconv.AppendInt(buf, int64(r.Node), 10)
	}
	if r.Link >= 0 {
		buf = append(buf, `,"link":`...)
		buf = strconv.AppendInt(buf, int64(r.Link), 10)
	}
	if r.Slot >= 0 {
		buf = append(buf, `,"slot":`...)
		buf = strconv.AppendInt(buf, int64(r.Slot), 10)
	}
	if r.Value != 0 {
		buf = append(buf, `,"v":`...)
		buf = strconv.AppendInt(buf, r.Value, 10)
	}
	if r.Extra != 0 {
		buf = append(buf, `,"x":`...)
		buf = strconv.AppendInt(buf, r.Extra, 10)
	}
	if r.Dur != 0 {
		buf = append(buf, `,"dur":`...)
		buf = strconv.AppendInt(buf, int64(r.Dur), 10)
	}
	if r.Span != 0 {
		buf = append(buf, `,"sp":`...)
		buf = strconv.AppendInt(buf, r.Span, 10)
	}
	if r.Parent != 0 {
		buf = append(buf, `,"pa":`...)
		buf = strconv.AppendInt(buf, r.Parent, 10)
	}
	if r.Shard != 0 {
		buf = append(buf, `,"sh":`...)
		buf = strconv.AppendInt(buf, int64(r.Shard), 10)
	}
	if r.Aux != "" {
		buf = append(buf, `,"aux":`...)
		buf = appendJSONString(buf, r.Aux)
	}
	if r.OK {
		buf = append(buf, `,"ok":true`...)
	}
	buf = append(buf, '}', '\n')
	return buf
}

// appendJSONString quotes s. Aux values are fixed protocol tokens, so the
// common path is a plain copy; anything needing escapes goes through the
// stdlib encoder.
func appendJSONString(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			q, _ := json.Marshal(s)
			return append(buf, q...)
		}
	}
	buf = append(buf, '"')
	buf = append(buf, s...)
	return append(buf, '"')
}

// ndjsonFlushAt bounds the in-memory buffer of an NDJSON tracer: once a
// record pushes it past this size it is flushed to the writer.
const ndjsonFlushAt = 64 << 10

// NDJSON is a Tracer that streams records as newline-delimited JSON with
// bounded buffering: at most ~ndjsonFlushAt bytes are held before a chunk
// goes to the sink, so long runs stream incrementally instead of buffering
// whole traces. Errors are sticky and surfaced by Flush; emission after an
// error is a no-op so a dead sink cannot corrupt a run.
type NDJSON struct {
	sink Sink
	buf  []byte
	err  error
}

// NewNDJSON returns an NDJSON tracer writing to w. Call Flush after the run.
func NewNDJSON(w io.Writer) *NDJSON { return NewNDJSONTo(WriterSink{W: w}) }

// NewNDJSONTo returns an NDJSON tracer flushing through sink — a file, a
// LiveHub, or a MultiSink teeing to both. Each chunk is a whole number of
// lines. Call Flush (and, if the sink owns resources, Close) after the run.
func NewNDJSONTo(sink Sink) *NDJSON {
	return &NDJSON{sink: sink, buf: make([]byte, 0, ndjsonFlushAt+512)}
}

// Emit implements Tracer.
func (t *NDJSON) Emit(r Record) {
	if t.err != nil {
		return
	}
	t.buf = AppendRecord(t.buf, r)
	if len(t.buf) >= ndjsonFlushAt {
		t.flush()
	}
}

func (t *NDJSON) flush() {
	if len(t.buf) == 0 {
		return
	}
	t.err = t.sink.WriteChunk(t.buf)
	t.buf = t.buf[:0]
}

// Flush writes any buffered records and returns the first write error
// encountered, if any. The sink stays open for more chunks.
func (t *NDJSON) Flush() error {
	if t.err == nil {
		t.flush()
	}
	return t.err
}

// Close flushes and closes the sink. Returns the first error seen.
func (t *NDJSON) Close() error {
	err := t.Flush()
	if cerr := t.sink.Close(); err == nil {
		err = cerr
	}
	return err
}

// Sharded collects per-task traces from a parallel driver and merges them
// deterministically. Each task encodes into its own shard (records within a
// shard are in event order because each simulation is single-threaded);
// WriteTo concatenates shards in index order, so the merged stream is
// byte-identical at any worker count.
type Sharded struct {
	shards []shard
}

type shard struct {
	buf []byte
}

// Emit implements Tracer.
func (s *shard) Emit(r Record) { s.buf = AppendRecord(s.buf, r) }

// NewSharded returns a Sharded with n shards.
func NewSharded(n int) *Sharded {
	return &Sharded{shards: make([]shard, n)}
}

// Shard returns the tracer for shard i. Distinct shards may be used
// concurrently; a single shard must stay within one task.
func (s *Sharded) Shard(i int) Tracer { return &s.shards[i] }

// Len returns the shard count.
func (s *Sharded) Len() int { return len(s.shards) }

// WriteTo concatenates all shards to w in index order.
func (s *Sharded) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for i := range s.shards {
		n, err := w.Write(s.shards[i].buf)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// jsonRecord mirrors the wire format for decoding. Optional ints are
// pointers so a missing field maps back to -1, not 0.
type jsonRecord struct {
	T    int64  `json:"t"`
	K    string `json:"k"`
	Node *int   `json:"node"`
	Link *int   `json:"link"`
	Slot *int   `json:"slot"`
	V    int64  `json:"v"`
	X    int64  `json:"x"`
	Dur  int64  `json:"dur"`
	Sp   int64  `json:"sp"`
	Pa   int64  `json:"pa"`
	Sh   int    `json:"sh"`
	Aux  string `json:"aux"`
	OK   bool   `json:"ok"`
}

// ParseNDJSON reads an NDJSON trace stream and calls fn for each record in
// order. fn returning an error aborts the scan, as does a record kind this
// build does not know (use ScanNDJSON to tolerate newer traces).
func ParseNDJSON(r io.Reader, fn func(Record) error) error {
	_, err := ScanNDJSON(r, fn, nil)
	return err
}

// ScanNDJSON reads an NDJSON trace stream like ParseNDJSON but tolerates
// record kinds this build does not know: instead of aborting it counts them
// (calling unknown, when non-nil, with the wire kind name) and returns the
// total, so older tools can summarize newer traces and report exactly how
// much they skipped. Malformed JSON still aborts the scan.
func ScanNDJSON(r io.Reader, fn func(Record) error, unknown func(kind string)) (skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var jr jsonRecord
		if err := json.Unmarshal(raw, &jr); err != nil {
			return skipped, fmt.Errorf("trace line %d: %w", line, err)
		}
		kind, ok := ParseKind(jr.K)
		if !ok {
			if unknown == nil {
				return skipped, fmt.Errorf("trace line %d: unknown record kind %q", line, jr.K)
			}
			skipped++
			unknown(jr.K)
			continue
		}
		rec := Record{
			At:     sim.Time(jr.T),
			Kind:   kind,
			Node:   optInt(jr.Node),
			Link:   optInt(jr.Link),
			Slot:   optInt(jr.Slot),
			Value:  jr.V,
			Extra:  jr.X,
			Dur:    sim.Time(jr.Dur),
			Span:   jr.Sp,
			Parent: jr.Pa,
			Shard:  jr.Sh,
			Aux:    jr.Aux,
			OK:     jr.OK,
		}
		if err := fn(rec); err != nil {
			return skipped, err
		}
	}
	return skipped, sc.Err()
}

func optInt(p *int) int {
	if p == nil {
		return -1
	}
	return *p
}
