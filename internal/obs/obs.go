// Package obs is the simulation's observability layer: typed trace records,
// a cheap metrics registry, an NDJSON exporter, and the per-run airtime
// accounting that explains *why* a scheme wins (fewer collisions, no backoff
// idle, unbroken trigger chains) rather than just reporting end-of-run
// aggregates.
//
// Design rules:
//
//   - Zero overhead when disabled. Every emission site guards with a single
//     nil check on a concrete pointer or interface field; no record is built
//     unless a tracer is installed. The disabled cost is benchmark-pinned
//     (BenchmarkKernel, BenchmarkMetric, TestOnEventNilHookZeroAllocs).
//   - Deterministic when enabled. Records are emitted from the single-threaded
//     event loop in event order, and the NDJSON encoding is hand-rolled with
//     a fixed field order, so identical seeds produce byte-identical traces.
//     Parallel drivers give each run its own shard (Sharded) and merge in
//     shard order, preserving the contract at any worker count.
//   - Layers below obs stay obs-agnostic. sim, phy and mac expose tiny local
//     hooks (Kernel.OnEvent, Medium.SetProbe, Queue.OnDepth); obs implements
//     them. Protocol engines (dcf, domino, rop, gold) emit through a Tracer
//     field directly.
package obs

import "repro/internal/sim"

// Kind enumerates the trace record types.
type Kind uint8

const (
	// KindRunStart opens one simulation run: Value is the seed, Aux the
	// scheme name. In merged multi-run traces it delimits runs.
	KindRunStart Kind = iota
	// KindRunEnd closes a run: At is the run duration, Value the collision
	// count observed by the medium probe.
	KindRunEnd
	// KindSlotStart marks a DOMINO slot owner starting its transmission:
	// Slot is the global slot index, Node the sender, Aux "data" or "fake".
	KindSlotStart
	// KindSlotEnd marks the end-of-slot signature broadcast that closes
	// Slot and triggers the next owners.
	KindSlotEnd
	// KindTrigger records a signature trigger a node detected for its own
	// slot (OK=true always; misses are KindTriggerMiss).
	KindTrigger
	// KindTriggerMiss records a signature a node failed to decode
	// (collision-corrupted or below threshold); Slot is the slot hint.
	KindTriggerMiss
	// KindROPPoll is one client's backlog as decoded in an ROP round: Node
	// is the client, Value the reported backlog, Extra the subchannel,
	// OK whether the report symbol decoded.
	KindROPPoll
	// KindBackoff records a DCF contention draw: Node, Value the drawn
	// counter, Extra the contention window.
	KindBackoff
	// KindAckTimeout records a MAC-level ACK timeout: Node is the sender,
	// Value the retry count.
	KindAckTimeout
	// KindCollision records an addressed frame that failed to decode at its
	// receiver: Node is the receiver, Aux the frame kind.
	KindCollision
	// KindTxStart/KindTxEnd bracket a frame on the air: Node is the sender,
	// Dur the airtime, Aux the frame kind.
	KindTxStart
	KindTxEnd
	// KindQueue samples a MAC queue backlog: Link is the link, Value the
	// depth in packets.
	KindQueue
	// KindKernel samples the event loop: Value is the pending queue depth,
	// Extra the fired-event count.
	KindKernel
	// KindDrop records a MAC give-up (retry limit or queue overflow): Link
	// is the link, Aux "retry" or "overflow" when known.
	KindDrop
	// KindConvert carries one deterministic schedule-conversion counter per
	// record, emitted per dispatched batch when the engine's convert tracing
	// is enabled: Aux names the counter (a converter pass name, "cache",
	// "inbound" or "combined"), Slot is the batch's first global slot index,
	// Value/Extra are counter-specific. Off by default so golden traces are
	// unchanged.
	KindConvert
	// KindPktEnqueue opens a packet lifecycle span: Link is the packet's
	// link, Value the payload bytes, Span the packet's fresh span id.
	KindPktEnqueue
	// KindPktDeliver closes a packet lifecycle span at MAC delivery: Span is
	// the packet's span, Parent the span of the transmission (slot/epoch)
	// that carried it, Dur the enqueue-to-delivery latency, Value the
	// queueing delay in µs and Extra the head-of-line latency in µs.
	KindPktDeliver
	// KindEpoch marks a CENTAUR epoch build: Value is the epoch sequence
	// number, Extra the scheduled round count, Span the epoch's span id.
	KindEpoch
	// KindMetric is a per-histogram summary emitted once at run end when both
	// a tracer and a metrics registry are installed: Aux is the metric name,
	// Value the sample count, Extra the p99 (rounded to an integer).
	KindMetric

	numKinds
)

// kindNames are the wire names, index-matched to the Kind constants.
var kindNames = [numKinds]string{
	"run_start", "run_end", "slot_start", "slot_end", "trigger",
	"trigger_miss", "rop_poll", "backoff", "ack_timeout", "collision",
	"tx_start", "tx_end", "queue", "kernel", "drop", "convert",
	"pkt_enqueue", "pkt_deliver", "epoch", "metric",
}

// String returns the record type's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// ParseKind maps a wire name back to its Kind.
func ParseKind(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Record is one trace event. It is passed by value through Tracer.Emit so a
// no-op tracer costs no allocation. Node, Link and Slot use -1 for "not
// applicable" (0 is a valid id); emission sites must set them explicitly.
//
// Span and Parent carry the causal-tree layer: a record with Span != 0 opens
// (or belongs to) that span, and Parent != 0 names the span whose effect it
// is. Span ids come from a per-run Spans allocator (see span.go), so the
// trees are deterministic and 0 always means "none".
type Record struct {
	At     sim.Time // simulated timestamp
	Kind   Kind
	Node   int      // node id, -1 if n/a
	Link   int      // link id, -1 if n/a
	Slot   int      // DOMINO slot index, -1 if n/a
	Value  int64    // kind-specific primary value
	Extra  int64    // kind-specific secondary value
	Dur    sim.Time // duration payload (airtime), 0 if n/a
	Span   int64    // causal span this record belongs to, 0 if none
	Parent int64    // span that caused this record, 0 if none/root
	Shard  int      // 1-based interference-domain shard id, 0 if unsharded
	Aux    string   // kind-specific tag (frame kind, scheme, "data"/"fake")
	OK     bool
}

// Rec returns a Record with Node, Link and Slot marked not-applicable.
func Rec(at sim.Time, k Kind) Record {
	return Record{At: at, Kind: k, Node: -1, Link: -1, Slot: -1}
}

// Tracer receives trace records. Implementations must be cheap and must not
// reorder records; they run inside the simulation event loop.
type Tracer interface {
	Emit(Record)
}

// Buffer is an in-memory Tracer for tests and the tracedump summarizer.
type Buffer struct {
	recs []Record
}

// Emit implements Tracer.
func (b *Buffer) Emit(r Record) { b.recs = append(b.recs, r) }

// Records returns the emitted records in order.
func (b *Buffer) Records() []Record { return b.recs }

// Count returns how many records of the given kind were emitted.
func (b *Buffer) Count(k Kind) int {
	n := 0
	for _, r := range b.recs {
		if r.Kind == k {
			n++
		}
	}
	return n
}
