package obs

import (
	"io"
	"sync"
)

// Sink receives incremental chunks of an encoded trace stream. NDJSON
// tracers flush through a Sink instead of buffering whole runs, which is
// what lets long simulations stream telemetry: a chunk arrives every
// ~ndjsonFlushAt bytes, each one a whole number of NDJSON lines.
//
// WriteChunk is called from the flushing tracer's goroutine (the simulation
// event loop); implementations that fan out to other goroutines (LiveHub)
// must do their own synchronization and must never block the caller.
type Sink interface {
	// WriteChunk consumes one chunk. The buffer is only valid for the
	// duration of the call; implementations that retain it must copy.
	WriteChunk(p []byte) error
	// Close flushes and releases the sink after the final chunk.
	Close() error
}

// WriterSink adapts an io.Writer to a Sink.
type WriterSink struct{ W io.Writer }

// WriteChunk implements Sink.
func (s WriterSink) WriteChunk(p []byte) error {
	_, err := s.W.Write(p)
	return err
}

// Close implements Sink. It closes the underlying writer when it is a
// Closer (a file), and is a no-op otherwise.
func (s WriterSink) Close() error {
	if c, ok := s.W.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// MultiSink tees chunks to several sinks: the trace can go to a file and a
// live HTTP hub at once. Errors are reported from the first failing sink,
// but every sink still sees every chunk (a dead live subscriber must not
// kill the on-disk trace).
type MultiSink []Sink

// WriteChunk implements Sink.
func (m MultiSink) WriteChunk(p []byte) error {
	var first error
	for _, s := range m {
		if err := s.WriteChunk(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close implements Sink.
func (m MultiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// LiveHub fans trace chunks out to live subscribers (the /debug/trace
// chunked-HTTP endpoint). Chunks are copied and queued per subscriber; a
// subscriber that falls behind its queue has chunks dropped rather than
// stalling the simulation — the dropped count is reported on its stream's
// final line. The zero value is not usable; call NewLiveHub.
type LiveHub struct {
	mu     sync.Mutex
	subs   map[int]*liveSub
	nextID int
	closed bool
}

type liveSub struct {
	ch      chan []byte
	dropped int64
}

// liveSubDepth bounds each subscriber's pending-chunk queue.
const liveSubDepth = 32

// NewLiveHub returns an empty hub. It is a valid Sink immediately; chunks
// arriving with no subscribers are discarded.
func NewLiveHub() *LiveHub {
	return &LiveHub{subs: map[int]*liveSub{}}
}

// WriteChunk implements Sink: the chunk is copied once and offered to every
// subscriber without blocking.
func (h *LiveHub) WriteChunk(p []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || len(h.subs) == 0 || len(p) == 0 {
		return nil
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	for _, s := range h.subs {
		select {
		case s.ch <- cp:
		default:
			s.dropped++
		}
	}
	return nil
}

// Close implements Sink: all subscriber channels are closed, ending their
// streams.
func (h *LiveHub) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	for id, s := range h.subs {
		close(s.ch)
		delete(h.subs, id)
	}
	return nil
}

// Subscribe registers a live reader and returns its chunk channel plus a
// cancel function. The channel closes when the hub closes or cancel runs;
// dropped reports how many chunks were discarded because the reader lagged.
func (h *LiveHub) Subscribe() (ch <-chan []byte, cancel func(), dropped func() int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := &liveSub{ch: make(chan []byte, liveSubDepth)}
	if h.closed {
		close(s.ch)
		return s.ch, func() {}, func() int64 { return 0 }
	}
	id := h.nextID
	h.nextID++
	h.subs[id] = s
	cancel = func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(s.ch)
		}
	}
	dropped = func() int64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		return s.dropped
	}
	return s.ch, cancel, dropped
}
