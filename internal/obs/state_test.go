package obs

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// TestLogHistStateRoundTrip asserts State→JSON→Hist reconstructs the exact
// histogram, including its Merge behaviour.
func TestLogHistStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var h LogHist
	for i := 0; i < 10000; i++ {
		h.Record(int64(rng.Intn(1 << 20)))
	}
	data, err := json.Marshal(h.State())
	if err != nil {
		t.Fatal(err)
	}
	var st LogHistState
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	got, err := st.Hist()
	if err != nil {
		t.Fatal(err)
	}
	if *got != h {
		t.Fatal("round-tripped LogHist differs from the original")
	}

	// Merge-compatibility: snapshot + later recording == uninterrupted.
	var tail LogHist
	for i := 0; i < 500; i++ {
		v := int64(rng.Intn(1 << 12))
		h.Record(v)
		tail.Record(v)
	}
	got.Merge(&tail)
	if *got != h {
		t.Fatal("snapshot+merge differs from uninterrupted recording")
	}
}

func TestLogHistStateRejectsBadBucket(t *testing.T) {
	if _, err := (LogHistState{Buckets: [][2]int64{{int64(lhBuckets), 1}}}).Hist(); err == nil {
		t.Fatal("accepted out-of-range bucket index")
	}
}

// TestMetricsStateDigest asserts the digest is map-order independent,
// sensitive to every component, and survives a JSON round trip.
func TestMetricsStateDigest(t *testing.T) {
	build := func(extraSample float64) *Metrics {
		m := NewMetrics()
		m.Counter("a.count").Add(7)
		m.Counter("b.count").Add(9)
		m.Gauge("peak").Set(3.5)
		m.LogHist("lat").Record(140)
		m.LogHist("lat").Record(9000)
		m.Histogram("cdf").Observe(1.25)
		if extraSample != 0 {
			m.Histogram("cdf").Observe(extraSample)
		}
		return m
	}
	a, b := build(0), build(0)
	if a.State().Digest() != b.State().Digest() {
		t.Fatal("digest differs across identical registries")
	}
	if a.State().Digest() == build(2.5).State().Digest() {
		t.Fatal("digest missed a CDF histogram sample")
	}
	c := build(0)
	c.Counter("a.count").Inc()
	if a.State().Digest() == c.State().Digest() {
		t.Fatal("digest missed a counter change")
	}

	data, err := json.Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	var st MetricsState
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Digest() != a.State().Digest() {
		t.Fatal("digest changed across JSON round trip")
	}
}

// TestMetricsStateRestore asserts counters/gauges/loghists restore exactly
// and continue merging correctly.
func TestMetricsStateRestore(t *testing.T) {
	m := NewMetrics()
	m.Counter("n").Add(41)
	m.Gauge("g").Set(2.25)
	for v := int64(1); v < 300; v += 7 {
		m.LogHist("h").Record(v)
	}
	got, err := m.State().Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got.Counter("n").Value() != 41 || got.Gauge("g").Value() != 2.25 {
		t.Fatal("restored counter/gauge differ")
	}
	if *got.LogHist("h") != *m.LogHist("h") {
		t.Fatal("restored loghist differs")
	}
}

// TestMetricsStateWallClockExcluded asserts metrics marked wall-clock are
// carried in the state but never gate the digest.
func TestMetricsStateWallClockExcluded(t *testing.T) {
	build := func(ns int64) *Metrics {
		m := NewMetrics()
		m.Counter("events").Add(100)
		m.Counter("pass.ns").Add(ns)
		m.MarkWallClock("pass.ns")
		return m
	}
	a, b := build(1234), build(99999)
	if a.State().Digest() != b.State().Digest() {
		t.Fatal("wall-clock counter leaked into the digest")
	}
	a.Counter("events").Inc()
	if a.State().Digest() == b.State().Digest() {
		t.Fatal("digest missed a real counter change")
	}
	st := b.State()
	if len(st.Wall) != 1 || st.Wall[0] != "pass.ns" {
		t.Fatalf("Wall = %v", st.Wall)
	}
	got, err := st.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if !got.WallClock("pass.ns") || got.Counter("pass.ns").Value() != 99999 {
		t.Fatal("wall-clock mark or value lost across restore")
	}
}
