package obs

import "math/bits"

// LogHist is a fixed-bucket log-scale histogram for non-negative integer
// samples (latencies in µs, depths, counts). The layout is HdrHistogram-like:
// values below 8 get exact unit buckets; above that each power-of-two range
// splits into 8 sub-buckets, bounding the relative quantile error at 12.5%.
// The whole struct is a flat array — Record never allocates, and Merge is an
// exact elementwise sum, so parallel shards can histogram independently and
// merge without losing anything.
type LogHist struct {
	counts [lhBuckets]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// lhBuckets covers every int64: exponents 3..62, 8 sub-buckets each, plus the
// 8 unit buckets — index (exp-2)*8 + (mantissa-8) peaks at 487 for MaxInt64.
const lhBuckets = 488

// lhIndex maps a sample to its bucket. Negative samples clamp to bucket 0.
func lhIndex(v int64) int {
	if v < 8 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	mantissa := v >> (uint(exp) - 3) // in [8, 15]
	return (exp-2)*8 + int(mantissa-8)
}

// lhLow returns the lowest sample value mapping to bucket idx (MaxInt64 past
// the last bucket, so the top bucket's upper edge never overflows).
func lhLow(idx int) int64 {
	if idx < 16 {
		return int64(idx)
	}
	if idx >= lhBuckets {
		return 1<<63 - 1
	}
	exp := idx/8 + 2
	mantissa := int64(idx%8 + 8)
	return mantissa << (uint(exp) - 3)
}

// Record adds one sample. Zero allocations; not safe for concurrent use —
// each shard records into its own LogHist and merges afterwards.
func (h *LogHist) Record(v int64) {
	h.counts[lhIndex(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// N returns the sample count.
func (h *LogHist) N() int64 { return h.n }

// Max returns the largest recorded sample (0 when empty).
func (h *LogHist) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact arithmetic mean (0 when empty).
func (h *LogHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]), interpolated
// within the winning bucket and clamped to the exact observed min/max.
func (h *LogHist) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := q * float64(h.n)
	if rank < 1 {
		rank = 1
	}
	cum := float64(0)
	for i := 0; i < lhBuckets; i++ {
		c := h.counts[i]
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum >= rank {
			low, high := float64(lhLow(i)), float64(lhLow(i+1))
			frac := (rank - (cum - float64(c))) / float64(c)
			v := low + frac*(high-low)
			if v < float64(h.min) {
				v = float64(h.min)
			}
			if v > float64(h.max) {
				v = float64(h.max)
			}
			return v
		}
	}
	return float64(h.max)
}

// Merge folds o into h exactly: counts, totals and extremes all combine
// losslessly, so sharded recording reproduces the single-shard histogram.
func (h *LogHist) Merge(o *LogHist) {
	if o == nil || o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
}
