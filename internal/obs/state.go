package obs

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// LogHistState is the serializable snapshot of a LogHist: the sparse
// non-zero buckets plus the exact totals. It is Merge-compatible — Hist()
// reconstructs a histogram indistinguishable from the original, so a
// snapshotted histogram can be merged with later recording exactly as if it
// had never been serialized. Checkpoint documents (internal/run) embed these
// so restored runs can both audit replayed metric state and report
// mid-run quantiles without touching engine internals.
type LogHistState struct {
	N   int64 `json:"n"`
	Sum int64 `json:"sum"`
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// Buckets lists [bucket index, count] pairs for non-zero buckets in
	// ascending index order.
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// State snapshots the histogram.
func (h *LogHist) State() LogHistState {
	s := LogHistState{N: h.n, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.counts {
		if c != 0 {
			s.Buckets = append(s.Buckets, [2]int64{int64(i), c})
		}
	}
	return s
}

// Hist reconstructs the exact histogram the state was captured from.
// Out-of-range bucket indices (a corrupt or newer-format state) error.
func (s LogHistState) Hist() (*LogHist, error) {
	h := &LogHist{n: s.N, sum: s.Sum, min: s.Min, max: s.Max}
	for _, b := range s.Buckets {
		if b[0] < 0 || b[0] >= int64(lhBuckets) {
			return nil, fmt.Errorf("obs: loghist state bucket index %d out of range", b[0])
		}
		h.counts[b[0]] = b[1]
	}
	return h, nil
}

// MetricsState is the serializable snapshot of a Metrics registry:
// counters and gauges exactly, LogHists as Merge-compatible LogHistState,
// and CDF-backed histograms as sample-count + content digest (their raw
// sample lists are unbounded, so they audit by digest rather than
// round-trip). Restore() rebuilds a registry; Digest() is the one-word form
// replay verification compares.
type MetricsState struct {
	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]float64      `json:"gauges,omitempty"`
	LogHists map[string]LogHistState `json:"log_hists,omitempty"`
	// HistDigests fingerprints each CDF-backed histogram's sorted sample
	// multiset.
	HistDigests map[string]uint64 `json:"hist_digests,omitempty"`
	// Wall lists metrics marked host-time-derived (Metrics.MarkWallClock),
	// sorted. Digest skips them: replay does not reproduce wall-clock
	// timings, so they carry across a restore but never gate one.
	Wall []string `json:"wall,omitempty"`
}

// State snapshots the registry.
func (m *Metrics) State() MetricsState {
	s := MetricsState{}
	if len(m.counters) > 0 {
		s.Counters = make(map[string]int64, len(m.counters))
		for name, c := range m.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(m.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(m.gauges))
		for name, g := range m.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(m.lhists) > 0 {
		s.LogHists = make(map[string]LogHistState, len(m.lhists))
		for name, h := range m.lhists {
			s.LogHists[name] = h.State()
		}
	}
	if len(m.hists) > 0 {
		s.HistDigests = make(map[string]uint64, len(m.hists))
		for name, h := range m.hists {
			s.HistDigests[name] = cdfDigest(h)
		}
	}
	if len(m.wall) > 0 {
		s.Wall = sortedKeys(m.wall)
	}
	return s
}

// cdfDigest hashes a CDF-backed histogram's sorted samples.
func cdfDigest(h *Histogram) uint64 {
	fh := fnv.New64a()
	var b [8]byte
	w := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		fh.Write(b[:])
	}
	w(uint64(h.cdf.N()))
	if h.cdf.N() > 0 {
		xs, _ := h.cdf.Points()
		for _, x := range xs {
			w(math.Float64bits(x))
		}
	}
	return fh.Sum64()
}

// Restore rebuilds a registry from the state. Counters, gauges and LogHists
// come back exactly; CDF-backed histograms come back empty (they verify by
// digest only — replay repopulates them).
func (s MetricsState) Restore() (*Metrics, error) {
	m := NewMetrics()
	for name, v := range s.Counters {
		m.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		m.Gauge(name).Set(v)
	}
	for name, hs := range s.LogHists {
		h, err := hs.Hist()
		if err != nil {
			return nil, fmt.Errorf("obs: metrics state %q: %w", name, err)
		}
		m.lhists[name] = h
	}
	m.MarkWallClock(s.Wall...)
	return m, nil
}

// Digest folds the replay-reproducible state into one comparable word,
// iterating every map in sorted key order. Metrics listed in Wall are
// skipped — they are host-time measurements replay cannot reproduce.
func (s MetricsState) Digest() uint64 {
	wall := make(map[string]bool, len(s.Wall))
	for _, n := range s.Wall {
		wall[n] = true
	}
	h := fnv.New64a()
	var b [8]byte
	w := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	ws := func(k string) {
		h.Write([]byte{0})
		h.Write([]byte(k))
	}
	for _, k := range sortedKeys(s.Counters) {
		if wall[k] {
			continue
		}
		ws(k)
		w(uint64(s.Counters[k]))
	}
	for _, k := range sortedKeys(s.Gauges) {
		if wall[k] {
			continue
		}
		ws(k)
		w(math.Float64bits(s.Gauges[k]))
	}
	for _, k := range sortedKeys(s.LogHists) {
		ws(k)
		hs := s.LogHists[k]
		w(uint64(hs.N))
		w(uint64(hs.Sum))
		w(uint64(hs.Min))
		w(uint64(hs.Max))
		for _, bk := range hs.Buckets {
			w(uint64(bk[0]))
			w(uint64(bk[1]))
		}
	}
	for _, k := range sortedKeys(s.HistDigests) {
		ws(k)
		w(s.HistDigests[k])
	}
	return h.Sum64()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
