package obs

import (
	"fmt"
	"io"

	"repro/internal/phy"
	"repro/internal/sim"
)

// Bucket classifies what occupied the channel during a timeline segment.
// Poll and Report frames share a bucket (both are ROP overhead); Overlap is
// any interval with two or more frames in the air — the airtime collisions
// and captures spend.
type Bucket uint8

const (
	BucketIdle Bucket = iota
	BucketData
	BucketAck
	BucketSig
	BucketPoll
	BucketFake
	BucketOverlap
	NumBuckets
)

var bucketNames = [NumBuckets]string{
	"idle", "data", "ack", "signature", "poll", "fake", "overlap",
}

// String returns the bucket's display name.
func (b Bucket) String() string {
	if int(b) < len(bucketNames) {
		return bucketNames[b]
	}
	return "unknown"
}

// BucketOf maps a frame kind to its airtime bucket.
func BucketOf(k phy.FrameKind) Bucket {
	switch k {
	case phy.Data:
		return BucketData
	case phy.Ack:
		return BucketAck
	case phy.Signature:
		return BucketSig
	case phy.Poll, phy.Report:
		return BucketPoll
	case phy.FakeHeader:
		return BucketFake
	default:
		return BucketData
	}
}

// BucketOfName maps a phy.FrameKind wire name (as stored in TxStart/TxEnd
// records' Aux) back to a bucket, for trace replay in tracedump.
func BucketOfName(name string) Bucket {
	switch name {
	case "DATA":
		return BucketData
	case "ACK":
		return BucketAck
	case "SIG":
		return BucketSig
	case "POLL", "REPORT":
		return BucketPoll
	case "FAKE":
		return BucketFake
	default:
		return BucketData
	}
}

// Airtime accumulates a channel-occupancy breakdown by timeline
// segmentation: every transmission start or end closes the current segment
// and classifies it by what was in the air — nothing (idle), exactly one
// frame (that frame's bucket), or several (overlap). Segments partition the
// run, so the buckets sum exactly to the run duration by construction; the
// integration test and tracedump both rely on that invariant.
type Airtime struct {
	active   [NumBuckets]int
	nActive  int
	segStart sim.Time
	acc      [NumBuckets]sim.Time
}

// Start records a transmission of bucket b beginning at now.
func (a *Airtime) Start(b Bucket, now sim.Time) {
	a.close(now)
	a.active[b]++
	a.nActive++
}

// End records a transmission of bucket b ending at now.
func (a *Airtime) End(b Bucket, now sim.Time) {
	a.close(now)
	if a.active[b] > 0 {
		a.active[b]--
		a.nActive--
	}
}

func (a *Airtime) close(now sim.Time) {
	if now > a.segStart {
		a.acc[a.classify()] += now - a.segStart
	}
	a.segStart = now
}

func (a *Airtime) classify() Bucket {
	if a.nActive == 0 {
		return BucketIdle
	}
	if a.nActive == 1 {
		for b := BucketData; b < BucketOverlap; b++ {
			if a.active[b] > 0 {
				return b
			}
		}
	}
	return BucketOverlap
}

// Breakdown closes the timeline at end and returns the accumulated budget.
// The accumulator can keep running afterwards (later segments extend it).
func (a *Airtime) Breakdown(end sim.Time) Breakdown {
	a.close(end)
	var b Breakdown
	b.PerBucket = a.acc
	for _, d := range a.acc {
		b.Total += d
	}
	return b
}

// Breakdown is a run's airtime budget: how much of the channel timeline was
// idle, carried each frame type alone, or had overlapping transmissions.
// Collisions counts addressed frames that failed to decode (filled in by
// Run.Finish, not part of the timeline partition).
type Breakdown struct {
	PerBucket  [NumBuckets]sim.Time `json:"per_bucket"`
	Total      sim.Time             `json:"total"`
	Collisions int64                `json:"collisions"`
}

// Of returns the time spent in one bucket.
func (b Breakdown) Of(bk Bucket) sim.Time { return b.PerBucket[bk] }

// Frac returns the fraction of the total spent in one bucket.
func (b Breakdown) Frac(bk Bucket) float64 {
	if b.Total <= 0 {
		return 0
	}
	return b.PerBucket[bk].Seconds() / b.Total.Seconds()
}

// WriteText renders the budget as one aligned table row per bucket.
func (b Breakdown) WriteText(w io.Writer) {
	for bk := BucketIdle; bk < NumBuckets; bk++ {
		fmt.Fprintf(w, "  %-10s %12v  %6.2f%%\n", bk, b.PerBucket[bk], 100*b.Frac(bk))
	}
	fmt.Fprintf(w, "  %-10s %12v  collisions=%d\n", "total", b.Total, b.Collisions)
}
