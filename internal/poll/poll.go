// Package poll is the pluggable polling-scheme registry — the third
// self-registering registry after schemes (internal/scheme) and strict
// schedulers (internal/strict). A Poller owns the slot-in-the-schedule shape
// Rapid OFDM Polling occupies in DOMINO: it lays the AP's clients out over
// subchannels and rounds, reports how many successive poll rounds one cycle
// takes (the schedule reserves rounds × the ROP slot duration), and decodes
// one complete cycle into per-client backlog reports.
//
// The paper's ROP registers itself as the default (internal/rop); this
// package adds two scalable variants: A2P-style multi-round grouped polling
// (groups of ≤24 clients polled across successive rounds — hundreds of
// clients per AP) and UORA-style random access (OBO contention over RA-RUs
// for unscheduled joiners). Engines resolve a poller purely by name, so a
// fourth scheme is one MustRegister call — no edits to internal/domino.
package poll

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Context carries everything one polling cycle reads: ground-truth backlogs,
// the channel view at the AP, the run's RNG and the observability hooks. The
// decode is an AP-side abstraction (as in internal/rop): clients do not
// explicitly answer in the event kernel; the poller judges each report from
// the RSS/noise figures.
type Context struct {
	// Queue returns a client's true uplink backlog.
	Queue func(phy.NodeID) int
	// RSSAtAP returns the received power (dBm) of a client's report at the AP.
	RSSAtAP func(phy.NodeID) float64
	// NoiseDBm is the medium's noise floor.
	NoiseDBm float64
	// Rng is the run's deterministic RNG. Deterministic pollers must not draw
	// from it (the default ROP never does — golden traces pin that), but
	// contention pollers like UORA consume draws in assignment order.
	Rng *rand.Rand
	// Tracer receives one KindROPPoll record per judged report when non-nil;
	// Now timestamps them and Span parents them to the poll that solicited
	// the cycle (0 when spans are off).
	Tracer obs.Tracer
	Now    sim.Time
	Span   int64
}

// Result is the outcome of one complete polling cycle at the AP. Values and
// Failed partition the assigned clients exactly: every assigned client
// appears in exactly one of them (a contention poller lists clients that
// never won a transmit opportunity this cycle under Failed).
type Result struct {
	// Values holds the decoded (possibly saturated) queue sizes.
	Values map[phy.NodeID]int
	// Failed lists clients whose report did not decode this cycle.
	Failed []phy.NodeID
	// Rounds is how many poll rounds the cycle used.
	Rounds int
	// Collisions counts reports lost to random-access collisions (0 for
	// scheduled pollers).
	Collisions int
}

// Poller is one polling scheme instance, owned by a single AP.
type Poller interface {
	// Name is the registered scheme name.
	Name() string
	// Assign (re)computes the client → subchannel/round layout. The engine
	// calls it at construction and again whenever the AP's client set
	// churns; group membership is recomputed from scratch each time.
	Assign(clients []phy.NodeID, rssAtAP func(phy.NodeID) float64)
	// Clients returns the currently assigned clients in layout order.
	Clients() []phy.NodeID
	// Rounds is how many successive poll rounds one cycle takes (≥ 1). It
	// must stay constant between Assign calls: the schedule reserves
	// rounds × the per-round slot gap and cannot renegotiate mid-batch.
	Rounds() int
	// Poll decodes one complete polling cycle.
	Poll(ctx Context) Result
	// State returns the poller's checkpointable counters (nil for stateless
	// pollers). The counters ride the scheme.Checkpointer audit so daemon
	// checkpoint/restore verifies the poller replayed identically.
	State() map[string]int64
}

// Descriptor is one registered polling scheme.
type Descriptor struct {
	// Name is the canonical scheme name ("ROP"). Lookup is case-insensitive.
	Name string
	// Aliases are additional accepted names.
	Aliases []string
	// Summary is a one-line description for CLI listings.
	Summary string
	// MaxClients is the per-AP client ceiling one instance supports
	// (0 = unbounded). The engine assigns the strongest MaxClients and
	// surfaces the rest (Engine.UnpolledClients) instead of panicking.
	MaxClients int
	// DefaultConfig returns a pointer to a fresh knob struct, or nil for
	// pollers without knobs. Spec files overlay JSON onto it
	// (scheme_config.PollerConfig); speclint validates the keys against it.
	DefaultConfig func() any
	// Build constructs one per-AP instance. cfg is the (possibly overlaid)
	// DefaultConfig value — nil when DefaultConfig is nil.
	Build func(cfg any) (Poller, error)
}

var (
	mu       sync.RWMutex
	registry = map[string]*Descriptor{}
	// canonical lists canonical names only, for Names().
	canonical []string
)

// Register adds a polling scheme to the registry. It fails on empty or
// duplicate names (aliases included) and on a missing Build function.
func Register(d Descriptor) error {
	if d.Name == "" {
		return fmt.Errorf("poll: Register with empty Name")
	}
	if d.Build == nil {
		return fmt.Errorf("poll: poller %s: Build is required", d.Name)
	}
	mu.Lock()
	defer mu.Unlock()
	keys := append([]string{d.Name}, d.Aliases...)
	for _, k := range keys {
		if prev, ok := registry[strings.ToLower(k)]; ok {
			return fmt.Errorf("poll: poller %q already registered (by %s)", k, prev.Name)
		}
	}
	desc := d
	for _, k := range keys {
		registry[strings.ToLower(k)] = &desc
	}
	canonical = append(canonical, d.Name)
	sort.Strings(canonical)
	return nil
}

// MustRegister is Register for init-time use; it panics on conflict.
func MustRegister(d Descriptor) {
	if err := Register(d); err != nil {
		panic(err)
	}
}

// Unregister removes a poller and its aliases; tests use it to clean up toy
// registrations. Unknown names are a no-op.
func Unregister(name string) {
	mu.Lock()
	defer mu.Unlock()
	d, ok := registry[strings.ToLower(name)]
	if !ok {
		return
	}
	delete(registry, strings.ToLower(d.Name))
	for _, a := range d.Aliases {
		delete(registry, strings.ToLower(a))
	}
	for i, n := range canonical {
		if n == d.Name {
			canonical = append(canonical[:i], canonical[i+1:]...)
			break
		}
	}
}

// Lookup resolves a poller name (canonical or alias, case-insensitive).
func Lookup(name string) (*Descriptor, bool) {
	mu.RLock()
	defer mu.RUnlock()
	d, ok := registry[strings.ToLower(name)]
	return d, ok
}

// Names returns the canonical registered poller names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return append([]string(nil), canonical...)
}

// Build constructs one instance of the named poller, overlaying rawCfg (a
// JSON object of knob-struct fields, may be empty) on its default config.
// The error for an unknown name lists what is registered.
func Build(name string, rawCfg json.RawMessage) (Poller, error) {
	d, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("poll: unknown poller %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	var cfg any
	if d.DefaultConfig != nil {
		cfg = d.DefaultConfig()
		if len(rawCfg) > 0 {
			if err := json.Unmarshal(rawCfg, cfg); err != nil {
				return nil, fmt.Errorf("poll: %s config: %v", d.Name, err)
			}
		}
	} else if len(rawCfg) > 0 && string(rawCfg) != "{}" && string(rawCfg) != "null" {
		return nil, fmt.Errorf("poll: poller %s has no knobs; drop the poller config object", d.Name)
	}
	return d.Build(cfg)
}

// sortByRSS returns clients sorted by descending RSS at the AP (stable, so
// equal-power clients keep their input order — the deterministic tiebreak
// every layout in this package shares with rop.Assign).
func sortByRSS(clients []phy.NodeID, rssAtAP func(phy.NodeID) float64) []phy.NodeID {
	sorted := append([]phy.NodeID(nil), clients...)
	sort.SliceStable(sorted, func(a, b int) bool {
		return rssAtAP(sorted[a]) > rssAtAP(sorted[b])
	})
	return sorted
}

// emitReport appends one KindROPPoll record for a judged report: Node the
// client, Extra the subchannel (or RA-RU) index, Value/OK the decode
// outcome, Parent the soliciting poll's span.
func emitReport(ctx Context, c phy.NodeID, subchannel int, value int, ok bool) {
	if ctx.Tracer == nil {
		return
	}
	rec := obs.Rec(ctx.Now, obs.KindROPPoll)
	rec.Node = int(c)
	rec.Extra = int64(subchannel)
	rec.Parent = ctx.Span
	if ok {
		rec.Value = int64(value)
		rec.OK = true
	}
	ctx.Tracer.Emit(rec)
}
