// A2P-style grouped polling: the AP polls its clients in RSS-sorted groups
// of at most one control symbol's worth of subchannels, one group per round
// across successive rounds of the same cycle. Each round reuses the ROP
// decode rule (SNR floor + adjacent-subchannel tolerance), so the per-round
// physics match the calibrated internal/ofdm measurement; the multi-round
// layout is what lifts the per-AP ceiling from 24 clients to hundreds.
// Group membership is recomputed from scratch on every Assign, so churn in
// the client set re-balances the groups.

package poll

import (
	"fmt"

	"repro/internal/ofdm"
	"repro/internal/phy"
)

// a2pLayout is the shared control-symbol layout (Table 1): 24 subchannels,
// queue reports saturating at 63.
var a2pLayout = ofdm.DefaultLayout()

// A2PConfig parameterises the grouped poller.
type A2PConfig struct {
	// GroupSize is how many clients one round polls (≤ the control symbol's
	// 24 subchannels; 0 means 24).
	GroupSize int
	// SNRFloorDB is the per-report decode floor (0 means the measured 4 dB).
	SNRFloorDB float64
	// ToleranceDB is the adjacent-subchannel RSS difference one round
	// tolerates (0 means the Fig 6 measurement's 38 dB).
	ToleranceDB float64
}

func (c *A2PConfig) groupSize() int {
	if c == nil || c.GroupSize <= 0 {
		return a2pLayout.NumSubchannels()
	}
	return c.GroupSize
}

func (c *A2PConfig) snrFloor() float64 {
	if c == nil || c.SNRFloorDB == 0 {
		return 4
	}
	return c.SNRFloorDB
}

func (c *A2PConfig) tolerance() float64 {
	if c == nil || c.ToleranceDB == 0 {
		return 38
	}
	return c.ToleranceDB
}

// A2P is the grouped multi-round poller.
type A2P struct {
	cfg A2PConfig
	// clients is the full RSS-sorted assignment; groups are consecutive
	// runs of groupSize, so adjacent subchannels within a round carry
	// similar powers (the same extreme-pair mitigation rop.Assign applies).
	clients []phy.NodeID
}

// Name implements Poller.
func (p *A2P) Name() string { return "A2P" }

// Assign implements Poller: sort by RSS, cut into groups of groupSize.
func (p *A2P) Assign(clients []phy.NodeID, rssAtAP func(phy.NodeID) float64) {
	p.clients = sortByRSS(clients, rssAtAP)
}

// Clients implements Poller.
func (p *A2P) Clients() []phy.NodeID { return p.clients }

// Rounds implements Poller: one round per group, at least one.
func (p *A2P) Rounds() int {
	g := p.cfg.groupSize()
	n := (len(p.clients) + g - 1) / g
	if n < 1 {
		n = 1
	}
	return n
}

// Poll implements Poller: every group reports in its own round; within a
// round the decode rule is ROP's — own SNR above the floor and no adjacent
// subchannel more than ToleranceDB stronger.
func (p *A2P) Poll(ctx Context) Result {
	res := Result{Values: make(map[phy.NodeID]int, len(p.clients)), Rounds: p.Rounds()}
	g := p.cfg.groupSize()
	floor, tol := p.cfg.snrFloor(), p.cfg.tolerance()
	for start := 0; start < len(p.clients); start += g {
		end := start + g
		if end > len(p.clients) {
			end = len(p.clients)
		}
		group := p.clients[start:end]
		for i, c := range group {
			rss := ctx.RSSAtAP(c)
			ok := rss-ctx.NoiseDBm >= floor
			if i > 0 && ctx.RSSAtAP(group[i-1])-rss > tol {
				ok = false
			}
			if i+1 < len(group) && ctx.RSSAtAP(group[i+1])-rss > tol {
				ok = false
			}
			if ok {
				v := a2pLayout.EncodeQueue(ctx.Queue(c))
				res.Values[c] = v
				emitReport(ctx, c, i, v, true)
			} else {
				res.Failed = append(res.Failed, c)
				emitReport(ctx, c, i, 0, false)
			}
		}
	}
	return res
}

// State implements Poller: A2P is stateless between cycles.
func (p *A2P) State() map[string]int64 { return nil }

func init() {
	MustRegister(Descriptor{
		Name:    "A2P",
		Aliases: []string{"grouped"},
		Summary: "multi-round grouped OFDMA polling: RSS-sorted groups of ≤24 clients per round, scales one AP to hundreds of clients",
		DefaultConfig: func() any {
			return &A2PConfig{}
		},
		Build: func(cfg any) (Poller, error) {
			c, _ := cfg.(*A2PConfig)
			if c == nil {
				c = &A2PConfig{}
			}
			if c.GroupSize < 0 || c.GroupSize > a2pLayout.NumSubchannels() {
				return nil, fmt.Errorf("poll: A2P GroupSize %d out of range (1..%d, 0 for the default)",
					c.GroupSize, a2pLayout.NumSubchannels())
			}
			return &A2P{cfg: *c}, nil
		},
	})
}
