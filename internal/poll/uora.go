// UORA-style random-access polling (802.11ax OFDMA random access): instead
// of a scheduled subchannel per client, each poll round offers RA-RUs that
// clients contend for with an OFDMA back-off (OBO) countdown. A client
// decrements its OBO by the number of RA-RUs each round and transmits on a
// random RU once it reaches zero; two clients on the same RU collide, double
// their contention window and redraw. No assignment handshake is needed, so
// unscheduled joiners can report the moment they associate — the trade is
// collisions instead of rounds.

package poll

import (
	"fmt"

	"repro/internal/ofdm"
	"repro/internal/phy"
)

var uoraLayout = ofdm.DefaultLayout()

// UORAConfig parameterises the random-access poller.
type UORAConfig struct {
	// RARUs is the number of random-access RUs per round (0 means 8).
	RARUs int
	// OCWMin/OCWMax bound the OFDMA contention window: a fresh station draws
	// its OBO from [0, OCWMin]; each collision doubles the window
	// (2·OCW + 1) up to OCWMax. Zero means the 802.11ax defaults 7 and 31.
	OCWMin int
	OCWMax int
	// RoundsPerCycle fixes how many RA rounds one polling cycle spans
	// (0 means 4). It is a constant so the schedule's reserved poll gap
	// stays deterministic; clients that never win a round report next cycle.
	RoundsPerCycle int
	// SNRFloorDB is the decode floor for an uncontended report (0 means 4).
	SNRFloorDB float64
}

func (c *UORAConfig) raRUs() int {
	if c == nil || c.RARUs <= 0 {
		return 8
	}
	return c.RARUs
}

func (c *UORAConfig) ocwMin() int {
	if c == nil || c.OCWMin <= 0 {
		return 7
	}
	return c.OCWMin
}

func (c *UORAConfig) ocwMax() int {
	if c == nil || c.OCWMax <= 0 {
		return 31
	}
	return c.OCWMax
}

func (c *UORAConfig) rounds() int {
	if c == nil || c.RoundsPerCycle <= 0 {
		return 4
	}
	return c.RoundsPerCycle
}

func (c *UORAConfig) snrFloor() float64 {
	if c == nil || c.SNRFloorDB == 0 {
		return 4
	}
	return c.SNRFloorDB
}

// uoraStation is one client's persistent contention state.
type uoraStation struct {
	obo int // remaining countdown; -1 until first drawn
	ocw int // current contention window
}

// UORA is the random-access poller.
type UORA struct {
	cfg      UORAConfig
	clients  []phy.NodeID
	stations map[phy.NodeID]*uoraStation

	// Cumulative audit counters (State).
	collisions int64
	attempts   int64
	cycles     int64
}

// Name implements Poller.
func (p *UORA) Name() string { return "UORA" }

// Assign implements Poller: random access needs no layout — the client list
// only fixes the deterministic contention order. Stations keep their
// countdown across churn; departed clients drop their state.
func (p *UORA) Assign(clients []phy.NodeID, rssAtAP func(phy.NodeID) float64) {
	p.clients = sortByRSS(clients, rssAtAP)
	if p.stations == nil {
		p.stations = make(map[phy.NodeID]*uoraStation, len(clients))
	}
	seen := make(map[phy.NodeID]bool, len(p.clients))
	for _, c := range p.clients {
		seen[c] = true
		if p.stations[c] == nil {
			p.stations[c] = &uoraStation{obo: -1, ocw: p.cfg.ocwMin()}
		}
	}
	for c := range p.stations {
		if !seen[c] {
			delete(p.stations, c)
		}
	}
}

// Clients implements Poller.
func (p *UORA) Clients() []phy.NodeID { return p.clients }

// Rounds implements Poller.
func (p *UORA) Rounds() int { return p.cfg.rounds() }

// Poll implements Poller: RoundsPerCycle rounds of OBO contention. All RNG
// draws happen in assignment order, so the cycle is deterministic given the
// engine's RNG state.
func (p *UORA) Poll(ctx Context) Result {
	res := Result{Values: make(map[phy.NodeID]int, len(p.clients)), Rounds: p.cfg.rounds()}
	nRU := p.cfg.raRUs()
	floor := p.cfg.snrFloor()
	reported := make(map[phy.NodeID]bool, len(p.clients))
	contenders := make([][]phy.NodeID, nRU)
	for round := 0; round < p.cfg.rounds(); round++ {
		for i := range contenders {
			contenders[i] = contenders[i][:0]
		}
		for _, c := range p.clients {
			if reported[c] {
				continue
			}
			st := p.stations[c]
			if st.obo < 0 {
				st.obo = ctx.Rng.Intn(st.ocw + 1)
			}
			st.obo -= nRU
			if st.obo > 0 {
				continue
			}
			ru := ctx.Rng.Intn(nRU)
			contenders[ru] = append(contenders[ru], c)
		}
		for ru, cs := range contenders {
			switch {
			case len(cs) == 0:
			case len(cs) == 1:
				c := cs[0]
				st := p.stations[c]
				p.attempts++
				if ctx.RSSAtAP(c)-ctx.NoiseDBm >= floor {
					v := uoraLayout.EncodeQueue(ctx.Queue(c))
					res.Values[c] = v
					reported[c] = true
					st.ocw = p.cfg.ocwMin()
					st.obo = -1
					emitReport(ctx, c, ru, v, true)
				} else {
					// The report was clean of collisions but below the decode
					// floor: back off like a collision and retry.
					p.backoff(ctx, st)
					emitReport(ctx, c, ru, 0, false)
				}
			default:
				// Collision: every contender loses, doubles its window and
				// redraws.
				res.Collisions += len(cs)
				p.collisions += int64(len(cs))
				for _, c := range cs {
					p.attempts++
					p.backoff(ctx, p.stations[c])
					emitReport(ctx, c, ru, 0, false)
				}
			}
		}
	}
	// Clients that never got a clean report through this cycle failed it;
	// together with Values this partitions the assignment exactly once.
	for _, c := range p.clients {
		if !reported[c] {
			res.Failed = append(res.Failed, c)
		}
	}
	p.cycles++
	return res
}

// backoff applies the post-collision window doubling and redraw.
func (p *UORA) backoff(ctx Context, st *uoraStation) {
	st.ocw = 2*st.ocw + 1
	if max := p.cfg.ocwMax(); st.ocw > max {
		st.ocw = max
	}
	st.obo = ctx.Rng.Intn(st.ocw + 1)
}

// State implements Poller: cumulative contention counters for the
// checkpoint audit.
func (p *UORA) State() map[string]int64 {
	return map[string]int64{
		"uora_attempts":   p.attempts,
		"uora_collisions": p.collisions,
		"uora_cycles":     p.cycles,
	}
}

func init() {
	MustRegister(Descriptor{
		Name:    "UORA",
		Aliases: []string{"random-access", "ra"},
		Summary: "802.11ax-style random access: OBO contention over RA-RUs, no assignment handshake, collisions accounted",
		DefaultConfig: func() any {
			return &UORAConfig{}
		},
		Build: func(cfg any) (Poller, error) {
			c, _ := cfg.(*UORAConfig)
			if c == nil {
				c = &UORAConfig{}
			}
			if c.RARUs < 0 || c.OCWMin < 0 || c.OCWMax < 0 || c.RoundsPerCycle < 0 {
				return nil, fmt.Errorf("poll: UORA knobs must be ≥ 0 (RARUs %d, OCWMin %d, OCWMax %d, RoundsPerCycle %d)",
					c.RARUs, c.OCWMin, c.OCWMax, c.RoundsPerCycle)
			}
			if c.ocwMax() < c.ocwMin() {
				return nil, fmt.Errorf("poll: UORA OCWMax %d below OCWMin %d", c.ocwMax(), c.ocwMin())
			}
			return &UORA{cfg: *c}, nil
		},
	})
}
