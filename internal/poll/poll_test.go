package poll_test

// External test package: internal/rop imports poll to register the default
// poller, so an internal poll test importing rop would cycle.

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/phy"
	"repro/internal/poll"
	_ "repro/internal/rop" // register the default ROP poller
)

func testRSS(c phy.NodeID) float64 { return -40 - float64(c%17) }

func testQueue(c phy.NodeID) int { return int(c%5) + 1 }

func TestLookupAliases(t *testing.T) {
	cases := []struct {
		query, want string
	}{
		{"ROP", "ROP"},
		{"rop", "ROP"},
		{"A2P", "A2P"},
		{"grouped", "A2P"},
		{"UORA", "UORA"},
		{"random-access", "UORA"},
		{"ra", "UORA"},
	}
	for _, c := range cases {
		d, ok := poll.Lookup(c.query)
		if !ok {
			t.Errorf("Lookup(%q): not found", c.query)
			continue
		}
		if d.Name != c.want {
			t.Errorf("Lookup(%q) = %s, want %s", c.query, d.Name, c.want)
		}
	}
	if _, ok := poll.Lookup("csma"); ok {
		t.Error("Lookup(csma) unexpectedly found")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := poll.Build("nope", nil); err == nil ||
		!strings.Contains(err.Error(), "unknown poller") {
		t.Errorf("Build(nope) err = %v, want unknown poller", err)
	}
	// ROP has no knobs: a non-empty config object must be rejected.
	if _, err := poll.Build("ROP", json.RawMessage(`{"GroupSize": 8}`)); err == nil ||
		!strings.Contains(err.Error(), "no knobs") {
		t.Errorf("Build(ROP, knobs) err = %v, want no-knobs rejection", err)
	}
	// A2P validates its knob ranges.
	if _, err := poll.Build("A2P", json.RawMessage(`{"GroupSize": 99}`)); err == nil {
		t.Error("Build(A2P, GroupSize 99) unexpectedly succeeded")
	}
	if _, err := poll.Build("UORA", json.RawMessage(`{"OCWMin": 15, "OCWMax": 7}`)); err == nil {
		t.Error("Build(UORA, OCWMax < OCWMin) unexpectedly succeeded")
	}
	if _, err := poll.Build("A2P", json.RawMessage(`{"GroupSize": bad`)); err == nil {
		t.Error("Build(A2P, malformed JSON) unexpectedly succeeded")
	}
}

func TestRegisterUnregister(t *testing.T) {
	d := poll.Descriptor{
		Name:    "toy",
		Aliases: []string{"toy-alias"},
		Build: func(any) (poll.Poller, error) {
			return nil, nil
		},
	}
	if err := poll.Register(d); err != nil {
		t.Fatal(err)
	}
	defer poll.Unregister("toy")
	if _, ok := poll.Lookup("TOY-ALIAS"); !ok {
		t.Error("alias lookup failed after Register")
	}
	if err := poll.Register(poll.Descriptor{Name: "toy-alias", Build: d.Build}); err == nil {
		t.Error("duplicate-name Register unexpectedly succeeded")
	}
	if err := poll.Register(poll.Descriptor{Name: "nobuild"}); err == nil {
		t.Error("Register without Build unexpectedly succeeded")
	}
	poll.Unregister("toy")
	if _, ok := poll.Lookup("toy"); ok {
		t.Error("Lookup(toy) found after Unregister")
	}
	if _, ok := poll.Lookup("toy-alias"); ok {
		t.Error("alias survived Unregister")
	}
}

// TestEveryPollerCoversClientsExactlyOnce is the registry-wide contract: per
// cycle, every assigned client lands in exactly one of Result.Values or
// Result.Failed — no client silently dropped, none double-reported. It runs
// every registered poller at several client counts and seeds.
func TestEveryPollerCoversClientsExactlyOnce(t *testing.T) {
	counts := []int{1, 5, 24, 60, 150}
	for _, name := range poll.Names() {
		d, ok := poll.Lookup(name)
		if !ok {
			t.Fatalf("Names() lists %q but Lookup fails", name)
		}
		t.Run(name, func(t *testing.T) {
			for _, n := range counts {
				if d.MaxClients > 0 && n > d.MaxClients {
					continue // the engine truncates before Assign; contract holds below the ceiling
				}
				for seed := int64(1); seed <= 3; seed++ {
					p, err := poll.Build(name, nil)
					if err != nil {
						t.Fatalf("Build(%s): %v", name, err)
					}
					clients := make([]phy.NodeID, n)
					for i := range clients {
						clients[i] = phy.NodeID(i + 2)
					}
					p.Assign(clients, testRSS)
					if got := len(p.Clients()); got != n {
						t.Fatalf("n=%d seed=%d: Clients() has %d entries", n, seed, got)
					}
					rounds := p.Rounds()
					if rounds < 1 {
						t.Fatalf("n=%d: Rounds() = %d, want >= 1", n, rounds)
					}
					rng := rand.New(rand.NewSource(seed))
					for cycle := 0; cycle < 4; cycle++ {
						res := p.Poll(poll.Context{
							Queue:    testQueue,
							RSSAtAP:  testRSS,
							NoiseDBm: -95,
							Rng:      rng,
						})
						if res.Rounds != rounds {
							t.Fatalf("n=%d cycle=%d: Result.Rounds %d != Rounds() %d",
								n, cycle, res.Rounds, rounds)
						}
						seen := map[phy.NodeID]int{}
						for c := range res.Values {
							seen[c]++
						}
						for _, c := range res.Failed {
							seen[c]++
						}
						for _, c := range clients {
							if seen[c] != 1 {
								t.Fatalf("n=%d seed=%d cycle=%d: client %d covered %d times",
									n, seed, cycle, c, seen[c])
							}
						}
						if len(seen) != n {
							t.Fatalf("n=%d seed=%d cycle=%d: %d covered clients, want %d",
								n, seed, cycle, len(seen), n)
						}
					}
				}
			}
		})
	}
}

// TestUORAStatePersists checks the contention poller accumulates counters
// across cycles and survives re-Assign churn.
func TestUORAStatePersists(t *testing.T) {
	p, err := poll.Build("UORA", nil)
	if err != nil {
		t.Fatal(err)
	}
	clients := []phy.NodeID{2, 3, 4, 5, 6, 7, 8, 9}
	p.Assign(clients, testRSS)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 6; i++ {
		p.Poll(poll.Context{Queue: testQueue, RSSAtAP: testRSS, NoiseDBm: -95, Rng: rng})
	}
	st := p.State()
	if st == nil || st["uora_attempts"] == 0 {
		t.Fatalf("State() = %v, want nonzero uora_attempts", st)
	}
	// Churn: drop half the clients; counters must not reset.
	p.Assign(clients[:4], testRSS)
	p.Poll(poll.Context{Queue: testQueue, RSSAtAP: testRSS, NoiseDBm: -95, Rng: rng})
	if st2 := p.State(); st2["uora_attempts"] <= st["uora_attempts"] {
		t.Errorf("uora_attempts %d -> %d, want growth across re-Assign",
			st["uora_attempts"], st2["uora_attempts"])
	}
}
