package topo

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/phy"
)

// Components returns the connected components of the link conflict graph,
// computed over the bitset adjacency. Each component is a sorted slice of
// link IDs; components are ordered by their smallest member, so the output
// is a canonical partition of 0..len(Links)-1 independent of traversal
// order. Links with no conflicts form singleton components.
func (g *ConflictGraph) Components() [][]int {
	n := len(g.Links)
	visited := make([]bool, n)
	var comps [][]int
	queue := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		comp := []int{start}
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for w, word := range g.adjBits[v] {
				for word != 0 {
					j := w<<6 + bits.TrailingZeros64(word)
					word &= word - 1
					if !visited[j] {
						visited[j] = true
						comp = append(comp, j)
						queue = append(queue, j)
					}
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	// BFS from increasing start vertices already yields components ordered
	// by smallest member; keep the sort as a belt-and-braces canonical form.
	sort.Slice(comps, func(a, b int) bool { return comps[a][0] < comps[b][0] })
	return comps
}

// DefaultCutDBm is the default RSS-threshold for the interference-domain
// cut: an AP-conflict edge whose cluster coupling (strongest cross-cell RSS)
// is below this is severed, on the grounds that the residual interference is
// marginal — the campus generator records couplings below the measurement
// floor (-82 dBm) as absent entirely, so -78 dBm cuts only edges the
// measured map considers borderline.
const DefaultCutDBm = -78.0

// NoCutDBm disables the RSS-threshold cut: every AP-conflict edge is kept,
// so domains are the exact connected components of the AP conflict relation.
var NoCutDBm = math.Inf(-1)

// Domain is one interference domain of a Partition: a set of AP cells whose
// links conflict (directly or transitively) above the cut threshold. All
// slices are sorted ascending in global IDs.
type Domain struct {
	// Index is the domain's position within Partition.Domains.
	Index int
	// APs are the global AP node IDs in the domain.
	APs []phy.NodeID
	// Nodes are all global node IDs (APs plus their clients).
	Nodes []phy.NodeID
	// Links are the global link IDs whose AP belongs to the domain.
	Links []int
}

// CutStats quantifies the approximation introduced by the RSS-threshold cut.
type CutStats struct {
	// Domains is the number of interference domains.
	Domains int
	// KeptEdges counts AP-conflict edges within a domain.
	KeptEdges int
	// CutEdges counts AP-conflict edges severed by the threshold.
	CutEdges int
	// MaxCutDBm is the strongest cluster coupling among severed edges
	// (UnmeasuredDBm when no edge was cut).
	MaxCutDBm float64
	// CrossLinkPairs counts link-level conflict pairs that ended up in
	// different domains — the exact set of constraints the sharded run
	// ignores.
	CrossLinkPairs int
}

// CutEdge is one AP-conflict edge severed by the RSS-threshold cut: the
// residual coupling the sharded run approximates away (and audits through
// the cross-shard digest channel).
type CutEdge struct {
	A, B phy.NodeID // the conflicting APs, A < B
	// CouplingDBm is the strongest cross-cell RSS between the two cells.
	CouplingDBm float64
}

// Partition is an interference-domain decomposition of a conflict graph:
// connected components of the AP conflict relation after severing edges
// whose cluster coupling falls below CutDBm.
type Partition struct {
	Graph  *ConflictGraph
	CutDBm float64
	// Domains are ordered by smallest global AP ID.
	Domains []Domain
	Stats   CutStats
	// Cuts lists every severed edge, in (A, B) scan order.
	Cuts []CutEdge
	// NodeDomain maps every global node ID to its domain index (-1 for
	// nodes outside any domain, e.g. clients of linkless APs are still
	// placed with their AP, so -1 does not occur on valid networks).
	NodeDomain []int
	// LinkDomain maps every global link ID to its domain index.
	LinkDomain []int
}

// PartitionDomains decomposes the conflict graph into interference domains.
// Two AP cells are coupled when APConflict holds AND the strongest RSS
// between any node of one cell and any node of the other is at least cutDBm;
// domains are the connected components of that relation. Every AP belongs to
// exactly one domain (linkless APs form singletons). Use NoCutDBm to keep
// every conflict edge.
func PartitionDomains(g *ConflictGraph, cutDBm float64) *Partition {
	net := g.Net
	aps := net.APs
	nAP := len(aps)
	apPos := make(map[phy.NodeID]int, nAP)
	for i, ap := range aps {
		apPos[ap] = i
	}
	// Cell membership: AP plus associated clients.
	cells := make([][]phy.NodeID, nAP)
	for i, ap := range aps {
		cells[i] = append([]phy.NodeID{ap}, net.Clients(ap)...)
	}

	p := &Partition{Graph: g, CutDBm: cutDBm}
	p.Stats.MaxCutDBm = UnmeasuredDBm

	// Union-find over AP indices.
	parent := make([]int, nAP)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	coupling := func(a, b int) float64 {
		best := math.Inf(-1)
		for _, u := range cells[a] {
			for _, v := range cells[b] {
				if r := net.RSS[u][v]; r > best {
					best = r
				}
				if r := net.RSS[v][u]; r > best {
					best = r
				}
			}
		}
		return best
	}
	for i := 0; i < nAP; i++ {
		for j := i + 1; j < nAP; j++ {
			if !g.APConflict(aps[i], aps[j]) {
				continue
			}
			if c := coupling(i, j); c < cutDBm {
				p.Stats.CutEdges++
				p.Cuts = append(p.Cuts, CutEdge{A: aps[i], B: aps[j], CouplingDBm: c})
				if c > p.Stats.MaxCutDBm {
					p.Stats.MaxCutDBm = c
				}
				continue
			}
			p.Stats.KeptEdges++
			ri, rj := find(i), find(j)
			if ri != rj {
				parent[ri] = rj
			}
		}
	}

	// Group AP indices by root, order domains by smallest global AP ID
	// (APs are listed in ID order, so first-seen order is already that).
	rootDomain := map[int]int{}
	for i := 0; i < nAP; i++ {
		r := find(i)
		d, ok := rootDomain[r]
		if !ok {
			d = len(p.Domains)
			rootDomain[r] = d
			p.Domains = append(p.Domains, Domain{Index: d})
		}
		p.Domains[d].APs = append(p.Domains[d].APs, aps[i])
	}

	p.NodeDomain = make([]int, net.NumNodes())
	for i := range p.NodeDomain {
		p.NodeDomain[i] = -1
	}
	for d := range p.Domains {
		dom := &p.Domains[d]
		for _, ap := range dom.APs {
			for _, n := range cells[apPos[ap]] {
				dom.Nodes = append(dom.Nodes, n)
				p.NodeDomain[n] = d
			}
		}
		sort.Slice(dom.Nodes, func(a, b int) bool { return dom.Nodes[a] < dom.Nodes[b] })
	}

	p.LinkDomain = make([]int, len(g.Links))
	for i, l := range g.Links {
		d := p.NodeDomain[l.AP]
		p.LinkDomain[i] = d
		if d >= 0 {
			p.Domains[d].Links = append(p.Domains[d].Links, i)
		}
	}
	for d := range p.Domains {
		sort.Ints(p.Domains[d].Links)
	}

	// Link-level conflict pairs crossing domains: the constraints a sharded
	// run cannot enforce.
	for i := range g.Links {
		di := p.LinkDomain[i]
		for j := i + 1; j < len(g.Links); j++ {
			if g.adj[i][j] && di != p.LinkDomain[j] {
				p.Stats.CrossLinkPairs++
			}
		}
	}
	p.Stats.Domains = len(p.Domains)
	return p
}

// CrossDomainPairs returns the unordered domain-index pairs joined by at
// least one severed conflict edge, sorted by (low, high) — the canonical
// channel topology for cross-shard coupling audits. Cut edges whose
// endpoints landed in the same domain anyway (reconnected through a kept
// path) produce no pair.
func (p *Partition) CrossDomainPairs() [][2]int {
	seen := map[[2]int]bool{}
	var pairs [][2]int
	for _, c := range p.Cuts {
		da, db := p.NodeDomain[c.A], p.NodeDomain[c.B]
		if da == db {
			continue
		}
		if da > db {
			da, db = db, da
		}
		key := [2]int{da, db}
		if !seen[key] {
			seen[key] = true
			pairs = append(pairs, key)
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	return pairs
}

// Subnet extracts domain d as a standalone Network plus the monotone
// local→global node ID map. Local IDs are assigned in ascending global-ID
// order, so the relative order of APs and of each AP's clients is preserved:
// BuildLinks on the subnet yields exactly the global link set restricted to
// the domain, densely renumbered in the same relative order. Cross-domain
// RSS entries are dropped (that is the sharding approximation; see
// CutStats.CrossLinkPairs for how much conflict structure this severs).
func (p *Partition) Subnet(d int) (*Network, []phy.NodeID) {
	dom := &p.Domains[d]
	net := p.Graph.Net
	n := len(dom.Nodes)
	localOf := make(map[phy.NodeID]int, n)
	for i, g := range dom.Nodes {
		localOf[g] = i
	}
	sub := &Network{
		RSS:  make([][]float64, n),
		IsAP: make([]bool, n),
		APOf: make([]phy.NodeID, n),
	}
	if len(net.Pos) == net.NumNodes() {
		sub.Pos = make([]Point, n)
	}
	for i, g := range dom.Nodes {
		sub.RSS[i] = make([]float64, n)
		for j, h := range dom.Nodes {
			if i != j {
				sub.RSS[i][j] = net.RSS[g][h]
			}
		}
		sub.IsAP[i] = net.IsAP[g]
		sub.APOf[i] = phy.NodeID(localOf[net.APOf[g]])
		if sub.Pos != nil {
			sub.Pos[i] = net.Pos[g]
		}
	}
	for i, g := range dom.Nodes {
		if net.IsAP[g] {
			sub.APs = append(sub.APs, phy.NodeID(i))
		}
	}
	return sub, append([]phy.NodeID(nil), dom.Nodes...)
}

// Validate checks partition invariants: every AP in exactly one domain,
// every node and link mapped, domain slices sorted, and subnet extraction
// well-formed. Intended for tests and debug assertions.
func (p *Partition) Validate() error {
	net := p.Graph.Net
	seenAP := map[phy.NodeID]int{}
	for d := range p.Domains {
		dom := &p.Domains[d]
		if dom.Index != d {
			return fmt.Errorf("partition: domain %d has Index %d", d, dom.Index)
		}
		if len(dom.APs) == 0 {
			return fmt.Errorf("partition: domain %d has no APs", d)
		}
		for _, ap := range dom.APs {
			if prev, dup := seenAP[ap]; dup {
				return fmt.Errorf("partition: AP %d in domains %d and %d", ap, prev, d)
			}
			seenAP[ap] = d
		}
		if !sort.SliceIsSorted(dom.Nodes, func(a, b int) bool { return dom.Nodes[a] < dom.Nodes[b] }) {
			return fmt.Errorf("partition: domain %d nodes unsorted", d)
		}
		if !sort.IntsAreSorted(dom.Links) {
			return fmt.Errorf("partition: domain %d links unsorted", d)
		}
	}
	for _, ap := range net.APs {
		if _, ok := seenAP[ap]; !ok {
			return fmt.Errorf("partition: AP %d unassigned", ap)
		}
	}
	for id := 0; id < net.NumNodes(); id++ {
		if p.NodeDomain[id] < 0 {
			return fmt.Errorf("partition: node %d unassigned", id)
		}
	}
	for id, d := range p.LinkDomain {
		if d < 0 || d >= len(p.Domains) {
			return fmt.Errorf("partition: link %d has domain %d", id, d)
		}
	}
	return nil
}
