package topo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/phy"
)

// Trace is a measured (here: synthesised) RSS map over a set of node
// positions, standing in for the paper's 40-node two-building testbed trace.
type Trace struct {
	RSS [][]float64
	Pos []Point
}

// PathLoss is a log-distance path-loss model with lognormal shadowing:
// RSS(d) = TxPowerDBm − RefLossDB − 10·Exponent·log10(d) + N(0, ShadowSigmaDB).
type PathLoss struct {
	TxPowerDBm    float64
	RefLossDB     float64 // loss at 1 m
	Exponent      float64
	ShadowSigmaDB float64
}

// IndoorModel approximates 2.4 GHz office propagation.
func IndoorModel() PathLoss {
	return PathLoss{TxPowerDBm: 20, RefLossDB: 40, Exponent: 3.0, ShadowSigmaDB: 4}
}

// OutdoorModel approximates 2.4 GHz open-area propagation with elevated
// antennas for the Fig 14 random placements; the gentler exponent keeps
// association range near 140 m so a T(20,3) is usually constructible from a
// 110-node placement in 800×800 m.
func OutdoorModel() PathLoss {
	return PathLoss{TxPowerDBm: 20, RefLossDB: 35, Exponent: 2.8, ShadowSigmaDB: 3}
}

// RSS returns the mean received power at distance d metres (no shadowing).
func (p PathLoss) RSS(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return p.TxPowerDBm - p.RefLossDB - 10*p.Exponent*math.Log10(d)
}

// MeasureFloorDBm is the sensitivity of the trace measurement: link pairs
// weaker than this are absent from a measured interference map, so the
// generator records them as UnmeasuredDBm. This also bounds the dynamic range
// of the trace, which is why the paper's 40-node testbed sees only 0.54% of
// same-receiver pairs more than 38 dB apart.
const MeasureFloorDBm = -82

// UnmeasuredDBm is the value recorded for links below the measurement floor:
// far enough below the noise floor to contribute nothing.
const UnmeasuredDBm = -110

// CampusTrace synthesises the 40-node, two-building RSS trace (paper §4.2).
// Twenty nodes per building, a wall/penetration loss between buildings,
// symmetric per-pair shadowing, and a measurement-sensitivity floor. The same
// seed reproduces the same trace.
func CampusTrace(seed int64) *Trace {
	const (
		perBuilding = 20
		buildW      = 90.0
		buildH      = 50.0
		gap         = 25.0 // courtyard between buildings
		wallLossDB  = 10.0
		minSep      = 4.0
	)
	rng := rand.New(rand.NewSource(seed))
	model := PathLoss{TxPowerDBm: 20, RefLossDB: 47, Exponent: 3.2, ShadowSigmaDB: 4}
	var pos []Point
	place := func(x0 float64) {
		placed := 0
		for placed < perBuilding {
			p := Point{x0 + rng.Float64()*buildW, rng.Float64() * buildH}
			ok := true
			for _, q := range pos {
				if math.Hypot(p.X-q.X, p.Y-q.Y) < minSep {
					ok = false
					break
				}
			}
			if ok {
				pos = append(pos, p)
				placed++
			}
		}
	}
	place(0)
	place(buildW + gap)
	n := len(pos)
	rss := make([][]float64, n)
	for i := range rss {
		rss[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Hypot(pos[i].X-pos[j].X, pos[i].Y-pos[j].Y)
			v := model.RSS(d) + rng.NormFloat64()*model.ShadowSigmaDB
			if (i < perBuilding) != (j < perBuilding) {
				v -= wallLossDB
			}
			if v < MeasureFloorDBm {
				v = UnmeasuredDBm
			}
			rss[i][j] = v
			rss[j][i] = v
		}
	}
	return &Trace{RSS: rss, Pos: pos}
}

// RandomTrace places n nodes uniformly in an areaM × areaM square with
// outdoor propagation (paper §4.2.5: 80 nodes in 800×800 m²). Unlike the
// campus trace this matrix is continuous (ns-3's default path-loss model has
// no measurement floor), so weak far-field couplings exist everywhere — the
// regime where hidden/exposed structure is richest.
func RandomTrace(seed int64, n int, areaM float64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	model := OutdoorModel()
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{rng.Float64() * areaM, rng.Float64() * areaM}
	}
	rss := make([][]float64, n)
	for i := range rss {
		rss[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Hypot(pos[i].X-pos[j].X, pos[i].Y-pos[j].Y)
			v := model.RSS(d) + rng.NormFloat64()*model.ShadowSigmaDB
			rss[i][j] = v
			rss[j][i] = v
		}
	}
	return &Trace{RSS: rss, Pos: pos}
}

// GridCampus synthesises a campus-scale enterprise deployment directly as a
// Network: `buildings` rectangular buildings on a square grid, each holding
// `apsPerBuilding` ceiling-mounted APs on an internal grid with
// `clientsPerAP` clients placed in the AP's cell. The same path-loss model,
// wall penetration loss and measurement floor as CampusTrace apply, so
// cross-building couplings are weak — mostly below the measurement floor,
// with a tail of borderline measured pairs around DefaultCutDBm. That makes
// the result the canonical input for interference-domain partitioning:
// buildings form strongly coupled clusters, and the rare cross-building
// conflict edges are exactly the weak couplings the RSS-threshold cut
// severs. Node IDs follow the BuildT convention (each AP followed by its
// clients, AP IDs increasing), so the network is domain-contiguous. The same
// seed reproduces the same network.
func GridCampus(seed int64, buildings, apsPerBuilding, clientsPerAP int) *Network {
	const (
		buildW     = 60.0
		buildH     = 40.0
		gap        = 32.0 // alley width: nearest cross-building pairs straddle the measurement floor
		wallLossDB = 10.0
		cellR      = 14.0 // clients out to the cell edge, where cross-building SINR can dip into conflict
		cellRMin   = 2.0
		wallMargin = 1.0 // clients stay indoors: couplings cross at least one wall + the alley
	)
	rng := rand.New(rand.NewSource(seed))
	model := PathLoss{TxPowerDBm: 20, RefLossDB: 47, Exponent: 3.2, ShadowSigmaDB: 4}
	gridW := int(math.Ceil(math.Sqrt(float64(buildings))))
	apCols := int(math.Ceil(math.Sqrt(float64(apsPerBuilding))))
	apRows := (apsPerBuilding + apCols - 1) / apCols

	n := buildings * apsPerBuilding * (1 + clientsPerAP)
	net := &Network{
		RSS:  make([][]float64, n),
		IsAP: make([]bool, n),
		APOf: make([]phy.NodeID, n),
		Pos:  make([]Point, n),
	}
	building := make([]int, n)
	id := 0
	for b := 0; b < buildings; b++ {
		bx := float64(b%gridW) * (buildW + gap)
		by := float64(b/gridW) * (buildH + gap)
		for a := 0; a < apsPerBuilding; a++ {
			apX := bx + (float64(a%apCols)+0.5)*buildW/float64(apCols)
			apY := by + (float64(a/apCols)+0.5)*buildH/float64(apRows)
			ap := phy.NodeID(id)
			net.IsAP[id] = true
			net.APOf[id] = ap
			net.APs = append(net.APs, ap)
			net.Pos[id] = Point{apX, apY}
			building[id] = b
			id++
			for c := 0; c < clientsPerAP; c++ {
				r := cellRMin + rng.Float64()*(cellR-cellRMin)
				th := rng.Float64() * 2 * math.Pi
				x := math.Min(math.Max(apX+r*math.Cos(th), bx+wallMargin), bx+buildW-wallMargin)
				y := math.Min(math.Max(apY+r*math.Sin(th), by+wallMargin), by+buildH-wallMargin)
				net.APOf[id] = ap
				net.Pos[id] = Point{x, y}
				building[id] = b
				id++
			}
		}
	}
	for i := range net.RSS {
		net.RSS[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Hypot(net.Pos[i].X-net.Pos[j].X, net.Pos[i].Y-net.Pos[j].Y)
			v := model.RSS(d) + rng.NormFloat64()*model.ShadowSigmaDB
			if building[i] != building[j] {
				v -= wallLossDB
			}
			if v < MeasureFloorDBm {
				v = UnmeasuredDBm
			}
			net.RSS[i][j] = v
			net.RSS[j][i] = v
		}
	}
	return net
}

// RSSDiffExceedRatio computes the fraction of same-receiver link pairs whose
// RSS differ by more than threshDB, counting only links above the delivery
// floor. The paper reports 0.54% above 38 dB for its trace; ROP's 3 guard
// subcarriers tolerate exactly that span (§3.1).
func RSSDiffExceedRatio(rss [][]float64, threshDB, floorDBm float64) float64 {
	n := len(rss)
	var pairs, exceed int
	for r := 0; r < n; r++ {
		for a := 0; a < n; a++ {
			if a == r || rss[a][r] < floorDBm {
				continue
			}
			for b := a + 1; b < n; b++ {
				if b == r || rss[b][r] < floorDBm {
					continue
				}
				pairs++
				if math.Abs(rss[a][r]-rss[b][r]) > threshDB {
					exceed++
				}
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(exceed) / float64(pairs)
}

// AssocFloorDBm is the weakest AP signal a client will associate with.
// Enterprise deployments steer clients to strong APs well above the decode
// threshold; without this, T(m,n) cells span whole buildings and every link
// conflicts with every other.
const AssocFloorDBm = -70

// BuildT constructs a T(m, n) topology from a trace, following §4.2.1: sort
// nodes by the number of nodes in their communication range (decreasing),
// take the best unused node as an AP, attach n random unused nodes in its
// communication range as clients, repeat for m APs. The result contains only
// the selected nodes, re-indexed densely (APs keep increasing IDs).
func BuildT(tr *Trace, m, n int, cfg phy.Config, rate phy.Rate, rng *rand.Rand) (*Network, error) {
	return BuildTWithFloor(tr, m, n, AssocFloorDBm, cfg, rate, rng)
}

// BuildTWithFloor is BuildT with an explicit association floor: dense
// selections like T(6,5), which consume nearly the whole trace, need clients
// to accept weaker APs than the default enterprise steering policy.
func BuildTWithFloor(tr *Trace, m, n int, assocFloor float64, cfg phy.Config, rate phy.Rate, rng *rand.Rand) (*Network, error) {
	total := len(tr.RSS)
	floor := assocFloor
	if th := cfg.NoiseDBm + phy.SNRThresholdDB(rate); th > floor {
		floor = th
	}
	inRange := func(a, b int) bool {
		return tr.RSS[a][b] >= floor
	}
	degree := make([]int, total)
	for i := 0; i < total; i++ {
		for j := 0; j < total; j++ {
			if i != j && inRange(i, j) && inRange(j, i) {
				degree[i]++
			}
		}
	}
	order := make([]int, total)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return degree[order[a]] > degree[order[b]] })

	used := make([]bool, total)
	type sel struct {
		ap      int
		clients []int
	}
	var sels []sel
	for len(sels) < m {
		picked := false
		for _, cand := range order {
			if used[cand] {
				continue
			}
			var avail []int
			for j := 0; j < total; j++ {
				if j != cand && !used[j] && inRange(cand, j) && inRange(j, cand) {
					avail = append(avail, j)
				}
			}
			if len(avail) < n {
				continue
			}
			rng.Shuffle(len(avail), func(a, b int) { avail[a], avail[b] = avail[b], avail[a] })
			clients := avail[:n]
			used[cand] = true
			for _, c := range clients {
				used[c] = true
			}
			sels = append(sels, sel{ap: cand, clients: clients})
			picked = true
			break
		}
		if !picked {
			return nil, fmt.Errorf("topo: trace supports only %d of T(%d,%d) APs", len(sels), m, n)
		}
	}

	// Re-index: AP_i then its clients, in selection order.
	var oldIDs []int
	for _, s := range sels {
		oldIDs = append(oldIDs, s.ap)
		oldIDs = append(oldIDs, s.clients...)
	}
	N := len(oldIDs)
	net := &Network{
		RSS:  make([][]float64, N),
		IsAP: make([]bool, N),
		APOf: make([]phy.NodeID, N),
		Pos:  make([]Point, N),
	}
	for i, old := range oldIDs {
		net.RSS[i] = make([]float64, N)
		for j, oldJ := range oldIDs {
			if i != j {
				net.RSS[i][j] = tr.RSS[old][oldJ]
			}
		}
		if len(tr.Pos) == len(tr.RSS) {
			net.Pos[i] = tr.Pos[old]
		}
	}
	idx := 0
	for range sels {
		ap := phy.NodeID(idx)
		net.IsAP[idx] = true
		net.APOf[idx] = ap
		net.APs = append(net.APs, ap)
		idx++
		for c := 0; c < n; c++ {
			net.APOf[idx] = ap
			idx++
		}
	}
	return net, nil
}
