// Package topo describes enterprise WLAN topologies: nodes, AP–client
// associations, the pairwise RSS interference map the DOMINO central server
// maintains, link conflict graphs, and hidden/exposed-terminal
// classification (paper §3, "Identifying hidden and exposed links").
//
// It also provides the topology constructions the evaluation uses: the
// figure-specific networks (Figs 1, 7, 13), a synthetic 40-node two-building
// campus trace standing in for the paper's measurement trace, the T(m,n)
// selection procedure of §4.2.1, and random 800×800 m placements for Fig 14.
package topo

import (
	"fmt"

	"repro/internal/phy"
)

// Point is a 2-D position in metres (used by generated topologies; the
// figure topologies are specified directly as RSS).
type Point struct{ X, Y float64 }

// Network is a set of radios with known pairwise RSS and AP–client
// associations. It is the "central interference map" of paper §3.
type Network struct {
	// RSS[i][j] is the received power (dBm) at j when i transmits.
	RSS [][]float64
	// IsAP flags access points.
	IsAP []bool
	// APOf maps every node to its AP (an AP maps to itself).
	APOf []phy.NodeID
	// APs lists the access points in ID order.
	APs []phy.NodeID
	// Pos holds node positions when the topology was generated from
	// placement; nil for hand-specified RSS.
	Pos []Point
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.RSS) }

// Clients returns the client IDs associated with the given AP.
func (n *Network) Clients(ap phy.NodeID) []phy.NodeID {
	var out []phy.NodeID
	for id, a := range n.APOf {
		if a == ap && !n.IsAP[id] {
			out = append(out, phy.NodeID(id))
		}
	}
	return out
}

// Validate checks structural consistency and returns a descriptive error for
// the first violation found.
func (n *Network) Validate() error {
	N := n.NumNodes()
	if len(n.IsAP) != N || len(n.APOf) != N {
		return fmt.Errorf("topo: field lengths disagree (rss=%d isAP=%d apOf=%d)",
			N, len(n.IsAP), len(n.APOf))
	}
	for i, row := range n.RSS {
		if len(row) != N {
			return fmt.Errorf("topo: rss row %d has %d entries, want %d", i, len(row), N)
		}
	}
	for id := 0; id < N; id++ {
		ap := n.APOf[id]
		if ap < 0 || int(ap) >= N {
			return fmt.Errorf("topo: node %d associated with out-of-range AP %d", id, ap)
		}
		if n.IsAP[id] && ap != phy.NodeID(id) {
			return fmt.Errorf("topo: AP %d not associated with itself", id)
		}
		if !n.IsAP[id] && !n.IsAP[ap] {
			return fmt.Errorf("topo: client %d associated with non-AP %d", id, ap)
		}
	}
	seen := map[phy.NodeID]bool{}
	for _, ap := range n.APs {
		if !n.IsAP[ap] {
			return fmt.Errorf("topo: APs list contains non-AP %d", ap)
		}
		if seen[ap] {
			return fmt.Errorf("topo: duplicate AP %d", ap)
		}
		seen[ap] = true
	}
	for id := 0; id < N; id++ {
		if n.IsAP[id] && !seen[phy.NodeID(id)] {
			return fmt.Errorf("topo: AP %d missing from APs list", id)
		}
	}
	return nil
}

// Link is a directed AP–client transmission opportunity. Exactly one endpoint
// is an AP (paper §3.3: "either l.sender or l.receiver must be an AP").
type Link struct {
	// ID indexes the link within its LinkSet.
	ID       int
	Sender   phy.NodeID
	Receiver phy.NodeID
	// AP is whichever endpoint is the access point.
	AP phy.NodeID
	// Downlink is true for AP→client.
	Downlink bool
}

// String renders the link as "AP3→C7"-style for traces.
func (l *Link) String() string {
	if l.Downlink {
		return fmt.Sprintf("AP%d→C%d", l.Sender, l.Receiver)
	}
	return fmt.Sprintf("C%d→AP%d", l.Sender, l.Receiver)
}

// Shares reports whether the two links have a node in common.
func (l *Link) Shares(o *Link) bool {
	return l.Sender == o.Sender || l.Sender == o.Receiver ||
		l.Receiver == o.Sender || l.Receiver == o.Receiver
}

// BuildLinks creates the link set for the network: a downlink and/or uplink
// per AP–client pair, IDs dense in creation order (downlinks first per pair).
func (n *Network) BuildLinks(downlink, uplink bool) []*Link {
	var links []*Link
	add := func(s, r phy.NodeID, ap phy.NodeID, down bool) {
		links = append(links, &Link{ID: len(links), Sender: s, Receiver: r, AP: ap, Downlink: down})
	}
	for _, ap := range n.APs {
		for _, c := range n.Clients(ap) {
			if downlink {
				add(ap, c, ap, true)
			}
			if uplink {
				add(c, ap, ap, false)
			}
		}
	}
	return links
}
