package topo

import (
	"math"

	"repro/internal/phy"
)

// ConflictGraph is the link-interference graph G(V,E) the central server
// derives from the interference map (paper §3): vertices are links, an edge
// means the two links cannot transmit concurrently. Independent sets of the
// graph may share a slot.
type ConflictGraph struct {
	Net   *Network
	Links []*Link
	cfg   phy.Config
	rate  phy.Rate
	adj   [][]bool
	// adjBits mirrors adj as a bitset (row-major, 64 links per word) so the
	// hot independent-set scan touches one word per 64 candidates instead of
	// one bool per pair.
	adjBits  [][]uint64
	adjWords int
	// apConflict caches APConflict for every AP pair (indexed through
	// apIndex), precomputed from per-AP link masks at construction — the
	// converter's ROP-sharing checks would otherwise rescan all link pairs
	// on every call.
	apIndex    map[phy.NodeID]int
	apConflict [][]bool
}

// NewConflictGraph computes the conflict graph for the given links at the
// given data rate: two links conflict when they share a node or when their
// concurrent exchanges interfere. An exchange is bidirectional — data from
// the sender plus the link-layer ACK from the receiver — so the test covers
// data-vs-data, data-vs-ACK (slots can be misaligned by tens of µs while
// relative scheduling converges) and ACK-vs-ACK corruption.
func NewConflictGraph(net *Network, links []*Link, cfg phy.Config, rate phy.Rate) *ConflictGraph {
	g := &ConflictGraph{Net: net, Links: links, cfg: cfg, rate: rate}
	n := len(links)
	g.adj = make([][]bool, n)
	for i := range g.adj {
		g.adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := links[i].Shares(links[j]) ||
				g.corrupts(links[i], links[j]) || g.corrupts(links[j], links[i])
			g.adj[i][j] = c
			g.adj[j][i] = c
		}
	}
	g.adjWords = (n + 63) / 64
	g.adjBits = make([][]uint64, n)
	rows := make([]uint64, n*g.adjWords)
	for i := 0; i < n; i++ {
		g.adjBits[i] = rows[i*g.adjWords : (i+1)*g.adjWords]
		for j := 0; j < n; j++ {
			if g.adj[i][j] {
				g.adjBits[i][j>>6] |= 1 << (uint(j) & 63)
			}
		}
	}
	g.buildAPConflict()
	return g
}

// buildAPConflict precomputes the AP-pair conflict relation from per-AP link
// masks: ap1 and ap2 conflict when any link of ap1 is adjacent to any link of
// ap2 in the conflict graph.
func (g *ConflictGraph) buildAPConflict() {
	apLinks := map[phy.NodeID][]int{}
	var aps []phy.NodeID
	for i, l := range g.Links {
		if _, ok := apLinks[l.AP]; !ok {
			aps = append(aps, l.AP)
		}
		apLinks[l.AP] = append(apLinks[l.AP], i)
	}
	g.apIndex = make(map[phy.NodeID]int, len(aps))
	for i, ap := range aps {
		g.apIndex[ap] = i
	}
	mask := make([][]uint64, len(aps))
	for i, ap := range aps {
		mask[i] = make([]uint64, g.adjWords)
		for _, li := range apLinks[ap] {
			mask[i][li>>6] |= 1 << (uint(li) & 63)
		}
	}
	g.apConflict = make([][]bool, len(aps))
	for i, ap := range aps {
		g.apConflict[i] = make([]bool, len(aps))
		for j := range aps {
			conflict := false
			for _, li := range apLinks[ap] {
				for w, bits := range mask[j] {
					if g.adjBits[li][w]&bits != 0 {
						conflict = true
						break
					}
				}
				if conflict {
					break
				}
			}
			g.apConflict[i][j] = conflict
		}
	}
}

// corrupts reports whether link a's exchange breaks any part of link b's:
// a's data or ACK transmission corrupting b's data reception (at b.Receiver)
// or b's ACK reception (at b.Sender).
func (g *ConflictGraph) corrupts(a, b *Link) bool {
	for _, interferer := range []phy.NodeID{a.Sender, a.Receiver} {
		if g.breaks(interferer, b.Sender, b.Receiver) || // b's data
			g.breaks(interferer, b.Receiver, b.Sender) { // b's ACK
			return true
		}
	}
	return false
}

// ConflictMarginDB is the scheduling safety margin: concurrency requires the
// pairwise SINR to clear the decode threshold by this much. The conflict
// graph is pairwise, but a slot may hold several concurrent exchanges whose
// interference adds; the margin absorbs the aggregate of a few comparable
// interferers (3 dB covers two equal ones, and weaker tails).
const ConflictMarginDB = 3

// breaks reports whether a transmission from interferer drags the src→dst
// SINR below the rate threshold plus the scheduling margin.
func (g *ConflictGraph) breaks(interferer, src, dst phy.NodeID) bool {
	if interferer == src || interferer == dst {
		return false // shared-node conflicts are handled separately
	}
	signal := g.Net.RSS[src][dst]
	interfMw := phy.DBmToMw(g.Net.RSS[interferer][dst]) + phy.DBmToMw(g.cfg.NoiseDBm)
	sinr := signal - phy.MwToDBm(interfMw)
	return sinr < phy.SNRThresholdDB(g.rate)+ConflictMarginDB
}

// Rate returns the data rate the graph was computed for.
func (g *ConflictGraph) Rate() phy.Rate { return g.rate }

// Conflicts reports whether links a and b (by ID) may not share a slot.
func (g *ConflictGraph) Conflicts(a, b int) bool { return g.adj[a][b] }

// Degree returns the number of links conflicting with link id.
func (g *ConflictGraph) Degree(id int) int {
	d := 0
	for _, c := range g.adj[id] {
		if c {
			d++
		}
	}
	return d
}

// SendersHear reports whether the two links' senders are within carrier-sense
// range of each other (in either direction — carrier sensing is energy
// detection, so the stronger direction governs).
func (g *ConflictGraph) SendersHear(a, b int) bool {
	la, lb := g.Links[a], g.Links[b]
	return g.Net.RSS[la.Sender][lb.Sender] >= g.cfg.CSThreshDBm ||
		g.Net.RSS[lb.Sender][la.Sender] >= g.cfg.CSThreshDBm
}

// Hidden reports whether links a and b form a hidden pair: they conflict but
// their senders cannot sense each other, so DCF collides them.
func (g *ConflictGraph) Hidden(a, b int) bool {
	if a == b || g.Links[a].Shares(g.Links[b]) {
		return false
	}
	return g.adj[a][b] && !g.SendersHear(a, b)
}

// Exposed reports whether links a and b form an exposed pair: they could
// transmit concurrently, but their senders sense each other, so DCF
// serialises them needlessly.
func (g *ConflictGraph) Exposed(a, b int) bool {
	if a == b || g.Links[a].Shares(g.Links[b]) {
		return false
	}
	return !g.adj[a][b] && g.SendersHear(a, b)
}

// CountHiddenExposed tallies hidden and exposed pairs over all unordered link
// pairs, the statistic the paper reports for T(10,2) ("10 hidden link pairs
// and 62 exposed link pairs out of 720 possible link pairs").
func (g *ConflictGraph) CountHiddenExposed() (hidden, exposed, total int) {
	n := len(g.Links)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total++
			if g.Hidden(i, j) {
				hidden++
			}
			if g.Exposed(i, j) {
				exposed++
			}
		}
	}
	return
}

// TriggerFloorDBm is the weakest RSS at which the server plans a signature
// trigger. The 127-chip Gold correlator works ~21 dB below the data decode
// threshold, but the planner stays conservative and requires the signature to
// arrive above the noise floor with margin.
const TriggerFloorDBm = -90

// CanTriggerNode reports whether link l can trigger node n: the signature
// sent by l's sender or receiver reaches n (paper §3.3 definition).
func (g *ConflictGraph) CanTriggerNode(l *Link, n phy.NodeID) bool {
	if l.Sender == n || l.Receiver == n {
		return true
	}
	return g.Net.RSS[l.Sender][n] >= TriggerFloorDBm ||
		g.Net.RSS[l.Receiver][n] >= TriggerFloorDBm
}

// CanTrigger reports whether link a can trigger link b, i.e. can trigger b's
// sender.
func (g *ConflictGraph) CanTrigger(a, b *Link) bool {
	return g.CanTriggerNode(a, b.Sender)
}

// TriggerSNR returns the better of the two signature paths (sender→n,
// receiver→n) in dB above noise, used to rank candidate triggers ("select one
// node n in si such that n has the highest SNR at l.sender").
func (g *ConflictGraph) TriggerSNR(l *Link, n phy.NodeID) float64 {
	s := g.Net.RSS[l.Sender][n]
	r := g.Net.RSS[l.Receiver][n]
	return math.Max(s, r) - g.cfg.NoiseDBm
}

// APConflict reports whether any link of ap1 conflicts with any link of ap2,
// the condition under which two APs may NOT share an ROP slot (paper §3.3).
func (g *ConflictGraph) APConflict(ap1, ap2 phy.NodeID) bool {
	i, ok1 := g.apIndex[ap1]
	j, ok2 := g.apIndex[ap2]
	if !ok1 || !ok2 {
		return false // an AP with no links conflicts with nothing
	}
	return g.apConflict[i][j]
}

// MaximalIndependentSet greedily grows an independent set containing the seed
// links (which must themselves be independent), considering candidates in the
// given order. It returns link IDs. This implements both the RAND scheduler's
// slot construction and the converter's fake-link maximal cover.
func (g *ConflictGraph) MaximalIndependentSet(seed []int, order []int) []int {
	return g.MaximalIndependentSetInto(nil, nil, seed, order)
}

// MaximalIndependentSetInto is MaximalIndependentSet with caller-provided
// scratch: set receives the result (reset to set[:0]) and blocked must hold
// at least (len(Links)+63)/64 words (nil allocates). The greedy outcome is
// identical to MaximalIndependentSet; the bitset just replaces the
// candidate-vs-set rescan with one word test per candidate.
func (g *ConflictGraph) MaximalIndependentSetInto(set []int, blocked []uint64, seed []int, order []int) []int {
	if blocked == nil {
		blocked = make([]uint64, g.adjWords)
	} else {
		blocked = blocked[:g.adjWords]
		for i := range blocked {
			blocked[i] = 0
		}
	}
	set = append(set[:0], seed...)
	for _, s := range set {
		blocked[s>>6] |= 1 << (uint(s) & 63)
		for w, bits := range g.adjBits[s] {
			blocked[w] |= bits
		}
	}
	for _, cand := range order {
		if blocked[cand>>6]&(1<<(uint(cand)&63)) != 0 {
			continue
		}
		set = append(set, cand)
		blocked[cand>>6] |= 1 << (uint(cand) & 63)
		for w, bits := range g.adjBits[cand] {
			blocked[w] |= bits
		}
	}
	return set
}
