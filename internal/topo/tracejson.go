package topo

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceJSON is the on-disk form of a Trace: a dense RSS matrix in dBm plus
// optional positions in metres. Real measured interference maps (the paper's
// 40-node testbed trace) can be imported this way.
type traceJSON struct {
	RSS [][]float64 `json:"rss_dbm"`
	Pos []Point     `json:"pos_m,omitempty"`
}

// WriteJSON serialises the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceJSON{RSS: t.RSS, Pos: t.Pos})
}

// ReadTraceJSON parses a trace and validates its shape: a square, symmetric
// (within 0.5 dB) matrix with plausible dBm values.
func ReadTraceJSON(r io.Reader) (*Trace, error) {
	var tj traceJSON
	if err := json.NewDecoder(r).Decode(&tj); err != nil {
		return nil, fmt.Errorf("topo: parsing trace: %w", err)
	}
	n := len(tj.RSS)
	if n == 0 {
		return nil, fmt.Errorf("topo: empty trace")
	}
	for i, row := range tj.RSS {
		if len(row) != n {
			return nil, fmt.Errorf("topo: trace row %d has %d entries, want %d", i, len(row), n)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := tj.RSS[i][j] - tj.RSS[j][i]
			if d > 0.5 || d < -0.5 {
				return nil, fmt.Errorf("topo: trace asymmetric at (%d,%d): %.1f vs %.1f",
					i, j, tj.RSS[i][j], tj.RSS[j][i])
			}
			if tj.RSS[i][j] > 0 || tj.RSS[i][j] < -200 {
				return nil, fmt.Errorf("topo: implausible RSS %.1f dBm at (%d,%d)", tj.RSS[i][j], i, j)
			}
		}
	}
	if tj.Pos != nil && len(tj.Pos) != n {
		return nil, fmt.Errorf("topo: %d positions for %d nodes", len(tj.Pos), n)
	}
	return &Trace{RSS: tj.RSS, Pos: tj.Pos}, nil
}
