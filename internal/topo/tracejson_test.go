package topo

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceJSONRoundtrip(t *testing.T) {
	tr := CampusTrace(3)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.RSS) != len(tr.RSS) || len(got.Pos) != len(tr.Pos) {
		t.Fatalf("shape changed: %d/%d", len(got.RSS), len(got.Pos))
	}
	for i := range tr.RSS {
		for j := range tr.RSS[i] {
			if got.RSS[i][j] != tr.RSS[i][j] {
				t.Fatalf("RSS[%d][%d] changed", i, j)
			}
		}
	}
}

func TestTraceJSONValidation(t *testing.T) {
	cases := map[string]string{
		"empty":       `{"rss_dbm": []}`,
		"ragged":      `{"rss_dbm": [[0,-60],[-60]]}`,
		"asymmetric":  `{"rss_dbm": [[0,-60],[-70,0]]}`,
		"implausible": `{"rss_dbm": [[0,42],[42,0]]}`,
		"posMismatch": `{"rss_dbm": [[0,-60],[-60,0]], "pos_m": [{"X":0,"Y":0}]}`,
		"garbage":     `not json`,
	}
	for name, in := range cases {
		if _, err := ReadTraceJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted invalid trace", name)
		}
	}
	ok := `{"rss_dbm": [[0,-60],[-60,0]]}`
	if _, err := ReadTraceJSON(strings.NewReader(ok)); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}
