package topo

import "repro/internal/phy"

// This file hand-specifies the small topologies the paper draws as figures.
// RSS values are chosen so that, under the default phy configuration
// (noise -94 dBm, carrier-sense threshold -85 dBm, 12 Mbps threshold 7 dB),
// the hidden/exposed/conflict relations stated in the paper hold; the topo
// tests assert each relation explicitly.
//
// Levels used:
//
//	-60 dBm  AP–client link (strong)
//	-64 dBm  corrupting interference (drags a -60 dBm signal to ~4 dB SINR)
//	-75 dBm  carrier-sense coupling between senders: well above the -85 dBm
//	         CS threshold, yet ~15 dB below the signal so exchanges stay
//	         decodable (with margin) even when three or four such couplings
//	         interfere at once
//	-80 dBm  trigger-only reachability (senses, detects signatures, does not
//	         corrupt a -60 dBm signal)
//	-95 dBm  out of range (below noise floor)
const (
	lvlLink    = -60
	lvlCorrupt = -64
	lvlSense   = -75
	lvlTrigger = -80
	lvlFar     = -95
)

type rssEntry struct {
	a, b int
	dbm  float64
}

// symRSS builds a symmetric matrix with the given default off-diagonal level
// and explicit overrides.
func symRSS(n int, def float64, entries ...rssEntry) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = def
			}
		}
	}
	for _, e := range entries {
		m[e.a][e.b] = e.dbm
		m[e.b][e.a] = e.dbm
	}
	return m
}

// pairNetwork builds a Network of numPairs AP–client pairs where node 2i is
// AP_i and node 2i+1 is its client C_i, over the given RSS matrix.
func pairNetwork(numPairs int, rss [][]float64) *Network {
	n := &Network{RSS: rss}
	for i := 0; i < numPairs; i++ {
		ap := phy.NodeID(2 * i)
		n.IsAP = append(n.IsAP, true, false)
		n.APOf = append(n.APOf, ap, ap)
		n.APs = append(n.APs, ap)
	}
	return n
}

// Figure1 is the motivating 3-pair network of paper Fig 1: AP1 and AP3 are
// hidden terminals (AP1's transmissions corrupt C3), while C2 and AP1 are
// exposed to each other. Node IDs: AP1=0 C1=1 AP2=2 C2=3 AP3=4 C3=5. The
// evaluated flows are AP1→C1 (down), C2→AP2 (up), AP3→C3 (down).
func Figure1() *Network {
	const (
		ap1, c1, ap2, c2, ap3, c3 = 0, 1, 2, 3, 4, 5
	)
	rss := symRSS(6, lvlFar,
		rssEntry{ap1, c1, lvlLink},
		rssEntry{ap2, c2, lvlLink},
		rssEntry{ap3, c3, lvlLink},
		// C2 and AP1 hear each other (exposed pair) but do not corrupt each
		// other's receivers.
		rssEntry{ap1, c2, lvlSense},
		rssEntry{ap1, ap2, lvlSense},
		rssEntry{c2, c1, lvlTrigger},
		// AP1 corrupts C3; AP3 barely registers at C1. AP1 and AP3 stay out
		// of carrier-sense range: the hidden pair.
		rssEntry{ap1, c3, lvlCorrupt},
		rssEntry{ap3, c1, -90},
	)
	return pairNetwork(3, rss)
}

// Figure1Links returns the three flows of Fig 1 in presentation order:
// AP1→C1, C2→AP2, AP3→C3.
func Figure1Links(n *Network) []*Link {
	links := []*Link{
		{Sender: 0, Receiver: 1, AP: 0, Downlink: true},
		{Sender: 3, Receiver: 2, AP: 2, Downlink: false},
		{Sender: 4, Receiver: 5, AP: 4, Downlink: true},
	}
	for i, l := range links {
		l.ID = i
	}
	return links
}

// Figure7 is the 4-pair network of paper Fig 7 used for the relative-
// scheduling walk-through and the Fig 10 microscope timeline. Node IDs:
// AP1=0 C1=1 AP2=2 C2=3 AP3=4 C3=5 AP4=6 C4=7.
//
// Relations built in:
//   - AP1→C1 conflicts with AP2→C2 (senders hear each other),
//     C1→AP1 conflicts with C2→AP2 (hidden: C1, C2 out of range).
//   - AP3→C3 conflicts with AP4→C4 and AP3/AP4 are hidden terminals.
//   - AP2 and AP3 both reach AP1 (their signals collide at AP1, §3.2).
//   - Chains {AP1,AP2} and {AP3,AP4} do not conflict across, so slots pair
//     one link from each chain, as in Fig 7(c).
//   - Trigger-only reachability (-80 dBm) ties neighbouring pairs together
//     so the converter can build cross-chain backup triggers.
func Figure7() *Network {
	const (
		ap1, c1, ap2, c2, ap3, c3, ap4, c4 = 0, 1, 2, 3, 4, 5, 6, 7
	)
	rss := symRSS(8, lvlFar,
		rssEntry{ap1, c1, lvlLink},
		rssEntry{ap2, c2, lvlLink},
		rssEntry{ap3, c3, lvlLink},
		rssEntry{ap4, c4, lvlLink},
		// Pair 1–2: mutual conflict with carrier sense between APs.
		rssEntry{ap1, ap2, lvlSense},
		rssEntry{ap2, c1, lvlCorrupt},
		rssEntry{ap1, c2, lvlCorrupt},
		// Uplink conflict, hidden at the clients: C2 corrupts at AP1, C1
		// corrupts at AP2, C1/C2 cannot hear each other (default far).
		rssEntry{c2, ap1, lvlCorrupt},
		rssEntry{c1, ap2, lvlCorrupt},
		// Pair 3–4: hidden terminals. APs out of range of each other but
		// each corrupts the other's client.
		rssEntry{ap3, c4, lvlCorrupt},
		rssEntry{ap4, c3, lvlCorrupt},
		rssEntry{c3, ap4, lvlCorrupt},
		rssEntry{c4, ap3, lvlTrigger},
		// AP2 and AP3 both reach AP1 (collision of their signals at AP1).
		rssEntry{ap3, ap1, lvlSense},
		// Trigger connectivity between the two chains.
		rssEntry{ap2, ap3, lvlTrigger},
		rssEntry{c2, ap3, lvlTrigger},
		rssEntry{c2, c3, lvlTrigger},
		rssEntry{c1, c4, lvlTrigger},
		rssEntry{ap1, ap4, lvlTrigger},
	)
	return pairNetwork(4, rss)
}

// Figure13a is the topology of paper Fig 13(a): four AP–client links all
// mutually exposed — every AP senses every other AP, no link conflicts with
// any other. CENTAUR and DOMINO both schedule all four concurrently.
func Figure13a() *Network {
	rss := symRSS(8, lvlFar,
		rssEntry{0, 1, lvlLink}, rssEntry{2, 3, lvlLink},
		rssEntry{4, 5, lvlLink}, rssEntry{6, 7, lvlLink},
		// All APs within carrier-sense range of each other.
		rssEntry{0, 2, lvlSense}, rssEntry{0, 4, lvlSense}, rssEntry{0, 6, lvlSense},
		rssEntry{2, 4, lvlSense}, rssEntry{2, 6, lvlSense}, rssEntry{4, 6, lvlSense},
	)
	return pairNetwork(4, rss)
}

// Figure13b is the topology of paper Fig 13(b): AP1, AP2, AP3 are out of
// range of each other, but each shares an exposed relationship with AP4. No
// links conflict, yet CENTAUR's carrier-sense batch alignment collapses:
// AP1–AP3 finish their batch early while AP4 defers to all of them, and the
// next batch cannot start until AP4 drains (paper §4.2.3).
func Figure13b() *Network {
	rss := symRSS(8, lvlFar,
		rssEntry{0, 1, lvlLink}, rssEntry{2, 3, lvlLink},
		rssEntry{4, 5, lvlLink}, rssEntry{6, 7, lvlLink},
		// Only AP4 (node 6) senses the others.
		rssEntry{0, 6, lvlSense}, rssEntry{2, 6, lvlSense}, rssEntry{4, 6, lvlSense},
	)
	return pairNetwork(4, rss)
}

// TwoPairScenario identifies the three USRP prototype placements of paper
// Table 2.
type TwoPairScenario int

const (
	// SameContention: both links in one contention domain, neither hidden
	// nor exposed (they genuinely conflict and sense each other).
	SameContention TwoPairScenario = iota
	// HiddenTerminals: the links conflict but the senders cannot sense each
	// other.
	HiddenTerminals
	// ExposedTerminals: the links do not conflict but the senders sense each
	// other.
	ExposedTerminals
)

// String names the scenario as the paper's column heading.
func (s TwoPairScenario) String() string {
	switch s {
	case SameContention:
		return "SC"
	case HiddenTerminals:
		return "HT"
	case ExposedTerminals:
		return "ET"
	default:
		return "?"
	}
}

// TwoPairs builds the 2-link topology for one Table 2 scenario. Node IDs:
// AP1=0 C1=1 AP2=2 C2=3; flows AP1→C1 and AP2→C2.
func TwoPairs(s TwoPairScenario) *Network {
	base := []rssEntry{{0, 1, lvlLink}, {2, 3, lvlLink}}
	var extra []rssEntry
	switch s {
	case SameContention:
		// Everything hears everything: one contention domain, links conflict.
		extra = []rssEntry{
			{0, 2, lvlSense}, {0, 3, lvlCorrupt}, {1, 2, lvlCorrupt}, {1, 3, lvlSense},
		}
	case HiddenTerminals:
		// Senders out of range; each corrupts the other's receiver.
		extra = []rssEntry{
			{0, 3, lvlCorrupt}, {2, 1, lvlCorrupt},
		}
	case ExposedTerminals:
		// Senders sense each other; receivers are clear.
		extra = []rssEntry{
			{0, 2, lvlSense},
		}
	}
	return pairNetwork(2, symRSS(4, lvlFar, append(base, extra...)...))
}
