package topo

import (
	"math/rand"
	"testing"

	"repro/internal/phy"
)

func defaultGraph(t *testing.T, n *Network, down, up bool) *ConflictGraph {
	t.Helper()
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid network: %v", err)
	}
	links := n.BuildLinks(down, up)
	return NewConflictGraph(n, links, phy.DefaultConfig(), phy.Rate12)
}

func findLink(t *testing.T, g *ConflictGraph, sender, receiver phy.NodeID) *Link {
	t.Helper()
	for _, l := range g.Links {
		if l.Sender == sender && l.Receiver == receiver {
			return l
		}
	}
	t.Fatalf("no link %d→%d", sender, receiver)
	return nil
}

func TestNetworkValidate(t *testing.T) {
	n := Figure1()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// Break the association.
	n.APOf[1] = 1
	if err := n.Validate(); err == nil {
		t.Fatal("client associated with non-AP passed validation")
	}
}

func TestClientsAndLinks(t *testing.T) {
	n := Figure7()
	for _, ap := range n.APs {
		cs := n.Clients(ap)
		if len(cs) != 1 || cs[0] != ap+1 {
			t.Fatalf("Clients(%d) = %v", ap, cs)
		}
	}
	both := n.BuildLinks(true, true)
	if len(both) != 8 {
		t.Fatalf("links = %d, want 8", len(both))
	}
	for i, l := range both {
		if l.ID != i {
			t.Errorf("link %d has ID %d", i, l.ID)
		}
		if l.Downlink && (l.Sender != l.AP || !n.IsAP[l.Sender]) {
			t.Errorf("downlink %v malformed", l)
		}
		if !l.Downlink && (l.Receiver != l.AP || n.IsAP[l.Sender]) {
			t.Errorf("uplink %v malformed", l)
		}
	}
	down := n.BuildLinks(true, false)
	if len(down) != 4 {
		t.Fatalf("downlinks = %d", len(down))
	}
}

func TestLinkStringAndShares(t *testing.T) {
	a := &Link{Sender: 0, Receiver: 1, AP: 0, Downlink: true}
	b := &Link{Sender: 1, Receiver: 0, AP: 0, Downlink: false}
	c := &Link{Sender: 2, Receiver: 3, AP: 2, Downlink: true}
	if a.String() != "AP0→C1" || b.String() != "C1→AP0" {
		t.Errorf("String: %q, %q", a.String(), b.String())
	}
	if !a.Shares(b) || a.Shares(c) {
		t.Error("Shares misclassifies")
	}
}

// TestFigure1Relations pins the relations the paper states for Fig 1: AP1 and
// AP3 are hidden terminals; C2 and AP1 are exposed; C2→AP2 conflicts with
// nothing.
func TestFigure1Relations(t *testing.T) {
	n := Figure1()
	links := Figure1Links(n)
	g := NewConflictGraph(n, links, phy.DefaultConfig(), phy.Rate12)
	d1, u2, d3 := 0, 1, 2

	if !g.Conflicts(d1, d3) {
		t.Error("AP1→C1 and AP3→C3 must conflict")
	}
	if !g.Hidden(d1, d3) {
		t.Error("AP1/AP3 must be a hidden pair")
	}
	if g.Conflicts(d1, u2) {
		t.Error("AP1→C1 and C2→AP2 must not conflict")
	}
	if !g.Exposed(d1, u2) {
		t.Error("AP1 and C2 must be an exposed pair")
	}
	if g.Conflicts(u2, d3) || g.Exposed(u2, d3) || g.Hidden(u2, d3) {
		t.Error("C2→AP2 and AP3→C3 must be independent")
	}
	// Degrees: the omniscient schedule alternates d1/d3 with u2 always on.
	if g.Degree(u2) != 0 || g.Degree(d1) != 1 || g.Degree(d3) != 1 {
		t.Errorf("degrees = %d,%d,%d", g.Degree(d1), g.Degree(u2), g.Degree(d3))
	}
}

// TestFigure7Relations pins the relations of Fig 7: downlink conflicts
// {1,2} and {3,4}, AP3/AP4 hidden, cross-chain slots compatible.
func TestFigure7Relations(t *testing.T) {
	n := Figure7()
	g := defaultGraph(t, n, true, true)
	d := func(pair int) int { // downlink of pair i (1-based)
		return findLink(t, g, phy.NodeID(2*(pair-1)), phy.NodeID(2*(pair-1)+1)).ID
	}
	u := func(pair int) int {
		return findLink(t, g, phy.NodeID(2*(pair-1)+1), phy.NodeID(2*(pair-1))).ID
	}

	if !g.Conflicts(d(1), d(2)) || !g.Conflicts(d(3), d(4)) {
		t.Error("intra-chain downlinks must conflict")
	}
	if g.Conflicts(d(1), d(4)) || g.Conflicts(d(2), d(3)) {
		t.Error("cross-chain downlinks must be schedulable together (Fig 7c)")
	}
	if !g.Hidden(d(3), d(4)) {
		t.Error("AP3/AP4 must be hidden")
	}
	if g.Hidden(d(1), d(2)) {
		t.Error("AP1/AP2 conflict but sense each other: not hidden")
	}
	if !g.Hidden(u(1), u(2)) {
		t.Error("C1/C2 uplinks must be hidden")
	}
	if !g.Conflicts(u(3), u(4)) {
		t.Error("uplinks of pairs 3,4 must conflict")
	}
	// Down and up of the same pair share nodes: conflict by definition.
	for p := 1; p <= 4; p++ {
		if !g.Conflicts(d(p), u(p)) {
			t.Errorf("pair %d up/down must conflict", p)
		}
	}
}

func TestFigure13Relations(t *testing.T) {
	a := Figure13a()
	ga := defaultGraph(t, a, true, false)
	if len(ga.Links) != 4 {
		t.Fatalf("13a links = %d", len(ga.Links))
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if ga.Conflicts(i, j) {
				t.Errorf("13a: links %d,%d conflict", i, j)
			}
			if !ga.Exposed(i, j) {
				t.Errorf("13a: links %d,%d not exposed", i, j)
			}
		}
	}

	b := Figure13b()
	gb := defaultGraph(t, b, true, false)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if gb.Conflicts(i, j) {
				t.Errorf("13b: links %d,%d conflict", i, j)
			}
		}
	}
	// Only AP4's link is exposed to the others; AP1–AP3 are mutually
	// independent and cannot sense each other.
	l4 := findLink(t, gb, 6, 7).ID
	for i := 0; i < 4; i++ {
		if i == l4 {
			continue
		}
		if !gb.Exposed(i, l4) {
			t.Errorf("13b: link %d should be exposed with AP4's", i)
		}
		for j := i + 1; j < 4; j++ {
			if j == l4 {
				continue
			}
			if gb.SendersHear(i, j) {
				t.Errorf("13b: AP%d and AP%d must not sense each other", i, j)
			}
		}
	}
}

func TestTwoPairScenarios(t *testing.T) {
	for _, s := range []TwoPairScenario{SameContention, HiddenTerminals, ExposedTerminals} {
		n := TwoPairs(s)
		g := defaultGraph(t, n, true, false)
		if len(g.Links) != 2 {
			t.Fatalf("%v: %d links", s, len(g.Links))
		}
		conf, hear := g.Conflicts(0, 1), g.SendersHear(0, 1)
		switch s {
		case SameContention:
			if !conf || !hear {
				t.Errorf("SC: conflict=%v hear=%v, want true,true", conf, hear)
			}
		case HiddenTerminals:
			if !conf || hear {
				t.Errorf("HT: conflict=%v hear=%v, want true,false", conf, hear)
			}
			if !g.Hidden(0, 1) {
				t.Error("HT: not classified hidden")
			}
		case ExposedTerminals:
			if conf || !hear {
				t.Errorf("ET: conflict=%v hear=%v, want false,true", conf, hear)
			}
			if !g.Exposed(0, 1) {
				t.Error("ET: not classified exposed")
			}
		}
	}
	if SameContention.String() != "SC" || HiddenTerminals.String() != "HT" ||
		ExposedTerminals.String() != "ET" || TwoPairScenario(9).String() != "?" {
		t.Error("scenario names wrong")
	}
}

func TestMaximalIndependentSet(t *testing.T) {
	n := Figure7()
	g := defaultGraph(t, n, true, false) // 4 downlinks: conflicts {0,1},{2,3}
	order := []int{0, 1, 2, 3}
	set := g.MaximalIndependentSet(nil, order)
	if len(set) != 2 {
		t.Fatalf("MIS = %v", set)
	}
	// Verify independence.
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if g.Conflicts(set[i], set[j]) {
				t.Fatalf("MIS %v not independent", set)
			}
		}
	}
	// Seeded version keeps the seed.
	set2 := g.MaximalIndependentSet([]int{1}, order)
	if set2[0] != 1 {
		t.Fatalf("seed dropped: %v", set2)
	}
	for _, id := range set2[1:] {
		if g.Conflicts(id, 1) {
			t.Fatalf("seeded MIS %v conflicts with seed", set2)
		}
	}
	// Maximality: no remaining link can be added.
	for _, cand := range order {
		in := false
		for _, s := range set {
			if s == cand {
				in = true
			}
		}
		if in {
			continue
		}
		ok := true
		for _, s := range set {
			if g.Conflicts(cand, s) {
				ok = false
			}
		}
		if ok {
			t.Fatalf("MIS %v not maximal: %d fits", set, cand)
		}
	}
}

func TestCanTrigger(t *testing.T) {
	n := Figure7()
	g := defaultGraph(t, n, true, true)
	d4 := findLink(t, g, 6, 7) // AP4→C4
	// Fig 10 point 1: the receiver C4 triggers AP3 (C4↔AP3 at trigger level).
	if !g.CanTriggerNode(d4, 4) {
		t.Error("AP4→C4 must be able to trigger AP3 via its receiver C4")
	}
	// A link always triggers its own endpoints.
	if !g.CanTriggerNode(d4, 6) || !g.CanTriggerNode(d4, 7) {
		t.Error("link must trigger its own endpoints")
	}
	// Distant node: AP4→C4 cannot trigger C2 (=3)? C2 couples to chain 2 via
	// AP3/C3 only.
	if g.CanTriggerNode(d4, 3) {
		t.Error("AP4→C4 should not reach C2")
	}
	// TriggerSNR picks the better endpoint.
	snr := g.TriggerSNR(d4, 4)
	if want := float64(-80 - (-94)); snr != want {
		t.Errorf("TriggerSNR = %v, want %v", snr, want)
	}
}

func TestAPConflict(t *testing.T) {
	n := Figure7()
	g := defaultGraph(t, n, true, true)
	if !g.APConflict(0, 2) {
		t.Error("AP1 and AP2 have conflicting links")
	}
	if g.APConflict(0, 6) {
		t.Error("AP1 and AP4 should be ROP-compatible")
	}
}

func TestCampusTraceShape(t *testing.T) {
	tr := CampusTrace(7)
	if len(tr.RSS) != 40 || len(tr.Pos) != 40 {
		t.Fatalf("trace has %d nodes", len(tr.RSS))
	}
	// Symmetry and plausible range.
	for i := range tr.RSS {
		for j := range tr.RSS {
			if tr.RSS[i][j] != tr.RSS[j][i] {
				t.Fatalf("asymmetric RSS at %d,%d", i, j)
			}
			if i != j && (tr.RSS[i][j] > -10 || tr.RSS[i][j] < -160) {
				t.Fatalf("implausible RSS %v", tr.RSS[i][j])
			}
		}
	}
	// Two buildings: cross-building links are much weaker on average.
	var in, cross float64
	var nIn, nCross int
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			if (i < 20) == (j < 20) {
				in += tr.RSS[i][j]
				nIn++
			} else {
				cross += tr.RSS[i][j]
				nCross++
			}
		}
	}
	if in/float64(nIn) <= cross/float64(nCross)+10 {
		t.Errorf("wall loss not visible: in=%.1f cross=%.1f", in/float64(nIn), cross/float64(nCross))
	}
	// Determinism.
	tr2 := CampusTrace(7)
	if tr2.RSS[3][17] != tr.RSS[3][17] {
		t.Error("trace not reproducible from seed")
	}
}

// TestCampusTraceRSSDiff checks the statistic ROP's guard-band design relies
// on (paper §3.1): only a tiny fraction of same-receiver link pairs differ by
// more than 38 dB (the paper's trace: 0.54%).
func TestCampusTraceRSSDiff(t *testing.T) {
	tr := CampusTrace(7)
	ratio := RSSDiffExceedRatio(tr.RSS, 38, -94)
	if ratio > 0.05 {
		t.Errorf("RSS>38dB pair ratio = %.4f, want small (paper: 0.0054)", ratio)
	}
	if RSSDiffExceedRatio(tr.RSS, 0, -94) <= ratio {
		t.Error("threshold 0 must exceed threshold 38 ratio")
	}
	if got := RSSDiffExceedRatio(nil, 38, -94); got != 0 {
		t.Errorf("empty trace ratio = %v", got)
	}
}

func TestBuildT(t *testing.T) {
	tr := CampusTrace(7)
	rng := rand.New(rand.NewSource(3))
	net, err := BuildT(tr, 10, 2, phy.DefaultConfig(), phy.Rate12, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(net.APs) != 10 || net.NumNodes() != 30 {
		t.Fatalf("T(10,2): %d APs, %d nodes", len(net.APs), net.NumNodes())
	}
	// Every client must be in communication range of its AP.
	for id := 0; id < net.NumNodes(); id++ {
		if net.IsAP[id] {
			continue
		}
		ap := net.APOf[id]
		if net.RSS[ap][id] < AssocFloorDBm {
			t.Errorf("client %d out of range of AP %d (RSS %.1f)", id, ap, net.RSS[ap][id])
		}
	}
	// Exhausting the trace errors cleanly.
	if _, err := BuildT(tr, 100, 2, phy.DefaultConfig(), phy.Rate12, rng); err == nil {
		t.Error("oversubscribed BuildT should fail")
	}
}

func TestBuildTHiddenExposedStatistics(t *testing.T) {
	// The paper's T(10,2) has 10 hidden and 62 exposed of 720 pairs. Exact
	// counts depend on the trace; assert the same order of magnitude.
	tr := CampusTrace(7)
	rng := rand.New(rand.NewSource(3))
	net, err := BuildT(tr, 10, 2, phy.DefaultConfig(), phy.Rate12, rng)
	if err != nil {
		t.Fatal(err)
	}
	links := net.BuildLinks(true, true)
	if len(links) != 40 {
		t.Fatalf("links = %d", len(links))
	}
	g := NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	h, e, total := g.CountHiddenExposed()
	if total != 40*39/2 {
		t.Fatalf("total pairs = %d", total)
	}
	t.Logf("T(10,2): %d hidden, %d exposed of %d pairs", h, e, total)
	if h == 0 {
		t.Error("expected some hidden pairs in a two-building trace")
	}
	if e == 0 {
		t.Error("expected some exposed pairs")
	}
}

func TestRandomTrace(t *testing.T) {
	tr := RandomTrace(11, 110, 800)
	if len(tr.RSS) != 110 {
		t.Fatalf("nodes = %d", len(tr.RSS))
	}
	for _, p := range tr.Pos {
		if p.X < 0 || p.X > 800 || p.Y < 0 || p.Y > 800 {
			t.Fatalf("node outside area: %+v", p)
		}
	}
	// A T(20,3) — 80 selected nodes — must usually be constructible from a
	// 110-node placement (Fig 14 builds 50 of them, skipping infeasible
	// seeds).
	okCount := 0
	for seed := int64(0); seed < 10; seed++ {
		tr := RandomTrace(seed, 110, 800)
		rng := rand.New(rand.NewSource(seed))
		net, err := BuildT(tr, 20, 3, phy.DefaultConfig(), phy.Rate12, rng)
		if err != nil {
			continue
		}
		if net.NumNodes() != 80 {
			t.Fatalf("T(20,3) has %d nodes, want 80", net.NumNodes())
		}
		okCount++
	}
	if okCount < 5 {
		t.Errorf("only %d/10 random traces supported T(20,3)", okCount)
	}
}

func TestPathLossMonotone(t *testing.T) {
	m := OutdoorModel()
	prev := m.RSS(0.5)
	for _, d := range []float64{1, 2, 5, 10, 50, 100, 300} {
		cur := m.RSS(d)
		if cur > prev {
			t.Errorf("RSS increased with distance at %v m", d)
		}
		prev = cur
	}
	if m.RSS(0.1) != m.RSS(1) {
		t.Error("sub-metre distances must clamp to 1 m")
	}
}
