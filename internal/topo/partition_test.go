package topo

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/phy"
)

// naiveComponents is the reference implementation Components is property-
// tested against: plain DFS over the bool adjacency matrix.
func naiveComponents(adj [][]bool) [][]int {
	n := len(adj)
	visited := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		visited[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for j := 0; j < n; j++ {
				if adj[v][j] && !visited[j] {
					visited[j] = true
					stack = append(stack, j)
				}
			}
		}
		// Canonical form: sorted members (Components sorts too).
		for i := 1; i < len(comp); i++ {
			for k := i; k > 0 && comp[k] < comp[k-1]; k-- {
				comp[k], comp[k-1] = comp[k-1], comp[k]
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

func TestComponentsMatchesNaiveReference(t *testing.T) {
	graphs := []*ConflictGraph{
		defaultGraph(t, Figure1(), true, true),
		defaultGraph(t, Figure7(), true, false),
	}
	// Random placements across seeds: dense and sparse regimes.
	for seed := int64(0); seed < 8; seed++ {
		tr := RandomTrace(seed, 40, 600)
		rng := rand.New(rand.NewSource(seed))
		net, err := BuildT(tr, 6, 2, phy.DefaultConfig(), phy.Rate12, rng)
		if err != nil {
			continue
		}
		graphs = append(graphs, defaultGraph(t, net, true, true))
	}
	graphs = append(graphs, defaultGraph(t, GridCampus(3, 4, 3, 2), true, false))
	if len(graphs) < 5 {
		t.Fatalf("only %d sample graphs constructed", len(graphs))
	}
	for gi, g := range graphs {
		got := g.Components()
		want := naiveComponents(g.adj)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("graph %d (%d links): Components() = %v, want %v",
				gi, len(g.Links), got, want)
		}
		// Partition property: every link appears exactly once.
		seen := make([]bool, len(g.Links))
		for _, comp := range got {
			for _, id := range comp {
				if seen[id] {
					t.Fatalf("graph %d: link %d in two components", gi, id)
				}
				seen[id] = true
			}
		}
		for id, ok := range seen {
			if !ok {
				t.Fatalf("graph %d: link %d missing from components", gi, id)
			}
		}
	}
}

func TestPartitionGridCampus(t *testing.T) {
	net := GridCampus(1, 9, 4, 2)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(net.APs) != 36 || net.NumNodes() != 108 {
		t.Fatalf("campus shape: %d APs, %d nodes", len(net.APs), net.NumNodes())
	}
	g := defaultGraph(t, net, true, false)
	p := PartitionDomains(g, DefaultCutDBm)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Stats.Domains < 2 {
		t.Fatalf("campus did not partition: %+v", p.Stats)
	}
	if p.Stats.Domains != len(p.Domains) {
		t.Fatalf("stats/domains disagree: %d vs %d", p.Stats.Domains, len(p.Domains))
	}
	// Domains ordered by smallest AP; every conflict edge kept within a
	// domain must join APs of the same domain.
	for d := 1; d < len(p.Domains); d++ {
		if p.Domains[d-1].APs[0] >= p.Domains[d].APs[0] {
			t.Fatalf("domains out of order at %d", d)
		}
	}
	cross := 0
	for i := range g.Links {
		for j := i + 1; j < len(g.Links); j++ {
			if g.adj[i][j] && p.LinkDomain[i] != p.LinkDomain[j] {
				cross++
			}
		}
	}
	if cross != p.Stats.CrossLinkPairs {
		t.Fatalf("CrossLinkPairs = %d, recount = %d", p.Stats.CrossLinkPairs, cross)
	}
	t.Logf("campus partition: %+v", p.Stats)
}

func TestPartitionNoCutMatchesAPComponents(t *testing.T) {
	net := GridCampus(2, 4, 4, 2)
	g := defaultGraph(t, net, true, false)
	p := PartitionDomains(g, NoCutDBm)
	if p.Stats.CutEdges != 0 {
		t.Fatalf("NoCutDBm cut %d edges", p.Stats.CutEdges)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Reference: components of the AP conflict relation via naive DFS.
	aps := net.APs
	adj := make([][]bool, len(aps))
	for i := range adj {
		adj[i] = make([]bool, len(aps))
		for j := range aps {
			if i != j && g.APConflict(aps[i], aps[j]) {
				adj[i][j] = true
			}
		}
	}
	want := naiveComponents(adj)
	if len(want) != len(p.Domains) {
		t.Fatalf("domains = %d, naive AP components = %d", len(p.Domains), len(want))
	}
	for d, comp := range want {
		if len(comp) != len(p.Domains[d].APs) {
			t.Fatalf("domain %d size %d, want %d", d, len(p.Domains[d].APs), len(comp))
		}
		for k, apIdx := range comp {
			if aps[apIdx] != p.Domains[d].APs[k] {
				t.Fatalf("domain %d AP %d = %d, want %d", d, k, p.Domains[d].APs[k], aps[apIdx])
			}
		}
	}
}

// TestSubnetMonotoneRestriction pins the key sharding invariant: building
// links on an extracted subnet yields exactly the global link set restricted
// to the domain, in the same relative order, with endpoints related by the
// monotone node map.
func TestSubnetMonotoneRestriction(t *testing.T) {
	net := GridCampus(4, 6, 3, 2)
	g := defaultGraph(t, net, true, false)
	p := PartitionDomains(g, DefaultCutDBm)
	if len(p.Domains) < 2 {
		t.Fatalf("want a partitioned campus, got %d domains", len(p.Domains))
	}
	for d := range p.Domains {
		sub, nodeMap := p.Subnet(d)
		if err := sub.Validate(); err != nil {
			t.Fatalf("domain %d subnet invalid: %v", d, err)
		}
		for i := 1; i < len(nodeMap); i++ {
			if nodeMap[i-1] >= nodeMap[i] {
				t.Fatalf("domain %d node map not monotone at %d", d, i)
			}
		}
		subLinks := sub.BuildLinks(true, false)
		if len(subLinks) != len(p.Domains[d].Links) {
			t.Fatalf("domain %d: %d subnet links, want %d",
				d, len(subLinks), len(p.Domains[d].Links))
		}
		for i, sl := range subLinks {
			gl := g.Links[p.Domains[d].Links[i]]
			if nodeMap[sl.Sender] != gl.Sender || nodeMap[sl.Receiver] != gl.Receiver ||
				nodeMap[sl.AP] != gl.AP || sl.Downlink != gl.Downlink {
				t.Fatalf("domain %d link %d: subnet %v maps to %v/%v/%v, want %v",
					d, i, sl, nodeMap[sl.Sender], nodeMap[sl.Receiver], nodeMap[sl.AP], gl)
			}
		}
		// RSS restriction matches the global matrix.
		for i := range nodeMap {
			for j := range nodeMap {
				if i == j {
					continue
				}
				if sub.RSS[i][j] != net.RSS[nodeMap[i]][nodeMap[j]] {
					t.Fatalf("domain %d RSS[%d][%d] mismatch", d, i, j)
				}
			}
		}
	}
}

func TestGridCampusDeterminism(t *testing.T) {
	a := GridCampus(7, 4, 3, 2)
	b := GridCampus(7, 4, 3, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GridCampus not deterministic for equal seeds")
	}
	c := GridCampus(8, 4, 3, 2)
	if reflect.DeepEqual(a.RSS, c.RSS) {
		t.Fatal("GridCampus identical across different seeds")
	}
}
