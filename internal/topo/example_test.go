package topo_test

import (
	"fmt"
	"math/rand"

	"repro/internal/phy"
	"repro/internal/topo"
)

// ExampleBuildT selects the paper's default T(10,2) enterprise topology from
// the synthetic campus trace and classifies its link pairs.
func ExampleBuildT() {
	tr := topo.CampusTrace(7)
	rng := rand.New(rand.NewSource(3))
	net, err := topo.BuildT(tr, 10, 2, phy.DefaultConfig(), phy.Rate12, rng)
	if err != nil {
		panic(err)
	}
	links := net.BuildLinks(true, true)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	hidden, exposed, total := g.CountHiddenExposed()
	fmt.Printf("nodes: %d, links: %d\n", net.NumNodes(), len(links))
	fmt.Printf("hidden and exposed pairs exist: %v %v (of %d)\n", hidden > 0, exposed > 0, total)
	// Output:
	// nodes: 30, links: 40
	// hidden and exposed pairs exist: true true (of 780)
}
