// Package dcf implements the 802.11 Distributed Coordination Function — the
// paper's primary baseline: CSMA/CA with binary exponential backoff, DIFS
// deference, SIFS-separated ACKs and retransmission up to the retry limit.
// Hidden- and exposed-terminal behaviour is not coded here; it emerges from
// carrier sensing against the phy medium.
package dcf

import (
	"fmt"

	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Config collects DCF timing and contention parameters. Defaults follow
// 802.11g; the USRP prototype experiment (paper Table 2) inflates SlotTime
// and SIFS to model GNURadio host latency.
type Config struct {
	SlotTime sim.Time
	SIFS     sim.Time
	DIFS     sim.Time
	CWMin    int
	CWMax    int
	Rate     phy.Rate
	AckRate  phy.Rate
	QueueCap int
	// ExtraFrameTime inflates every data frame's air time (USRP host
	// latency); zero for real 802.11 hardware.
	ExtraFrameTime sim.Time
}

// DefaultConfig returns 802.11g parameters at the evaluation's 12 Mbps PHY
// rate.
func DefaultConfig() Config {
	return Config{
		SlotTime: phy.SlotTime,
		SIFS:     phy.SIFS,
		DIFS:     phy.DIFS,
		CWMin:    15,
		CWMax:    1023,
		Rate:     phy.Rate12,
		AckRate:  phy.Rate12,
		QueueCap: mac.DefaultQueueCap,
	}
}

// Engine runs DCF over a medium and a set of links. Construct with New, wire
// traffic in with Enqueue, call Start once.
type Engine struct {
	k      *sim.Kernel
	medium *phy.Medium
	links  []*topo.Link
	events mac.Events
	cfg    Config

	queues []*mac.Queue // by link ID
	nodes  map[phy.NodeID]*node

	// Counters mirrored from the paper's diagnostics (§4.2.3 reports ACK
	// timeout counts).
	AckTimeouts int
	Drops       int

	// Obs, when non-nil, receives backoff draws and ACK timeouts. Set it
	// before Start; nil (the default) costs one branch per emission site.
	Obs obs.Tracer
	// life, when non-nil, is the per-run packet-lifecycle sink (enqueue /
	// dequeue stamps and span assignment). Wired by WireObs.
	life *obs.Run
}

// EnableQueueSampling installs fn as the depth observer on every link queue,
// tagged with the link id (the observability layer's queue sampler).
func (e *Engine) EnableQueueSampling(fn func(link, depth int)) {
	for id, q := range e.queues {
		id := id
		q.OnDepth = func(depth int) { fn(id, depth) }
	}
}

type state int

const (
	stIdle state = iota
	stBackoff
	stTx
	stWaitAck
	stAcking
)

type node struct {
	e     *Engine
	id    phy.NodeID
	links []*topo.Link // links this node sends on

	st        state
	pending   *mac.Packet
	cw        int
	counter   int
	rr        int
	fireEv    sim.Event
	fireBase  sim.Time // when DIFS+counting began
	busySince sim.Time // when carrier sensing last turned busy
	nav       sim.Time // virtual carrier sense (protects overheard ACKs)
	timeoutEv sim.Event
}

// setNAV reserves the medium until t (802.11 virtual carrier sensing).
func (n *node) setNAV(t sim.Time) {
	if t <= n.nav {
		return
	}
	n.nav = t
	n.e.k.At(t, func() { n.tryScheduleFire() })
}

// New creates a DCF engine for the given links. Each distinct sender among
// the links becomes a contending node; every node named by any link is
// registered on the medium (receivers must ACK).
func New(k *sim.Kernel, medium *phy.Medium, links []*topo.Link, events mac.Events, cfg Config) *Engine {
	if events == nil {
		events = mac.NopEvents{}
	}
	e := &Engine{
		k: k, medium: medium, links: links, events: events, cfg: cfg,
		nodes: map[phy.NodeID]*node{},
	}
	e.queues = make([]*mac.Queue, len(links))
	for _, l := range links {
		if l.ID < 0 || l.ID >= len(links) {
			panic(fmt.Sprintf("dcf: link IDs must be dense, got %d", l.ID))
		}
		e.queues[l.ID] = mac.NewQueue(cfg.QueueCap)
	}
	addNode := func(id phy.NodeID) *node {
		n, ok := e.nodes[id]
		if !ok {
			n = &node{e: e, id: id, cw: cfg.CWMin}
			e.nodes[id] = n
			medium.Register(id, n)
		}
		return n
	}
	for _, l := range links {
		addNode(l.Sender).links = append(addNode(l.Sender).links, l)
		addNode(l.Receiver)
	}
	return e
}

// Start implements mac.Engine. DCF is purely reactive; nothing to arm.
func (e *Engine) Start() {}

// QueueLen implements mac.Engine.
func (e *Engine) QueueLen(link int) int { return e.queues[link].Len() }

// Enqueue implements mac.Engine.
func (e *Engine) Enqueue(p *mac.Packet) {
	if !e.queues[p.Link.ID].Push(p) {
		e.events.Dropped(p, e.k.Now())
		return
	}
	if e.life != nil {
		e.life.PacketQueued(p, e.k.Now())
	}
	n := e.nodes[p.Link.Sender]
	if n.st == stIdle {
		n.serveNext()
	}
}

// dataAirtime returns the on-air duration of a data frame.
func (e *Engine) dataAirtime(bytes int) sim.Time {
	return phy.Airtime(bytes, e.cfg.Rate) + e.cfg.ExtraFrameTime
}

func (e *Engine) ackAirtime() sim.Time {
	return phy.Airtime(phy.AckBytes, e.cfg.AckRate) + e.cfg.ExtraFrameTime
}

// serveNext picks the node's next packet round-robin over its backlogged
// links and begins contention.
func (n *node) serveNext() {
	if n.pending != nil || len(n.links) == 0 {
		return
	}
	for i := 0; i < len(n.links); i++ {
		l := n.links[(n.rr+i)%len(n.links)]
		if p := n.e.queues[l.ID].Pop(); p != nil {
			n.rr = (n.rr + i + 1) % len(n.links)
			if n.e.life != nil {
				n.e.life.PacketDequeued(p, n.e.k.Now())
			}
			n.pending = p
			n.startContention()
			return
		}
	}
	n.st = stIdle
}

// startContention draws a fresh backoff counter and begins counting down.
func (n *node) startContention() {
	n.counter = n.e.k.Rand().Intn(n.cw + 1)
	if n.e.Obs != nil {
		rec := obs.Rec(n.e.k.Now(), obs.KindBackoff)
		rec.Node = int(n.id)
		rec.Value = int64(n.counter)
		rec.Extra = int64(n.cw)
		rec.Parent = n.pending.Span
		n.e.Obs.Emit(rec)
	}
	n.st = stBackoff
	n.tryScheduleFire()
}

// tryScheduleFire arms the transmit event if the channel is idle; otherwise
// the node waits for CarrierChanged(false).
func (n *node) tryScheduleFire() {
	if n.st != stBackoff || n.fireEv.Scheduled() || n.e.medium.Busy(n.id) ||
		n.e.k.Now() < n.nav {
		return
	}
	n.fireBase = n.e.k.Now()
	wait := n.e.cfg.DIFS + sim.Time(n.counter)*n.e.cfg.SlotTime
	n.fireEv = n.e.k.After(wait, n.fire).SetSource(sim.SrcMAC)
}

// CarrierChanged implements phy.Listener: pause and resume backoff.
func (n *node) CarrierChanged(busy bool) {
	if busy {
		n.busySince = n.e.k.Now()
	}
	if n.st != stBackoff {
		return
	}
	if busy {
		// A fire due at this exact instant is committed: a station cannot
		// abort within its RX/TX turnaround, which is how two stations
		// drawing the same backoff slot genuinely collide.
		if n.fireEv.Scheduled() && n.fireEv.At() > n.e.k.Now() {
			elapsed := n.e.k.Now() - n.fireBase - n.e.cfg.DIFS
			if elapsed > 0 {
				consumed := int(elapsed / n.e.cfg.SlotTime)
				if consumed > n.counter {
					consumed = n.counter
				}
				n.counter -= consumed
			}
			n.fireEv.Cancel()
			n.fireEv = sim.Event{}
		}
		return
	}
	n.tryScheduleFire()
}

// fire transmits the pending data frame.
func (n *node) fire() {
	n.fireEv = sim.Event{}
	if n.st != stBackoff || n.pending == nil {
		return
	}
	// Abort only if the medium turned busy before this instant; a busy
	// transition at the fire instant itself is inside the turnaround window.
	if n.e.medium.Busy(n.id) && n.busySince != n.e.k.Now() {
		return
	}
	p := n.pending
	n.st = stTx
	p.TxSpan = p.Span // DCF has no aggregate; the packet's span is the attempt
	dur := n.e.dataAirtime(p.Bytes)
	n.e.medium.Transmit(n.id, &phy.Frame{
		Kind: phy.Data, Dst: p.Link.Receiver, Bytes: p.Bytes,
		Rate: n.e.cfg.Rate, Duration: dur, Payload: p, ObsSpan: p.Span,
	})
	n.e.k.After(dur, func() {
		if n.st == stTx {
			n.st = stWaitAck
			timeout := n.e.cfg.SIFS + n.e.ackAirtime() + 2*n.e.cfg.SlotTime
			n.timeoutEv = n.e.k.After(timeout, n.ackTimeout).SetSource(sim.SrcMAC)
		}
	}).SetSource(sim.SrcMAC)
}

// FrameReceived implements phy.Listener.
func (n *node) FrameReceived(f *phy.Frame, ok bool, _ *phy.SignatureDetection) {
	if !ok {
		return
	}
	if f.Dst != n.id {
		// Overheard data frame: reserve the medium through its ACK, or for
		// the frame's explicit NAV (e.g. DOMINO protecting its CFP).
		if f.Kind == phy.Data {
			until := n.e.k.Now() + n.e.cfg.SIFS + n.e.ackAirtime()
			if f.NAV > until {
				until = f.NAV
			}
			n.setNAV(until)
			if n.fireEv.Scheduled() && n.fireEv.At() > n.e.k.Now() {
				n.fireEv.Cancel()
				n.fireEv = sim.Event{}
			}
		}
		return
	}
	switch f.Kind {
	case phy.Data:
		n.sendAck(f)
	case phy.Ack:
		n.onAck(f)
	}
}

// sendAck responds to a correctly received data frame after SIFS.
func (n *node) sendAck(f *phy.Frame) {
	p := f.Payload.(*mac.Packet)
	n.e.k.After(n.e.cfg.SIFS, func() {
		if n.e.medium.Transmitting(n.id) {
			return // half-duplex: cannot ACK while transmitting
		}
		// Sending the ACK pre-empts a pending backoff fire; contention
		// resumes when the channel next goes idle (the ACK itself keeps
		// neighbours deferring meanwhile).
		if n.fireEv.Scheduled() {
			n.fireEv.Cancel()
			n.fireEv = sim.Event{}
		}
		dur := n.e.ackAirtime()
		n.e.medium.Transmit(n.id, &phy.Frame{
			Kind: phy.Ack, Dst: f.Src, Bytes: phy.AckBytes,
			Rate: n.e.cfg.AckRate, Duration: dur, Payload: p, ObsSpan: p.Span,
		})
		n.e.k.After(dur, func() { n.tryScheduleFire() })
	})
}

// onAck completes the pending transmission.
func (n *node) onAck(f *phy.Frame) {
	if n.st != stWaitAck || n.pending == nil {
		return
	}
	if f.Payload.(*mac.Packet) != n.pending {
		return
	}
	if n.timeoutEv.Scheduled() {
		n.timeoutEv.Cancel()
		n.timeoutEv = sim.Event{}
	}
	p := n.pending
	n.pending = nil
	n.cw = n.e.cfg.CWMin
	n.st = stIdle
	n.e.events.Delivered(p, n.e.k.Now())
	n.serveNext()
}

// ackTimeout retries or drops the pending packet.
func (n *node) ackTimeout() {
	n.timeoutEv = sim.Event{}
	if n.st != stWaitAck || n.pending == nil {
		return
	}
	n.e.AckTimeouts++
	n.pending.Retries++
	if n.e.Obs != nil {
		rec := obs.Rec(n.e.k.Now(), obs.KindAckTimeout)
		rec.Node = int(n.id)
		rec.Value = int64(n.pending.Retries)
		rec.Parent = n.pending.Span
		n.e.Obs.Emit(rec)
	}
	if n.pending.Retries > mac.RetryLimit {
		p := n.pending
		n.pending = nil
		n.cw = n.e.cfg.CWMin
		n.e.Drops++
		n.e.events.Dropped(p, n.e.k.Now())
		n.st = stIdle
		n.serveNext()
		return
	}
	if n.cw < n.e.cfg.CWMax {
		n.cw = 2*n.cw + 1
		if n.cw > n.e.cfg.CWMax {
			n.cw = n.e.cfg.CWMax
		}
	}
	n.startContention()
}
