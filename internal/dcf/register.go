package dcf

import (
	"fmt"

	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/scheme"
)

// WireObs implements scheme.Observable: the engine pulls the trace sink and
// packet-lifecycle hooks from the per-run observability state and installs
// the queue-depth sampler on its link queues.
func (e *Engine) WireObs(run *obs.Run) {
	e.Obs = run.Tracer()
	e.life = run
	e.EnableQueueSampling(run.QueueSampler())
}

func init() {
	scheme.MustRegister(scheme.Descriptor{
		Name:    "DCF",
		Summary: "802.11 distributed coordination function baseline",
		DefaultConfig: func(p scheme.Params) any {
			cfg := DefaultConfig()
			cfg.Rate = p.Rate
			return &cfg
		},
		Build: func(ctx scheme.BuildContext, cfg any) (mac.Engine, error) {
			c, ok := cfg.(*Config)
			if !ok {
				return nil, fmt.Errorf("dcf: Build got config %T, want *dcf.Config", cfg)
			}
			return New(ctx.Kernel, ctx.Medium, ctx.Links, ctx.Events, *c), nil
		},
		Checkpointer: func(e mac.Engine) scheme.EngineState {
			eng, ok := e.(*Engine)
			if !ok {
				return scheme.EngineState{Scheme: "DCF"}
			}
			return scheme.EngineState{Scheme: "DCF", Counters: map[string]int64{
				"ack_timeouts": int64(eng.AckTimeouts),
				"drops":        int64(eng.Drops),
			}}
		},
	})
}
