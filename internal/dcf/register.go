package dcf

import (
	"fmt"

	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/scheme"
)

// WireObs implements scheme.Observable: the run pipeline hands the engine
// its trace sink and the per-link queue-depth sampler in one call.
func (e *Engine) WireObs(t obs.Tracer, queueSampler func(link, depth int)) {
	e.Obs = t
	if queueSampler != nil {
		e.EnableQueueSampling(queueSampler)
	}
}

func init() {
	scheme.MustRegister(scheme.Descriptor{
		Name:    "DCF",
		Summary: "802.11 distributed coordination function baseline",
		DefaultConfig: func(p scheme.Params) any {
			cfg := DefaultConfig()
			cfg.Rate = p.Rate
			return &cfg
		},
		Build: func(ctx scheme.BuildContext, cfg any) (mac.Engine, error) {
			c, ok := cfg.(*Config)
			if !ok {
				return nil, fmt.Errorf("dcf: Build got config %T, want *dcf.Config", cfg)
			}
			return New(ctx.Kernel, ctx.Medium, ctx.Links, ctx.Events, *c), nil
		},
	})
}
