package dcf

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// rig builds a complete DCF instance over a network with saturated traffic on
// the given links.
type rig struct {
	k      *sim.Kernel
	medium *phy.Medium
	engine *Engine
	coll   *stats.Collector
}

func newRig(t *testing.T, net *topo.Network, links []*topo.Link, seed int64) *rig {
	t.Helper()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	k := sim.New(seed)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	engine := New(k, medium, links, hub, DefaultConfig())
	coll := stats.NewCollector(len(links), 0)
	hub.Add(coll)
	for _, l := range links {
		s := traffic.NewSaturated(k, engine, l, 512, 8)
		hub.Add(s)
		s.Start()
	}
	engine.Start()
	return &rig{k: k, medium: medium, engine: engine, coll: coll}
}

func (r *rig) run(d sim.Time) { r.k.RunUntil(d) }

func singleLinkNet() (*topo.Network, []*topo.Link) {
	n := topo.TwoPairs(topo.ExposedTerminals)
	links := n.BuildLinks(true, false)
	return n, links[:1]
}

func TestSingleLinkSaturatedThroughput(t *testing.T) {
	net, links := singleLinkNet()
	r := newRig(t, net, links, 1)
	r.run(2 * sim.Second)
	got := r.coll.ThroughputMbps(0, 2*sim.Second)
	// Theoretical DCF saturation for one flow at 12 Mbps, 512 B:
	// DIFS 28 + E[backoff] 67.5 + data 364 + SIFS 10 + ACK 32 ≈ 501.5 µs
	// per packet -> ≈ 8.2 Mbps.
	if got < 7.5 || got > 8.7 {
		t.Errorf("single-link throughput = %.2f Mbps, want ≈8.2", got)
	}
	if r.engine.AckTimeouts > 0 {
		t.Errorf("clean channel had %d ACK timeouts", r.engine.AckTimeouts)
	}
}

func TestTwoContendersShareFairly(t *testing.T) {
	net := topo.TwoPairs(topo.SameContention)
	links := net.BuildLinks(true, false)
	r := newRig(t, net, links, 2)
	r.run(4 * sim.Second)
	a := r.coll.ThroughputMbps(0, 4*sim.Second)
	b := r.coll.ThroughputMbps(1, 4*sim.Second)
	total := a + b
	// Two stations keep the channel busier than one (the winner's backoff
	// is the min of two draws) while CW 15 keeps collisions rare, so the
	// aggregate slightly exceeds the single-station 8.2 Mbps.
	if total < 6.5 || total > 9.2 {
		t.Errorf("aggregate = %.2f Mbps, want ≈8-9 (one contention domain)", total)
	}
	if f := stats.JainIndex([]float64{a, b}); f < 0.95 {
		t.Errorf("fairness = %.3f between equal contenders (a=%.2f b=%.2f)", f, a, b)
	}
}

func TestHiddenTerminalsCollapse(t *testing.T) {
	net := topo.TwoPairs(topo.HiddenTerminals)
	links := net.BuildLinks(true, false)
	r := newRig(t, net, links, 3)
	r.run(2 * sim.Second)
	total := r.coll.AggregateMbps(2 * sim.Second)
	// Hidden senders collide whenever their 364 µs frames overlap; doubled
	// contention windows thin the attempts out, so throughput degrades
	// substantially but does not vanish.
	if total > 6.5 {
		t.Errorf("hidden pair total = %.2f Mbps; collisions should degrade it", total)
	}
	if r.engine.AckTimeouts < 100 {
		t.Errorf("hidden terminals produced only %d ACK timeouts", r.engine.AckTimeouts)
	}
	if r.engine.Drops == 0 {
		t.Error("retry limit never hit despite persistent collisions")
	}
}

func TestExposedTerminalsSerialise(t *testing.T) {
	net := topo.TwoPairs(topo.ExposedTerminals)
	links := net.BuildLinks(true, false)
	r := newRig(t, net, links, 4)
	r.run(4 * sim.Second)
	a := r.coll.ThroughputMbps(0, 4*sim.Second)
	b := r.coll.ThroughputMbps(1, 4*sim.Second)
	// The links could run concurrently (16+ Mbps), but DCF carrier sensing
	// serialises them onto one channel's worth of capacity.
	if total := a + b; total > 10 {
		t.Errorf("exposed pair total = %.2f Mbps; DCF should serialise to ≈8", total)
	}
	if a < 2 || b < 2 {
		t.Errorf("starved exposed link: a=%.2f b=%.2f", a, b)
	}
}

// TestFigure1Starvation reproduces the DCF bars of paper Fig 2: the hidden
// sender AP3 starves while AP1 thrives, and C2 (exposed to AP1) shares.
func TestFigure1Starvation(t *testing.T) {
	net := topo.Figure1()
	links := topo.Figure1Links(net)
	r := newRig(t, net, links, 5)
	r.run(4 * sim.Second)
	ap1 := r.coll.ThroughputMbps(0, 4*sim.Second)
	c2 := r.coll.ThroughputMbps(1, 4*sim.Second)
	ap3 := r.coll.ThroughputMbps(2, 4*sim.Second)
	if ap3 > ap1/3 {
		t.Errorf("hidden AP3 not starved: ap1=%.2f ap3=%.2f", ap1, ap3)
	}
	if c2 < 1 {
		t.Errorf("exposed C2 starved: %.2f Mbps", c2)
	}
	t.Logf("Fig1 DCF: AP1→C1 %.2f, C2→AP2 %.2f, AP3→C3 %.2f Mbps", ap1, c2, ap3)
}

func TestQueueOverflowDrops(t *testing.T) {
	net, links := singleLinkNet()
	k := sim.New(7)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	cfg := DefaultConfig()
	cfg.QueueCap = 4
	engine := New(k, medium, links, hub, cfg)
	var dropped int
	hub.Add(eventsFunc{onDrop: func(*mac.Packet) { dropped++ }})
	engine.Start()
	for i := 0; i < 10; i++ {
		engine.Enqueue(&mac.Packet{Link: links[0], Bytes: 512})
	}
	if engine.QueueLen(0) > 4 {
		t.Errorf("queue holds %d > cap 4", engine.QueueLen(0))
	}
	// One packet is in service; 4 queued; the rest dropped.
	if dropped != 5 {
		t.Errorf("dropped %d, want 5", dropped)
	}
}

type eventsFunc struct {
	onDeliver func(*mac.Packet)
	onDrop    func(*mac.Packet)
}

func (e eventsFunc) Delivered(p *mac.Packet, _ sim.Time) {
	if e.onDeliver != nil {
		e.onDeliver(p)
	}
}
func (e eventsFunc) Dropped(p *mac.Packet, _ sim.Time) {
	if e.onDrop != nil {
		e.onDrop(p)
	}
}

func TestUDPLightLoadLowDelay(t *testing.T) {
	net, links := singleLinkNet()
	k := sim.New(8)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	engine := New(k, medium, links, hub, DefaultConfig())
	coll := stats.NewCollector(1, 0)
	hub.Add(coll)
	traffic.NewUDP(k, engine, links[0], 1.0, 512).Start()
	engine.Start()
	k.RunUntil(2 * sim.Second)
	tput := coll.ThroughputMbps(0, 2*sim.Second)
	if tput < 0.9 || tput > 1.1 {
		t.Errorf("light-load throughput = %.2f, want ≈1.0", tput)
	}
	if d := coll.MeanDelay(); d > 2*sim.Millisecond {
		t.Errorf("light-load delay = %v, want sub-millisecond-ish", d)
	}
}

func TestRetryCountsAndDeterminism(t *testing.T) {
	run := func(seed int64) (float64, int) {
		net := topo.TwoPairs(topo.HiddenTerminals)
		links := net.BuildLinks(true, false)
		r := newRig(nil2(t), net, links, seed)
		r.run(sim.Second)
		return r.coll.AggregateMbps(sim.Second), r.engine.AckTimeouts
	}
	a1, t1 := run(42)
	a2, t2 := run(42)
	if a1 != a2 || t1 != t2 {
		t.Errorf("same seed diverged: (%v,%d) vs (%v,%d)", a1, t1, a2, t2)
	}
	a3, _ := run(43)
	if a1 == a3 {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}

// nil2 lets newRig be reused inside closures that capture t.
func nil2(t *testing.T) *testing.T { return t }

func BenchmarkDCFSecondOfAir(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := topo.TwoPairs(topo.SameContention)
		links := net.BuildLinks(true, false)
		k := sim.New(int64(i))
		medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
		hub := &mac.Hub{}
		engine := New(k, medium, links, hub, DefaultConfig())
		for _, l := range links {
			s := traffic.NewSaturated(k, engine, l, 512, 8)
			hub.Add(s)
			s.Start()
		}
		engine.Start()
		k.RunUntil(sim.Second)
	}
}
