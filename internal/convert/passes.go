package convert

import (
	"sort"

	"repro/internal/phy"
	"repro/internal/strict"
	"repro/internal/topo"
)

// FakeLinkInsert expands every strict slot to a maximal cover of the
// conflict graph (paper §3.3 step 1): converter-inserted fake links keep the
// trigger chain reaching the whole network. With DisableFakeCover the strict
// slots pass through unchanged.
type FakeLinkInsert struct{}

// Name implements Pass.
func (FakeLinkInsert) Name() string { return PassNames[0] }

// Apply implements Pass.
func (FakeLinkInsert) Apply(c *Converter, p *Plan) {
	for _, slot := range p.Batch {
		if c.inc != nil {
			p.Slots = append(p.Slots, c.incBuildSlot(slot, &p.Stats))
		} else {
			p.Slots = append(p.Slots, c.buildSlot(slot))
		}
	}
	p.Stats.Slots = len(p.Slots)
	for i := range p.Slots {
		for _, e := range p.Slots[i].Entries {
			if e.Fake {
				p.Stats.FakeEntries++
			} else {
				p.Stats.RealEntries++
			}
		}
	}
}

// buildSlot expands a strict slot to a maximal cover with fake links,
// scanning candidates from a rotating start for fairness.
func (c *Converter) buildSlot(slot strict.Slot) RelSlot {
	t := c.tab()
	t.realEpoch++
	for _, id := range slot {
		t.realStamp[id] = t.realEpoch
	}
	cover := []int(slot)
	if !c.DisableFakeCover {
		n := len(c.G.Links)
		order := t.orderBuf[:n]
		for i := range order {
			order[i] = (i + c.coverRot) % n
		}
		c.coverRot = (c.coverRot + 1) % n
		cover = c.G.MaximalIndependentSetInto(t.coverBuf[:0], t.blockedBuf, slot, order)
		t.coverBuf = cover
	}
	entries := make([]Entry, 0, len(cover))
	for _, id := range cover {
		entries = append(entries, Entry{Link: c.G.Links[id], Fake: t.realStamp[id] != t.realEpoch})
	}
	return RelSlot{Entries: entries}
}

// TriggerAssign wires every consecutive slot pair inside the batch (paper
// §3.3 step 2): each slot's transmitters are triggered by signature
// broadcasts from the previous slot, strongest-SNR first, at most MaxInbound
// triggers per link and MaxOutbound signatures per broadcasting node.
type TriggerAssign struct{}

// Name implements Pass.
func (TriggerAssign) Name() string { return PassNames[1] }

// Apply implements Pass.
func (TriggerAssign) Apply(c *Converter, p *Plan) {
	if c.inc != nil {
		c.incAssignBatch(p)
		return
	}
	for i := 1; i < len(p.Slots); i++ {
		c.assignTriggers(&p.Slots[i-1], &p.Slots[i], &p.Stats)
	}
}

// BatchConnect wires the batch boundary (paper §3.3 step 3): the retained
// last slot of the previous batch triggers this batch's slot 0. On the very
// first batch there is nothing to connect — the APs start slot 0
// spontaneously.
type BatchConnect struct{}

// Name implements Pass.
func (BatchConnect) Name() string { return PassNames[2] }

// Apply implements Pass.
func (BatchConnect) Apply(c *Converter, p *Plan) {
	if p.Prev == nil || len(p.Slots) == 0 {
		return
	}
	before := p.Stats.Triggers
	c.assignTriggers(p.Prev, &p.Slots[0], &p.Stats)
	p.Stats.BoundaryTriggers = p.Stats.Triggers - before
}

// assignTriggers wires the links of next to broadcasters in prev: for each
// link, pick the candidate trigger link whose better endpoint has the
// highest SNR at the link's sender; repeat for a backup trigger. Outbound
// capacity is per broadcasting node.
//
// The scan runs over the precomputed per-target candidate lists (strongest
// RSS first, trigger floor already applied); equal-RSS runs break toward the
// earliest candidate in first-occurrence order, reproducing the historical
// linear argmax exactly.
func (c *Converter) assignTriggers(prev, next *RelSlot, st *Stats) {
	t := c.tab()
	outbound := t.outbound
	targets := t.targets
	mark := t.fromMark
	touched := t.touched[:0]

	// Preserve broadcasts already planted on prev (ROP poll triggers added
	// when prev was the last slot of the previous batch).
	for _, b := range prev.Broadcasts {
		n := b.From
		if !mark[n] {
			mark[n] = true
			touched = append(touched, n)
		}
		outbound[n] += len(b.Targets)
		targets[n] = append(targets[n], b.Targets...)
	}

	// Candidate broadcasters in prev: both endpoints of every entry, in
	// first-occurrence order. candIdx doubles as the dedup set and records
	// each node's rank for tie-breaking.
	cands := t.candsBuf[:0]
	candIdx := t.candIdx
	for _, e := range prev.Entries {
		s, r := e.Link.Sender, e.Link.Receiver
		if candIdx[s] < 0 {
			candIdx[s] = int32(len(cands))
			cands = append(cands, s)
		}
		if candIdx[r] < 0 {
			candIdx[r] = int32(len(cands))
			cands = append(cands, r)
		}
	}

	inbound := t.inboundBuf[:0]
	for range next.Entries {
		inbound = append(inbound, 0)
	}

	// Two rounds: primary triggers first, then backups.
	for round := 0; round < c.MaxInbound; round++ {
		for i := range next.Entries {
			if inbound[i] != round {
				continue // did not get a trigger in an earlier round
			}
			target := next.Entries[i].Link.Sender
			dl := t.candByTarget[target]
			rs := t.candRSS[target]
			best := int32(-1)
			bestRSS := 0.0
			for k := 0; k < len(dl); k++ {
				if best >= 0 && rs[k] < bestRSS {
					break // sorted: nothing stronger follows
				}
				n := dl[k]
				ci := candIdx[n]
				if ci < 0 || outbound[n] >= c.MaxOutbound {
					continue
				}
				already := false
				for _, tb := range next.Entries[i].TriggeredBy {
					if tb == n {
						already = true
						break
					}
				}
				if already {
					continue
				}
				if best < 0 {
					best = ci
					bestRSS = rs[k]
				} else if ci < best {
					best = ci
				}
			}
			if best < 0 {
				continue
			}
			bn := cands[best]
			if !mark[bn] {
				mark[bn] = true
				touched = append(touched, bn)
			}
			outbound[bn]++
			inbound[i]++
			next.Entries[i].TriggeredBy = append(next.Entries[i].TriggeredBy, bn)
			targets[bn] = append(targets[bn], target)
			st.Triggers++
			if round > 0 {
				st.BackupTriggers++
			}
		}
	}

	for i, e := range next.Entries {
		if inbound[i] == 0 && !e.Fake {
			st.Untriggered++
		}
	}

	// Deterministic broadcast list.
	sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
	prev.Broadcasts = prev.Broadcasts[:0]
	for _, n := range touched {
		tgts := make([]phy.NodeID, len(targets[n]))
		copy(tgts, targets[n])
		prev.Broadcasts = append(prev.Broadcasts, Broadcast{From: n, Targets: tgts})
	}

	// Reset scratch via the touched lists only.
	for _, n := range cands {
		candIdx[n] = -1
	}
	for _, n := range touched {
		outbound[n] = 0
		targets[n] = targets[n][:0]
		mark[n] = false
	}
	t.candsBuf = cands[:0]
	t.touched = touched[:0]
	t.inboundBuf = inbound[:0]
}

// ROPInsert greedily places polling slots (paper §3.3 step 4): for each AP,
// find the earliest slot whose links can trigger the AP; share an
// already-inserted ROP slot when the APs don't conflict. APs with no
// triggerable slot are force-placed on slot 0 and recorded in
// Plan.ForcedROP.
type ROPInsert struct{}

// Name implements Pass.
func (ROPInsert) Name() string { return PassNames[3] }

// Apply implements Pass.
func (ROPInsert) Apply(c *Converter, p *Plan) {
	t := c.tab()
	nw := t.nodeWords
	// Per-slot trigger-reach masks: the union of the entries' link masks.
	// Entries never change during this pass, so one build serves every AP.
	need := len(p.Slots) * nw
	if cap(t.slotMaskBuf) < need {
		t.slotMaskBuf = make([]uint64, need)
	}
	masks := t.slotMaskBuf[:need]
	for i := range masks {
		masks[i] = 0
	}
	for i := range p.Slots {
		m := masks[i*nw : (i+1)*nw]
		for _, e := range p.Slots[i].Entries {
			lm := t.linkTrigMask[e.Link.ID]
			for w := range lm {
				m[w] |= lm[w]
			}
		}
	}
	for _, ap := range p.PollAPs {
		w, bit := int(ap)>>6, uint64(1)<<(uint(ap)&63)
		placed := false
		for i := range p.Slots {
			if masks[i*nw+w]&bit == 0 {
				continue // no link in the slot can trigger the AP
			}
			if len(p.Slots[i].ROPAfter) == 0 {
				p.Slots[i].ROPAfter = []phy.NodeID{ap}
				c.addPollTrigger(&p.Slots[i], ap, &p.Stats)
				placed = true
				break
			}
			// Try to share the existing ROP slot.
			share := true
			for _, other := range p.Slots[i].ROPAfter {
				if c.G.APConflict(ap, other) {
					share = false
					break
				}
			}
			if share {
				p.Slots[i].ROPAfter = append(p.Slots[i].ROPAfter, ap)
				c.addPollTrigger(&p.Slots[i], ap, &p.Stats)
				p.Stats.ROPShared++
				placed = true
				break
			}
		}
		if !placed && len(p.Slots) > 0 {
			// Fall back to the first slot; polling beats starving the AP's
			// clients even if the trigger is weak.
			p.Slots[0].ROPAfter = append(p.Slots[0].ROPAfter, ap)
			c.addPollTrigger(&p.Slots[0], ap, &p.Stats)
			p.ForcedROP = append(p.ForcedROP, ap)
			p.Stats.ROPForced++
		}
	}
	for i := range p.Slots {
		if len(p.Slots[i].ROPAfter) > 0 {
			p.Stats.ROPSlots++
		}
	}
}

// addPollTrigger ensures the polling AP's own signature rides in the slot's
// end-of-slot broadcasts so the AP has a time reference for its poll. An AP
// already active (or broadcasting) in the slot needs none.
func (c *Converter) addPollTrigger(slot *RelSlot, ap phy.NodeID, st *Stats) {
	for _, e := range slot.Entries {
		if e.Link.Sender == ap || e.Link.Receiver == ap {
			return // the AP participates in the slot: it knows the boundary
		}
	}
	// Pick the strongest endpoint with spare outbound capacity.
	load := map[phy.NodeID]int{}
	for _, b := range slot.Broadcasts {
		load[b.From] = len(b.Targets)
	}
	best := phy.NodeID(-1)
	bestRSS := 0.0
	for _, e := range slot.Entries {
		for _, n := range []phy.NodeID{e.Link.Sender, e.Link.Receiver} {
			if load[n] >= c.MaxOutbound {
				continue
			}
			rss := c.G.Net.RSS[n][ap]
			if rss < topo.TriggerFloorDBm {
				continue
			}
			if best == -1 || rss > bestRSS {
				best = n
				bestRSS = rss
			}
		}
	}
	if best == -1 {
		return // unreachable AP: it will free-run its poll (engine fallback)
	}
	for i := range slot.Broadcasts {
		if slot.Broadcasts[i].From == best {
			for _, tgt := range slot.Broadcasts[i].Targets {
				if tgt == ap {
					return
				}
			}
			slot.Broadcasts[i].Targets = append(slot.Broadcasts[i].Targets, ap)
			st.PollTriggers++
			return
		}
	}
	slot.Broadcasts = append(slot.Broadcasts, Broadcast{From: best, Targets: []phy.NodeID{ap}})
	st.PollTriggers++
}
