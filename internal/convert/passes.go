package convert

import (
	"sort"

	"repro/internal/phy"
	"repro/internal/strict"
	"repro/internal/topo"
)

// FakeLinkInsert expands every strict slot to a maximal cover of the
// conflict graph (paper §3.3 step 1): converter-inserted fake links keep the
// trigger chain reaching the whole network. With DisableFakeCover the strict
// slots pass through unchanged.
type FakeLinkInsert struct{}

// Name implements Pass.
func (FakeLinkInsert) Name() string { return PassNames[0] }

// Apply implements Pass.
func (FakeLinkInsert) Apply(c *Converter, p *Plan) {
	for _, slot := range p.Batch {
		p.Slots = append(p.Slots, c.buildSlot(slot))
	}
	p.Stats.Slots = len(p.Slots)
	for i := range p.Slots {
		for _, e := range p.Slots[i].Entries {
			if e.Fake {
				p.Stats.FakeEntries++
			} else {
				p.Stats.RealEntries++
			}
		}
	}
}

// buildSlot expands a strict slot to a maximal cover with fake links,
// scanning candidates from a rotating start for fairness.
func (c *Converter) buildSlot(slot strict.Slot) RelSlot {
	real := make(map[int]bool, len(slot))
	for _, id := range slot {
		real[id] = true
	}
	cover := []int(slot)
	if !c.DisableFakeCover {
		n := len(c.G.Links)
		order := make([]int, n)
		for i := range order {
			order[i] = (i + c.coverRot) % n
		}
		c.coverRot = (c.coverRot + 1) % n
		cover = c.G.MaximalIndependentSet(slot, order)
	}
	rel := RelSlot{}
	for _, id := range cover {
		rel.Entries = append(rel.Entries, Entry{Link: c.G.Links[id], Fake: !real[id]})
	}
	return rel
}

// TriggerAssign wires every consecutive slot pair inside the batch (paper
// §3.3 step 2): each slot's transmitters are triggered by signature
// broadcasts from the previous slot, strongest-SNR first, at most MaxInbound
// triggers per link and MaxOutbound signatures per broadcasting node.
type TriggerAssign struct{}

// Name implements Pass.
func (TriggerAssign) Name() string { return PassNames[1] }

// Apply implements Pass.
func (TriggerAssign) Apply(c *Converter, p *Plan) {
	for i := 1; i < len(p.Slots); i++ {
		c.assignTriggers(&p.Slots[i-1], &p.Slots[i], &p.Stats)
	}
}

// BatchConnect wires the batch boundary (paper §3.3 step 3): the retained
// last slot of the previous batch triggers this batch's slot 0. On the very
// first batch there is nothing to connect — the APs start slot 0
// spontaneously.
type BatchConnect struct{}

// Name implements Pass.
func (BatchConnect) Name() string { return PassNames[2] }

// Apply implements Pass.
func (BatchConnect) Apply(c *Converter, p *Plan) {
	if p.Prev == nil || len(p.Slots) == 0 {
		return
	}
	before := p.Stats.Triggers
	c.assignTriggers(p.Prev, &p.Slots[0], &p.Stats)
	p.Stats.BoundaryTriggers = p.Stats.Triggers - before
}

// assignTriggers wires the links of next to broadcasters in prev: for each
// link, pick the candidate trigger link whose better endpoint has the
// highest SNR at the link's sender; repeat for a backup trigger. Outbound
// capacity is per broadcasting node.
func (c *Converter) assignTriggers(prev, next *RelSlot, st *Stats) {
	outbound := map[phy.NodeID]int{}
	inbound := make([]int, len(next.Entries))
	targets := map[phy.NodeID][]phy.NodeID{}
	// Preserve broadcasts already planted on prev (ROP poll triggers added
	// when prev was the last slot of the previous batch).
	for _, b := range prev.Broadcasts {
		outbound[b.From] += len(b.Targets)
		targets[b.From] = append(targets[b.From], b.Targets...)
	}

	// candidate broadcasters in prev: both endpoints of every entry.
	type cand struct {
		node phy.NodeID
		link *topo.Link
	}
	var cands []cand
	seen := map[phy.NodeID]bool{}
	for _, e := range prev.Entries {
		for _, n := range []phy.NodeID{e.Link.Sender, e.Link.Receiver} {
			if !seen[n] {
				seen[n] = true
				cands = append(cands, cand{n, e.Link})
			}
		}
	}

	// Two rounds: primary triggers first, then backups.
	for round := 0; round < c.MaxInbound; round++ {
		for i := range next.Entries {
			if inbound[i] != round {
				continue // did not get a trigger in an earlier round
			}
			target := next.Entries[i].Link.Sender
			best := -1
			bestSNR := 0.0
			for ci, cd := range cands {
				if outbound[cd.node] >= c.MaxOutbound {
					continue
				}
				if cd.node == target {
					continue // a node does not trigger itself
				}
				if c.G.Net.RSS[cd.node][target] < topo.TriggerFloorDBm {
					continue
				}
				already := false
				for _, t := range next.Entries[i].TriggeredBy {
					if t == cd.node {
						already = true
						break
					}
				}
				if already {
					continue
				}
				snr := c.G.Net.RSS[cd.node][target]
				if best == -1 || snr > bestSNR {
					best = ci
					bestSNR = snr
				}
			}
			if best == -1 {
				continue
			}
			b := cands[best]
			outbound[b.node]++
			inbound[i]++
			next.Entries[i].TriggeredBy = append(next.Entries[i].TriggeredBy, b.node)
			targets[b.node] = append(targets[b.node], target)
			st.Triggers++
			if round > 0 {
				st.BackupTriggers++
			}
		}
	}

	for i, e := range next.Entries {
		if inbound[i] == 0 && !e.Fake {
			st.Untriggered++
		}
	}

	// Deterministic broadcast list.
	var froms []phy.NodeID
	for n := range targets {
		froms = append(froms, n)
	}
	sort.Slice(froms, func(a, b int) bool { return froms[a] < froms[b] })
	prev.Broadcasts = prev.Broadcasts[:0]
	for _, n := range froms {
		prev.Broadcasts = append(prev.Broadcasts, Broadcast{From: n, Targets: targets[n]})
	}
}

// ROPInsert greedily places polling slots (paper §3.3 step 4): for each AP,
// find the earliest slot whose links can trigger the AP; share an
// already-inserted ROP slot when the APs don't conflict. APs with no
// triggerable slot are force-placed on slot 0 and recorded in
// Plan.ForcedROP.
type ROPInsert struct{}

// Name implements Pass.
func (ROPInsert) Name() string { return PassNames[3] }

// Apply implements Pass.
func (ROPInsert) Apply(c *Converter, p *Plan) {
	for _, ap := range p.PollAPs {
		placed := false
		for i := range p.Slots {
			canTrigger := false
			for _, e := range p.Slots[i].Entries {
				if c.G.CanTriggerNode(e.Link, ap) {
					canTrigger = true
					break
				}
			}
			if !canTrigger {
				continue
			}
			if len(p.Slots[i].ROPAfter) == 0 {
				p.Slots[i].ROPAfter = []phy.NodeID{ap}
				c.addPollTrigger(&p.Slots[i], ap, &p.Stats)
				placed = true
				break
			}
			// Try to share the existing ROP slot.
			share := true
			for _, other := range p.Slots[i].ROPAfter {
				if c.G.APConflict(ap, other) {
					share = false
					break
				}
			}
			if share {
				p.Slots[i].ROPAfter = append(p.Slots[i].ROPAfter, ap)
				c.addPollTrigger(&p.Slots[i], ap, &p.Stats)
				p.Stats.ROPShared++
				placed = true
				break
			}
		}
		if !placed && len(p.Slots) > 0 {
			// Fall back to the first slot; polling beats starving the AP's
			// clients even if the trigger is weak.
			p.Slots[0].ROPAfter = append(p.Slots[0].ROPAfter, ap)
			c.addPollTrigger(&p.Slots[0], ap, &p.Stats)
			p.ForcedROP = append(p.ForcedROP, ap)
			p.Stats.ROPForced++
		}
	}
	for i := range p.Slots {
		if len(p.Slots[i].ROPAfter) > 0 {
			p.Stats.ROPSlots++
		}
	}
}

// addPollTrigger ensures the polling AP's own signature rides in the slot's
// end-of-slot broadcasts so the AP has a time reference for its poll. An AP
// already active (or broadcasting) in the slot needs none.
func (c *Converter) addPollTrigger(slot *RelSlot, ap phy.NodeID, st *Stats) {
	for _, e := range slot.Entries {
		if e.Link.Sender == ap || e.Link.Receiver == ap {
			return // the AP participates in the slot: it knows the boundary
		}
	}
	// Pick the strongest endpoint with spare outbound capacity.
	load := map[phy.NodeID]int{}
	for _, b := range slot.Broadcasts {
		load[b.From] = len(b.Targets)
	}
	best := phy.NodeID(-1)
	bestRSS := 0.0
	for _, e := range slot.Entries {
		for _, n := range []phy.NodeID{e.Link.Sender, e.Link.Receiver} {
			if load[n] >= c.MaxOutbound {
				continue
			}
			rss := c.G.Net.RSS[n][ap]
			if rss < topo.TriggerFloorDBm {
				continue
			}
			if best == -1 || rss > bestRSS {
				best = n
				bestRSS = rss
			}
		}
	}
	if best == -1 {
		return // unreachable AP: it will free-run its poll (engine fallback)
	}
	for i := range slot.Broadcasts {
		if slot.Broadcasts[i].From == best {
			for _, tgt := range slot.Broadcasts[i].Targets {
				if tgt == ap {
					return
				}
			}
			slot.Broadcasts[i].Targets = append(slot.Broadcasts[i].Targets, ap)
			st.PollTriggers++
			return
		}
	}
	slot.Broadcasts = append(slot.Broadcasts, Broadcast{From: best, Targets: []phy.NodeID{ap}})
	st.PollTriggers++
}
