package convert

import (
	"time"

	"repro/internal/phy"
	"repro/internal/strict"
	"repro/internal/topo"
)

// NumPasses is the number of stages in the conversion pipeline.
const NumPasses = 4

// PassNames lists the pipeline stages in execution order; indexes match
// Stats.PassNs and the obs per-pass counters.
var PassNames = [NumPasses]string{"fake_link_insert", "trigger_assign", "batch_connect", "rop_insert"}

// Stats are one batch's conversion counters, filled in by the passes.
type Stats struct {
	// Slots is the relative-schedule length.
	Slots int
	// RealEntries / FakeEntries split the slot entries by origin: scheduled
	// by the strict scheduler vs inserted for trigger-chain cover.
	RealEntries int
	FakeEntries int
	// Triggers counts every trigger assignment, backups and the boundary
	// pair included; BackupTriggers counts assignments beyond each entry's
	// first; BoundaryTriggers counts assignments wired across the batch
	// boundary (retained slot → slot 0).
	Triggers         int
	BackupTriggers   int
	BoundaryTriggers int
	// Untriggered counts real entries left with no trigger path.
	Untriggered int
	// ROPSlots counts slots followed by a polling window; ROPShared counts
	// APs that joined an already-inserted window; ROPForced counts APs
	// force-placed on slot 0 because no slot could trigger them.
	ROPSlots  int
	ROPShared int
	ROPForced int
	// PollTriggers counts poll reference signatures planted in broadcasts.
	PollTriggers int
	// CacheHit marks a plan served from the conversion cache.
	CacheHit bool
	// CoverReuse / PairReuse count slots and adjacent pairs the incremental
	// layer served from its memos instead of recomputing (zero on cache hits
	// and when incremental conversion is off).
	CoverReuse int
	PairReuse  int
	// PassNs is the wall-clock time each pass took, indexed like PassNames.
	// Zero on cache hits. Wall time never feeds back into the simulation —
	// it exists for the metrics registry and benchreport only.
	PassNs [NumPasses]int64
}

// Plan carries one batch's conversion through the pass pipeline: the strict
// input, the relative schedule under construction, and the counters each
// pass fills in. Passes mutate the Plan in order; Verify checks the result.
type Plan struct {
	// Batch is the strict scheduler output being converted (input to
	// FakeLinkInsert).
	Batch strict.Schedule
	// PollAPs lists the APs that must execute ROP during this batch.
	PollAPs []phy.NodeID
	// Slots is the relative schedule under construction.
	Slots []RelSlot
	// Prev is the retained last slot of the previous batch (nil on the
	// first batch); BatchConnect wires its broadcasts to trigger slot 0.
	Prev *RelSlot
	// ForcedROP lists APs whose polling window was force-placed on slot 0
	// without a compatibility check (the fallback when no slot can trigger
	// the AP); Verify exempts these pairings from the AP-conflict invariant.
	ForcedROP []phy.NodeID
	Stats     Stats

	// Conversion parameters frozen at ConvertPlan time, for Verify.
	g                       *topo.ConflictGraph
	maxInbound, maxOutbound int
}

// Pass is one typed stage of the conversion pipeline. Apply mutates the plan
// in place; the converter supplies cross-batch state (retained slot, cover
// rotation) and the conflict graph.
type Pass interface {
	Name() string
	Apply(c *Converter, p *Plan)
}

// passes is the pipeline in execution order. TriggerAssign before
// BatchConnect is equivalent to the historical interleaved order because
// each consecutive-slot trigger pair touches disjoint state: a slot's
// broadcasts are written only when it is the pair's first element, and its
// entries' triggers only when it is the second.
var passes = [NumPasses]Pass{FakeLinkInsert{}, TriggerAssign{}, BatchConnect{}, ROPInsert{}}

// Passes returns the pipeline stages in execution order.
func Passes() []Pass { return append([]Pass(nil), passes[:]...) }

// ConvertPlan turns one strict batch into a relative schedule, returning the
// full plan (slots, per-pass stats, verification inputs). When the
// conversion cache is enabled and the converter's complete pre-conversion
// state matches a previous batch, the cached result is replayed instead of
// re-running the passes — bit-identical, including the broadcast rewrite of
// the retained slot.
func (c *Converter) ConvertPlan(batch strict.Schedule, pollAPs []phy.NodeID) *Plan {
	if c.cache == nil {
		return c.runPasses(batch, pollAPs)
	}
	hash := c.canonicalKey(batch, pollAPs)
	exact := c.exactFingerprint()
	if p, ok := c.cacheReplay(hash, exact, batch, pollAPs); ok {
		return p
	}
	p := c.runPasses(batch, pollAPs)
	c.cacheStore(hash, exact, p)
	return p
}

// runPasses executes the pipeline on a fresh plan.
func (c *Converter) runPasses(batch strict.Schedule, pollAPs []phy.NodeID) *Plan {
	if c.inc != nil {
		c.inc.begin()
	}
	p := &Plan{
		Batch: batch, PollAPs: pollAPs, Prev: c.prev,
		g: c.G, maxInbound: c.MaxInbound, maxOutbound: c.MaxOutbound,
	}
	for i, pass := range passes {
		start := time.Now()
		pass.Apply(c, p)
		p.Stats.PassNs[i] = time.Since(start).Nanoseconds()
	}
	c.Untriggered += p.Stats.Untriggered
	if len(p.Slots) > 0 {
		// Batch connection, retaining side: keep the last slot itself. Its
		// Broadcasts are still empty — the next batch's conversion fills
		// them in, and because the engine holds the same slot, the triggers
		// become visible to it before the slot's end.
		c.prev = &p.Slots[len(p.Slots)-1]
	}
	return p
}
