package convert

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/strict"
	"repro/internal/topo"
)

// planFor builds a fresh plan the way ConvertPlan does, without running any
// pass — per-pass tests apply stages one at a time.
func planFor(c *Converter, batch strict.Schedule, pollAPs []phy.NodeID) *Plan {
	return &Plan{
		Batch: batch, PollAPs: pollAPs, Prev: c.prev,
		g: c.G, maxInbound: c.MaxInbound, maxOutbound: c.MaxOutbound,
	}
}

func TestPassOrderAndNames(t *testing.T) {
	ps := Passes()
	if len(ps) != NumPasses {
		t.Fatalf("Passes() has %d stages, want %d", len(ps), NumPasses)
	}
	for i, p := range ps {
		if p.Name() != PassNames[i] {
			t.Errorf("pass %d Name() = %q, want %q", i, p.Name(), PassNames[i])
		}
	}
	want := []string{"fake_link_insert", "trigger_assign", "batch_connect", "rop_insert"}
	for i, n := range want {
		if PassNames[i] != n {
			t.Errorf("PassNames[%d] = %q, want %q", i, PassNames[i], n)
		}
	}
}

func TestFakeLinkInsertPassMaximalCover(t *testing.T) {
	g := fig7Graph(t, true, false) // conflicts {0,1},{2,3}
	c := New(g)
	p := planFor(c, strict.Schedule{{0}}, nil)
	FakeLinkInsert{}.Apply(c, p)
	if len(p.Slots) != 1 {
		t.Fatalf("slots = %d, want 1", len(p.Slots))
	}
	in := map[int]bool{}
	for _, e := range p.Slots[0].Entries {
		in[e.Link.ID] = true
	}
	if !in[0] {
		t.Error("scheduled link 0 missing from the cover")
	}
	// Maximality: every absent link conflicts with some cover member.
	for id := range g.Links {
		if in[id] {
			continue
		}
		blocked := false
		for member := range in {
			if g.Conflicts(id, member) {
				blocked = true
				break
			}
		}
		if !blocked {
			t.Errorf("cover is not maximal: link %d could be added", id)
		}
	}
	if p.Stats.RealEntries != 1 || p.Stats.FakeEntries != len(p.Slots[0].Entries)-1 {
		t.Errorf("stats real=%d fake=%d, want 1 and %d",
			p.Stats.RealEntries, p.Stats.FakeEntries, len(p.Slots[0].Entries)-1)
	}
	if p.Stats.Slots != 1 {
		t.Errorf("stats slots = %d", p.Stats.Slots)
	}
}

func TestFakeLinkInsertPassDisabled(t *testing.T) {
	g := fig7Graph(t, true, false)
	c := New(g)
	c.DisableFakeCover = true
	p := planFor(c, strict.Schedule{{0}, {2}}, nil)
	FakeLinkInsert{}.Apply(c, p)
	for si, s := range p.Slots {
		if len(s.Entries) != 1 || s.Entries[0].Fake {
			t.Errorf("slot %d = %+v, want the bare scheduled link", si, s.Entries)
		}
	}
	if p.Stats.FakeEntries != 0 || p.Stats.RealEntries != 2 {
		t.Errorf("stats real=%d fake=%d", p.Stats.RealEntries, p.Stats.FakeEntries)
	}
}

func TestTriggerAssignPassIntraBatchOnly(t *testing.T) {
	g := fig7Graph(t, true, true)
	c := New(g)
	p := planFor(c, saturatedBatch(g, 4), nil)
	FakeLinkInsert{}.Apply(c, p)
	TriggerAssign{}.Apply(c, p)
	for _, e := range p.Slots[0].Entries {
		if len(e.TriggeredBy) != 0 {
			t.Error("slot 0 gained triggers before BatchConnect ran")
		}
	}
	for si := 1; si < len(p.Slots); si++ {
		for _, e := range p.Slots[si].Entries {
			if len(e.TriggeredBy) == 0 {
				t.Errorf("slot %d: %v untriggered", si, e.Link)
			}
		}
	}
	if last := p.Slots[len(p.Slots)-1]; len(last.Broadcasts) != 0 {
		t.Error("last slot broadcasts must stay empty until the next batch connects")
	}
	if p.Stats.Triggers == 0 {
		t.Error("no triggers counted")
	}
	if p.Stats.BoundaryTriggers != 0 {
		t.Errorf("BoundaryTriggers = %d before BatchConnect", p.Stats.BoundaryTriggers)
	}
}

func TestBatchConnectPassWiresBoundary(t *testing.T) {
	g := fig7Graph(t, true, true)
	c := New(g)
	c.ConvertPlan(saturatedBatch(g, 3), nil)
	retained := c.prev
	if retained == nil {
		t.Fatal("no retained slot after the first batch")
	}

	p := planFor(c, saturatedBatch(g, 3), nil)
	FakeLinkInsert{}.Apply(c, p)
	TriggerAssign{}.Apply(c, p)
	BatchConnect{}.Apply(c, p)
	if p.Stats.BoundaryTriggers == 0 {
		t.Error("BatchConnect assigned no boundary triggers")
	}
	if len(retained.Broadcasts) == 0 {
		t.Error("BatchConnect left the retained slot's broadcasts empty")
	}
	for _, e := range p.Slots[0].Entries {
		if len(e.TriggeredBy) == 0 {
			t.Errorf("slot 0 entry %v untriggered despite batch connection", e.Link)
		}
	}
}

func TestBatchConnectPassFirstBatchNoop(t *testing.T) {
	g := fig7Graph(t, true, true)
	c := New(g)
	p := planFor(c, saturatedBatch(g, 2), nil)
	FakeLinkInsert{}.Apply(c, p)
	TriggerAssign{}.Apply(c, p)
	BatchConnect{}.Apply(c, p)
	if p.Stats.BoundaryTriggers != 0 {
		t.Errorf("first batch BoundaryTriggers = %d", p.Stats.BoundaryTriggers)
	}
	for _, e := range p.Slots[0].Entries {
		if len(e.TriggeredBy) != 0 {
			t.Error("first batch slot 0 must stay untriggered (APs self-start)")
		}
	}
}

func TestROPInsertPassPlacesEveryAP(t *testing.T) {
	net := topo.Figure7()
	g := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
	c := New(g)
	p := planFor(c, saturatedBatch(g, 6), net.APs)
	FakeLinkInsert{}.Apply(c, p)
	TriggerAssign{}.Apply(c, p)
	BatchConnect{}.Apply(c, p)
	ROPInsert{}.Apply(c, p)
	polled := map[phy.NodeID]bool{}
	ropSlots := 0
	for _, s := range p.Slots {
		if len(s.ROPAfter) > 0 {
			ropSlots++
		}
		for _, ap := range s.ROPAfter {
			polled[ap] = true
		}
	}
	for _, ap := range net.APs {
		if !polled[ap] {
			t.Errorf("AP %d never polls", ap)
		}
	}
	if p.Stats.ROPSlots != ropSlots {
		t.Errorf("Stats.ROPSlots = %d, slots with polls = %d", p.Stats.ROPSlots, ropSlots)
	}
	if p.Stats.ROPForced != 0 || len(p.ForcedROP) != 0 {
		t.Errorf("well-connected topology forced placements: %v", p.ForcedROP)
	}
}

func TestROPInsertPassRecordsForcedPlacement(t *testing.T) {
	net := topo.Figure13b() // interference domains out of trigger range
	g := topo.NewConflictGraph(net, net.BuildLinks(true, false), phy.DefaultConfig(), phy.Rate12)
	c := New(g)
	c.DisableFakeCover = true
	// Only link 0 transmits; AP 2 (another domain) still has to poll, so the
	// converter must fall back to a forced slot-0 placement.
	p := c.ConvertPlan(strict.Schedule{{0}}, []phy.NodeID{2})
	if len(p.ForcedROP) != 1 || p.ForcedROP[0] != 2 {
		t.Fatalf("ForcedROP = %v, want [2]", p.ForcedROP)
	}
	if p.Stats.ROPForced != 1 {
		t.Errorf("Stats.ROPForced = %d", p.Stats.ROPForced)
	}
	if err := Verify(p); err != nil {
		t.Errorf("Verify must exempt forced placements: %v", err)
	}
}

func TestConvertPlanMatchesConvert(t *testing.T) {
	net := topo.Figure7()
	g1 := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
	net2 := topo.Figure7()
	g2 := topo.NewConflictGraph(net2, net2.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
	c1, c2 := New(g1), New(g2)
	for batch := 0; batch < 3; batch++ {
		b1 := saturatedBatch(g1, 5)
		b2 := saturatedBatch(g2, 5)
		p := c1.ConvertPlan(b1, net.APs)
		rs := c2.Convert(b2, net2.APs)
		if len(p.Slots) != len(rs.Slots) {
			t.Fatalf("batch %d: slot counts differ", batch)
		}
		for i := range p.Slots {
			a, b := p.Slots[i], rs.Slots[i]
			if len(a.Entries) != len(b.Entries) || len(a.Broadcasts) != len(b.Broadcasts) ||
				len(a.ROPAfter) != len(b.ROPAfter) {
				t.Fatalf("batch %d slot %d shapes differ", batch, i)
			}
			for j := range a.Entries {
				if a.Entries[j].Link.ID != b.Entries[j].Link.ID ||
					a.Entries[j].Fake != b.Entries[j].Fake ||
					len(a.Entries[j].TriggeredBy) != len(b.Entries[j].TriggeredBy) {
					t.Fatalf("batch %d slot %d entry %d differs", batch, i, j)
				}
			}
		}
	}
}

func TestConvertPlanStatsConsistency(t *testing.T) {
	net := topo.Figure7()
	g := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
	c := New(g)
	p := c.ConvertPlan(saturatedBatch(g, 6), net.APs)
	entries := 0
	for _, s := range p.Slots {
		entries += len(s.Entries)
	}
	if p.Stats.RealEntries+p.Stats.FakeEntries != entries {
		t.Errorf("real %d + fake %d != %d entries",
			p.Stats.RealEntries, p.Stats.FakeEntries, entries)
	}
	if p.Stats.Slots != len(p.Slots) {
		t.Errorf("Stats.Slots = %d, len = %d", p.Stats.Slots, len(p.Slots))
	}
	if p.Stats.Untriggered != c.Untriggered {
		t.Errorf("Stats.Untriggered = %d, converter total %d", p.Stats.Untriggered, c.Untriggered)
	}
	if p.Stats.CacheHit {
		t.Error("CacheHit set without a cache")
	}
	for i, ns := range p.Stats.PassNs {
		if ns < 0 {
			t.Errorf("PassNs[%d] = %d", i, ns)
		}
	}
}
