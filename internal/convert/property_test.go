package convert

import (
	"math/rand"
	"testing"

	"repro/internal/phy"
	"repro/internal/strict"
	"repro/internal/topo"
)

// TestConvertVerifyProperty fuzzes the pipeline: randomized topologies ×
// every registered scheduler × random backlogs (caching and the fake-cover
// ablation mixed in), with Verify run on every converted plan. The
// invariants must never break.
func TestConvertVerifyProperty(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 3
	}
	schedulers := strict.SchedulerNames()
	if len(schedulers) < 4 {
		t.Fatalf("registered schedulers = %v, want at least 4", schedulers)
	}
	feasible := 0
	for seed := int64(1); seed <= seeds; seed++ {
		tr := topo.RandomTrace(seed, 40, 800)
		rng := rand.New(rand.NewSource(seed))
		net, err := topo.BuildT(tr, 6, 2, phy.DefaultConfig(), phy.Rate12, rng)
		if err != nil {
			continue // infeasible placement: skip, feasibility tracked below
		}
		feasible++
		g := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
		for _, name := range schedulers {
			s, err := strict.BuildScheduler(name, g)
			if err != nil {
				t.Fatalf("seed %d: BuildScheduler(%s): %v", seed, name, err)
			}
			c := New(g)
			switch seed % 3 {
			case 0:
				c.EnableCache(0)
			case 1:
				c.DisableFakeCover = true
			}
			c.MaxInbound = 1 + int(seed)%2
			for batch := 0; batch < 4; batch++ {
				est := make([]int, len(g.Links))
				for i := range est {
					est[i] = rng.Intn(5) // random backlogs, zeros included
				}
				b := s.Batch(est, 12)
				// Pad with empty slots the way the engine does, so empty
				// relative slots (dead chains under the ablation) are covered.
				for len(b) < 6 {
					b = append(b, strict.Slot{})
				}
				p := c.ConvertPlan(b, net.APs)
				if err := Verify(p); err != nil {
					t.Errorf("seed %d scheduler %s batch %d: %v", seed, name, batch, err)
				}
			}
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible random topology; property never exercised")
	}
}
