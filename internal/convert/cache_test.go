package convert

import (
	"reflect"
	"testing"

	"repro/internal/phy"
	"repro/internal/strict"
	"repro/internal/topo"
)

// fixedBatch returns the same strict batch every call: converter state then
// cycles after the first round, the steady-state shape the cache targets.
func fixedBatch(g *topo.ConflictGraph, n int) strict.Schedule {
	r := strict.NewRAND(g)
	var batch strict.Schedule
	for i := 0; i < n; i++ {
		batch = append(batch, r.NextSlot(func(int) int { return 1 }))
	}
	return batch
}

// TestCacheReplayBitIdentical drives a cached and an uncached converter
// through the same batch sequence and requires every plan — and every
// broadcast rewrite of the engine-held retained slot — to be deeply equal.
func TestCacheReplayBitIdentical(t *testing.T) {
	net := topo.Figure7()
	g := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
	cold, warm := New(g), New(g)
	warm.EnableCache(0)
	for round := 0; round < 12; round++ {
		b := fixedBatch(g, len(g.Links))
		pc := cold.ConvertPlan(b, net.APs)
		pw := warm.ConvertPlan(b, net.APs)
		if !reflect.DeepEqual(pc.Slots, pw.Slots) {
			t.Fatalf("round %d: cached slots diverge from uncached", round)
		}
		if !reflect.DeepEqual(pc.ForcedROP, pw.ForcedROP) {
			t.Fatalf("round %d: forced placements diverge", round)
		}
		// The retained-slot rewrite (batch connection) must also replay
		// identically: the engine executes from this slot.
		if !reflect.DeepEqual(cold.prev, warm.prev) {
			t.Fatalf("round %d: retained slots diverge", round)
		}
		if cold.Untriggered != warm.Untriggered {
			t.Fatalf("round %d: untriggered %d vs %d", round, cold.Untriggered, warm.Untriggered)
		}
		if err := Verify(pw); err != nil {
			t.Fatalf("round %d: cached plan fails Verify: %v", round, err)
		}
	}
	hits, misses := warm.CacheStats()
	if hits == 0 {
		t.Errorf("steady-state identical batches produced no cache hits (misses=%d)", misses)
	}
	if h, m := cold.CacheStats(); h != 0 || m != 0 {
		t.Errorf("uncached converter reports cache traffic %d/%d", h, m)
	}
}

// TestCacheHitPreservesStats pins the replayed stats to the original
// conversion's counters (wall-clock pass times zeroed, CacheHit set).
func TestCacheHitPreservesStats(t *testing.T) {
	net := topo.Figure7()
	g := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
	c := New(g)
	c.EnableCache(0)
	var missStats, hitStats *Stats
	for round := 0; round < 12; round++ {
		p := c.ConvertPlan(fixedBatch(g, len(g.Links)), net.APs)
		if p.Stats.CacheHit && hitStats == nil {
			hitStats = &p.Stats
		} else if !p.Stats.CacheHit {
			missStats = &p.Stats
		}
	}
	if hitStats == nil {
		t.Fatal("no cache hit in 12 steady-state rounds")
	}
	for i, ns := range hitStats.PassNs {
		if ns != 0 {
			t.Errorf("hit PassNs[%d] = %d, want 0", i, ns)
		}
	}
	if hitStats.Triggers != missStats.Triggers || hitStats.Slots != missStats.Slots ||
		hitStats.FakeEntries != missStats.FakeEntries {
		t.Errorf("hit stats %+v diverge from miss stats %+v", hitStats, missStats)
	}
}

func TestCacheKeyDistinguishesState(t *testing.T) {
	net := topo.Figure7()
	g := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
	c := New(g)
	c.EnableCache(0)
	b := fixedBatch(g, 4)
	k1 := c.canonicalKey(b, net.APs)
	if k2 := c.canonicalKey(b, nil); k2 == k1 {
		t.Error("key ignores the poll list")
	}
	if k2 := c.canonicalKey(b[:3], net.APs); k2 == k1 {
		t.Error("key ignores the batch")
	}
	c.coverRot++
	if k2 := c.canonicalKey(b, net.APs); k2 == k1 {
		t.Error("key ignores the cover rotation")
	}
	c.coverRot--
	c.ConvertPlan(b, net.APs) // sets a retained slot
	if k2 := c.canonicalKey(b, net.APs); k2 == k1 {
		t.Error("key ignores the retained slot")
	}
}

func TestCacheEvictionBound(t *testing.T) {
	net := topo.Figure7()
	g := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
	c := New(g)
	c.EnableCache(2)
	// Every round has a distinct retained-slot state (growing trigger
	// history is irrelevant — the batches differ), so entries keep arriving.
	for i := 0; i < 10; i++ {
		c.ConvertPlan(strict.Schedule{{i % len(g.Links)}}, net.APs)
		if len(c.cache.entries) > 2 {
			t.Fatalf("round %d: cache grew past capacity: %d entries", i, len(c.cache.entries))
		}
	}
	info := c.CacheDetails()
	if info.Misses == 0 {
		t.Error("distinct states produced no misses")
	}
	if info.Evictions == 0 {
		t.Error("capacity-2 cache under churn recorded no evictions")
	}
	if info.Occupancy > info.Capacity {
		t.Errorf("occupancy %d exceeds capacity %d", info.Occupancy, info.Capacity)
	}
}

func TestDisableCache(t *testing.T) {
	net := topo.Figure7()
	g := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
	c := New(g)
	c.EnableCache(0)
	c.ConvertPlan(fixedBatch(g, 2), nil)
	c.DisableCache()
	if h, m := c.CacheStats(); h != 0 || m != 0 {
		t.Errorf("stats after DisableCache: %d/%d", h, m)
	}
	c.ConvertPlan(fixedBatch(g, 2), nil) // must not panic without a cache
}
