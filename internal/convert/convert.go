// Package convert implements DOMINO's schedule converter (paper §3.3): it
// turns a strict slot-indexed schedule produced by an arbitrary scheduler
// into a relative schedule in which every slot's transmissions are triggered
// by signature broadcasts from the previous slot.
//
// The conversion is an explicit pass pipeline over a shared *Plan:
//
//	FakeLinkInsert  each slot becomes a maximal cover of the conflict
//	                graph so triggers reach the whole network
//	TriggerAssign   consecutive slots inside the batch are wired
//	                strongest-SNR first (≤ MaxInbound in, ≤ MaxOutbound out)
//	BatchConnect    the retained last slot of the previous batch is wired
//	                to trigger this batch's first slot
//	ROPInsert       polling slots are placed greedily; compatible APs
//	                share one
//
// ConvertPlan runs the pipeline (or replays a cached conversion) and
// returns the Plan; Verify checks the output invariants; Convert is the
// schedule-only wrapper.
package convert

import (
	"repro/internal/phy"
	"repro/internal/strict"
	"repro/internal/topo"
)

// Constraints from the paper's USRP measurements: a trigger combining more
// than 4 signatures risks detection failure (Fig 9), and more than 2 inbound
// triggers per link stops paying off (§3.3).
const (
	DefaultMaxInbound  = 2
	DefaultMaxOutbound = 4
)

// Entry is one link's appearance in a relative slot.
type Entry struct {
	Link *topo.Link
	// Fake marks converter-inserted links: the sender transmits only a
	// header (or nothing if its queue is empty) purely to keep the trigger
	// chain alive.
	Fake bool
	// TriggeredBy lists the broadcasting nodes (from the previous slot)
	// whose signature combination includes this link's sender.
	TriggeredBy []phy.NodeID
}

// Broadcast is one node's end-of-slot signature transmission.
type Broadcast struct {
	// From is the broadcasting node (an endpoint of a link active in the
	// slot).
	From phy.NodeID
	// Targets are the next transmitters whose signatures are combined into
	// this broadcast (≤ MaxOutbound).
	Targets []phy.NodeID
}

// RelSlot is one slot of the relative schedule.
type RelSlot struct {
	Entries []Entry
	// Broadcasts to perform at the end of this slot, triggering the next.
	Broadcasts []Broadcast
	// ROPAfter lists APs that execute Rapid OFDM Polling between this slot
	// and the next; when non-empty the broadcasts carry the ROP signature
	// variant and the next slot's transmitters wait one ROP slot.
	ROPAfter []phy.NodeID
}

// RelSchedule is a converted batch.
type RelSchedule struct {
	Slots []RelSlot
}

// Converter carries conversion state across batches (the retained last slot
// that implements batch connection) and drives the pass pipeline.
type Converter struct {
	G           *topo.ConflictGraph
	MaxInbound  int
	MaxOutbound int
	// DisableFakeCover skips fake-link insertion (ablation: chains then only
	// reach the links the strict scheduler picked).
	DisableFakeCover bool

	prev *RelSlot // last slot of the previous batch
	// coverRot rotates the fake-cover scan order so padded slots don't
	// always favour low link IDs.
	coverRot int

	// cache, when non-nil, memoizes whole-batch conversions keyed by the
	// converter's complete pre-conversion state (see EnableCache).
	cache *Cache

	// tables holds the per-topology precomputed candidate lists and scratch
	// buffers (built lazily on first conversion, see tables.go).
	tables *tables

	// inc, when non-nil, is the incremental re-conversion engine: it memoizes
	// per-slot covers and per-pair trigger assignments so steady-state batches
	// reuse prior work even when the whole-batch cache misses (see diff.go).
	inc *incState

	// Untriggered counts entries for which no trigger path existed (e.g.
	// across disconnected interference domains). Such entries stay in the
	// schedule — the executing AP free-runs them on its local slot clock,
	// the same mechanism that starts the very first batch.
	Untriggered int
}

// New builds a converter with the paper's constraints.
func New(g *topo.ConflictGraph) *Converter {
	return &Converter{G: g, MaxInbound: DefaultMaxInbound, MaxOutbound: DefaultMaxOutbound}
}

// Reset forgets the retained slot (a fresh first batch: APs start the first
// slot spontaneously). Cached conversions stay valid — their keys embed the
// retained-slot state, so they can only replay in an equal state.
func (c *Converter) Reset() { c.prev = nil }

// Convert turns one strict batch into a relative schedule. pollAPs lists the
// APs that must execute ROP during this batch (normally all APs, once per
// batch). The retained last slot of the previous batch triggers this batch's
// first slot; slot 0 of the very first batch has no triggers and is started
// by the APs directly. Convert is the schedule-only wrapper around
// ConvertPlan.
func (c *Converter) Convert(batch strict.Schedule, pollAPs []phy.NodeID) *RelSchedule {
	return &RelSchedule{Slots: c.ConvertPlan(batch, pollAPs).Slots}
}
