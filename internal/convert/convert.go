// Package convert implements DOMINO's schedule converter (paper §3.3): it
// turns a strict slot-indexed schedule produced by an arbitrary scheduler
// into a relative schedule in which every slot's transmissions are triggered
// by signature broadcasts from the previous slot.
//
// The converter applies, in order: fake-link insertion (each slot becomes a
// maximal cover of the conflict graph so triggers reach the whole network),
// trigger assignment (strongest-SNR first, at most MaxInbound triggers per
// link and MaxOutbound signatures per broadcasting node), batch connection
// (the last slot of a batch is retained to trigger the next batch's first
// slot), and greedy ROP-slot insertion (compatible APs share a polling slot).
package convert

import (
	"sort"

	"repro/internal/phy"
	"repro/internal/strict"
	"repro/internal/topo"
)

// Constraints from the paper's USRP measurements: a trigger combining more
// than 4 signatures risks detection failure (Fig 9), and more than 2 inbound
// triggers per link stops paying off (§3.3).
const (
	DefaultMaxInbound  = 2
	DefaultMaxOutbound = 4
)

// Entry is one link's appearance in a relative slot.
type Entry struct {
	Link *topo.Link
	// Fake marks converter-inserted links: the sender transmits only a
	// header (or nothing if its queue is empty) purely to keep the trigger
	// chain alive.
	Fake bool
	// TriggeredBy lists the broadcasting nodes (from the previous slot)
	// whose signature combination includes this link's sender.
	TriggeredBy []phy.NodeID
}

// Broadcast is one node's end-of-slot signature transmission.
type Broadcast struct {
	// From is the broadcasting node (an endpoint of a link active in the
	// slot).
	From phy.NodeID
	// Targets are the next transmitters whose signatures are combined into
	// this broadcast (≤ MaxOutbound).
	Targets []phy.NodeID
}

// RelSlot is one slot of the relative schedule.
type RelSlot struct {
	Entries []Entry
	// Broadcasts to perform at the end of this slot, triggering the next.
	Broadcasts []Broadcast
	// ROPAfter lists APs that execute Rapid OFDM Polling between this slot
	// and the next; when non-empty the broadcasts carry the ROP signature
	// variant and the next slot's transmitters wait one ROP slot.
	ROPAfter []phy.NodeID
}

// RelSchedule is a converted batch.
type RelSchedule struct {
	Slots []RelSlot
}

// Converter carries conversion state across batches (the retained last slot
// that implements batch connection).
type Converter struct {
	G           *topo.ConflictGraph
	MaxInbound  int
	MaxOutbound int
	// DisableFakeCover skips fake-link insertion (ablation: chains then only
	// reach the links the strict scheduler picked).
	DisableFakeCover bool

	prev *RelSlot // last slot of the previous batch
	// coverRot rotates the fake-cover scan order so padded slots don't
	// always favour low link IDs.
	coverRot int

	// Untriggered counts entries for which no trigger path existed (e.g.
	// across disconnected interference domains). Such entries stay in the
	// schedule — the executing AP free-runs them on its local slot clock,
	// the same mechanism that starts the very first batch.
	Untriggered int
}

// New builds a converter with the paper's constraints.
func New(g *topo.ConflictGraph) *Converter {
	return &Converter{G: g, MaxInbound: DefaultMaxInbound, MaxOutbound: DefaultMaxOutbound}
}

// Reset forgets the retained slot (a fresh first batch: APs start the first
// slot spontaneously).
func (c *Converter) Reset() { c.prev = nil }

// Convert turns one strict batch into a relative schedule. pollAPs lists the
// APs that must execute ROP during this batch (normally all APs, once per
// batch). The retained last slot of the previous batch triggers this batch's
// first slot; slot 0 of the very first batch has no triggers and is started
// by the APs directly.
func (c *Converter) Convert(batch strict.Schedule, pollAPs []phy.NodeID) *RelSchedule {
	rs := &RelSchedule{}
	for _, slot := range batch {
		rel := c.buildSlot(slot)
		rs.Slots = append(rs.Slots, rel)
	}
	// Assign triggers between consecutive slots (including prev -> slot 0).
	prev := c.prev
	for i := range rs.Slots {
		if prev != nil {
			c.assignTriggers(prev, &rs.Slots[i])
		}
		prev = &rs.Slots[i]
	}
	c.insertROP(rs, pollAPs)
	if len(rs.Slots) > 0 {
		// Batch connection: retain the last slot itself. Its Broadcasts are
		// still empty — the next batch's Convert fills them in, and because
		// the engine holds the same slot, the triggers become visible to it
		// before the slot's end (convert the next batch while the current
		// one is still executing).
		c.prev = &rs.Slots[len(rs.Slots)-1]
	}
	return rs
}

// buildSlot expands a strict slot to a maximal cover with fake links,
// scanning candidates from a rotating start for fairness.
func (c *Converter) buildSlot(slot strict.Slot) RelSlot {
	real := make(map[int]bool, len(slot))
	for _, id := range slot {
		real[id] = true
	}
	cover := []int(slot)
	if !c.DisableFakeCover {
		n := len(c.G.Links)
		order := make([]int, n)
		for i := range order {
			order[i] = (i + c.coverRot) % n
		}
		c.coverRot = (c.coverRot + 1) % n
		cover = c.G.MaximalIndependentSet(slot, order)
	}
	rel := RelSlot{}
	for _, id := range cover {
		rel.Entries = append(rel.Entries, Entry{Link: c.G.Links[id], Fake: !real[id]})
	}
	return rel
}

// assignTriggers wires the links of next to broadcasters in prev: for each
// link, pick the candidate trigger link whose better endpoint has the
// highest SNR at the link's sender; repeat for a backup trigger. Outbound
// capacity is per broadcasting node.
func (c *Converter) assignTriggers(prev, next *RelSlot) {
	outbound := map[phy.NodeID]int{}
	inbound := make([]int, len(next.Entries))
	targets := map[phy.NodeID][]phy.NodeID{}
	// Preserve broadcasts already planted on prev (ROP poll triggers added
	// when prev was the last slot of the previous batch).
	for _, b := range prev.Broadcasts {
		outbound[b.From] += len(b.Targets)
		targets[b.From] = append(targets[b.From], b.Targets...)
	}

	// candidate broadcasters in prev: both endpoints of every entry.
	type cand struct {
		node phy.NodeID
		link *topo.Link
	}
	var cands []cand
	seen := map[phy.NodeID]bool{}
	for _, e := range prev.Entries {
		for _, n := range []phy.NodeID{e.Link.Sender, e.Link.Receiver} {
			if !seen[n] {
				seen[n] = true
				cands = append(cands, cand{n, e.Link})
			}
		}
	}

	// Two rounds: primary triggers first, then backups.
	for round := 0; round < c.MaxInbound; round++ {
		for i := range next.Entries {
			if inbound[i] != round {
				continue // did not get a trigger in an earlier round
			}
			target := next.Entries[i].Link.Sender
			best := -1
			bestSNR := 0.0
			for ci, cd := range cands {
				if outbound[cd.node] >= c.MaxOutbound {
					continue
				}
				if cd.node == target {
					continue // a node does not trigger itself
				}
				if c.G.Net.RSS[cd.node][target] < topo.TriggerFloorDBm {
					continue
				}
				already := false
				for _, t := range next.Entries[i].TriggeredBy {
					if t == cd.node {
						already = true
						break
					}
				}
				if already {
					continue
				}
				snr := c.G.Net.RSS[cd.node][target]
				if best == -1 || snr > bestSNR {
					best = ci
					bestSNR = snr
				}
			}
			if best == -1 {
				continue
			}
			b := cands[best]
			outbound[b.node]++
			inbound[i]++
			next.Entries[i].TriggeredBy = append(next.Entries[i].TriggeredBy, b.node)
			targets[b.node] = append(targets[b.node], target)
		}
	}

	for i, e := range next.Entries {
		if inbound[i] == 0 && !e.Fake {
			c.Untriggered++
		}
	}

	// Deterministic broadcast list.
	var froms []phy.NodeID
	for n := range targets {
		froms = append(froms, n)
	}
	sort.Slice(froms, func(a, b int) bool { return froms[a] < froms[b] })
	prev.Broadcasts = prev.Broadcasts[:0]
	for _, n := range froms {
		prev.Broadcasts = append(prev.Broadcasts, Broadcast{From: n, Targets: targets[n]})
	}
}

// insertROP greedily places polling slots: for each AP, find the earliest
// slot whose links can trigger the AP; share an already-inserted ROP slot
// when the APs don't conflict (paper §3.3).
func (c *Converter) insertROP(rs *RelSchedule, pollAPs []phy.NodeID) {
	for _, ap := range pollAPs {
		placed := false
		for i := range rs.Slots {
			canTrigger := false
			for _, e := range rs.Slots[i].Entries {
				if c.G.CanTriggerNode(e.Link, ap) {
					canTrigger = true
					break
				}
			}
			if !canTrigger {
				continue
			}
			if len(rs.Slots[i].ROPAfter) == 0 {
				rs.Slots[i].ROPAfter = []phy.NodeID{ap}
				c.addPollTrigger(&rs.Slots[i], ap)
				placed = true
				break
			}
			// Try to share the existing ROP slot.
			share := true
			for _, other := range rs.Slots[i].ROPAfter {
				if c.G.APConflict(ap, other) {
					share = false
					break
				}
			}
			if share {
				rs.Slots[i].ROPAfter = append(rs.Slots[i].ROPAfter, ap)
				c.addPollTrigger(&rs.Slots[i], ap)
				placed = true
				break
			}
		}
		if !placed && len(rs.Slots) > 0 {
			// Fall back to the first slot; polling beats starving the AP's
			// clients even if the trigger is weak.
			rs.Slots[0].ROPAfter = append(rs.Slots[0].ROPAfter, ap)
			c.addPollTrigger(&rs.Slots[0], ap)
		}
	}
}

// addPollTrigger ensures the polling AP's own signature rides in the slot's
// end-of-slot broadcasts so the AP has a time reference for its poll. An AP
// already active (or broadcasting) in the slot needs none.
func (c *Converter) addPollTrigger(slot *RelSlot, ap phy.NodeID) {
	for _, e := range slot.Entries {
		if e.Link.Sender == ap || e.Link.Receiver == ap {
			return // the AP participates in the slot: it knows the boundary
		}
	}
	// Pick the strongest endpoint with spare outbound capacity.
	load := map[phy.NodeID]int{}
	for _, b := range slot.Broadcasts {
		load[b.From] = len(b.Targets)
	}
	best := phy.NodeID(-1)
	bestRSS := 0.0
	for _, e := range slot.Entries {
		for _, n := range []phy.NodeID{e.Link.Sender, e.Link.Receiver} {
			if load[n] >= c.MaxOutbound {
				continue
			}
			rss := c.G.Net.RSS[n][ap]
			if rss < topo.TriggerFloorDBm {
				continue
			}
			if best == -1 || rss > bestRSS {
				best = n
				bestRSS = rss
			}
		}
	}
	if best == -1 {
		return // unreachable AP: it will free-run its poll (engine fallback)
	}
	for i := range slot.Broadcasts {
		if slot.Broadcasts[i].From == best {
			for _, tgt := range slot.Broadcasts[i].Targets {
				if tgt == ap {
					return
				}
			}
			slot.Broadcasts[i].Targets = append(slot.Broadcasts[i].Targets, ap)
			return
		}
	}
	slot.Broadcasts = append(slot.Broadcasts, Broadcast{From: best, Targets: []phy.NodeID{ap}})
}
