package convert

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/phy"
	"repro/internal/strict"
	"repro/internal/topo"
)

// TestChurnEquivalenceProperty drives three converters in lockstep over
// randomized churn workloads — clients joining and leaving (links flipping
// active), backlogs drifting, and periodic returns to earlier demand states —
// and asserts that full re-conversion, incremental re-conversion and
// cache replay produce DeepEqual plans that all pass Verify.
//
// Every batch is padded to a multiple of len(g.Links) slots so the fake-cover
// rotation returns to zero at each batch boundary: recurring demand states
// then recur exactly, which forces the cache-replay and memo-replay paths to
// actually fire (asserted at the end — a property test that never leaves the
// miss path proves nothing).
func TestChurnEquivalenceProperty(t *testing.T) {
	seeds := int64(8)
	batchesPerSeed := 40
	if testing.Short() {
		seeds, batchesPerSeed = 3, 20
	}
	var cacheHits, coverHits, pairHits int64
	feasible := 0
	for seed := int64(1); seed <= seeds; seed++ {
		tr := topo.RandomTrace(seed, 40, 800)
		rng := rand.New(rand.NewSource(seed * 7))
		net, err := topo.BuildT(tr, 6, 2, phy.DefaultConfig(), phy.Rate12, rng)
		if err != nil {
			continue
		}
		feasible++
		g := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
		sched, err := strict.BuildScheduler("lqf", g)
		if err != nil {
			t.Fatalf("seed %d: BuildScheduler: %v", seed, err)
		}

		full := New(g) // no cache, no memos: the reference
		inc := New(g)  // incremental memos only
		inc.EnableIncremental()
		cached := New(g) // batch cache over incremental memos (engine default)
		cached.EnableCache(0)
		cached.EnableIncremental()
		if seed%2 == 0 {
			full.DisableFakeCover = true
			inc.DisableFakeCover = true
			cached.DisableFakeCover = true
		}

		// Churn state: per-link activity and backlog, plus a snapshot the
		// workload periodically returns to (an office emptying and refilling).
		backlog := make([]int, len(g.Links))
		active := make([]bool, len(g.Links))
		for i := range active {
			active[i] = true
			backlog[i] = rng.Intn(5)
		}
		snapBacklog := append([]int(nil), backlog...)
		snapActive := append([]bool(nil), active...)

		for batch := 0; batch < batchesPerSeed; batch++ {
			switch {
			case batch%5 == 4:
				// Return to the remembered demand state: recurrence.
				copy(backlog, snapBacklog)
				copy(active, snapActive)
			default:
				// Joins/leaves: flip a couple of links' activity.
				for k := 0; k < 2; k++ {
					active[rng.Intn(len(active))] = rng.Intn(3) == 0
				}
				// Backlog drift on active links.
				for i := range backlog {
					if !active[i] {
						backlog[i] = 0
						continue
					}
					if backlog[i] += rng.Intn(3) - 1; backlog[i] < 0 {
						backlog[i] = 0
					}
				}
			}

			est := make([]int, len(backlog))
			for i, b := range backlog {
				if active[i] {
					est[i] = b
				}
			}
			b := sched.Batch(est, len(g.Links))
			// Pad to a multiple of len(g.Links) so coverRot realigns (see the
			// test comment); empty slots are what the engine pads with too.
			for len(b)%len(g.Links) != 0 || len(b) == 0 {
				b = append(b, strict.Slot{})
			}

			pFull := full.ConvertPlan(b, net.APs)
			pInc := inc.ConvertPlan(b, net.APs)
			pCached := cached.ConvertPlan(b, net.APs)
			for _, p := range []*Plan{pFull, pInc, pCached} {
				if err := Verify(p); err != nil {
					t.Fatalf("seed %d batch %d: %v", seed, batch, err)
				}
			}
			ref := normalizePlan(pFull)
			if got := normalizePlan(pInc); !reflect.DeepEqual(ref, got) {
				t.Fatalf("seed %d batch %d: incremental plan diverges from full re-conversion", seed, batch)
			}
			if got := normalizePlan(pCached); !reflect.DeepEqual(ref, got) {
				t.Fatalf("seed %d batch %d: cache-replay plan diverges from full re-conversion", seed, batch)
			}
		}
		hits, _ := cached.CacheStats()
		cacheHits += hits
		is := inc.IncrementalStats()
		coverHits += is.CoverHits
		pairHits += is.PairHits
	}
	if feasible == 0 {
		t.Fatal("no feasible random topology; property never exercised")
	}
	if cacheHits == 0 {
		t.Error("cache never replayed a batch: the recurrence in the workload is broken")
	}
	if coverHits == 0 || pairHits == 0 {
		t.Errorf("incremental memos never replayed (cover hits %d, pair hits %d)", coverHits, pairHits)
	}
}

// normalizePlan copies a plan with the fields that legitimately differ
// between conversion paths zeroed: wall-clock pass times, the cache-hit flag
// and the memo-reuse counters. Everything else — slots, triggers,
// broadcasts, the rewritten retained slot, ROP placement and the semantic
// stats — must be identical bit for bit.
func normalizePlan(p *Plan) Plan {
	q := *p
	q.Stats.PassNs = [NumPasses]int64{}
	q.Stats.CacheHit = false
	q.Stats.CoverReuse = 0
	q.Stats.PairReuse = 0
	return q
}
