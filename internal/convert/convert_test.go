package convert

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/strict"
	"repro/internal/topo"
)

func fig7Graph(t *testing.T, down, up bool) *topo.ConflictGraph {
	t.Helper()
	net := topo.Figure7()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo.NewConflictGraph(net, net.BuildLinks(down, up), phy.DefaultConfig(), phy.Rate12)
}

// saturatedBatch builds a strict batch of n slots with every link
// backlogged.
func saturatedBatch(g *topo.ConflictGraph, n int) strict.Schedule {
	r := strict.NewRAND(g)
	var batch strict.Schedule
	for i := 0; i < n; i++ {
		batch = append(batch, r.NextSlot(func(int) int { return 1 }))
	}
	return batch
}

// validate checks the structural invariants of a relative schedule.
func validate(t *testing.T, c *Converter, rs *RelSchedule, firstBatch bool) {
	t.Helper()
	g := c.G
	for si, slot := range rs.Slots {
		// Slot links must be mutually independent (fake links included).
		for a := 0; a < len(slot.Entries); a++ {
			for b := a + 1; b < len(slot.Entries); b++ {
				if g.Conflicts(slot.Entries[a].Link.ID, slot.Entries[b].Link.ID) {
					t.Errorf("slot %d: conflicting entries %v and %v",
						si, slot.Entries[a].Link, slot.Entries[b].Link)
				}
			}
		}
		// Triggers: every entry beyond the start has 1..MaxInbound triggers.
		for _, e := range slot.Entries {
			if si == 0 && firstBatch {
				continue
			}
			if len(e.TriggeredBy) == 0 {
				t.Errorf("slot %d: %v has no trigger", si, e.Link)
			}
			if len(e.TriggeredBy) > c.MaxInbound {
				t.Errorf("slot %d: %v has %d triggers (max %d)",
					si, e.Link, len(e.TriggeredBy), c.MaxInbound)
			}
		}
		// Outbound: every broadcast combines at most MaxOutbound signatures.
		for _, b := range slot.Broadcasts {
			if len(b.Targets) > c.MaxOutbound {
				t.Errorf("slot %d: node %d broadcasts %d signatures (max %d)",
					si, b.From, len(b.Targets), c.MaxOutbound)
			}
		}
	}
}

func TestConvertBasicInvariants(t *testing.T) {
	g := fig7Graph(t, true, true)
	c := New(g)
	batch := saturatedBatch(g, 6)
	rs := c.Convert(batch, nil)
	if len(rs.Slots) != 6 {
		t.Fatalf("slots = %d", len(rs.Slots))
	}
	validate(t, c, rs, true)
	if c.Untriggered != 0 {
		t.Errorf("%d untriggered links in a well-connected topology", c.Untriggered)
	}
	// Broadcast targets of slot i must be exactly the senders triggered in
	// slot i+1.
	for i := 0; i+1 < len(rs.Slots); i++ {
		targets := map[phy.NodeID]int{}
		for _, b := range rs.Slots[i].Broadcasts {
			for _, tgt := range b.Targets {
				targets[tgt]++
			}
		}
		for _, e := range rs.Slots[i+1].Entries {
			if targets[e.Link.Sender] != len(e.TriggeredBy) {
				t.Errorf("slot %d: sender %d has %d broadcast mentions, %d triggers",
					i+1, e.Link.Sender, targets[e.Link.Sender], len(e.TriggeredBy))
			}
		}
	}
}

func TestFakeLinkInsertionMaximalCover(t *testing.T) {
	g := fig7Graph(t, true, false) // conflicts {0,1}, {2,3}
	c := New(g)
	// A strict slot with only link 0: the cover must add link 2 or 3 as a
	// fake link (they don't conflict with 0).
	rs := c.Convert(strict.Schedule{{0}}, nil)
	slot := rs.Slots[0]
	if len(slot.Entries) != 2 {
		t.Fatalf("cover has %d entries, want 2 (1 real + 1 fake)", len(slot.Entries))
	}
	var fake, real int
	for _, e := range slot.Entries {
		if e.Fake {
			fake++
		} else {
			real++
			if e.Link.ID != 0 {
				t.Errorf("real entry is %v, want link 0", e.Link)
			}
		}
	}
	if real != 1 || fake != 1 {
		t.Errorf("real=%d fake=%d", real, fake)
	}
}

func TestInboundBackupTriggers(t *testing.T) {
	g := fig7Graph(t, true, true)
	c := New(g)
	rs := c.Convert(saturatedBatch(g, 8), nil)
	validate(t, c, rs, true)
	// In a dense topology most links should enjoy a backup trigger.
	var with2, total int
	for si := 1; si < len(rs.Slots); si++ {
		for _, e := range rs.Slots[si].Entries {
			total++
			if len(e.TriggeredBy) == 2 {
				with2++
			}
		}
	}
	if total == 0 {
		t.Fatal("no entries after slot 0")
	}
	if with2 == 0 {
		t.Error("no link received a backup trigger")
	}
}

func TestBatchConnection(t *testing.T) {
	g := fig7Graph(t, true, true)
	c := New(g)
	b1 := c.Convert(saturatedBatch(g, 4), nil)
	lastOfB1 := &b1.Slots[len(b1.Slots)-1]
	if len(lastOfB1.Broadcasts) != 0 {
		t.Fatal("last slot broadcasts should be empty until the next batch converts")
	}
	b2 := c.Convert(saturatedBatch(g, 4), nil)
	// Now the retained slot (the same struct the engine executes) carries
	// the broadcasts that trigger b2's first slot.
	if len(lastOfB1.Broadcasts) == 0 {
		t.Fatal("batch connection did not fill the retained slot's broadcasts")
	}
	for _, e := range b2.Slots[0].Entries {
		if len(e.TriggeredBy) == 0 {
			t.Errorf("b2 slot 0 entry %v untriggered despite batch connection", e.Link)
		}
	}
	validate(t, c, b2, false)
}

func TestConverterReset(t *testing.T) {
	g := fig7Graph(t, true, false)
	c := New(g)
	c.Convert(saturatedBatch(g, 2), nil)
	c.Reset()
	rs := c.Convert(saturatedBatch(g, 2), nil)
	for _, e := range rs.Slots[0].Entries {
		if len(e.TriggeredBy) != 0 {
			t.Error("slot 0 after Reset should have no triggers (APs self-start)")
		}
	}
}

func TestROPInsertion(t *testing.T) {
	net := topo.Figure7()
	g := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
	c := New(g)
	rs := c.Convert(saturatedBatch(g, 6), net.APs)
	// Every AP polls somewhere in the batch.
	polled := map[phy.NodeID]bool{}
	for _, slot := range rs.Slots {
		for _, ap := range slot.ROPAfter {
			polled[ap] = true
		}
		// Sharing constraint: APs in one ROP slot must not conflict.
		for i := 0; i < len(slot.ROPAfter); i++ {
			for j := i + 1; j < len(slot.ROPAfter); j++ {
				if g.APConflict(slot.ROPAfter[i], slot.ROPAfter[j]) {
					t.Errorf("conflicting APs %d,%d share an ROP slot",
						slot.ROPAfter[i], slot.ROPAfter[j])
				}
			}
		}
	}
	for _, ap := range net.APs {
		if !polled[ap] {
			t.Errorf("AP %d never polls", ap)
		}
	}
	// APs 1/2 conflict (their links do), so they must be in different ROP
	// slots; APs 1 and 4 could share.
	validate(t, c, rs, true)
}

func TestROPPollTriggerPlanted(t *testing.T) {
	net := topo.Figure7()
	g := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
	c := New(g)
	rs := c.Convert(saturatedBatch(g, 6), net.APs)
	for si, slot := range rs.Slots {
		for _, ap := range slot.ROPAfter {
			// The AP either participates in the slot or its signature rides
			// in some broadcast.
			inSlot := false
			for _, e := range slot.Entries {
				if e.Link.Sender == ap || e.Link.Receiver == ap {
					inSlot = true
				}
			}
			if inSlot {
				continue
			}
			found := false
			for _, b := range slot.Broadcasts {
				for _, tgt := range b.Targets {
					if tgt == ap {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("slot %d: polling AP %d has no trigger", si, ap)
			}
		}
	}
}

func TestDroppedLinksReported(t *testing.T) {
	// An isolated pair out of trigger range of everything: schedule it in a
	// slot after a slot it cannot be triggered from.
	net := topo.Figure13b() // AP1..AP3 mutually unreachable
	g := topo.NewConflictGraph(net, net.BuildLinks(true, false), phy.DefaultConfig(), phy.Rate12)
	c := New(g)
	// Artificial strict schedule: slot of link 0 only, then slot of link 1
	// only. Link 1's AP (node 2) is unreachable from pair 0 — but the fake
	// cover of slot 0 includes every non-conflicting link (all of them), so
	// triggers exist. Constrain the cover by using conflicting... instead,
	// verify Dropped stays 0 here and the mechanism is exercised in the
	// richer engine tests.
	rs := c.Convert(strict.Schedule{{0}, {1}}, nil)
	validate(t, c, rs, true)
}

func TestDeterministicConversion(t *testing.T) {
	g1 := fig7Graph(t, true, true)
	g2 := fig7Graph(t, true, true)
	c1, c2 := New(g1), New(g2)
	b1 := c1.Convert(saturatedBatch(g1, 5), nil)
	b2 := c2.Convert(saturatedBatch(g2, 5), nil)
	if len(b1.Slots) != len(b2.Slots) {
		t.Fatal("slot counts differ")
	}
	for i := range b1.Slots {
		if len(b1.Slots[i].Entries) != len(b2.Slots[i].Entries) {
			t.Fatalf("slot %d entry counts differ", i)
		}
		for j := range b1.Slots[i].Entries {
			if b1.Slots[i].Entries[j].Link.ID != b2.Slots[i].Entries[j].Link.ID {
				t.Fatalf("slot %d entry %d differs", i, j)
			}
		}
		if len(b1.Slots[i].Broadcasts) != len(b2.Slots[i].Broadcasts) {
			t.Fatalf("slot %d broadcast counts differ", i)
		}
	}
}
