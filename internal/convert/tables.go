package convert

import (
	"sort"

	"repro/internal/phy"
	"repro/internal/topo"
)

// tables are the converter's per-topology precomputed structures and
// reusable scratch. Everything here is derived from the conflict graph (and
// the trigger floor) alone, so it is built once, lazily, on the first
// conversion and shared by every batch after that. None of it changes the
// passes' output — the tables only let the greedy scans skip candidates the
// original loops would have rejected anyway.
type tables struct {
	numNodes int
	numLinks int

	// candByTarget[t] lists every node n (≠ t) with RSS[n][t] above the
	// trigger floor, strongest first — the scan order of assignTriggers'
	// argmax. candRSS holds the matching RSS values so the inner loop never
	// touches the RSS matrix.
	candByTarget [][]phy.NodeID
	candRSS      [][]float64

	// linkTrigMask[id] has bit n set when link id can trigger node n
	// (topo.CanTriggerNode), packed 64 nodes per word. ROPInsert ORs entry
	// masks into a slot mask and tests AP bits instead of rescanning
	// entries × endpoints.
	linkTrigMask [][]uint64
	nodeWords    int

	// Scratch reused across assignTriggers calls, reset via the touched
	// lists (never cleared wholesale).
	outbound   []int          // per-node outbound signature count
	candIdx    []int32        // node → index in the current cands list, -1 when absent
	targets    [][]phy.NodeID // per-node accumulated broadcast targets
	fromMark   []bool         // per-node membership flag for touched
	touched    []phy.NodeID   // nodes with broadcast state this call
	candsBuf   []phy.NodeID   // the cands list itself
	inboundBuf []int

	// Scratch for buildSlot.
	orderBuf   []int
	coverBuf   []int
	blockedBuf []uint64
	realStamp  []int // per-link stamp marking strict entries of the current slot
	realEpoch  int

	// Scratch for ROPInsert.
	slotMaskBuf []uint64
}

// buildTables precomputes the trigger tables for graph g.
func buildTables(g *topo.ConflictGraph) *tables {
	n := g.Net.NumNodes()
	t := &tables{
		numNodes:  n,
		numLinks:  len(g.Links),
		nodeWords: (n + 63) / 64,
	}
	t.candByTarget = make([][]phy.NodeID, n)
	t.candRSS = make([][]float64, n)
	for target := 0; target < n; target++ {
		var nodes []phy.NodeID
		for cand := 0; cand < n; cand++ {
			if cand == target {
				continue
			}
			if g.Net.RSS[phy.NodeID(cand)][phy.NodeID(target)] >= topo.TriggerFloorDBm {
				nodes = append(nodes, phy.NodeID(cand))
			}
		}
		// Strongest first; equal-RSS runs are scanned as a group by
		// assignTriggers, so their relative order does not matter.
		sort.SliceStable(nodes, func(a, b int) bool {
			return g.Net.RSS[nodes[a]][phy.NodeID(target)] > g.Net.RSS[nodes[b]][phy.NodeID(target)]
		})
		rss := make([]float64, len(nodes))
		for i, nd := range nodes {
			rss[i] = g.Net.RSS[nd][phy.NodeID(target)]
		}
		t.candByTarget[target] = nodes
		t.candRSS[target] = rss
	}

	t.linkTrigMask = make([][]uint64, len(g.Links))
	words := make([]uint64, len(g.Links)*t.nodeWords)
	for id, l := range g.Links {
		t.linkTrigMask[id] = words[id*t.nodeWords : (id+1)*t.nodeWords]
		for nd := 0; nd < n; nd++ {
			if g.CanTriggerNode(l, phy.NodeID(nd)) {
				t.linkTrigMask[id][nd>>6] |= 1 << (uint(nd) & 63)
			}
		}
	}

	t.outbound = make([]int, n)
	t.candIdx = make([]int32, n)
	for i := range t.candIdx {
		t.candIdx[i] = -1
	}
	t.targets = make([][]phy.NodeID, n)
	t.fromMark = make([]bool, n)
	t.realStamp = make([]int, len(g.Links))
	t.blockedBuf = make([]uint64, (len(g.Links)+63)/64)
	t.slotMaskBuf = make([]uint64, t.nodeWords)
	t.orderBuf = make([]int, len(g.Links))
	return t
}

// tab returns the converter's tables, building them on first use.
func (c *Converter) tab() *tables {
	if c.tables == nil {
		c.tables = buildTables(c.G)
	}
	return c.tables
}
