package convert

import (
	"fmt"

	"repro/internal/phy"
	"repro/internal/topo"
)

// Verify checks the structural invariants of a converted plan:
//
//   - every slot's entries are mutually independent in the conflict graph;
//   - every entry beyond the chain start carries 1..MaxInbound distinct
//     triggers, or provably could not be triggered (every in-range endpoint
//     of the previous slot has exhausted its outbound capacity);
//   - every broadcast combines at most MaxOutbound signatures and comes from
//     an endpoint active in its slot;
//   - the trigger chain is connected, across the batch boundary included:
//     each trigger rides in a broadcast of the preceding slot (the retained
//     previous-batch slot for slot 0), and each broadcast target is either a
//     sender of the following slot or a polling AP of the broadcasting slot;
//   - APs sharing an ROP slot don't conflict, except placements the
//     converter recorded as forced (Plan.ForcedROP).
//
// Call Verify immediately after ConvertPlan: converting the next batch
// rewrites the last slot's broadcasts in place (batch connection), after
// which the forward-target check no longer applies to this plan.
func Verify(p *Plan) error {
	if p.g == nil {
		return fmt.Errorf("convert: Verify on a plan not produced by ConvertPlan")
	}
	g := p.g
	forced := map[phy.NodeID]bool{}
	for _, ap := range p.ForcedROP {
		forced[ap] = true
	}

	for si := range p.Slots {
		slot := &p.Slots[si]

		// Slot independence (fake links included).
		for a := 0; a < len(slot.Entries); a++ {
			for b := a + 1; b < len(slot.Entries); b++ {
				if g.Conflicts(slot.Entries[a].Link.ID, slot.Entries[b].Link.ID) {
					return fmt.Errorf("slot %d: conflicting entries %v and %v",
						si, slot.Entries[a].Link, slot.Entries[b].Link)
				}
			}
		}

		// Inbound triggers and chain connectivity.
		prevSlot := p.Prev
		if si > 0 {
			prevSlot = &p.Slots[si-1]
		}
		for _, e := range slot.Entries {
			if len(e.TriggeredBy) > p.maxInbound {
				return fmt.Errorf("slot %d: %v has %d triggers (max %d)",
					si, e.Link, len(e.TriggeredBy), p.maxInbound)
			}
			seen := map[phy.NodeID]bool{}
			for _, tn := range e.TriggeredBy {
				if seen[tn] {
					return fmt.Errorf("slot %d: %v triggered twice by node %d", si, e.Link, tn)
				}
				seen[tn] = true
			}
			if len(e.TriggeredBy) == 0 {
				if prevSlot == nil {
					continue // chain start: the APs self-start slot 0
				}
				if n, ok := spareBroadcaster(g, prevSlot, e.Link.Sender, p.maxOutbound); ok {
					return fmt.Errorf("slot %d: %v untriggered although node %d is in range with spare outbound capacity",
						si, e.Link, n)
				}
				continue // provably untriggerable: the entry free-runs
			}
			for _, tn := range e.TriggeredBy {
				if !broadcastsTo(prevSlot, tn, e.Link.Sender) {
					return fmt.Errorf("slot %d: %v trigger from node %d has no matching broadcast in the preceding slot",
						si, e.Link, tn)
				}
			}
		}

		// Outbound capacity, unique broadcasters, active-endpoint origin,
		// and forward targets.
		if err := verifyBroadcasts(p, si, slot, nextSenders(p, si)); err != nil {
			return err
		}

		// ROP sharing compatibility.
		for a := 0; a < len(slot.ROPAfter); a++ {
			for b := a + 1; b < len(slot.ROPAfter); b++ {
				pa, pb := slot.ROPAfter[a], slot.ROPAfter[b]
				if forced[pa] || forced[pb] {
					continue
				}
				if g.APConflict(pa, pb) {
					return fmt.Errorf("slot %d: conflicting APs %d and %d share an ROP slot", si, pa, pb)
				}
			}
		}
	}

	// The retained previous-batch slot: BatchConnect rewrote its broadcasts
	// to trigger slot 0 (preserving its planted poll references).
	if p.Prev != nil && len(p.Slots) > 0 {
		senders := map[phy.NodeID]bool{}
		for _, e := range p.Slots[0].Entries {
			senders[e.Link.Sender] = true
		}
		if err := verifyBroadcasts(p, -1, p.Prev, senders); err != nil {
			return err
		}
	}
	return nil
}

// nextSenders collects the transmitters of the slot following si (nil set
// for the last slot: its broadcasts hold only poll references until the
// next batch connects).
func nextSenders(p *Plan, si int) map[phy.NodeID]bool {
	if si+1 >= len(p.Slots) {
		return nil
	}
	senders := map[phy.NodeID]bool{}
	for _, e := range p.Slots[si+1].Entries {
		senders[e.Link.Sender] = true
	}
	return senders
}

// verifyBroadcasts checks one slot's broadcast list: unique in-slot
// broadcasters within outbound capacity, every target either a sender of
// the following slot or a polling AP of this slot. si == -1 denotes the
// retained previous-batch slot.
func verifyBroadcasts(p *Plan, si int, slot *RelSlot, followingSenders map[phy.NodeID]bool) error {
	label := fmt.Sprintf("slot %d", si)
	if si == -1 {
		label = "retained slot"
	}
	endpoints := map[phy.NodeID]bool{}
	for _, e := range slot.Entries {
		endpoints[e.Link.Sender] = true
		endpoints[e.Link.Receiver] = true
	}
	polling := map[phy.NodeID]bool{}
	for _, ap := range slot.ROPAfter {
		polling[ap] = true
	}
	seenFrom := map[phy.NodeID]bool{}
	for _, b := range slot.Broadcasts {
		if seenFrom[b.From] {
			return fmt.Errorf("%s: node %d broadcasts twice", label, b.From)
		}
		seenFrom[b.From] = true
		if len(b.Targets) > p.maxOutbound {
			return fmt.Errorf("%s: node %d combines %d signatures (max %d)",
				label, b.From, len(b.Targets), p.maxOutbound)
		}
		if !endpoints[b.From] {
			return fmt.Errorf("%s: broadcaster %d is not an endpoint of the slot", label, b.From)
		}
		for _, tgt := range b.Targets {
			if !followingSenders[tgt] && !polling[tgt] {
				return fmt.Errorf("%s: broadcast target %d is neither a next-slot sender nor a polling AP",
					label, tgt)
			}
		}
	}
	return nil
}

// spareBroadcaster reports whether some endpoint of prevSlot could still
// have triggered target: in signature range and with outbound capacity to
// spare. Capacity only grows as assignment proceeds, so end-state spare
// capacity proves the converter skipped an eligible broadcaster.
func spareBroadcaster(g *topo.ConflictGraph, prevSlot *RelSlot, target phy.NodeID, maxOutbound int) (phy.NodeID, bool) {
	load := map[phy.NodeID]int{}
	for _, b := range prevSlot.Broadcasts {
		load[b.From] += len(b.Targets)
	}
	for _, e := range prevSlot.Entries {
		for _, n := range [2]phy.NodeID{e.Link.Sender, e.Link.Receiver} {
			if n == target {
				continue
			}
			if g.Net.RSS[n][target] < topo.TriggerFloorDBm {
				continue
			}
			if load[n] < maxOutbound {
				return n, true
			}
		}
	}
	return -1, false
}

// broadcastsTo reports whether node tn broadcasts a signature combination
// containing sender at the end of slot prev.
func broadcastsTo(prev *RelSlot, tn, sender phy.NodeID) bool {
	for _, b := range prev.Broadcasts {
		if b.From != tn {
			continue
		}
		for _, t := range b.Targets {
			if t == sender {
				return true
			}
		}
	}
	return false
}
