package convert

import (
	"repro/internal/phy"
	"repro/internal/strict"
)

// DefaultCacheCap bounds the conversion cache. Steady-state workloads cycle
// through a small set of converter states (the batch is a function of the
// estimate vector and the schedulers' rotation state), so a few hundred
// entries cover the cycle with room to spare.
const DefaultCacheCap = 512

// Cache memoizes whole-batch conversions. The key is a byte serialization
// of everything the pipeline reads: the converter knobs, the cover
// rotation, the strict batch, the poll list, and the full retained-slot
// state. Equal key ⇒ equal pre-conversion state ⇒ the passes would
// recompute exactly the stored result, so replaying it is bit-identical —
// including the broadcast rewrite BatchConnect performs on the retained
// slot the engine is still executing.
type Cache struct {
	capacity int
	entries  map[string]*cacheEntry
	order    []string // insertion order, for FIFO eviction
	keyBuf   []byte

	Hits, Misses int64
}

type cacheEntry struct {
	// slots is a pristine deep copy of the converted schedule; replays hand
	// out fresh copies so the engine's mutations (the next BatchConnect
	// filling the last slot's broadcasts) never reach the cache.
	slots []RelSlot
	// prevBroadcasts is the broadcast list BatchConnect left on the
	// retained slot, replayed onto the live retained slot on a hit. Empty
	// when the conversion had no previous batch.
	prevBroadcasts []Broadcast
	forced         []phy.NodeID
	// coverRotAfter is the cover rotation the pipeline left behind.
	coverRotAfter int
	stats         Stats
}

// EnableCache turns on conversion caching with the given capacity (0 means
// DefaultCacheCap). Hit statistics restart from zero.
func (c *Converter) EnableCache(capacity int) {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	c.cache = &Cache{capacity: capacity, entries: make(map[string]*cacheEntry)}
}

// DisableCache turns conversion caching off and drops all entries.
func (c *Converter) DisableCache() { c.cache = nil }

// CacheStats returns hits and misses since EnableCache; zeros when caching
// is off.
func (c *Converter) CacheStats() (hits, misses int64) {
	if c.cache == nil {
		return 0, 0
	}
	return c.cache.Hits, c.cache.Misses
}

// appendInt serializes one non-negative int as 4 little-endian bytes (all
// serialized values — link IDs, node IDs, lengths, rotation — are small).
func appendInt(b []byte, v int) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendNodes(b []byte, ns []phy.NodeID) []byte {
	b = appendInt(b, len(ns))
	for _, n := range ns {
		b = appendInt(b, int(n))
	}
	return b
}

// cacheKey serializes the complete pre-conversion state.
func (c *Converter) cacheKey(batch strict.Schedule, pollAPs []phy.NodeID) string {
	b := c.cache.keyBuf[:0]
	b = appendInt(b, c.MaxInbound)
	b = appendInt(b, c.MaxOutbound)
	if c.DisableFakeCover {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendInt(b, c.coverRot)
	b = appendInt(b, len(batch))
	for _, slot := range batch {
		b = appendInt(b, len(slot))
		for _, id := range slot {
			b = appendInt(b, id)
		}
	}
	b = appendNodes(b, pollAPs)
	if c.prev == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = appendInt(b, len(c.prev.Entries))
		for _, e := range c.prev.Entries {
			b = appendInt(b, e.Link.ID)
			if e.Fake {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = appendNodes(b, e.TriggeredBy)
		}
		b = appendInt(b, len(c.prev.Broadcasts))
		for _, bc := range c.prev.Broadcasts {
			b = appendInt(b, int(bc.From))
			b = appendNodes(b, bc.Targets)
		}
		b = appendNodes(b, c.prev.ROPAfter)
	}
	c.cache.keyBuf = b
	return string(b)
}

// cacheReplay applies a stored conversion: fresh slot copies, the retained
// slot's broadcast rewrite, and the converter state the pipeline would have
// left behind.
func (c *Converter) cacheReplay(key string, batch strict.Schedule, pollAPs []phy.NodeID) (*Plan, bool) {
	e, ok := c.cache.entries[key]
	if !ok {
		c.cache.Misses++
		return nil, false
	}
	c.cache.Hits++
	slots := copySlots(e.slots)
	p := &Plan{
		Batch: batch, PollAPs: pollAPs, Prev: c.prev,
		Slots:     slots,
		ForcedROP: append([]phy.NodeID(nil), e.forced...),
		Stats:     e.stats,
		g:         c.G, maxInbound: c.MaxInbound, maxOutbound: c.MaxOutbound,
	}
	p.Stats.CacheHit = true
	if c.prev != nil {
		c.prev.Broadcasts = copyBroadcasts(e.prevBroadcasts)
	}
	c.coverRot = e.coverRotAfter
	c.Untriggered += e.stats.Untriggered
	if len(slots) > 0 {
		c.prev = &slots[len(slots)-1]
	}
	return p, true
}

// cacheStore snapshots a freshly-converted plan under key, evicting the
// oldest entry at capacity.
func (c *Converter) cacheStore(key string, p *Plan) {
	e := &cacheEntry{
		slots:         copySlots(p.Slots),
		forced:        append([]phy.NodeID(nil), p.ForcedROP...),
		coverRotAfter: c.coverRot,
		stats:         p.Stats,
	}
	e.stats.CacheHit = false
	e.stats.PassNs = [NumPasses]int64{}
	if p.Prev != nil {
		e.prevBroadcasts = copyBroadcasts(p.Prev.Broadcasts)
	}
	if len(c.cache.entries) >= c.cache.capacity {
		oldest := c.cache.order[0]
		c.cache.order = c.cache.order[1:]
		delete(c.cache.entries, oldest)
	}
	c.cache.entries[key] = e
	c.cache.order = append(c.cache.order, key)
}

func copyBroadcasts(src []Broadcast) []Broadcast {
	if src == nil {
		return nil
	}
	out := make([]Broadcast, len(src))
	for i, b := range src {
		out[i] = Broadcast{From: b.From, Targets: append([]phy.NodeID(nil), b.Targets...)}
	}
	return out
}

func copySlots(src []RelSlot) []RelSlot {
	out := make([]RelSlot, len(src))
	for i, s := range src {
		var entries []Entry
		if s.Entries != nil {
			entries = make([]Entry, len(s.Entries))
			for j, e := range s.Entries {
				entries[j] = Entry{
					Link: e.Link, Fake: e.Fake,
					TriggeredBy: append([]phy.NodeID(nil), e.TriggeredBy...),
				}
			}
		}
		out[i] = RelSlot{
			Entries:    entries,
			Broadcasts: copyBroadcasts(s.Broadcasts),
			ROPAfter:   append([]phy.NodeID(nil), s.ROPAfter...),
		}
	}
	return out
}
