package convert

import (
	"bytes"

	"repro/internal/phy"
	"repro/internal/strict"
)

// DefaultCacheCap bounds the conversion cache. Steady-state workloads cycle
// through a small set of converter states (the batch is a function of the
// estimate vector and the schedulers' rotation state), so a few hundred
// entries cover the cycle with room to spare.
const DefaultCacheCap = 512

// Cache memoizes whole-batch conversions under a canonical key: a byte
// serialization of exactly what the pass pipeline reads, hashed with FNV-1a.
// The passes read from the retained slot only its endpoint sequence (the
// candidate order assignTriggers derives) and its broadcasts — never the
// entries' link identities, fake flags, trigger lists, or ROP markers — so
// those are left out of the key. Equal canonical key ⇒ the passes would
// recompute exactly the stored result, so replaying it is bit-identical,
// including the broadcast rewrite BatchConnect performs on the retained slot
// the engine is still executing.
//
// Entries are bounded by an LRU list with eviction accounting; hash
// collisions are made safe by storing the canonical key bytes and comparing
// them on lookup. Alongside the canonical key a fingerprint of the dropped
// exact state is kept, purely for accounting: hits whose exact fingerprint
// differs from the stored one are hits the old exact keying would have
// missed (CanonicalHits vs ExactHits).
type Cache struct {
	capacity   int
	entries    map[uint64]*cacheNode
	head, tail *cacheNode // LRU order: head = most recent
	keyBuf     []byte
	exactBuf   []byte

	Hits, Misses  int64
	ExactHits     int64 // hits where the dropped exact state matched too
	CanonicalHits int64 // hits only the canonical key could serve
	Evictions     int64
}

// cacheNode is one LRU-linked cache slot.
type cacheNode struct {
	hash       uint64
	key        []byte // canonical key bytes, for collision safety
	exact      uint64 // fingerprint of the dropped exact state at store time
	val        *cacheEntry
	prev, next *cacheNode
}

type cacheEntry struct {
	// slots is a pristine deep copy of the converted schedule; replays hand
	// out fresh copies so the engine's mutations (the next BatchConnect
	// filling the last slot's broadcasts) never reach the cache.
	slots []RelSlot
	// prevBroadcasts is the broadcast list BatchConnect left on the
	// retained slot, replayed onto the live retained slot on a hit. Empty
	// when the conversion had no previous batch.
	prevBroadcasts []Broadcast
	forced         []phy.NodeID
	// coverRotAfter is the cover rotation the pipeline left behind.
	coverRotAfter int
	stats         Stats
}

// EnableCache turns on conversion caching with the given capacity (0 means
// DefaultCacheCap). Hit statistics restart from zero.
func (c *Converter) EnableCache(capacity int) {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	c.cache = &Cache{capacity: capacity, entries: make(map[uint64]*cacheNode)}
}

// DisableCache turns conversion caching off and drops all entries.
func (c *Converter) DisableCache() { c.cache = nil }

// CacheStats returns hits and misses since EnableCache; zeros when caching
// is off.
func (c *Converter) CacheStats() (hits, misses int64) {
	if c.cache == nil {
		return 0, 0
	}
	return c.cache.Hits, c.cache.Misses
}

// CacheInfo is the cache's full accounting snapshot.
type CacheInfo struct {
	Hits, Misses  int64
	ExactHits     int64
	CanonicalHits int64
	Evictions     int64
	Occupancy     int
	Capacity      int
}

// CacheDetails returns the cache's full accounting; zeros when caching is
// off.
func (c *Converter) CacheDetails() CacheInfo {
	if c.cache == nil {
		return CacheInfo{}
	}
	return CacheInfo{
		Hits: c.cache.Hits, Misses: c.cache.Misses,
		ExactHits: c.cache.ExactHits, CanonicalHits: c.cache.CanonicalHits,
		Evictions: c.cache.Evictions,
		Occupancy: len(c.cache.entries), Capacity: c.cache.capacity,
	}
}

// fnv1a is the 64-bit FNV-1a hash — fast, dependency-free, and good enough
// for a collision-checked table.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// appendInt serializes one non-negative int as 4 little-endian bytes (all
// serialized values — link IDs, node IDs, lengths, rotation — are small).
func appendInt(b []byte, v int) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendNodes(b []byte, ns []phy.NodeID) []byte {
	b = appendInt(b, len(ns))
	for _, n := range ns {
		b = appendInt(b, int(n))
	}
	return b
}

// canonicalKey serializes the canonical pre-conversion state into the key
// buffer and returns its hash. The retained slot contributes its endpoint
// sequence (first-occurrence order — exactly the candidate order
// assignTriggers will derive) and its broadcasts; everything else about the
// retained slot is invisible to the passes.
func (c *Converter) canonicalKey(batch strict.Schedule, pollAPs []phy.NodeID) uint64 {
	b := c.cache.keyBuf[:0]
	b = appendInt(b, c.MaxInbound)
	b = appendInt(b, c.MaxOutbound)
	if c.DisableFakeCover {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendInt(b, c.coverRot)
	b = appendInt(b, len(batch))
	for _, slot := range batch {
		b = appendInt(b, len(slot))
		for _, id := range slot {
			b = appendInt(b, id)
		}
	}
	b = appendNodes(b, pollAPs)
	if c.prev == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		t := c.tab()
		cands := t.candsBuf[:0]
		for _, e := range c.prev.Entries {
			s, r := e.Link.Sender, e.Link.Receiver
			if t.candIdx[s] < 0 {
				t.candIdx[s] = int32(len(cands))
				cands = append(cands, s)
			}
			if t.candIdx[r] < 0 {
				t.candIdx[r] = int32(len(cands))
				cands = append(cands, r)
			}
		}
		b = appendNodes(b, cands)
		for _, n := range cands {
			t.candIdx[n] = -1
		}
		t.candsBuf = cands[:0]
		b = appendInt(b, len(c.prev.Broadcasts))
		for _, bc := range c.prev.Broadcasts {
			b = appendInt(b, int(bc.From))
			b = appendNodes(b, bc.Targets)
		}
	}
	c.cache.keyBuf = b
	return fnv1a(b)
}

// exactFingerprint hashes the retained-slot state the canonical key drops
// (entry link IDs, fake flags, trigger lists, ROP markers). Only used to
// split hits into exact vs canonical-only for accounting.
func (c *Converter) exactFingerprint() uint64 {
	b := c.cache.exactBuf[:0]
	if c.prev != nil {
		b = appendInt(b, len(c.prev.Entries))
		for _, e := range c.prev.Entries {
			b = appendInt(b, e.Link.ID)
			if e.Fake {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = appendNodes(b, e.TriggeredBy)
		}
		b = appendNodes(b, c.prev.ROPAfter)
	}
	c.cache.exactBuf = b
	return fnv1a(b)
}

// lruFront moves n to the head of the LRU list (inserting it if detached).
func (ca *Cache) lruFront(n *cacheNode) {
	if ca.head == n {
		return
	}
	// Detach.
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if ca.tail == n {
		ca.tail = n.prev
	}
	// Push front.
	n.prev = nil
	n.next = ca.head
	if ca.head != nil {
		ca.head.prev = n
	}
	ca.head = n
	if ca.tail == nil {
		ca.tail = n
	}
}

// lruRemove unlinks n from the LRU list and the table.
func (ca *Cache) lruRemove(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else if ca.head == n {
		ca.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else if ca.tail == n {
		ca.tail = n.prev
	}
	n.prev, n.next = nil, nil
	delete(ca.entries, n.hash)
}

// cacheReplay applies a stored conversion: fresh slot copies, the retained
// slot's broadcast rewrite, and the converter state the pipeline would have
// left behind. hash/exact come from canonicalKey/exactFingerprint, whose key
// bytes are still in the buffers.
func (c *Converter) cacheReplay(hash, exact uint64, batch strict.Schedule, pollAPs []phy.NodeID) (*Plan, bool) {
	ca := c.cache
	n, ok := ca.entries[hash]
	if !ok || !bytes.Equal(n.key, ca.keyBuf) {
		ca.Misses++
		return nil, false
	}
	ca.Hits++
	if n.exact == exact {
		ca.ExactHits++
	} else {
		ca.CanonicalHits++
	}
	ca.lruFront(n)
	e := n.val
	slots := copySlots(e.slots)
	p := &Plan{
		Batch: batch, PollAPs: pollAPs, Prev: c.prev,
		Slots:     slots,
		ForcedROP: append([]phy.NodeID(nil), e.forced...),
		Stats:     e.stats,
		g:         c.G, maxInbound: c.MaxInbound, maxOutbound: c.MaxOutbound,
	}
	p.Stats.CacheHit = true
	if c.prev != nil {
		c.prev.Broadcasts = copyBroadcasts(e.prevBroadcasts)
	}
	c.coverRot = e.coverRotAfter
	c.Untriggered += e.stats.Untriggered
	if len(slots) > 0 {
		c.prev = &slots[len(slots)-1]
	}
	return p, true
}

// cacheStore snapshots a freshly-converted plan, evicting the
// least-recently-used entry at capacity.
func (c *Converter) cacheStore(hash, exact uint64, p *Plan) {
	ca := c.cache
	e := &cacheEntry{
		slots:         copySlots(p.Slots),
		forced:        append([]phy.NodeID(nil), p.ForcedROP...),
		coverRotAfter: c.coverRot,
		stats:         p.Stats,
	}
	e.stats.CacheHit = false
	e.stats.PassNs = [NumPasses]int64{}
	e.stats.CoverReuse = 0
	e.stats.PairReuse = 0
	if p.Prev != nil {
		e.prevBroadcasts = copyBroadcasts(p.Prev.Broadcasts)
	}
	if old, ok := ca.entries[hash]; ok {
		// Hash collision with different key bytes (a true duplicate key
		// would have replayed): last writer wins.
		ca.lruRemove(old)
	}
	for len(ca.entries) >= ca.capacity {
		ca.Evictions++
		ca.lruRemove(ca.tail)
	}
	n := &cacheNode{
		hash:  hash,
		key:   append([]byte(nil), ca.keyBuf...),
		exact: exact,
		val:   e,
	}
	ca.entries[hash] = n
	ca.lruFront(n)
}

func copyBroadcasts(src []Broadcast) []Broadcast {
	if src == nil {
		return nil
	}
	out := make([]Broadcast, len(src))
	for i, b := range src {
		out[i] = Broadcast{From: b.From, Targets: append([]phy.NodeID(nil), b.Targets...)}
	}
	return out
}

func copySlots(src []RelSlot) []RelSlot {
	out := make([]RelSlot, len(src))
	for i, s := range src {
		var entries []Entry
		if s.Entries != nil {
			entries = make([]Entry, len(s.Entries))
			for j, e := range s.Entries {
				entries[j] = Entry{
					Link: e.Link, Fake: e.Fake,
					TriggeredBy: append([]phy.NodeID(nil), e.TriggeredBy...),
				}
			}
		}
		out[i] = RelSlot{
			Entries:    entries,
			Broadcasts: copyBroadcasts(s.Broadcasts),
			ROPAfter:   append([]phy.NodeID(nil), s.ROPAfter...),
		}
	}
	return out
}
