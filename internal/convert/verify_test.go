package convert

import (
	"strings"
	"testing"

	"repro/internal/phy"
	"repro/internal/strict"
	"repro/internal/topo"
)

func fig7Plan(t *testing.T, batches, slots int) (*Converter, *Plan) {
	t.Helper()
	net := topo.Figure7()
	g := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
	c := New(g)
	var p *Plan
	for i := 0; i < batches; i++ {
		p = c.ConvertPlan(saturatedBatch(g, slots), net.APs)
	}
	return c, p
}

func TestVerifyCleanOnConvertedPlans(t *testing.T) {
	net := topo.Figure7()
	g := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
	c := New(g)
	for i := 0; i < 4; i++ {
		p := c.ConvertPlan(saturatedBatch(g, 6), net.APs)
		if err := Verify(p); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
}

func TestVerifyRejectsForeignPlan(t *testing.T) {
	if err := Verify(&Plan{}); err == nil {
		t.Error("Verify accepted a plan without conversion context")
	}
}

func wantVerifyError(t *testing.T, p *Plan, substr string) {
	t.Helper()
	err := Verify(p)
	if err == nil {
		t.Fatalf("Verify passed, want error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("Verify error %q does not contain %q", err, substr)
	}
}

func TestVerifyDetectsConflictingEntries(t *testing.T) {
	c, p := fig7Plan(t, 1, 4)
	// Plant the conflict partner of an existing entry into its slot.
	g := c.G
	slot := &p.Slots[1]
	for id := range g.Links {
		conflicts := false
		for _, e := range slot.Entries {
			if g.Conflicts(id, e.Link.ID) {
				conflicts = true
				break
			}
		}
		if conflicts {
			slot.Entries = append(slot.Entries, Entry{Link: g.Links[id], TriggeredBy: []phy.NodeID{slot.Entries[0].TriggeredBy[0]}})
			break
		}
	}
	wantVerifyError(t, p, "conflicting entries")
}

func TestVerifyDetectsOverInbound(t *testing.T) {
	_, p := fig7Plan(t, 1, 4)
	e := &p.Slots[1].Entries[0]
	e.TriggeredBy = []phy.NodeID{10, 11, 12}
	wantVerifyError(t, p, "triggers (max")
}

func TestVerifyDetectsDuplicateTrigger(t *testing.T) {
	_, p := fig7Plan(t, 1, 4)
	e := &p.Slots[1].Entries[0]
	e.TriggeredBy = []phy.NodeID{e.TriggeredBy[0], e.TriggeredBy[0]}
	wantVerifyError(t, p, "triggered twice")
}

func TestVerifyDetectsDroppedTrigger(t *testing.T) {
	_, p := fig7Plan(t, 1, 4)
	// Erasing an entry's triggers while its slot's predecessor still has
	// spare broadcasters is a converter bug Verify must flag.
	p.Slots[1].Entries[0].TriggeredBy = nil
	wantVerifyError(t, p, "untriggered although")
}

func TestVerifyDetectsBrokenChain(t *testing.T) {
	_, p := fig7Plan(t, 1, 4)
	// Slot 1's triggers reference slot 0 broadcasts; drop those broadcasts.
	p.Slots[0].Broadcasts = nil
	wantVerifyError(t, p, "no matching broadcast")
}

func TestVerifyDetectsBoundaryBreak(t *testing.T) {
	_, p := fig7Plan(t, 2, 4)
	if p.Prev == nil {
		t.Fatal("second batch has no retained slot")
	}
	// Slot 0 of a connected batch is triggered from the retained slot;
	// wiping the retained broadcasts must break the cross-batch chain.
	p.Prev.Broadcasts = nil
	wantVerifyError(t, p, "no matching broadcast")
}

func TestVerifyDetectsOverOutbound(t *testing.T) {
	c, p := fig7Plan(t, 1, 4)
	slot := &p.Slots[0]
	if len(slot.Broadcasts) == 0 {
		t.Fatal("slot 0 has no broadcasts")
	}
	b := &slot.Broadcasts[0]
	for len(b.Targets) <= c.MaxOutbound {
		b.Targets = append(b.Targets, b.Targets[0])
	}
	wantVerifyError(t, p, "signatures (max")
}

func TestVerifyDetectsForeignBroadcaster(t *testing.T) {
	_, p := fig7Plan(t, 1, 4)
	slot := &p.Slots[0]
	// A node not present in the slot cannot broadcast its end-of-slot
	// signature combination.
	var outsider phy.NodeID = -1
	present := map[phy.NodeID]bool{}
	for _, e := range slot.Entries {
		present[e.Link.Sender], present[e.Link.Receiver] = true, true
	}
	for n := phy.NodeID(0); int(n) < len(p.g.Net.RSS); n++ {
		if !present[n] {
			outsider = n
			break
		}
	}
	if outsider == -1 {
		t.Skip("every node participates in slot 0")
	}
	tgt := p.Slots[1].Entries[0].Link.Sender
	slot.Broadcasts = append(slot.Broadcasts, Broadcast{From: outsider, Targets: []phy.NodeID{tgt}})
	wantVerifyError(t, p, "not an endpoint")
}

func TestVerifyDetectsDanglingTarget(t *testing.T) {
	_, p := fig7Plan(t, 1, 4)
	slot := &p.Slots[0]
	if len(slot.Broadcasts) == 0 {
		t.Fatal("slot 0 has no broadcasts")
	}
	// Target a node that neither transmits in slot 1 nor polls after slot 0.
	next := map[phy.NodeID]bool{}
	for _, e := range p.Slots[1].Entries {
		next[e.Link.Sender] = true
	}
	for _, ap := range slot.ROPAfter {
		next[ap] = true
	}
	var dangling phy.NodeID = -1
	for n := phy.NodeID(0); int(n) < len(p.g.Net.RSS); n++ {
		if !next[n] {
			dangling = n
			break
		}
	}
	if dangling == -1 {
		t.Skip("every node is a valid target")
	}
	slot.Broadcasts[0].Targets[0] = dangling
	wantVerifyError(t, p, "neither a next-slot sender nor a polling AP")
}

func TestVerifyDetectsROPConflict(t *testing.T) {
	c, p := fig7Plan(t, 1, 6)
	g := c.G
	for si := range p.Slots {
		rop := p.Slots[si].ROPAfter
		if len(rop) == 0 {
			continue
		}
		for _, ap := range p.g.Net.APs {
			if g.APConflict(rop[0], ap) {
				p.Slots[si].ROPAfter = append(rop, ap)
				wantVerifyError(t, p, "share an ROP slot")
				return
			}
		}
	}
	t.Skip("no conflicting AP pair available")
}

// TestVerifyCleanWithoutFakeCover: with fake-link insertion disabled the
// chain legitimately dies wherever the strict slots can't reach; Verify must
// accept the provably-untriggerable entries rather than demand triggers.
func TestVerifyCleanWithoutFakeCover(t *testing.T) {
	net := topo.Figure13b()
	g := topo.NewConflictGraph(net, net.BuildLinks(true, false), phy.DefaultConfig(), phy.Rate12)
	c := New(g)
	c.DisableFakeCover = true
	for i := 0; i < 3; i++ {
		p := c.ConvertPlan(strict.Schedule{{0}, {1}, {2}, {3}}, net.APs)
		if err := Verify(p); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
}
