package convert

import (
	"repro/internal/phy"
	"repro/internal/strict"
)

// Incremental re-conversion. Steady-state workloads repeat slot contents and
// adjacent-slot pairs far more often than they repeat whole batches, so even
// when the whole-batch cache misses, most of the pass work has been done
// before. The diff layer memoizes the two dominant units of that work:
//
//   - covers: (coverRot, strict slot) → the maximal-cover expansion
//     FakeLinkInsert would build. Covers with equal content (same link/fake
//     sequence, regardless of which rotation produced them) are interned
//     under one content ID.
//   - pairs: (content ID, content ID) → the full TriggerAssign outcome for
//     one adjacent in-batch slot pair. In-batch pairs always start from
//     empty broadcast state (ROPInsert runs after TriggerAssign), so the
//     assignment is a pure function of the two cover contents and the
//     converter's fixed knobs — the memo replays per-entry trigger lists,
//     the broadcast list, and the stat deltas bit-identically.
//
// Both memos capture on the SECOND sighting of a key: the first records only
// the key, so one-off batches (churny joins/leaves) pay a map insert instead
// of a template copy, and the snapshot cost is only spent on work that has
// already proven repetitive.
//
// BatchConnect (the retained slot carries planted poll broadcasts) and
// ROPInsert (cheap, mutates broadcasts) always run live.
//
// The memos are flushed wholesale when either exceeds its cap — content IDs
// index both maps, so they must stay consistent.
const (
	DefaultCoverMemoCap = 4096
	DefaultPairMemoCap  = 16384
)

type coverTpl struct {
	ids  []int // nil until the second sighting captures the template
	fake []bool
	id   int32 // interned content ID, shared across rotations; -1 until known
}

type pairRes struct {
	trig     [][]phy.NodeID // per next-entry TriggeredBy (nil when none)
	bcasts   []Broadcast    // prev's rebuilt broadcast list
	triggers int
	backups  int
	untrig   int
}

type incState struct {
	covers  map[string]*coverTpl
	content map[string]int32
	pairs   map[uint64]*pairRes // nil value: seen once, payload not yet captured
	keyBuf  []byte

	// batchCovers holds the content IDs of the plan in flight, one per slot
	// (-1 while a cover's content has not been interned yet).
	batchCovers []int32

	coverHits, coverMisses int64
	pairHits, pairMisses   int64
	flushes                int64
}

// EnableIncremental turns on incremental re-conversion: per-slot covers and
// per-pair trigger assignments are memoized across batches. Output is
// bit-identical to full re-conversion.
func (c *Converter) EnableIncremental() {
	c.inc = &incState{
		covers:  make(map[string]*coverTpl),
		content: make(map[string]int32),
		pairs:   make(map[uint64]*pairRes),
	}
}

// DisableIncremental turns incremental re-conversion off and drops the memos.
func (c *Converter) DisableIncremental() { c.inc = nil }

// IncStats reports the incremental layer's cumulative counters.
type IncStats struct {
	CoverHits, CoverMisses int64
	PairHits, PairMisses   int64
	Flushes                int64
	Covers, Pairs          int // current memo occupancy
}

// IncrementalStats returns the incremental layer's counters; zeros when the
// layer is off.
func (c *Converter) IncrementalStats() IncStats {
	if c.inc == nil {
		return IncStats{}
	}
	s := c.inc
	return IncStats{
		CoverHits: s.coverHits, CoverMisses: s.coverMisses,
		PairHits: s.pairHits, PairMisses: s.pairMisses,
		Flushes: s.flushes,
		Covers:  len(s.covers), Pairs: len(s.pairs),
	}
}

// begin prepares the memos for one plan: a wholesale flush when over cap
// (content IDs index both maps, so they go together — flushing between plans
// keeps the in-flight batchCovers valid), then reset of the per-plan state.
func (s *incState) begin() {
	if len(s.covers) > DefaultCoverMemoCap || len(s.pairs) > DefaultPairMemoCap {
		s.flushes++
		s.covers = make(map[string]*coverTpl)
		s.content = make(map[string]int32)
		s.pairs = make(map[uint64]*pairRes)
	}
	s.batchCovers = s.batchCovers[:0]
}

// incBuildSlot is buildSlot behind the cover memo. The key is the
// pre-advance rotation plus the strict slot; a hit instantiates the stored
// template (and advances the rotation exactly as buildSlot would).
func (c *Converter) incBuildSlot(slot strict.Slot, st *Stats) RelSlot {
	s := c.inc
	b := s.keyBuf[:0]
	b = appendInt(b, c.coverRot)
	for _, id := range slot {
		b = appendInt(b, id)
	}
	s.keyBuf = b
	tpl, seen := s.covers[string(b)]
	if seen && tpl.ids != nil {
		s.coverHits++
		st.CoverReuse++
		if !c.DisableFakeCover {
			c.coverRot = (c.coverRot + 1) % len(c.G.Links)
		}
		s.batchCovers = append(s.batchCovers, tpl.id)
		entries := make([]Entry, len(tpl.ids))
		for i, id := range tpl.ids {
			entries[i] = Entry{Link: c.G.Links[id], Fake: tpl.fake[i]}
		}
		return RelSlot{Entries: entries}
	}
	s.coverMisses++
	key := string(b)
	rel := c.buildSlot(slot)
	if !seen {
		// First sighting: record the key only; the template is captured if
		// (when) the cover recurs.
		s.covers[key] = &coverTpl{id: -1}
		s.batchCovers = append(s.batchCovers, -1)
		return rel
	}
	tpl.ids = make([]int, len(rel.Entries))
	tpl.fake = make([]bool, len(rel.Entries))
	for i, e := range rel.Entries {
		tpl.ids[i] = e.Link.ID
		tpl.fake[i] = e.Fake
	}
	tpl.id = s.intern(tpl)
	s.batchCovers = append(s.batchCovers, tpl.id)
	return rel
}

// intern returns the content ID for a cover, assigning a fresh one on first
// sight. Content = the ordered (link, fake) sequence — everything
// TriggerAssign reads from a slot.
func (s *incState) intern(t *coverTpl) int32 {
	b := s.keyBuf[:0]
	for i, id := range t.ids {
		b = appendInt(b, id)
		if t.fake[i] {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	s.keyBuf = b
	if id, ok := s.content[string(b)]; ok {
		return id
	}
	id := int32(len(s.content))
	s.content[string(b)] = id
	return id
}

// incAssignBatch is TriggerAssign behind the pair memo. Pairs whose covers
// have no content ID yet (first sighting) run live without being recorded —
// their covers must recur before the pair can.
func (c *Converter) incAssignBatch(p *Plan) {
	s := c.inc
	for i := 1; i < len(p.Slots); i++ {
		prev, next := &p.Slots[i-1], &p.Slots[i]
		if len(prev.Broadcasts) != 0 || i >= len(s.batchCovers) {
			// Non-pure pair (shouldn't happen in-batch, but stay safe).
			c.assignTriggers(prev, next, &p.Stats)
			continue
		}
		id0, id1 := s.batchCovers[i-1], s.batchCovers[i]
		if id0 < 0 || id1 < 0 {
			s.pairMisses++
			c.assignTriggers(prev, next, &p.Stats)
			continue
		}
		key := uint64(uint32(id0))<<32 | uint64(uint32(id1))
		r, seen := s.pairs[key]
		if seen && r != nil {
			s.pairHits++
			p.Stats.PairReuse++
			applyPairRes(r, prev, next, &p.Stats)
			continue
		}
		s.pairMisses++
		t0, b0, u0 := p.Stats.Triggers, p.Stats.BackupTriggers, p.Stats.Untriggered
		c.assignTriggers(prev, next, &p.Stats)
		if !seen {
			s.pairs[key] = nil // seen once; snapshot if it recurs
			continue
		}
		r = &pairRes{
			triggers: p.Stats.Triggers - t0,
			backups:  p.Stats.BackupTriggers - b0,
			untrig:   p.Stats.Untriggered - u0,
			bcasts:   copyBroadcasts(prev.Broadcasts),
			trig:     make([][]phy.NodeID, len(next.Entries)),
		}
		for j := range next.Entries {
			if tb := next.Entries[j].TriggeredBy; len(tb) > 0 {
				r.trig[j] = append([]phy.NodeID(nil), tb...)
			}
		}
		s.pairs[key] = r
	}
}

// applyPairRes replays a memoized pair assignment onto a fresh slot pair.
func applyPairRes(r *pairRes, prev, next *RelSlot, st *Stats) {
	for j := range next.Entries {
		if tl := r.trig[j]; len(tl) > 0 {
			next.Entries[j].TriggeredBy = append([]phy.NodeID(nil), tl...)
		}
	}
	if len(r.bcasts) > 0 {
		prev.Broadcasts = copyBroadcasts(r.bcasts)
	}
	st.Triggers += r.triggers
	st.BackupTriggers += r.backups
	st.Untriggered += r.untrig
}
