package ofdm_test

import (
	"fmt"
	"math/rand"

	"repro/internal/ofdm"
)

// ExamplePoll runs one Rapid OFDM Polling round: three clients report their
// queue lengths simultaneously in a single 16 µs control symbol.
func ExamplePoll() {
	l := ofdm.DefaultLayout()
	rng := rand.New(rand.NewSource(1))
	clients := []ofdm.Client{
		{Subchannel: 0},
		{Subchannel: 1, CFOHz: 400},
		{Subchannel: 2, DelaySamples: 30}, // 1.5 µs of propagation delay
	}
	res := ofdm.Poll(l, clients, []int{5, 63, 0}, 1e-3, rng)
	fmt.Println("decoded:", res.Values)
	fmt.Println("all ok:", res.OK[0] && res.OK[1] && res.OK[2])
	// Output:
	// decoded: [5 63 0]
	// all ok: true
}
