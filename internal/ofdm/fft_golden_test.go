package ofdm

import (
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// maxDiff returns the largest |a[i]-b[i]| and the largest |b[i]| for scaling
// the tolerance: absolute error in an n-point FFT grows with output
// magnitude, so the cross-check bounds relative error.
func maxDiff(a, b []complex128) (diff, scale float64) {
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > diff {
			diff = d
		}
		if m := cmplx.Abs(b[i]); m > scale {
			scale = m
		}
	}
	if scale == 0 {
		scale = 1
	}
	return diff, scale
}

// TestPlannedFFTMatchesReference golden-checks the planned transform against
// the retained naive implementation on random inputs for every power-of-two
// size 2..1024, both directions, to 1e-12 relative tolerance. The planned
// path uses table-exact twiddles while the reference accumulates them
// incrementally, so the comparison also bounds the reference's drift.
func TestPlannedFFTMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 2; n <= 1024; n <<= 1 {
		for trial := 0; trial < 5; trial++ {
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			planned := append([]complex128(nil), x...)
			reference := append([]complex128(nil), x...)

			FFT(planned)
			ReferenceFFT(reference)
			if diff, scale := maxDiff(planned, reference); diff > 1e-12*scale {
				t.Fatalf("n=%d trial %d: forward diverges by %g (scale %g)", n, trial, diff, scale)
			}

			// Inverse on the forward output must also match the reference
			// and reconstruct the input.
			refInv := append([]complex128(nil), reference...)
			IFFT(planned)
			ReferenceIFFT(refInv)
			if diff, scale := maxDiff(planned, refInv); diff > 1e-12*scale {
				t.Fatalf("n=%d trial %d: inverse diverges by %g (scale %g)", n, trial, diff, scale)
			}
			if diff, scale := maxDiff(planned, x); diff > 1e-12*scale {
				t.Fatalf("n=%d trial %d: round trip error %g (scale %g)", n, trial, diff, scale)
			}
		}
	}
}

// TestPlanFusedScaling pins the satellite-3 contract directly: Inverse's 1/N
// normalisation (fused into the last butterfly stage) equals the reference's
// separate division pass, including for the degenerate 1-point transform.
func TestPlanFusedScaling(t *testing.T) {
	one := []complex128{complex(3, -4)}
	PlanFor(1).Inverse(one)
	if one[0] != complex(3, -4) {
		t.Fatalf("1-point inverse = %v, want identity", one[0])
	}
	x := make([]complex128, 8)
	for i := range x {
		x[i] = complex(float64(i), float64(-i))
	}
	ref := append([]complex128(nil), x...)
	IFFT(x)
	ReferenceIFFT(ref)
	if diff, scale := maxDiff(x, ref); diff > 1e-13*scale {
		t.Fatalf("fused scaling diverges from division pass by %g", diff)
	}
}

// TestPlanConcurrentReuse is the satellite-2 race regression: one shared Plan
// executed from many goroutines at once (each on its own buffer) must be
// race-free — run under -race via the Makefile's race-hot target — and every
// goroutine must get bit-identical output.
func TestPlanConcurrentReuse(t *testing.T) {
	const n = 256
	p := PlanFor(n)
	input := make([]complex128, n)
	rng := rand.New(rand.NewSource(7))
	for i := range input {
		input[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := append([]complex128(nil), input...)
	p.Forward(want)

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]complex128, n)
			for iter := 0; iter < 200; iter++ {
				copy(buf, input)
				p.Forward(buf)
				for i := range buf {
					if buf[i] != want[i] {
						errs <- "concurrent Forward output diverged"
						return
					}
				}
				// PlanFor from racing goroutines must keep returning the
				// same cached plan.
				if PlanFor(n) != p {
					errs <- "PlanFor returned a different plan"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestFFTZeroAllocs pins the hot-path contract: once the plan is cached,
// FFT/IFFT through the package wrappers allocate nothing.
func TestFFTZeroAllocs(t *testing.T) {
	x := make([]complex128, 256)
	x[1] = 1
	PlanFor(256) // warm the cache
	if got := testing.AllocsPerRun(100, func() {
		FFT(x)
		IFFT(x)
	}); got != 0 {
		t.Fatalf("FFT+IFFT allocate %v/op, want 0", got)
	}
}

// TestPollerZeroAllocs checks the full ROP round: with a constructed Poller
// the per-round path (modulate, channel, FFT, demod) allocates nothing in
// steady state.
func TestPollerZeroAllocs(t *testing.T) {
	l := DefaultLayout()
	p := NewPoller(l)
	rng := rand.New(rand.NewSource(3))
	clients := []Client{{Subchannel: 0, GainDB: 3}, {Subchannel: 5}}
	values := []int{17, 42}
	p.Poll(clients, values, 0.05, rng) // warm result-slice capacity
	if got := testing.AllocsPerRun(50, func() {
		p.Poll(clients, values, 0.05, rng)
	}); got != 0 {
		t.Fatalf("Poller.Poll allocates %v/op in steady state, want 0", got)
	}
}

// TestPlanBadLengths mirrors the wrapper panics for the plan constructor.
func TestPlanBadLengths(t *testing.T) {
	for _, n := range []int{-1, 0, 3, 12, 100} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlan(%d) did not panic", n)
				}
			}()
			NewPlan(n)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Forward with mismatched length did not panic")
			}
		}()
		PlanFor(8).Forward(make([]complex128, 16))
	}()
}

func BenchmarkFFT256Reference(b *testing.B) {
	x := make([]complex128, 256)
	x[1] = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReferenceFFT(x)
	}
}
