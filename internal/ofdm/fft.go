// Package ofdm implements the Rapid OFDM Polling PHY (paper §3.1): the
// 256-subcarrier control symbol of Table 1, 2ASK modulation of client queue
// sizes onto per-client subchannels, and a sample-level channel model
// (per-client gain, residual carrier-frequency offset, propagation delay
// within the cyclic prefix, AWGN) from which the inter-subchannel
// interference of Figs 5 and 6 emerges naturally.
package ofdm

import "math"

// FFT computes the in-place radix-2 decimation-in-time FFT. The length must
// be a power of two.
func FFT(x []complex128) { fft(x, false) }

// IFFT computes the in-place inverse FFT with 1/N normalisation.
func IFFT(x []complex128) {
	fft(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fft(x []complex128, inverse bool) {
	n := len(x)
	if n&(n-1) != 0 || n == 0 {
		panic("ofdm: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			for k := 0; k < length/2; k++ {
				u := x[start+k]
				v := x[start+k+length/2] * w
				x[start+k] = u + v
				x[start+k+length/2] = u - v
				w *= wl
			}
		}
	}
}
