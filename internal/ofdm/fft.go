// Package ofdm implements the Rapid OFDM Polling PHY (paper §3.1): the
// 256-subcarrier control symbol of Table 1, 2ASK modulation of client queue
// sizes onto per-client subchannels, and a sample-level channel model
// (per-client gain, residual carrier-frequency offset, propagation delay
// within the cyclic prefix, AWGN) from which the inter-subchannel
// interference of Figs 5 and 6 emerges naturally.
package ofdm

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Plan holds the precomputed state for radix-2 FFTs of one size: the
// bit-reversal permutation and the twiddle-factor tables for both transform
// directions. Building a plan costs two trig calls per table entry; executing
// one costs none and allocates nothing. Plans are immutable after NewPlan
// returns, so a single plan may be shared freely across goroutines.
type Plan struct {
	n     int
	rev   []int32      // bit-reversal permutation; rev[i] < i entries are swap targets
	tw    []complex128 // tw[k] = exp(-2πik/n), k in [0, n/2): forward twiddles
	twInv []complex128 // conjugate table for the inverse transform
}

// NewPlan builds an FFT plan for length n, which must be a power of two.
// Most callers want PlanFor, which caches one plan per size.
func NewPlan(n int) *Plan {
	if n <= 0 || n&(n-1) != 0 {
		panic("ofdm: FFT length must be a power of two")
	}
	p := &Plan{n: n}
	shift := uint(bits.TrailingZeros(uint(n)))
	p.rev = make([]int32, n)
	for i := 1; i < n; i++ {
		p.rev[i] = p.rev[i>>1]>>1 | int32(i&1)<<(shift-1)
	}
	half := n / 2
	p.tw = make([]complex128, half)
	p.twInv = make([]complex128, half)
	for k := 0; k < half; k++ {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.tw[k] = complex(c, s)
		p.twInv[k] = complex(c, -s)
	}
	return p
}

// Size returns the transform length the plan was built for.
func (p *Plan) Size() int { return p.n }

// planCache holds one shared plan per power-of-two size, indexed by log2(n).
// A fixed array of atomic pointers instead of a sync.Map: lookups never box
// the key, so PlanFor stays allocation-free on the per-symbol hot path.
const maxCachedPlanBits = 24

var planCache [maxCachedPlanBits + 1]atomic.Pointer[Plan]

// PlanFor returns the shared plan for length n (a power of two), building and
// caching it on first use. Safe for concurrent use: plans are immutable and
// the cache is lock-free. Steady state performs no allocation.
func PlanFor(n int) *Plan {
	if n <= 0 || n&(n-1) != 0 {
		panic("ofdm: FFT length must be a power of two")
	}
	b := bits.TrailingZeros(uint(n))
	if b > maxCachedPlanBits {
		return NewPlan(n)
	}
	if p := planCache[b].Load(); p != nil {
		return p
	}
	planCache[b].CompareAndSwap(nil, NewPlan(n))
	return planCache[b].Load()
}

// Forward computes the in-place FFT of x, whose length must equal the plan's
// size. Allocation-free.
func (p *Plan) Forward(x []complex128) { p.transform(x, p.tw, 1) }

// Inverse computes the in-place inverse FFT of x with 1/N normalisation. The
// scaling is fused into the final butterfly stage as a real scalar multiply,
// so there is no separate normalisation pass over the output. Allocation-free.
func (p *Plan) Inverse(x []complex128) { p.transform(x, p.twInv, 1/float64(p.n)) }

// transform runs the radix-2 decimation-in-time butterflies using the given
// twiddle table. scale is applied inside the last stage (1 disables it).
func (p *Plan) transform(x []complex128, tw []complex128, scale float64) {
	n := p.n
	if len(x) != n {
		panic("ofdm: FFT input length does not match the plan")
	}
	for i, j := range p.rev {
		if int32(i) < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	if n == 1 {
		if scale != 1 {
			x[0] = complex(real(x[0])*scale, imag(x[0])*scale)
		}
		return
	}
	// All stages but the last: stage `length` uses every (n/length)-th table
	// entry, since exp(-2πik/length) = tw[k·n/length].
	for length := 2; length < n; length <<= 1 {
		half := length >> 1
		stride := n / length
		for start := 0; start < n; start += length {
			k := 0
			for i := start; i < start+half; i++ {
				u := x[i]
				v := x[i+half] * tw[k]
				k += stride
				x[i] = u + v
				x[i+half] = u - v
			}
		}
	}
	// Final stage (length == n, stride 1), with the inverse transform's 1/N
	// folded in as a real scalar multiply on both butterfly outputs.
	half := n >> 1
	if scale != 1 {
		for i := 0; i < half; i++ {
			u := x[i]
			v := x[i+half] * tw[i]
			a, b := u+v, u-v
			x[i] = complex(real(a)*scale, imag(a)*scale)
			x[i+half] = complex(real(b)*scale, imag(b)*scale)
		}
		return
	}
	for i := 0; i < half; i++ {
		u := x[i]
		v := x[i+half] * tw[i]
		x[i] = u + v
		x[i+half] = u - v
	}
}

// FFT computes the in-place radix-2 FFT via the shared cached plan for
// len(x). The length must be a power of two.
func FFT(x []complex128) { PlanFor(len(x)).Forward(x) }

// IFFT computes the in-place inverse FFT with 1/N normalisation via the
// shared cached plan for len(x).
func IFFT(x []complex128) { PlanFor(len(x)).Inverse(x) }

// ReferenceFFT is the pre-plan naive transform (per-stage trig, incremental
// twiddle recurrence), retained for golden cross-checks and before/after
// benchmarks against the planned path.
func ReferenceFFT(x []complex128) { referenceTransform(x, false) }

// ReferenceIFFT is the pre-plan inverse transform with its separate 1/N
// division pass.
func ReferenceIFFT(x []complex128) {
	referenceTransform(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func referenceTransform(x []complex128, inverse bool) {
	n := len(x)
	if n&(n-1) != 0 || n == 0 {
		panic("ofdm: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			for k := 0; k < length/2; k++ {
				u := x[start+k]
				v := x[start+k+length/2] * w
				x[start+k] = u + v
				x[start+k+length/2] = u - v
				w *= wl
			}
		}
	}
}
