package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestModulateCyclicPrefix: the first CPLen samples of a modulated symbol
// must equal its last CPLen samples (the defining CP property), for any
// subchannel and value.
func TestModulateCyclicPrefix(t *testing.T) {
	l := DefaultLayout()
	f := func(sub uint8, value uint8) bool {
		s := int(sub) % l.NumSubchannels()
		v := int(value) % (1 << l.PerSub)
		sym := Modulate(l, s, v)
		if len(sym) != l.SymbolSamples() {
			return false
		}
		for i := 0; i < l.CPLen; i++ {
			if cmplx.Abs(sym[i]-sym[l.N+i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// TestModulateEnergy: symbol energy scales with the number of set bits
// (Parseval through the IFFT).
func TestModulateEnergy(t *testing.T) {
	l := DefaultLayout()
	energy := func(v int) float64 {
		sym := Modulate(l, 0, v)
		var e float64
		for _, s := range sym[l.CPLen:] { // body only
			e += real(s)*real(s) + imag(s)*imag(s)
		}
		return e
	}
	e0 := energy(0)
	e1 := energy(0b100000)
	e6 := energy(0b111111)
	if e0 > 1e-15 {
		t.Errorf("zero value radiates energy %g", e0)
	}
	if math.Abs(e6/e1-6) > 1e-9 {
		t.Errorf("6-bit energy %.3f not 6x the 1-bit energy %.3f", e6, e1)
	}
}

// TestPollLinearity: decoding is per-subchannel — adding a third client on a
// distant subchannel must not change the first two's values.
func TestPollLinearity(t *testing.T) {
	l := DefaultLayout()
	rng := rand.New(rand.NewSource(6))
	base := []Client{{Subchannel: 0}, {Subchannel: 5, CFOHz: 300}}
	vals := []int{13, 42}
	r1 := Poll(l, base, vals, 0, rng)
	r2 := Poll(l, append(base[:2:2], Client{Subchannel: 15}), append(vals[:2:2], 7), 0, rng)
	if r1.Values[0] != r2.Values[0] || r1.Values[1] != r2.Values[1] {
		t.Errorf("distant subchannel changed decodes: %v vs %v", r1.Values, r2.Values[:2])
	}
}
