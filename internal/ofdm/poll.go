package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand"
)

// Client models one polled station's channel toward the AP.
type Client struct {
	// Subchannel assigned at association.
	Subchannel int
	// GainDB is the received signal strength relative to a reference client
	// (the Fig 5/6 experiments sweep the difference between clients).
	GainDB float64
	// CFOHz is the residual carrier-frequency offset after the client tuned
	// to the poll packet's preamble. Residual offsets of a few kHz are what
	// break subcarrier orthogonality and motivate the guard subcarriers.
	CFOHz float64
	// DelaySamples is the client's turnaround propagation delay; it must be
	// smaller than the CP for the common FFT window to work (paper Fig 4).
	DelaySamples int
}

// Poller simulates ROP rounds for one layout with all scratch state — the
// FFT plan, modulation buffers, the receive window and the result slices —
// allocated once at construction. Poll reuses the scratch, so a round
// allocates nothing in steady state; the slices inside the returned
// PollResult alias that scratch and are valid only until the next Poll call.
// A Poller is not safe for concurrent use (the shared Plan underneath is).
type Poller struct {
	l        Layout
	plan     *Plan
	freq     []complex128 // modulation frequency-domain scratch (N)
	sym      []complex128 // one client's time-domain symbol (CP + N)
	rx       []complex128 // superimposed receive buffer (CP + N)
	window   []complex128 // common FFT window (N)
	spectrum []float64
	values   []int
	ok       []bool
}

// NewPoller builds a poller for the layout, sharing the cached FFT plan for
// l.N with every other user of that size.
func NewPoller(l Layout) *Poller {
	return &Poller{
		l:        l,
		plan:     PlanFor(l.N),
		freq:     make([]complex128, l.N),
		sym:      make([]complex128, l.SymbolSamples()),
		rx:       make([]complex128, l.SymbolSamples()),
		window:   make([]complex128, l.N),
		spectrum: make([]float64, l.N),
		values:   make([]int, 0, l.NumSubchannels()),
		ok:       make([]bool, 0, l.NumSubchannels()),
	}
}

// modulate builds one client's time-domain symbol (CP + body) into p.sym,
// carrying the 2ASK-encoded value: bit b of value drives subcarrier b of the
// subchannel at amplitude 1 (bit set) or 0. 2ASK is used because a single
// symbol gives no phase reference (paper §3.1).
func (p *Poller) modulate(sub, value int) {
	freq := p.freq
	for i := range freq {
		freq[i] = 0
	}
	start, mirror := p.l.subchannelStart(sub)
	for b := 0; b < p.l.PerSub; b++ {
		if value&(1<<uint(p.l.PerSub-1-b)) != 0 {
			freq[p.l.bin(start, mirror, b)] = 1
		}
	}
	p.plan.Inverse(freq)
	// The IFFT/FFT round trip through our normalisation restores active
	// subcarriers at unit amplitude; no extra scaling needed.
	copy(p.sym, freq[p.l.N-p.l.CPLen:])
	copy(p.sym[p.l.CPLen:], freq)
}

// Modulate builds one client's time-domain symbol (CP + body) as a fresh
// slice. Convenience wrapper over Poller.modulate for callers outside the
// per-round hot path.
func Modulate(l Layout, sub int, value int) []complex128 {
	p := NewPoller(l)
	p.modulate(sub, value)
	out := make([]complex128, l.SymbolSamples())
	copy(out, p.sym)
	return out
}

// applyChannel applies gain, CFO rotation and delay, adding the result into
// rx (which must be at least SymbolSamples long).
func applyChannel(l Layout, rx, sym []complex128, c Client, rng *rand.Rand) {
	gain := math.Pow(10, c.GainDB/20)
	// A random initial carrier phase: the AP has no phase reference.
	phase := 2 * math.Pi * rng.Float64()
	for n, s := range sym {
		at := n + c.DelaySamples
		if at >= len(rx) {
			break
		}
		rot := cmplx.Exp(complex(0, phase+2*math.Pi*c.CFOHz*float64(n)/SampleRate))
		rx[at] += complex(gain, 0) * s * rot
	}
}

// PollResult is the outcome of one ROP round at the AP.
type PollResult struct {
	// Values holds the decoded queue value per polled client.
	Values []int
	// OK flags whether each client's value matches what it sent.
	OK []bool
	// Spectrum is |Y_k| per FFT bin after the receiver FFT, the quantity
	// paper Fig 5 plots.
	Spectrum []float64
}

// Poll simulates one polling round: every client transmits its value
// simultaneously on its subchannel; the AP takes the FFT window after the CP
// and decodes each subchannel against that client's expected amplitude.
// noiseStd is per-sample complex-noise standard deviation (unit-amplitude
// reference client). The result's slices alias the poller's scratch and are
// overwritten by the next Poll call.
func (p *Poller) Poll(clients []Client, values []int, noiseStd float64, rng *rand.Rand) PollResult {
	if len(clients) != len(values) {
		panic("ofdm: clients/values length mismatch")
	}
	l := p.l
	rx := p.rx
	for i := range rx {
		rx[i] = 0
	}
	for i, c := range clients {
		if c.DelaySamples >= l.CPLen {
			panic("ofdm: client delay exceeds the cyclic prefix")
		}
		p.modulate(c.Subchannel, l.EncodeQueue(values[i]))
		applyChannel(l, rx, p.sym, c, rng)
	}
	for n := range rx {
		rx[n] += complex(rng.NormFloat64()*noiseStd/math.Sqrt2, rng.NormFloat64()*noiseStd/math.Sqrt2)
	}

	// Common FFT window: skip the CP.
	copy(p.window, rx[l.CPLen:])
	p.plan.Forward(p.window)

	spectrum := p.spectrum
	for k, v := range p.window {
		spectrum[k] = cmplx.Abs(v)
	}

	vals, oks := p.values[:0], p.ok[:0]
	for i, c := range clients {
		got := demod(l, spectrum, c)
		vals = append(vals, got)
		oks = append(oks, got == l.EncodeQueue(values[i]))
	}
	p.values, p.ok = vals, oks
	return PollResult{Values: vals, OK: oks, Spectrum: spectrum}
}

// Poll simulates one polling round with throwaway scratch. Experiments that
// poll repeatedly should construct a Poller once and reuse it.
func Poll(l Layout, clients []Client, values []int, noiseStd float64, rng *rand.Rand) PollResult {
	return NewPoller(l).Poll(clients, values, noiseStd, rng)
}

// demod slices one client's subchannel out of the amplitude spectrum: a bit
// is 1 when the subcarrier amplitude exceeds half the client's expected
// amplitude (the AP calibrates per-client amplitude from association-time
// exchanges).
func demod(l Layout, spectrum []float64, c Client) int {
	ref := math.Pow(10, c.GainDB/20)
	start, mirror := l.subchannelStart(c.Subchannel)
	v := 0
	for b := 0; b < l.PerSub; b++ {
		if spectrum[l.bin(start, mirror, b)] > ref/2 {
			v |= 1 << uint(l.PerSub-1-b)
		}
	}
	return v
}

// DefaultCFOMaxHz is the residual carrier-frequency offset after clients tune
// to the poll preamble (~0.2 ppm at 2.4 GHz). With this residual, three guard
// subcarriers tolerate the 38 dB RSS difference of paper §3.1; the Fig 5(b)
// no-guard corruption demonstration uses a poorly-tuned 1.5 kHz client.
const DefaultCFOMaxHz = 550

// DecodeRatio measures the fraction of trials in which a weak client's value
// survives a strong neighbour on the adjacent subchannel — the paper Fig 6
// experiment. rssDiffDB is the strong client's advantage; guard is swept via
// the layout. cfoMaxHz bounds the per-client random residual CFO.
func DecodeRatio(l Layout, rssDiffDB, cfoMaxHz, noiseStd float64, trials int, rng *rand.Rand) float64 {
	p := NewPoller(l)
	clients := make([]Client, 2)
	values := make([]int, 2)
	ok := 0
	for t := 0; t < trials; t++ {
		// Draw order (strong CFO, weak CFO, weak value) is part of the
		// deterministic-results contract; keep it when refactoring.
		clients[0] = Client{Subchannel: 0, GainDB: rssDiffDB, CFOHz: (2*rng.Float64() - 1) * cfoMaxHz} // strong
		clients[1] = Client{Subchannel: 1, GainDB: 0, CFOHz: (2*rng.Float64() - 1) * cfoMaxHz}         // weak (measured)
		// The weak client reports a random queue size: zero bits adjacent to
		// the strong subchannel are the vulnerable ones (leakage flips them
		// to ones).
		values[0] = 1<<l.PerSub - 1
		values[1] = rng.Intn(1 << l.PerSub)
		res := p.Poll(clients, values, noiseStd, rng)
		if res.OK[1] {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}

// SNRFloor measures single-client decode reliability against wideband SNR
// (dB): the §3.1 experiment showing one control symbol decodes down to about
// the 4 dB minimum WiFi itself needs. Wideband SNR is per-sample signal power
// over per-sample noise power — the quantity a receiver reports — so the FFT
// concentrates the subchannel's energy into 6 of 256 bins while noise spreads
// over all of them (the ~16 dB processing margin that makes a single control
// symbol as robust as the lowest WiFi rate).
func SNRFloor(l Layout, snrDB float64, trials int, rng *rand.Rand) float64 {
	// Per-sample power of a full-amplitude report symbol, measured.
	ref := Modulate(l, 0, 1<<l.PerSub-1)
	var p float64
	for _, s := range ref {
		p += real(s)*real(s) + imag(s)*imag(s)
	}
	p /= float64(len(ref))
	noiseStd := math.Sqrt(p / math.Pow(10, snrDB/10))
	poller := NewPoller(l)
	clients := make([]Client, 1)
	values := make([]int, 1)
	ok := 0
	for t := 0; t < trials; t++ {
		clients[0] = Client{Subchannel: rng.Intn(l.NumSubchannels())}
		values[0] = rng.Intn(1 << l.PerSub)
		res := poller.Poll(clients, values, noiseStd, rng)
		if res.OK[0] {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}
