package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand"
)

// Client models one polled station's channel toward the AP.
type Client struct {
	// Subchannel assigned at association.
	Subchannel int
	// GainDB is the received signal strength relative to a reference client
	// (the Fig 5/6 experiments sweep the difference between clients).
	GainDB float64
	// CFOHz is the residual carrier-frequency offset after the client tuned
	// to the poll packet's preamble. Residual offsets of a few kHz are what
	// break subcarrier orthogonality and motivate the guard subcarriers.
	CFOHz float64
	// DelaySamples is the client's turnaround propagation delay; it must be
	// smaller than the CP for the common FFT window to work (paper Fig 4).
	DelaySamples int
}

// Modulate builds one client's time-domain symbol (CP + body) carrying the
// 2ASK-encoded value: bit b of value drives subcarrier b of the subchannel
// at amplitude 1 (bit set) or 0. 2ASK is used because a single symbol gives
// no phase reference (paper §3.1).
func Modulate(l Layout, sub int, value int) []complex128 {
	freq := make([]complex128, l.N)
	idx := l.SubcarrierIndices(sub)
	for b, bin := range idx {
		if value&(1<<uint(len(idx)-1-b)) != 0 {
			freq[bin] = 1
		}
	}
	IFFT(freq)
	// Scale so each active subcarrier arrives with unit amplitude after the
	// receiver FFT (IFFT/FFT round trip through our normalisation restores
	// amplitudes as-is; no extra scaling needed).
	out := make([]complex128, l.CPLen+l.N)
	copy(out, freq[l.N-l.CPLen:])
	copy(out[l.CPLen:], freq)
	return out
}

// applyChannel applies gain, CFO rotation and delay, adding the result into
// rx (which must be at least SymbolSamples long).
func applyChannel(l Layout, rx, sym []complex128, c Client, rng *rand.Rand) {
	gain := math.Pow(10, c.GainDB/20)
	// A random initial carrier phase: the AP has no phase reference.
	phase := 2 * math.Pi * rng.Float64()
	for n, s := range sym {
		at := n + c.DelaySamples
		if at >= len(rx) {
			break
		}
		rot := cmplx.Exp(complex(0, phase+2*math.Pi*c.CFOHz*float64(n)/SampleRate))
		rx[at] += complex(gain, 0) * s * rot
	}
}

// PollResult is the outcome of one ROP round at the AP.
type PollResult struct {
	// Values holds the decoded queue value per polled client.
	Values []int
	// OK flags whether each client's value matches what it sent.
	OK []bool
	// Spectrum is |Y_k| per FFT bin after the receiver FFT, the quantity
	// paper Fig 5 plots.
	Spectrum []float64
}

// Poll simulates one polling round: every client transmits its value
// simultaneously on its subchannel; the AP takes the FFT window after the CP
// and decodes each subchannel against that client's expected amplitude.
// noiseStd is per-sample complex-noise standard deviation (unit-amplitude
// reference client).
func Poll(l Layout, clients []Client, values []int, noiseStd float64, rng *rand.Rand) PollResult {
	if len(clients) != len(values) {
		panic("ofdm: clients/values length mismatch")
	}
	rx := make([]complex128, l.SymbolSamples())
	for i, c := range clients {
		if c.DelaySamples >= l.CPLen {
			panic("ofdm: client delay exceeds the cyclic prefix")
		}
		sym := Modulate(l, c.Subchannel, l.EncodeQueue(values[i]))
		applyChannel(l, rx, sym, c, rng)
	}
	for n := range rx {
		rx[n] += complex(rng.NormFloat64()*noiseStd/math.Sqrt2, rng.NormFloat64()*noiseStd/math.Sqrt2)
	}

	// Common FFT window: skip the CP.
	window := make([]complex128, l.N)
	copy(window, rx[l.CPLen:])
	FFT(window)

	spectrum := make([]float64, l.N)
	for k, v := range window {
		spectrum[k] = cmplx.Abs(v)
	}

	res := PollResult{Spectrum: spectrum}
	for i, c := range clients {
		got := demod(l, spectrum, c)
		res.Values = append(res.Values, got)
		res.OK = append(res.OK, got == l.EncodeQueue(values[i]))
	}
	return res
}

// demod slices one client's subchannel out of the amplitude spectrum: a bit
// is 1 when the subcarrier amplitude exceeds half the client's expected
// amplitude (the AP calibrates per-client amplitude from association-time
// exchanges).
func demod(l Layout, spectrum []float64, c Client) int {
	ref := math.Pow(10, c.GainDB/20)
	idx := l.SubcarrierIndices(c.Subchannel)
	v := 0
	for b, bin := range idx {
		if spectrum[bin] > ref/2 {
			v |= 1 << uint(len(idx)-1-b)
		}
	}
	return v
}

// DefaultCFOMaxHz is the residual carrier-frequency offset after clients tune
// to the poll preamble (~0.2 ppm at 2.4 GHz). With this residual, three guard
// subcarriers tolerate the 38 dB RSS difference of paper §3.1; the Fig 5(b)
// no-guard corruption demonstration uses a poorly-tuned 1.5 kHz client.
const DefaultCFOMaxHz = 550

// DecodeRatio measures the fraction of trials in which a weak client's value
// survives a strong neighbour on the adjacent subchannel — the paper Fig 6
// experiment. rssDiffDB is the strong client's advantage; guard is swept via
// the layout. cfoMaxHz bounds the per-client random residual CFO.
func DecodeRatio(l Layout, rssDiffDB, cfoMaxHz, noiseStd float64, trials int, rng *rand.Rand) float64 {
	ok := 0
	for t := 0; t < trials; t++ {
		cfo := func() float64 { return (2*rng.Float64() - 1) * cfoMaxHz }
		clients := []Client{
			{Subchannel: 0, GainDB: rssDiffDB, CFOHz: cfo()}, // strong
			{Subchannel: 1, GainDB: 0, CFOHz: cfo()},         // weak (measured)
		}
		// The weak client reports a random queue size: zero bits adjacent to
		// the strong subchannel are the vulnerable ones (leakage flips them
		// to ones).
		values := []int{1<<l.PerSub - 1, rng.Intn(1 << l.PerSub)}
		res := Poll(l, clients, values, noiseStd, rng)
		if res.OK[1] {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}

// SNRFloor measures single-client decode reliability against wideband SNR
// (dB): the §3.1 experiment showing one control symbol decodes down to about
// the 4 dB minimum WiFi itself needs. Wideband SNR is per-sample signal power
// over per-sample noise power — the quantity a receiver reports — so the FFT
// concentrates the subchannel's energy into 6 of 256 bins while noise spreads
// over all of them (the ~16 dB processing margin that makes a single control
// symbol as robust as the lowest WiFi rate).
func SNRFloor(l Layout, snrDB float64, trials int, rng *rand.Rand) float64 {
	// Per-sample power of a full-amplitude report symbol, measured.
	ref := Modulate(l, 0, 1<<l.PerSub-1)
	var p float64
	for _, s := range ref {
		p += real(s)*real(s) + imag(s)*imag(s)
	}
	p /= float64(len(ref))
	noiseStd := math.Sqrt(p / math.Pow(10, snrDB/10))
	ok := 0
	for t := 0; t < trials; t++ {
		clients := []Client{{Subchannel: rng.Intn(l.NumSubchannels())}}
		want := rng.Intn(1 << l.PerSub)
		res := Poll(l, clients, []int{want}, noiseStd, rng)
		if res.OK[0] {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}
