package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFFTKnownValues(t *testing.T) {
	// Impulse -> flat spectrum.
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v", k, v)
		}
	}
	// Single complex tone at bin 3.
	n := 16
	y := make([]complex128, n)
	for i := range y {
		ang := 2 * math.Pi * 3 * float64(i) / float64(n)
		y[i] = cmplx.Exp(complex(0, ang))
	}
	FFT(y)
	for k, v := range y {
		want := 0.0
		if k == 3 {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("tone FFT bin %d = %v", k, v)
		}
	}
}

func TestFFTRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 8, 64, 256} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: roundtrip mismatch at %d", n, i)
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 256
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	FFT(x)
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-6*timeE {
		t.Fatalf("Parseval: time %v vs freq/N %v", timeE, freqE/float64(n))
	}
}

func TestFFTBadLengthPanics(t *testing.T) {
	for _, n := range []int{0, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FFT of length %d did not panic", n)
				}
			}()
			FFT(make([]complex128, n))
		}()
	}
}

func TestDefaultLayoutMatchesTable1(t *testing.T) {
	l := DefaultLayout()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.N != 256 {
		t.Errorf("N = %d", l.N)
	}
	if l.NumSubchannels() != 24 {
		t.Errorf("subchannels = %d, want 24", l.NumSubchannels())
	}
	if l.PerSub != 6 || l.Guard != 3 {
		t.Errorf("per-sub/guard = %d/%d", l.PerSub, l.Guard)
	}
	if got := l.SymbolDurationUs(); math.Abs(got-16) > 1e-9 {
		t.Errorf("symbol duration = %v µs, want 16", got)
	}
	if got := float64(l.CPLen) / SampleRate * 1e6; math.Abs(got-3.2) > 1e-9 {
		t.Errorf("CP duration = %v µs, want 3.2", got)
	}
}

func TestLayoutAllocation(t *testing.T) {
	l := DefaultLayout()
	used := map[int]int{}
	for s := 0; s < l.NumSubchannels(); s++ {
		idx := l.SubcarrierIndices(s)
		if len(idx) != 6 {
			t.Fatalf("subchannel %d has %d subcarriers", s, len(idx))
		}
		for _, bin := range idx {
			if bin <= 0 || bin >= l.N {
				t.Fatalf("subchannel %d uses invalid bin %d", s, bin)
			}
			if bin == l.N/2 {
				t.Fatalf("subchannel %d uses the Nyquist bin", s)
			}
			used[bin]++
		}
	}
	// DC never used; no bin shared.
	if used[0] != 0 {
		t.Error("DC bin allocated")
	}
	for bin, n := range used {
		if n > 1 {
			t.Errorf("bin %d allocated %d times", bin, n)
		}
	}
	if len(used) != 144 {
		t.Errorf("%d data subcarriers, want 144", len(used))
	}
	// Guard accounting: 256 = 144 data + 72 inter-subchannel guards + 39
	// edge guards + 1 DC (paper §3.1).
	if free := l.N - len(used) - 1; free != 72+39 {
		t.Errorf("non-data, non-DC bins = %d, want 111", free)
	}
	// Adjacent subchannels on one side are separated by exactly Guard bins.
	a := l.SubcarrierIndices(0)
	b := l.SubcarrierIndices(1)
	if b[0]-a[len(a)-1]-1 != l.Guard {
		t.Errorf("gap between subchannels = %d, want %d", b[0]-a[len(a)-1]-1, l.Guard)
	}
	// Out-of-range panics.
	defer func() {
		if recover() == nil {
			t.Error("subchannel 24 did not panic")
		}
	}()
	l.SubcarrierIndices(24)
}

func TestEncodeQueue(t *testing.T) {
	l := DefaultLayout()
	cases := map[int]int{-5: 0, 0: 0, 1: 1, 63: 63, 64: 63, 1000: 63}
	for in, want := range cases {
		if got := l.EncodeQueue(in); got != want {
			t.Errorf("EncodeQueue(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPollCleanAllSubchannels(t *testing.T) {
	// The headline ROP property: all 24 clients report in ONE symbol.
	l := DefaultLayout()
	rng := rand.New(rand.NewSource(3))
	var clients []Client
	var values []int
	for s := 0; s < l.NumSubchannels(); s++ {
		clients = append(clients, Client{Subchannel: s})
		values = append(values, rng.Intn(64))
	}
	res := Poll(l, clients, values, 1e-3, rng)
	for i, ok := range res.OK {
		if !ok {
			t.Errorf("client %d: decoded %d, sent %d", i, res.Values[i], values[i])
		}
	}
}

func TestPollDelaysWithinCP(t *testing.T) {
	// Turnaround delays up to 2 µs (40 samples) must not hurt: the CP
	// absorbs them (paper Fig 4).
	l := DefaultLayout()
	rng := rand.New(rand.NewSource(4))
	clients := []Client{
		{Subchannel: 0, DelaySamples: 0},
		{Subchannel: 1, DelaySamples: 40},
		{Subchannel: 2, DelaySamples: 63},
	}
	values := []int{0b101010, 0b111111, 0b000001}
	res := Poll(l, clients, values, 1e-3, rng)
	for i, ok := range res.OK {
		if !ok {
			t.Errorf("client %d with delay %d failed: got %d want %d",
				i, clients[i].DelaySamples, res.Values[i], values[i])
		}
	}
}

func TestPollDelayBeyondCPPanics(t *testing.T) {
	l := DefaultLayout()
	defer func() {
		if recover() == nil {
			t.Error("delay ≥ CP did not panic")
		}
	}()
	Poll(l, []Client{{Subchannel: 0, DelaySamples: 64}}, []int{1}, 0, rand.New(rand.NewSource(1)))
}

// TestFig5a: adjacent subchannels, similar RSS, no guard — both decode.
func TestFig5a(t *testing.T) {
	l := DefaultLayout()
	l.Guard = 0
	rng := rand.New(rand.NewSource(5))
	clients := []Client{
		{Subchannel: 0, CFOHz: 900},
		{Subchannel: 1, CFOHz: -700},
	}
	values := []int{0b111111, 0b011111} // the paper's bit patterns
	res := Poll(l, clients, values, 1e-3, rng)
	if !res.OK[0] || !res.OK[1] {
		t.Errorf("equal-RSS adjacent subchannels failed: %v %v (got %b, %b)",
			res.OK[0], res.OK[1], res.Values[0], res.Values[1])
	}
}

// TestFig5bc: with a 30 dB RSS difference and a poorly-tuned (1.2 kHz
// residual CFO) strong client, the weak client is corrupted without guards
// and survives with 3 guard subcarriers.
func TestFig5bc(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	run := func(guard int) float64 {
		l := DefaultLayout()
		l.Guard = guard
		return DecodeRatio(l, 30, 1200, 1e-3, 200, rng)
	}
	noGuard := run(0)
	withGuard := run(3)
	if noGuard > 0.7 {
		t.Errorf("no-guard decode ratio at 30 dB = %.2f, want corrupted (Fig 5b)", noGuard)
	}
	if withGuard < 0.9 {
		t.Errorf("3-guard decode ratio at 30 dB = %.2f, want ≈1 (Fig 5c)", withGuard)
	}
}

// TestFig6Shape: the guard-subcarrier sweep at the well-tuned residual CFO.
// Three guards tolerate the 38 dB difference the trace statistics call for;
// tolerance grows with guards and collapses at larger differences.
func TestFig6Shape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ratio := func(guard int, diff float64) float64 {
		l := DefaultLayout()
		l.Guard = guard
		return DecodeRatio(l, diff, DefaultCFOMaxHz, 1e-3, 150, rng)
	}
	if r := ratio(3, 38); r < 0.9 {
		t.Errorf("3 guards at 38 dB: ratio %.2f, want ≥0.9 (paper §3.1)", r)
	}
	if r := ratio(3, 46); r > 0.7 {
		t.Errorf("3 guards at 46 dB: ratio %.2f, should degrade", r)
	}
	if r0, r3 := ratio(0, 38), ratio(3, 38); r0 > r3-0.2 {
		t.Errorf("guards don't help at 38 dB: g0=%.2f g3=%.2f", r0, r3)
	}
	// Monotone in guards at a fixed 36 dB difference.
	prev := -1.0
	for g := 0; g <= 4; g++ {
		r := ratio(g, 36)
		if r < prev-0.12 { // allow Monte-Carlo wiggle
			t.Errorf("ratio not increasing with guards: g=%d r=%.2f prev=%.2f", g, r, prev)
		}
		prev = r
	}
	// Monotone (decreasing) in RSS difference for g=3.
	prevR := 2.0
	for _, d := range []float64{20, 30, 38, 44, 50} {
		r := ratio(3, d)
		if r > prevR+0.12 {
			t.Errorf("ratio not decreasing with RSS diff: d=%v r=%.2f prev=%.2f", d, r, prevR)
		}
		prevR = r
	}
}

// TestSNRFloor: the single-symbol report decodes reliably down to about the
// 4 dB SNR at which WiFi's lowest rate works (paper §3.1).
func TestSNRFloor(t *testing.T) {
	l := DefaultLayout()
	rng := rand.New(rand.NewSource(8))
	if r := SNRFloor(l, 4, 150, rng); r < 0.95 {
		t.Errorf("decode ratio at 4 dB = %.2f, want ≥0.95", r)
	}
	if r := SNRFloor(l, 10, 100, rng); r < 0.99 {
		t.Errorf("decode ratio at 10 dB = %.2f", r)
	}
	if r := SNRFloor(l, -16, 150, rng); r > 0.7 {
		t.Errorf("decode ratio at -16 dB = %.2f, should fail", r)
	}
}

func TestSpectrumShape(t *testing.T) {
	// The spectrum output feeds the Fig 5 plots: active bins carry ≈ the
	// client amplitude, guard bins well below it.
	l := DefaultLayout()
	rng := rand.New(rand.NewSource(9))
	res := Poll(l, []Client{{Subchannel: 3}}, []int{0b111111}, 1e-4, rng)
	idx := l.SubcarrierIndices(3)
	for _, bin := range idx {
		if res.Spectrum[bin] < 0.9 {
			t.Errorf("active bin %d amplitude %.3f", bin, res.Spectrum[bin])
		}
	}
	guardBin := idx[len(idx)-1] + 2
	if res.Spectrum[guardBin] > 0.1 {
		t.Errorf("guard bin %d amplitude %.3f", guardBin, res.Spectrum[guardBin])
	}
}

func TestPollMismatchedArgsPanics(t *testing.T) {
	l := DefaultLayout()
	defer func() {
		if recover() == nil {
			t.Error("mismatched clients/values did not panic")
		}
	}()
	Poll(l, []Client{{Subchannel: 0}}, []int{1, 2}, 0, rand.New(rand.NewSource(1)))
}

func BenchmarkFFT256(b *testing.B) {
	x := make([]complex128, 256)
	for i := range x {
		x[i] = complex(float64(i%7), float64(i%5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkPollRound(b *testing.B) {
	l := DefaultLayout()
	rng := rand.New(rand.NewSource(1))
	var clients []Client
	var values []int
	for s := 0; s < 24; s++ {
		clients = append(clients, Client{Subchannel: s, CFOHz: 500})
		values = append(values, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Poll(l, clients, values, 1e-3, rng)
	}
}
