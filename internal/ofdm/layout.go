package ofdm

import "fmt"

// SampleRate is the 20 MHz channel sampling rate.
const SampleRate = 20e6

// Layout describes the ROP control symbol's subcarrier allocation
// (paper Table 1 and Fig 3).
type Layout struct {
	// N is the FFT size (256 for ROP vs 64 for regular WiFi).
	N int
	// PerSub is the number of data subcarriers per subchannel (6: one bit
	// each, encoding queue sizes 0..63 in 2ASK).
	PerSub int
	// Guard is the number of guard subcarriers between adjacent subchannels
	// (3 by default; Fig 6 sweeps 0..4).
	Guard int
	// CPLen is the cyclic-prefix length in samples (64 = 3.2 µs), sized so
	// the longest turnaround propagation delay (2 µs at 300 m) still leaves
	// a clean FFT window.
	CPLen int
	// EdgeGuard is the number of unused subcarriers at the top of the
	// positive half; the mirrored bottom edge gets EdgeGuard+1. With the
	// default layout that totals 39, matching 802.11's proportion of guard
	// band (paper §3.1).
	EdgeGuard int
}

// DefaultLayout returns the Table 1 parameter set: 256 subcarriers, 24
// subchannels of 6, 3 guard subcarriers, 3.2 µs CP, 16 µs symbol.
func DefaultLayout() Layout {
	return Layout{N: 256, PerSub: 6, Guard: 3, CPLen: 64, EdgeGuard: 19}
}

// SymbolSamples returns the total time-domain length: CP plus FFT body.
func (l Layout) SymbolSamples() int { return l.CPLen + l.N }

// SymbolDurationUs returns the symbol duration in microseconds (16 µs for
// the default layout).
func (l Layout) SymbolDurationUs() float64 {
	return float64(l.SymbolSamples()) / SampleRate * 1e6
}

// perSide returns how many subchannels fit on each half of the spectrum.
func (l Layout) perSide() int {
	usable := l.N/2 - 1 - l.EdgeGuard // indices 1..N/2-1 minus top edge
	return usable / (l.PerSub + l.Guard)
}

// NumSubchannels returns how many subchannels the layout offers (24 for the
// default: 12 per spectral half).
func (l Layout) NumSubchannels() int { return 2 * l.perSide() }

// subchannelStart resolves subchannel s to its first data subcarrier offset
// on the positive half and whether it mirrors onto negative frequencies.
// Together with bin it lets hot paths walk a subchannel's FFT bins without
// materialising an index slice.
func (l Layout) subchannelStart(s int) (start int, mirror bool) {
	side := l.perSide()
	if s < 0 || s >= 2*side {
		panic(fmt.Sprintf("ofdm: subchannel %d out of range (have %d)", s, 2*side))
	}
	span := l.PerSub + l.Guard
	if s < side {
		return 1 + s*span, false
	}
	return 1 + (s-side)*span, true
}

// bin returns the FFT bin index of data subcarrier i for a subchannel
// resolved by subchannelStart.
func (l Layout) bin(start int, mirror bool, i int) int {
	if mirror {
		return l.N - (start + i)
	}
	return start + i
}

// SubcarrierIndices returns the FFT bin indices of subchannel s's data
// subcarriers. Subchannels 0..perSide-1 sit on positive frequencies rising
// from DC; perSide..2·perSide-1 mirror onto negative frequencies (bins
// N/2+1..N-1), exactly as drawn in paper Fig 3. The DC bin is never used.
func (l Layout) SubcarrierIndices(s int) []int {
	start, mirror := l.subchannelStart(s)
	out := make([]int, l.PerSub)
	for i := range out {
		out[i] = l.bin(start, mirror, i)
	}
	return out
}

// Validate checks internal consistency.
func (l Layout) Validate() error {
	if l.N <= 0 || l.N&(l.N-1) != 0 {
		return fmt.Errorf("ofdm: N=%d not a power of two", l.N)
	}
	if l.PerSub <= 0 || l.Guard < 0 || l.CPLen < 0 || l.EdgeGuard < 0 {
		return fmt.Errorf("ofdm: negative layout parameter")
	}
	if l.NumSubchannels() < 1 {
		return fmt.Errorf("ofdm: layout fits no subchannels")
	}
	return nil
}

// EncodeQueue maps a queue length to the 6-bit (PerSub-bit) value actually
// reported: queues longer than the field saturate at its maximum, and the
// client keeps track of the unreported remainder (paper §3.1).
func (l Layout) EncodeQueue(queueLen int) int {
	max := 1<<l.PerSub - 1
	if queueLen < 0 {
		return 0
	}
	if queueLen > max {
		return max
	}
	return queueLen
}
