package spec

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/sim"
)

// Duration is a sim.Time that (de)serializes as a human-readable duration
// string ("5s", "500ms"); plain JSON numbers are accepted as nanoseconds.
type Duration sim.Time

// Time converts to the kernel's time type.
func (d Duration) Time() sim.Time { return sim.Time(d) }

// String renders the duration in time.Duration notation.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		td, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("spec: bad duration %q: %v", s, err)
		}
		*d = Duration(td.Nanoseconds())
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("spec: duration must be a string like \"5s\" or integer nanoseconds: %v", err)
	}
	*d = Duration(n)
	return nil
}
