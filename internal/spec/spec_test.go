package spec_test

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/spec"

	// Engine packages register their schemes in init; Validate needs them.
	_ "repro/internal/centaur"
	_ "repro/internal/dcf"
	_ "repro/internal/domino"
	_ "repro/internal/strict"
)

func boolPtr(b bool) *bool      { return &b }
func intPtr(n int) *int         { return &n }
func f64Ptr(f float64) *float64 { return &f }
func i64Ptr(i int64) *int64     { return &i }

// fullSpec exercises every field of the schema.
func fullSpec() spec.Spec {
	return spec.Spec{
		Scheme:   "domino",
		Topology: spec.Topology{Kind: "random", APs: 5, Clients: 2, Seed: i64Ptr(9), Nodes: 60, AreaM: 500, AssocFloorDBm: f64Ptr(-75)},
		Links: []spec.Link{
			{Sender: 0, Receiver: 1, Downlink: true},
			{Sender: 3, Receiver: 2, Downlink: false},
		},
		Downlink:      boolPtr(true),
		Uplink:        boolPtr(false),
		Seed:          7,
		Duration:      spec.Duration(5 * sim.Second),
		Warmup:        spec.Duration(500 * sim.Millisecond),
		Traffic:       spec.Traffic{Kind: "udp", DownMbps: 10, UpMbps: 4},
		PacketBytes:   1024,
		RateMbps:      24,
		Phy:           &spec.Phy{NoiseDBm: f64Ptr(-90), SigSINRdB: f64Ptr(3)},
		MisalignSlots: 8,
		SchemeConfig:  json.RawMessage(`{"BatchSize":12}`),
		Obs:           spec.Obs{Metrics: true, TraceFile: "trace.ndjson"},
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	orig := fullSpec()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := spec.Parse(data)
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Errorf("round trip changed the spec:\nbefore %+v\nafter  %+v", orig, back)
	}
}

func TestDurationForms(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want sim.Time
	}{
		{`"5s"`, 5 * sim.Second},
		{`"300ms"`, 300 * sim.Millisecond},
		{`"1.5s"`, 1500 * sim.Millisecond},
		{`250000000`, 250 * sim.Millisecond}, // plain nanoseconds
	} {
		var d spec.Duration
		if err := json.Unmarshal([]byte(tc.in), &d); err != nil {
			t.Errorf("%s: %v", tc.in, err)
			continue
		}
		if d.Time() != tc.want {
			t.Errorf("%s parsed to %v, want %v", tc.in, d.Time(), tc.want)
		}
	}
	var d spec.Duration
	if err := json.Unmarshal([]byte(`"not-a-duration"`), &d); err == nil {
		t.Error("bad duration string accepted")
	}
}

func TestParseRejectsUnknownFieldsAndTrailingData(t *testing.T) {
	if _, err := spec.Parse([]byte(`{"scheme": "dcf", "topolgy": {"kind": "fig1"}}`)); err == nil {
		t.Error("typo'd field name accepted")
	}
	if _, err := spec.Parse([]byte(`{"scheme": "dcf"} {"scheme": "domino"}`)); err == nil {
		t.Error("trailing document accepted")
	}
}

func TestValidateCatalog(t *testing.T) {
	base := func() spec.Spec {
		return spec.Spec{Scheme: "dcf", Topology: spec.Topology{Kind: "fig1"}}
	}
	cases := []struct {
		name    string
		mutate  func(*spec.Spec)
		wantErr string
	}{
		{"valid minimal", func(s *spec.Spec) {}, ""},
		{"missing scheme", func(s *spec.Spec) { s.Scheme = "" }, "scheme is required"},
		{"unknown scheme", func(s *spec.Spec) { s.Scheme = "aloha" }, "unknown scheme"},
		{"alias scheme ok", func(s *spec.Spec) { s.Scheme = "omni" }, ""},
		{"missing topology", func(s *spec.Spec) { s.Topology = spec.Topology{} }, "topology.kind is required"},
		{"unknown topology", func(s *spec.Spec) { s.Topology.Kind = "mesh" }, "unknown topology kind"},
		{"fixed topo with aps", func(s *spec.Spec) { s.Topology.APs = 4 }, "is fixed"},
		{"campus without sizes", func(s *spec.Spec) { s.Topology = spec.Topology{Kind: "campus"} }, "needs aps"},
		{"campus with nodes", func(s *spec.Spec) {
			s.Topology = spec.Topology{Kind: "campus", APs: 4, Clients: 2, Nodes: 50}
		}, "random topology only"},
		{"negative link node", func(s *spec.Spec) { s.Links = []spec.Link{{Sender: -1, Receiver: 2}} }, "negative node id"},
		{"self link", func(s *spec.Spec) { s.Links = []spec.Link{{Sender: 3, Receiver: 3}} }, "sender and receiver"},
		{"no directions no links", func(s *spec.Spec) { s.Downlink, s.Uplink = boolPtr(false), boolPtr(false) }, "no links"},
		{"negative duration", func(s *spec.Spec) { s.Duration = -1 }, "negative duration"},
		{"warmup past duration", func(s *spec.Spec) {
			s.Duration = spec.Duration(sim.Second)
			s.Warmup = spec.Duration(2 * sim.Second)
		}, "exceeds duration"},
		{"negative packet bytes", func(s *spec.Spec) { s.PacketBytes = -4 }, "packet_bytes"},
		{"off-grid rate", func(s *spec.Spec) { s.RateMbps = 13 }, "not an 802.11g rate"},
		{"negative misalign", func(s *spec.Spec) { s.MisalignSlots = -1 }, "misalign_slots"},
		{"unknown traffic", func(s *spec.Spec) { s.Traffic.Kind = "cbr" }, "unknown traffic kind"},
		{"udp zero downlink rate", func(s *spec.Spec) {
			s.Traffic = spec.Traffic{Kind: "udp", UpMbps: 5}
		}, "silently drop every downlink"},
		{"udp zero uplink rate", func(s *spec.Spec) {
			s.Traffic = spec.Traffic{Kind: "udp", DownMbps: 5}
		}, "silently drop every uplink"},
		{"udp zero rate on explicit link", func(s *spec.Spec) {
			s.Links = []spec.Link{{Sender: 0, Receiver: 1, Downlink: true}}
			s.Traffic = spec.Traffic{Kind: "udp", UpMbps: 5}
		}, "silently drop links[0]"},
		{"udp ok with one direction off", func(s *spec.Spec) {
			s.Uplink = boolPtr(false)
			s.Traffic = spec.Traffic{Kind: "udp", DownMbps: 5}
		}, ""},
		{"tcp without rates", func(s *spec.Spec) { s.Traffic = spec.Traffic{Kind: "tcp"} }, "tcp traffic needs"},
		{"tcp single direction", func(s *spec.Spec) {
			s.Uplink = boolPtr(false)
			s.Traffic = spec.Traffic{Kind: "tcp", DownMbps: 5}
		}, "both directions"},
		{"scheme_config not object", func(s *spec.Spec) { s.SchemeConfig = json.RawMessage(`[1,2]`) }, "JSON object"},
		{"domino scheduler ok", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"scheduler": "lqf"}`)
		}, ""},
		{"domino scheduler alias ok", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"Scheduler": "pf"}`)
		}, ""},
		{"domino unknown scheduler", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"scheduler": "sjf"}`)
		}, "unknown scheduler"},
		{"domino scheduler wrong type", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"scheduler": 3}`)
		}, "must be a string"},
		{"non-domino scheduler key rejected by field catalog", func(s *spec.Spec) {
			// dcf.Config has no Scheduler field, so the key-catalog check
			// fires before the DOMINO-only scheduler-name check would.
			s.SchemeConfig = json.RawMessage(`{"scheduler": "sjf"}`)
		}, `DCF config has no field "scheduler"`},
		{"domino poller ok", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"poller": "a2p"}`)
		}, ""},
		{"domino poller alias ok", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"Poller": "random-access"}`)
		}, ""},
		{"domino unknown poller", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"poller": "csma"}`)
		}, "unknown poller"},
		{"domino poller wrong type", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"poller": 7}`)
		}, "must be a string"},
		{"domino poller knobs ok", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"Poller": "A2P", "PollerConfig": {"GroupSize": 12}}`)
		}, ""},
		{"domino poller knob case-insensitive", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"poller": "uora", "pollerconfig": {"raruS": 4}}`)
		}, ""},
		{"domino poller bad knob", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"Poller": "A2P", "PollerConfig": {"GroupSiz": 12}}`)
		}, `poller A2P has no knob "GroupSiz"`},
		{"domino default-poller bad knob", func(s *spec.Spec) {
			// No poller key: knobs validate against the default ROP, which
			// has none at all.
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"PollerConfig": {"GroupSize": 12}}`)
		}, "poller ROP has no knobs"},
		{"domino poller config wrong type", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"Poller": "A2P", "PollerConfig": [1]}`)
		}, "PollerConfig must be a JSON object"},
		{"domino convert knobs ok", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"NoIncremental": true, "ConvertCacheCap": 256, "VerifyConvert": true}`)
		}, ""},
		{"domino knob case-insensitive", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"noconvertcache": true}`)
		}, ""},
		{"domino misspelled knob", func(s *spec.Spec) {
			s.Scheme = "domino"
			s.SchemeConfig = json.RawMessage(`{"NoIncrementl": true}`)
		}, `DOMINO config has no field "NoIncrementl"`},
		{"dcf knob ok", func(s *spec.Spec) {
			s.SchemeConfig = json.RawMessage(`{"CWMin": 8}`)
		}, ""},
		{"shards omitted ok", func(s *spec.Spec) { s.Shards = nil }, ""},
		{"shards 1 ok", func(s *spec.Spec) { s.Shards = intPtr(1) }, ""},
		{"shards 8 ok", func(s *spec.Spec) { s.Shards = intPtr(8) }, ""},
		{"shards zero rejected", func(s *spec.Spec) { s.Shards = intPtr(0) }, "shards must be ≥ 1"},
		{"shards negative rejected", func(s *spec.Spec) { s.Shards = intPtr(-2) }, "shards must be ≥ 1"},
		{"shards with explicit links rejected", func(s *spec.Spec) {
			s.Shards = intPtr(2)
			s.Links = []spec.Link{{Sender: 0, Receiver: 1, Downlink: true}}
		}, "incompatible with an explicit links list"},
		{"grid topology ok", func(s *spec.Spec) {
			s.Topology = spec.Topology{Kind: "grid", Buildings: 4, APs: 2, Clients: 2}
		}, ""},
		{"grid default buildings ok", func(s *spec.Spec) {
			s.Topology = spec.Topology{Kind: "grid", APs: 2, Clients: 2}
		}, ""},
		{"grid without sizes", func(s *spec.Spec) {
			s.Topology = spec.Topology{Kind: "grid"}
		}, "needs aps"},
		{"grid with nodes", func(s *spec.Spec) {
			s.Topology = spec.Topology{Kind: "grid", APs: 2, Clients: 2, Nodes: 10}
		}, "do not apply to the grid topology"},
		{"campus with buildings", func(s *spec.Spec) {
			s.Topology = spec.Topology{Kind: "campus", APs: 2, Clients: 2, Buildings: 3}
		}, "grid topology only"},
		{"run control ok", func(s *spec.Spec) {
			s.Run = json.RawMessage(`{"checkpoint_every": "30s", "step_events": 4096, "max_concurrent_runs": 2}`)
		}, ""},
		{"run control case-insensitive ok", func(s *spec.Spec) {
			s.Run = json.RawMessage(`{"Checkpoint_Every": "1m"}`)
		}, ""},
		{"run not object", func(s *spec.Spec) { s.Run = json.RawMessage(`7`) }, "run must be a JSON object"},
		{"run misspelled knob", func(s *spec.Spec) {
			s.Run = json.RawMessage(`{"checkpoint_evry": "30s"}`)
		}, `run has no knob "checkpoint_evry" (knobs: checkpoint_every, max_concurrent_runs, step_events, step_window)`},
		{"run negative checkpoint interval", func(s *spec.Spec) {
			s.Run = json.RawMessage(`{"checkpoint_every": "-5s"}`)
		}, "checkpoint_every"},
		{"run negative step events", func(s *spec.Spec) {
			s.Run = json.RawMessage(`{"step_events": -1}`)
		}, "step_events"},
		{"run negative max runs", func(s *spec.Spec) {
			s.Run = json.RawMessage(`{"max_concurrent_runs": -3}`)
		}, "max_concurrent_runs"},
		{"run step window needs shards", func(s *spec.Spec) {
			s.Run = json.RawMessage(`{"step_window": "1ms"}`)
		}, "only applies to sharded runs"},
		{"run step window with shards ok", func(s *spec.Spec) {
			s.Shards = intPtr(2)
			s.Run = json.RawMessage(`{"step_window": "1ms"}`)
		}, ""},
		{"run step events with shards rejected", func(s *spec.Spec) {
			s.Shards = intPtr(2)
			s.Run = json.RawMessage(`{"step_events": 512}`)
		}, "only applies to single-engine runs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestExampleSpecsValidate lints every shipped example the same way `make
// specs` does, so a broken example fails go test too.
func TestExampleSpecsValidate(t *testing.T) {
	paths, err := filepath.Glob("../../examples/specs/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example specs found under examples/specs")
	}
	for _, p := range paths {
		sp, err := spec.Load(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}
