// Package spec is the declarative scenario layer: a validated,
// JSON-(de)serializable description of one simulation run — scheme name,
// topology reference, link set, traffic, PHY overrides, seed, duration and
// observability toggles. Spec files let new scenarios ship as data: the
// CLIs load them with Load, Validate catches mistakes with descriptive
// errors instead of panics, and core.RunE executes them through the scheme
// registry.
package spec

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"repro/internal/phy"
	"repro/internal/poll"
	_ "repro/internal/rop" // registers the default ROP poller for validation
	"repro/internal/scheme"
	"repro/internal/strict"
)

// Spec fully describes one simulation run.
type Spec struct {
	// Scheme is a registered channel-access scheme name (case-insensitive;
	// see internal/scheme). Required.
	Scheme string `json:"scheme"`

	// Topology names the network to build. Required.
	Topology Topology `json:"topology"`

	// Links, when non-empty, overrides the link set built from
	// Downlink/Uplink with an explicit list (e.g. the three Fig 1 flows).
	Links []Link `json:"links,omitempty"`

	// Downlink/Uplink select which directions exist when Links is empty.
	// Both default to true.
	Downlink *bool `json:"downlink,omitempty"`
	Uplink   *bool `json:"uplink,omitempty"`

	// Seed is the run's RNG seed (also the default topology seed).
	Seed int64 `json:"seed,omitempty"`

	// Duration is the simulated time ("5s", "300ms", or integer
	// nanoseconds). Zero means the core default (10s).
	Duration Duration `json:"duration,omitempty"`
	// Warmup excludes the initial transient from the statistics.
	Warmup Duration `json:"warmup,omitempty"`

	// Traffic is the offered workload; the zero value is saturated.
	Traffic Traffic `json:"traffic,omitempty"`

	// PacketBytes is the datagram/segment size (0 means the default 512).
	PacketBytes int `json:"packet_bytes,omitempty"`

	// RateMbps is the PHY data rate; 0 means the default 12. Must be one of
	// 6, 9, 12, 18, 24, 36, 48, 54.
	RateMbps float64 `json:"rate_mbps,omitempty"`

	// Phy overrides individual medium parameters; absent fields keep their
	// defaults.
	Phy *Phy `json:"phy,omitempty"`

	// MisalignSlots arms DOMINO's misalignment probe (Fig 11).
	MisalignSlots int `json:"misalign_slots,omitempty"`

	// Shards, when set, runs the scenario sharded by interference domain
	// (internal/shard) on this many workers. Must be ≥ 1 when present;
	// omit the field for the single-engine run. The output is byte-identical
	// at any value — the knob only controls parallelism. Incompatible with
	// an explicit Links list.
	Shards *int `json:"shards,omitempty"`

	// SchemeConfig is an optional JSON object unmarshalled over the
	// scheme's default config after the generic knobs are applied. Keys are
	// the Go field names of the scheme's Config struct (case-insensitive),
	// e.g. {"BatchSize": 12} for DOMINO.
	SchemeConfig json.RawMessage `json:"scheme_config,omitempty"`

	// Obs toggles the observability layer for this run.
	Obs Obs `json:"obs,omitempty"`

	// Run is an optional JSON object of run-lifecycle knobs (see
	// RunControl): checkpoint cadence, step granularity, daemon
	// concurrency. Keys are validated against the RunControl catalog the
	// same way scheme_config keys are.
	Run json.RawMessage `json:"run,omitempty"`
}

// Link is a directed AP–client flow in an explicit link set. The AP endpoint
// is implied by the direction: the sender of a downlink, the receiver of an
// uplink.
type Link struct {
	Sender   int  `json:"sender"`
	Receiver int  `json:"receiver"`
	Downlink bool `json:"downlink"`
}

// Traffic selects the offered workload.
type Traffic struct {
	// Kind is "saturated" (default when empty), "udp" or "tcp".
	Kind string `json:"kind,omitempty"`
	// DownMbps/UpMbps are offered loads per link for udp and tcp.
	DownMbps float64 `json:"down_mbps,omitempty"`
	UpMbps   float64 `json:"up_mbps,omitempty"`
}

// Obs toggles the run's observability hooks.
type Obs struct {
	// Metrics collects counters and the airtime breakdown.
	Metrics bool `json:"metrics,omitempty"`
	// TraceFile, when non-empty, asks the CLI to write the NDJSON
	// observability trace there ("-" for stdout).
	TraceFile string `json:"trace_file,omitempty"`
	// NoSpans turns causal span allocation off for a traced run: records
	// drop their sp/pa fields and trigger chains are no longer traversable.
	NoSpans bool `json:"no_spans,omitempty"`
	// ConvertTrace asks DOMINO for deterministic per-batch conversion
	// records in the trace (the CLI -convert-trace flag).
	ConvertTrace bool `json:"convert_trace,omitempty"`
}

// Phy overrides individual phy.Config fields; nil pointers keep defaults.
type Phy struct {
	NoiseDBm          *float64 `json:"noise_dbm,omitempty"`
	CSThreshDBm       *float64 `json:"cs_thresh_dbm,omitempty"`
	DeliverFloorDBm   *float64 `json:"deliver_floor_dbm,omitempty"`
	SigSINRdB         *float64 `json:"sig_sinr_db,omitempty"`
	FalsePositiveRate *float64 `json:"false_positive_rate,omitempty"`
}

// Apply overlays the set fields on cfg.
func (p *Phy) Apply(cfg *phy.Config) {
	if p == nil {
		return
	}
	if p.NoiseDBm != nil {
		cfg.NoiseDBm = *p.NoiseDBm
	}
	if p.CSThreshDBm != nil {
		cfg.CSThreshDBm = *p.CSThreshDBm
	}
	if p.DeliverFloorDBm != nil {
		cfg.DeliverFloorDBm = *p.DeliverFloorDBm
	}
	if p.SigSINRdB != nil {
		cfg.SigSINRdB = *p.SigSINRdB
	}
	if p.FalsePositiveRate != nil {
		cfg.FalsePositiveRate = *p.FalsePositiveRate
	}
}

// DownlinkEnabled reports whether downlinks are built (default true).
func (s Spec) DownlinkEnabled() bool { return s.Downlink == nil || *s.Downlink }

// UplinkEnabled reports whether uplinks are built (default true).
func (s Spec) UplinkEnabled() bool { return s.Uplink == nil || *s.Uplink }

// ShardWorkers returns the sharded-run worker count, 0 when the spec asks
// for the single-engine path.
func (s Spec) ShardWorkers() int {
	if s.Shards == nil {
		return 0
	}
	return *s.Shards
}

// TrafficKind returns the normalized workload name ("saturated", "udp",
// "tcp"); empty input means saturated.
func (s Spec) TrafficKind() string {
	k := strings.ToLower(s.Traffic.Kind)
	if k == "" {
		k = "saturated"
	}
	return k
}

// validRates are the 802.11g PHY rates the medium models.
var validRates = map[float64]bool{6: true, 9: true, 12: true, 18: true, 24: true, 36: true, 48: true, 54: true}

// Validate checks the spec for structural and semantic problems and returns
// a descriptive error for the first one found. A nil return means
// core.RunE can only fail on topology infeasibility (random placements) or
// a scheme_config mismatch.
func (s Spec) Validate() error {
	if s.Scheme == "" {
		return fmt.Errorf("spec: scheme is required (registered: %s)", strings.Join(scheme.Names(), ", "))
	}
	if _, ok := scheme.Lookup(s.Scheme); !ok {
		return fmt.Errorf("spec: unknown scheme %q (registered: %s)", s.Scheme, strings.Join(scheme.Names(), ", "))
	}
	if err := s.Topology.Validate(); err != nil {
		return err
	}
	for i, l := range s.Links {
		if l.Sender < 0 || l.Receiver < 0 {
			return fmt.Errorf("spec: links[%d]: negative node id", i)
		}
		if l.Sender == l.Receiver {
			return fmt.Errorf("spec: links[%d]: sender and receiver are both node %d", i, l.Sender)
		}
	}
	if len(s.Links) == 0 && !s.DownlinkEnabled() && !s.UplinkEnabled() {
		return fmt.Errorf("spec: no links: downlink and uplink both disabled and no explicit links given")
	}
	if s.Duration < 0 || s.Warmup < 0 {
		return fmt.Errorf("spec: negative duration or warmup")
	}
	if s.Duration > 0 && s.Warmup > s.Duration {
		return fmt.Errorf("spec: warmup %v exceeds duration %v", s.Warmup, s.Duration)
	}
	if s.PacketBytes < 0 {
		return fmt.Errorf("spec: negative packet_bytes %d", s.PacketBytes)
	}
	if s.RateMbps != 0 && !validRates[s.RateMbps] {
		return fmt.Errorf("spec: rate_mbps %v is not an 802.11g rate (6, 9, 12, 18, 24, 36, 48, 54)", s.RateMbps)
	}
	if s.MisalignSlots < 0 {
		return fmt.Errorf("spec: negative misalign_slots %d", s.MisalignSlots)
	}
	if s.Shards != nil {
		if *s.Shards < 1 {
			return fmt.Errorf("spec: shards must be ≥ 1 (got %d); omit the field for a single-engine run", *s.Shards)
		}
		if len(s.Links) > 0 {
			return fmt.Errorf("spec: shards is incompatible with an explicit links list (sharded runs rebuild links per interference domain from the direction flags)")
		}
	}
	if err := s.validateTraffic(); err != nil {
		return err
	}
	if len(s.SchemeConfig) > 0 {
		var probe map[string]any
		if err := json.Unmarshal(s.SchemeConfig, &probe); err != nil {
			return fmt.Errorf("spec: scheme_config must be a JSON object: %v", err)
		}
		if err := s.validateSchemeKeys(probe); err != nil {
			return err
		}
		if err := s.validateScheduler(probe); err != nil {
			return err
		}
		if err := s.validatePoller(probe); err != nil {
			return err
		}
	}
	if err := s.validateRun(); err != nil {
		return err
	}
	return nil
}

// validateSchemeKeys checks every scheme_config key against the exported
// fields of the scheme's config struct (the catalog the spec layer documents:
// keys are Go field names, matched case-insensitively like encoding/json).
// json.Unmarshal silently drops unknown keys at run time, so a typo would
// otherwise no-op; this makes it a Validate-time error instead.
func (s Spec) validateSchemeKeys(probe map[string]any) error {
	d, ok := scheme.Lookup(s.Scheme)
	if !ok {
		return nil // unknown scheme already reported
	}
	t := reflect.TypeOf(d.DefaultConfig(scheme.Params{}))
	for t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t == nil || t.Kind() != reflect.Struct {
		return nil // opaque config: nothing to check against
	}
	fields := map[string]string{} // lower-cased → canonical spelling
	collectConfigFields(t, fields)
	for k := range probe {
		if _, ok := fields[strings.ToLower(k)]; ok {
			continue
		}
		names := make([]string, 0, len(fields))
		for _, n := range fields {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("spec: scheme_config: %s config has no field %q (fields: %s)",
			d.Name, k, strings.Join(names, ", "))
	}
	return nil
}

// collectConfigFields gathers the JSON-addressable field names of a config
// struct, recursing into embedded structs the way encoding/json flattens
// them. A json tag overrides the field name; "-" hides the field.
func collectConfigFields(t reflect.Type, out map[string]string) {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		if f.Anonymous {
			ft := f.Type
			for ft.Kind() == reflect.Pointer {
				ft = ft.Elem()
			}
			if ft.Kind() == reflect.Struct && f.Tag.Get("json") == "" {
				collectConfigFields(ft, out)
				continue
			}
		}
		name := f.Name
		if tag, _, _ := strings.Cut(f.Tag.Get("json"), ","); tag != "" {
			if tag == "-" {
				continue
			}
			name = tag
		}
		out[strings.ToLower(name)] = name
	}
}

// validateScheduler checks a DOMINO scheme_config's scheduler name against
// the strict registry up front, so a typo fails at Validate instead of deep
// inside the engine build.
func (s Spec) validateScheduler(probe map[string]any) error {
	d, ok := scheme.Lookup(s.Scheme)
	if !ok || d.Name != "DOMINO" {
		return nil
	}
	for k, v := range probe {
		if !strings.EqualFold(k, "scheduler") {
			continue
		}
		name, ok := v.(string)
		if !ok {
			return fmt.Errorf("spec: scheme_config.scheduler must be a string, got %T", v)
		}
		if name == "" {
			continue
		}
		if _, ok := strict.LookupScheduler(name); !ok {
			return fmt.Errorf("spec: unknown scheduler %q (registered: %s)",
				name, strings.Join(strict.SchedulerNames(), ", "))
		}
	}
	return nil
}

// validatePoller checks a DOMINO scheme_config's poller name against the poll
// registry and its PollerConfig keys against that poller's knob struct, so
// typos fail at Validate instead of deep inside the engine build.
func (s Spec) validatePoller(probe map[string]any) error {
	d, ok := scheme.Lookup(s.Scheme)
	if !ok || d.Name != "DOMINO" {
		return nil
	}
	pollerName := ""
	for k, v := range probe {
		if !strings.EqualFold(k, "poller") {
			continue
		}
		name, ok := v.(string)
		if !ok {
			return fmt.Errorf("spec: scheme_config.poller must be a string, got %T", v)
		}
		pollerName = name
	}
	var pd *poll.Descriptor
	if pollerName != "" {
		var ok bool
		pd, ok = poll.Lookup(pollerName)
		if !ok {
			return fmt.Errorf("spec: unknown poller %q (registered: %s)",
				pollerName, strings.Join(poll.Names(), ", "))
		}
	} else {
		pd, _ = poll.Lookup("ROP")
	}
	for k, v := range probe {
		if !strings.EqualFold(k, "pollerconfig") {
			continue
		}
		knobs, ok := v.(map[string]any)
		if !ok {
			return fmt.Errorf("spec: scheme_config.PollerConfig must be a JSON object, got %T", v)
		}
		if pd == nil {
			continue
		}
		if pd.DefaultConfig == nil {
			if len(knobs) > 0 {
				return fmt.Errorf("spec: poller %s has no knobs; drop the PollerConfig object", pd.Name)
			}
			continue
		}
		t := reflect.TypeOf(pd.DefaultConfig())
		for t != nil && t.Kind() == reflect.Pointer {
			t = t.Elem()
		}
		if t == nil || t.Kind() != reflect.Struct {
			continue
		}
		fields := map[string]string{}
		collectConfigFields(t, fields)
		for knob := range knobs {
			if _, ok := fields[strings.ToLower(knob)]; ok {
				continue
			}
			names := make([]string, 0, len(fields))
			for _, n := range fields {
				names = append(names, n)
			}
			sort.Strings(names)
			return fmt.Errorf("spec: scheme_config.PollerConfig: poller %s has no knob %q (knobs: %s)",
				pd.Name, knob, strings.Join(names, ", "))
		}
	}
	return nil
}

// validateTraffic rejects workloads that would silently run fewer flows
// than the topology suggests — in particular a UDP run whose enabled
// direction offers a rate ≤ 0, which core used to skip without any record.
func (s Spec) validateTraffic() error {
	switch s.TrafficKind() {
	case "saturated":
		return nil
	case "udp":
		if len(s.Links) > 0 {
			for i, l := range s.Links {
				rate := s.Traffic.UpMbps
				if l.Downlink {
					rate = s.Traffic.DownMbps
				}
				if rate <= 0 {
					return fmt.Errorf("spec: udp traffic would silently drop links[%d] (%s rate %v ≤ 0); offer a positive rate or remove the link",
						i, direction(l.Downlink), rate)
				}
			}
			return nil
		}
		if s.DownlinkEnabled() && s.Traffic.DownMbps <= 0 {
			return fmt.Errorf("spec: udp traffic with downlinks enabled but down_mbps %v ≤ 0 would silently drop every downlink; set a positive down_mbps or \"downlink\": false",
				s.Traffic.DownMbps)
		}
		if s.UplinkEnabled() && s.Traffic.UpMbps <= 0 {
			return fmt.Errorf("spec: udp traffic with uplinks enabled but up_mbps %v ≤ 0 would silently drop every uplink; set a positive up_mbps or \"uplink\": false",
				s.Traffic.UpMbps)
		}
		return nil
	case "tcp":
		if s.Traffic.DownMbps <= 0 && s.Traffic.UpMbps <= 0 {
			return fmt.Errorf("spec: tcp traffic needs down_mbps or up_mbps > 0")
		}
		if len(s.Links) == 0 && (!s.DownlinkEnabled() || !s.UplinkEnabled()) {
			return fmt.Errorf("spec: tcp traffic needs both directions (ACKs ride the reverse link); enable downlink and uplink")
		}
		return nil
	default:
		return fmt.Errorf("spec: unknown traffic kind %q (saturated, udp, tcp)", s.Traffic.Kind)
	}
}

func direction(down bool) string {
	if down {
		return "downlink"
	}
	return "uplink"
}
