package spec_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/spec"
)

// FuzzSpecJSON checks two properties on arbitrary input: Parse never panics,
// and parsing is idempotent — whatever Parse accepts, re-marshalling and
// re-parsing reproduces the same document (so specs survive load/save cycles
// without drifting).
func FuzzSpecJSON(f *testing.F) {
	f.Add([]byte(`{"scheme": "dcf", "topology": {"kind": "fig1"}}`))
	f.Add([]byte(`{"scheme": "domino", "topology": {"kind": "campus", "aps": 10, "clients": 2},
		"duration": "5s", "traffic": {"kind": "udp", "down_mbps": 10, "up_mbps": 4}}`))
	f.Add([]byte(`{"scheme": "centaur", "topology": {"kind": "ht"}, "duration": 250000000,
		"scheme_config": {"Epoch": 1}, "links": [{"sender": 0, "receiver": 1, "downlink": true}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s1, err := spec.Parse(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		_ = s1.Validate() // must not panic either
		m1, err := json.Marshal(s1)
		if err != nil {
			t.Fatalf("accepted spec does not re-marshal: %v", err)
		}
		s2, err := spec.Parse(m1)
		if err != nil {
			t.Fatalf("re-marshalled spec does not re-parse: %v\n%s", err, m1)
		}
		m2, err := json.Marshal(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("marshal not idempotent:\nfirst  %s\nsecond %s", m1, m2)
		}
	})
}
