package spec

import (
	"fmt"
	"math/rand"

	"repro/internal/phy"
	"repro/internal/topo"
)

// Topology references one of the repository's network builders — the
// paper's drawn figures, the two-pair USRP placements, or the generated
// campus/random T(m,n) selections. It is the one place scheme-agnostic
// topology parsing lives; both CLIs and the spec layer build through it.
type Topology struct {
	// Kind is one of fig1, fig7, fig13a, fig13b, sc, ht, et, campus,
	// random, grid.
	Kind string `json:"kind"`
	// APs/Clients are the T(m,n) parameters for campus and random; for
	// grid they are APs-per-building and clients-per-AP.
	APs     int `json:"aps,omitempty"`
	Clients int `json:"clients,omitempty"`
	// Buildings is the grid campus building count (grid only; default 4).
	// The grid topology (topo.GridCampus) decomposes into per-building
	// interference domains, the shape the sharded runner targets.
	Buildings int `json:"buildings,omitempty"`
	// Seed overrides the spec seed for topology generation.
	Seed *int64 `json:"seed,omitempty"`
	// Nodes is the random trace's node count (default 110); AreaM its
	// square side in meters (default 800). random only.
	Nodes int     `json:"nodes,omitempty"`
	AreaM float64 `json:"area_m,omitempty"`
	// AssocFloorDBm relaxes the association RSS floor for dense selections
	// like T(6,5). campus and random only.
	AssocFloorDBm *float64 `json:"assoc_floor_dbm,omitempty"`
}

// Kinds lists the accepted topology kinds.
func Kinds() []string {
	return []string{"fig1", "fig7", "fig13a", "fig13b", "sc", "ht", "et", "campus", "random", "grid"}
}

func (t Topology) generated() bool {
	return t.Kind == "campus" || t.Kind == "random" || t.Kind == "grid"
}

// Validate checks the reference without building it.
func (t Topology) Validate() error {
	switch t.Kind {
	case "fig1", "fig7", "fig13a", "fig13b", "sc", "ht", "et":
		if t.APs != 0 || t.Clients != 0 || t.Nodes != 0 || t.AreaM != 0 || t.AssocFloorDBm != nil || t.Buildings != 0 {
			return fmt.Errorf("spec: topology %q is fixed; aps/clients/nodes/area_m/assoc_floor_dbm/buildings do not apply", t.Kind)
		}
		return nil
	case "campus", "random":
		if t.APs < 1 || t.Clients < 1 {
			return fmt.Errorf("spec: topology %q needs aps ≥ 1 and clients ≥ 1 (got %d, %d)", t.Kind, t.APs, t.Clients)
		}
		if t.Kind == "campus" && (t.Nodes != 0 || t.AreaM != 0) {
			return fmt.Errorf("spec: nodes/area_m apply to the random topology only")
		}
		if t.Nodes < 0 || t.AreaM < 0 {
			return fmt.Errorf("spec: negative nodes or area_m")
		}
		if t.Buildings != 0 {
			return fmt.Errorf("spec: buildings applies to the grid topology only")
		}
		return nil
	case "grid":
		if t.APs < 1 || t.Clients < 1 {
			return fmt.Errorf("spec: topology grid needs aps ≥ 1 (per building) and clients ≥ 1 (got %d, %d)", t.APs, t.Clients)
		}
		if t.Buildings < 0 {
			return fmt.Errorf("spec: negative buildings %d", t.Buildings)
		}
		if t.Nodes != 0 || t.AreaM != 0 || t.AssocFloorDBm != nil {
			return fmt.Errorf("spec: nodes/area_m/assoc_floor_dbm do not apply to the grid topology")
		}
		return nil
	case "":
		return fmt.Errorf("spec: topology.kind is required (one of %v)", Kinds())
	default:
		return fmt.Errorf("spec: unknown topology kind %q (one of %v)", t.Kind, Kinds())
	}
}

// Build constructs the network. defaultSeed seeds generated topologies when
// the reference carries no seed of its own.
func (t Topology) Build(defaultSeed int64) (*topo.Network, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	seed := defaultSeed
	if t.Seed != nil {
		seed = *t.Seed
	}
	switch t.Kind {
	case "fig1":
		return topo.Figure1(), nil
	case "fig7":
		return topo.Figure7(), nil
	case "fig13a":
		return topo.Figure13a(), nil
	case "fig13b":
		return topo.Figure13b(), nil
	case "sc":
		return topo.TwoPairs(topo.SameContention), nil
	case "ht":
		return topo.TwoPairs(topo.HiddenTerminals), nil
	case "et":
		return topo.TwoPairs(topo.ExposedTerminals), nil
	case "grid":
		buildings := t.Buildings
		if buildings == 0 {
			buildings = 4
		}
		return topo.GridCampus(seed, buildings, t.APs, t.Clients), nil
	case "campus", "random":
		var tr *topo.Trace
		if t.Kind == "campus" {
			tr = topo.CampusTrace(seed)
		} else {
			nodes, area := t.Nodes, t.AreaM
			if nodes == 0 {
				nodes = 110
			}
			if area == 0 {
				area = 800
			}
			tr = topo.RandomTrace(seed, nodes, area)
		}
		rng := rand.New(rand.NewSource(seed))
		if t.AssocFloorDBm != nil {
			return topo.BuildTWithFloor(tr, t.APs, t.Clients, *t.AssocFloorDBm, phy.DefaultConfig(), phy.Rate12, rng)
		}
		return topo.BuildT(tr, t.APs, t.Clients, phy.DefaultConfig(), phy.Rate12, rng)
	}
	return nil, fmt.Errorf("spec: unknown topology kind %q", t.Kind)
}

// BuildLinks resolves the spec's link set on net: the explicit Links list
// when present (validated against the network), otherwise the directions
// selected by Downlink/Uplink.
func (s Spec) BuildLinks(net *topo.Network) ([]*topo.Link, error) {
	if len(s.Links) == 0 {
		return nil, nil // core builds from the direction flags
	}
	n := net.NumNodes()
	links := make([]*topo.Link, 0, len(s.Links))
	for i, l := range s.Links {
		if l.Sender >= n || l.Receiver >= n {
			return nil, fmt.Errorf("spec: links[%d]: node out of range (network has %d nodes)", i, n)
		}
		ap := l.Sender
		if !l.Downlink {
			ap = l.Receiver
		}
		if !net.IsAP[ap] {
			return nil, fmt.Errorf("spec: links[%d]: %s endpoint node %d is not an AP", i, direction(l.Downlink), ap)
		}
		links = append(links, &topo.Link{
			ID: i, Sender: phy.NodeID(l.Sender), Receiver: phy.NodeID(l.Receiver),
			AP: phy.NodeID(ap), Downlink: l.Downlink,
		})
	}
	return links, nil
}
