package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Parse decodes a JSON spec. Unknown fields are rejected so typos in spec
// files fail loudly instead of silently keeping defaults.
func Parse(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("spec: parse: %w", err)
	}
	// Reject trailing documents/garbage after the spec object.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Spec{}, fmt.Errorf("spec: trailing data after spec object")
	}
	return s, nil
}

// Load reads and parses (but does not Validate) a spec file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
