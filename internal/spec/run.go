package spec

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// RunControl holds the run-lifecycle knobs a spec's "run" object can set:
// how often the executing layer (internal/run, the domino-sim daemon)
// writes checkpoints, how finely a run is sliced into resumable steps, and
// how many runs a daemon executes concurrently. All knobs are
// output-transparent — they bound where a run can pause, never what it
// produces.
type RunControl struct {
	// CheckpointEvery is the wall-clock interval between automatic
	// checkpoints ("30s", "2m", or integer nanoseconds). Zero disables
	// timer checkpoints; explicit checkpoint requests still work.
	CheckpointEvery Duration `json:"checkpoint_every,omitempty"`

	// StepEvents bounds how many kernel events a single-engine run fires
	// per step — the granularity at which pause and checkpoint requests
	// are honoured. Zero means the executor default (65536).
	StepEvents int `json:"step_events,omitempty"`

	// StepWindow bounds how much simulated time an uncoupled sharded
	// partition advances per step (shard.Options.StepGranule). Zero means
	// barrier-free single-leap execution; coupled partitions always step
	// by the conservative lookahead and ignore this knob.
	StepWindow Duration `json:"step_window,omitempty"`

	// MaxConcurrentRuns bounds the daemon's worker fleet. Zero means one
	// worker per CPU core. Ignored for one-shot CLI runs.
	MaxConcurrentRuns int `json:"max_concurrent_runs,omitempty"`
}

// RunControl decodes the spec's "run" object, applying zero-value defaults
// for absent fields. Call Validate first: it reports unknown keys and
// out-of-range values with field catalogs; this method only decodes.
func (s Spec) RunControl() (RunControl, error) {
	var rc RunControl
	if len(s.Run) == 0 {
		return rc, nil
	}
	if err := json.Unmarshal(s.Run, &rc); err != nil {
		return rc, fmt.Errorf("spec: run: %v", err)
	}
	return rc, nil
}

// validateRun checks the "run" object the same way scheme_config is
// checked: every key must name a RunControl field (JSON tags,
// case-insensitive), so a typo is a descriptive Validate-time error
// instead of a silently ignored knob; then the decoded values are
// range-checked.
func (s Spec) validateRun() error {
	if len(s.Run) == 0 {
		return nil
	}
	var probe map[string]any
	if err := json.Unmarshal(s.Run, &probe); err != nil {
		return fmt.Errorf("spec: run must be a JSON object: %v", err)
	}
	fields := map[string]string{}
	collectConfigFields(reflect.TypeOf(RunControl{}), fields)
	for k := range probe {
		if _, ok := fields[strings.ToLower(k)]; ok {
			continue
		}
		names := make([]string, 0, len(fields))
		for _, n := range fields {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("spec: run has no knob %q (knobs: %s)", k, strings.Join(names, ", "))
	}
	rc, err := s.RunControl()
	if err != nil {
		return err
	}
	if rc.CheckpointEvery < 0 {
		return fmt.Errorf("spec: run.checkpoint_every %v is negative; use 0 to disable timer checkpoints", rc.CheckpointEvery)
	}
	if rc.StepEvents < 0 {
		return fmt.Errorf("spec: run.step_events %d is negative; use 0 for the executor default", rc.StepEvents)
	}
	if rc.StepWindow < 0 {
		return fmt.Errorf("spec: run.step_window %v is negative; use 0 for single-leap execution", rc.StepWindow)
	}
	if rc.StepWindow > 0 && s.Shards == nil {
		return fmt.Errorf("spec: run.step_window only applies to sharded runs (set shards ≥ 1, or use run.step_events for the single-engine path)")
	}
	if rc.StepEvents > 0 && s.Shards != nil {
		return fmt.Errorf("spec: run.step_events only applies to single-engine runs (sharded runs step by window; use run.step_window)")
	}
	if rc.MaxConcurrentRuns < 0 {
		return fmt.Errorf("spec: run.max_concurrent_runs %d is negative; use 0 for one worker per core", rc.MaxConcurrentRuns)
	}
	return nil
}
