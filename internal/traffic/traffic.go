// Package traffic generates the workloads of the evaluation: constant-bit-rate
// UDP, saturated (always-backlogged) sources, and a Reno-style TCP model whose
// acknowledgements travel as MAC packets on the reverse link — the detail that
// caps DOMINO's TCP gain in the paper (§4.2.3: a TCP ACK occupies a whole
// slot).
package traffic

import (
	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Source drives packets into an engine once started.
type Source interface {
	Start()
}

// UDP is a constant-bit-rate source on one link.
type UDP struct {
	k        *sim.Kernel
	engine   mac.Engine
	link     *topo.Link
	rateMbps float64
	bytes    int
	seq      uint64
}

// NewUDP creates a CBR source pushing bytes-sized packets at rateMbps on the
// link. A non-positive rate produces no traffic.
func NewUDP(k *sim.Kernel, e mac.Engine, link *topo.Link, rateMbps float64, bytes int) *UDP {
	return &UDP{k: k, engine: e, link: link, rateMbps: rateMbps, bytes: bytes}
}

// Start schedules the first arrival at a random phase within one interval so
// sources across links do not arrive in lock-step.
func (u *UDP) Start() {
	if u.rateMbps <= 0 {
		return
	}
	interval := u.interval()
	phase := sim.Time(u.k.Rand().Int63n(int64(interval) + 1))
	u.k.After(phase, u.emit).SetSource(sim.SrcTraffic)
}

func (u *UDP) interval() sim.Time {
	return sim.Time(float64(u.bytes*8) / (u.rateMbps * 1e6) * 1e9)
}

func (u *UDP) emit() {
	u.engine.Enqueue(&mac.Packet{
		Link:     u.link,
		Bytes:    u.bytes,
		Enqueued: u.k.Now(),
		Seq:      u.seq,
		FlowID:   -1,
	})
	u.seq++
	u.k.After(u.interval(), u.emit)
}

// Saturated keeps a link's MAC queue topped up to a target depth: it refills
// one packet for every delivery or drop on its link. Add it to the engine's
// event mux so it observes outcomes.
type Saturated struct {
	k      *sim.Kernel
	engine mac.Engine
	link   *topo.Link
	bytes  int
	depth  int
	seq    uint64
}

// NewSaturated creates an always-backlogged source holding depth packets
// (0 means 8) of the given size in the link's queue.
func NewSaturated(k *sim.Kernel, e mac.Engine, link *topo.Link, bytes, depth int) *Saturated {
	if depth <= 0 {
		depth = 8
	}
	return &Saturated{k: k, engine: e, link: link, bytes: bytes, depth: depth}
}

// Start fills the queue to the target depth.
func (s *Saturated) Start() {
	for i := 0; i < s.depth; i++ {
		s.push()
	}
}

func (s *Saturated) push() {
	s.engine.Enqueue(&mac.Packet{
		Link:     s.link,
		Bytes:    s.bytes,
		Enqueued: s.k.Now(),
		Seq:      s.seq,
		FlowID:   -1,
	})
	s.seq++
}

// Delivered implements mac.Events: one out, one in.
func (s *Saturated) Delivered(p *mac.Packet, _ sim.Time) {
	if p.Link == s.link {
		s.push()
	}
}

// Dropped implements mac.Events.
func (s *Saturated) Dropped(p *mac.Packet, _ sim.Time) {
	if p.Link == s.link {
		s.push()
	}
}
