package traffic

import (
	"math"
	"testing"

	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/topo"
)

// fakeEngine is a loopback MAC: it serves each link's queue one packet per
// serviceTime, delivering unless the packet's (link, seq) is in lost.
type fakeEngine struct {
	k           *sim.Kernel
	events      mac.Events
	queues      map[int]*mac.Queue
	busy        map[int]bool
	serviceTime sim.Time
	lost        map[int]map[uint64]bool
	delivered   int
}

func newFakeEngine(k *sim.Kernel, service sim.Time) *fakeEngine {
	return &fakeEngine{
		k: k, serviceTime: service,
		queues: map[int]*mac.Queue{},
		busy:   map[int]bool{},
		lost:   map[int]map[uint64]bool{},
	}
}

func (f *fakeEngine) lose(link int, seq uint64) {
	if f.lost[link] == nil {
		f.lost[link] = map[uint64]bool{}
	}
	f.lost[link][seq] = true
}

func (f *fakeEngine) Start() {}

func (f *fakeEngine) Enqueue(p *mac.Packet) {
	q := f.queues[p.Link.ID]
	if q == nil {
		q = mac.NewQueue(0)
		f.queues[p.Link.ID] = q
	}
	if !q.Push(p) {
		f.events.Dropped(p, f.k.Now())
		return
	}
	f.serve(p.Link.ID)
}

func (f *fakeEngine) serve(link int) {
	if f.busy[link] {
		return
	}
	q := f.queues[link]
	p := q.Pop()
	if p == nil {
		return
	}
	f.busy[link] = true
	f.k.After(f.serviceTime, func() {
		f.busy[link] = false
		if f.lost[link][p.Seq] {
			// Lose this sequence once; retransmissions pass.
			delete(f.lost[link], p.Seq)
		} else {
			f.delivered++
			f.events.Delivered(p, f.k.Now())
		}
		f.serve(link)
	})
}

func (f *fakeEngine) QueueLen(link int) int {
	if q := f.queues[link]; q != nil {
		return q.Len()
	}
	return 0
}

// counter records deliveries per link.
type counter struct {
	delivered map[int]int
	dropped   map[int]int
	bytes     map[int]int
}

func newCounter() *counter {
	return &counter{delivered: map[int]int{}, dropped: map[int]int{}, bytes: map[int]int{}}
}

func (c *counter) Delivered(p *mac.Packet, _ sim.Time) {
	c.delivered[p.Link.ID]++
	c.bytes[p.Link.ID] += p.Bytes
}

func (c *counter) Dropped(p *mac.Packet, _ sim.Time) { c.dropped[p.Link.ID]++ }

func TestQueueSemantics(t *testing.T) {
	q := mac.NewQueue(2)
	a := &mac.Packet{Seq: 1}
	b := &mac.Packet{Seq: 2}
	c := &mac.Packet{Seq: 3}
	if !q.Push(a) || !q.Push(b) {
		t.Fatal("push within capacity failed")
	}
	if q.Push(c) {
		t.Fatal("push beyond capacity succeeded")
	}
	if q.Len() != 2 || q.Cap() != 2 {
		t.Fatalf("len=%d cap=%d", q.Len(), q.Cap())
	}
	if q.Peek() != a || q.Pop() != a {
		t.Fatal("FIFO order broken")
	}
	q.PushFront(c)
	if q.Pop() != c || q.Pop() != b || q.Pop() != nil {
		t.Fatal("PushFront/Pop order broken")
	}
	if mac.NewQueue(0).Cap() != mac.DefaultQueueCap {
		t.Error("default capacity not applied")
	}
}

func TestMux(t *testing.T) {
	a, b := newCounter(), newCounter()
	m := mac.Mux{a, b}
	l := &topo.Link{ID: 3}
	m.Delivered(&mac.Packet{Link: l, Bytes: 10}, 0)
	m.Dropped(&mac.Packet{Link: l}, 0)
	if a.delivered[3] != 1 || b.delivered[3] != 1 || a.dropped[3] != 1 || b.dropped[3] != 1 {
		t.Error("mux did not fan out")
	}
	var nop mac.NopEvents
	nop.Delivered(nil, 0)
	nop.Dropped(nil, 0)
}

func TestUDPRate(t *testing.T) {
	k := sim.New(1)
	e := newFakeEngine(k, 100*sim.Microsecond)
	c := newCounter()
	e.events = c
	link := &topo.Link{ID: 0}
	// 2 Mbps of 500 B packets = 500 pkts/s.
	u := NewUDP(k, e, link, 2.0, 500)
	u.Start()
	k.RunUntil(2 * sim.Second)
	got := c.delivered[0]
	if got < 950 || got > 1005 {
		t.Errorf("delivered %d packets in 2 s at 500 pkt/s", got)
	}
}

func TestUDPZeroRateSilent(t *testing.T) {
	k := sim.New(1)
	e := newFakeEngine(k, sim.Microsecond)
	c := newCounter()
	e.events = c
	NewUDP(k, e, &topo.Link{ID: 0}, 0, 500).Start()
	NewUDP(k, e, &topo.Link{ID: 0}, -1, 500).Start()
	k.RunUntil(sim.Second)
	if c.delivered[0] != 0 {
		t.Error("zero-rate UDP generated traffic")
	}
}

func TestUDPRandomPhase(t *testing.T) {
	// Two sources on different kernels draw different phases; within one
	// kernel two sources should usually not collide exactly.
	k := sim.New(5)
	e := newFakeEngine(k, sim.Microsecond)
	e.events = newCounter()
	var first []sim.Time
	for i := 0; i < 5; i++ {
		u := NewUDP(k, e, &topo.Link{ID: i}, 1.0, 500)
		u.Start()
	}
	// Inspect queued arrival events by running a tiny window and checking
	// deliveries happen at distinct times — indirectly via engine order.
	k.RunUntil(20 * sim.Millisecond)
	_ = first
}

func TestSaturatedKeepsBacklog(t *testing.T) {
	k := sim.New(1)
	e := newFakeEngine(k, 500*sim.Microsecond)
	link := &topo.Link{ID: 0}
	s := NewSaturated(k, e, link, 512, 8)
	e.events = mac.Mux{s}
	s.Start()
	k.RunUntil(100 * sim.Millisecond)
	// 200 packets served; queue must still hold ~depth.
	if e.delivered < 190 {
		t.Errorf("delivered %d, want ~200", e.delivered)
	}
	if got := e.QueueLen(0); got < 7 || got > 8 {
		t.Errorf("backlog = %d, want ≈8 (refilled)", got)
	}
}

func TestSaturatedRefillsOnDrop(t *testing.T) {
	k := sim.New(1)
	e := newFakeEngine(k, sim.Millisecond)
	link := &topo.Link{ID: 0}
	s := NewSaturated(k, e, link, 512, 4)
	drops := newCounter()
	e.events = mac.Mux{s, drops}
	s.Start()
	k.RunUntil(time10ms)
	// Simulate a MAC drop event directly.
	before := e.QueueLen(0)
	s.Dropped(&mac.Packet{Link: link}, k.Now())
	if e.QueueLen(0) != before+1 {
		t.Error("drop did not trigger refill")
	}
	// Foreign-link events must not refill.
	s.Delivered(&mac.Packet{Link: &topo.Link{ID: 9}}, k.Now())
	if e.QueueLen(0) != before+1 {
		t.Error("foreign delivery triggered refill")
	}
}

const time10ms = 10 * sim.Millisecond

func TestTCPDeliversInOrderCleanPath(t *testing.T) {
	k := sim.New(1)
	e := newFakeEngine(k, 300*sim.Microsecond)
	data := &topo.Link{ID: 0}
	ack := &topo.Link{ID: 1}
	c := newCounter()
	f := NewTCPFlow(k, e, 1, data, ack, DefaultTCPConfig(0))
	e.events = mac.Mux{f, c}
	f.Start()
	k.RunUntil(2 * sim.Second)
	if f.Retransmits != 0 || f.Timeouts != 0 {
		t.Errorf("clean path retransmits=%d timeouts=%d", f.Retransmits, f.Timeouts)
	}
	if f.AckedSegments < 1000 {
		t.Errorf("acked %d segments in 2 s; window never opened?", f.AckedSegments)
	}
	if f.Cwnd() <= DefaultTCPConfig(0).InitCwnd {
		t.Errorf("cwnd = %v never grew", f.Cwnd())
	}
	// Every delivered data segment produced one ACK on the reverse link.
	if c.delivered[1] == 0 || math.Abs(float64(c.delivered[0]-c.delivered[1])) > 4 {
		t.Errorf("data=%d acks=%d", c.delivered[0], c.delivered[1])
	}
}

func TestTCPRateCap(t *testing.T) {
	k := sim.New(1)
	e := newFakeEngine(k, 50*sim.Microsecond) // fast MAC, app-limited
	data := &topo.Link{ID: 0}
	ack := &topo.Link{ID: 1}
	c := newCounter()
	f := NewTCPFlow(k, e, 1, data, ack, DefaultTCPConfig(2.0)) // 2 Mbps cap
	e.events = mac.Mux{f, c}
	f.Start()
	k.RunUntil(4 * sim.Second)
	gotMbps := float64(c.bytes[0]) * 8 / 4 / 1e6
	if gotMbps > 2.2 || gotMbps < 1.5 {
		t.Errorf("app-limited TCP ran at %.2f Mbps, want ≈2", gotMbps)
	}
}

func TestTCPFastRetransmit(t *testing.T) {
	k := sim.New(1)
	e := newFakeEngine(k, 200*sim.Microsecond)
	data := &topo.Link{ID: 0}
	ack := &topo.Link{ID: 1}
	f := NewTCPFlow(k, e, 1, data, ack, DefaultTCPConfig(0))
	e.events = mac.Mux{f}
	// Lose segment 30 on its first transmission only: dup ACKs follow, fast
	// retransmit repairs it without needing an RTO.
	e.lose(0, 30)
	f.Start()
	k.RunUntil(3 * sim.Second)
	if f.FastRecovered == 0 {
		t.Error("no fast retransmit despite dup ACKs")
	}
	if f.SndUna() <= 30 {
		t.Errorf("hole never repaired: sndUna = %d", f.SndUna())
	}
	if f.AckedSegments < 100 {
		t.Errorf("flow stalled after loss: acked %d", f.AckedSegments)
	}
}

func TestTCPTimeoutRecovery(t *testing.T) {
	k := sim.New(1)
	e := newFakeEngine(k, 200*sim.Microsecond)
	data := &topo.Link{ID: 0}
	ack := &topo.Link{ID: 1}
	f := NewTCPFlow(k, e, 1, data, ack, DefaultTCPConfig(0))
	e.events = mac.Mux{f}
	// Lose everything from the start: the initial window dies, only the RTO
	// can recover.
	for s := uint64(0); s < 4; s++ {
		e.lose(0, s)
	}
	f.Start()
	k.After(3*sim.Second, func() { e.lost[0] = nil })
	k.RunUntil(8 * sim.Second)
	if f.Timeouts == 0 {
		t.Error("expected at least one RTO")
	}
	if f.SndUna() < 4 {
		t.Errorf("flow never recovered: sndUna = %d", f.SndUna())
	}
	if f.AckedSegments == 0 {
		t.Error("nothing delivered after recovery")
	}
}

func TestTCPCwndHalvesOnLoss(t *testing.T) {
	k := sim.New(1)
	e := newFakeEngine(k, 200*sim.Microsecond)
	data := &topo.Link{ID: 0}
	ack := &topo.Link{ID: 1}
	f := NewTCPFlow(k, e, 1, data, ack, DefaultTCPConfig(0))
	e.events = mac.Mux{f}
	f.Start()
	var before float64
	k.After(500*sim.Millisecond, func() {
		before = f.Cwnd()
		// Lose a segment that has not been transmitted yet.
		e.lose(0, f.SndMax()+10)
	})
	k.RunUntil(3 * sim.Second)
	if before == 0 {
		t.Fatal("harness error")
	}
	if f.FastRecovered == 0 && f.Timeouts == 0 {
		t.Error("loss never detected")
	}
	if f.Cwnd() >= before*4 {
		t.Errorf("cwnd %v did not react to loss (was %v)", f.Cwnd(), before)
	}
}
