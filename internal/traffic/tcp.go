package traffic

import (
	"math"

	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TCPConfig parameterises one TCP flow.
type TCPConfig struct {
	// RateMbps caps the application's offered load (the paper's 10 Mbps per
	// direction). Non-positive means an unlimited (bulk) sender.
	RateMbps float64
	// Bytes is the data segment size carried per MAC packet.
	Bytes int
	// AckBytes is the MAC size of a transport acknowledgement.
	AckBytes int
	// InitCwnd is the initial congestion window in segments.
	InitCwnd float64
	// RTOMin clamps the retransmission timeout.
	RTOMin sim.Time
}

// DefaultTCPConfig mirrors the evaluation settings: 512 B segments, 40 B
// ACKs, standard Reno parameters.
func DefaultTCPConfig(rateMbps float64) TCPConfig {
	return TCPConfig{
		RateMbps: rateMbps,
		Bytes:    512,
		AckBytes: 40,
		InitCwnd: 2,
		RTOMin:   200 * sim.Millisecond,
	}
}

// TCPFlow is a unidirectional Reno-style TCP connection: data segments on
// DataLink, cumulative ACKs returned on AckLink. Sequence numbers count
// segments, not bytes. The flow implements mac.Events and must be registered
// in the engine's event mux.
type TCPFlow struct {
	k      *sim.Kernel
	engine mac.Engine
	id     int
	data   *topo.Link
	ack    *topo.Link
	cfg    TCPConfig

	// Sender state.
	cwnd      float64
	ssthresh  float64
	nextSeq   uint64 // next fresh sequence to create
	sndUna    uint64 // oldest unacknowledged
	sndMax    uint64 // highest sent + 1
	dupAcks   int
	recover   uint64
	inFastRec bool
	srtt      sim.Time
	rttvar    sim.Time
	rto       sim.Time
	rtoTimer  sim.Event
	sendTime  map[uint64]sim.Time // for RTT sampling (Karn: fresh sends only)
	appTokens float64

	// Receiver state.
	rcvNxt   uint64
	outOfOrd map[uint64]bool

	// Counters for tests and reporting.
	Retransmits   int
	Timeouts      int
	FastRecovered int
	AckedSegments uint64
}

// NewTCPFlow wires a flow with the given ID over a data link and its reverse
// ACK link.
func NewTCPFlow(k *sim.Kernel, e mac.Engine, id int, data, ack *topo.Link, cfg TCPConfig) *TCPFlow {
	if cfg.Bytes <= 0 {
		cfg.Bytes = 512
	}
	if cfg.AckBytes <= 0 {
		cfg.AckBytes = 40
	}
	if cfg.InitCwnd <= 0 {
		cfg.InitCwnd = 2
	}
	if cfg.RTOMin <= 0 {
		cfg.RTOMin = 200 * sim.Millisecond
	}
	return &TCPFlow{
		k: k, engine: e, id: id, data: data, ack: ack, cfg: cfg,
		cwnd:     cfg.InitCwnd,
		ssthresh: 64,
		rto:      cfg.RTOMin + 800*sim.Millisecond,
		sendTime: map[uint64]sim.Time{},
		outOfOrd: map[uint64]bool{},
	}
}

// Start begins transmission; with a rate cap it also starts the token clock.
func (f *TCPFlow) Start() {
	if f.cfg.RateMbps > 0 {
		f.appTokens = f.cfg.InitCwnd
		f.k.After(f.tokenInterval(), f.tokenTick).SetSource(sim.SrcTraffic)
	}
	f.trySend()
}

func (f *TCPFlow) tokenInterval() sim.Time {
	return sim.Time(float64(f.cfg.Bytes*8) / (f.cfg.RateMbps * 1e6) * 1e9)
}

func (f *TCPFlow) tokenTick() {
	// Cap the token bucket so an idle (cwnd-limited) app cannot burst
	// unboundedly later.
	if f.appTokens < 64 {
		f.appTokens++
	}
	f.trySend()
	f.k.After(f.tokenInterval(), f.tokenTick)
}

func (f *TCPFlow) inflight() float64 { return float64(f.sndMax - f.sndUna) }

// trySend pushes new segments while the congestion window and application
// backlog allow.
func (f *TCPFlow) trySend() {
	for f.inflight() < math.Floor(f.cwnd) {
		if f.cfg.RateMbps > 0 && f.appTokens < 1 {
			return
		}
		seq := f.nextSeq
		f.sendSegment(seq, true)
		f.nextSeq++
		f.sndMax = f.nextSeq
		if f.cfg.RateMbps > 0 {
			f.appTokens--
		}
	}
}

func (f *TCPFlow) sendSegment(seq uint64, fresh bool) {
	if fresh {
		f.sendTime[seq] = f.k.Now()
	} else {
		delete(f.sendTime, seq) // Karn: never sample a retransmitted segment
		f.Retransmits++
	}
	f.engine.Enqueue(&mac.Packet{
		Link:     f.data,
		Bytes:    f.cfg.Bytes,
		Enqueued: f.k.Now(),
		Seq:      seq,
		FlowID:   f.id,
	})
	// The RTO guards the oldest outstanding segment: arm it if idle, but do
	// not push it out on every transmission (that would let a steady stream
	// of duplicate ACKs starve the timeout forever).
	if !f.rtoTimer.Scheduled() {
		f.armRTO()
	}
}

func (f *TCPFlow) armRTO() {
	if f.rtoTimer.Scheduled() {
		f.rtoTimer.Cancel()
	}
	f.rtoTimer = f.k.After(f.rto, f.onRTO)
}

func (f *TCPFlow) onRTO() {
	f.rtoTimer = sim.Event{}
	if f.sndUna == f.sndMax {
		return // everything acknowledged; nothing to recover
	}
	f.Timeouts++
	f.ssthresh = math.Max(f.cwnd/2, 2)
	f.cwnd = 1
	f.dupAcks = 0
	f.inFastRec = false
	f.rto *= 2
	if max := 10 * sim.Second; f.rto > max {
		f.rto = max
	}
	f.sendSegment(f.sndUna, false)
}

// Delivered implements mac.Events: receiver-side processing for data
// segments, sender-side for returning ACKs.
func (f *TCPFlow) Delivered(p *mac.Packet, now sim.Time) {
	if p.FlowID != f.id {
		return
	}
	switch {
	case p.Link == f.data && !p.TCPAck:
		f.onData(p, now)
	case p.Link == f.ack && p.TCPAck:
		f.onAck(p, now)
	}
}

// Dropped implements mac.Events. MAC-level losses are invisible to real TCP;
// the RTO and duplicate ACKs recover.
func (f *TCPFlow) Dropped(*mac.Packet, sim.Time) {}

// onData runs at the receiver: track in-order delivery, return a cumulative
// ACK for every arriving segment.
func (f *TCPFlow) onData(p *mac.Packet, now sim.Time) {
	switch {
	case p.Seq == f.rcvNxt:
		f.rcvNxt++
		for f.outOfOrd[f.rcvNxt] {
			delete(f.outOfOrd, f.rcvNxt)
			f.rcvNxt++
		}
	case p.Seq > f.rcvNxt:
		f.outOfOrd[p.Seq] = true
	}
	f.engine.Enqueue(&mac.Packet{
		Link:     f.ack,
		Bytes:    f.cfg.AckBytes,
		Enqueued: now,
		Seq:      p.Seq, // echo for traceability
		FlowID:   f.id,
		TCPAck:   true,
		AckSeq:   f.rcvNxt,
	})
}

// onAck runs at the sender.
func (f *TCPFlow) onAck(p *mac.Packet, now sim.Time) {
	ack := p.AckSeq
	switch {
	case ack > f.sndUna:
		newly := ack - f.sndUna
		f.AckedSegments += newly
		if t, ok := f.sendTime[ack-1]; ok {
			f.sampleRTT(now - t)
		}
		for s := f.sndUna; s < ack; s++ {
			delete(f.sendTime, s)
		}
		f.sndUna = ack
		f.dupAcks = 0
		if f.inFastRec {
			if ack >= f.recover {
				f.inFastRec = false
				f.cwnd = f.ssthresh
			} else {
				// Partial ACK: retransmit the next hole immediately.
				f.sendSegment(f.sndUna, false)
			}
		} else if f.cwnd < f.ssthresh {
			f.cwnd += float64(newly) // slow start
		} else {
			f.cwnd += float64(newly) / f.cwnd // congestion avoidance
		}
		if f.sndUna == f.sndMax && f.rtoTimer.Scheduled() {
			f.rtoTimer.Cancel()
			f.rtoTimer = sim.Event{}
		} else {
			f.armRTO()
		}
		f.trySend()
	case ack == f.sndUna && f.sndMax > f.sndUna:
		f.dupAcks++
		if f.dupAcks == 3 && !f.inFastRec {
			f.FastRecovered++
			f.ssthresh = math.Max(f.cwnd/2, 2)
			f.cwnd = f.ssthresh + 3
			f.inFastRec = true
			f.recover = f.sndMax
			f.sendSegment(f.sndUna, false)
		} else if f.inFastRec {
			f.cwnd++ // inflate per extra dup ACK
			f.trySend()
		}
	}
}

// sampleRTT updates srtt/rttvar/rto per RFC 6298.
func (f *TCPFlow) sampleRTT(rtt sim.Time) {
	if f.srtt == 0 {
		f.srtt = rtt
		f.rttvar = rtt / 2
	} else {
		diff := f.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		f.rttvar = (3*f.rttvar + diff) / 4
		f.srtt = (7*f.srtt + rtt) / 8
	}
	f.rto = f.srtt + 4*f.rttvar
	if f.rto < f.cfg.RTOMin {
		f.rto = f.cfg.RTOMin
	}
}

// Cwnd exposes the congestion window for tests.
func (f *TCPFlow) Cwnd() float64 { return f.cwnd }

// SndUna exposes the first unacknowledged segment for tests.
func (f *TCPFlow) SndUna() uint64 { return f.sndUna }

// SndMax exposes the highest sequence sent so far plus one.
func (f *TCPFlow) SndMax() uint64 { return f.sndMax }
