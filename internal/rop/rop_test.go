package rop

import (
	"math/rand"
	"testing"

	"repro/internal/phy"
)

func TestAssignSortsByRSS(t *testing.T) {
	clients := []phy.NodeID{10, 11, 12, 13}
	rss := map[phy.NodeID]float64{10: -70, 11: -50, 12: -60, 13: -80}
	a := Assign(clients, func(c phy.NodeID) float64 { return rss[c] })
	// Strongest first: 11, 12, 10, 13 on subchannels 0..3.
	want := []phy.NodeID{11, 12, 10, 13}
	for i, c := range want {
		if a.Clients[i] != c || a.Subchannels[i] != i {
			t.Fatalf("assignment = %v / %v", a.Clients, a.Subchannels)
		}
	}
	if a.Subchannel(12) != 1 || a.Subchannel(99) != -1 {
		t.Errorf("Subchannel lookup wrong")
	}
}

func TestAssignTooManyPanics(t *testing.T) {
	clients := make([]phy.NodeID, MaxClients+1)
	defer func() {
		if recover() == nil {
			t.Error("oversubscribed Assign did not panic")
		}
	}()
	Assign(clients, func(phy.NodeID) float64 { return -60 })
}

func TestDecodeCleanRound(t *testing.T) {
	clients := []phy.NodeID{1, 2, 3}
	rss := map[phy.NodeID]float64{1: -55, 2: -60, 3: -65}
	queues := map[phy.NodeID]int{1: 0, 2: 17, 3: 200}
	a := Assign(clients, func(c phy.NodeID) float64 { return rss[c] })
	res := Decode(a,
		func(c phy.NodeID) int { return queues[c] },
		func(c phy.NodeID) float64 { return rss[c] },
		-94, rand.New(rand.NewSource(1)))
	if len(res.Failed) != 0 {
		t.Fatalf("failures in a clean round: %v", res.Failed)
	}
	if res.Values[1] != 0 || res.Values[2] != 17 {
		t.Errorf("values = %v", res.Values)
	}
	// Saturation at the 6-bit field (paper §3.1: report 63, track the rest).
	if res.Values[3] != 63 {
		t.Errorf("queue 200 reported as %d, want 63", res.Values[3])
	}
}

func TestDecodeAdjacentOverpower(t *testing.T) {
	// A >38 dB difference between adjacent subchannels kills the weak one.
	clients := []phy.NodeID{1, 2}
	rss := map[phy.NodeID]float64{1: -40, 2: -80}
	a := Assign(clients, func(c phy.NodeID) float64 { return rss[c] })
	res := Decode(a,
		func(phy.NodeID) int { return 5 },
		func(c phy.NodeID) float64 { return rss[c] },
		-94, rand.New(rand.NewSource(1)))
	if len(res.Failed) != 1 || res.Failed[0] != 2 {
		t.Fatalf("failed = %v, want [2]", res.Failed)
	}
	if _, ok := res.Values[1]; !ok {
		t.Error("strong client should decode")
	}
}

func TestDecodeSortingSeparatesExtremes(t *testing.T) {
	// Sorted assignment keeps a 44 dB total span decodable as long as each
	// adjacent step stays within tolerance.
	clients := []phy.NodeID{1, 2, 3}
	rss := map[phy.NodeID]float64{1: -40, 2: -62, 3: -84}
	a := Assign(clients, func(c phy.NodeID) float64 { return rss[c] })
	res := Decode(a,
		func(phy.NodeID) int { return 1 },
		func(c phy.NodeID) float64 { return rss[c] },
		-94, rand.New(rand.NewSource(1)))
	if len(res.Failed) != 0 {
		t.Fatalf("failed = %v; sorted assignment should separate extremes", res.Failed)
	}
}

func TestDecodeSNRFloor(t *testing.T) {
	clients := []phy.NodeID{1}
	a := Assign(clients, func(phy.NodeID) float64 { return -91 }) // SNR 3 dB < 4
	res := Decode(a,
		func(phy.NodeID) int { return 9 },
		func(phy.NodeID) float64 { return -91 },
		-94, rand.New(rand.NewSource(1)))
	if len(res.Failed) != 1 {
		t.Fatalf("sub-floor client decoded: %v", res.Values)
	}
}
