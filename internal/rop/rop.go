// Package rop implements the protocol side of Rapid OFDM Polling (paper
// §3.1): per-client subchannel assignment at association time and the AP-side
// decode of one polling round. The physical-layer behaviour (inter-subchannel
// leakage versus guard width and RSS difference) is measured by internal/ofdm;
// this package applies the calibrated tolerance — 3 guard subcarriers survive
// up to a 38 dB RSS difference between adjacent subchannels — as the decode
// rule, and assigns subchannels so that extreme pairs are never adjacent.
package rop

import (
	"math/rand"
	"sort"

	"repro/internal/obs"
	"repro/internal/ofdm"
	"repro/internal/phy"
	"repro/internal/sim"
)

// ToleranceDB is the adjacent-subchannel RSS difference the default layout
// (3 guard subcarriers) tolerates, from the internal/ofdm Fig 6 measurement.
const ToleranceDB = 38

// MaxClients is the number of subchannels one polling round offers. APs with
// more clients poll in sets (paper §3.5).
const MaxClients = 24

// defaultLayout is the Table 1 control-symbol layout, hoisted so the
// per-round decode path rebuilds nothing.
var defaultLayout = ofdm.DefaultLayout()

// Assignment maps an AP's clients to subchannels.
type Assignment struct {
	// Subchannel[i] is the subchannel of client Clients[i].
	Clients     []phy.NodeID
	Subchannels []int
}

// Assign allocates subchannels to the clients of one AP. Clients are sorted
// by RSS at the AP and placed in that order, so adjacent subchannels carry
// similar powers and the >38 dB extremes end up far apart — the mitigation
// the paper prescribes for extreme cases. At most MaxClients are assigned;
// callers with more clients must poll in sets.
func Assign(clients []phy.NodeID, rssAtAP func(phy.NodeID) float64) Assignment {
	if len(clients) > MaxClients {
		panic("rop: more clients than subchannels; poll in sets")
	}
	sorted := append([]phy.NodeID(nil), clients...)
	sort.SliceStable(sorted, func(a, b int) bool {
		return rssAtAP(sorted[a]) > rssAtAP(sorted[b])
	})
	a := Assignment{Clients: sorted}
	for i := range sorted {
		a.Subchannels = append(a.Subchannels, i)
	}
	return a
}

// Subchannel returns the subchannel of a client, or -1 if unassigned.
func (a Assignment) Subchannel(c phy.NodeID) int {
	for i, cl := range a.Clients {
		if cl == c {
			return a.Subchannels[i]
		}
	}
	return -1
}

// Result is the outcome of one polling round at the AP.
type Result struct {
	// Values holds the decoded (possibly saturated at 63) queue sizes for
	// clients whose report decoded.
	Values map[phy.NodeID]int
	// Failed lists clients whose subchannel was overwhelmed.
	Failed []phy.NodeID
}

// Decode evaluates one polling round: every assigned client reports its queue
// length simultaneously; a client's report fails when an adjacent subchannel
// carries a signal more than ToleranceDB stronger, or when its own SNR at the
// AP is below the 4 dB floor. queue gives each client's true backlog; snrAtAP
// gives the AP-side SNR of each client's report.
func Decode(a Assignment, queue func(phy.NodeID) int, rssAtAP func(phy.NodeID) float64,
	noiseDBm float64, rng *rand.Rand) Result {
	res := Result{Values: make(map[phy.NodeID]int, len(a.Clients))}
	for i, c := range a.Clients {
		rss := rssAtAP(c)
		ok := rss-noiseDBm >= 4 // the measured SNR floor (§3.1)
		if i > 0 && rssAtAP(a.Clients[i-1])-rss > ToleranceDB {
			ok = false
		}
		if i+1 < len(a.Clients) && rssAtAP(a.Clients[i+1])-rss > ToleranceDB {
			ok = false
		}
		if !ok {
			res.Failed = append(res.Failed, c)
			continue
		}
		res.Values[c] = defaultLayout.EncodeQueue(queue(c))
	}
	return res
}

// DecodeInto is Decode reusing caller-owned scratch: res.Values is cleared
// and refilled, res.Failed truncated and re-appended, so a warm Result makes
// the decode hot path allocation-free (the benchreport -poll gate pins it at
// zero allocs). The engine keeps using Decode — its results cross an async
// wired-latency boundary and must not share scratch between polls.
func DecodeInto(res *Result, a Assignment, queue func(phy.NodeID) int,
	rssAtAP func(phy.NodeID) float64, noiseDBm float64) {
	if res.Values == nil {
		res.Values = make(map[phy.NodeID]int, len(a.Clients))
	}
	for k := range res.Values {
		delete(res.Values, k)
	}
	res.Failed = res.Failed[:0]
	for i, c := range a.Clients {
		rss := rssAtAP(c)
		ok := rss-noiseDBm >= 4
		if i > 0 && rssAtAP(a.Clients[i-1])-rss > ToleranceDB {
			ok = false
		}
		if i+1 < len(a.Clients) && rssAtAP(a.Clients[i+1])-rss > ToleranceDB {
			ok = false
		}
		if !ok {
			res.Failed = append(res.Failed, c)
			continue
		}
		res.Values[c] = defaultLayout.EncodeQueue(queue(c))
	}
}

// DecodeObserved is Decode plus observability: when tr is non-nil it emits
// one KindROPPoll record per assigned client in assignment order (Node the
// client, Value the decoded backlog, Extra the subchannel, OK whether the
// report symbol decoded), timestamped now. Iteration follows a.Clients, not
// the result map, so the record order is deterministic. span is the causal
// span of the poll that solicited the reports (0 when spans are off); it
// becomes each record's Parent so polls hang off the trigger-chain tree.
func DecodeObserved(a Assignment, queue func(phy.NodeID) int, rssAtAP func(phy.NodeID) float64,
	noiseDBm float64, rng *rand.Rand, tr obs.Tracer, now sim.Time, span int64) Result {
	res := Decode(a, queue, rssAtAP, noiseDBm, rng)
	if tr != nil {
		for i, c := range a.Clients {
			rec := obs.Rec(now, obs.KindROPPoll)
			rec.Node = int(c)
			rec.Extra = int64(a.Subchannels[i])
			rec.Parent = span
			if v, ok := res.Values[c]; ok {
				rec.Value = int64(v)
				rec.OK = true
			}
			tr.Emit(rec)
		}
	}
	return res
}
