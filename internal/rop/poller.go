// The poll-registry adapter: ROP registers itself as the default polling
// scheme (internal/poll), so the DOMINO engine reaches Assign/Decode purely
// through the Poller interface. The wrapper adds nothing on top of the
// package's own functions — one round, the calibrated decode rule, the same
// per-client trace records — which is what keeps default-poller runs
// byte-identical to the pre-registry engine.

package rop

import (
	"repro/internal/phy"
	"repro/internal/poll"
)

// Poller adapts Rapid OFDM Polling to the poll registry. One instance
// serves one AP.
type Poller struct {
	assign Assignment
}

// Name implements poll.Poller.
func (p *Poller) Name() string { return "ROP" }

// Assign implements poll.Poller. Callers must respect the descriptor's
// MaxClients ceiling (Assign panics beyond it, as the paper's single
// control symbol offers only 24 subchannels).
func (p *Poller) Assign(clients []phy.NodeID, rssAtAP func(phy.NodeID) float64) {
	p.assign = Assign(clients, rssAtAP)
}

// Clients implements poll.Poller.
func (p *Poller) Clients() []phy.NodeID { return p.assign.Clients }

// Rounds implements poll.Poller: ROP is the one-symbol, one-round poll.
func (p *Poller) Rounds() int { return 1 }

// Poll implements poll.Poller via DecodeObserved, emitting the exact record
// sequence the pre-registry engine emitted.
func (p *Poller) Poll(ctx poll.Context) poll.Result {
	res := DecodeObserved(p.assign, ctx.Queue, ctx.RSSAtAP, ctx.NoiseDBm,
		ctx.Rng, ctx.Tracer, ctx.Now, ctx.Span)
	return poll.Result{Values: res.Values, Failed: res.Failed, Rounds: 1}
}

// State implements poll.Poller: ROP is stateless between cycles.
func (p *Poller) State() map[string]int64 { return nil }

// Assignment exposes the current layout (benchmarks and tests).
func (p *Poller) Assignment() Assignment { return p.assign }

func init() {
	poll.MustRegister(poll.Descriptor{
		Name:       "ROP",
		Summary:    "the paper's Rapid OFDM Polling: one 24-subchannel control symbol per cycle (§3.1)",
		MaxClients: MaxClients,
		Build: func(any) (poll.Poller, error) {
			return &Poller{}, nil
		},
	})
}
