package rop

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/phy"
)

func TestDecodeObserved(t *testing.T) {
	clients := []phy.NodeID{10, 11, 12}
	rss := func(c phy.NodeID) float64 {
		if c == 12 {
			return -120 // below the SNR floor: report fails
		}
		return -60
	}
	queue := func(c phy.NodeID) int { return int(c) - 9 } // 1, 2, 3
	a := Assign(clients, rss)
	var buf obs.Buffer
	res := DecodeObserved(a, queue, rss, -95, nil, &buf, 42, 7)
	plain := Decode(a, queue, rss, -95, nil)
	if len(res.Values) != len(plain.Values) || len(res.Failed) != len(plain.Failed) {
		t.Fatalf("DecodeObserved result differs from Decode: %+v vs %+v", res, plain)
	}
	recs := buf.Records()
	if len(recs) != len(clients) {
		t.Fatalf("emitted %d records, want one per client (%d)", len(recs), len(clients))
	}
	okCount := 0
	for i, r := range recs {
		if r.Kind != obs.KindROPPoll || r.At != 42 {
			t.Fatalf("record %d = %+v", i, r)
		}
		if r.Node != int(a.Clients[i]) || r.Extra != int64(a.Subchannels[i]) {
			t.Fatalf("record %d order broken: %+v vs client %d sub %d",
				i, r, a.Clients[i], a.Subchannels[i])
		}
		if r.Parent != 7 {
			t.Fatalf("record %d parent = %d, want the poll span 7", i, r.Parent)
		}
		if r.OK {
			okCount++
			if want := int64(plain.Values[a.Clients[i]]); r.Value != want {
				t.Fatalf("record %d backlog = %d, want %d", i, r.Value, want)
			}
		}
	}
	if okCount != 2 {
		t.Fatalf("%d reports decoded, want 2 (node 12 is below the floor)", okCount)
	}
	// Nil tracer emits nothing and matches Decode exactly.
	res2 := DecodeObserved(a, queue, rss, -95, nil, nil, 0, 0)
	if len(res2.Values) != len(plain.Values) {
		t.Fatal("nil-tracer DecodeObserved differs from Decode")
	}
}
