package sim

import (
	"testing"
)

// Cancel must remove the event from the heap immediately: cancelled events
// used to linger until the event loop skipped over them, inflating Pending()
// and with it the observability layer's queue-depth samples.
func TestCancelRemovesFromQueue(t *testing.T) {
	k := New(1)
	events := make([]Event, 10)
	for i := range events {
		events[i] = k.At(Time(i+1)*Microsecond, func() {})
	}
	if k.Pending() != 10 {
		t.Fatalf("pending = %d, want 10", k.Pending())
	}
	events[0].Cancel() // heap root
	events[5].Cancel() // interior node
	events[9].Cancel() // likely a leaf
	if k.Pending() != 7 {
		t.Fatalf("pending = %d after 3 cancels, want 7", k.Pending())
	}
	events[5].Cancel() // double-cancel is a no-op
	if k.Pending() != 7 {
		t.Fatalf("pending = %d after double cancel, want 7", k.Pending())
	}
	// The 7 survivors still fire in timestamp order after the removals.
	count := 0
	prev := Time(-1)
	k.OnEvent(func(info EventInfo) {
		if info.Now < prev {
			t.Fatalf("heap order violated after removals: %v after %v", info.Now, prev)
		}
		prev = info.Now
		count++
	})
	k.Run()
	if count != 7 {
		t.Fatalf("fired %d events, want 7", count)
	}
}

// Cancelling from inside a callback at the same instant exercises removal of
// events that are deep in the heap while the loop is mid-iteration.
func TestCancelDuringRun(t *testing.T) {
	k := New(1)
	fired := []int{}
	var victims []Event
	k.At(Microsecond, func() {
		fired = append(fired, 0)
		for _, v := range victims {
			v.Cancel()
		}
	})
	for i := 1; i <= 5; i++ {
		i := i
		victims = append(victims, k.At(Time(i+1)*Microsecond, func() { fired = append(fired, i) }))
	}
	survivor := 9
	k.At(10*Microsecond, func() { fired = append(fired, survivor) })
	k.Run()
	if len(fired) != 2 || fired[0] != 0 || fired[1] != 9 {
		t.Fatalf("fired = %v, want [0 9]", fired)
	}
	if k.Pending() != 0 {
		t.Fatalf("pending = %d after run, want 0", k.Pending())
	}
}

func TestOnEventHook(t *testing.T) {
	k := New(1)
	var infos []EventInfo
	k.OnEvent(func(info EventInfo) { infos = append(infos, info) })
	k.At(Microsecond, func() {}).SetSource(SrcTraffic)
	k.At(2*Microsecond, func() {})
	e := k.At(3*Microsecond, func() {})
	e.Cancel()
	k.Run()
	if len(infos) != 2 {
		t.Fatalf("hook ran %d times, want 2 (cancelled events are not observed)", len(infos))
	}
	if infos[0].Now != Microsecond || infos[0].Fired != 1 || infos[0].Source != SrcTraffic {
		t.Fatalf("first info = %+v", infos[0])
	}
	if infos[0].Pending != 1 {
		t.Fatalf("pending at first event = %d, want 1 (cancelled event was heap-removed)", infos[0].Pending)
	}
	if infos[1].Fired != 2 || infos[1].Source != SrcUnknown {
		t.Fatalf("second info = %+v", infos[1])
	}
}

// Events inherit the source of the event whose callback scheduled them.
func TestSourceInheritance(t *testing.T) {
	k := New(1)
	var got []Source
	k.OnEvent(func(info EventInfo) { got = append(got, info.Source) })
	k.After(Microsecond, func() {
		k.After(Microsecond, func() { // inherits SrcTraffic
			k.After(Microsecond, func() {}).SetSource(SrcPHY) // retagged
		})
	}).SetSource(SrcTraffic)
	k.Run()
	want := []Source{SrcTraffic, SrcTraffic, SrcPHY}
	if len(got) != len(want) {
		t.Fatalf("observed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d source = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSourceString(t *testing.T) {
	for s := SrcUnknown; s < NumSources; s++ {
		if s.String() == "" {
			t.Fatalf("source %d has empty name", s)
		}
	}
}

// The event loop's fire path — pop, hook check, callback — must not allocate,
// with or without a hook installed. Events are pre-scheduled outside the
// measured region so only the firing path is on the meter.
func TestOnEventNilHookZeroAllocs(t *testing.T) {
	measure := func(hook func(EventInfo)) float64 {
		k := New(1)
		k.OnEvent(hook)
		fn := func() {}
		const perRound = 100
		const rounds = 50
		for i := 0; i < perRound*(rounds+5); i++ {
			k.At(Time(i)*Microsecond, fn)
		}
		i := 0
		return testing.AllocsPerRun(rounds, func() {
			i++
			k.RunUntil(Time(i*perRound-1) * Microsecond)
		})
	}
	if got := measure(nil); got != 0 {
		t.Fatalf("nil hook: %v allocs per %d fired events, want 0", got, 100)
	}
	var n uint64
	if got := measure(func(info EventInfo) { n = info.Fired }); got != 0 {
		t.Fatalf("counting hook: %v allocs per %d fired events, want 0", got, 100)
	}
	_ = n
}

// BenchmarkKernel pins the event-loop hot path with the OnEvent hook disabled
// (the default for every simulation run without -trace/-metrics) against the
// hook-enabled path. The disabled case is the acceptance gate: 0 allocs/op
// and no regression vs the pre-obs kernel.
func BenchmarkKernel(b *testing.B) {
	churn := func(b *testing.B, hook func(EventInfo)) {
		k := New(1)
		k.OnEvent(hook)
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < b.N {
				k.After(Microsecond, tick)
			}
		}
		k.After(Microsecond, tick)
		b.ReportAllocs()
		b.ResetTimer()
		k.Run()
	}
	b.Run("disabled", func(b *testing.B) {
		churn(b, nil)
	})
	b.Run("enabled", func(b *testing.B) {
		var fired uint64
		churn(b, func(info EventInfo) { fired = info.Fired })
		_ = fired
	})
}
