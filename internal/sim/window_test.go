package sim

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestNextEventTime(t *testing.T) {
	k := New(1)
	if _, ok := k.NextEventTime(); ok {
		t.Fatal("empty kernel reported a next event")
	}
	k.At(30*Microsecond, func() {})
	k.At(10*Microsecond, func() {})
	if at, ok := k.NextEventTime(); !ok || at != 10*Microsecond {
		t.Fatalf("NextEventTime = %v, %v", at, ok)
	}
	k.RunUntil(20 * Microsecond)
	if at, ok := k.NextEventTime(); !ok || at != 30*Microsecond {
		t.Fatalf("after RunUntil: NextEventTime = %v, %v", at, ok)
	}
}

func TestRunBeforeExcludesHorizon(t *testing.T) {
	k := New(1)
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at * Microsecond
		k.At(at, func() { fired = append(fired, at) })
	}
	if now := k.RunBefore(15 * Microsecond); now != 15*Microsecond {
		t.Fatalf("clock = %v, want 15µs", now)
	}
	if want := []Time{5 * Microsecond, 10 * Microsecond}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	// The boundary event is still queued; a delivery at the boundary can
	// schedule at the current instant and order after it by sequence.
	if at, ok := k.NextEventTime(); !ok || at != 15*Microsecond {
		t.Fatalf("boundary event gone: %v, %v", at, ok)
	}
	k.At(15*Microsecond, func() { fired = append(fired, -1) })
	k.RunUntil(25 * Microsecond)
	want := []Time{5 * Microsecond, 10 * Microsecond, 15 * Microsecond, -1, 20 * Microsecond}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}

// TestWindowedRunMatchesSingleRun pins the resumability contract RunBefore is
// built for: windowed execution fires the same events in the same order as a
// single RunUntil, including self-scheduling chains that cross window
// boundaries.
func TestWindowedRunMatchesSingleRun(t *testing.T) {
	const deadline = 10 * Millisecond
	build := func(k *Kernel, log *[]Time) {
		rng := rand.New(rand.NewSource(99))
		var chain func()
		chain = func() {
			*log = append(*log, k.Now())
			if k.Now() < deadline {
				k.After(Time(rng.Intn(700)+1)*Microsecond, chain)
			}
		}
		for i := 0; i < 5; i++ {
			at := Time(rng.Intn(2000)) * Microsecond
			k.At(at, func() { *log = append(*log, at) })
		}
		k.At(0, chain)
	}

	var single []Time
	ks := New(7)
	build(ks, &single)
	ks.RunUntil(deadline)

	var windowed []Time
	kw := New(7)
	build(kw, &windowed)
	for h := Time(197 * Microsecond); h < deadline; h += 197 * Microsecond {
		kw.RunBefore(h)
	}
	kw.RunUntil(deadline)

	if !reflect.DeepEqual(single, windowed) {
		t.Fatalf("windowed run diverged: %d vs %d events", len(windowed), len(single))
	}
	if ks.Fired() != kw.Fired() || ks.Now() != kw.Now() {
		t.Fatalf("fired/now diverged: %d/%v vs %d/%v", ks.Fired(), ks.Now(), kw.Fired(), kw.Now())
	}
}
