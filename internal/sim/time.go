// Package sim provides a deterministic discrete-event simulation kernel used
// by every protocol engine in this repository. Time advances only when events
// fire; all randomness flows from a single seeded source so that every
// experiment is reproducible bit-for-bit from its seed.
package sim

import (
	"fmt"
	"math"
)

// Time is a simulated instant or duration in integer nanoseconds.
//
// Wireless MAC protocols are specified in microseconds (a WiFi slot is 9 µs),
// but sub-microsecond arithmetic shows up when modelling propagation delay and
// clock misalignment, so the kernel keeps nanosecond resolution throughout.
type Time int64

// Common duration units, usable as multipliers: 3 * sim.Microsecond.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable instant, used as an "never" sentinel.
const MaxTime Time = math.MaxInt64

// Micros converts a floating-point microsecond count to a Time, rounding to
// the nearest nanosecond. It is the usual way to import protocol constants
// that the 802.11 standard states in microseconds.
func Micros(us float64) Time {
	return Time(math.Round(us * 1e3))
}

// Millis converts a floating-point millisecond count to a Time.
func Millis(ms float64) Time {
	return Time(math.Round(ms * 1e6))
}

// Seconds returns the duration in seconds as a float64.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Microseconds returns the duration in microseconds as a float64.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

// Milliseconds returns the duration in milliseconds as a float64.
func (t Time) Milliseconds() float64 { return float64(t) / 1e6 }

// String renders the time with an adaptive unit, e.g. "9µs" or "1.25ms".
func (t Time) String() string {
	switch {
	case t == MaxTime:
		return "never"
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return trimZero(t.Microseconds(), "µs")
	case t < Second:
		return trimZero(t.Milliseconds(), "ms")
	default:
		return trimZero(t.Seconds(), "s")
	}
}

func trimZero(v float64, unit string) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d%s", int64(v), unit)
	}
	return fmt.Sprintf("%.3g%s", v, unit)
}
