package sim

// eventHeap is a monomorphic index-tracked binary min-heap over pooled
// events, ordered by (at, seq). It replaces container/heap: no
// heap.Interface, so push/pop/remove are direct calls on concrete types with
// no `any` boxing, and the stored index supports O(log n) eager removal on
// Cancel. Because (at, seq) is a total order (seq is unique), the pop
// sequence is the exact sorted order regardless of internal layout — the
// property the byte-identical trace contract rests on.
type eventHeap []*event

// peek returns the minimum event without removing it, or nil when empty.
func (h eventHeap) peek() *event {
	if len(h) == 0 {
		return nil
	}
	return h[0]
}

func (h eventHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = int32(i)
	h[j].index = int32(j)
}

// push inserts e and records its heap index.
func (h *eventHeap) push(e *event) {
	q := append(*h, e)
	*h = q
	i := len(q) - 1
	e.index = int32(i)
	q.up(i)
}

// popMin removes and returns the minimum event.
func (h *eventHeap) popMin() *event {
	q := *h
	n := len(q) - 1
	q.swap(0, n)
	e := q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	if n > 0 {
		q.down(0)
	}
	e.index = -1
	return e
}

// remove deletes the event at heap index i (the eager-Cancel path).
func (h *eventHeap) remove(i int) {
	q := *h
	n := len(q) - 1
	if i != n {
		q.swap(i, n)
	}
	e := q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	if i != n && i < n {
		if !q.down(i) {
			q.up(i)
		}
	}
	e.index = -1
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts the element at i toward the leaves and reports whether it moved.
func (h eventHeap) down(i int) bool {
	n := len(h)
	i0 := i
	for {
		l := 2*i + 1
		if l >= n || l < 0 { // l < 0 after int overflow
			break
		}
		j := l
		if r := l + 1; r < n && h.less(r, l) {
			j = r
		}
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		i = j
	}
	return i > i0
}
