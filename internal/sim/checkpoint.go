package sim

import (
	"fmt"
	"hash/fnv"
)

// QueuedEvent is the serializable shape of one still-pending event: its
// timestamp, its FIFO tie-breaker and its source attribution. The callback
// closure itself is deliberately absent — closures cannot round-trip through
// a byte stream, which is why kernel restore is replay-based (see
// KernelState): the serialized queue is the integrity contract a replayed
// kernel is audited against, not a substitute for re-executing the events
// that built it.
type QueuedEvent struct {
	At  Time   `json:"at"`
	Seq uint64 `json:"seq"`
	Src Source `json:"src"`
}

// KernelState is a serializable snapshot of everything observable about a
// kernel's scheduling state: the clock, the schedule/fire counters and the
// pending queue in exact pop order. Two kernels that executed the same event
// history have equal states; conversely a replayed kernel whose state
// matches a checkpoint has provably reconverged — same clock, same number of
// events scheduled and fired, and a pending queue that will pop the same
// (at, seq, src) sequence. That is the strongest statement serialization can
// make about a closure-based event queue, and it is exactly the guarantee
// deterministic replay needs: from here on, both kernels fire identical
// event sequences.
//
// Capture with Kernel.CheckpointState, audit with Kernel.VerifyState.
type KernelState struct {
	Now     Time          `json:"now"`
	Seq     uint64        `json:"seq"`
	Fired   uint64        `json:"fired"`
	Pending int           `json:"pending"`
	Queue   []QueuedEvent `json:"queue,omitempty"`
}

// CheckpointState serializes the kernel's scheduling state. The queue is
// emitted in pop order — sorted by (at, seq) — so equal states imply equal
// future pop sequences regardless of internal heap layout. Call only between
// events (never from inside a callback).
func (k *Kernel) CheckpointState() KernelState {
	s := KernelState{Now: k.now, Seq: k.seq, Fired: k.fired, Pending: k.Pending()}
	if k.ref != nil {
		for _, ev := range *k.ref {
			s.Queue = append(s.Queue, QueuedEvent{At: ev.at, Seq: ev.seq, Src: ev.src})
		}
	} else {
		for _, ev := range k.q {
			s.Queue = append(s.Queue, QueuedEvent{At: ev.at, Seq: ev.seq, Src: ev.src})
		}
	}
	sortQueued(s.Queue)
	return s
}

// sortQueued orders events by (at, seq) — the heap's total pop order.
func sortQueued(q []QueuedEvent) {
	// Insertion sort: checkpoint queues arrive heap-ordered (nearly sorted),
	// and checkpointing is far off any hot path.
	for i := 1; i < len(q); i++ {
		for j := i; j > 0 && (q[j].At < q[j-1].At || (q[j].At == q[j-1].At && q[j].Seq < q[j-1].Seq)); j-- {
			q[j], q[j-1] = q[j-1], q[j]
		}
	}
}

// Fingerprint hashes the state (FNV-1a over the clock, counters and the
// ordered queue) into one comparable word — the compact form checkpoint
// documents embed next to the full queue.
func (s KernelState) Fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	w(uint64(s.Now))
	w(s.Seq)
	w(s.Fired)
	w(uint64(s.Pending))
	for _, q := range s.Queue {
		w(uint64(q.At))
		w(q.Seq)
		w(uint64(q.Src))
	}
	return h.Sum64()
}

// VerifyState audits the kernel against a checkpointed state and returns a
// descriptive error on the first divergence — the replay-restore integrity
// gate. A nil return means the kernel's clock, counters and full pending
// queue match the snapshot exactly.
func (k *Kernel) VerifyState(want KernelState) error {
	got := k.CheckpointState()
	if got.Now != want.Now {
		return fmt.Errorf("sim: checkpoint clock mismatch: replayed %d, checkpointed %d", got.Now, want.Now)
	}
	if got.Fired != want.Fired {
		return fmt.Errorf("sim: checkpoint fired-count mismatch: replayed %d, checkpointed %d", got.Fired, want.Fired)
	}
	if got.Seq != want.Seq {
		return fmt.Errorf("sim: checkpoint schedule-count mismatch: replayed %d, checkpointed %d", got.Seq, want.Seq)
	}
	if got.Pending != want.Pending {
		return fmt.Errorf("sim: checkpoint pending-count mismatch: replayed %d, checkpointed %d", got.Pending, want.Pending)
	}
	// A compact state (queue dropped, fingerprint kept elsewhere) can only
	// audit the counters here; the caller compares fingerprints itself.
	if want.Queue == nil {
		return nil
	}
	if len(got.Queue) != len(want.Queue) {
		return fmt.Errorf("sim: checkpoint queue length mismatch: replayed %d, checkpointed %d", len(got.Queue), len(want.Queue))
	}
	for i := range want.Queue {
		if got.Queue[i] != want.Queue[i] {
			return fmt.Errorf("sim: checkpoint queue[%d] mismatch: replayed %+v, checkpointed %+v", i, got.Queue[i], want.Queue[i])
		}
	}
	return nil
}

// RunCount executes at most maxEvents events with timestamps ≤ deadline and
// reports whether the run segment completed: true means every event up to
// the deadline fired and the clock advanced to it (exactly what
// RunUntil(deadline) leaves behind), false means the event budget ran out
// first and the clock sits at the last fired event with work still pending.
//
// This is the bounded-slice drive the run-lifecycle layer steps long
// simulations with — between slices the driver can pause, checkpoint or
// cancel — and the replay primitive restore uses: RunCount(deadline, n)
// after n events leaves the kernel in the same state whether the n events
// fired in one call or many, so a checkpoint taken at any event boundary is
// reproducible by replaying that many events.
func (k *Kernel) RunCount(deadline Time, maxEvents uint64) (Time, bool) {
	k.stopped = false
	var fired uint64
	for !k.stopped && fired < maxEvents {
		var ev *event
		if k.ref != nil {
			ev = k.ref.peek()
		} else {
			ev = k.q.peek()
		}
		if ev == nil || ev.at > deadline {
			// Drained up to the deadline: finish the segment like RunUntil.
			if k.now < deadline && deadline != MaxTime {
				k.now = deadline
			}
			return k.now, true
		}
		if k.ref != nil {
			k.ref.popMin()
		} else {
			k.q.popMin()
		}
		if ev.cancelled {
			continue
		}
		k.now = ev.at
		k.fired++
		fired++
		k.cur = ev.src
		if k.hook != nil {
			k.hook(EventInfo{Now: ev.at, Fired: k.fired, Pending: k.Pending(), Source: ev.src})
		}
		fn := ev.fn
		k.release(ev)
		fn()
	}
	if k.stopped {
		return k.now, false
	}
	// Budget exhausted; peek whether anything within the deadline remains.
	var ev *event
	if k.ref != nil {
		ev = k.ref.peek()
	} else {
		ev = k.q.peek()
	}
	if ev == nil || ev.at > deadline {
		if k.now < deadline && deadline != MaxTime {
			k.now = deadline
		}
		return k.now, true
	}
	return k.now, false
}
