package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e9*Nanosecond {
		t.Fatalf("Second = %d ns", int64(Second))
	}
	if Micros(9) != 9*Microsecond {
		t.Fatalf("Micros(9) = %v", Micros(9))
	}
	if Micros(6.35) != Time(6350) {
		t.Fatalf("Micros(6.35) = %d", int64(Micros(6.35)))
	}
	if Millis(125.1) != Time(125_100_000) {
		t.Fatalf("Millis(125.1) = %d", int64(Millis(125.1)))
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds = %v", got)
	}
	if got := (9 * Microsecond).Microseconds(); got != 9.0 {
		t.Fatalf("Microseconds = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{9 * Microsecond, "9µs"},
		{Millis(1.25), "1.25ms"},
		{3 * Second, "3s"},
		{MaxTime, "never"},
		{-9 * Microsecond, "-9µs"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEventOrdering(t *testing.T) {
	k := New(1)
	var order []int
	k.At(30*Microsecond, func() { order = append(order, 3) })
	k.At(10*Microsecond, func() { order = append(order, 1) })
	k.At(20*Microsecond, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 30*Microsecond {
		t.Fatalf("final clock = %v", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5*Microsecond, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	k := New(1)
	fired := false
	e := k.At(Microsecond, func() { fired = true })
	e.Cancel()
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	k := New(1)
	fired := false
	e := k.At(2*Microsecond, func() { fired = true })
	k.At(Microsecond, func() { e.Cancel() })
	k.Run()
	if fired {
		t.Fatal("event fired despite cancellation at an earlier instant")
	}
}

func TestAfterAndNesting(t *testing.T) {
	k := New(1)
	var at []Time
	k.After(10*Microsecond, func() {
		at = append(at, k.Now())
		k.After(5*Microsecond, func() { at = append(at, k.Now()) })
	})
	k.Run()
	if len(at) != 2 || at[0] != 10*Microsecond || at[1] != 15*Microsecond {
		t.Fatalf("at = %v", at)
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	var fired []Time
	for _, d := range []Time{Microsecond, 2 * Microsecond, 3 * Microsecond} {
		d := d
		k.At(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(2 * Microsecond)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if k.Now() != 2*Microsecond {
		t.Fatalf("clock = %v", k.Now())
	}
	k.RunUntil(10 * Microsecond)
	if len(fired) != 3 {
		t.Fatalf("fired after resume = %v", fired)
	}
	if k.Now() != 10*Microsecond {
		t.Fatalf("clock advanced to %v, want deadline", k.Now())
	}
}

func TestStop(t *testing.T) {
	k := New(1)
	count := 0
	for i := 1; i <= 5; i++ {
		k.At(Time(i)*Microsecond, func() {
			count++
			if count == 2 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 2 {
		t.Fatalf("count = %d after Stop", count)
	}
	if k.Pending() != 3 {
		t.Fatalf("pending = %d", k.Pending())
	}
	// Run resumes after a Stop.
	k.Run()
	if count != 5 {
		t.Fatalf("count after resume = %d", count)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	k := New(1)
	k.At(10*Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5*Microsecond, func() {})
	})
	k.Run()
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		k := New(seed)
		var draws []int64
		var step func()
		step = func() {
			draws = append(draws, k.Rand().Int63n(1000))
			if len(draws) < 50 {
				k.After(Time(1+k.Rand().Int63n(100))*Microsecond, step)
			}
		}
		k.After(Microsecond, step)
		k.Run()
		return draws
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}

// Property: for any set of (time, id) pairs, the kernel fires them in
// non-decreasing time order and fires every non-cancelled one exactly once.
func TestQuickOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) > 500 {
			delays = delays[:500]
		}
		k := New(7)
		var fired []Time
		for _, d := range delays {
			d := Time(d) * Microsecond
			k.At(d, func() { fired = append(fired, d) })
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]Time, len(delays))
		for i, d := range delays {
			want[i] = Time(d) * Microsecond
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestFiredCounter(t *testing.T) {
	k := New(1)
	for i := 0; i < 10; i++ {
		k.At(Time(i)*Microsecond, func() {})
	}
	e := k.At(20*Microsecond, func() {})
	e.Cancel()
	k.Run()
	if k.Fired() != 10 {
		t.Fatalf("Fired = %d, want 10 (cancelled events do not count)", k.Fired())
	}
}

func BenchmarkKernelChurn(b *testing.B) {
	k := New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			k.After(Microsecond, tick)
		}
	}
	k.After(Microsecond, tick)
	b.ResetTimer()
	k.Run()
}
