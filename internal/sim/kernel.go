package sim

import (
	"container/heap"
	"math/rand"
)

// Source attributes an event to the layer that scheduled it. Events inherit
// the source of the event whose callback created them, so a chain started by
// a traffic arrival stays attributed to traffic until a layer retags it with
// Event.SetSource. The attribution feeds the observability layer's per-source
// fired counters; it has no effect on scheduling.
type Source uint8

const (
	SrcUnknown Source = iota
	SrcPHY            // medium transmission-end events
	SrcMAC            // contention, slot, watchdog and ack timers
	SrcTraffic        // workload arrival processes
	NumSources
)

func (s Source) String() string {
	switch s {
	case SrcPHY:
		return "phy"
	case SrcMAC:
		return "mac"
	case SrcTraffic:
		return "traffic"
	default:
		return "unknown"
	}
}

// Event is a scheduled callback. Events are created through Kernel.At and
// Kernel.After and may be cancelled before they fire. An Event must not be
// reused after it has fired or been cancelled.
type Event struct {
	at        Time
	seq       uint64 // tie-breaker: FIFO among events at the same instant
	index     int    // heap index, -1 once popped or cancelled
	fn        func()
	k         *Kernel
	src       Source
	cancelled bool
}

// At returns the instant the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// SetSource retags the event's attribution (see Source). It returns the event
// so call sites can chain it onto Kernel.At/After.
func (e *Event) SetSource(s Source) *Event {
	e.src = s
	return e
}

// Source returns the event's attribution.
func (e *Event) Source() Source { return e.src }

// Cancel prevents the event from firing and removes it from the queue via its
// stored heap index, so cancelled events no longer linger and inflate
// Pending(). Cancelling an event that already fired or was already cancelled
// is a no-op (the cancelled flag remains as a lazy-skip fallback for events
// that have been popped but not yet run).
func (e *Event) Cancel() {
	if e.cancelled {
		return
	}
	e.cancelled = true
	if e.k != nil && e.index >= 0 {
		heap.Remove(&e.k.queue, e.index)
	}
}

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// EventInfo is the snapshot handed to the Kernel.OnEvent hook just before an
// event's callback runs. It is passed by value so a nil or trivial hook costs
// no allocations.
type EventInfo struct {
	Now     Time   // the event's timestamp (== kernel clock when the hook runs)
	Fired   uint64 // events executed so far, including this one
	Pending int    // events still queued after this one was popped
	Source  Source // the event's attribution
}

// Kernel is a single-threaded discrete-event scheduler. The zero value is not
// usable; construct with New.
type Kernel struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64
	cur     Source // source of the currently executing event, inherited by new events
	hook    func(EventInfo)
}

// New returns a kernel whose clock starts at zero and whose random source is
// seeded with the given seed. Identical seeds yield identical simulations.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Rand exposes the kernel's deterministic random source. All model components
// must draw randomness from here (never from the global rand) to preserve
// reproducibility.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired returns the number of events executed so far, a cheap progress and
// complexity metric for benchmarks.
func (k *Kernel) Fired() uint64 { return k.fired }

// OnEvent installs hook to run before every event callback. A nil hook (the
// default) costs a single branch on the event loop and zero allocations;
// this is pinned by TestOnEventNilHookZeroAllocs and BenchmarkKernel.
func (k *Kernel) OnEvent(hook func(EventInfo)) { k.hook = hook }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a protocol-logic bug, and silently reordering time would
// corrupt every result built on top of the kernel.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic("sim: event scheduled in the past")
	}
	e := &Event{at: t, seq: k.seq, fn: fn, k: k, src: k.cur}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) *Event {
	return k.At(k.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
// Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the queue drains or Stop is
// called, and returns the final clock value.
func (k *Kernel) Run() Time { return k.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= deadline, then sets the clock to
// the deadline (if the queue drained earlier the clock stays at the last event
// fired). It returns the final clock value.
func (k *Kernel) RunUntil(deadline Time) Time {
	k.stopped = false
	for k.queue.Len() > 0 && !k.stopped {
		e := k.queue[0]
		if e.at > deadline {
			break
		}
		heap.Pop(&k.queue)
		if e.cancelled {
			continue
		}
		k.now = e.at
		k.fired++
		k.cur = e.src
		if k.hook != nil {
			k.hook(EventInfo{Now: e.at, Fired: k.fired, Pending: k.queue.Len(), Source: e.src})
		}
		e.fn()
	}
	if !k.stopped && deadline != MaxTime && k.now < deadline {
		k.now = deadline
	}
	return k.now
}

// Pending returns the number of events currently queued. Cancelled events are
// removed eagerly, so they no longer count.
func (k *Kernel) Pending() int { return k.queue.Len() }

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
