package sim

import "math/rand"

// Source attributes an event to the layer that scheduled it. Events inherit
// the source of the event whose callback created them, so a chain started by
// a traffic arrival stays attributed to traffic until a layer retags it with
// Event.SetSource. The attribution feeds the observability layer's per-source
// fired counters; it has no effect on scheduling.
type Source uint8

const (
	SrcUnknown Source = iota
	SrcPHY            // medium transmission-end events
	SrcMAC            // contention, slot, watchdog and ack timers
	SrcTraffic        // workload arrival processes
	NumSources
)

func (s Source) String() string {
	switch s {
	case SrcPHY:
		return "phy"
	case SrcMAC:
		return "mac"
	case SrcTraffic:
		return "traffic"
	default:
		return "unknown"
	}
}

// event is the kernel-owned state of one scheduled callback. The structs are
// pooled: once an event fires or is cancelled it returns to the kernel's free
// list and is reused by a later At/After, so the steady-state event loop
// allocates nothing. The generation counter is bumped on every reuse, which
// turns any still-outstanding handle to the struct's previous life into a
// harmless no-op (see Event).
type event struct {
	at        Time
	seq       uint64 // tie-breaker: FIFO among events at the same instant
	gen       uint64 // incremented each time the struct is recycled
	fn        func()
	k         *Kernel
	index     int32 // heap index, -1 when not queued
	src       Source
	cancelled bool
}

// Event is a generation-checked handle to a scheduled callback, returned by
// Kernel.At and Kernel.After. The zero value is an empty handle whose methods
// all no-op, so "no timer armed" needs no sentinel beyond Event{}.
//
// The pool contract: a handle is invalid once its event fires or is
// cancelled. The kernel recycles the underlying struct, and the generation
// stamp makes every later method call through a stale handle a safe no-op
// (Cancel cannot reach into an unrelated recycled event). Engines should
// still clear their stored handles (h = sim.Event{}) when the callback runs,
// as every MAC engine in this repository does — Scheduled is the armed check.
type Event struct {
	ev  *event
	gen uint64
	at  Time
}

// live reports whether the handle still refers to the event it was issued
// for (the slot has not been recycled).
func (e Event) live() bool { return e.ev != nil && e.gen == e.ev.gen }

// At returns the instant the event was scheduled to fire. The timestamp is
// stored in the handle itself, so it stays valid even once the handle is
// stale (and reports zero for the zero handle).
func (e Event) At() Time { return e.at }

// Scheduled reports whether the event is still queued: not yet fired and not
// cancelled. False for the zero handle and for stale handles.
func (e Event) Scheduled() bool { return e.live() && e.ev.index >= 0 }

// SetSource retags the event's attribution (see Source). It returns the
// handle so call sites can chain it onto Kernel.At/After. A no-op on stale
// or zero handles.
func (e Event) SetSource(s Source) Event {
	if e.live() {
		e.ev.src = s
	}
	return e
}

// Source returns the event's attribution, or SrcUnknown once the handle is
// stale.
func (e Event) Source() Source {
	if e.live() {
		return e.ev.src
	}
	return SrcUnknown
}

// Cancel prevents the event from firing, removes it from the queue via its
// stored heap index (cancelled events do not linger and inflate Pending())
// and recycles its storage. Cancelling an event that already fired, was
// already cancelled, or whose storage has since been reused is a no-op: the
// generation check stops a stale handle from touching the slot's new
// occupant.
func (e Event) Cancel() {
	if !e.live() || e.ev.cancelled {
		return
	}
	ev := e.ev
	ev.cancelled = true
	if ev.index >= 0 {
		ev.k.removeQueued(ev)
	}
}

// Cancelled reports whether Cancel has been called on the event. Reliable
// from the Cancel call until the kernel reuses the event's storage for a new
// schedule (handles are contractually dead after fire/cancel; this query
// exists for assertions immediately after a Cancel). False for the zero
// handle and stale handles.
func (e Event) Cancelled() bool { return e.live() && e.ev.cancelled }

// EventInfo is the snapshot handed to the Kernel.OnEvent hook just before an
// event's callback runs. It is passed by value so a nil or trivial hook costs
// no allocations.
type EventInfo struct {
	Now     Time   // the event's timestamp (== kernel clock when the hook runs)
	Fired   uint64 // events executed so far, including this one
	Pending int    // events still queued after this one was popped
	Source  Source // the event's attribution
}

// Kernel is a single-threaded discrete-event scheduler. The zero value is not
// usable; construct with New.
//
// The event queue is a monomorphic index-tracked binary min-heap specialized
// to the pooled event struct: no heap.Interface, no interface boxing, and no
// allocation per schedule in steady state (events recycle through a free
// list). A retained container/heap implementation (see refqueue.go) can be
// swapped in for differential tests.
type Kernel struct {
	now     Time
	q       eventHeap
	free    []*event
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64
	cur     Source // source of the currently executing event, inherited by new events
	hook    func(EventInfo)
	ref     *refQueue // non-nil: use the retained container/heap reference queue
}

// New returns a kernel whose clock starts at zero and whose random source is
// seeded with the given seed. Identical seeds yield identical simulations.
func New(seed int64) *Kernel {
	k := &Kernel{rng: rand.New(rand.NewSource(seed))}
	if referenceQueue.Load() {
		k.ref = new(refQueue)
	}
	return k
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Rand exposes the kernel's deterministic random source. All model components
// must draw randomness from here (never from the global rand) to preserve
// reproducibility.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired returns the number of events executed so far, a cheap progress and
// complexity metric for benchmarks.
func (k *Kernel) Fired() uint64 { return k.fired }

// OnEvent installs hook to run before every event callback. A nil hook (the
// default) costs a single branch on the event loop and zero allocations;
// this is pinned by TestOnEventNilHookZeroAllocs and BenchmarkKernel.
func (k *Kernel) OnEvent(hook func(EventInfo)) { k.hook = hook }

// alloc returns a recycled event struct, or a fresh one when the pool is
// empty. The generation bump invalidates every handle issued for the
// struct's previous life.
func (k *Kernel) alloc() *event {
	if n := len(k.free) - 1; n >= 0 {
		ev := k.free[n]
		k.free[n] = nil
		k.free = k.free[:n]
		ev.gen++
		ev.cancelled = false
		return ev
	}
	return &event{k: k, index: -1}
}

// release returns a fired or cancelled event to the pool. Reference-mode
// kernels skip the pool so events become garbage, exactly like the pre-pool
// kernel they exist to reproduce.
func (k *Kernel) release(ev *event) {
	ev.fn = nil // drop the closure so the pool does not pin captured state
	if k.ref == nil {
		k.free = append(k.free, ev)
	}
}

// removeQueued eagerly removes a still-queued event (the Cancel path) and
// recycles it.
func (k *Kernel) removeQueued(ev *event) {
	if k.ref != nil {
		k.ref.remove(int(ev.index))
	} else {
		k.q.remove(int(ev.index))
	}
	k.release(ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a protocol-logic bug, and silently reordering time would
// corrupt every result built on top of the kernel. Zero-alloc in steady
// state: the event struct comes from the kernel's pool and the returned
// handle is a value.
func (k *Kernel) At(t Time, fn func()) Event {
	if t < k.now {
		panic("sim: event scheduled in the past")
	}
	var ev *event
	if k.ref != nil {
		ev = &event{k: k, index: -1} // reference mode: one allocation per event
	} else {
		ev = k.alloc()
	}
	ev.at = t
	ev.seq = k.seq
	ev.fn = fn
	ev.src = k.cur
	k.seq++
	if k.ref != nil {
		k.ref.push(ev)
	} else {
		k.q.push(ev)
	}
	return Event{ev: ev, gen: ev.gen, at: t}
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) Event {
	return k.At(k.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
// Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the queue drains or Stop is
// called, and returns the final clock value.
func (k *Kernel) Run() Time { return k.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= deadline, then sets the clock to
// the deadline (if the queue drained earlier the clock stays at the last event
// fired). It returns the final clock value.
func (k *Kernel) RunUntil(deadline Time) Time { return k.run(deadline, true) }

// RunBefore executes events with timestamps strictly below horizon, then
// advances the clock to the horizon. It is the bounded-horizon window step of
// conservative-lookahead execution: events at exactly the horizon stay
// queued, so work injected at the window boundary (a cross-shard delivery)
// can still schedule at the boundary instant and interleave with local
// boundary events in plain schedule order on the next window. Resumable:
// successive RunBefore calls with increasing horizons followed by a final
// RunUntil fire exactly the events one RunUntil would, in the same order.
func (k *Kernel) RunBefore(horizon Time) Time { return k.run(horizon, false) }

// NextEventTime returns the timestamp of the earliest queued event, or
// (0, false) when the queue is empty — the lookahead peek a shard runner
// uses to skip empty windows.
func (k *Kernel) NextEventTime() (Time, bool) {
	var ev *event
	if k.ref != nil {
		ev = k.ref.peek()
	} else {
		ev = k.q.peek()
	}
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

func (k *Kernel) run(limit Time, inclusive bool) Time {
	k.stopped = false
	for !k.stopped {
		var ev *event
		if k.ref != nil {
			ev = k.ref.peek()
		} else {
			ev = k.q.peek()
		}
		if ev == nil || ev.at > limit || (!inclusive && ev.at == limit) {
			break
		}
		if k.ref != nil {
			k.ref.popMin()
		} else {
			k.q.popMin()
		}
		if ev.cancelled {
			// Cancelled events are removed eagerly; this lazy skip only
			// guards an event cancelled through its own handle between pop
			// and run (not reachable today, kept as a cheap invariant).
			continue
		}
		k.now = ev.at
		k.fired++
		k.cur = ev.src
		if k.hook != nil {
			k.hook(EventInfo{Now: ev.at, Fired: k.fired, Pending: k.Pending(), Source: ev.src})
		}
		fn := ev.fn
		k.release(ev)
		fn()
	}
	if !k.stopped && limit != MaxTime && k.now < limit {
		k.now = limit
	}
	return k.now
}

// Pending returns the number of events currently queued. Cancelled events are
// removed eagerly, so they no longer count.
func (k *Kernel) Pending() int {
	if k.ref != nil {
		return len(*k.ref)
	}
	return len(k.q)
}

// poolSize exposes the free-list depth to white-box tests.
func (k *Kernel) poolSize() int { return len(k.free) }
