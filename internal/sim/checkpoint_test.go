package sim

import (
	"testing"
)

// chainWorkload schedules a self-perpetuating event chain with some fan-out
// and cancellations — enough queue churn to make state comparisons
// meaningful.
func chainWorkload(k *Kernel, fires *[]Time) {
	var step func()
	var pendingCancel Event
	step = func() {
		*fires = append(*fires, k.Now())
		d := Time(1 + k.Rand().Intn(50))
		k.After(d, step)
		if k.Rand().Intn(3) == 0 {
			pendingCancel = k.After(d*2, func() { *fires = append(*fires, k.Now()) }).SetSource(SrcMAC)
		}
		if k.Rand().Intn(4) == 0 {
			pendingCancel.Cancel()
		}
	}
	k.At(0, step)
}

// TestRunCountMatchesRunUntil drives the same workload in one RunUntil and
// in many RunCount slices and asserts identical fire sequences, clocks and
// checkpoint states.
func TestRunCountMatchesRunUntil(t *testing.T) {
	const deadline = 5000 * Time(1)
	var refFires []Time
	ref := New(7)
	chainWorkload(ref, &refFires)
	ref.RunUntil(deadline)

	var gotFires []Time
	k := New(7)
	chainWorkload(k, &gotFires)
	for {
		_, done := k.RunCount(deadline, 3)
		if done {
			break
		}
	}
	if len(gotFires) != len(refFires) {
		t.Fatalf("sliced run fired %d events, reference %d", len(gotFires), len(refFires))
	}
	for i := range refFires {
		if gotFires[i] != refFires[i] {
			t.Fatalf("fire %d at %v, reference %v", i, gotFires[i], refFires[i])
		}
	}
	if k.Now() != ref.Now() {
		t.Fatalf("clock %v, reference %v", k.Now(), ref.Now())
	}
	gs, rs := k.CheckpointState(), ref.CheckpointState()
	if gs.Fingerprint() != rs.Fingerprint() {
		t.Fatalf("state fingerprints differ: %x vs %x", gs.Fingerprint(), rs.Fingerprint())
	}
	if err := k.VerifyState(rs); err != nil {
		t.Fatalf("VerifyState: %v", err)
	}
}

// TestReplayToFiredCount checkpoints a run at an arbitrary event boundary,
// replays a fresh kernel to the same fired count, and asserts the replayed
// state passes the audit — the core restore contract.
func TestReplayToFiredCount(t *testing.T) {
	const deadline = 4000 * Time(1)
	for _, stop := range []uint64{1, 7, 50, 213} {
		var fires []Time
		orig := New(11)
		chainWorkload(orig, &fires)
		for orig.Fired() < stop {
			if _, done := orig.RunCount(deadline, stop-orig.Fired()); done {
				break
			}
		}
		cp := orig.CheckpointState()

		var replayFires []Time
		rep := New(11)
		chainWorkload(rep, &replayFires)
		rep.RunCount(deadline, cp.Fired)
		if err := rep.VerifyState(cp); err != nil {
			t.Fatalf("stop=%d: replay audit failed: %v", stop, err)
		}

		// The two kernels must now also agree on the entire remainder.
		orig.RunUntil(deadline)
		rep.RunUntil(deadline)
		if len(fires) != len(replayFires) {
			t.Fatalf("stop=%d: remainder diverged: %d vs %d fires", stop, len(fires), len(replayFires))
		}
		for i := range fires {
			if fires[i] != replayFires[i] {
				t.Fatalf("stop=%d: fire %d at %v vs %v", stop, i, fires[i], replayFires[i])
			}
		}
	}
}

// TestVerifyStateDetectsDivergence asserts the audit actually fails when the
// replayed kernel differs.
func TestVerifyStateDetectsDivergence(t *testing.T) {
	a := New(3)
	var sink []Time
	chainWorkload(a, &sink)
	a.RunCount(1000, 10)
	cp := a.CheckpointState()

	b := New(3)
	var sink2 []Time
	chainWorkload(b, &sink2)
	b.RunCount(1000, 9) // one event short
	if err := b.VerifyState(cp); err == nil {
		t.Fatal("VerifyState accepted a kernel one event behind the checkpoint")
	}
	b.RunCount(1000, 1)
	if err := b.VerifyState(cp); err != nil {
		t.Fatalf("VerifyState rejected a correctly replayed kernel: %v", err)
	}
	// Perturb the future: schedule an extra event and expect a queue mismatch.
	b.After(5, func() {})
	if err := b.VerifyState(cp); err == nil {
		t.Fatal("VerifyState accepted a kernel with an extra queued event")
	}
}

// TestCheckpointStateSorted asserts the serialized queue is in exact pop
// order, independent of heap layout.
func TestCheckpointStateSorted(t *testing.T) {
	k := New(1)
	for i := 0; i < 64; i++ {
		k.At(Time(k.Rand().Intn(100)), func() {})
	}
	s := k.CheckpointState()
	for i := 1; i < len(s.Queue); i++ {
		a, b := s.Queue[i-1], s.Queue[i]
		if a.At > b.At || (a.At == b.At && a.Seq > b.Seq) {
			t.Fatalf("queue not in pop order at %d: %+v then %+v", i, a, b)
		}
	}
	if s.Pending != len(s.Queue) || s.Pending != k.Pending() {
		t.Fatalf("pending %d, queue %d, kernel %d", s.Pending, len(s.Queue), k.Pending())
	}
}
