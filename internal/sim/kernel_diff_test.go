package sim

import (
	"math/rand"
	"testing"
)

// opTrace drives one kernel through a deterministic random schedule of
// At/After/Cancel operations (derived from seed) and records the (at, seq)
// identity of every event that fires. Callbacks themselves schedule and
// cancel, so the interleaving exercises mid-run mutation of the queue.
func opTrace(k *Kernel, seed int64, ops int) []EventInfo {
	rng := rand.New(rand.NewSource(seed))
	var fired []EventInfo
	k.OnEvent(func(info EventInfo) { fired = append(fired, info) })

	var handles []Event
	var step func()
	remaining := ops
	step = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		switch rng.Intn(4) {
		case 0: // absolute schedule, possibly at the current instant (FIFO tie)
			handles = append(handles, k.At(k.Now()+Time(rng.Intn(5)), step))
		case 1: // relative schedule
			handles = append(handles, k.After(Time(1+rng.Intn(50)), step))
		case 2: // schedule then cancel a random outstanding handle
			handles = append(handles, k.After(Time(1+rng.Intn(50)), step))
			handles[rng.Intn(len(handles))].Cancel()
		default: // burst of same-instant events to stress seq tie-breaking
			at := k.Now() + Time(rng.Intn(3))
			for i := 0; i < 3; i++ {
				handles = append(handles, k.At(at, step))
			}
		}
	}
	// Seed the run with a few roots so cancellation cannot strand the trace.
	for i := 0; i < 4; i++ {
		handles = append(handles, k.After(Time(i), step))
	}
	k.Run()
	return fired
}

// TestDifferentialRandomOps is the satellite-1 property test: for random
// At/After/Cancel interleavings the pooled monomorphic kernel must fire the
// exact same event sequence — same timestamps, same fired counts, same
// pending depths, same sources — as the retained container/heap reference.
func TestDifferentialRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		pooled := New(seed)
		got := opTrace(pooled, seed, 400)

		SetReferenceQueue(true)
		refKernel := New(seed)
		SetReferenceQueue(false)
		want := opTrace(refKernel, seed, 400)

		if len(got) != len(want) {
			t.Fatalf("seed %d: pooled fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: event %d diverged: pooled %+v, reference %+v", seed, i, got[i], want[i])
			}
		}
		if pooled.Now() != refKernel.Now() {
			t.Fatalf("seed %d: final clocks diverged: %v vs %v", seed, pooled.Now(), refKernel.Now())
		}
	}
}

// TestSameInstantFIFOProperty checks (at, seq) ordering directly: events
// scheduled at identical instants from random interleavings fire in exact
// schedule order, and distinct instants fire in time order.
func TestSameInstantFIFOProperty(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := New(seed)
		type stamp struct {
			at  Time
			ord int
		}
		var want []stamp
		var got []stamp
		for i := 0; i < 300; i++ {
			at := Time(rng.Intn(20))
			ord := i
			want = append(want, stamp{at, ord})
			k.At(at, func() { got = append(got, stamp{k.Now(), ord}) })
		}
		// Expected order: stable sort by at (schedule order preserved within
		// an instant) — exactly the (at, seq) contract.
		for i := 1; i < len(want); i++ {
			for j := i; j > 0 && want[j].at < want[j-1].at; j-- {
				want[j], want[j-1] = want[j-1], want[j]
			}
		}
		k.Run()
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d, want %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: position %d = %+v, want %+v", seed, i, got[i], want[i])
			}
		}
	}
}
