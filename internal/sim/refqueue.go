package sim

import (
	"container/heap"
	"sync/atomic"
)

// refQueue is the event queue this kernel shipped with before the pooled
// monomorphic heap: container/heap over a boxed slice, one garbage event per
// schedule. It is retained verbatim (modulo the event struct rename) as the
// differential-testing reference — TestDifferentialRandomOps and the
// exp-level trace tests assert that the pooled kernel fires the exact same
// event sequence and produces byte-identical NDJSON traces.
type refQueue []*event

func (q refQueue) Len() int { return len(q) }

func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = int32(i)
	q[j].index = int32(j)
}

func (q *refQueue) Push(x any) {
	e := x.(*event)
	e.index = int32(len(*q))
	*q = append(*q, e)
}

func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// peek returns the minimum event without removing it, or nil when empty.
func (q refQueue) peek() *event {
	if len(q) == 0 {
		return nil
	}
	return q[0]
}

func (q *refQueue) push(e *event)  { heap.Push(q, e) }
func (q *refQueue) popMin() *event { return heap.Pop(q).(*event) }
func (q *refQueue) remove(i int)   { heap.Remove(q, i) }

// referenceQueue selects the queue backend for kernels constructed by New.
var referenceQueue atomic.Bool

// SetReferenceQueue makes every subsequently constructed Kernel use the
// retained container/heap reference queue (with per-event allocation, no
// pooling) instead of the pooled monomorphic heap. Differential tests and
// before/after benchmarks only; existing kernels are unaffected. Callers
// must restore the default with SetReferenceQueue(false).
func SetReferenceQueue(on bool) { referenceQueue.Store(on) }

// ReferenceQueueEnabled reports the current backend selection.
func ReferenceQueueEnabled() bool { return referenceQueue.Load() }
