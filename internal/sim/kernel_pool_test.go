package sim

import "testing"

// The pool contract: an Event handle is invalid after its event fires or is
// cancelled. The generation counter must turn every operation through a
// stale handle into a no-op instead of reaching the slot's new occupant.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	k := New(1)
	first := k.At(Microsecond, func() {})
	k.Run() // fires and recycles the event struct

	fired := false
	second := k.At(2*Microsecond, func() { fired = true })
	if second.ev != first.ev {
		t.Fatalf("pool did not recycle the fired event struct")
	}
	first.Cancel() // stale: must not cancel the recycled slot's new event
	if first.Cancelled() {
		t.Fatal("stale handle reports Cancelled")
	}
	if first.Scheduled() {
		t.Fatal("stale handle reports Scheduled")
	}
	k.Run()
	if !fired {
		t.Fatal("stale Cancel reached the recycled event")
	}
}

func TestZeroHandleIsInert(t *testing.T) {
	var e Event
	e.Cancel() // must not panic
	if e.Scheduled() || e.Cancelled() {
		t.Fatal("zero handle claims to be scheduled/cancelled")
	}
	if e.At() != 0 {
		t.Fatalf("zero handle At = %v", e.At())
	}
	if e.Source() != SrcUnknown {
		t.Fatalf("zero handle Source = %v", e.Source())
	}
	e = e.SetSource(SrcMAC) // no-op, must not panic
	if e.Source() != SrcUnknown {
		t.Fatal("SetSource took effect on a zero handle")
	}
}

func TestHandleLifecycle(t *testing.T) {
	k := New(1)
	e := k.At(5*Microsecond, func() {})
	if !e.Scheduled() {
		t.Fatal("fresh handle not Scheduled")
	}
	if e.At() != 5*Microsecond {
		t.Fatalf("At = %v", e.At())
	}
	e.Cancel()
	if e.Scheduled() {
		t.Fatal("cancelled handle still Scheduled")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false immediately after Cancel")
	}
	e.Cancel() // double cancel is a no-op
	if k.Pending() != 0 {
		t.Fatalf("pending = %d after cancel", k.Pending())
	}
	// At() survives staleness: the timestamp lives in the handle.
	k.At(6*Microsecond, func() {}) // recycles the slot
	if e.At() != 5*Microsecond {
		t.Fatalf("stale handle At = %v, want the original 5µs", e.At())
	}
}

// Fired and cancelled events must recycle through the free list instead of
// becoming garbage: after churn, the pool holds the structs and the queue is
// empty.
func TestPoolRecycles(t *testing.T) {
	k := New(1)
	for i := 0; i < 100; i++ {
		k.At(Time(i)*Microsecond, func() {})
	}
	e := k.At(Second, func() {})
	e.Cancel()
	if got := k.poolSize(); got != 1 {
		t.Fatalf("pool size after cancel = %d, want 1", got)
	}
	k.Run()
	if got := k.poolSize(); got != 101 {
		t.Fatalf("pool size after drain = %d, want 101", got)
	}
	// The next 101 schedules must come from the pool.
	for i := 0; i < 101; i++ {
		k.At(k.Now()+Time(i+1)*Microsecond, func() {})
	}
	if got := k.poolSize(); got != 0 {
		t.Fatalf("pool size after reschedule = %d, want 0", got)
	}
}

// Kernel.At and After are the zero-alloc contract of this PR: in steady
// state (pool warm) scheduling and cancelling allocates nothing.
func TestAtAfterCancelZeroAllocs(t *testing.T) {
	k := New(1)
	fn := func() {}
	// Warm the pool.
	for i := 0; i < 8; i++ {
		k.At(Time(i), fn)
	}
	k.Run()
	if got := testing.AllocsPerRun(200, func() {
		e := k.At(k.Now()+Microsecond, fn)
		e.Cancel()
	}); got != 0 {
		t.Fatalf("At+Cancel allocates %v/op in steady state, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		k.After(Microsecond, fn)
		k.Run()
	}); got != 0 {
		t.Fatalf("After+Run allocates %v/op in steady state, want 0", got)
	}
}

// Reference-mode kernels must behave identically apart from pooling.
func TestReferenceQueueBasics(t *testing.T) {
	SetReferenceQueue(true)
	defer SetReferenceQueue(false)
	if !ReferenceQueueEnabled() {
		t.Fatal("reference mode not enabled")
	}
	k := New(1)
	if k.ref == nil {
		t.Fatal("kernel did not pick up the reference queue")
	}
	var order []int
	k.At(30*Microsecond, func() { order = append(order, 3) })
	k.At(10*Microsecond, func() { order = append(order, 1) })
	e := k.At(20*Microsecond, func() { order = append(order, 2) })
	e.Cancel()
	if k.Pending() != 2 {
		t.Fatalf("pending = %d after cancel, want 2", k.Pending())
	}
	k.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v", order)
	}
	if k.poolSize() != 0 {
		t.Fatal("reference-mode kernel pooled events")
	}
}
