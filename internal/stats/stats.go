// Package stats computes the evaluation metrics the paper reports:
// per-link and aggregate throughput, average packet delay, Jain's fairness
// index, empirical CDFs, and the transmission-misalignment probe of Fig 11.
package stats

import (
	"math"
	"sort"

	"repro/internal/mac"
	"repro/internal/sim"
)

// LinkStats accumulates outcomes for one link.
type LinkStats struct {
	DeliveredPkts int
	DeliveredB    int64
	DroppedPkts   int
	DelaySum      sim.Time
}

// Collector implements mac.Events over a fixed set of links.
type Collector struct {
	links []LinkStats
	start sim.Time
}

// NewCollector sizes the collector for numLinks links, measuring from the
// given start time (deliveries before it are ignored — warm-up).
func NewCollector(numLinks int, start sim.Time) *Collector {
	return &Collector{links: make([]LinkStats, numLinks), start: start}
}

// Delivered implements mac.Events.
func (c *Collector) Delivered(p *mac.Packet, now sim.Time) {
	if now < c.start {
		return
	}
	s := &c.links[p.Link.ID]
	s.DeliveredPkts++
	s.DeliveredB += int64(p.Bytes)
	s.DelaySum += now - p.Enqueued
}

// Dropped implements mac.Events.
func (c *Collector) Dropped(p *mac.Packet, now sim.Time) {
	if now < c.start {
		return
	}
	c.links[p.Link.ID].DroppedPkts++
}

// Merge folds another collector's per-link tallies into this one, link by
// link. Both collectors must track the same link set; shards of a split
// measurement window merge into exactly the serial totals (all fields are
// sums).
func (c *Collector) Merge(o *Collector) {
	if len(o.links) != len(c.links) {
		panic("stats: merging collectors with different link counts")
	}
	for id := range c.links {
		s, os := &c.links[id], &o.links[id]
		s.DeliveredPkts += os.DeliveredPkts
		s.DeliveredB += os.DeliveredB
		s.DroppedPkts += os.DroppedPkts
		s.DelaySum += os.DelaySum
	}
}

// MergeMapped folds collector o into c with a link-id translation: o's link
// i lands on c's link mapID(i). It is the cross-index-space variant of Merge
// a sharded run uses to fold each interference domain's collector (dense
// local link ids) into the campus-wide collector (global link ids).
func (c *Collector) MergeMapped(o *Collector, mapID func(int) int) {
	for id := range o.links {
		s, os := &c.links[mapID(id)], &o.links[id]
		s.DeliveredPkts += os.DeliveredPkts
		s.DeliveredB += os.DeliveredB
		s.DroppedPkts += os.DroppedPkts
		s.DelaySum += os.DelaySum
	}
}

// Link returns the accumulated statistics for a link.
func (c *Collector) Link(id int) LinkStats { return c.links[id] }

// NumLinks returns the number of links tracked.
func (c *Collector) NumLinks() int { return len(c.links) }

// ThroughputMbps returns a link's goodput over the measurement window ending
// at end.
func (c *Collector) ThroughputMbps(id int, end sim.Time) float64 {
	dur := (end - c.start).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(c.links[id].DeliveredB) * 8 / dur / 1e6
}

// AggregateMbps returns the summed goodput of all links.
func (c *Collector) AggregateMbps(end sim.Time) float64 {
	var total float64
	for id := range c.links {
		total += c.ThroughputMbps(id, end)
	}
	return total
}

// PerLinkMbps returns each link's goodput.
func (c *Collector) PerLinkMbps(end sim.Time) []float64 {
	out := make([]float64, len(c.links))
	for id := range c.links {
		out[id] = c.ThroughputMbps(id, end)
	}
	return out
}

// MeanDelay returns the average delivery delay across all links' delivered
// packets (the paper's "average delay per link" aggregates the same way).
func (c *Collector) MeanDelay() sim.Time {
	var sum sim.Time
	var n int
	for _, s := range c.links {
		sum += s.DelaySum
		n += s.DeliveredPkts
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Time(n)
}

// MeanDelayPerLink averages each link's own mean delay, weighting links
// equally — the paper's "average delay per link", which (unlike a
// packet-weighted mean) is not dominated by whichever links deliver most.
func (c *Collector) MeanDelayPerLink() sim.Time {
	var sum sim.Time
	var n int
	for _, s := range c.links {
		if s.DeliveredPkts == 0 {
			continue
		}
		sum += s.DelaySum / sim.Time(s.DeliveredPkts)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Time(n)
}

// Fairness returns Jain's index over per-link throughput.
func (c *Collector) Fairness(end sim.Time) float64 {
	return JainIndex(c.PerLinkMbps(end))
}

// JainIndex computes Jain's fairness index (Σx)²/(n·Σx²) ∈ (0, 1]; 1 is
// perfectly fair. An all-zero allocation returns 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// CDF is an empirical cumulative distribution over added samples.
type CDF struct {
	xs     []float64
	sorted bool
}

// Add appends a sample.
func (c *CDF) Add(x float64) {
	c.xs = append(c.xs, x)
	c.sorted = false
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.xs) }

// Merge absorbs another CDF's samples. Merging per-shard CDFs in shard
// order yields exactly the samples a serial accumulation would hold, which
// is how the parallel experiment harness reduces worker results without a
// mutex (quantiles sort internally, so they are shard-order independent
// either way). The argument is left unchanged.
func (c *CDF) Merge(o *CDF) {
	if o == nil || len(o.xs) == 0 {
		return
	}
	c.xs = append(c.xs, o.xs...)
	c.sorted = false
}

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.xs)
		c.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using nearest-rank
// interpolation; it panics on an empty CDF.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.xs) == 0 {
		panic("stats: quantile of empty CDF")
	}
	c.sort()
	if q <= 0 {
		return c.xs[0]
	}
	if q >= 1 {
		return c.xs[len(c.xs)-1]
	}
	pos := q * float64(len(c.xs)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(c.xs) {
		return c.xs[len(c.xs)-1]
	}
	return c.xs[lo]*(1-frac) + c.xs[lo+1]*frac
}

// Points returns (x, F(x)) pairs for plotting/printing, one per sample.
func (c *CDF) Points() (xs, fs []float64) {
	c.sort()
	xs = append([]float64(nil), c.xs...)
	fs = make([]float64, len(xs))
	for i := range fs {
		fs[i] = float64(i+1) / float64(len(xs))
	}
	return xs, fs
}

// Misalignment tracks the per-slot spread of transmission start times, the
// Fig 11 metric: for each slot index, the maximum difference between the
// earliest and latest transmitter that was supposed to start
// "simultaneously". Transmitters are grouped: misalignment is only
// meaningful among nodes that share a reference chain (trigger-connected),
// so the spread is taken within each group and maximised over groups.
// Group -1 (or a single-group probe via plain Observe) compares everyone.
type Misalignment struct {
	groups []map[int]*span
}

type span struct {
	first, last sim.Time
}

// NewMisalignment tracks the first numSlots slots.
func NewMisalignment(numSlots int) *Misalignment {
	m := &Misalignment{groups: make([]map[int]*span, numSlots)}
	for i := range m.groups {
		m.groups[i] = map[int]*span{}
	}
	return m
}

// Observe records that a transmitter started slot idx at time t (single
// global group).
func (m *Misalignment) Observe(idx int, t sim.Time) {
	m.ObserveGroup(idx, t, 0)
}

// ObserveGroup records a slot start within a reference group.
func (m *Misalignment) ObserveGroup(idx int, t sim.Time, group int) {
	if idx < 0 || idx >= len(m.groups) {
		return
	}
	sp, ok := m.groups[idx][group]
	if !ok {
		m.groups[idx][group] = &span{first: t, last: t}
		return
	}
	if t < sp.first {
		sp.first = t
	}
	if t > sp.last {
		sp.last = t
	}
}

// Max returns the worst within-group misalignment observed in slot idx, or 0
// if no group saw more than one transmitter.
func (m *Misalignment) Max(idx int) sim.Time {
	if idx < 0 || idx >= len(m.groups) {
		return 0
	}
	var worst sim.Time
	for _, sp := range m.groups[idx] {
		if d := sp.last - sp.first; d > worst {
			worst = d
		}
	}
	return worst
}

// Slots returns how many slot indices are tracked.
func (m *Misalignment) Slots() int { return len(m.groups) }
