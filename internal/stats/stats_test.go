package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/topo"
)

func pkt(link *topo.Link, bytes int, enq sim.Time) *mac.Packet {
	return &mac.Packet{Link: link, Bytes: bytes, Enqueued: enq}
}

func TestCollectorThroughputAndDelay(t *testing.T) {
	l0 := &topo.Link{ID: 0}
	l1 := &topo.Link{ID: 1}
	c := NewCollector(2, 0)
	// 10 packets of 512 B on link 0 over 1 s.
	for i := 0; i < 10; i++ {
		c.Delivered(pkt(l0, 512, sim.Time(i)*100*sim.Millisecond), sim.Time(i)*100*sim.Millisecond+5*sim.Millisecond)
	}
	c.Delivered(pkt(l1, 1024, 0), 10*sim.Millisecond)
	end := sim.Second
	want := float64(10*512*8) / 1e6
	if got := c.ThroughputMbps(0, end); math.Abs(got-want) > 1e-9 {
		t.Errorf("link0 throughput = %v, want %v", got, want)
	}
	if got := c.AggregateMbps(end); math.Abs(got-(want+1024*8/1e6)) > 1e-9 {
		t.Errorf("aggregate = %v", got)
	}
	// Delay: link0 packets each took 5 ms, link1 took 10 ms.
	wantDelay := (10*5*sim.Millisecond + 10*sim.Millisecond) / 11
	if got := c.MeanDelay(); got != wantDelay {
		t.Errorf("mean delay = %v, want %v", got, wantDelay)
	}
	if s := c.Link(0); s.DeliveredPkts != 10 || s.DeliveredB != 5120 {
		t.Errorf("link0 stats = %+v", s)
	}
}

func TestCollectorWarmup(t *testing.T) {
	l := &topo.Link{ID: 0}
	c := NewCollector(1, sim.Second)
	c.Delivered(pkt(l, 512, 0), 500*sim.Millisecond) // during warm-up
	c.Dropped(pkt(l, 512, 0), 700*sim.Millisecond)
	if c.Link(0).DeliveredPkts != 0 || c.Link(0).DroppedPkts != 0 {
		t.Fatal("warm-up traffic counted")
	}
	c.Delivered(pkt(l, 512, sim.Second), 2*sim.Second)
	c.Dropped(pkt(l, 512, 0), 2*sim.Second)
	if c.Link(0).DeliveredPkts != 1 || c.Link(0).DroppedPkts != 1 {
		t.Fatal("post-warm-up traffic not counted")
	}
	// Throughput window starts at warm-up end.
	if got := c.ThroughputMbps(0, 2*sim.Second); math.Abs(got-512*8/1e6) > 1e-9 {
		t.Errorf("throughput = %v", got)
	}
	if got := c.ThroughputMbps(0, sim.Second); got != 0 {
		t.Errorf("zero-window throughput = %v", got)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal allocation = %v", got)
	}
	// One user hogging: 1/n.
	if got := JainIndex([]float64{5, 0, 0, 0, 0}); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("single hog = %v", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Error("degenerate cases should be 0")
	}
	// Scale invariance + bounds, property-based.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			scaled[i] = float64(v) * 7.5
		}
		a, b := JainIndex(xs), JainIndex(scaled)
		if math.Abs(a-b) > 1e-9 {
			return false
		}
		return a >= 0 && a <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	var c CDF
	for _, v := range []float64{5, 1, 3, 2, 4} {
		c.Add(v)
	}
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := c.Quantile(1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := c.Quantile(0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := c.Quantile(0.25); got != 2 {
		t.Errorf("q25 = %v", got)
	}
	xs, fs := c.Points()
	if !sort.Float64sAreSorted(xs) {
		t.Error("points not sorted")
	}
	if fs[len(fs)-1] != 1 {
		t.Errorf("last F = %v", fs[len(fs)-1])
	}
	if fs[0] != 0.2 {
		t.Errorf("first F = %v", fs[0])
	}
}

// TestCDFMergeMatchesSerial is the reduction contract of the parallel
// harness: adding samples shard by shard and merging in shard order must
// yield exactly the serial accumulation.
func TestCDFMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = rng.NormFloat64()
	}
	var serial CDF
	for _, v := range samples {
		serial.Add(v)
	}
	// Uneven shards, one empty.
	bounds := []int{0, 137, 137, 500, 731, 1000}
	var merged CDF
	for i := 1; i < len(bounds); i++ {
		var shard CDF
		for _, v := range samples[bounds[i-1]:bounds[i]] {
			shard.Add(v)
		}
		merged.Merge(&shard)
	}
	merged.Merge(nil) // no-op
	if merged.N() != serial.N() {
		t.Fatalf("N = %d, want %d", merged.N(), serial.N())
	}
	mx, mf := merged.Points()
	sx, sf := serial.Points()
	for i := range mx {
		if mx[i] != sx[i] || mf[i] != sf[i] {
			t.Fatalf("point %d: (%v,%v) vs serial (%v,%v)", i, mx[i], mf[i], sx[i], sf[i])
		}
	}
	for q := 0.0; q <= 1.0; q += 0.1 {
		if merged.Quantile(q) != serial.Quantile(q) {
			t.Fatalf("quantile %.1f differs", q)
		}
	}
}

func TestCollectorMerge(t *testing.T) {
	l0, l1 := &topo.Link{ID: 0}, &topo.Link{ID: 1}
	serial := NewCollector(2, 0)
	a, b := NewCollector(2, 0), NewCollector(2, 0)
	for i := 0; i < 10; i++ {
		p := pkt(l0, 512, sim.Time(i)*sim.Millisecond)
		now := sim.Time(i)*sim.Millisecond + 5*sim.Millisecond
		serial.Delivered(p, now)
		if i%2 == 0 {
			a.Delivered(p, now)
		} else {
			b.Delivered(p, now)
		}
	}
	serial.Dropped(pkt(l1, 512, 0), sim.Millisecond)
	b.Dropped(pkt(l1, 512, 0), sim.Millisecond)
	a.Merge(b)
	for id := 0; id < 2; id++ {
		if a.Link(id) != serial.Link(id) {
			t.Errorf("link %d: merged %+v vs serial %+v", id, a.Link(id), serial.Link(id))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched link counts must panic")
		}
	}()
	a.Merge(NewCollector(3, 0))
}

func TestCDFQuantileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var c CDF
		for _, v := range raw {
			c.Add(float64(v))
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("quantile of empty CDF did not panic")
		}
	}()
	var c CDF
	c.Quantile(0.5)
}

func TestMisalignment(t *testing.T) {
	m := NewMisalignment(5)
	if m.Slots() != 5 {
		t.Fatalf("slots = %d", m.Slots())
	}
	m.Observe(0, 100*sim.Microsecond)
	m.Observe(0, 124*sim.Microsecond)
	m.Observe(0, 110*sim.Microsecond)
	if got := m.Max(0); got != 24*sim.Microsecond {
		t.Errorf("slot0 misalignment = %v", got)
	}
	m.Observe(1, 50*sim.Microsecond)
	if got := m.Max(1); got != 0 {
		t.Errorf("single-transmitter slot = %v", got)
	}
	if m.Max(2) != 0 || m.Max(-1) != 0 || m.Max(99) != 0 {
		t.Error("empty/out-of-range slots must be 0")
	}
	m.Observe(-3, 0)
	m.Observe(99, 0) // must not panic
}
